// Package maligo is a full Go reproduction of "Energy Efficient HPC on
// Embedded SoCs: Optimization Techniques for Mali GPU" (Grasso,
// Radojković, Rajović, Gelado, Ramirez — IEEE IPDPS 2014).
//
// The original study needs a 2013 Samsung Exynos 5250 board with an
// ARM Mali-T604 GPU, an OpenCL Full Profile driver and a bench power
// meter. This module substitutes all of it with simulation built from
// scratch on the Go standard library, behind one public package.
//
// # Quickstart
//
// A Platform is one simulated Arndale board: two Cortex-A15 device
// views, the Mali-T604, unified memory and a power meter.
//
//	p := maligo.NewPlatform()
//	defer p.Close()
//	ctx := p.Context
//
//	prog := ctx.CreateProgramWithSource(src)
//	if err := prog.Build(""); err != nil { ... }
//	k, _ := prog.CreateKernel("saxpy")
//
//	buf, _ := ctx.CreateBuffer(maligo.MemReadWrite|maligo.MemAllocHostPtr, n*4, nil)
//	k.SetArgBuffer(0, buf)
//
//	q := ctx.CreateCommandQueue(p.Mali())
//	q.EnqueueNDRangeKernel(k, 1, []int{n}, []int{64})
//	q.Finish()
//	meas, act := p.Measure(q) // board power, energy, device activity
//
// NewPlatform and NewContext share one functional-option vocabulary:
// WithArenaBytes sizes the unified memory, WithWorkers sets the
// parallel NDRange engine's host worker count, WithEngine selects the
// VM engine, WithAsyncQueues enables the DAG scheduler, WithDevices
// picks a standalone context's devices, and WithMeterHz/WithMeterSeed
// configure the simulated power meter. The older per-constructor
// spellings (ContextDevices, WithOutOfOrderQueues, ...) remain as
// deprecated aliases.
//
// # The parallel execution engine
//
// Kernels execute instruction by instruction, so simulation cost
// scales with the workload. The engine shards an NDRange's work-groups
// across a pool of host CPUs (default runtime.NumCPU()): each worker
// runs groups against the shared unified-memory arena while recording
// its memory accesses into a trace, and the traces are replayed in
// dispatch order into the stateful cache/DRAM model. Simulated timing,
// power and energy are therefore bit-identical at every worker count —
// only the simulator's own wall-clock changes. WithWorkers(1) forces
// the serial engine; Queue.FinishCtx and EnqueueNDRangeKernelCtx
// accept a context.Context for cancellation.
//
// # Execution engines: a three-tier contract
//
// Inside each worker, the VM runs kernels on one of three engines
// (WithEngine, the malisim/malid -engine flags, or MALIGO_ENGINE):
//
//   - EngineInterp — the reference switch-dispatch interpreter. Slow,
//     simple, and the oracle: every other tier is defined as
//     "observationally identical to interp".
//   - EngineCompiled — the closure-compiled fast path (the default).
//     Kernels pre-decode into basic blocks of fused execution units.
//   - EngineLanes — the lock-step lane-batched SIMT executor. Work-items
//     run 16 to a batch over structure-of-arrays register files with an
//     active-lane mask for divergent control flow, reconverging at
//     post-dominators; barriers synchronize whole batches, and
//     unit-stride global loads and stores move as bulk slice copies.
//
// The contract across all three tiers is bit-identity in every
// observable: memory images, profiles, profiling timestamps, traces,
// race reports, hot-line attribution, fault messages and step-limit
// errors. The interpreter stays authoritative; a 3-way differential
// suite (fuzzed kernels plus the full benchmark matrix) enforces the
// contract, and ParseEngine rejects unknown engine names with
// ErrUnknownEngine instead of silently falling back (daemons validate
// MALIGO_ENGINE at startup via EngineFromEnvStrict).
//
// The same IR that feeds the engines also feeds code generation:
// internal/clc/backend emits standalone artifacts from a compiled
// kernel — "irdump" renders the canonical textual IR, "gosrc" emits a
// self-contained Go package that executes the kernel as a basic-block
// state machine against a small Machine interface. Snapshot tests pin
// both emitters byte-for-byte on every paper benchmark kernel.
//
// # Asynchronous queues
//
// WithAsyncQueues(true) (on a platform or a standalone context)
// routes every enqueue through a per-context DAG scheduler
// that implements the OpenCL 1.1 event model: the Enqueue*Async
// variants take event wait-lists and return pending Events
// immediately, queues come in in-order and out-of-order flavours
// (CreateCommandQueueWith + QueueOutOfOrderExec), and user events,
// markers and barriers (CreateUserEvent, EnqueueMarkerWithWaitList,
// EnqueueBarrierWithWaitList) order commands within and across
// queues. Two benchmarks overlapped on separate queues:
//
//	p := maligo.NewPlatform(maligo.WithAsyncQueues(true))
//	defer p.Close()
//	q1 := p.Context.CreateCommandQueueWith(p.Mali(), maligo.QueueOutOfOrderExec)
//	q2 := p.Context.CreateCommandQueueWith(p.Mali(), maligo.QueueOutOfOrderExec)
//
//	// Independent uploads and launches overlap in simulated time;
//	// the wait-lists are the only ordering.
//	w1, _ := q1.EnqueueWriteBufferAsync(bufA, 0, hostA, nil)
//	w2, _ := q2.EnqueueWriteBufferAsync(bufB, 0, hostB, nil)
//	e1, _ := maligo.EnqueueAsync(q1, kConv, 1, []int{n}, []int{64}, w1)
//	e2, _ := maligo.EnqueueAsync(q2, kBody, 1, []int{n}, []int{64}, w2)
//	// Read kConv's output only after both kernels are done.
//	rd, _ := q1.EnqueueReadBufferAsync(bufA, 0, out, []*maligo.Event{e1, e2})
//	_ = maligo.WaitForEvents(rd)
//
// Scheduling is deterministic: the profiling timestamps are a pure
// function of the dependency DAG and the timing model, never of host
// goroutine interleaving, so in-order chains stay bit-identical to
// the synchronous queue and out-of-order overlap windows reproduce
// exactly on every host and worker count. Misuse surfaces as typed
// errors (ErrEventCycle, ErrDoubleWait, ErrOrphanEvent,
// ErrForeignEvent, ErrNotUserEvent, ErrEventComplete,
// ErrEventDepFailed), and Queue.FinishCtx detects stalls behind
// never-signalled user events instead of hanging.
//
// # Reproducing the paper
//
// RunExperiments executes the paper's nine benchmarks (BenchmarkNames)
// in four versions and two precisions and regenerates every figure of
// §V; see ExperimentConfig, Results and Figures. The benchmarks in
// bench_test.go expose the same matrix as `go test -bench` targets,
// and the commands under cmd/ (malisim, figures, clc) wrap it all on
// the command line.
//
// Compile gives direct access to the embedded OpenCL C compiler, and
// CheckKernelResources applies the Mali register-budget model the
// paper's optimization chapters revolve around.
//
// # Kernel static analysis
//
// Analyze runs the kernel linter: a set of passes over the compiler's
// typed AST and lowered IR that check OpenCL C against the paper's §V
// optimization techniques (scalar loads in unit-stride loops that the
// 128-bit pipes want vectorized, missing const/restrict qualifiers,
// CPU-style copy-to-private staging that pessimizes Mali, AoS layouts,
// short unrollable loops, register demand beyond the Mali budget) and
// diagnose correctness hazards (barrier calls under divergent control
// flow, intra-work-group data races, out-of-bounds indices). The
// correctness passes run on a tier-2 dataflow engine
// (internal/clc/analysis/dataflow): a CFG and worklist solver over
// the lowered IR propagate constants, value intervals, affine forms
// in the work-item ids and divergence facts through branches, loops
// and inlined helper calls, so races are proven by index separation
// across barrier phases and bounds findings cover interval-derived
// overruns, not just literal constants. Diagnostics carry a source
// position, a severity and a fix hint; FormatDiagnostics and
// FormatDiagnosticsJSON render them, MaxDiagnosticSeverity gates them,
// and AnalysisPasses lists the registry (AnalyzeWith restricts a run
// to named passes). The same report is available
// from a built Program via its Diagnostics method, and on the command
// line as `clc -analyze` (with -passes to filter) and `malisim -lint`.
//
// The race diagnostics have a dynamic confirmation tier:
// Queue.SetRaceCheck(true) makes subsequent enqueues record
// work-item-attributed memory traces, scan them for same-barrier-phase
// conflicts in the VM, and attach a RaceCheckResult — the static
// findings, the dynamically observed races (DataRace), and their
// overlap via Confirmed — to the returned Event.
//
// # The optimizer
//
// Where the analyzer diagnoses, the optimizer acts: Optimize runs a
// fixed pipeline of IR-to-IR transform passes (internal/clc/opt) that
// apply the paper's §V techniques mechanically — const/restrict
// promotion of pointer parameters, AoS-to-SoA access rewriting,
// unit-stride loop vectorization to the 128-bit pipes with a scalar
// remainder, and short-loop unrolling under the register budget. Each
// pass names the analyzer diagnostics it answers, and the returned
// OptimizeReport records, per kernel and per pass, whether it applied
// (and at how many sites) or why it refused — so the report reads as
// the transform-side reply to Diagnostics. OptimizeWith restricts a
// run to named passes, OptimizePasses lists the registry, and
// KernelIRDump renders a kernel's IR so before/after diffs are
// inspectable (`clc -optimize -dis` prints them).
//
// The contract is the same as the engines': a transformed program is
// bit-identical to the original in every observable memory image,
// with the reference interpreter on untransformed IR as the oracle —
// enforced by a golden corpus, a cross-engine differential matrix
// over the benchmark kernels, and a fuzzer. Transforms change timing
// (that is their point) but never results. The daemon opts in with
// `malid -optimize`: admitted programs run through the pipeline,
// original and transformed binaries cache under distinct content
// addresses, and responses carry the applied passes in an
// X-Malid-Optimize header.
//
// # Observability
//
// Every Event carries the four clGetEventProfilingInfo timestamps
// (Queued, Submitted, Started, Ended) in simulated seconds on its
// queue's clock; Queue.Profiling returns them in nanoseconds as
// ProfilingInfo. Because they derive purely from the timing model,
// they are bit-identical at every engine worker count. Queue.Timeline
// exports the event history as Spans and WriteChromeTrace renders
// them as Chrome tracing JSON, loadable in chrome://tracing or
// https://ui.perfetto.dev.
//
// The runtime also feeds a metrics registry per context — enqueue and
// work-item counters, DRAM/copy traffic, duration histograms, and
// callback gauges for arena occupancy, engine-pool activity and
// per-device L2 hit rates. Platform.Metrics (or Context.Metrics)
// hands it out; Snapshot freezes it into a MetricsSnapshot with
// deterministic text and JSON renderings.
//
// Queue.SetLineProfile(true) turns on pprof-style hot-line
// attribution: subsequent enqueues record detailed traces and
// Queue.LineProfile().Top(n) returns the n source lines moving the
// most bytes; FormatHotLines renders them against the kernel source.
// On the command line, `malisim -trace out.json -metrics -hotlines 5`
// exposes all three, and `tracecheck` validates the exported JSON.
//
// # Device fleet
//
// Every calibration number the timing, cache and power models consume
// lives in a platform document — a SoC value holding the CPU cluster
// (CPUModel), the GPU (GPUModel), the memory system (DRAMModel), the
// board's power rails (PowerRailModel) and the meter, each unit with
// its own DVFS OperatingPoint ladder. Registered models are looked up
// by name:
//
//	soc, err := maligo.LookupDevice("exynos5422")   // ErrUnknownDevice on a typo
//	p := maligo.NewPlatform(maligo.WithSoC(soc))
//
// The fleet ships three models: "exynos5250" (the paper's Arndale
// board — the default everywhere, bit-identical to the pre-fleet
// constants), and the Odroid-XU3's two scheduler views "exynos5422"
// (quad Cortex-A7 LITTLE + Mali-T628 MP6) and "exynos5422-big" (quad
// 2.0 GHz Cortex-A15 + the same GPU). DeviceNames and Devices list
// them; malisim, figures and malid take -device. Adding a model is
// one data file in internal/platform with an init Register — each
// SoC's Dump form is pinned by a golden file under testdata/platform
// (refresh with `go test -run Golden -update .`), and the fleet
// differential suite automatically runs every benchmark on it under
// all three engines.
//
// On top of the fleet sits the cross-device autotuner: Autotune
// exhaustively enumerates placements of one benchmark — device ×
// target unit (serial core, OpenMP cluster, GPU) × DVFS operating
// point × GPU work-group size × §V transform pass set — scores each
// candidate with the deterministic energy model, and reports the
// energy-optimal and time-optimal placements:
//
//	rep, err := maligo.Autotune(maligo.TuneSpace{Bench: "dmmm"})
//	fmt.Print(rep.Render())           // byte-stable table, optima marked
//	best := rep.EnergyOptimal()       // argmin over supported candidates
//
// The report is byte-for-byte deterministic across runs and host
// worker counts; listing more than one engine in TuneSpace.Engines
// turns every candidate into a cross-engine differential that fails
// on the first mismatched bit. cmd/malitune is the CLI
// (`malitune -bench dmmm -device exynos5250,exynos5422`), and
// `figures -fleet` renders the fleet-wide placement tables in
// EXPERIMENTS.md.
//
// # Serving
//
// The simulator also runs as a daemon: cmd/malid serves a versioned
// JSON API where a JobSpec — OpenCL C source (or a cached program's
// content address), kernel arguments and an NDRange — is POSTed to
// /v1/jobs and answered with the deterministic simulated JobResult
// (timing, event timestamps, power, energy, optional buffer dumps).
// Tenants get independent in-order admission queues with a quota over
// one shared device pool; programs compile once per content address
// into an LRU cache (optionally persisted to disk) and are shared
// across tenants; small NDRanges batch onto one pooled context. The
// same document runs in-process:
//
//	spec := &maligo.JobSpec{
//		Source: src, Kernel: "saxpy", Device: maligo.JobDeviceGPU,
//		Global: []int{n},
//		Args: []maligo.JobArg{
//			{Kind: maligo.JobArgBuffer, Data: xBytes},
//			{Kind: maligo.JobArgBuffer, Size: int64(n * 4), Read: true},
//			{Kind: maligo.JobArgFloat, Float: 2.0},
//			{Kind: maligo.JobArgInt, Int: n},
//		},
//	}
//	res, err := maligo.RunJob(spec)                  // in-process
//	c := maligo.NewClient("http://localhost:8372", nil)
//	res2, err := c.RunJob(ctx, spec)                 // over the wire
//
// The serving contract is bit-identity: the daemon's response body is
// byte-for-byte the JSON of the in-process result, regardless of
// which tenant submitted, what ran before, or how jobs were batched —
// the server adds routing, caching and admission control, never
// timing. Client maps wire error codes back onto the same typed
// errors (ErrInvalidJob, ErrTenantQuota, ErrUnknownJob,
// ErrBuildFailure, ErrAnalysisFailed), so errors.Is works identically
// on both paths.
//
// Programs are statically analyzed once at compile time and the
// findings cached alongside the binary. The daemon's -analysis policy
// (off, warn, error — overridable per tenant with -tenant-analysis)
// decides whether registrations report diagnostics, and under the
// error policy rejects programs with error-severity findings (races,
// out-of-bounds accesses, divergent barriers) with HTTP 422 and code
// "analysis_failed" before any job runs; responses carry
// X-Malid-Analysis and X-Malid-Severity headers.
// NewServer embeds the service core in another process; cmd/malid-load
// drives a daemon with the nine-benchmark mix and verifies the
// contract under load.
//
// See README.md for usage, DESIGN.md for the architecture and
// EXPERIMENTS.md for paper-versus-measured results.
package maligo
