// Package maligo is a full Go reproduction of "Energy Efficient HPC on
// Embedded SoCs: Optimization Techniques for Mali GPU" (Grasso,
// Radojković, Rajović, Gelado, Ramirez — IEEE IPDPS 2014).
//
// The original study needs a 2013 Samsung Exynos 5250 board with an
// ARM Mali-T604 GPU, an OpenCL Full Profile driver and a bench power
// meter. This module substitutes all of it with simulation built from
// scratch on the Go standard library:
//
//   - internal/clc     — an OpenCL C compiler (preprocessor → lexer →
//     parser → sema → IR with an optimizer),
//   - internal/vm      — a register-machine interpreter executing
//     kernels work-group by work-group with barriers and atomics,
//   - internal/mali    — the Mali-T604 timing/energy model,
//   - internal/cpu     — the Cortex-A15 timing/energy model,
//   - internal/cl      — an OpenCL-style host runtime over unified
//     memory,
//   - internal/power   — the board power model and a simulated
//     Yokogawa WT230 meter,
//   - internal/bench   — the paper's nine benchmarks in four versions
//     and two precisions,
//   - internal/harness — the evaluation methodology regenerating every
//     figure of the paper's §V.
//
// See README.md for usage, DESIGN.md for the architecture and
// EXPERIMENTS.md for paper-versus-measured results. The benchmarks in
// bench_test.go regenerate each figure as `go test -bench` targets.
package maligo
