// Command tracecheck validates the observability exports: a Chrome
// tracing JSON file written by malisim -trace (and optionally a
// metrics JSON snapshot from -metrics-out). It parses the files,
// checks the structural invariants viewers rely on — non-empty event
// list, named tracks, non-negative timestamps, per-track monotone
// start times — and exits non-zero on any violation. The Makefile's
// trace-smoke target uses it to keep the exporters honest.
//
// Usage:
//
//	tracecheck [-metrics metrics.json] trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// traceEvent is the subset of a Chrome trace event tracecheck checks.
type traceEvent struct {
	Ph   string  `json:"ph"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
}

func main() {
	metricsPath := flag.String("metrics", "", "also validate this metrics JSON snapshot")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-metrics metrics.json] trace.json")
		os.Exit(2)
	}
	if err := checkTrace(flag.Arg(0)); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	if *metricsPath != "" {
		if err := checkMetrics(*metricsPath); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", *metricsPath, err)
			os.Exit(1)
		}
	}
	fmt.Println("tracecheck: ok")
}

// checkTrace validates the structural invariants of a Chrome trace.
func checkTrace(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tr struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		return fmt.Errorf("not valid trace JSON: %w", err)
	}
	named := map[int]bool{}
	lastStart := map[int]float64{}
	slices := 0
	for i, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			named[ev.Tid] = true
		case "X":
			slices++
			if ev.Ts < 0 || ev.Dur < 0 {
				return fmt.Errorf("event %d (%s): negative ts/dur %g/%g", i, ev.Name, ev.Ts, ev.Dur)
			}
			if ev.Name == "" {
				return fmt.Errorf("event %d: empty name", i)
			}
			if last, ok := lastStart[ev.Tid]; ok && ev.Ts < last {
				return fmt.Errorf("event %d (%s): start %g before previous start %g on track %d",
					i, ev.Name, ev.Ts, last, ev.Tid)
			}
			lastStart[ev.Tid] = ev.Ts
		default:
			return fmt.Errorf("event %d: unexpected phase %q", i, ev.Ph)
		}
	}
	if slices == 0 {
		return fmt.Errorf("trace has no slices")
	}
	for tid := range lastStart {
		if !named[tid] {
			return fmt.Errorf("track %d has slices but no thread_name metadata", tid)
		}
	}
	fmt.Printf("tracecheck: %s: %d slices on %d tracks\n", path, slices, len(lastStart))
	return nil
}

// checkMetrics validates a metrics JSON snapshot parses and carries
// the counters the runtime always emits.
func checkMetrics(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]float64
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("not valid metrics JSON: %w", err)
	}
	if len(snap.Counters) == 0 {
		return fmt.Errorf("metrics snapshot has no counters")
	}
	if snap.Counters["cl.enqueues.ndrange"] == 0 {
		return fmt.Errorf("cl.enqueues.ndrange counter missing or zero")
	}
	fmt.Printf("tracecheck: %s: %d counters, %d gauges\n", path, len(snap.Counters), len(snap.Gauges))
	return nil
}
