// Command malisim runs one benchmark in one configuration on a
// simulated board from the device fleet (the paper's Exynos 5250 by
// default) and prints a detailed execution report: runtime, device
// activity, memory traffic, power and energy.
//
// Usage:
//
//	malisim -bench dmmm [-version opt] [-prec single] [-scale 1.0] [-workers N]
//	        [-device exynos5422] [-engine interp|compiled|lanes] [-async]
//	        [-trace out.json] [-metrics] [-metrics-out m.json] [-hotlines N]
//
// -device selects a registered device model (malisim -list names
// them); an unknown name is rejected at startup with the fleet listed.
//
// Versions: serial, omp, cl, opt (paper names: Serial, OpenMP, OpenCL,
// OpenCL Opt). -workers shards the simulation's work-groups across N
// host CPUs (default all); the simulated results are identical, only
// the host wall-clock changes. -engine selects the VM execution engine
// (the closure-compiled fast path by default, the reference
// interpreter with -engine interp, or the lock-step lane-batched SIMT
// executor with -engine lanes; the MALIGO_ENGINE environment variable
// sets the same choice and an invalid value is rejected at startup) —
// all three engines are bit-identical in every simulated observable.
//
// Observability: -trace writes the measured region's command timeline
// as Chrome tracing JSON (open in chrome://tracing or
// https://ui.perfetto.dev); -metrics dumps the runtime metrics
// snapshot as text and -metrics-out writes it as JSON; -hotlines N
// prints the top-N kernel source lines by bytes moved.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"maligo"
)

func main() {
	var (
		name    = flag.String("bench", "", "benchmark: "+strings.Join(maligo.BenchmarkNames(), ", "))
		version = flag.String("version", "opt", "version: serial, omp, cl, opt")
		prec    = flag.String("prec", "single", "precision: single or double")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		workers = flag.Int("workers", 0, "engine worker goroutines (0 = all host CPUs, 1 = serial engine)")
		engine  = flag.String("engine", "", "VM execution engine: interp (reference interpreter), compiled (closure fast path, default) or lanes (lock-step SIMT batches); also settable via MALIGO_ENGINE")
		devName = flag.String("device", "", "board model: "+strings.Join(maligo.DeviceNames(), ", ")+" (default "+maligo.DefaultDeviceName+")")
		async   = flag.Bool("async", false, "run enqueues through the DAG command scheduler (asynchronous queues); all simulated observables are bit-identical")
		list    = flag.Bool("list", false, "list benchmarks and device models and exit")
		lint    = flag.Bool("lint", false, "run the kernel static analyzer over the benchmark's source (all benchmarks when -bench is empty) and exit")

		traceOut   = flag.String("trace", "", "write the measured region's timeline as Chrome tracing JSON to this file")
		metrics    = flag.Bool("metrics", false, "print the runtime metrics snapshot")
		metricsOut = flag.String("metrics-out", "", "write the runtime metrics snapshot as JSON to this file")
		hotlines   = flag.Int("hotlines", 0, "profile and print the top-N kernel source lines by bytes moved")
	)
	flag.Parse()

	if *list {
		for _, b := range maligo.Benchmarks() {
			fmt.Printf("%-7s %s\n", b.Name(), b.Description())
		}
		fmt.Println()
		for _, s := range maligo.Devices() {
			fmt.Printf("%-15s %s\n", s.Name, s.Description)
		}
		return
	}
	p := maligo.F32
	if strings.HasPrefix(*prec, "d") {
		p = maligo.F64
	}
	if *lint {
		os.Exit(runLint(*name, p))
	}
	if maligo.BenchmarkByName(*name) == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; -list shows the choices\n", *name)
		os.Exit(2)
	}
	var v maligo.Version
	switch strings.ToLower(*version) {
	case "serial":
		v = maligo.Serial
	case "omp", "openmp":
		v = maligo.OpenMP
	case "cl", "opencl":
		v = maligo.OpenCL
	case "opt", "openclopt", "opencl-opt":
		v = maligo.OpenCLOpt
	default:
		fmt.Fprintf(os.Stderr, "unknown version %q (serial, omp, cl, opt)\n", *version)
		os.Exit(2)
	}

	eng, err := maligo.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	soc, err := maligo.LookupDevice(*devName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if eng == maligo.EngineAuto {
		// No flag: MALIGO_ENGINE decides, and a typo there is a
		// startup error, not a silent fall-back to the default engine.
		if _, err := maligo.EngineFromEnvStrict(); err != nil {
			fmt.Fprintln(os.Stderr, "MALIGO_ENGINE:", err)
			os.Exit(2)
		}
	}

	cfg := maligo.DefaultExperimentConfig()
	cfg.Scale = *scale
	cfg.Benchmarks = []string{*name}
	cfg.Precisions = []maligo.Precision{p}
	cfg.Workers = *workers
	cfg.ProfileLines = *hotlines > 0
	cfg.Engine = eng
	cfg.AsyncQueues = *async
	cfg.SoC = soc
	res, err := maligo.RunExperiments(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	c := res.Cell(*name, p, v)
	if c == nil {
		fmt.Fprintln(os.Stderr, "no result cell produced")
		os.Exit(1)
	}
	engineWorkers := *workers
	if engineWorkers <= 0 {
		engineWorkers = runtime.NumCPU()
	}
	effEng := eng
	if effEng == maligo.EngineAuto {
		effEng = maligo.EngineFromEnv()
	}
	engineName := effEng.String()
	if effEng == maligo.EngineAuto {
		engineName = "compiled" // the auto default
	}
	fmt.Printf("benchmark      %s (%s)\n", *name, maligo.BenchmarkByName(*name).Description())
	fmt.Printf("configuration  %s, %s precision, scale %g\n", v, p, *scale)
	fmt.Printf("device         %s\n", soc.Description)
	if !c.Supported {
		fmt.Printf("status         n/a — %s\n", c.Reason)
		return
	}
	fmt.Printf("kernels        %s\n", strings.Join(c.Kernels, " → "))
	if c.FellBack {
		fmt.Println("status         CL_OUT_OF_RESOURCES on the fully optimized kernel; fallback measured")
	}
	fmt.Printf("time           %.4f ms simulated\n", c.Seconds*1000)
	fmt.Printf("host time      %.1f ms wall-clock (%d engine workers, %s engine)\n",
		c.HostSeconds*1000, engineWorkers, engineName)
	fmt.Printf("power          %.3f W (σ %.4f over %d meter repetitions)\n",
		c.Power.MeanPowerW, c.Power.StdPowerW, 20)
	fmt.Printf("energy         %.5f J (σ %.6f)\n", c.Power.EnergyJ, c.Power.StdEnergyJ)
	fmt.Printf("DRAM traffic   %.2f MB (%.2f GB/s)\n",
		float64(c.Activity.DRAMBytes)/1e6, float64(c.Activity.DRAMBytes)/c.Seconds/1e9)
	if v.IsGPU() {
		fmt.Printf("GPU busy       %.4f core-seconds, utilization %.0f%%\n",
			c.Activity.GPUBusyCoreSeconds, c.Activity.GPUUtil*100)
	} else {
		fmt.Printf("CPU busy       %.4f core-seconds, utilization %.0f%%\n",
			c.Activity.CPUBusyCoreSeconds, c.Activity.CPUUtil*100)
	}
	if base := res.Cell(*name, p, maligo.Serial); base != nil && v != maligo.Serial {
		fmt.Printf("vs Serial      %.2fx speed, %.0f%% power, %.0f%% energy\n",
			res.Speedup(*name, p, v), res.NormPower(*name, p, v)*100, res.NormEnergy(*name, p, v)*100)
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, c.Timeline); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace          %s (%d spans; open in chrome://tracing or ui.perfetto.dev)\n",
			*traceOut, len(c.Timeline))
	}
	if *hotlines > 0 {
		top := c.HotLines
		if len(top) > *hotlines {
			top = top[:*hotlines]
		}
		fmt.Printf("\nhot lines (top %d by bytes moved)\n", len(top))
		fmt.Print(maligo.FormatHotLines(top, maligo.BenchmarkByName(*name).Source()))
	}
	if *metrics {
		fmt.Println("\nmetrics")
		if err := c.Metrics.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, c.Metrics); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			os.Exit(1)
		}
	}
}

// writeTrace writes the cell's timeline as Chrome tracing JSON.
func writeTrace(path string, spans []maligo.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := maligo.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics writes the cell's metrics snapshot as JSON.
func writeMetrics(path string, snap maligo.MetricsSnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runLint analyzes the named benchmark's kernel source (or every
// benchmark when name is empty) at the chosen precision and prints the
// findings. Returns 1 when any error-severity diagnostic fires.
func runLint(name string, p maligo.Precision) int {
	benches := maligo.Benchmarks()
	if name != "" {
		b := maligo.BenchmarkByName(name)
		if b == nil {
			fmt.Fprintf(os.Stderr, "unknown benchmark %q; -list shows the choices\n", name)
			return 2
		}
		benches = []maligo.Benchmark{b}
	}
	code := 0
	for _, b := range benches {
		diags, err := maligo.Analyze(b.Name()+".cl", b.Source(), p.BuildOptions())
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", b.Name(), err)
			return 1
		}
		fmt.Print(maligo.FormatDiagnostics(diags))
		if len(diags) > 0 && maligo.MaxDiagnosticSeverity(diags) >= maligo.SevError {
			code = 1
		}
	}
	return code
}
