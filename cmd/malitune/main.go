// Command malitune runs the cross-device autotuner: it enumerates
// placements of one benchmark kernel across the registered device
// fleet — target unit (serial CPU, OpenMP cluster, Mali GPU), DVFS
// operating point, GPU work-group size and §V transform pass set —
// simulates every candidate, and prints the deterministic search
// report with the energy-optimal and time-optimal placements marked.
//
// Usage:
//
//	malitune -bench dmmm [-prec single] [-scale 0.25]
//	         [-device exynos5250,exynos5422] [-target cpu,cpu2,gpu]
//	         [-local 0,32,64] [-passes "none;all"] [-no-dvfs]
//	         [-engine compiled,interp] [-workers N] [-json]
//
// Dimension flags take comma-separated lists; -passes takes
// semicolon-separated pass sets where "none" runs the kernel as
// written, "all" the full transform pipeline, and a comma-joined list
// ("vector,unroll") a subset. Naming more than one -engine makes
// every candidate a differential test: the extra engines must
// reproduce the first engine's simulated time, energy and DRAM
// traffic bit-for-bit or the search fails. The report is
// byte-identical across runs and -workers settings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"maligo"
)

// splitList splits a comma-separated flag, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func main() {
	var (
		name    = flag.String("bench", "", "benchmark: "+strings.Join(maligo.BenchmarkNames(), ", "))
		prec    = flag.String("prec", "single", "precision: single or double")
		scale   = flag.Float64("scale", 0, "workload scale factor (default 0.25)")
		devices = flag.String("device", "", "comma-separated board models (default the whole fleet: "+strings.Join(maligo.DeviceNames(), ", ")+")")
		targets = flag.String("target", "", "comma-separated targets: cpu, cpu2, gpu (default all)")
		locals  = flag.String("local", "", "comma-separated GPU work-group-size hints (0 = device heuristic)")
		passes  = flag.String("passes", "", `semicolon-separated transform pass sets: "none", "all" or a comma-joined pass list (default "none;all")`)
		noDVFS  = flag.Bool("no-dvfs", false, "pin every unit at its nominal operating point")
		engines = flag.String("engine", "", "comma-separated VM engines; more than one cross-checks candidates bit-for-bit")
		workers = flag.Int("workers", 0, "engine worker goroutines (0 = all host CPUs); the report is identical at every setting")
		asJSON  = flag.Bool("json", false, "emit the report as JSON instead of the text table")
		list    = flag.Bool("list", false, "list benchmarks and devices, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:")
		for _, b := range maligo.Benchmarks() {
			fmt.Printf("  %-7s %s\n", b.Name(), b.Description())
		}
		fmt.Println("devices:")
		for _, s := range maligo.Devices() {
			fmt.Printf("  %-15s %s\n", s.Name, s.Description)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "malitune: -bench is required; -list shows the choices")
		os.Exit(2)
	}

	p := maligo.F32
	if strings.HasPrefix(*prec, "d") {
		p = maligo.F64
	}

	space := maligo.TuneSpace{
		Bench:     *name,
		Precision: p,
		Scale:     *scale,
		Devices:   splitList(*devices),
		Targets:   splitList(*targets),
		NoDVFS:    *noDVFS,
		Workers:   *workers,
	}
	for _, l := range splitList(*locals) {
		n, err := strconv.Atoi(l)
		if err != nil {
			fmt.Fprintf(os.Stderr, "malitune: bad -local entry %q\n", l)
			os.Exit(2)
		}
		space.LocalSizes = append(space.LocalSizes, n)
	}
	if *passes != "" {
		for _, set := range strings.Split(*passes, ";") {
			set = strings.TrimSpace(set)
			if set == "none" {
				set = ""
			}
			space.PassSets = append(space.PassSets, set)
		}
	}
	for _, e := range splitList(*engines) {
		eng, err := maligo.ParseEngine(e)
		if err != nil {
			fmt.Fprintln(os.Stderr, "malitune:", err)
			os.Exit(2)
		}
		space.Engines = append(space.Engines, eng)
	}

	rep, err := maligo.Autotune(space)
	if err != nil {
		fmt.Fprintln(os.Stderr, "malitune:", err)
		os.Exit(1)
	}
	if *asJSON {
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "malitune:", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(data, '\n'))
		return
	}
	fmt.Print(rep.Render())
}
