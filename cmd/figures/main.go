// Command figures regenerates the paper's evaluation figures (Figure 2
// speedup, Figure 3 power, Figure 4 energy-to-solution, in single and
// double precision) plus the §V-D summary, on a simulated board from
// the device fleet (the paper's Exynos 5250 by default; -device picks
// another registered model).
//
// Usage:
//
//	figures [-fig 2a|2b|3a|3b|4a|4b] [-summary] [-scale 1.0] [-bench name,...]
//	        [-device name] [-workers N] [-engine interp|compiled] [-v]
//	figures -ablations [-scale 1.0]
//	figures -fleet [-bench name,...] [-device name,...] [-scale 1.0]
//
// With no flags it renders everything; -ablations instead runs the
// §III-A/§III-B isolation experiments and the §V auto-optimization
// leg (naive versions through the transform pipeline against the
// hand-optimized ones); -fleet runs the cross-device autotuner over
// the selected benchmarks and renders one placement table per kernel
// (with -device as a comma-separated fleet subset). The simulation shards
// work-groups across all host CPUs by default (-workers 1 forces the
// serial engine; the rendered figures are identical either way), and
// runs kernels on the closure-compiled VM fast path (-engine interp
// selects the reference interpreter — slower but bit-identical).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"maligo"
)

func main() {
	var (
		fig     = flag.String("fig", "", "render a single figure: 2a, 2b, 3a, 3b, 4a or 4b")
		summary = flag.Bool("summary", false, "render only the §V-D summary")
		ablate  = flag.Bool("ablations", false, "run the §III-A/§III-B ablation experiments instead of the figures")
		fleet   = flag.Bool("fleet", false, "run the cross-device autotuner fleet leg instead of the figures (one search per benchmark)")
		csv     = flag.Bool("csv", false, "emit all figure data as CSV instead of rendered tables")
		scale   = flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper-equivalent sizes)")
		benches = flag.String("bench", "", "comma-separated benchmark subset (default: all nine)")
		workers = flag.Int("workers", 0, "engine worker goroutines (0 = all host CPUs, 1 = serial engine)")
		engine  = flag.String("engine", "", "VM execution engine: interp (reference interpreter) or compiled (closure fast path, default); also settable via MALIGO_ENGINE")
		verify  = flag.Bool("verify", true, "verify kernel results against host references")
		devName = flag.String("device", "", "board model: "+strings.Join(maligo.DeviceNames(), ", ")+" (default "+maligo.DefaultDeviceName+")")
		verbose = flag.Bool("v", false, "also print raw per-configuration measurements")
	)
	flag.Parse()

	if *fleet {
		eng, err := maligo.ParseEngine(*engine)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var engines []maligo.Engine
		if eng != maligo.EngineAuto {
			engines = []maligo.Engine{eng}
		}
		names := maligo.BenchmarkNames()
		if *benches != "" {
			names = strings.Split(*benches, ",")
		}
		first := true
		for _, name := range names {
			rep, err := maligo.Autotune(maligo.TuneSpace{
				Bench:   name,
				Scale:   *scale,
				Devices: splitDevices(*devName),
				Workers: *workers,
				Engines: engines,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			if !first {
				fmt.Println()
			}
			first = false
			fmt.Print(rep.Render())
		}
		return
	}

	if *ablate {
		hm, err := maligo.RunHostMemAblation(1 << 20)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		lo, err := maligo.RunLayoutAblation(1 << 20)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Print(maligo.RenderAblations(hm, lo))
		ao, err := maligo.RunAutoOptAblation(*scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(ao.Render())
		return
	}

	eng, err := maligo.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	soc, err := maligo.LookupDevice(*devName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := maligo.DefaultExperimentConfig()
	cfg.Scale = *scale
	cfg.Verify = *verify
	cfg.Workers = *workers
	cfg.Engine = eng
	cfg.SoC = soc
	if *benches != "" {
		cfg.Benchmarks = strings.Split(*benches, ",")
	}
	if *fig != "" {
		valid := false
		for _, f := range maligo.Figures() {
			if string(f) == *fig {
				valid = true
			}
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "unknown figure %q (want 2a, 2b, 3a, 3b, 4a or 4b)\n", *fig)
			os.Exit(2)
		}
		prec := maligo.F32
		if strings.HasSuffix(*fig, "b") {
			prec = maligo.F64
		}
		cfg.Precisions = []maligo.Precision{prec}
	}

	fmt.Fprintln(os.Stderr, "simulating… (every kernel runs instruction-by-instruction; paper scale takes ~2-3 minutes)")
	res, err := maligo.RunExperiments(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	switch {
	case *csv:
		fmt.Print(res.CSV())
	case *fig != "":
		found := false
		for _, f := range maligo.Figures() {
			if string(f) == *fig {
				fmt.Print(res.FigureTable(f).Render())
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown figure %q (want 2a, 2b, 3a, 3b, 4a or 4b)\n", *fig)
			os.Exit(2)
		}
	case *summary:
		fmt.Print(res.Summarize().Render())
	default:
		fmt.Print(res.RenderAll())
	}

	if *verbose {
		fmt.Println("\nRaw measurements")
		fmt.Println("================")
		for _, c := range res.CellsSorted() {
			if !c.Supported {
				fmt.Printf("%-30s n/a (%s)\n", cellLabel(c), c.Reason)
				continue
			}
			fmt.Printf("%-30s t=%9.3fms  host=%7.1fms  P=%5.2f±%.3fW  E=%8.4fJ  kernels=%v\n",
				cellLabel(c), c.Seconds*1000, c.HostSeconds*1000, c.Power.MeanPowerW, c.Power.StdPowerW,
				c.Power.EnergyJ, c.Kernels)
		}
	}
}

func cellLabel(c *maligo.Cell) string {
	return fmt.Sprintf("%s/%s/%s", c.Bench, c.Precision, c.Version)
}

// splitDevices splits the -device flag into the autotuner's device
// list (empty = the whole fleet).
func splitDevices(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
