// Command malid-load drives a malid daemon with the nine paper
// benchmarks as a mixed multi-tenant job stream and reports
// go-bench-style metric lines (pipe through benchjson to commit a
// baseline):
//
//	malid-load -n 2000 -c 16 -tenants 4 | benchjson > BENCH_malid.json
//
// With no -addr it stands up an in-process daemon on a loopback
// listener, so the full HTTP stack is exercised without a separate
// process. -verify additionally runs every spec in-process through
// the job runtime and requires each served response body to be
// byte-identical to the in-process result — the serving layer's
// determinism contract. The driver is pure Go and runs under -race.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"maligo"
)

func main() {
	var (
		addr    = flag.String("addr", "", "daemon base URL (empty = in-process loopback server)")
		n       = flag.Int("n", 900, "total requests")
		c       = flag.Int("c", 8, "concurrent clients")
		tenants = flag.Int("tenants", 3, "distinct tenants")
		verify  = flag.Bool("verify", true, "require served bodies byte-identical to in-process runs")
		minHit  = flag.Float64("min-hit-rate", 0, "fail unless cache hit rate reaches this (0 = don't check)")
		workers = flag.Int("workers", 0, "in-process server worker pool (0 = NumCPU)")
	)
	flag.Parse()

	base := *addr
	if base == "" {
		srv, err := maligo.NewServer(serverConfig(*workers))
		if err != nil {
			log.Fatalf("malid-load: %v", err)
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("malid-load: %v", err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
	}

	specs := maligo.JobMixSpecs()
	var want [][]byte
	if *verify {
		want = baselines(specs)
	}

	client := maligo.NewClient(base, &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: *c},
	})
	// Warm the program cache once per distinct program so the measured
	// stream exercises the repeat path the cache exists for.
	for _, s := range specs {
		if _, err := client.RegisterProgram(context.Background(), s.Source, s.Options); err != nil {
			log.Fatalf("malid-load: warm %s: %v", s.Kernel, err)
		}
	}

	var (
		next      atomic.Int64
		hits      atomic.Int64
		failures  atomic.Int64
		mismatch  atomic.Int64
		latencies = make([][]time.Duration, *c)
		wg        sync.WaitGroup
	)
	httpc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *c}}
	start := time.Now() // maligo:allow walltime load driver measures real host throughput
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				spec := *specs[i%len(specs)]
				spec.Tenant = fmt.Sprintf("tenant-%d", i%*tenants)
				t0 := time.Now() // maligo:allow walltime load driver measures real request latency
				body, hit, err := postJob(httpc, base, &spec)
				latencies[w] = append(latencies[w], time.Since(t0))
				if err != nil {
					failures.Add(1)
					log.Printf("malid-load: job %d (%s): %v", i, spec.Kernel, err)
					continue
				}
				if hit {
					hits.Add(1)
				}
				if want != nil && !bytes.Equal(body, want[i%len(specs)]) {
					mismatch.Add(1)
					log.Printf("malid-load: job %d (%s): served body differs from in-process result", i, spec.Kernel)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	ok := int64(len(all)) - failures.Load()
	hitRate := 0.0
	if ok > 0 {
		hitRate = float64(hits.Load()) / float64(ok)
	}

	name := fmt.Sprintf("BenchmarkMalidLoad/c=%d/tenants=%d", *c, *tenants)
	fmt.Printf("%s\t%8d\t%12.0f ns/op\t%10.1f req/s\t%12d p50-ns\t%12d p99-ns\t%8.3f hit-rate\n",
		name, len(all),
		float64(elapsed.Nanoseconds())/float64(max(1, len(all))),
		float64(len(all))/elapsed.Seconds(),
		pct(all, 0.50).Nanoseconds(), pct(all, 0.99).Nanoseconds(), hitRate)

	if f := failures.Load(); f > 0 {
		log.Fatalf("malid-load: %d/%d jobs failed", f, len(all))
	}
	if m := mismatch.Load(); m > 0 {
		log.Fatalf("malid-load: %d served bodies differed from in-process results", m)
	}
	if *minHit > 0 && hitRate < *minHit {
		log.Fatalf("malid-load: cache hit rate %.3f below required %.3f", hitRate, *minHit)
	}
	fmt.Fprintf(os.Stderr, "malid-load: %d ok, 0 failed, hit rate %.3f, %s total\n",
		len(all), hitRate, elapsed.Round(time.Millisecond))
}

func serverConfig(workers int) maligo.ServerConfig {
	var cfg maligo.ServerConfig
	cfg.Runtime.Workers = workers
	cfg.MaxQueued = 256
	cfg.MaxConcurrent = 8
	return cfg
}

// baselines runs every spec in-process and returns the exact bytes
// the daemon must serve for it: json.Marshal plus the encoder's
// trailing newline.
func baselines(specs []*maligo.JobSpec) [][]byte {
	r := maligo.NewJobRunner(0)
	defer r.Close()
	out := make([][]byte, len(specs))
	for i, s := range specs {
		res, err := r.Run(s)
		if err != nil {
			log.Fatalf("malid-load: baseline %s: %v", s.Kernel, err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			log.Fatalf("malid-load: baseline %s: %v", s.Kernel, err)
		}
		out[i] = append(b, '\n')
	}
	return out
}

// postJob submits one job and returns the raw response body (for
// byte-level comparison), the cache disposition, and any error.
func postJob(hc *http.Client, base string, spec *maligo.JobSpec) ([]byte, bool, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, false, err
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(res.Body)
	if err != nil {
		return nil, false, err
	}
	if res.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("HTTP %d: %s", res.StatusCode, strings.TrimSpace(string(data)))
	}
	return data, res.Header.Get("X-Malid-Cache") == "hit", nil
}

// pct returns the p-th percentile of sorted latencies.
func pct(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
