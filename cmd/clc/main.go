// Command clc compiles an OpenCL C kernel file with the embedded
// kernel compiler and prints diagnostics, per-kernel resource usage
// (the numbers the Mali register-budget model uses), and optionally
// the IR disassembly — a stand-in for ARM's offline kernel compiler.
//
// With -analyze it instead runs the static-analysis passes (Mali
// optimization lints, barrier/race diagnostics) over one file or over
// every .cl file in a directory, printing findings as text or JSON.
//
// With -optimize it runs the IR-to-IR transform pipeline — the
// automatic application of the paper's Section V techniques — and
// prints each pass's applied/refused verdict per kernel. Adding -dis
// prints the irdump before/after of every changed kernel; -json
// prints the applicability report as a JSON array.
//
// Usage:
//
//	clc [-D NAME=VAL ...] [-dis] [-check] file.cl
//	clc -analyze [-json] [-passes race,bounds,...] [-severity info|warning|error] [-Werror] [-D NAME=VAL ...] file.cl|dir
//	clc -optimize [-json] [-dis] [-passes vectorize,unroll,...] [-D NAME=VAL ...] file.cl
//
// -passes restricts the run to a comma-separated subset of the
// registered passes (run "clc -analyze -passes help" or
// "clc -optimize -passes help" to list the respective vocabularies);
// unknown names are a usage error.
//
// With -json the findings print as one JSON array of objects, each
// with the fields
//
//	{"file": string, "line": int, "col": int,
//	 "severity": "info"|"warning"|"error",
//	 "pass": string, "kernel": string,
//	 "message": string, "hint": string}
//
// sorted by position (then severity, pass, kernel, message) and
// deduplicated, so the output is byte-stable for a given input.
//
// Exit-code contract in analyze mode: 0 — analysis ran and no finding
// reaches the gate severity; 1 — a gated finding remains (error by
// default, warning with -Werror) or a file failed to read/compile;
// 2 — usage error (bad flag value, unknown pass name). Info findings
// never gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"maligo"
)

type defineFlags []string

func (d *defineFlags) String() string { return strings.Join(*d, " ") }
func (d *defineFlags) Set(s string) error {
	*d = append(*d, "-D"+s)
	return nil
}

func main() {
	var defs defineFlags
	dis := flag.Bool("dis", false, "print IR disassembly")
	check := flag.Bool("check", false, "check each kernel against the Mali register budget")
	analyze := flag.Bool("analyze", false, "run the static-analysis passes instead of printing resources")
	optimize := flag.Bool("optimize", false, "run the IR transform pipeline and print the applicability report")
	jsonOut := flag.Bool("json", false, "with -analyze: print findings as JSON")
	minSev := flag.String("severity", "info", "with -analyze: lowest severity to report (info|warning|error)")
	wError := flag.Bool("Werror", false, "with -analyze: exit nonzero on warnings, not just errors")
	passNames := flag.String("passes", "", "with -analyze: comma-separated pass subset ('help' lists them)")
	flag.Var(&defs, "D", "preprocessor definition NAME[=VALUE] (repeatable)")
	flag.Parse()

	vocab := maligo.AnalysisPassNames()
	if *optimize {
		vocab = maligo.OptimizePassNames()
	}
	only, err := parsePasses(*passNames, vocab)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *passNames == "help" {
		if *optimize {
			for _, p := range maligo.OptimizePasses() {
				fmt.Printf("%-14s %s\n", p.Name, p.Doc)
			}
		} else {
			for _, p := range maligo.AnalysisPasses() {
				fmt.Printf("%-14s %s\n", p.Name, p.Doc)
			}
		}
		os.Exit(0)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: clc [-analyze|-optimize] [-D NAME=VAL] [-dis] [-check] file.cl")
		os.Exit(2)
	}
	if *analyze {
		os.Exit(runAnalyze(flag.Arg(0), defs.String(), *minSev, *wError, *jsonOut, only))
	}
	if *optimize {
		os.Exit(runOptimize(flag.Arg(0), defs.String(), *jsonOut, *dis, only))
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, err := maligo.Compile(flag.Arg(0), string(src), defs.String())
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	for _, name := range prog.KernelNames() {
		k := prog.Kernel(name)
		fmt.Printf("kernel %-24s %4d instrs  regs I=%d F=%d (%d bytes live)  local %dB  private %dB",
			name, len(k.Code), k.NumI, k.NumF, k.RegBytes, k.LocalBytes, k.PrivateBytes)
		if k.UsesBarrier {
			fmt.Print("  [barrier]")
		}
		if k.UsesDouble {
			fmt.Print("  [fp64]")
		}
		fmt.Println()
		if *check {
			if err := maligo.CheckKernelResources(k); err != nil {
				fmt.Printf("  !! %v\n", err)
			} else {
				fmt.Printf("  ok: %.0f register bytes/thread demanded\n", maligo.KernelRegisterDemand(k))
			}
		}
		if *dis {
			fmt.Println(k.Disassemble())
		}
	}
	if n := len(prog.ConstantData); n > 0 {
		fmt.Printf("constant segment: %d bytes\n", n)
	}
}

// parsePasses validates a comma-separated -passes value against the
// active mode's vocabulary (analysis passes, or transform passes under
// -optimize). Empty or "help" return nil (run everything / list mode).
func parsePasses(s string, vocab []string) ([]string, error) {
	if s == "" || s == "help" {
		return nil, nil
	}
	known := map[string]bool{}
	for _, n := range vocab {
		known[n] = true
	}
	var only []string
	for _, n := range strings.Split(s, ",") {
		n = strings.TrimSpace(n)
		if !known[n] {
			return nil, fmt.Errorf("unknown pass %q (known: %s)",
				n, strings.Join(vocab, ", "))
		}
		only = append(only, n)
	}
	return only, nil
}

// runOptimize compiles one .cl file, runs the transform pipeline
// (optionally a -passes subset) and prints the applicability report —
// as JSON with -json, with before/after irdump of every changed
// kernel under -dis. Exit codes: 0 — pipeline ran (whether or not any
// pass applied); 1 — the file failed to read or compile.
func runOptimize(path, options string, jsonOut, dis bool, only []string) int {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	prog, err := maligo.Compile(filepath.Base(path), string(src), options)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		return 1
	}
	out, rep, err := maligo.OptimizeWith(prog, only)
	if err != nil { // pass names were validated already; defensive
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if jsonOut {
		raw, err := json.MarshalIndent(rep.Results, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println(string(raw))
	} else {
		fmt.Print(rep.String())
	}
	if dis {
		for _, name := range rep.ChangedKernels() {
			before, err := maligo.KernelIRDump(prog.Kernels[name])
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			after, err := maligo.KernelIRDump(out.Kernels[name])
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Printf("\n== BEFORE %s ==\n%s\n== AFTER %s ==\n%s", name, before, name, after)
		}
	}
	return 0
}

// runAnalyze lints one .cl file, or every .cl file directly under a
// directory, and returns the process exit code. Directory findings are
// labeled with the base filename, so the output is independent of how
// the directory path was spelled.
func runAnalyze(target, options, minSev string, wError, jsonOut bool, only []string) int {
	gate := maligo.SevError
	if wError {
		gate = maligo.SevWarning
	}
	floor, err := maligo.ParseSeverity(minSev)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	var files []string
	if st, err := os.Stat(target); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	} else if st.IsDir() {
		entries, err := os.ReadDir(target)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".cl") {
				files = append(files, filepath.Join(target, e.Name()))
			}
		}
		sort.Strings(files)
		if len(files) == 0 {
			fmt.Fprintf(os.Stderr, "no .cl files under %s\n", target)
			return 1
		}
	} else {
		files = []string{target}
	}

	var all []maligo.Diagnostic
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		diags, err := maligo.AnalyzeWith(filepath.Base(path), string(src), options, only)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			return 1
		}
		for _, d := range diags {
			if d.Sev >= floor {
				all = append(all, d)
			}
		}
	}

	if jsonOut {
		raw, err := maligo.FormatDiagnosticsJSON(all)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println(string(raw))
	} else {
		fmt.Print(maligo.FormatDiagnostics(all))
	}
	if len(all) > 0 && maligo.MaxDiagnosticSeverity(all) >= gate {
		return 1
	}
	return 0
}
