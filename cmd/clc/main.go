// Command clc compiles an OpenCL C kernel file with the embedded
// kernel compiler and prints diagnostics, per-kernel resource usage
// (the numbers the Mali register-budget model uses), and optionally
// the IR disassembly — a stand-in for ARM's offline kernel compiler.
//
// Usage:
//
//	clc [-D NAME=VAL ...] [-dis] [-check] file.cl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"maligo"
)

type defineFlags []string

func (d *defineFlags) String() string { return strings.Join(*d, " ") }
func (d *defineFlags) Set(s string) error {
	*d = append(*d, "-D"+s)
	return nil
}

func main() {
	var defs defineFlags
	dis := flag.Bool("dis", false, "print IR disassembly")
	check := flag.Bool("check", false, "check each kernel against the Mali register budget")
	flag.Var(&defs, "D", "preprocessor definition NAME[=VALUE] (repeatable)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: clc [-D NAME=VAL] [-dis] [-check] file.cl")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog, err := maligo.Compile(flag.Arg(0), string(src), defs.String())
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	for _, name := range prog.KernelNames() {
		k := prog.Kernel(name)
		fmt.Printf("kernel %-24s %4d instrs  regs I=%d F=%d (%d bytes live)  local %dB  private %dB",
			name, len(k.Code), k.NumI, k.NumF, k.RegBytes, k.LocalBytes, k.PrivateBytes)
		if k.UsesBarrier {
			fmt.Print("  [barrier]")
		}
		if k.UsesDouble {
			fmt.Print("  [fp64]")
		}
		fmt.Println()
		if *check {
			if err := maligo.CheckKernelResources(k); err != nil {
				fmt.Printf("  !! %v\n", err)
			} else {
				fmt.Printf("  ok: %.0f register bytes/thread demanded\n", maligo.KernelRegisterDemand(k))
			}
		}
		if *dis {
			fmt.Println(k.Disassemble())
		}
	}
	if n := len(prog.ConstantData); n > 0 {
		fmt.Printf("constant segment: %d bytes\n", n)
	}
}
