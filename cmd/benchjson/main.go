// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document, for committing benchmark baselines:
//
//	go test -run xxx -bench BenchmarkEngine ./internal/vm | benchjson > BENCH_vm.json
//
// Benchmarks that appear multiple times (go test -count N) are
// aggregated to the fastest run, the conventional noise-resistant
// summary for committed baselines. Beyond the three standard columns
// (ns/op, B/op, allocs/op) any `value unit` metric pair a benchmark
// reports — b.ReportMetric or a tool like malid-load emitting the
// same format — is kept in a "metrics" map keyed by unit.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp int64              `json:"bytes_per_op,omitempty"`
	AllocsOp   int64              `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Document is the whole baseline file.
type Document struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Package    string   `json:"pkg,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

var (
	benchName = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)
	// metricPair matches one `value unit` column: a number followed by
	// a unit token (ns/op, B/op, req/s, p99-ns, hit-rate, MB/s, ...).
	metricPair = regexp.MustCompile(`([\d.eE+-]+)\s+([A-Za-z][\w./%-]*)`)
)

// parse decodes one benchmark line, or ok=false when it isn't one.
func parse(line string) (Result, bool) {
	m := benchName.FindStringSubmatch(line)
	if m == nil {
		return Result{}, false
	}
	r := Result{Name: m[1]}
	r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
	for _, pair := range metricPair.FindAllStringSubmatch(m[3], -1) {
		v, err := strconv.ParseFloat(pair[1], 64)
		if err != nil {
			continue
		}
		switch pair[2] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[pair[2]] = v
		}
	}
	return r, true
}

// better reports whether a beats b as the committed summary: fastest
// by ns/op when both report it, otherwise highest first metric.
func better(a, b Result) bool {
	if a.NsPerOp != 0 || b.NsPerOp != 0 {
		return a.NsPerOp < b.NsPerOp
	}
	for k, v := range a.Metrics {
		if bv, ok := b.Metrics[k]; ok {
			return v > bv
		}
	}
	return false
}

func main() {
	var doc Document
	index := make(map[string]int)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Package = strings.TrimPrefix(line, "pkg: ")
		}
		r, ok := parse(line)
		if !ok {
			continue
		}
		if i, dup := index[r.Name]; dup {
			if better(r, doc.Benchmarks[i]) {
				doc.Benchmarks[i] = r
			}
			continue
		}
		index[r.Name] = len(doc.Benchmarks)
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}
