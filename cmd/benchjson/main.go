// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON document, for committing benchmark baselines:
//
//	go test -run xxx -bench BenchmarkEngine ./internal/vm | benchjson > BENCH_vm.json
//
// Benchmarks that appear multiple times (go test -count N) are
// aggregated to the fastest run, the conventional noise-resistant
// summary for committed baselines.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp int64   `json:"bytes_per_op,omitempty"`
	AllocsOp   int64   `json:"allocs_per_op,omitempty"`
}

// Document is the whole baseline file.
type Document struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Package    string   `json:"pkg,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	var doc Document
	index := make(map[string]int)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Package = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if i, ok := index[r.Name]; ok {
			if r.NsPerOp < doc.Benchmarks[i].NsPerOp {
				doc.Benchmarks[i] = r
			}
			continue
		}
		index[r.Name] = len(doc.Benchmarks)
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}
