// Command repolint runs the repository self-lint (internal/lint)
// over a source tree — by default the current directory — and prints
// one finding per line in file:line:col: rule: message form.
//
//	repolint [root]
//
// Exit status: 0 when the tree is clean, 1 when findings remain,
// 2 on a usage or I/O error. The Makefile lint target runs it over
// the repo before the kernel linter.
package main

import (
	"flag"
	"fmt"
	"os"

	"maligo/internal/lint"
)

func main() {
	flag.Parse()
	root := "."
	switch flag.NArg() {
	case 0:
	case 1:
		root = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: repolint [root]")
		os.Exit(2)
	}
	findings, err := lint.Check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
