// Command malid serves the maligo simulator as a multi-tenant job
// daemon: POST OpenCL C source, kernel arguments and an NDRange to
// /v1/jobs and get back the deterministic simulated report (timing,
// power, energy, optional buffer dumps). Programs are compiled once
// per content address and shared across tenants through an LRU binary
// cache, optionally persisted to disk. One daemon serves one board
// model from the device fleet (-device; the paper's Exynos 5250 by
// default, unknown names refuse startup).
//
//	malid -addr :8372 -cache-dir /var/cache/malid
//	malid -device exynos5422-big
//
//	curl -s localhost:8372/v1/jobs -d @job.json | jq .power.energy_j
//
// Endpoints: POST /v1/programs (register source, get its content
// address), POST /v1/jobs (run; ?async=1 to poll), GET /v1/jobs/{id},
// GET /metrics, GET /trace/{id} (Chrome trace of a finished job).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"maligo"
)

// parseTenantPolicies parses "tenant=policy,tenant=policy" overrides.
func parseTenantPolicies(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]string{}
	for _, pair := range strings.Split(s, ",") {
		name, policy, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" || policy == "" {
			return nil, fmt.Errorf("malformed -tenant-analysis entry %q (want tenant=policy)", pair)
		}
		out[name] = policy
	}
	return out, nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8372", "listen address")
		workers  = flag.Int("workers", 0, "engine worker pool size (0 = NumCPU)")
		arenaMB  = flag.Int64("arena-mb", 0, "per-context arena capacity in MiB (0 = default 512)")
		cacheDir = flag.String("cache-dir", "", "persist compiled programs under this directory")
		cacheN   = flag.Int("cache-entries", 128, "compiled-program LRU capacity")
		queued   = flag.Int("max-queued", 64, "per-tenant admission queue depth")
		conc     = flag.Int("max-concurrent", 4, "jobs running at once across all tenants")
		batch    = flag.Int64("batch-items", 4096, "batch jobs at or below this many work-items (-1 disables)")
		engine   = flag.String("engine", "", "VM engine: auto, interp, compiled, lanes")
		device   = flag.String("device", "", "board model the daemon simulates (default exynos5250); unknown names refuse startup")
		analysis = flag.String("analysis", "warn", "static-analysis admission policy: off, warn or error")
		tenantAn = flag.String("tenant-analysis", "", "per-tenant policy overrides, e.g. ci=error,scratch=off")
		optimize = flag.Bool("optimize", false, "run the transform pipeline on admitted programs (X-Malid-Optimize reports applied passes)")
	)
	flag.Parse()

	tenantPolicies, err := parseTenantPolicies(*tenantAn)
	if err != nil {
		log.Fatalf("malid: %v", err)
	}

	eng, err := maligo.ParseEngine(*engine)
	if err != nil {
		log.Fatalf("malid: %v", err)
	}
	if eng == maligo.EngineAuto {
		// A daemon with a mistyped MALIGO_ENGINE must refuse to start,
		// not silently serve every tenant on the default engine.
		if _, err := maligo.EngineFromEnvStrict(); err != nil {
			log.Fatalf("malid: MALIGO_ENGINE: %v", err)
		}
	}
	cfg := maligo.ServerConfig{
		MaxQueued:      *queued,
		MaxConcurrent:  *conc,
		CacheEntries:   *cacheN,
		CacheDir:       *cacheDir,
		BatchItems:     *batch,
		Analysis:       *analysis,
		TenantAnalysis: tenantPolicies,
		Optimize:       *optimize,
		Device:         *device,
	}
	cfg.Runtime.Workers = *workers
	cfg.Runtime.ArenaBytes = *arenaMB << 20
	cfg.Runtime.Engine = eng

	srv, err := maligo.NewServer(cfg)
	if err != nil {
		log.Fatalf("malid: %v", err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Printf("malid: serving on %s (device=%s workers=%d cache=%d dir=%q)",
		*addr, srv.Device().Name, *workers, *cacheN, *cacheDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("malid: %v", err)
		}
	case s := <-sig:
		fmt.Fprintln(os.Stderr)
		log.Printf("malid: %v, draining", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("malid: shutdown: %v", err)
	}
	srv.Close()
}
