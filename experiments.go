package maligo

import (
	"maligo/internal/bench"
	"maligo/internal/harness"
)

// The paper-reproduction surface: the nine benchmarks of §IV and the
// harness that regenerates every figure of §V.
type (
	// ExperimentConfig controls a harness run (scale, precisions,
	// benchmark subset, engine workers).
	ExperimentConfig = harness.Config
	// Results holds every measured cell of a harness run.
	Results = harness.Results
	// Cell is one measured benchmark/precision/version configuration.
	Cell = harness.Cell
	// Figure names one of the paper's evaluation figures (2a…4b).
	Figure = harness.Figure
	// Table is a rendered figure.
	Table = harness.Table
	// Summary is the §V-D cross-benchmark averages.
	Summary = harness.Summary
	// HostMemResult is the §III-A host-memory ablation outcome.
	HostMemResult = harness.HostMemResult
	// LayoutResult is the §III-B layout ablation outcome.
	LayoutResult = harness.LayoutResult
	// AutoOptResult is the §V auto-optimization leg: the naive OpenCL
	// versions as written, through the transform pipeline, and against
	// the paper's hand-optimized versions.
	AutoOptResult = harness.AutoOptResult
	// AutoOptBench is one benchmark's naive/auto/hand timing triple.
	AutoOptBench = harness.AutoOptBench

	// Precision selects float or double kernels.
	Precision = bench.Precision
	// Version selects Serial, OpenMP, OpenCL or OpenCL Opt.
	Version = bench.Version
	// Benchmark is one of the paper's nine workloads.
	Benchmark = bench.Benchmark
	// RunInfo reports which kernels a benchmark run launched.
	RunInfo = bench.RunInfo
)

// Precisions.
const (
	F32 = bench.F32
	F64 = bench.F64
)

// Benchmark versions.
const (
	Serial    = bench.Serial
	OpenMP    = bench.OpenMP
	OpenCL    = bench.OpenCL
	OpenCLOpt = bench.OpenCLOpt
)

// Evaluation figures (speedup, power, energy × single/double).
const (
	Fig2a = harness.Fig2a
	Fig2b = harness.Fig2b
	Fig3a = harness.Fig3a
	Fig3b = harness.Fig3b
	Fig4a = harness.Fig4a
	Fig4b = harness.Fig4b
)

// DefaultExperimentConfig is the paper-scale configuration.
func DefaultExperimentConfig() ExperimentConfig { return harness.DefaultConfig() }

// RunExperiments executes the configured experiments.
func RunExperiments(cfg ExperimentConfig) (*Results, error) { return harness.Run(cfg) }

// Figures lists the paper's evaluation figures.
func Figures() []Figure { return harness.Figures() }

// RunHostMemAblation reruns the §III-A host-memory experiment
// (explicit copies vs zero-copy mapping) on n elements.
func RunHostMemAblation(n int) (HostMemResult, error) { return harness.RunHostMemAblation(n) }

// RunLayoutAblation reruns the §III-B data-layout experiment on n
// elements.
func RunLayoutAblation(n int) (LayoutResult, error) { return harness.RunLayoutAblation(n) }

// RenderAblations renders both ablation outcomes as text.
func RenderAblations(hm HostMemResult, lo LayoutResult) string {
	return harness.RenderAblations(hm, lo)
}

// RunAutoOptAblation measures, per benchmark, how much of the §V
// hand-optimization speedup the automatic transform pipeline recovers.
func RunAutoOptAblation(scale float64) (AutoOptResult, error) {
	return harness.RunAutoOptAblation(scale)
}

// Benchmarks returns fresh instances of the paper's nine benchmarks.
func Benchmarks() []Benchmark { return bench.All() }

// BenchmarkNames lists the benchmark names in paper order.
func BenchmarkNames() []string { return bench.Names() }

// BenchmarkByName returns a fresh benchmark by name (nil if unknown).
func BenchmarkByName(name string) Benchmark { return bench.ByName(name) }

// BenchmarkVersions lists the four versions every benchmark has.
func BenchmarkVersions() []Version { return bench.Versions() }
