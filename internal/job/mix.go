package job

import (
	"encoding/binary"
	"math"

	"maligo/internal/bench"
)

// MixSpecs returns one small job per paper benchmark (all nine `_cl`
// kernels at load-test scale), with deterministic inputs. The load
// driver cycles through them and the conformance suite replays each
// one in-process and over the wire, comparing reports byte by byte.
func MixSpecs() []*Spec {
	f32 := bench.F32.BuildOptions()
	mk := func(name, kernel, device string, global, local []int, args []Arg) *Spec {
		return &Spec{
			Source:  bench.ByName(name).Source(),
			Options: f32,
			Kernel:  kernel,
			Device:  device,
			Global:  global,
			Local:   local,
			Args:    args,
		}
	}

	// vecop: c = a + b over n elements.
	const vn = 1024
	vecop := mk("vecop", "vecop_cl", DeviceGPU, []int{vn}, nil, []Arg{
		{Kind: ArgBuffer, Data: seqFloats(vn, 0.5, 0.25)},
		{Kind: ArgBuffer, Data: seqFloats(vn, 2.0, -0.125)},
		{Kind: ArgBuffer, Size: vn * 4, Read: true},
		{Kind: ArgInt, Int: vn},
	})

	// spmv: fixed 4 non-zeros per row on a banded pattern.
	const rows, nnzPerRow = 128, 4
	rowptr := make([]int32, rows+1)
	colidx := make([]int32, rows*nnzPerRow)
	for r := 0; r < rows; r++ {
		rowptr[r+1] = int32((r + 1) * nnzPerRow)
		for j := 0; j < nnzPerRow; j++ {
			colidx[r*nnzPerRow+j] = int32((r + j*7) % rows)
		}
	}
	spmv := mk("spmv", "spmv_cl", DeviceGPU, []int{rows}, nil, []Arg{
		{Kind: ArgBuffer, Data: int32Bytes(rowptr)},
		{Kind: ArgBuffer, Data: int32Bytes(colidx)},
		{Kind: ArgBuffer, Data: seqFloats(rows*nnzPerRow, 1.0, 0.0625)},
		{Kind: ArgBuffer, Data: seqFloats(rows, 1.0, -0.03125)},
		{Kind: ArgBuffer, Size: rows * 4, Read: true},
		{Kind: ArgInt, Int: rows},
	})

	// hist: n values scattered over 64 bins with atomic_add.
	const hn, hbins = 1024, 64
	data := make([]int32, hn)
	s := uint32(2463534242)
	for i := range data {
		s ^= s << 13
		s ^= s >> 17
		s ^= s << 5
		data[i] = int32(s % hbins)
	}
	hist := mk("hist", "hist_cl", DeviceGPU, []int{hn}, nil, []Arg{
		{Kind: ArgBuffer, Data: int32Bytes(data)},
		{Kind: ArgBuffer, Size: hbins * 4, Read: true},
		{Kind: ArgInt, Int: hn},
	})

	// stencil: d^3 interior points of an (d+2)^3 grid.
	const sd = 6
	const side = sd + 2
	stencil := mk("3dstc", "stencil_cl", DeviceGPU, []int{sd, sd, sd}, nil, []Arg{
		{Kind: ArgBuffer, Data: seqFloats(side*side*side, 0.25, 0.015625)},
		{Kind: ArgBuffer, Size: side * side * side * 4, Read: true},
		{Kind: ArgInt, Int: sd},
	})

	// reduction: each item folds 16 inputs, groups of 16 reduce in
	// local memory into one partial per group.
	const rn = 1024
	const ritems, rlocal = rn / 16, 16
	red := mk("red", "red_cl", DeviceGPU, []int{ritems}, []int{rlocal}, []Arg{
		{Kind: ArgBuffer, Data: seqFloats(rn, 0.001, 0.002)},
		{Kind: ArgBuffer, Size: (ritems / rlocal) * 4, Read: true},
		{Kind: ArgLocal, Size: rlocal * 4},
		{Kind: ArgInt, Int: rn},
	})

	// amcd: nsims independent Metropolis chains over 32 atoms.
	const nsims, natoms = 32, 32
	amcd := mk("amcd", "amcd_cl", DeviceGPU, []int{nsims}, nil, []Arg{
		{Kind: ArgBuffer, Data: seqFloats(3*natoms, -0.4, 0.026)},
		{Kind: ArgBuffer, Size: nsims * 4, Read: true},
		{Kind: ArgBuffer, Size: nsims * 4, Read: true},
		{Kind: ArgInt, Int: 8},
		{Kind: ArgInt, Int: nsims},
	})

	// nbody: one integration step of n bodies (AoS x,y,z,m records).
	const nb = 64
	nbody := mk("nbody", "nbody_cl", DeviceGPU, []int{nb}, nil, []Arg{
		{Kind: ArgBuffer, Data: seqFloats(4*nb, 0.1, 0.017)},
		{Kind: ArgBuffer, Data: seqFloats(3*nb, -0.05, 0.009)},
		{Kind: ArgBuffer, Size: 4 * nb * 4, Read: true},
		{Kind: ArgBuffer, Size: 3 * nb * 4, Read: true},
		{Kind: ArgInt, Int: nb},
	})

	// conv2d: 5x5 filter over a dim^2 interior with a 2-wide halo.
	const cd = 16
	const cside = cd + 4
	conv := mk("2dcon", "conv2d_cl", DeviceCPUDual, []int{cd, cd}, nil, []Arg{
		{Kind: ArgBuffer, Data: seqFloats(cside*cside, 0.3, 0.011)},
		{Kind: ArgBuffer, Data: seqFloats(25, 0.04, 0.001)},
		{Kind: ArgBuffer, Size: cside * cside * 4, Read: true},
		{Kind: ArgInt, Int: cd},
	})

	// dmmm: n x n dense matrix multiply.
	const dn = 16
	dmmm := mk("dmmm", "dmmm_cl", DeviceCPU, []int{dn, dn}, nil, []Arg{
		{Kind: ArgBuffer, Data: seqFloats(dn*dn, 0.5, 0.007)},
		{Kind: ArgBuffer, Data: seqFloats(dn*dn, -0.25, 0.013)},
		{Kind: ArgBuffer, Size: dn * dn * 4, Read: true},
		{Kind: ArgInt, Int: dn},
	})

	return []*Spec{spmv, vecop, hist, stencil, red, amcd, nbody, conv, dmmm}
}

// seqFloats encodes n float32 values start, start+step, ... as bytes.
func seqFloats(n int, start, step float64) []byte {
	out := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(float32(start+float64(i)*step)))
	}
	return out
}

// int32Bytes encodes int32 values little-endian.
func int32Bytes(vals []int32) []byte {
	out := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}
