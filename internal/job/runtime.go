package job

import (
	"fmt"
	"runtime"
	"sync"

	"maligo/internal/cl"
	"maligo/internal/clc"
	"maligo/internal/clc/ir"
	"maligo/internal/cpu"
	"maligo/internal/device"
	"maligo/internal/mali"
	"maligo/internal/platform"
	"maligo/internal/power"
	"maligo/internal/vm"
)

// Config sizes a Runtime.
type Config struct {
	// ArenaBytes is the unified-memory capacity of every pooled
	// context (default 512 MiB).
	ArenaBytes int64
	// Workers is the host worker count of the shared NDRange engine
	// pool; 0 selects runtime.NumCPU(), 1 disables host parallelism.
	// Results are bit-identical at every setting.
	Workers int
	// Engine selects the VM execution engine (default honours
	// MALIGO_ENGINE, otherwise the compiled fast path).
	Engine Engine
	// MaxIdle bounds the pooled-context free list (default 4).
	MaxIdle int
	// SoC selects the board model jobs run on (nil = the default
	// Exynos 5250); malid configures it once at startup with
	// -device, so one daemon serves one board model.
	SoC *platform.SoC
}

// Engine aliases the VM engine selector so Runtime users need not
// import internal/vm.
type Engine = vm.Engine

// Runtime executes job Specs deterministically: every job runs on
// fresh device models (cold caches, like the harness gives each
// benchmark) over a pooled context whose arena is reset between jobs
// (identical buffer addresses), with every context multiplexed over
// one shared host worker pool. The combination makes a job's Result a
// pure function of its Spec — the same document yields byte-identical
// JSON no matter which context served it, how many jobs ran before
// it, or how many tenants run concurrently.
type Runtime struct {
	cfg  Config
	pool *device.Pool // shared host pool; nil when Workers == 1

	mu     sync.Mutex
	idle   []*cl.Context
	closed bool
}

// NewRuntime creates a runtime and its shared worker pool.
func NewRuntime(cfg Config) *Runtime {
	if cfg.Workers == 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.SoC == nil {
		cfg.SoC = platform.Default()
	}
	if cfg.MaxIdle == 0 {
		cfg.MaxIdle = 4
	}
	r := &Runtime{cfg: cfg}
	if cfg.Workers > 1 {
		r.pool = device.NewPool(cfg.Workers)
	}
	return r
}

// Close drains the context pool and stops the shared workers.
func (r *Runtime) Close() {
	r.mu.Lock()
	idle := r.idle
	r.idle, r.closed = nil, true
	r.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
	if r.pool != nil {
		r.pool.Close()
	}
}

// checkout hands out a context with an empty arena — pooled when one
// is free, freshly built otherwise.
func (r *Runtime) checkout() *cl.Context {
	r.mu.Lock()
	if n := len(r.idle); n > 0 {
		c := r.idle[n-1]
		r.idle = r.idle[:n-1]
		r.mu.Unlock()
		return c
	}
	r.mu.Unlock()
	opts := []cl.ContextOption{
		cl.WithArenaBytes(r.cfg.ArenaBytes),
		cl.WithEngine(r.cfg.Engine),
	}
	if r.pool != nil {
		opts = append(opts, cl.WithPool(r.pool))
	} else {
		opts = append(opts, cl.WithWorkers(1))
	}
	return cl.NewContextWith(opts...)
}

// checkin returns a context to the pool. The arena must reset cleanly
// (every buffer freed) for the context to be reusable — a job that
// leaked allocations gets its context retired instead, preserving the
// determinism contract for the next job.
func (r *Runtime) checkin(c *cl.Context) {
	if !c.Arena().Reset() {
		c.Close()
		return
	}
	r.mu.Lock()
	if !r.closed && len(r.idle) < r.cfg.MaxIdle {
		r.idle = append(r.idle, c)
		c = nil
	}
	r.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Compile compiles a spec's program standalone (the slow path the
// service's binary cache exists to skip).
func Compile(source, options string) (*clc.Artifacts, error) {
	return clc.CompileArtifacts("program.cl", source, options)
}

// Run validates, compiles and executes one job.
func (r *Runtime) Run(spec *Spec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Source == "" {
		return nil, invalid("program_id given without source and no cache to resolve it")
	}
	art, err := Compile(spec.Source, spec.Options)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", cl.ErrBuildFailure, err)
	}
	return r.RunCompiled(spec, art.Prog)
}

// RunCompiled executes one job against an already-compiled program
// (shared across tenants via the content-addressed cache; ir.Kernel
// memoizes its closure-compiled form behind an atomic, so concurrent
// use is safe).
func (r *Runtime) RunCompiled(spec *Spec, prog *ir.Program) (*Result, error) {
	c := r.checkout()
	defer r.checkin(c)
	return r.runOn(c, spec, prog)
}

// RunBatch executes several jobs back to back on one checked-out
// context — the small-NDRange batching path of the service. The arena
// is reset between jobs, so every result stays byte-identical to a
// solo run; what the batch saves is the per-job checkout round trip.
// Results and errors are positional.
func (r *Runtime) RunBatch(specs []*Spec, progs []*ir.Program) ([]*Result, []error) {
	results := make([]*Result, len(specs))
	errs := make([]error, len(specs))
	c := r.checkout()
	for i, spec := range specs {
		results[i], errs[i] = r.runOn(c, spec, progs[i])
		if i < len(specs)-1 && !c.Arena().Reset() {
			// A leaked allocation poisons the address layout; retire
			// the context rather than let job i+1 see it.
			c.Close()
			c = r.checkout()
		}
	}
	r.checkin(c)
	return results, errs
}

// runOn executes one job on an already-checked-out context whose
// arena is empty.
func (r *Runtime) runOn(c *cl.Context, spec *Spec, prog *ir.Program) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	// Fresh device models per job: cold caches, like the harness gives
	// each benchmark, so reports never depend on what ran before.
	var dev device.Device
	gpuRun := false
	switch spec.Device {
	case DeviceCPU:
		dev = cpu.NewOn(r.cfg.SoC, 1)
	case DeviceCPUDual:
		dev = cpu.NewOn(r.cfg.SoC, r.cfg.SoC.CPU.Cores)
	case DeviceGPU:
		dev = mali.NewOn(r.cfg.SoC)
		gpuRun = true
	}

	p := c.CreateProgramFromIR(prog, spec.Source)
	k, err := p.CreateKernel(spec.Kernel)
	if err != nil {
		return nil, err
	}
	if len(spec.Args) != k.NumArgs() {
		return nil, invalid("kernel %s takes %d args, got %d", spec.Kernel, k.NumArgs(), len(spec.Args))
	}

	bufs := make([]*cl.Buffer, len(spec.Args))
	defer func() {
		for _, b := range bufs {
			if b != nil {
				b.Release()
			}
		}
	}()
	for i, a := range spec.Args {
		switch a.Kind {
		case ArgBuffer:
			size := a.Size
			if size == 0 {
				size = int64(len(a.Data))
			}
			b, err := c.CreateBuffer(cl.MemReadWrite, size, nil)
			if err != nil {
				return nil, err
			}
			bufs[i] = b
			if len(a.Data) > 0 {
				raw, err := b.Bytes(0, int64(len(a.Data)))
				if err != nil {
					return nil, err
				}
				copy(raw, a.Data)
			}
			if err := k.SetArgBuffer(i, b); err != nil {
				return nil, err
			}
		case ArgLocal:
			if err := k.SetArgLocal(i, int(a.Size)); err != nil {
				return nil, err
			}
		case ArgInt:
			if err := k.SetArgInt(i, a.Int); err != nil {
				return nil, err
			}
		case ArgFloat:
			if err := k.SetArgFloat(i, a.Float); err != nil {
				return nil, err
			}
		}
	}

	q := c.CreateCommandQueue(dev)
	if _, err := q.EnqueueNDRangeKernel(k, len(spec.Global), spec.Global, spec.Local); err != nil {
		return nil, err
	}
	if err := q.Finish(); err != nil {
		return nil, err
	}

	res := &Result{
		ProgramID: ProgramID(spec.Source, spec.Options),
		Kernel:    spec.Kernel,
		Device:    spec.Device,
	}
	if spec.ProgramID != "" && spec.Source == "" {
		res.ProgramID = spec.ProgramID
	}
	act := activityFromEvents(q.Events(), gpuRun)
	res.Seconds = act.Seconds
	for _, ev := range q.Events() {
		res.Events = append(res.Events, EventStamp{
			Kind: ev.Kind, Name: ev.Name,
			Queued: ev.Queued, Submitted: ev.Submitted,
			Started: ev.Started, Ended: ev.Ended, Seconds: ev.Seconds,
		})
	}
	seed := spec.MeterSeed
	if seed == 0 {
		seed = 20140519
	}
	hz := spec.MeterHz
	if hz == 0 {
		hz = 10
	}
	m := power.NewMeterFor(r.cfg.SoC, seed, hz).Measure(act)
	res.Power = Power{
		MeanPowerW: m.MeanPowerW, StdPowerW: m.StdPowerW,
		EnergyJ: m.EnergyJ, StdEnergyJ: m.StdEnergyJ, Samples: m.Samples,
	}
	for i, a := range spec.Args {
		if a.Kind != ArgBuffer || !a.Read {
			continue
		}
		raw, err := bufs[i].Bytes(0, bufs[i].Size())
		if err != nil {
			return nil, err
		}
		out := make([]byte, len(raw))
		copy(out, raw)
		res.Buffers = append(res.Buffers, BufferOut{Arg: i, Data: out})
	}
	return res, nil
}

// activityFromEvents folds the queue history into a power-model
// activity, the same way the harness does for a measured region.
func activityFromEvents(events []*cl.Event, gpuRun bool) power.Activity {
	var act power.Activity
	for _, ev := range events {
		act.Seconds += ev.Seconds
		if ev.Report == nil {
			act.CPUBusyCoreSeconds += ev.Seconds
			if act.CPUUtil < 0.4 {
				act.CPUUtil = 0.4
			}
			continue
		}
		rep := ev.Report
		act.DRAMBytes += rep.DRAMBytes
		if gpuRun {
			act.GPUBusyCoreSeconds += rep.BusyCoreSeconds
			act.GPUUtil = weightedUtil(act.GPUUtil, act.GPUBusyCoreSeconds-rep.BusyCoreSeconds,
				rep.Utilization, rep.BusyCoreSeconds)
			act.HostSpinSeconds += ev.Seconds
		} else {
			act.CPUBusyCoreSeconds += rep.BusyCoreSeconds
			act.CPUUtil = weightedUtil(act.CPUUtil, act.CPUBusyCoreSeconds-rep.BusyCoreSeconds,
				rep.Utilization, rep.BusyCoreSeconds)
		}
	}
	return act
}

func weightedUtil(prevUtil, prevWeight, util, weight float64) float64 {
	total := prevWeight + weight
	if total <= 0 {
		return util
	}
	return (prevUtil*prevWeight + util*weight) / total
}
