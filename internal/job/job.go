// Package job defines the serializable job document of the malid
// service: a Spec describes one compile+enqueue request (OpenCL C
// source, kernel arguments, NDRange geometry) and a Result carries the
// deterministic simulated report back. The same document runs
// in-process (maligo.RunJob) or over the wire (maligo.Client ->
// cmd/malid) and produces byte-identical JSON either way — every field
// is simulated state; host wall-clock never appears.
package job

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
)

// ErrInvalidJob is wrapped around every Spec validation failure, so
// callers can errors.Is a bad request apart from an execution error.
var ErrInvalidJob = errors.New("job: invalid spec")

// Devices a Spec may target.
const (
	DeviceCPU     = "cpu"  // single Cortex-A15 core (the paper's Serial target)
	DeviceCPUDual = "cpu2" // the full CPU cluster (the OpenMP target)
	DeviceGPU     = "gpu"  // Mali-T604
)

// Argument kinds.
const (
	ArgBuffer = "buffer" // global-memory buffer (Size/Data/Read)
	ArgInt    = "int"    // integer scalar (Int)
	ArgFloat  = "float"  // floating scalar (Float)
	ArgLocal  = "local"  // __local scratch of Size bytes
)

// Spec is one job request. Source+Options identify the program
// (content-addressed by ProgramID); Kernel/Device/Global/Local/Args
// describe the single NDRange to run on it.
type Spec struct {
	// Tenant names the submitting tenant (defaults to "default" on the
	// server; ignored in-process).
	Tenant string `json:"tenant,omitempty"`
	// Source is the OpenCL C program. It may be empty when ProgramID
	// names a program already in the server's compiled-program cache.
	Source string `json:"source,omitempty"`
	// ProgramID is the content address sha256:<hex> of Source+Options.
	// Optional on submission (the server derives it); when set without
	// Source, the server must find it in the cache.
	ProgramID string `json:"program_id,omitempty"`
	// Options are clBuildProgram-style options ("-DREAL=float").
	Options string `json:"options,omitempty"`
	// Kernel is the __kernel to launch.
	Kernel string `json:"kernel"`
	// Device is one of DeviceCPU, DeviceCPUDual, DeviceGPU.
	Device string `json:"device"`
	// Global is the NDRange global size (1-3 dimensions); Local the
	// optional work-group size.
	Global []int `json:"global"`
	Local  []int `json:"local,omitempty"`
	// Args bind the kernel parameters positionally.
	Args []Arg `json:"args"`
	// MeterSeed seeds the power meter's deterministic noise stream
	// (default 20140519, the harness seed); MeterHz its sampling rate
	// (default 10 Hz, the paper's Yokogawa WT230).
	MeterSeed uint64  `json:"meter_seed,omitempty"`
	MeterHz   float64 `json:"meter_hz,omitempty"`
}

// Arg is one positional kernel argument.
type Arg struct {
	Kind string `json:"kind"`
	// Size is the byte size of a buffer or __local argument. For
	// buffers it may be omitted when Data is given (len(Data) is used).
	Size int64 `json:"size,omitempty"`
	// Data is the buffer's initial contents (base64 in JSON), zero
	// padded to Size. Buffers only.
	Data []byte `json:"data,omitempty"`
	// Read requests the buffer's final contents in Result.Buffers.
	Read bool `json:"read,omitempty"`
	// Int / Float carry scalar values.
	Int   int64   `json:"int,omitempty"`
	Float float64 `json:"float,omitempty"`
}

// Result is the deterministic simulated report of one job. Every
// field is a pure function of the Spec and the simulation model.
type Result struct {
	ProgramID string `json:"program_id"`
	Kernel    string `json:"kernel"`
	Device    string `json:"device"`
	// Seconds is the simulated duration of the measured region (the
	// sum of command durations on the in-order queue).
	Seconds float64 `json:"seconds"`
	// Events is the command timeline with OpenCL profiling stamps.
	Events []EventStamp `json:"events"`
	// Power is the simulated board-level measurement.
	Power Power `json:"power"`
	// Buffers carries the final contents of every Read argument.
	Buffers []BufferOut `json:"buffers,omitempty"`
}

// EventStamp is one command's profiling record.
type EventStamp struct {
	Kind      string  `json:"kind"`
	Name      string  `json:"name"`
	Queued    float64 `json:"queued"`
	Submitted float64 `json:"submitted"`
	Started   float64 `json:"started"`
	Ended     float64 `json:"ended"`
	Seconds   float64 `json:"seconds"`
}

// Power mirrors power.Measurement.
type Power struct {
	MeanPowerW float64 `json:"mean_power_w"`
	StdPowerW  float64 `json:"std_power_w"`
	EnergyJ    float64 `json:"energy_j"`
	StdEnergyJ float64 `json:"std_energy_j"`
	Samples    int     `json:"samples"`
}

// BufferOut is the final contents of one Read buffer argument.
type BufferOut struct {
	Arg  int    `json:"arg"`
	Data []byte `json:"data"`
}

// ProgramID computes the content address of a program: sha256 over
// the source and build options. Identical inputs always map to the
// same compiled program, which is what makes the binary cache safe.
func ProgramID(source, options string) string {
	h := sha256.New()
	h.Write([]byte(source))
	h.Write([]byte{0})
	h.Write([]byte(options))
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// WorkItems returns the total global work-item count of the spec.
func (s *Spec) WorkItems() int64 {
	n := int64(1)
	for _, g := range s.Global {
		n *= int64(g)
	}
	return n
}

func invalid(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidJob, fmt.Sprintf(format, args...))
}

// Validate checks everything checkable without compiling the program.
func (s *Spec) Validate() error {
	if s.Source == "" && s.ProgramID == "" {
		return invalid("one of source or program_id is required")
	}
	if s.Kernel == "" {
		return invalid("kernel is required")
	}
	switch s.Device {
	case DeviceCPU, DeviceCPUDual, DeviceGPU:
	case "":
		return invalid("device is required (cpu, cpu2 or gpu)")
	default:
		return invalid("unknown device %q (want cpu, cpu2 or gpu)", s.Device)
	}
	if len(s.Global) < 1 || len(s.Global) > 3 {
		return invalid("global must have 1-3 dimensions, got %d", len(s.Global))
	}
	for d, g := range s.Global {
		if g <= 0 {
			return invalid("global[%d] = %d, want > 0", d, g)
		}
	}
	if len(s.Local) > len(s.Global) {
		return invalid("local has %d dimensions but global has %d", len(s.Local), len(s.Global))
	}
	for d, l := range s.Local {
		if l <= 0 {
			return invalid("local[%d] = %d, want > 0", d, l)
		}
	}
	for i, a := range s.Args {
		switch a.Kind {
		case ArgBuffer:
			size := a.Size
			if size == 0 {
				size = int64(len(a.Data))
			}
			if size <= 0 {
				return invalid("arg %d: buffer needs a positive size or data", i)
			}
			if int64(len(a.Data)) > size {
				return invalid("arg %d: data (%d bytes) exceeds size %d", i, len(a.Data), size)
			}
		case ArgLocal:
			if a.Size <= 0 {
				return invalid("arg %d: local needs a positive size", i)
			}
		case ArgInt, ArgFloat:
		case "":
			return invalid("arg %d: kind is required", i)
		default:
			return invalid("arg %d: unknown kind %q", i, a.Kind)
		}
	}
	return nil
}
