package job

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	good := func() *Spec {
		return &Spec{
			Source: "k", Kernel: "k", Device: DeviceGPU, Global: []int{4},
			Args: []Arg{{Kind: ArgInt, Int: 1}},
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no source or program id", func(s *Spec) { s.Source = "" }},
		{"no kernel", func(s *Spec) { s.Kernel = "" }},
		{"no device", func(s *Spec) { s.Device = "" }},
		{"bad device", func(s *Spec) { s.Device = "tpu" }},
		{"no global", func(s *Spec) { s.Global = nil }},
		{"4-d global", func(s *Spec) { s.Global = []int{1, 1, 1, 1} }},
		{"zero global", func(s *Spec) { s.Global = []int{0} }},
		{"local wider than global", func(s *Spec) { s.Local = []int{2, 2} }},
		{"zero local", func(s *Spec) { s.Local = []int{0} }},
		{"sizeless buffer", func(s *Spec) { s.Args = []Arg{{Kind: ArgBuffer}} }},
		{"data exceeds size", func(s *Spec) { s.Args = []Arg{{Kind: ArgBuffer, Size: 1, Data: []byte{1, 2}}} }},
		{"sizeless local", func(s *Spec) { s.Args = []Arg{{Kind: ArgLocal}} }},
		{"kindless arg", func(s *Spec) { s.Args = []Arg{{}} }},
		{"unknown kind", func(s *Spec) { s.Args = []Arg{{Kind: "image"}} }},
	}
	for _, tc := range cases {
		s := good()
		tc.mutate(s)
		if err := s.Validate(); !errors.Is(err, ErrInvalidJob) {
			t.Errorf("%s: err = %v, want ErrInvalidJob", tc.name, err)
		}
	}
}

func TestProgramIDStable(t *testing.T) {
	a := ProgramID("src", "opts")
	if a != ProgramID("src", "opts") {
		t.Fatal("ProgramID not stable")
	}
	if !strings.HasPrefix(a, "sha256:") {
		t.Fatalf("ProgramID = %q, want sha256: prefix", a)
	}
	// The separator keeps (source, options) unambiguous.
	if ProgramID("ab", "c") == ProgramID("a", "bc") {
		t.Fatal("ProgramID collides across the source/options boundary")
	}
}

// TestMixDeterministicAcrossReuse is the core determinism contract of
// the service: every mix job yields a byte-identical JSON result on a
// freshly built runtime and on a reused pooled context (second run),
// at any worker count.
func TestMixDeterministicAcrossReuse(t *testing.T) {
	specs := MixSpecs()
	if len(specs) != 9 {
		t.Fatalf("MixSpecs: got %d specs, want 9", len(specs))
	}
	parallel := NewRuntime(Config{Workers: 4})
	defer parallel.Close()
	serial := NewRuntime(Config{Workers: 1})
	defer serial.Close()

	for _, spec := range specs {
		first, err := parallel.Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Kernel, err)
		}
		again, err := parallel.Run(spec) // reused pooled context
		if err != nil {
			t.Fatalf("%s (reuse): %v", spec.Kernel, err)
		}
		other, err := serial.Run(spec) // different worker count
		if err != nil {
			t.Fatalf("%s (serial): %v", spec.Kernel, err)
		}
		j1, _ := json.Marshal(first)
		j2, _ := json.Marshal(again)
		j3, _ := json.Marshal(other)
		if !bytes.Equal(j1, j2) {
			t.Errorf("%s: context reuse changed the result\nfirst: %s\nagain: %s", spec.Kernel, j1, j2)
		}
		if !bytes.Equal(j1, j3) {
			t.Errorf("%s: worker count changed the result", spec.Kernel)
		}
		if first.Seconds <= 0 || first.Power.EnergyJ <= 0 {
			t.Errorf("%s: implausible report: seconds=%v energy=%v", spec.Kernel, first.Seconds, first.Power.EnergyJ)
		}
	}
}

// TestVecopResultCorrect spot-checks the actual computation through
// the job layer: c = a + b.
func TestVecopResultCorrect(t *testing.T) {
	r := NewRuntime(Config{Workers: 2})
	defer r.Close()
	var spec *Spec
	for _, s := range MixSpecs() {
		if s.Kernel == "vecop_cl" {
			spec = s
		}
	}
	res, err := r.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Buffers) != 1 || res.Buffers[0].Arg != 2 {
		t.Fatalf("Buffers = %+v, want one dump of arg 2", res.Buffers)
	}
	a, b, c := spec.Args[0].Data, spec.Args[1].Data, res.Buffers[0].Data
	for i := 0; i < len(c)/4; i++ {
		av := math.Float32frombits(binary.LittleEndian.Uint32(a[i*4:]))
		bv := math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
		cv := math.Float32frombits(binary.LittleEndian.Uint32(c[i*4:]))
		if cv != av+bv {
			t.Fatalf("c[%d] = %v, want %v", i, cv, av+bv)
		}
	}
}

// TestRunCompiledSharedProgram runs one compiled program through two
// runtimes concurrently — the cache-sharing pattern of the service.
func TestRunCompiledSharedProgram(t *testing.T) {
	spec := MixSpecs()[1] // vecop
	art, err := Compile(spec.Source, spec.Options)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRuntime(Config{Workers: 2})
	defer r.Close()

	type out struct {
		res *Result
		err error
	}
	ch := make(chan out, 8)
	for i := 0; i < 8; i++ {
		go func() {
			res, err := r.RunCompiled(spec, art.Prog)
			ch <- out{res, err}
		}()
	}
	var ref []byte
	for i := 0; i < 8; i++ {
		o := <-ch
		if o.err != nil {
			t.Fatal(o.err)
		}
		j, _ := json.Marshal(o.res)
		if ref == nil {
			ref = j
		} else if !bytes.Equal(ref, j) {
			t.Fatal("concurrent RunCompiled results differ")
		}
	}
}
