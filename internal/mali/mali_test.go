package mali_test

import (
	"errors"
	"testing"

	"maligo/internal/cl"
	"maligo/internal/clc"
	"maligo/internal/device"
	"maligo/internal/mali"
	"maligo/internal/platform"
)

func compileKernel(t *testing.T, src, opts, name string) *cl.Kernel {
	t.Helper()
	ctx := cl.NewContext(mali.New())
	prog := ctx.CreateProgramWithSource(src)
	if err := prog.Build(opts); err != nil {
		t.Fatalf("build: %v", err)
	}
	k, err := prog.CreateKernel(name)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestDefaultLocalSizeHeuristic(t *testing.T) {
	g := mali.New()
	cases := []struct {
		global [3]int
		want   int
	}{
		{[3]int{1024, 1, 1}, 64}, // large power of two: driver max 64
		{[3]int{96, 96, 96}, 32}, // 96 divisible by 32, not 64
		{[3]int{94, 1, 1}, 2},    // 94 = 2*47: pathological pick
		{[3]int{7, 1, 1}, 1},     // prime: serial groups
	}
	for _, c := range cases {
		ndr := &device.NDRange{WorkDim: 3, Global: c.global}
		got := g.DefaultLocalSize(ndr)
		if got[0] != c.want || got[1] != 1 || got[2] != 1 {
			t.Errorf("DefaultLocalSize(%v) = %v, want [%d 1 1]", c.global, got, c.want)
		}
	}
}

const simpleSrc = `
__kernel void k(__global float* p, const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        p[i] = p[i] + 1.0f;
    }
}`

func TestRunReportSanity(t *testing.T) {
	gpu := mali.New()
	ctx := cl.NewContext(gpu)
	prog := ctx.CreateProgramWithSource(simpleSrc)
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	k, _ := prog.CreateKernel("k")
	buf, _ := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, 1024*4, nil)
	if err := k.SetArgBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgInt(1, 1024); err != nil {
		t.Fatal(err)
	}
	q := ctx.CreateCommandQueue(gpu)
	ev, err := q.EnqueueNDRangeKernel(k, 1, []int{1024}, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	rep := ev.Report
	if rep.Seconds <= 0 {
		t.Error("Seconds must be positive")
	}
	if rep.Seconds < platform.GPUEnqueueOverheadSec {
		t.Error("Seconds must include the enqueue overhead")
	}
	if rep.ActiveCores < 1 || rep.ActiveCores > platform.GPUCores {
		t.Errorf("ActiveCores = %d", rep.ActiveCores)
	}
	if rep.Utilization < 0 || rep.Utilization > 1 {
		t.Errorf("Utilization = %v", rep.Utilization)
	}
	if rep.Profile.WorkItems != 1024 {
		t.Errorf("WorkItems = %d", rep.Profile.WorkItems)
	}
	if rep.BusyCoreSeconds <= 0 {
		t.Error("BusyCoreSeconds must be positive")
	}
}

func TestVectorizedKernelFasterThanScalar(t *testing.T) {
	src := `
__kernel void scalar(__global const float* a, __global float* b) {
    size_t i = get_global_id(0);
    b[i] = a[i] * 2.0f;
}
__kernel void vec(__global const float* restrict a, __global float* restrict b) {
    size_t i = get_global_id(0);
    vstore4(vload4(i, a) * (float4)(2.0f), i, b);
}`
	gpu := mali.New()
	ctx := cl.NewContext(gpu)
	prog := ctx.CreateProgramWithSource(src)
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	const n = 1 << 16
	bufA, _ := ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, n*4, nil)
	bufB, _ := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, n*4, nil)
	q := ctx.CreateCommandQueue(gpu)

	run := func(name string, global int) float64 {
		k, err := prog.CreateKernel(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.SetArgBuffer(0, bufA); err != nil {
			t.Fatal(err)
		}
		if err := k.SetArgBuffer(1, bufB); err != nil {
			t.Fatal(err)
		}
		// Warm then measure.
		if _, err := q.EnqueueNDRangeKernel(k, 1, []int{global}, []int{64}); err != nil {
			t.Fatal(err)
		}
		ev, err := q.EnqueueNDRangeKernel(k, 1, []int{global}, []int{64})
		if err != nil {
			t.Fatal(err)
		}
		return ev.Seconds
	}
	ts := run("scalar", n)
	tv := run("vec", n/4)
	if tv >= ts {
		t.Fatalf("vectorized kernel (%.3gs) must beat scalar (%.3gs) — the paper's §III-B claim", tv, ts)
	}
	if ts/tv < 1.5 {
		t.Errorf("vectorization speedup only %.2fx; expected a distinct win", ts/tv)
	}
}

func TestRegisterBudgetOutOfResources(t *testing.T) {
	// Generated kernel with a huge live double-vector working set.
	src := `
__kernel void fat(__global double* p) {
    double4 a0 = vload4(0, p);
    double4 a1 = vload4(1, p);
    double4 a2 = vload4(2, p);
    double4 a3 = vload4(3, p);
    double4 a4 = vload4(4, p);
    double4 a5 = vload4(5, p);
    double4 a6 = vload4(6, p);
    double4 a7 = vload4(7, p);
    double4 s = a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7;
    vstore4(s, 0, p);
}`
	prog, err := clc.Compile("fat.cl", src, "")
	if err != nil {
		t.Fatal(err)
	}
	err = mali.CheckResources(prog.Kernel("fat"))
	if !errors.Is(err, device.ErrOutOfResources) {
		t.Fatalf("fat double-vector kernel should exceed the register budget, got %v", err)
	}

	// The float version of the same kernel fits.
	srcF := `
__kernel void slim(__global float* p) {
    float4 a0 = vload4(0, p);
    float4 a1 = vload4(1, p);
    float4 a2 = vload4(2, p);
    float4 a3 = vload4(3, p);
    float4 a4 = vload4(4, p);
    float4 a5 = vload4(5, p);
    float4 a6 = vload4(6, p);
    float4 a7 = vload4(7, p);
    float4 s = a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7;
    vstore4(s, 0, p);
}`
	progF, err := clc.Compile("slim.cl", srcF, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := mali.CheckResources(progF.Kernel("slim")); err != nil {
		t.Fatalf("float version should fit the register budget: %v", err)
	}
}

func TestContendedAtomicsSerialize(t *testing.T) {
	src := `
__kernel void hot(__global int* c) {
    atomic_add(&c[0], 1);
}
__kernel void spread(__global int* c) {
    atomic_add(&c[get_global_id(0) % 4096u], 1);
}`
	gpu := mali.New()
	ctx := cl.NewContext(gpu)
	prog := ctx.CreateProgramWithSource(src)
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	buf, _ := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, 4096*4, nil)
	q := ctx.CreateCommandQueue(gpu)
	const n = 1 << 15
	run := func(name string) float64 {
		k, err := prog.CreateKernel(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.SetArgBuffer(0, buf); err != nil {
			t.Fatal(err)
		}
		ev, err := q.EnqueueNDRangeKernel(k, 1, []int{n}, []int{64})
		if err != nil {
			t.Fatal(err)
		}
		return ev.Seconds
	}
	hot := run("hot")
	spread := run("spread")
	if hot <= spread {
		t.Fatalf("atomics to one line (%.3g s) must serialize worse than spread atomics (%.3g s)", hot, spread)
	}
}

func TestLoadImbalanceVisible(t *testing.T) {
	// One work-group does n iterations, the rest do none: the device
	// time must approach the heavy group's time, not the average.
	src := `
__kernel void skew(__global float* p, const int n) {
    if (get_group_id(0) == 0u) {
        float acc = 0.0f;
        for (int i = 0; i < n; i++) {
            acc += (float)i * 0.5f;
        }
        p[get_local_id(0)] = acc;
    }
}`
	gpu := mali.New()
	ctx := cl.NewContext(gpu)
	prog := ctx.CreateProgramWithSource(src)
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	k, _ := prog.CreateKernel("skew")
	buf, _ := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, 64*4, nil)
	if err := k.SetArgBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgInt(1, 200000); err != nil {
		t.Fatal(err)
	}
	q := ctx.CreateCommandQueue(gpu)
	ev, err := q.EnqueueNDRangeKernel(k, 1, []int{64 * 64}, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	rep := ev.Report
	// With perfect balance across 4 cores, Seconds ≈ Busy/4; with one
	// heavy group it must be close to the whole busy time.
	if rep.Seconds < rep.BusyCoreSeconds*0.7 {
		t.Fatalf("imbalance hidden: device %.4gs vs busy %.4gs", rep.Seconds, rep.BusyCoreSeconds)
	}
	_ = compileKernel // keep helper referenced
}

func TestEmbeddedProfileRejectsFP64(t *testing.T) {
	// The paper's premise (§I, §II-B): pre-Full-Profile embedded GPUs
	// cannot run HPC's double-precision kernels at all.
	src := `__kernel void k(__global double* p) { p[0] = p[0] * 2.0; }`
	emb := mali.NewEmbeddedProfile()
	if emb.FP64() {
		t.Fatal("embedded-profile device must not report FP64")
	}
	ctx := cl.NewContext(emb)
	prog := ctx.CreateProgramWithSource(src)
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	k, _ := prog.CreateKernel("k")
	buf, _ := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, 64, nil)
	if err := k.SetArgBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	q := ctx.CreateCommandQueue(emb)
	if _, err := q.EnqueueNDRangeKernel(k, 1, []int{1}, []int{1}); err == nil {
		t.Fatal("double kernel must fail on the embedded-profile device")
	}

	// The Full Profile device runs it.
	full := mali.New()
	if !full.FP64() {
		t.Fatal("Mali-T604 must report FP64 (Full Profile)")
	}
	ctx2 := cl.NewContext(full)
	prog2 := ctx2.CreateProgramWithSource(src)
	if err := prog2.Build(""); err != nil {
		t.Fatal(err)
	}
	k2, _ := prog2.CreateKernel("k")
	buf2, _ := ctx2.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, 64, nil)
	if err := k2.SetArgBuffer(0, buf2); err != nil {
		t.Fatal(err)
	}
	q2 := ctx2.CreateCommandQueue(full)
	if _, err := q2.EnqueueNDRangeKernel(k2, 1, []int{1}, []int{1}); err != nil {
		t.Fatalf("Full Profile device must run double kernels: %v", err)
	}
}

// TestQualifiedParamsFasterThanUnqualified: the §V-D const/restrict
// qualifiers buy a small but real load/store-pipe win — the modelled
// benefit the constrestrict transform pass banks on.
func TestQualifiedParamsFasterThanUnqualified(t *testing.T) {
	src := `
__kernel void plain(__global const float* a, __global float* b) {
    size_t i = get_global_id(0);
    b[i] = a[i] * 2.0f;
}
__kernel void qual(__global const float* restrict a, __global float* restrict b) {
    size_t i = get_global_id(0);
    b[i] = a[i] * 2.0f;
}`
	gpu := mali.New()
	ctx := cl.NewContext(gpu)
	prog := ctx.CreateProgramWithSource(src)
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	const n = 1 << 16
	bufA, _ := ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, n*4, nil)
	bufB, _ := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, n*4, nil)
	q := ctx.CreateCommandQueue(gpu)

	run := func(name string) float64 {
		k, err := prog.CreateKernel(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.SetArgBuffer(0, bufA); err != nil {
			t.Fatal(err)
		}
		if err := k.SetArgBuffer(1, bufB); err != nil {
			t.Fatal(err)
		}
		if _, err := q.EnqueueNDRangeKernel(k, 1, []int{n}, []int{64}); err != nil {
			t.Fatal(err)
		}
		ev, err := q.EnqueueNDRangeKernel(k, 1, []int{n}, []int{64})
		if err != nil {
			t.Fatal(err)
		}
		return ev.Seconds
	}
	tp := run("plain")
	tq := run("qual")
	if tq >= tp {
		t.Fatalf("qualified kernel (%.3gs) must beat the unqualified one (%.3gs)", tq, tp)
	}
	if tp/tq > 1.25 {
		t.Errorf("qualifier speedup %.2fx is out of the percent-level §V-D band", tp/tq)
	}
}
