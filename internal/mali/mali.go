// Package mali models the ARM Mali-T604 GPU of the Exynos 5250 as the
// paper's Figure 1 describes it: four shader cores, each with two
// 128-bit arithmetic pipelines and one load/store pipeline, a job
// manager distributing work-groups across cores, a shared L2 cache
// kept coherent by the snoop control unit, and an MMU giving the GPU
// the same view of memory as the CPU (unified memory).
//
// The model executes kernels functionally through the VM and prices
// the resulting instruction stream and memory trace:
//
//   - arithmetic: 128-bit issue slots over 2 pipes per core — a float4
//     op costs the same as a scalar op, which is why the paper's
//     vectorization optimization pays off;
//   - load/store: one pipe slot per memory instruction (vector loads
//     move up to 16 bytes per slot — the vload4 optimization);
//   - per-work-item scheduling overhead — why reducing the number of
//     work-items via vectorization helps;
//   - latency hiding limited by register pressure, and a hard
//     per-thread register budget that produces CL_OUT_OF_RESOURCES
//     exactly like the paper's double-precision optimized kernels;
//   - global atomics serialized through the SCU per cache line;
//   - no thread-divergence penalty: work-items are independent threads
//     on Midgard, so the model has no warp-reconvergence term at all.
package mali

import (
	"fmt"

	"maligo/internal/clc/ir"
	"maligo/internal/device"
	"maligo/internal/mem"
	"maligo/internal/platform"
	"maligo/internal/vm"
)

// GPU is a Midgard-family GPU instance built from a registered SoC
// model (the default is the Exynos 5250's Mali-T604). It is not safe
// for concurrent use; the runtime serializes enqueues like a real
// in-order command queue.
type GPU struct {
	soc       *platform.SoC
	m         *platform.GPUModel
	l2        *mem.Cache
	embedded  bool
	localHint int
}

// New creates the default GPU device model (the Exynos 5250's
// Mali-T604) with a cold L2. The device exposes the OpenCL Full
// Profile — double precision and full IEEE-754-2008 — which is the
// paper's reason for studying this GPU at all ("the first embedded
// GPU with OpenCL Full Profile support").
func New() *GPU {
	return NewOn(platform.Default())
}

// NewOn creates the GPU device of the given SoC model with a cold L2.
// Every number the timing model consumes comes from soc.GPU and the
// shared soc.DRAM channel.
func NewOn(soc *platform.SoC) *GPU {
	return &GPU{soc: soc, m: soc.GPU, l2: newL2(soc.GPU), embedded: !soc.GPU.FP64}
}

// NewEmbeddedProfile creates a contemporary embedded-profile GPU: the
// same machine but without cl_khr_fp64, like the pre-T604 devices the
// paper's related work ran on. Double-precision kernels fail to launch
// on it — useful for demonstrating why Full Profile support is the
// gate for HPC workloads (§I, §II-B).
func NewEmbeddedProfile() *GPU {
	g := New()
	g.embedded = true
	return g
}

func newL2(m *platform.GPUModel) *mem.Cache {
	return mem.NewCache(mem.CacheConfig{
		SizeBytes: m.L2Size,
		LineBytes: m.L2Line,
		Ways:      m.L2Ways,
	})
}

// FP64 reports whether the device supports double precision
// (cl_khr_fp64) — true for the Full Profile Midgard models.
func (g *GPU) FP64() bool { return !g.embedded }

// Model returns the GPU's calibration model.
func (g *GPU) Model() *platform.GPUModel { return g.m }

// SoC returns the SoC model this device was built from.
func (g *GPU) SoC() *platform.SoC { return g.soc }

// SetLocalSizeHint tunes the driver's work-group-size heuristic: when
// the host passes NULL as the local work size, DefaultLocalSize picks
// n work-items in the first dimension instead of consulting the
// built-in heuristic — the knob the cross-device autotuner turns. A
// hint that is not a power of two, does not divide the global size,
// or exceeds the device limit is ignored for that launch, exactly
// like a real driver falling back to its own choice (the Midgard
// heuristic only ever picks powers of two, and kernels written
// against it — tree reductions halving get_local_size — rely on
// that); n <= 0 restores the heuristic.
func (g *GPU) SetLocalSizeHint(n int) { g.localHint = n }

// Name implements device.Device.
func (g *GPU) Name() string {
	if g.embedded {
		return g.m.Name + " (embedded profile)"
	}
	return g.m.Name
}

// MaxWorkGroupSize implements device.Device.
func (g *GPU) MaxWorkGroupSize() int { return g.m.MaxWorkGroupSize }

// ResetCaches clears cache state (cold-start measurement).
func (g *GPU) ResetCaches() { g.l2.Reset() }

// L2Stats returns the shared L2 cache statistics accumulated so far —
// the source of the observability layer's cache hit-rate metrics.
func (g *GPU) L2Stats() mem.CacheStats { return g.l2.Stats() }

// DefaultLocalSize implements the driver heuristic used when the host
// passes NULL as local work size. As the paper observes (§III-A, Load
// distribution), the driver "is not always capable of doing a good
// selection": it picks the largest power-of-two divisor of the global
// size up to 64 in the first dimension only, which serializes
// multi-dimensional ranges and can leave cores idle — reproducing the
// performance trap the paper warns about.
func (g *GPU) DefaultLocalSize(ndr *device.NDRange) [3]int {
	local := [3]int{1, 1, 1}
	if h := g.localHint; h > 0 && h&(h-1) == 0 && h <= g.m.MaxWorkGroupSize && ndr.Global[0]%h == 0 {
		local[0] = h
		return local
	}
	pick := 1
	for cand := 2; cand <= 64; cand *= 2 {
		if ndr.Global[0]%cand == 0 {
			pick = cand
		}
	}
	local[0] = pick
	return local
}

// RegisterDemand estimates the per-thread register bytes the real
// compiler would allocate for k on the default (Mali-T604) model.
func RegisterDemand(k *ir.Kernel) float64 {
	return RegisterDemandOn(platform.Default().GPU, k)
}

// RegisterDemandOn estimates the per-thread register bytes the real
// compiler would allocate for k on the given GPU model.
func RegisterDemandOn(m *platform.GPUModel, k *ir.Kernel) float64 {
	return float64(k.RegisterFootprint()) * m.RegFootprintScale
}

// CheckResources returns ErrOutOfResources when the kernel cannot be
// mapped onto the default (Mali-T604) register file.
func CheckResources(k *ir.Kernel) error {
	return CheckResourcesOn(platform.Default().GPU, k)
}

// CheckResourcesOn returns ErrOutOfResources when the kernel cannot
// be mapped onto the given model's register file.
func CheckResourcesOn(m *platform.GPUModel, k *ir.Kernel) error {
	if demand := RegisterDemandOn(m, k); demand > m.MaxRegBytesPerThread {
		return fmt.Errorf("kernel %s needs %.0f register bytes/thread (budget %.0f): %w",
			k.Name, demand, m.MaxRegBytesPerThread, device.ErrOutOfResources)
	}
	return nil
}

// observer feeds the shared L2 model and tracks DRAM traffic plus the
// atomic-contention line histogram for the SCU model.
type observer struct {
	l2           *mem.Cache
	localBase    uint64 // synthetic physical base of this WG's local arena
	privateBase  uint64
	dramBytes    uint64
	seqMisses    uint64
	rndMisses    uint64
	localAtomics uint64
	atomicLines  map[uint64]uint64

	recent   [8]uint64 // recently missed line addresses
	rpos     int
	lastLine uint64
	deltas   [4]int64 // recent miss strides, for strided-stream detection
	dpos     int
}

func (o *observer) physical(space int, addr int64) uint64 {
	_, off := ir.DecodeAddr(addr)
	switch space {
	case ir.SpaceLocal:
		// Mali maps __local to main memory (the paper's Memory Spaces
		// discussion): give each work-group a distinct region so the
		// cache model sees it like any other memory.
		return o.localBase + uint64(off)
	case ir.SpacePrivate:
		return o.privateBase + uint64(off)
	case ir.SpaceConstant:
		return (1 << 46) + uint64(off)
	default:
		return uint64(off)
	}
}

// OnAccess implements vm.AccessObserver. Misses are classified as
// sequential (part of a detectable stream) or random by comparing the
// missed line against a small window of recent misses.
func (o *observer) OnAccess(space int, addr int64, size int, write bool) {
	phys := o.physical(space, addr)
	misses, writebacks := o.l2.Access(phys, size, write)
	o.dramBytes += uint64(misses+writebacks) * uint64(o.l2.Config().LineBytes)
	if misses == 0 {
		return
	}
	line := phys / uint64(o.l2.Config().LineBytes)
	seq := false
	for _, r := range o.recent {
		if line == r+1 || line == r+2 {
			seq = true
			break
		}
	}
	// Constant-stride miss trains (e.g. walking a matrix column) also
	// burst efficiently through the L2 interface.
	delta := int64(line) - int64(o.lastLine)
	if !seq && delta != 0 && delta > -256 && delta < 256 {
		for _, d := range o.deltas {
			if d == delta {
				seq = true
				break
			}
		}
	}
	if seq {
		o.seqMisses += uint64(misses)
	} else {
		o.rndMisses += uint64(misses)
	}
	o.deltas[o.dpos] = delta
	o.dpos = (o.dpos + 1) % len(o.deltas)
	o.lastLine = line
	o.recent[o.rpos] = line
	o.rpos = (o.rpos + 1) % len(o.recent)
}

// OnAtomic implements vm.AtomicObserver.
func (o *observer) OnAtomic(space int, addr int64, size int) {
	if space != ir.SpaceGlobal {
		// Local atomics execute inside one shader core's L1 path —
		// cheap, and invisible to the snoop control unit.
		o.localAtomics++
		return
	}
	phys := o.physical(space, addr)
	o.atomicLines[phys/uint64(o.l2.Config().LineBytes)]++
}

// wgCost is the modelled execution time of one work-group on one
// shader core, in GPU cycles, along with its pipe activity.
type wgCost struct {
	cycles     float64
	arithSlots float64
	lsSlots    float64
}

// groupCycles prices one work-group from its profile delta.
// localAtomics is the number of this group's atomics that targeted
// __local memory (they bypass the SCU and cost a single LS slot);
// seqMisses/rndMisses are the group's L2 miss counts by class.
func (g *GPU) groupCycles(k *ir.Kernel, p *vm.Profile, dramBytes uint64, nWI int, localAtomics, seqMisses, rndMisses uint64) wgCost {
	m := g.m
	// Arithmetic: the compiler packs independent lanes into 128-bit
	// VLIW slots, so cost follows packed lane volume, not source
	// vectorization; integer addressing is discounted (folded into
	// LS descriptors and spare scalar slots).
	fpSlots := (float64(p.F32Lanes)*4 + float64(p.F64Lanes)*8) / 16
	intSlots := float64(p.IntLanes) * 4 / 16 * m.IntCostFactor
	alu := ((fpSlots+intSlots)/m.PackEff +
		float64(p.TranscLanes)*m.TranscSlotCost) / m.ArithPipes
	// The VM charges every atomic two LS slots; local atomics on Mali
	// cost about one, so refund the difference.
	issued := float64(p.LSSlots128) -
		float64(localAtomics)*(2-m.LocalAtomicLSSlots) +
		float64(p.PrivateAccesses)*m.PrivateLSPenalty
	if issued < 0 {
		issued = 0
	}
	// §V-D qualifiers: restrict-qualified pointer params free the LS
	// pipe from aliasing interlocks and const params skip write-path
	// coherence, each a small multiplicative occupancy discount. The
	// discount applies to issued access slots only — qualifiers do
	// nothing for cache-miss stall occupancy, so miss-bound kernels
	// (spmv's gather) keep their full miss terms.
	issued /= 1 + float64(k.RestrictParams)*m.RestrictLSFactor +
		float64(k.ConstParams)*m.ConstLSFactor
	ls := issued +
		float64(seqMisses)*m.SeqMissLSOccupancy +
		float64(rndMisses)*m.RandMissLSOccupancy

	// Latency hiding: resident threads per core bounded by register
	// demand.
	threads := m.ThreadsForHiding
	if demand := RegisterDemandOn(m, k); demand > 0 {
		if t := m.RegFileBytes / demand; t < threads {
			threads = t
		}
	}
	if threads < 2 {
		threads = 2
	}
	bytesPerCycle := m.PerCoreBandwidth / m.FreqHz
	dramCycles := float64(dramBytes) / bytesPerCycle
	latencyCycles := float64(dramBytes) / float64(m.L2Line) *
		m.DRAMLatency / threads
	memCycles := dramCycles
	if latencyCycles > memCycles {
		memCycles = latencyCycles
	}

	busy := alu
	if ls > busy {
		busy = ls
	}
	if memCycles > busy {
		busy = memCycles
	}

	barriers := float64(p.Barriers)
	overhead := m.WorkItemOverhead*float64(nWI) +
		m.WorkGroupOverhead +
		barriers*m.BarrierWICycles
	if nWI > 0 {
		overhead += barriers / float64(nWI) * m.BarrierWGCycles
	}
	return wgCost{cycles: busy + overhead, arithSlots: alu, lsSlots: ls}
}

// Run implements device.Device: serial, non-cancellable execution.
func (g *GPU) Run(ndr *device.NDRange, gmem vm.GlobalMemory) (*device.Report, error) {
	return g.RunWith(device.RunConfig{}, ndr, gmem)
}

// RunWith implements device.ContextRunner. With a pool in rc,
// work-groups execute functionally in parallel while their recorded
// memory traces are replayed through the stateful L2/SCU model in
// dispatch order — so the report is bit-identical to serial execution
// regardless of worker count.
func (g *GPU) RunWith(rc device.RunConfig, ndr *device.NDRange, gmem vm.GlobalMemory) (*device.Report, error) {
	k := ndr.Kernel
	if k.UsesDouble && g.embedded {
		return nil, fmt.Errorf("kernel %s uses double precision but device %s lacks cl_khr_fp64 (OpenCL Embedded Profile): %w",
			k.Name, g.Name(), device.ErrOutOfResources)
	}
	if err := CheckResourcesOn(g.m, k); err != nil {
		return nil, err
	}
	device.NormalizeLocal(g, ndr)
	if err := device.ValidateNDRange(g, ndr); err != nil {
		return nil, err
	}

	m := g.m
	total := &vm.Profile{}
	obs := &observer{l2: g.l2, atomicLines: make(map[uint64]uint64)}

	// Job manager: list-schedule work-groups onto the earliest-free
	// core, preserving dispatch order — load imbalance between
	// work-groups (e.g. spmv rows of uneven length) shows up as idle
	// cores exactly like on the real job manager.
	coreClock := make([]float64, m.Cores)
	coreBusy := make([]float64, m.Cores)
	var arithSlots, lsSlots, busyCycles float64
	nWI := 1
	for d := 0; d < ndr.WorkDim; d++ {
		nWI *= ndr.Local[d]
	}

	// account prices one work-group whose accesses have just passed
	// through obs. It must run in dispatch order: the cache model, the
	// miss classifier and the core scheduler are all stateful.
	account := func(prof *vm.Profile, dram, localAtomics, seq, rnd uint64) {
		cost := g.groupCycles(k, prof, dram, nWI, localAtomics, seq, rnd)
		// Earliest-free core gets the group.
		core := 0
		for c := 1; c < m.Cores; c++ {
			if coreClock[c] < coreClock[core] {
				core = c
			}
		}
		coreClock[core] += cost.cycles
		coreBusy[core] += cost.cycles
		busyCycles += cost.cycles
		arithSlots += cost.arithSlots
		lsSlots += cost.lsSlots
		total.Add(prof)
	}
	beginGroup := func(wgIndex int) (dram, localAtomics, seq, rnd uint64) {
		obs.localBase = (1 << 44) + uint64(wgIndex)*(1<<22)
		obs.privateBase = (1 << 45) + uint64(wgIndex)*(1<<22)
		return obs.dramBytes, obs.localAtomics, obs.seqMisses, obs.rndMisses
	}

	var err error
	if rc.Parallel() {
		err = device.RunGroups(rc, ndr, gmem, func(gw *device.GroupWork) error {
			prevDram, prevLA, prevSeq, prevRnd := beginGroup(gw.Index)
			gw.Trace.Replay(obs)
			gw.Trace.Release()
			account(&gw.Profile, obs.dramBytes-prevDram, obs.localAtomics-prevLA,
				obs.seqMisses-prevSeq, obs.rndMisses-prevRnd)
			return nil
		})
	} else {
		err = device.SerialGroups(rc, ndr, func(wgIndex int, group [3]int) error {
			prevDram, prevLA, prevSeq, prevRnd := beginGroup(wgIndex)
			var prof vm.Profile
			cfg := &vm.GroupConfig{
				Kernel:       k,
				WorkDim:      ndr.WorkDim,
				GroupID:      group,
				LocalSize:    ndr.Local,
				GlobalSize:   ndr.Global,
				GlobalOffset: ndr.Offset,
				Args:         ndr.Args,
				Mem:          gmem,
				Observer:     obs,
				Engine:       rc.Engine,
			}
			var detail *vm.Trace
			if rc.Race != nil {
				detail = vm.NewTrace()
				detail.EnableDetail()
				cfg.Observer = vm.Tee(obs, detail)
			}
			if err := vm.RunGroup(cfg, &prof); err != nil {
				detail.Release()
				return err
			}
			if detail != nil {
				rc.Race.ObserveGroup(group, detail)
				detail.Release()
			}
			account(&prof, obs.dramBytes-prevDram, obs.localAtomics-prevLA,
				obs.seqMisses-prevSeq, obs.rndMisses-prevRnd)
			return nil
		})
	}
	if err != nil {
		return nil, err
	}

	// Device time: the slowest core, bounded below by the shared DRAM
	// channel and by SCU atomic serialization on the hottest line.
	var schedCycles float64
	activeCores := 0
	for c := 0; c < m.Cores; c++ {
		if coreClock[c] > schedCycles {
			schedCycles = coreClock[c]
		}
		if coreBusy[c] > 0 {
			activeCores++
		}
	}
	seconds := schedCycles / m.FreqHz
	if dramSec := float64(obs.dramBytes) / g.soc.DRAM.Bandwidth; dramSec > seconds {
		seconds = dramSec
	}
	var hottest uint64
	for _, n := range obs.atomicLines { // maligo:allow maporder max reduction commutes
		if n > hottest {
			hottest = n
		}
	}
	if scuSec := float64(hottest) * m.AtomicSCUCycles / m.FreqHz; scuSec > seconds {
		seconds = scuSec
	}
	seconds += m.EnqueueOverheadSec

	util, arithUtil, lsUtil := 0.0, 0.0, 0.0
	if busyCycles > 0 {
		arithUtil = arithSlots / (busyCycles * m.ArithPipes)
		lsUtil = lsSlots / busyCycles
		util = 0.65*arithUtil + 0.35*lsUtil
		if util > 1 {
			util = 1
		}
	}
	return &device.Report{
		Seconds:         seconds,
		DispatchSeconds: m.EnqueueOverheadSec,
		BusyCoreSeconds: busyCycles / m.FreqHz,
		ActiveCores:     activeCores,
		Utilization:     util,
		ArithUtil:       arithUtil,
		LSUtil:          lsUtil,
		DRAMBytes:       obs.dramBytes,
		Profile:         *total,
	}, nil
}
