package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// write lays out a small source tree for Check.
func write(t *testing.T, root, rel, src string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func ruleCount(fs []Finding, rule string) int {
	n := 0
	for _, f := range fs {
		if f.Rule == rule {
			n++
		}
	}
	return n
}

func TestRules(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/det/det.go", `package det

import "time"

func Sum(m map[string]int) (int, time.Time) {
	n := 0
	for _, v := range m {
		n += v
	}
	return n, time.Now()
}
`)
	// cmd/ is outside the deterministic scope: maporder does not
	// apply, walltime still does.
	write(t, root, "cmd/tool/main.go", `package main

import "time"

func main() {
	m := map[string]int{}
	for range m {
	}
	_ = time.Now()
}
`)

	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if got := ruleCount(fs, "maporder"); got != 1 {
		t.Fatalf("maporder findings = %d, want 1 (internal only): %v", got, fs)
	}
	if got := ruleCount(fs, "walltime"); got != 2 {
		t.Fatalf("walltime findings = %d, want 2: %v", got, fs)
	}
	for _, f := range fs {
		if f.Rule == "maporder" && f.File != "internal/det/det.go" {
			t.Fatalf("maporder leaked outside internal/: %v", f)
		}
	}
}

func TestAllowDirective(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/det/det.go", `package det

import "time"

func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // maligo:allow maporder sorted by the caller
		out = append(out, k)
	}
	return out
}

func Stamp() time.Time {
	// maligo:allow walltime host-side profiling only
	return time.Now()
}

func Bare(m map[string]int) {
	for range m { // maligo:allow maporder
	}
}
`)
	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	// The two reasoned directives suppress; the reasonless one (Bare)
	// does not.
	if len(fs) != 1 || fs[0].Rule != "maporder" {
		t.Fatalf("findings = %v, want exactly the reasonless range", fs)
	}
}

// TestTestFilesExempt: _test.go files are not linted (tests may use
// wall-clock timeouts and unordered iteration freely).
func TestTestFilesExempt(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/det/det.go", `package det
`)
	write(t, root, "internal/det/det_test.go", `package det

import (
	"testing"
	"time"
)

func TestX(t *testing.T) { _ = time.Now() }
`)
	fs, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("findings in test files: %v", fs)
	}
}

// TestRepoClean locks the self-lint onto the repository itself: the
// tree must stay free of unexplained map iteration and wall-clock
// reads even when make lint is skipped.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole repo; skipped in -short")
	}
	fs, err := Check(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}
