// Package lint is the repository's self-lint: go/ast + go/types
// checks that guard the simulator's determinism contract. Two rules:
//
//   - maporder: iterating a map with range yields a randomized order,
//     so any range-over-map inside a deterministic package must either
//     be order-insensitive or feed a sort — and must say so with an
//     allow directive.
//   - walltime: time.Now injects host wall-clock into results that
//     are supposed to be pure functions of the input; only explicitly
//     allowlisted call sites (load drivers, host-side profiling) may
//     read it.
//
// A violation is silenced with a comment on the same line (or the
// line above), mirroring the kernel linter's directive:
//
//	for k := range m { // maligo:allow maporder keys sorted below
//
// The first whitespace-delimited token after "maligo:allow" is a
// comma-separated rule list; the rest is the (required) reason.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	File string // slash-separated path relative to the lint root
	Line int
	Col  int
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Rule, f.Msg)
}

// deterministic matches the directories whose outputs must be
// bit-stable across runs and hosts; the maporder rule applies only
// under them. Everything under internal/ simulates or serves
// deterministic state; cmd/ and the root package are front ends.
func deterministic(rel string) bool {
	return strings.HasPrefix(rel, "internal/")
}

// Check lints every non-test .go file under root and returns the
// findings sorted by position. It typechecks each package (via the
// source importer), so rules see real types, not syntax guesses.
func Check(root string) ([]Finding, error) {
	dirs, err := goDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var all []Finding
	for _, dir := range dirs {
		fs, err := checkDir(fset, imp, root, dir)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return all, nil
}

// goDirs lists directories under root holding at least one non-test
// .go file, skipping hidden trees and testdata.
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen { // maligo:allow maporder sorted on the next line
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// checkDir parses and typechecks one package directory and applies
// the rules to its files.
func checkDir(fset *token.FileSet, imp types.Importer, root, dir string) ([]Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: imp, Error: func(error) {}}
	relDir, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	relDir = filepath.ToSlash(relDir)
	// Ignore the returned error: Error above swallows individual
	// problems so rules still run over whatever typechecked. The tree
	// builds with `go vet` before lint runs, so full failure means a
	// lint bug, not user code.
	conf.Check(relDir, fset, files, info)

	var out []Finding
	for _, f := range files {
		out = append(out, checkFile(fset, root, relDir, f, info)...)
	}
	return out, nil
}

// checkFile applies both rules to one file.
func checkFile(fset *token.FileSet, root, relDir string, f *ast.File, info *types.Info) []Finding {
	allow := allowedLines(fset, f)
	rel := relPath(fset, root, f)
	var out []Finding

	report := func(pos token.Pos, rule, msg string) {
		p := fset.Position(pos)
		if allow[p.Line][rule] || allow[p.Line-1][rule] {
			return
		}
		out = append(out, Finding{File: rel, Line: p.Line, Col: p.Column, Rule: rule, Msg: msg})
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if !deterministic(relDir) {
				return true
			}
			if tv, ok := info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					report(n.Range, "maporder",
						"map iteration order is randomized; sort the keys or add a maligo:allow directive with the reason it is order-insensitive")
				}
			}
		case *ast.SelectorExpr:
			if obj, ok := info.Uses[n.Sel].(*types.Func); ok &&
				obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Now" {
				report(n.Sel.Pos(), "walltime",
					"time.Now leaks host wall-clock into a simulated result; use simulated time or add a maligo:allow directive")
			}
		}
		return true
	})
	return out
}

// allowedLines extracts maligo:allow directives: line -> rule -> ok.
// A directive with no reason text allows nothing, so every exception
// is explained.
func allowedLines(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	allow := map[int]map[string]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
			idx := strings.Index(text, "maligo:allow")
			if idx < 0 {
				continue
			}
			fields := strings.Fields(text[idx+len("maligo:allow"):])
			if len(fields) < 2 { // rules + at least one word of reason
				continue
			}
			line := fset.Position(c.Pos()).Line
			if allow[line] == nil {
				allow[line] = map[string]bool{}
			}
			for _, rule := range strings.Split(fields[0], ",") {
				allow[line][rule] = true
			}
		}
	}
	return allow
}

// relPath returns f's path relative to root, slash-separated.
func relPath(fset *token.FileSet, root string, f *ast.File) string {
	p := fset.Position(f.FileStart).Filename
	if rel, err := filepath.Rel(root, p); err == nil {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(p)
}
