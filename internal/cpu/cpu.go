// Package cpu models the ARM Cortex-A15 cores of the Exynos 5250 for
// the paper's Serial (one core) and OpenMP (two cores) benchmark
// versions. The benchmark kernels for the CPU are scalar loops (the
// paper compiles with GCC -O3 but without auto-vectorized FP, since
// the A15 lacks a full IEEE-754 double-precision SIMD unit), so the
// timing model is a scalar out-of-order pipeline:
//
//   - issue bounded by decode width and per-pipe throughput (two
//     integer ALUs, one FP/VFP pipe, one load/store pipe);
//   - cache stalls from a two-level simulation (32 KB private L1,
//     1 MB shared L2), derated by out-of-order latency hiding;
//   - a per-core streaming bandwidth ceiling well below the DDR3
//     channel peak, plus the shared channel ceiling across cores;
//   - OpenMP fork/join overhead per parallel region.
package cpu

import (
	"fmt"

	"maligo/internal/clc/ir"
	"maligo/internal/device"
	"maligo/internal/mem"
	"maligo/internal/platform"
	"maligo/internal/vm"
)

// CPU is a CPU cluster built from a registered SoC model (the default
// is the Exynos 5250's Cortex-A15 pair), restricted to a given number
// of cores.
type CPU struct {
	m     *platform.CPUModel
	cores int
	l1    []*mem.Cache
	l2    *mem.Cache
}

// New creates the default CPU device (the Exynos 5250's Cortex-A15)
// using the given number of cores (1 for the Serial configuration, 2
// for OpenMP).
func New(cores int) *CPU {
	return NewOn(platform.Default(), cores)
}

// NewOn creates the CPU cluster device of the given SoC model using
// the given number of cores, capped at the cluster size. Every number
// the timing model consumes comes from soc.CPU.
func NewOn(soc *platform.SoC, cores int) *CPU {
	m := soc.CPU
	if cores < 1 {
		cores = 1
	}
	if cores > m.Cores {
		cores = m.Cores
	}
	c := &CPU{m: m, cores: cores}
	for i := 0; i < cores; i++ {
		c.l1 = append(c.l1, mem.NewCache(mem.CacheConfig{
			SizeBytes: m.L1Size,
			LineBytes: m.L1Line,
			Ways:      m.L1Ways,
		}))
	}
	c.l2 = mem.NewCache(mem.CacheConfig{
		SizeBytes: m.L2Size,
		LineBytes: m.L2Line,
		Ways:      m.L2Ways,
	})
	return c
}

// Model returns the cluster's calibration model.
func (c *CPU) Model() *platform.CPUModel { return c.m }

// Name implements device.Device.
func (c *CPU) Name() string {
	if c.cores == 1 {
		return c.m.Name + " (1 core)"
	}
	return fmt.Sprintf("%s (%d cores)", c.m.Name, c.cores)
}

// Cores returns the core count of this device configuration.
func (c *CPU) Cores() int { return c.cores }

// MaxWorkGroupSize implements device.Device. CPU OpenCL
// implementations typically allow large groups; the benchmark drivers
// use one work-item per thread anyway.
func (c *CPU) MaxWorkGroupSize() int { return 1024 }

// ResetCaches clears cache state.
func (c *CPU) ResetCaches() {
	for _, l1 := range c.l1 {
		l1.Reset()
	}
	c.l2.Reset()
}

// L2Stats returns the shared L2 cache statistics accumulated so far —
// the source of the observability layer's cache hit-rate metrics.
func (c *CPU) L2Stats() mem.CacheStats { return c.l2.Stats() }

// DefaultLocalSize implements device.Device: one work-item per group,
// groups spread across cores.
func (c *CPU) DefaultLocalSize(ndr *device.NDRange) [3]int {
	return [3]int{1, 1, 1}
}

// observer drives the two-level cache hierarchy for one core. It also
// classifies DRAM misses as sequential (prefetchable by the A15's L2
// stream prefetchers) or random, by checking each missed line against
// a small window of recently missed lines.
type observer struct {
	l1        *mem.Cache
	l2        *mem.Cache
	l1Misses  uint64
	l2SeqMiss uint64
	l2RndMiss uint64
	dramBytes uint64
	lineBytes uint64

	recent [8]uint64 // recently missed line addresses
	rpos   int
}

func physical(space int, addr int64) uint64 {
	_, off := ir.DecodeAddr(addr)
	switch space {
	case ir.SpaceLocal:
		return (1 << 44) + uint64(off)
	case ir.SpacePrivate:
		return (1 << 45) + uint64(off)
	case ir.SpaceConstant:
		return (1 << 46) + uint64(off)
	default:
		return uint64(off)
	}
}

// OnAccess implements vm.AccessObserver.
func (o *observer) OnAccess(space int, addr int64, size int, write bool) {
	phys := physical(space, addr)
	misses, _ := o.l1.Access(phys, size, write)
	if misses == 0 {
		return
	}
	o.l1Misses += uint64(misses)
	// Refill each missing line through the L2.
	l2m, l2wb := o.l2.Access(phys, size, write)
	o.dramBytes += uint64(l2m+l2wb) * o.lineBytes
	if l2m == 0 {
		return
	}
	line := phys / o.lineBytes
	seq := false
	for _, r := range o.recent {
		if line == r+1 || line == r+2 {
			seq = true
			break
		}
	}
	if seq {
		o.l2SeqMiss += uint64(l2m)
	} else {
		o.l2RndMiss += uint64(l2m)
	}
	o.recent[o.rpos] = line
	o.rpos = (o.rpos + 1) % len(o.recent)
}

// OnAtomic implements vm.AccessObserver; CPU atomics (LDREX/STREX) are
// priced in threadSeconds via the profile's Atomics counter.
func (o *observer) OnAtomic(space int, addr int64, size int) {}

// threadSeconds prices one thread's execution from its profile. The
// simulator IR is unoptimized three-address code, so instruction and
// integer-lane counts are derated by the model's InstrFactor to
// approximate GCC -O3 output (addressing modes, fused compares).
func (c *CPU) threadSeconds(p *vm.Profile, o *observer) (seconds, util float64) {
	m := c.m
	issue := float64(p.Instrs) * m.InstrFactor / m.IssueWidth
	intc := float64(p.IntLanes) * m.InstrFactor / m.IntALUs
	fpc := float64(p.F32Lanes) +
		float64(p.F64Lanes)*m.F64Factor +
		float64(p.TranscLanes)*m.TranscCycles
	lsc := float64(p.LSLanes) + float64(p.Atomics)*8
	busy := issue
	for _, v := range []float64{intc, fpc, lsc} {
		if v > busy {
			busy = v
		}
	}
	stalls := float64(o.l1Misses)*m.L2HitLatency*m.L2HideFactor +
		float64(o.l2RndMiss)*m.DRAMLatency*m.DRAMHideFactor +
		float64(o.l2SeqMiss)*m.DRAMLatency*m.PrefetchHideFactor
	cycles := busy + stalls
	seconds = cycles / m.FreqHz
	if bw := float64(o.dramBytes) / m.PerCoreBandwidth; bw > seconds {
		seconds = bw
	}
	if cycles > 0 {
		util = busy / cycles
	}
	return seconds, util
}

// Run implements device.Device: serial, non-cancellable execution.
func (c *CPU) Run(ndr *device.NDRange, gmem vm.GlobalMemory) (*device.Report, error) {
	return c.RunWith(device.RunConfig{}, ndr, gmem)
}

// RunWith implements device.ContextRunner. Work-groups are distributed
// round-robin over the modelled cores (OpenMP static scheduling of
// chunked loops — each chunk is one work-item in the CPU versions of
// the benchmarks). With a pool in rc, groups execute functionally in
// parallel on the host while their memory traces are replayed through
// the per-core cache hierarchies in dispatch order, keeping the report
// bit-identical to serial execution.
func (c *CPU) RunWith(rc device.RunConfig, ndr *device.NDRange, gmem vm.GlobalMemory) (*device.Report, error) {
	device.NormalizeLocal(c, ndr)
	if err := device.ValidateNDRange(c, ndr); err != nil {
		return nil, err
	}

	profiles := make([]vm.Profile, c.cores)
	observers := make([]*observer, c.cores)
	for i := 0; i < c.cores; i++ {
		observers[i] = &observer{
			l1:        c.l1[i],
			l2:        c.l2,
			lineBytes: uint64(c.m.L2Line),
		}
	}

	var err error
	if rc.Parallel() {
		err = device.RunGroups(rc, ndr, gmem, func(gw *device.GroupWork) error {
			core := gw.Index % c.cores
			gw.Trace.Replay(observers[core])
			gw.Trace.Release()
			profiles[core].Add(&gw.Profile)
			return nil
		})
	} else {
		err = device.SerialGroups(rc, ndr, func(wgIndex int, group [3]int) error {
			core := wgIndex % c.cores
			cfg := &vm.GroupConfig{
				Kernel:       ndr.Kernel,
				WorkDim:      ndr.WorkDim,
				GroupID:      group,
				LocalSize:    ndr.Local,
				GlobalSize:   ndr.Global,
				GlobalOffset: ndr.Offset,
				Args:         ndr.Args,
				Mem:          gmem,
				Observer:     observers[core],
				Engine:       rc.Engine,
			}
			var detail *vm.Trace
			if rc.Race != nil {
				detail = vm.NewTrace()
				detail.EnableDetail()
				cfg.Observer = vm.Tee(observers[core], detail)
			}
			err := vm.RunGroup(cfg, &profiles[core])
			if err == nil && detail != nil {
				rc.Race.ObserveGroup(group, detail)
			}
			detail.Release()
			return err
		})
	}
	if err != nil {
		return nil, err
	}

	total := &vm.Profile{}
	var maxSec, busySec, utilSum float64
	var dramBytes uint64
	active := 0
	for i := 0; i < c.cores; i++ {
		total.Add(&profiles[i])
		sec, util := c.threadSeconds(&profiles[i], observers[i])
		if sec > 0 {
			active++
			busySec += sec
			utilSum += util * sec
		}
		if sec > maxSec {
			maxSec = sec
		}
		dramBytes += observers[i].dramBytes
	}
	seconds := maxSec
	if bw := float64(dramBytes) / c.m.ClusterBandwidth; bw > seconds {
		seconds = bw
	}
	dispatch := 0.0
	if c.cores > 1 {
		seconds += c.m.OMPOverheadSec
		dispatch = c.m.OMPOverheadSec
	}
	util := 0.0
	if busySec > 0 {
		util = utilSum / busySec
	}
	return &device.Report{
		Seconds:         seconds,
		DispatchSeconds: dispatch,
		BusyCoreSeconds: busySec,
		ActiveCores:     active,
		Utilization:     util,
		DRAMBytes:       dramBytes,
		Profile:         *total,
	}, nil
}
