package cpu_test

import (
	"testing"

	"maligo/internal/cl"
	"maligo/internal/cpu"
	"maligo/internal/platform"
)

const chunkSrc = `
__kernel void work(__global float* p, const uint n) {
    size_t t  = get_global_id(0);
    size_t nt = get_global_size(0);
    uint chunk = (uint)((n + nt - 1) / nt);
    uint lo = (uint)t * chunk;
    uint hi = min(lo + chunk, n);
    float acc = 0.0f;
    for (uint i = lo; i < hi; i++) {
        acc += (float)i * 1.5f;
    }
    p[t] = acc;
}`

func runOn(t *testing.T, dev *cpu.CPU, threads int, n int) float64 {
	t.Helper()
	ctx := cl.NewContext(dev)
	prog := ctx.CreateProgramWithSource(chunkSrc)
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("work")
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, int64(threads*4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgInt(1, int64(n)); err != nil {
		t.Fatal(err)
	}
	q := ctx.CreateCommandQueue(dev)
	ev, err := q.EnqueueNDRangeKernel(k, 1, []int{threads}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	return ev.Seconds
}

func TestNames(t *testing.T) {
	if cpu.New(1).Name() != "Cortex-A15 (1 core)" {
		t.Error(cpu.New(1).Name())
	}
	if cpu.New(2).Name() != "Cortex-A15 (2 cores)" {
		t.Error(cpu.New(2).Name())
	}
	if cpu.New(0).Cores() != 1 || cpu.New(99).Cores() != platform.CPUCores {
		t.Error("core count clamping broken")
	}
}

func TestTwoCoresNearlyHalveComputeBoundTime(t *testing.T) {
	const n = 200000
	t1 := runOn(t, cpu.New(1), 1, n)
	t2 := runOn(t, cpu.New(2), 2, n)
	speedup := t1 / t2
	if speedup < 1.6 || speedup > 2.1 {
		t.Fatalf("2-core speedup on compute-bound loop = %.2f, want ~2", speedup)
	}
}

func TestOMPOverheadCharged(t *testing.T) {
	// A tiny parallel region is dominated by fork/join overhead.
	t2 := runOn(t, cpu.New(2), 2, 64)
	if t2 < platform.OMPRegionOverheadSec {
		t.Fatalf("OpenMP region cost %.3g s excludes the fork/join overhead", t2)
	}
}

const streamSrc = `
__kernel void stream(__global const float* a, __global float* b, const uint n) {
    for (uint i = 0; i < n; i++) {
        b[i] = a[i];
    }
}
__kernel void gather(__global const float* a, __global const int* idx, __global float* b, const uint n) {
    for (uint i = 0; i < n; i++) {
        b[i] = a[idx[i]];
    }
}`

func TestPrefetchMakesStreamsCheaperThanGathers(t *testing.T) {
	dev := cpu.New(1)
	ctx := cl.NewContext(dev)
	prog := ctx.CreateProgramWithSource(streamSrc)
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	const n = 1 << 18 // 1 MB working set per array: misses in both L1 and L2
	bufA, _ := ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, n*4, nil)
	bufB, _ := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, n*4, nil)
	bufI, _ := ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, n*4, nil)

	// A pseudo-random permutation for the gather index.
	raw, _ := bufI.Bytes(0, n*4)
	seed := uint32(12345)
	for i := 0; i < n; i++ {
		seed = seed*1664525 + 1013904223
		v := seed % n
		raw[i*4] = byte(v)
		raw[i*4+1] = byte(v >> 8)
		raw[i*4+2] = byte(v >> 16)
		raw[i*4+3] = byte(v >> 24)
	}

	q := ctx.CreateCommandQueue(dev)
	runK := func(name string, args func(*cl.Kernel) error) float64 {
		k, err := prog.CreateKernel(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := args(k); err != nil {
			t.Fatal(err)
		}
		// Warm-up pass, then measure.
		if _, err := q.EnqueueNDRangeKernel(k, 1, []int{1}, []int{1}); err != nil {
			t.Fatal(err)
		}
		ev, err := q.EnqueueNDRangeKernel(k, 1, []int{1}, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		return ev.Seconds
	}
	tStream := runK("stream", func(k *cl.Kernel) error {
		if err := k.SetArgBuffer(0, bufA); err != nil {
			return err
		}
		if err := k.SetArgBuffer(1, bufB); err != nil {
			return err
		}
		return k.SetArgInt(2, n)
	})
	tGather := runK("gather", func(k *cl.Kernel) error {
		if err := k.SetArgBuffer(0, bufA); err != nil {
			return err
		}
		if err := k.SetArgBuffer(1, bufI); err != nil {
			return err
		}
		if err := k.SetArgBuffer(2, bufB); err != nil {
			return err
		}
		return k.SetArgInt(3, n)
	})
	if tGather < tStream*1.5 {
		t.Fatalf("random gather (%.3g s) should be distinctly slower than a stream (%.3g s)", tGather, tStream)
	}
}

func TestReportFields(t *testing.T) {
	dev := cpu.New(2)
	ctx := cl.NewContext(dev)
	prog := ctx.CreateProgramWithSource(chunkSrc)
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	k, _ := prog.CreateKernel("work")
	buf, _ := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, 8, nil)
	if err := k.SetArgBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgInt(1, 10000); err != nil {
		t.Fatal(err)
	}
	q := ctx.CreateCommandQueue(dev)
	ev, err := q.EnqueueNDRangeKernel(k, 1, []int{2}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	rep := ev.Report
	if rep.ActiveCores != 2 {
		t.Errorf("ActiveCores = %d, want 2", rep.ActiveCores)
	}
	if rep.Utilization <= 0 || rep.Utilization > 1 {
		t.Errorf("Utilization = %v", rep.Utilization)
	}
	if rep.BusyCoreSeconds <= 0 || rep.BusyCoreSeconds > 2*rep.Seconds {
		t.Errorf("BusyCoreSeconds = %v vs Seconds %v", rep.BusyCoreSeconds, rep.Seconds)
	}
}
