package bench

import (
	"math"

	"maligo/internal/cl"
)

// amcd is the Atomic Monte-Carlo Dynamics benchmark (§IV-A): many
// independent Markov Chain Monte Carlo simulations. Each work-item
// owns one simulation: starting from shared initial atom coordinates
// it applies random displacements to random atoms and accepts or
// rejects them with the Metropolis criterion. The kernel is
// compute-bound with heavy transcendental use (distance and Boltzmann
// factors), so the plain OpenCL port already performs well and — as
// the paper notes — "we did not find many hot spots for optimizations
// and the OpenCL Opt is only slightly faster".
//
// The paper could not run the double-precision OpenCL versions at all:
// the ARM kernel compiler crashed on them. Supported reproduces that
// gap so the harness reports n/a exactly where Figure 2(b) has no bar.
type amcd struct {
	prec  Precision
	sims  int
	atoms int
	iters int
	pos0  []float64

	bufPos *cl.Buffer
	bufE   *cl.Buffer
	bufAcc *cl.Buffer

	// results per executed version, for cross-version verification.
	results map[Version][]float64
}

// NewAMCD creates the amcd benchmark.
func NewAMCD() Benchmark { return &amcd{results: make(map[Version][]float64)} }

func (a *amcd) Name() string { return "amcd" }

func (a *amcd) Description() string {
	return "independent Metropolis Monte-Carlo simulations; transcendental-heavy"
}

func (a *amcd) Source() string {
	return `
#define NATOMS 32

// Soft-core pair potential energy of atom a against all others.
REAL atom_energy(const REAL* px, const REAL* py, const REAL* pz,
                 int a, REAL ax, REAL ay, REAL az) {
    REAL e = (REAL)0;
    for (int j = 0; j < NATOMS; j++) {
        if (j != a) {
            REAL dx = ax - px[j];
            REAL dy = ay - py[j];
            REAL dz = az - pz[j];
            REAL r2 = dx * dx + dy * dy + dz * dz + (REAL)0.01;
            e += (REAL)1.0 / sqrt(r2);
        }
    }
    return e;
}

void mc_sim(__global const REAL* pos0,
            __global REAL* energies,
            __global uint* accepts,
            const int iters,
            size_t s) {
    REAL px[NATOMS];
    REAL py[NATOMS];
    REAL pz[NATOMS];
    for (int i = 0; i < NATOMS; i++) {
        px[i] = pos0[3 * i];
        py[i] = pos0[3 * i + 1];
        pz[i] = pos0[3 * i + 2];
    }
    uint seed = (uint)s * 2654435761u + 12345u;
    uint acc = 0u;
    REAL energy = (REAL)0;
    for (int i = 0; i < NATOMS; i++) {
        energy += atom_energy(px, py, pz, i, px[i], py[i], pz[i]);
    }
    energy = energy * (REAL)0.5;
    for (int it = 0; it < iters; it++) {
        seed = seed * 1664525u + 1013904223u;
        int atom = (int)(seed % (uint)NATOMS);
        seed = seed * 1664525u + 1013904223u;
        REAL dx = ((REAL)(seed & 0xFFFFu) / (REAL)65536.0 - (REAL)0.5) * (REAL)0.2;
        seed = seed * 1664525u + 1013904223u;
        REAL dy = ((REAL)(seed & 0xFFFFu) / (REAL)65536.0 - (REAL)0.5) * (REAL)0.2;
        seed = seed * 1664525u + 1013904223u;
        REAL dz = ((REAL)(seed & 0xFFFFu) / (REAL)65536.0 - (REAL)0.5) * (REAL)0.2;
        REAL ax = px[atom];
        REAL ay = py[atom];
        REAL az = pz[atom];
        REAL eOld = atom_energy(px, py, pz, atom, ax, ay, az);
        REAL eNew = atom_energy(px, py, pz, atom, ax + dx, ay + dy, az + dz);
        REAL dE = eNew - eOld;
        seed = seed * 1664525u + 1013904223u;
        REAL u = (REAL)(seed & 0xFFFFu) / (REAL)65536.0;
        // Metropolis criterion at kT = 1.
        if (dE < (REAL)0 || u < exp(-dE)) {
            px[atom] = ax + dx;
            py[atom] = ay + dy;
            pz[atom] = az + dz;
            energy += dE;
            acc = acc + 1u;
        }
    }
    energies[s] = energy;
    accepts[s] = acc;
}

__kernel void amcd_serial(__global const REAL* pos0,
                          __global REAL* energies,
                          __global uint* accepts,
                          const int iters,
                          const uint nsims) {
    for (uint s = 0; s < nsims; s++) {
        mc_sim(pos0, energies, accepts, iters, (size_t)s);
    }
}

// maligo:allow regbudget chunked kernel runs on the CPU device; the Mali register budget does not apply
__kernel void amcd_chunk(__global const REAL* pos0,
                         __global REAL* energies,
                         __global uint* accepts,
                         const int iters,
                         const uint nsims) {
    size_t t  = get_global_id(0);
    size_t nt = get_global_size(0);
    uint chunk = (uint)((nsims + nt - 1) / nt);
    uint lo = (uint)t * chunk;
    uint hi = min(lo + chunk, nsims);
    for (uint s = lo; s < hi; s++) {
        mc_sim(pos0, energies, accepts, iters, (size_t)s);
    }
}

__kernel void amcd_cl(__global const REAL* pos0,
                      __global REAL* energies,
                      __global uint* accepts,
                      const int iters,
                      const uint nsims) {
    size_t s = get_global_id(0);
    if (s < nsims) {
        mc_sim(pos0, energies, accepts, iters, s);
    }
}

// Optimized: const/restrict qualifiers and a tuned work-group size;
// the random-walk structure leaves little room for vectorization, so
// the gain over the plain port is small (as the paper found).
__kernel void amcd_opt(__global const REAL* restrict pos0,
                       __global REAL* restrict energies,
                       __global uint* restrict accepts,
                       const int iters,
                       const uint nsims) {
    size_t s = get_global_id(0);
    if (s < nsims) {
        mc_sim(pos0, energies, accepts, iters, s);
    }
}
`
}

func (a *amcd) Setup(ctx *cl.Context, prec Precision, scale float64) error {
	a.prec = prec
	a.sims = scaled(amcdSims, scale, 64, 64)
	a.atoms = amcdAtoms
	a.iters = amcdIters
	a.results = make(map[Version][]float64)
	r := newRng(6)
	a.pos0 = make([]float64, 3*a.atoms)
	for i := range a.pos0 {
		a.pos0[i] = r.float() * 4
	}
	var err error
	if a.bufPos, err = ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, int64(len(a.pos0)*prec.Size()), nil); err != nil {
		return err
	}
	if a.bufE, err = ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, int64(a.sims*prec.Size()), nil); err != nil {
		return err
	}
	if a.bufAcc, err = ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, int64(a.sims*4), nil); err != nil {
		return err
	}
	return writeReals(a.bufPos, prec, a.pos0)
}

func (a *amcd) Run(q *cl.CommandQueue, prog *cl.Program, version Version) (*RunInfo, error) {
	args := []any{a.bufPos, a.bufE, a.bufAcc, a.iters, a.sims}
	var info *RunInfo
	var err error
	switch version {
	case Serial:
		info = &RunInfo{Kernels: []string{"amcd_serial"}}
		err = launch(q, prog, "amcd_serial", 1, []int{1}, []int{1}, args...)
	case OpenMP:
		info = &RunInfo{Kernels: []string{"amcd_chunk"}}
		err = launch(q, prog, "amcd_chunk", 1, []int{ompChunks}, []int{1}, args...)
	case OpenCL:
		info = &RunInfo{Kernels: []string{"amcd_cl"}}
		err = launch(q, prog, "amcd_cl", 1, []int{a.sims}, nil, args...)
	default:
		info = &RunInfo{Kernels: []string{"amcd_opt"}}
		err = launch(q, prog, "amcd_opt", 1, []int{a.sims}, []int{64}, args...)
	}
	if err != nil {
		return nil, err
	}
	// Record energies for cross-version agreement checks: the LCG
	// streams are identical across versions, so results must match.
	res, err := readReals(a.bufE, a.prec, a.sims)
	if err != nil {
		return nil, err
	}
	a.results[version] = res
	return info, nil
}

func (a *amcd) Verify(prec Precision) error {
	var ref []float64
	var refVer Version
	for _, v := range Versions() {
		if r, ok := a.results[v]; ok {
			ref = r
			refVer = v
			break
		}
	}
	if ref == nil {
		return errf("amcd: no version executed")
	}
	for _, e := range ref {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return errf("amcd: non-finite energy in %s results", refVer)
		}
	}
	acc, err := readInts(a.bufAcc, a.sims)
	if err != nil {
		return err
	}
	for s, c := range acc {
		if c < 0 || int(c) > a.iters {
			return errf("amcd: sim %d accepted %d of %d moves", s, c, a.iters)
		}
	}
	for v, res := range a.results { // maligo:allow maporder every variant is checked; which failure reports first is immaterial
		if err := checkClose(res, ref, tolerance(prec)*10, "amcd energies ("+v.String()+" vs "+refVer.String()+")"); err != nil {
			return err
		}
	}
	return nil
}

func (a *amcd) Supported(prec Precision, v Version) (bool, string) {
	if prec == F64 && v.IsGPU() {
		// Reproduces the paper's §V-A artifact: "a compiler issue ...
		// does not allow the correct termination of the compilation
		// phase for the OpenCL kernel in double precision".
		return false, "ARM driver compiler bug: double-precision amcd kernels fail to build (paper §V-A)"
	}
	return true, ""
}
