// Package bench implements the paper's nine HPC benchmarks (§IV-A) in
// four versions each — Serial (one Cortex-A15 core), OpenMP (two
// cores), OpenCL (straightforward Mali port) and OpenCL Opt (Mali port
// with the §III optimizations applied) — in both single and double
// precision. Each benchmark carries its OpenCL C sources, a workload
// generator, drivers for every version, and a host-side verifier.
package bench

import (
	"errors"
	"fmt"
	"math"

	"maligo/internal/cl"
)

// Precision selects float or double kernels.
type Precision int

// Precisions.
const (
	F32 Precision = iota
	F64
)

func (p Precision) String() string {
	if p == F64 {
		return "double"
	}
	return "single"
}

// Size returns the element size in bytes.
func (p Precision) Size() int {
	if p == F64 {
		return 8
	}
	return 4
}

// BuildOptions returns the clBuildProgram options defining the REAL
// type family for this precision.
func (p Precision) BuildOptions() string {
	if p == F64 {
		return "-DREAL=double -DREAL2=double2 -DREAL4=double4 -DREAL8=double8 -DFP64"
	}
	return "-DREAL=float -DREAL2=float2 -DREAL4=float4 -DREAL8=float8 -DFP32"
}

// Version is one of the paper's four benchmark implementations.
type Version int

// Versions, in the paper's presentation order.
const (
	Serial Version = iota
	OpenMP
	OpenCL
	OpenCLOpt
)

var versionNames = [...]string{"Serial", "OpenMP", "OpenCL", "OpenCL Opt"}

func (v Version) String() string { return versionNames[v] }

// Versions lists all four in order.
func Versions() []Version { return []Version{Serial, OpenMP, OpenCL, OpenCLOpt} }

// IsGPU reports whether the version runs on the Mali device.
func (v Version) IsGPU() bool { return v == OpenCL || v == OpenCLOpt }

// RunInfo reports details of one measured-region execution.
type RunInfo struct {
	// FellBack is set when the fully optimized kernel failed with
	// CL_OUT_OF_RESOURCES and a narrower variant ran instead (the
	// paper hit this with double-precision nbody and 2dcon).
	FellBack bool
	// Kernels lists the kernel names executed, in order.
	Kernels []string
}

// Benchmark is one of the paper's nine HPC kernels.
type Benchmark interface {
	// Name is the paper's short name (spmv, vecop, ...).
	Name() string
	// Description is a one-line summary from §IV-A.
	Description() string
	// Source returns the OpenCL C program defining all versions'
	// kernels (REAL macros resolved by Precision.BuildOptions).
	Source() string
	// Setup generates the workload at the given scale (1.0 = the
	// sizes in sizes.go) and uploads it into context buffers.
	Setup(ctx *cl.Context, prec Precision, scale float64) error
	// Run executes one measured region of the given version on the
	// queue (whose device matches the version).
	Run(q *cl.CommandQueue, prog *cl.Program, version Version) (*RunInfo, error)
	// Verify compares device results against a host reference.
	Verify(prec Precision) error
	// Supported reports whether the configuration can run; reason
	// explains an unsupported one (e.g. the amcd FP64 compiler bug).
	Supported(prec Precision, v Version) (bool, string)
}

// ErrUnsupported marks configurations the paper could not measure.
var ErrUnsupported = errors.New("bench: configuration unsupported")

// All returns the nine benchmarks in the paper's order.
func All() []Benchmark {
	return []Benchmark{
		NewSpmv(), NewVecop(), NewHist(), NewStencil3D(), NewReduction(),
		NewAMCD(), NewNBody(), NewConv2D(), NewDMMM(),
	}
}

// ByName returns the named benchmark or nil.
func ByName(name string) Benchmark {
	for _, b := range All() {
		if b.Name() == name {
			return b
		}
	}
	return nil
}

// Names lists the benchmark names in paper order.
func Names() []string {
	bs := All()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name()
	}
	return names
}

// --- host data helpers -------------------------------------------------------

// rng is a small deterministic xorshift generator for workload data.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 88172645463325252
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// float returns a uniform value in [0,1).
func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// intn returns a uniform integer in [0,n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// writeReals stores vals into buffer b using the element width of prec.
func writeReals(b *cl.Buffer, prec Precision, vals []float64) error {
	raw, err := b.Bytes(0, int64(len(vals)*prec.Size()))
	if err != nil {
		return err
	}
	if prec == F64 {
		for i, v := range vals {
			bits := math.Float64bits(v)
			for s := 0; s < 8; s++ {
				raw[i*8+s] = byte(bits >> (8 * uint(s)))
			}
		}
		return nil
	}
	for i, v := range vals {
		bits := math.Float32bits(float32(v))
		for s := 0; s < 4; s++ {
			raw[i*4+s] = byte(bits >> (8 * uint(s)))
		}
	}
	return nil
}

// readReals loads n elements from buffer b.
func readReals(b *cl.Buffer, prec Precision, n int) ([]float64, error) {
	raw, err := b.Bytes(0, int64(n*prec.Size()))
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	if prec == F64 {
		for i := range out {
			var bits uint64
			for s := 7; s >= 0; s-- {
				bits = bits<<8 | uint64(raw[i*8+s])
			}
			out[i] = math.Float64frombits(bits)
		}
		return out, nil
	}
	for i := range out {
		var bits uint32
		for s := 3; s >= 0; s-- {
			bits = bits<<8 | uint32(raw[i*4+s])
		}
		out[i] = float64(math.Float32frombits(bits))
	}
	return out, nil
}

// writeInts stores 32-bit integers into buffer b.
func writeInts(b *cl.Buffer, vals []int32) error {
	raw, err := b.Bytes(0, int64(len(vals)*4))
	if err != nil {
		return err
	}
	for i, v := range vals {
		u := uint32(v)
		raw[i*4] = byte(u)
		raw[i*4+1] = byte(u >> 8)
		raw[i*4+2] = byte(u >> 16)
		raw[i*4+3] = byte(u >> 24)
	}
	return nil
}

// readInts loads n 32-bit integers from buffer b.
func readInts(b *cl.Buffer, n int) ([]int32, error) {
	raw, err := b.Bytes(0, int64(n*4))
	if err != nil {
		return nil, err
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(uint32(raw[i*4]) | uint32(raw[i*4+1])<<8 |
			uint32(raw[i*4+2])<<16 | uint32(raw[i*4+3])<<24)
	}
	return out, nil
}

// tolerance is the verification tolerance for the precision.
func tolerance(prec Precision) float64 {
	if prec == F64 {
		return 1e-9
	}
	return 2e-3
}

// relErr computes |a-b| / max(1, |b|).
func relErr(a, b float64) float64 {
	d := math.Abs(a - b)
	m := math.Abs(b)
	if m < 1 {
		m = 1
	}
	return d / m
}

// checkClose verifies element-wise closeness.
func checkClose(got, want []float64, tol float64, what string) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d != %d", what, len(got), len(want))
	}
	worst, worstAt := 0.0, -1
	for i := range got {
		if e := relErr(got[i], want[i]); e > worst {
			worst, worstAt = e, i
		}
	}
	if worst > tol {
		return fmt.Errorf("%s: element %d differs: got %g want %g (rel %g > tol %g)",
			what, worstAt, got[worstAt], want[worstAt], worst, tol)
	}
	return nil
}

// scaled returns max(lo, int(base*scale)) rounded down to a multiple
// of quantum.
func scaled(base int, scale float64, lo, quantum int) int {
	n := int(float64(base) * scale)
	if n < lo {
		n = lo
	}
	if quantum > 1 {
		n = n / quantum * quantum
		if n < quantum {
			n = quantum
		}
	}
	return n
}

// ompChunks is the number of CPU threads the OpenMP versions use
// (§IV-B: executed on two Cortex-A15 cores).
const ompChunks = 2

// errf is a tiny alias to keep benchmark verifiers compact.
func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
