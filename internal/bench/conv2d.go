package bench

import (
	"errors"

	"maligo/internal/cl"
	"maligo/internal/device"
)

// conv2d is the 2D Convolution benchmark (§IV-A): each output pixel is
// a linear combination of a 5x5 input neighbourhood. The benchmark
// offers both vector- and thread-level parallelism, so "most of the
// optimizations can be successfully applied (loop unrolling,
// vectorization, group-size and vector-size tuning) leading to a
// considerable increase in performance" — the paper reports 24x in
// single precision.
//
// In double precision the fully optimized kernel's double4 working set
// exceeds the Mali register budget and the launch fails with
// CL_OUT_OF_RESOURCES, as it did in the paper; the driver falls back
// to a narrower double2 variant, shrinking the Opt-vs-OpenCL gap
// exactly as Figure 2(b) shows.
type conv2d struct {
	prec   Precision
	dim    int // interior width/height; padded side is dim+4
	in     []float64
	filter []float64

	bufIn   *cl.Buffer
	bufFilt *cl.Buffer
	bufOut  *cl.Buffer
}

// NewConv2D creates the 2dcon benchmark.
func NewConv2D() Benchmark { return &conv2d{} }

func (c *conv2d) Name() string { return "2dcon" }

func (c *conv2d) Description() string {
	return "5x5 2D convolution; spatial locality and strided accesses"
}

func (c *conv2d) Source() string {
	return `
#define K 5

// side = dim + 4 (2-pixel halo each side); output written into the
// interior of a same-sized volume.
REAL conv_at(__global const REAL* in,
             __global const REAL* filt,
             int side, int px, int py) {
    REAL acc = (REAL)0;
    for (int ky = 0; ky < K; ky++) {
        for (int kx = 0; kx < K; kx++) {
            acc += filt[ky * K + kx] * in[(py + ky) * side + px + kx];
        }
    }
    return acc;
}

// maligo:allow vectorize scalar reference kernel; conv2d_opt vectorizes the row loads (paper SV-B)
__kernel void conv2d_serial(__global const REAL* in,
                            __global const REAL* filt,
                            __global REAL* out,
                            const int dim) {
    int side = dim + 4;
    for (int y = 0; y < dim; y++) {
        for (int x = 0; x < dim; x++) {
            out[(y + 2) * side + x + 2] = conv_at(in, filt, side, x, y);
        }
    }
}

// maligo:allow vectorize scalar chunked kernel modelling the OpenMP CPU version
__kernel void conv2d_chunk(__global const REAL* in,
                           __global const REAL* filt,
                           __global REAL* out,
                           const int dim) {
    int side = dim + 4;
    size_t t  = get_global_id(0);
    size_t nt = get_global_size(0);
    int chunk = (int)(((size_t)dim + nt - 1) / nt);
    int ylo = (int)t * chunk;
    int yhi = min(ylo + chunk, dim);
    for (int y = ylo; y < yhi; y++) {
        for (int x = 0; x < dim; x++) {
            out[(y + 2) * side + x + 2] = conv_at(in, filt, side, x, y);
        }
    }
}

__kernel void conv2d_cl(__global const REAL* in,
                        __global const REAL* filt,
                        __global REAL* out,
                        const int dim) {
    int x = (int)get_global_id(0);
    int y = (int)get_global_id(1);
    int side = dim + 4;
    out[(y + 2) * side + x + 2] = conv_at(in, filt, side, x, y);
}

// Fully optimized: each work-item computes four horizontally adjacent
// outputs; the whole 5x5 filter is hoisted into vector registers
// before the (fully unrolled) tap loop, and each row contributes via
// vector loads and mad. The large vector working set is exactly what
// pushes the double-precision build over the Mali register budget,
// reproducing the paper's CL_OUT_OF_RESOURCES failure.
__kernel void conv2d_opt(__global const REAL* restrict in,
                         __global const REAL* restrict filt,
                         __global REAL* restrict out,
                         const int dim) {
    int x0 = (int)get_global_id(0) * 4;
    int y = (int)get_global_id(1);
    int side = dim + 4;
    REAL4 f0 = vload4(0, filt);
    REAL4 f1 = vload4(0, filt + 4);
    REAL4 f2 = vload4(0, filt + 8);
    REAL4 f3 = vload4(0, filt + 12);
    REAL4 f4 = vload4(0, filt + 16);
    REAL4 f5 = vload4(0, filt + 20);
    REAL f24 = filt[24];
    REAL4 acc = (REAL4)((REAL)0);
    int row = y * side + x0;

    // Row 0: two aligned vector loads cover in[x0 .. x0+7]; the
    // shifted tap vectors are built with register swizzles, which the
    // Midgard operand routing provides for free.
    REAL4 v0 = vload4(0, in + row);
    REAL4 v1 = vload4(0, in + row + 4);
    acc = mad((REAL4)(f0.x), v0, acc);
    acc = mad((REAL4)(f0.y), (REAL4)(v0.y, v0.z, v0.w, v1.x), acc);
    acc = mad((REAL4)(f0.z), (REAL4)(v0.z, v0.w, v1.x, v1.y), acc);
    acc = mad((REAL4)(f0.w), (REAL4)(v0.w, v1.x, v1.y, v1.z), acc);
    acc = mad((REAL4)(f1.x), v1, acc);
    row += side;
    v0 = vload4(0, in + row);
    v1 = vload4(0, in + row + 4);
    acc = mad((REAL4)(f1.y), v0, acc);
    acc = mad((REAL4)(f1.z), (REAL4)(v0.y, v0.z, v0.w, v1.x), acc);
    acc = mad((REAL4)(f1.w), (REAL4)(v0.z, v0.w, v1.x, v1.y), acc);
    acc = mad((REAL4)(f2.x), (REAL4)(v0.w, v1.x, v1.y, v1.z), acc);
    acc = mad((REAL4)(f2.y), v1, acc);
    row += side;
    v0 = vload4(0, in + row);
    v1 = vload4(0, in + row + 4);
    acc = mad((REAL4)(f2.z), v0, acc);
    acc = mad((REAL4)(f2.w), (REAL4)(v0.y, v0.z, v0.w, v1.x), acc);
    acc = mad((REAL4)(f3.x), (REAL4)(v0.z, v0.w, v1.x, v1.y), acc);
    acc = mad((REAL4)(f3.y), (REAL4)(v0.w, v1.x, v1.y, v1.z), acc);
    acc = mad((REAL4)(f3.z), v1, acc);
    row += side;
    v0 = vload4(0, in + row);
    v1 = vload4(0, in + row + 4);
    acc = mad((REAL4)(f3.w), v0, acc);
    acc = mad((REAL4)(f4.x), (REAL4)(v0.y, v0.z, v0.w, v1.x), acc);
    acc = mad((REAL4)(f4.y), (REAL4)(v0.z, v0.w, v1.x, v1.y), acc);
    acc = mad((REAL4)(f4.z), (REAL4)(v0.w, v1.x, v1.y, v1.z), acc);
    acc = mad((REAL4)(f4.w), v1, acc);
    row += side;
    v0 = vload4(0, in + row);
    v1 = vload4(0, in + row + 4);
    acc = mad((REAL4)(f5.x), v0, acc);
    acc = mad((REAL4)(f5.y), (REAL4)(v0.y, v0.z, v0.w, v1.x), acc);
    acc = mad((REAL4)(f5.z), (REAL4)(v0.z, v0.w, v1.x, v1.y), acc);
    acc = mad((REAL4)(f5.w), (REAL4)(v0.w, v1.x, v1.y, v1.z), acc);
    acc = mad((REAL4)(f24), v1, acc);
    int o = (y + 2) * side + x0 + 2;
    vstore4(acc, 0, out + o);
}

// Fallback for register-constrained configurations: two outputs per
// work-item with REAL2 vectors.
// maligo:allow vectorize the short filter-row loop reads __constant-sized data already in cache
__kernel void conv2d_opt2(__global const REAL* restrict in,
                          __global const REAL* restrict filt,
                          __global REAL* restrict out,
                          const int dim) {
    int x0 = (int)get_global_id(0) * 2;
    int y = (int)get_global_id(1);
    int side = dim + 4;
    REAL2 acc = (REAL2)((REAL)0);
    for (int ky = 0; ky < K; ky++) {
        int row = (y + ky) * side + x0;
        for (int kx = 0; kx < K; kx++) {
            REAL2 iv = vload2(0, in + row + kx);
            acc = mad((REAL2)(filt[ky * K + kx]), iv, acc);
        }
    }
    int o = (y + 2) * side + x0 + 2;
    vstore2(acc, 0, out + o);
}
`
}

func (c *conv2d) Setup(ctx *cl.Context, prec Precision, scale float64) error {
	c.prec = prec
	c.dim = scaled(convDim, scale, 128, 128)
	side := c.dim + 4
	r := newRng(8)
	c.in = make([]float64, side*side)
	for i := range c.in {
		c.in[i] = r.float()
	}
	c.filter = make([]float64, convFilter*convFilter)
	var sum float64
	for i := range c.filter {
		c.filter[i] = r.float()
		sum += c.filter[i]
	}
	for i := range c.filter {
		c.filter[i] /= sum
	}
	es := prec.Size()
	var err error
	if c.bufIn, err = ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, int64(side*side*es), nil); err != nil {
		return err
	}
	if c.bufFilt, err = ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, int64(len(c.filter)*es), nil); err != nil {
		return err
	}
	if c.bufOut, err = ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, int64(side*side*es), nil); err != nil {
		return err
	}
	if err := writeReals(c.bufIn, prec, c.in); err != nil {
		return err
	}
	return writeReals(c.bufFilt, prec, c.filter)
}

func (c *conv2d) Run(q *cl.CommandQueue, prog *cl.Program, version Version) (*RunInfo, error) {
	args := []any{c.bufIn, c.bufFilt, c.bufOut, c.dim}
	switch version {
	case Serial:
		return &RunInfo{Kernels: []string{"conv2d_serial"}},
			launch(q, prog, "conv2d_serial", 1, []int{1}, []int{1}, args...)
	case OpenMP:
		return &RunInfo{Kernels: []string{"conv2d_chunk"}},
			launch(q, prog, "conv2d_chunk", 1, []int{ompChunks}, []int{1}, args...)
	case OpenCL:
		return &RunInfo{Kernels: []string{"conv2d_cl"}},
			launch(q, prog, "conv2d_cl", 2, []int{c.dim, c.dim}, nil, args...)
	default:
		err := launch(q, prog, "conv2d_opt", 2, []int{c.dim / 4, c.dim}, []int{32, 4}, args...)
		if errors.Is(err, device.ErrOutOfResources) {
			// The paper's CL_OUT_OF_RESOURCES artifact: retry with the
			// narrower variant.
			err = launch(q, prog, "conv2d_opt2", 2, []int{c.dim / 2, c.dim}, []int{32, 4}, args...)
			return &RunInfo{FellBack: true, Kernels: []string{"conv2d_opt2"}}, err
		}
		return &RunInfo{Kernels: []string{"conv2d_opt"}}, err
	}
}

func (c *conv2d) Verify(prec Precision) error {
	side := c.dim + 4
	got, err := readReals(c.bufOut, prec, side*side)
	if err != nil {
		return err
	}
	worst := 0.0
	for y := 0; y < c.dim; y++ {
		for x := 0; x < c.dim; x++ {
			var acc float64
			for ky := 0; ky < convFilter; ky++ {
				for kx := 0; kx < convFilter; kx++ {
					acc += c.filter[ky*convFilter+kx] * c.in[(y+ky)*side+x+kx]
				}
			}
			if e := relErr(got[(y+2)*side+x+2], acc); e > worst {
				worst = e
			}
		}
	}
	if worst > tolerance(prec) {
		return errf("2dcon: worst relative error %g exceeds %g", worst, tolerance(prec))
	}
	return nil
}

func (c *conv2d) Supported(prec Precision, v Version) (bool, string) { return true, "" }
