package bench_test

import (
	"strings"
	"testing"

	"maligo/internal/bench"
	"maligo/internal/cl"
	"maligo/internal/cpu"
	"maligo/internal/mali"
)

// testScale keeps the instruction-level simulation fast while staying
// above every benchmark's minimum workload.
const testScale = 0.08

// runAllVersions sets up one benchmark at one precision, runs every
// supported version on its matching device, and verifies results.
func runAllVersions(t *testing.T, name string, prec bench.Precision) {
	t.Helper()
	b := bench.ByName(name)
	if b == nil {
		t.Fatalf("unknown benchmark %q", name)
	}
	cpu1 := cpu.New(1)
	cpu2 := cpu.New(2)
	gpu := mali.New()
	ctx := cl.NewContext(cpu1, cpu2, gpu)
	prog := ctx.CreateProgramWithSource(b.Source())
	if err := prog.Build(prec.BuildOptions()); err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := b.Setup(ctx, prec, testScale); err != nil {
		t.Fatalf("setup: %v", err)
	}
	queues := map[bench.Version]*cl.CommandQueue{
		bench.Serial:    ctx.CreateCommandQueue(cpu1),
		bench.OpenMP:    ctx.CreateCommandQueue(cpu2),
		bench.OpenCL:    ctx.CreateCommandQueue(gpu),
		bench.OpenCLOpt: ctx.CreateCommandQueue(gpu),
	}
	ran := 0
	for _, v := range bench.Versions() {
		ok, reason := b.Supported(prec, v)
		if !ok {
			if reason == "" {
				t.Errorf("%s unsupported without a reason", v)
			}
			continue
		}
		info, err := b.Run(queues[v], prog, v)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if len(info.Kernels) == 0 {
			t.Errorf("%s: no kernels reported", v)
		}
		if err := b.Verify(prec); err != nil {
			t.Fatalf("%s verification: %v", v, err)
		}
		ran++
	}
	if ran == 0 {
		t.Fatal("no version executed")
	}
}

func TestBenchmarksAllVersionsF32(t *testing.T) {
	for _, name := range bench.Names() {
		name := name
		t.Run(name, func(t *testing.T) { runAllVersions(t, name, bench.F32) })
	}
}

func TestBenchmarksAllVersionsF64(t *testing.T) {
	for _, name := range bench.Names() {
		name := name
		t.Run(name, func(t *testing.T) { runAllVersions(t, name, bench.F64) })
	}
}

func TestRegistryComplete(t *testing.T) {
	names := bench.Names()
	want := []string{"spmv", "vecop", "hist", "3dstc", "red", "amcd", "nbody", "2dcon", "dmmm"}
	if len(names) != len(want) {
		t.Fatalf("benchmarks = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("benchmark order = %v, want the paper's order %v", names, want)
		}
	}
	if bench.ByName("nope") != nil {
		t.Error("ByName of unknown benchmark should be nil")
	}
	for _, b := range bench.All() {
		if b.Description() == "" {
			t.Errorf("%s has no description", b.Name())
		}
		if !strings.Contains(b.Source(), "__kernel") {
			t.Errorf("%s source has no kernels", b.Name())
		}
	}
}

func TestAmcdFP64GPUUnsupported(t *testing.T) {
	b := bench.ByName("amcd")
	for _, v := range []bench.Version{bench.OpenCL, bench.OpenCLOpt} {
		if ok, reason := b.Supported(bench.F64, v); ok || reason == "" {
			t.Errorf("amcd FP64 %s should be unsupported with a reason (paper §V-A)", v)
		}
	}
	for _, v := range []bench.Version{bench.Serial, bench.OpenMP} {
		if ok, _ := b.Supported(bench.F64, v); !ok {
			t.Errorf("amcd FP64 %s (CPU) should be supported", v)
		}
	}
	for _, v := range bench.Versions() {
		if ok, _ := b.Supported(bench.F32, v); !ok {
			t.Errorf("amcd FP32 %s should be supported", v)
		}
	}
}

func TestVersionMetadata(t *testing.T) {
	if bench.Serial.IsGPU() || bench.OpenMP.IsGPU() {
		t.Error("CPU versions misclassified")
	}
	if !bench.OpenCL.IsGPU() || !bench.OpenCLOpt.IsGPU() {
		t.Error("GPU versions misclassified")
	}
	if bench.F32.Size() != 4 || bench.F64.Size() != 8 {
		t.Error("precision sizes wrong")
	}
	if !strings.Contains(bench.F64.BuildOptions(), "-DREAL=double") {
		t.Error("F64 build options wrong")
	}
}

// TestFP64FallbackArtifact checks the CL_OUT_OF_RESOURCES fallback for
// the double-precision optimized nbody and 2dcon kernels.
func TestFP64FallbackArtifact(t *testing.T) {
	for _, name := range []string{"nbody", "2dcon"} {
		name := name
		t.Run(name, func(t *testing.T) {
			b := bench.ByName(name)
			cpu1 := cpu.New(1)
			gpu := mali.New()
			ctx := cl.NewContext(cpu1, gpu)
			prog := ctx.CreateProgramWithSource(b.Source())
			if err := prog.Build(bench.F64.BuildOptions()); err != nil {
				t.Fatal(err)
			}
			if err := b.Setup(ctx, bench.F64, testScale); err != nil {
				t.Fatal(err)
			}
			q := ctx.CreateCommandQueue(gpu)
			info, err := b.Run(q, prog, bench.OpenCLOpt)
			if err != nil {
				t.Fatal(err)
			}
			if !info.FellBack {
				t.Fatalf("%s FP64 Opt should fall back after CL_OUT_OF_RESOURCES (paper artifact)", name)
			}
			if err := b.Verify(bench.F64); err != nil {
				t.Fatalf("fallback kernel produced wrong results: %v", err)
			}
		})
	}
}

// TestFP32NoFallback checks that single-precision optimized kernels
// fit the register budget.
func TestFP32NoFallback(t *testing.T) {
	for _, name := range []string{"nbody", "2dcon"} {
		b := bench.ByName(name)
		cpu1 := cpu.New(1)
		gpu := mali.New()
		ctx := cl.NewContext(cpu1, gpu)
		prog := ctx.CreateProgramWithSource(b.Source())
		if err := prog.Build(bench.F32.BuildOptions()); err != nil {
			t.Fatal(err)
		}
		if err := b.Setup(ctx, bench.F32, testScale); err != nil {
			t.Fatal(err)
		}
		q := ctx.CreateCommandQueue(gpu)
		info, err := b.Run(q, prog, bench.OpenCLOpt)
		if err != nil {
			t.Fatal(err)
		}
		if info.FellBack {
			t.Fatalf("%s FP32 Opt unexpectedly hit the register budget", name)
		}
	}
}
