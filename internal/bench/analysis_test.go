package bench

import (
	"os"
	"testing"

	"maligo/internal/clc"
	"maligo/internal/clc/analysis"
)

// TestKernelsLintClean runs every benchmark's kernel source through
// the static analyzer at both precisions and requires that no
// diagnostic of Warning severity or higher survives. Intentionally
// unoptimized baseline kernels (the Serial/OpenMP/naive-port versions
// the paper compares against) carry maligo:allow directives with the
// reason; anything else that fires here is either a real defect in a
// kernel or a false positive in a pass — both need fixing, not
// silencing. Info-level notes (missing const/restrict on baselines)
// are deliberate: the qualifier delta between the naive and optimized
// versions is part of the experiment.
func TestKernelsLintClean(t *testing.T) {
	// The double-precision builds of the vectorized kernels are
	// documented to blow the per-thread register budget — the paper's
	// CL_OUT_OF_RESOURCES result. The analyzer must keep reproducing
	// exactly those findings and nothing else.
	type finding struct {
		bench  string
		prec   Precision
		kernel string
		pass   string
	}
	expected := map[finding]bool{
		{"nbody", F64, "nbody_opt", "regbudget"}:  false,
		{"2dcon", F64, "conv2d_opt", "regbudget"}: false,
	}
	for _, b := range All() {
		for _, prec := range []Precision{F32, F64} {
			art, err := clc.CompileArtifacts(b.Name()+".cl", b.Source(), prec.BuildOptions())
			if err != nil {
				t.Fatalf("%s (%v): compile: %v", b.Name(), prec, err)
			}
			for _, d := range analysis.Analyze(art) {
				if d.Sev < analysis.Warning {
					continue
				}
				key := finding{b.Name(), prec, d.Kernel, d.Pass}
				if _, ok := expected[key]; ok {
					expected[key] = true
					continue
				}
				t.Errorf("%s (%v): unsuppressed %v: %v", b.Name(), prec, d.Sev, d)
			}
		}
	}
	for key, seen := range expected {
		if !seen {
			t.Errorf("expected diagnostic vanished: %s %v %s [%s]", key.bench, key.prec, key.kernel, key.pass)
		}
	}
}

// TestSaxpyLintClean keeps the tutorial kernel shipped under
// testdata/ clean at Warning level.
func TestSaxpyLintClean(t *testing.T) {
	src, err := os.ReadFile("../../testdata/saxpy.cl")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.AnalyzeSource("saxpy.cl", string(src), "-DREAL=float")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Sev >= analysis.Warning {
			t.Errorf("saxpy.cl: %v", d)
		}
	}
}
