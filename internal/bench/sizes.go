package bench

// Default workload sizes at scale 1.0. The paper does not publish its
// problem sizes; these are chosen so that each benchmark exercises the
// same regime the paper describes (working sets well beyond the caches
// for the memory-bound kernels, compute-dominated inner loops for
// nbody/2dcon/dmmm) while staying tractable for the instruction-level
// simulator. EXPERIMENTS.md documents this substitution.
const (
	// vecop: element-wise vector addition (memory-bound).
	vecopN = 1 << 20

	// spmv: CSR sparse matrix-vector product with a skewed
	// nonzeros-per-row distribution for load imbalance.
	spmvRows      = 1 << 14
	spmvAvgNnz    = 16
	spmvHeavyNnz  = 256 // a few rows are this heavy
	spmvHeavyFrac = 64  // one in this many rows is heavy

	// hist: histogram with atomically updated bins.
	histN    = 1 << 20
	histBins = 256

	// 3dstc: 7-point 3D stencil; interior is stencilDim^3.
	stencilDim = 96

	// red: sum reduction.
	redN = 1 << 21

	// amcd: independent Metropolis Monte-Carlo simulations.
	amcdSims  = 1024
	amcdAtoms = 32
	amcdIters = 48

	// nbody: all-pairs gravitation, one time step.
	nbodyN = 2048

	// 2dcon: 2D convolution with a 5x5 filter.
	convDim    = 512
	convFilter = 5

	// dmmm: dense matrix-matrix multiply (n x n).
	dmmmN = 160
)

// Work-group sizes: the OpenCL versions pass nil (driver default, the
// trap §III-A warns about); the Opt versions use these hand-tuned
// values, following the developer-guide advice the paper cites.
const (
	tunedWG1D   = 128
	tunedWGRed  = 128
	tunedWGHist = 64
)
