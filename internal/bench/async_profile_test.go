package bench_test

import (
	"bytes"
	"testing"

	"maligo/internal/bench"
	"maligo/internal/cl"
	"maligo/internal/cpu"
	"maligo/internal/mali"
	"maligo/internal/vm"
)

// benchArenaBytes bounds the unified-memory arena for the comparison
// tests so whole-arena equality checks stay cheap. Generous for every
// benchmark at testScale.
const benchArenaBytes = 64 << 20

// runBenchQueues runs every supported version of one benchmark at one
// precision on a fresh context and returns the per-version queues
// (holding their event histories) and the context.
func runBenchQueues(t *testing.T, name string, prec bench.Precision, engine vm.Engine, async bool) (map[bench.Version]*cl.CommandQueue, *cl.Context) {
	t.Helper()
	b := bench.ByName(name)
	if b == nil {
		t.Fatalf("unknown benchmark %q", name)
	}
	cpu1 := cpu.New(1)
	cpu2 := cpu.New(2)
	gpu := mali.New()
	ctx := cl.NewContextWith(
		cl.WithDevices(cpu1, cpu2, gpu),
		cl.WithArenaBytes(benchArenaBytes),
		cl.WithEngine(engine),
		cl.WithAsyncQueues(async),
	)
	t.Cleanup(ctx.Close)
	prog := ctx.CreateProgramWithSource(b.Source())
	if err := prog.Build(prec.BuildOptions()); err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := b.Setup(ctx, prec, testScale); err != nil {
		t.Fatalf("setup: %v", err)
	}
	queues := map[bench.Version]*cl.CommandQueue{
		bench.Serial:    ctx.CreateCommandQueue(cpu1),
		bench.OpenMP:    ctx.CreateCommandQueue(cpu2),
		bench.OpenCL:    ctx.CreateCommandQueue(gpu),
		bench.OpenCLOpt: ctx.CreateCommandQueue(gpu),
	}
	for _, v := range bench.Versions() {
		if ok, _ := b.Supported(prec, v); !ok {
			continue
		}
		if _, err := b.Run(queues[v], prog, v); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
	}
	return queues, ctx
}

// TestEventProfilingMonotonic asserts the OpenCL profiling invariant
// QUEUED <= SUBMIT <= START <= END for every event of every benchmark
// on both VM execution engines, and that events tile each in-order
// queue's clock without gaps or overlaps.
func TestEventProfilingMonotonic(t *testing.T) {
	engines := []struct {
		name string
		e    vm.Engine
	}{
		{"interp", vm.EngineInterp},
		{"compiled", vm.EngineCompiled},
	}
	for _, eng := range engines {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			for _, name := range bench.Names() {
				name := name
				t.Run(name, func(t *testing.T) {
					queues, _ := runBenchQueues(t, name, bench.F32, eng.e, false)
					checked := 0
					for v, q := range queues {
						prevEnd := 0.0
						for i, ev := range q.Events() {
							if ev.Queued > ev.Submitted || ev.Submitted > ev.Started || ev.Started > ev.Ended {
								t.Errorf("%s event %d (%s): non-monotone stamps %g/%g/%g/%g",
									v, i, ev.Kind, ev.Queued, ev.Submitted, ev.Started, ev.Ended)
							}
							if ev.Queued != prevEnd {
								t.Errorf("%s event %d (%s): QUEUED %g != previous END %g",
									v, i, ev.Kind, ev.Queued, prevEnd)
							}
							prevEnd = ev.Ended
							checked++
						}
					}
					if checked == 0 {
						t.Fatal("no events recorded")
					}
				})
			}
		})
	}
}

// TestAsyncBenchmarksBitIdentical runs every benchmark once on the
// synchronous queue path and once through the DAG scheduler and
// requires bit-identical outcomes: the same event histories (profiling
// stamps, durations, kinds) and the same unified-memory arena bytes.
// This is the tentpole determinism guarantee — async mode changes no
// simulated observable, so every §V figure is unchanged.
func TestAsyncBenchmarksBitIdentical(t *testing.T) {
	for _, name := range bench.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			syncQs, syncCtx := runBenchQueues(t, name, bench.F32, vm.EngineAuto, false)
			asyncQs, asyncCtx := runBenchQueues(t, name, bench.F32, vm.EngineAuto, true)
			for _, v := range bench.Versions() {
				se := syncQs[v].Events()
				ae := asyncQs[v].Events()
				if len(se) != len(ae) {
					t.Fatalf("%s: event counts differ: sync %d async %d", v, len(se), len(ae))
				}
				for i := range se {
					s, a := se[i], ae[i]
					if s.Kind != a.Kind || s.Name != a.Name || s.Seq != a.Seq || s.Bytes != a.Bytes {
						t.Errorf("%s event %d identity differs: sync %s/%s async %s/%s",
							v, i, s.Kind, s.Name, a.Kind, a.Name)
					}
					if s.Queued != a.Queued || s.Submitted != a.Submitted ||
						s.Started != a.Started || s.Ended != a.Ended || s.Seconds != a.Seconds {
						t.Errorf("%s event %d (%s): stamps sync %g/%g/%g/%g async %g/%g/%g/%g",
							v, i, s.Kind, s.Queued, s.Submitted, s.Started, s.Ended,
							a.Queued, a.Submitted, a.Started, a.Ended)
					}
					if (s.Report == nil) != (a.Report == nil) {
						t.Fatalf("%s event %d: report presence differs", v, i)
					}
					if s.Report != nil && *s.Report != *a.Report {
						t.Errorf("%s event %d: device reports differ", v, i)
					}
				}
			}
			if !bytes.Equal(syncCtx.Arena().Snapshot(), asyncCtx.Arena().Snapshot()) {
				t.Error("arena bytes differ between sync and async runs")
			}
		})
	}
}
