package bench

import "maligo/internal/cl"

// launch creates the named kernel, binds args positionally and
// enqueues it; the common path for all benchmark drivers.
func launch(q *cl.CommandQueue, prog *cl.Program, name string, workDim int, global, local []int, args ...any) error {
	k, err := prog.CreateKernel(name)
	if err != nil {
		return err
	}
	if err := setArgs(k, args...); err != nil {
		return err
	}
	_, err = q.EnqueueNDRangeKernel(k, workDim, global, local)
	return err
}
