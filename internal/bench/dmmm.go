package bench

import (
	"maligo/internal/cl"
)

// dmmm is the Dense Matrix-Matrix Multiplication benchmark (§IV-A):
// C = A·B for n×n row-major matrices. It "provides extensive
// parallelism at both vector and thread level": the optimized kernel
// computes four adjacent C elements per work-item with vector loads of
// B rows, broadcast A elements, an unrolled k-loop and a tuned 2D
// work-group — the full §III recipe, which is why the paper measures
// the largest optimization gains here (25.5x single, 30x double).
type dmmm struct {
	prec Precision
	n    int
	a, b []float64

	bufA *cl.Buffer
	bufB *cl.Buffer
	bufC *cl.Buffer
}

// NewDMMM creates the dmmm benchmark.
func NewDMMM() Benchmark { return &dmmm{} }

func (d *dmmm) Name() string { return "dmmm" }

func (d *dmmm) Description() string {
	return "dense matrix multiply; data reuse and vector+thread parallelism"
}

func (d *dmmm) Source() string {
	return `
// maligo:allow vectorize scalar reference kernel; dmmm_opt vectorizes the dot products (paper SV-B)
__kernel void dmmm_serial(__global const REAL* a,
                          __global const REAL* b,
                          __global REAL* c,
                          const int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            REAL acc = (REAL)0;
            for (int k = 0; k < n; k++) {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

// maligo:allow vectorize scalar chunked kernel modelling the OpenMP CPU version
__kernel void dmmm_chunk(__global const REAL* a,
                         __global const REAL* b,
                         __global REAL* c,
                         const int n) {
    size_t t  = get_global_id(0);
    size_t nt = get_global_size(0);
    int chunk = (int)(((size_t)n + nt - 1) / nt);
    int ilo = (int)t * chunk;
    int ihi = min(ilo + chunk, n);
    for (int i = ilo; i < ihi; i++) {
        for (int j = 0; j < n; j++) {
            REAL acc = (REAL)0;
            for (int k = 0; k < n; k++) {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

// maligo:allow vectorize straightforward port kept scalar on purpose; the opt version uses vload4 (paper SV-B)
__kernel void dmmm_cl(__global const REAL* a,
                      __global const REAL* b,
                      __global REAL* c,
                      const int n) {
    int j = (int)get_global_id(0);
    int i = (int)get_global_id(1);
    REAL acc = (REAL)0;
    for (int k = 0; k < n; k++) {
        acc += a[i * n + k] * b[k * n + j];
    }
    c[i * n + j] = acc;
}

// Optimized: four adjacent outputs per work-item; the k-loop is
// unrolled by two, B rows come in with vload4, A elements broadcast.
__kernel void dmmm_opt(__global const REAL* restrict a,
                       __global const REAL* restrict b,
                       __global REAL* restrict c,
                       const int n) {
    int j0 = (int)get_global_id(0) * 4;
    int i = (int)get_global_id(1);
    REAL4 acc = (REAL4)((REAL)0);
    for (int k = 0; k < n; k += 2) {
        REAL4 b0 = vload4(0, b + k * n + j0);
        REAL4 b1 = vload4(0, b + (k + 1) * n + j0);
        acc = mad((REAL4)(a[i * n + k]), b0, acc);
        acc = mad((REAL4)(a[i * n + k + 1]), b1, acc);
    }
    vstore4(acc, 0, c + i * n + j0);
}
`
}

func (d *dmmm) Setup(ctx *cl.Context, prec Precision, scale float64) error {
	d.prec = prec
	d.n = scaled(dmmmN, scale, 32, 32)
	r := newRng(9)
	d.a = make([]float64, d.n*d.n)
	d.b = make([]float64, d.n*d.n)
	for i := range d.a {
		d.a[i] = r.float() - 0.5
		d.b[i] = r.float() - 0.5
	}
	es := prec.Size()
	var err error
	if d.bufA, err = ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, int64(d.n*d.n*es), nil); err != nil {
		return err
	}
	if d.bufB, err = ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, int64(d.n*d.n*es), nil); err != nil {
		return err
	}
	if d.bufC, err = ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, int64(d.n*d.n*es), nil); err != nil {
		return err
	}
	if err := writeReals(d.bufA, prec, d.a); err != nil {
		return err
	}
	return writeReals(d.bufB, prec, d.b)
}

func (d *dmmm) Run(q *cl.CommandQueue, prog *cl.Program, version Version) (*RunInfo, error) {
	args := []any{d.bufA, d.bufB, d.bufC, d.n}
	switch version {
	case Serial:
		return &RunInfo{Kernels: []string{"dmmm_serial"}},
			launch(q, prog, "dmmm_serial", 1, []int{1}, []int{1}, args...)
	case OpenMP:
		return &RunInfo{Kernels: []string{"dmmm_chunk"}},
			launch(q, prog, "dmmm_chunk", 1, []int{ompChunks}, []int{1}, args...)
	case OpenCL:
		return &RunInfo{Kernels: []string{"dmmm_cl"}},
			launch(q, prog, "dmmm_cl", 2, []int{d.n, d.n}, nil, args...)
	default:
		return &RunInfo{Kernels: []string{"dmmm_opt"}},
			launch(q, prog, "dmmm_opt", 2, []int{d.n / 4, d.n}, []int{8, 8}, args...)
	}
}

func (d *dmmm) Verify(prec Precision) error {
	got, err := readReals(d.bufC, prec, d.n*d.n)
	if err != nil {
		return err
	}
	want := make([]float64, d.n*d.n)
	for i := 0; i < d.n; i++ {
		for j := 0; j < d.n; j++ {
			var acc float64
			for k := 0; k < d.n; k++ {
				acc += d.a[i*d.n+k] * d.b[k*d.n+j]
			}
			want[i*d.n+j] = acc
		}
	}
	tol := tolerance(prec)
	if prec == F32 {
		tol = 0.01 // n-long float accumulations in different orders
	}
	return checkClose(got, want, tol, "dmmm C")
}

func (d *dmmm) Supported(prec Precision, v Version) (bool, string) { return true, "" }
