package bench_test

import (
	"bytes"
	"reflect"
	"testing"

	"maligo/internal/bench"
	"maligo/internal/cl"
	"maligo/internal/cpu"
	"maligo/internal/mali"
	"maligo/internal/obs"
	"maligo/internal/platform"
	"maligo/internal/vm"
)

// engineRun captures every externally observable artifact of running
// one benchmark configuration: the final unified-memory image, the
// profiling events of all queues, the metrics registry snapshot and
// the exported timeline spans.
type engineRun struct {
	arena    []byte
	events   []cl.Event
	metrics  obs.Snapshot
	timeline []obs.Span
}

// runUnderEngine executes every supported version of one benchmark at
// one precision with the given VM engine and returns the full
// observable state. Workers is pinned to 1 for both engines so host
// scheduling cannot perturb the worker-pool gauges; engine choice must
// be the only variable.
func runUnderEngine(t *testing.T, name string, prec bench.Precision, eng vm.Engine) engineRun {
	t.Helper()
	return runUnderEngineOn(t, platform.Default(), 1, name, prec, eng)
}

// runUnderEngineOn is runUnderEngine on an arbitrary registered board
// model and host worker count — the fleet differential suite's probe.
func runUnderEngineOn(t *testing.T, soc *platform.SoC, workers int, name string, prec bench.Precision, eng vm.Engine) engineRun {
	t.Helper()
	b := bench.ByName(name)
	if b == nil {
		t.Fatalf("unknown benchmark %q", name)
	}
	cpu1 := cpu.NewOn(soc, 1)
	cpu2 := cpu.NewOn(soc, soc.CPU.Cores)
	gpu := mali.NewOn(soc)
	ctx := cl.NewContextWith(
		cl.WithDevices(cpu1, cpu2, gpu),
		cl.WithWorkers(workers),
		cl.WithEngine(eng),
	)
	defer ctx.Close()
	prog := ctx.CreateProgramWithSource(b.Source())
	if err := prog.Build(prec.BuildOptions()); err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := b.Setup(ctx, prec, testScale); err != nil {
		t.Fatalf("setup: %v", err)
	}
	queues := map[bench.Version]*cl.CommandQueue{
		bench.Serial:    ctx.CreateCommandQueue(cpu1),
		bench.OpenMP:    ctx.CreateCommandQueue(cpu2),
		bench.OpenCL:    ctx.CreateCommandQueue(gpu),
		bench.OpenCLOpt: ctx.CreateCommandQueue(gpu),
	}
	for _, v := range bench.Versions() {
		if ok, _ := b.Supported(prec, v); !ok {
			continue
		}
		if _, err := b.Run(queues[v], prog, v); err != nil {
			t.Fatalf("%s/%s/%s: %v", name, prec, v, err)
		}
		if err := b.Verify(prec); err != nil {
			t.Fatalf("%s/%s/%s verification: %v", name, prec, v, err)
		}
	}
	var run engineRun
	for _, v := range bench.Versions() {
		q := queues[v]
		for _, ev := range q.Events() {
			e := *ev
			// Host wall-clock is the one deliberately nondeterministic
			// field (and the only thing the engines may change).
			e.HostSeconds = 0
			run.events = append(run.events, e)
		}
		run.timeline = append(run.timeline, q.Timeline()...)
	}
	run.arena = ctx.Arena().Snapshot()
	run.metrics = ctx.Metrics().Snapshot()
	return run
}

// TestEngineDifferential runs the full benchmark matrix — every
// benchmark, every supported version, both precisions — once under the
// reference interpreter and once under each fast engine (compiled,
// lanes), and requires every observable to be bit-identical: buffer
// contents, event timestamps and device reports, metrics counters and
// the exported trace timeline. The interpreter is the oracle; any
// divergence is a fast-engine bug.
func TestEngineDifferential(t *testing.T) {
	names := bench.Names()
	precs := []bench.Precision{bench.F32, bench.F64}
	if testing.Short() {
		// Keep a cross-section with atomics (hist), barriers/local
		// memory (2dcon) and multi-pass reductions (red).
		names = []string{"hist", "2dcon", "red"}
		precs = []bench.Precision{bench.F32}
	}
	for _, name := range names {
		for _, prec := range precs {
			name, prec := name, prec
			t.Run(name+"/"+prec.String(), func(t *testing.T) {
				ref := runUnderEngine(t, name, prec, vm.EngineInterp)
				for _, eng := range []vm.Engine{vm.EngineCompiled, vm.EngineLanes} {
					got := runUnderEngine(t, name, prec, eng)

					if !bytes.Equal(ref.arena, got.arena) {
						diff := -1
						for i := range ref.arena {
							if ref.arena[i] != got.arena[i] {
								diff = i
								break
							}
						}
						t.Errorf("%v: arena contents differ (first at byte %d of %d)", eng, diff, len(ref.arena))
					}
					if len(ref.events) != len(got.events) {
						t.Fatalf("%v: event count differs: interp %d vs %d", eng, len(ref.events), len(got.events))
					}
					for i := range ref.events {
						if !reflect.DeepEqual(ref.events[i], got.events[i]) {
							t.Errorf("%v: event %d differs:\n interp: %+v\n got:    %+v", eng, i, ref.events[i], got.events[i])
						}
					}
					if !reflect.DeepEqual(ref.metrics, got.metrics) {
						t.Errorf("%v: metrics snapshots differ:\n interp: %+v\n got:    %+v", eng, ref.metrics, got.metrics)
					}
					if !reflect.DeepEqual(ref.timeline, got.timeline) {
						t.Errorf("%v: timeline spans differ:\n interp: %+v\n got:    %+v", eng, ref.timeline, got.timeline)
					}
				}
			})
		}
	}
}
