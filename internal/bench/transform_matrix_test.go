package bench_test

import (
	"bytes"
	"reflect"
	"testing"

	"maligo/internal/bench"
	"maligo/internal/cl"
	"maligo/internal/clc"
	"maligo/internal/clc/opt"
	"maligo/internal/cpu"
	"maligo/internal/mali"
	"maligo/internal/vm"
)

// runFromIR is runUnderEngine with an explicit pre-lowered program:
// the transform matrix feeds it either the plain compile or the
// transform-pipeline output, under any VM engine.
func runFromIR(t *testing.T, name string, prec bench.Precision, eng vm.Engine, optimized bool) engineRun {
	t.Helper()
	b := bench.ByName(name)
	if b == nil {
		t.Fatalf("unknown benchmark %q", name)
	}
	irProg, err := clc.Compile("program.cl", b.Source(), prec.BuildOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if optimized {
		irProg, _ = opt.Optimize(irProg)
	}
	cpu1 := cpu.New(1)
	cpu2 := cpu.New(2)
	gpu := mali.New()
	ctx := cl.NewContextWith(
		cl.WithDevices(cpu1, cpu2, gpu),
		cl.WithWorkers(1),
		cl.WithEngine(eng),
	)
	defer ctx.Close()
	prog := ctx.CreateProgramFromIR(irProg, b.Source())
	if err := b.Setup(ctx, prec, testScale); err != nil {
		t.Fatalf("setup: %v", err)
	}
	queues := map[bench.Version]*cl.CommandQueue{
		bench.Serial:    ctx.CreateCommandQueue(cpu1),
		bench.OpenMP:    ctx.CreateCommandQueue(cpu2),
		bench.OpenCL:    ctx.CreateCommandQueue(gpu),
		bench.OpenCLOpt: ctx.CreateCommandQueue(gpu),
	}
	for _, v := range bench.Versions() {
		if ok, _ := b.Supported(prec, v); !ok {
			continue
		}
		if _, err := b.Run(queues[v], prog, v); err != nil {
			t.Fatalf("%s/%s/%s: %v", name, prec, v, err)
		}
		if err := b.Verify(prec); err != nil {
			t.Fatalf("%s/%s/%s verification: %v", name, prec, v, err)
		}
	}
	var run engineRun
	for _, v := range bench.Versions() {
		q := queues[v]
		for _, ev := range q.Events() {
			e := *ev
			e.HostSeconds = 0
			run.events = append(run.events, e)
		}
		run.timeline = append(run.timeline, q.Timeline()...)
	}
	run.arena = ctx.Arena().Snapshot()
	run.metrics = ctx.Metrics().Snapshot()
	return run
}

// TestTransformEngineMatrix is the transform engine's version of the
// engine differential: every benchmark runs through the full §V
// transform pipeline and then under all three VM engines. Two
// contracts hold at once:
//
//  1. across engines, a transformed program's observables are
//     bit-identical (arena, events minus host time, metrics,
//     timeline) — the interpreter on transformed IR is the oracle;
//  2. across the transform boundary, the final memory image is
//     bit-identical to the untransformed interpreter run — transforms
//     may change timing, never results.
func TestTransformEngineMatrix(t *testing.T) {
	names := bench.Names()
	if testing.Short() {
		names = []string{"hist", "2dcon", "red"}
	}
	transformedAny := false
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			b := bench.ByName(name)
			irProg, err := clc.Compile("program.cl", b.Source(), bench.F32.BuildOptions())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if _, rep := opt.Optimize(irProg); rep.Applied() {
				transformedAny = true
				t.Logf("passes applied: %v", rep.AppliedPasses())
			}

			plain := runFromIR(t, name, bench.F32, vm.EngineInterp, false)
			ref := runFromIR(t, name, bench.F32, vm.EngineInterp, true)
			if !bytes.Equal(plain.arena, ref.arena) {
				diff := -1
				for i := range plain.arena {
					if plain.arena[i] != ref.arena[i] {
						diff = i
						break
					}
				}
				t.Errorf("transformed results differ from untransformed (first at byte %d of %d)",
					diff, len(plain.arena))
			}
			for _, eng := range []vm.Engine{vm.EngineCompiled, vm.EngineLanes} {
				got := runFromIR(t, name, bench.F32, eng, true)
				if !bytes.Equal(ref.arena, got.arena) {
					t.Errorf("%v: arena contents differ on transformed IR", eng)
				}
				if len(ref.events) != len(got.events) {
					t.Fatalf("%v: event count differs: interp %d vs %d", eng, len(ref.events), len(got.events))
				}
				for i := range ref.events {
					if !reflect.DeepEqual(ref.events[i], got.events[i]) {
						t.Errorf("%v: event %d differs:\n interp: %+v\n got:    %+v", eng, i, ref.events[i], got.events[i])
					}
				}
				if !reflect.DeepEqual(ref.metrics, got.metrics) {
					t.Errorf("%v: metrics snapshots differ on transformed IR", eng)
				}
				if !reflect.DeepEqual(ref.timeline, got.timeline) {
					t.Errorf("%v: timeline spans differ on transformed IR", eng)
				}
			}
		})
	}
	if !testing.Short() && !transformedAny {
		t.Error("no benchmark kernel was transformed; the matrix is vacuous")
	}
}
