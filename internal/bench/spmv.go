package bench

import (
	"sort"

	"maligo/internal/cl"
)

// spmv is the Sparse Vector-Matrix Multiplication benchmark (§IV-A):
// y = A·x with A in CSR format. The nonzeros-per-row distribution is
// deliberately skewed so the work-per-row varies — the paper uses
// spmv "as metric to measure performance in cases of load imbalance".
// Indirect gathers through the column index array defeat most of the
// vectorization on Mali, which is why the paper's optimized version
// only reaches 1.25x over Serial.
type spmv struct {
	prec   Precision
	rows   int
	nnz    int
	rowPtr []int32
	colIdx []int32
	vals   []float64
	x      []float64

	bufRowPtr *cl.Buffer
	bufColIdx *cl.Buffer
	bufVals   *cl.Buffer
	bufX      *cl.Buffer
	bufY      *cl.Buffer
}

// NewSpmv creates the spmv benchmark.
func NewSpmv() Benchmark { return &spmv{} }

func (s *spmv) Name() string { return "spmv" }

func (s *spmv) Description() string {
	return "CSR sparse matrix-vector product; load imbalance and indirect accesses"
}

func (s *spmv) Source() string {
	return `
// Sparse matrix-vector multiplication, CSR format: y = A*x.

// maligo:allow vectorize scalar reference kernel; CSR gathers are irregular by nature
__kernel void spmv_serial(__global const int* rowptr,
                          __global const int* colidx,
                          __global const REAL* vals,
                          __global const REAL* x,
                          __global REAL* y,
                          const uint rows) {
    for (uint r = 0; r < rows; r++) {
        REAL acc = (REAL)0;
        for (int j = rowptr[r]; j < rowptr[r + 1]; j++) {
            acc += vals[j] * x[colidx[j]];
        }
        y[r] = acc;
    }
}

// maligo:allow vectorize scalar chunked kernel modelling the OpenMP CPU version
__kernel void spmv_chunk(__global const int* rowptr,
                         __global const int* colidx,
                         __global const REAL* vals,
                         __global const REAL* x,
                         __global REAL* y,
                         const uint rows) {
    size_t t  = get_global_id(0);
    size_t nt = get_global_size(0);
    uint chunk = (uint)((rows + nt - 1) / nt);
    uint lo = (uint)t * chunk;
    uint hi = min(lo + chunk, rows);
    for (uint r = lo; r < hi; r++) {
        REAL acc = (REAL)0;
        for (int j = rowptr[r]; j < rowptr[r + 1]; j++) {
            acc += vals[j] * x[colidx[j]];
        }
        y[r] = acc;
    }
}

// maligo:allow vectorize straightforward port kept scalar; spmv_opt restructures the inner loop (paper SV-B)
__kernel void spmv_cl(__global const int* rowptr,
                      __global const int* colidx,
                      __global const REAL* vals,
                      __global const REAL* x,
                      __global REAL* y,
                      const uint rows) {
    size_t r = get_global_id(0);
    if (r < rows) {
        REAL acc = (REAL)0;
        for (int j = rowptr[r]; j < rowptr[r + 1]; j++) {
            acc += vals[j] * x[colidx[j]];
        }
        y[r] = acc;
    }
}

// Optimized: vector loads over the row's values and indices; the
// gather through x stays scalar (the data-structure transformations
// the paper cites but deliberately does not use would be needed to do
// better).
__kernel void spmv_opt(__global const int* restrict rowptr,
                       __global const int* restrict colidx,
                       __global const REAL* restrict vals,
                       __global const REAL* restrict x,
                       __global REAL* restrict y,
                       const uint rows) {
    size_t r = get_global_id(0);
    if (r >= rows) {
        return;
    }
    int lo = rowptr[r];
    int hi = rowptr[r + 1];
    REAL4 acc4 = (REAL4)((REAL)0);
    int j = lo;
    for (; j + 4 <= hi; j += 4) {
        REAL4 v = vload4(0, vals + j);
        int4 c = vload4(0, colidx + j);
        REAL4 xs = (REAL4)(x[c.x], x[c.y], x[c.z], x[c.w]);
        acc4 = mad(v, xs, acc4);
    }
    REAL acc = acc4.x + acc4.y + acc4.z + acc4.w;
    for (; j < hi; j++) {
        acc += vals[j] * x[colidx[j]];
    }
    y[r] = acc;
}
`
}

func (s *spmv) Setup(ctx *cl.Context, prec Precision, scale float64) error {
	s.prec = prec
	s.rows = scaled(spmvRows, scale, 256, tunedWG1D)
	r := newRng(2)

	s.rowPtr = make([]int32, s.rows+1)
	var cols []int32
	var vals []float64
	for row := 0; row < s.rows; row++ {
		nnz := 8 + r.intn(2*spmvAvgNnz-8)
		if row%spmvHeavyFrac == 0 {
			nnz = spmvHeavyNnz
		}
		seen := make(map[int]bool, nnz)
		rowCols := make([]int, 0, nnz)
		for len(rowCols) < nnz {
			c := r.intn(s.rows)
			if !seen[c] {
				seen[c] = true
				rowCols = append(rowCols, c)
			}
		}
		sort.Ints(rowCols)
		for _, c := range rowCols {
			cols = append(cols, int32(c))
			vals = append(vals, r.float()-0.5)
		}
		s.rowPtr[row+1] = int32(len(cols))
	}
	s.colIdx = cols
	s.vals = vals
	s.nnz = len(vals)
	s.x = make([]float64, s.rows)
	for i := range s.x {
		s.x[i] = r.float()
	}

	var err error
	if s.bufRowPtr, err = ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, int64(len(s.rowPtr)*4), nil); err != nil {
		return err
	}
	if s.bufColIdx, err = ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, int64(s.nnz*4), nil); err != nil {
		return err
	}
	if s.bufVals, err = ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, int64(s.nnz*prec.Size()), nil); err != nil {
		return err
	}
	if s.bufX, err = ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, int64(s.rows*prec.Size()), nil); err != nil {
		return err
	}
	if s.bufY, err = ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, int64(s.rows*prec.Size()), nil); err != nil {
		return err
	}
	if err := writeInts(s.bufRowPtr, s.rowPtr); err != nil {
		return err
	}
	if err := writeInts(s.bufColIdx, s.colIdx); err != nil {
		return err
	}
	if err := writeReals(s.bufVals, prec, s.vals); err != nil {
		return err
	}
	return writeReals(s.bufX, prec, s.x)
}

func (s *spmv) Run(q *cl.CommandQueue, prog *cl.Program, version Version) (*RunInfo, error) {
	args := []any{s.bufRowPtr, s.bufColIdx, s.bufVals, s.bufX, s.bufY, s.rows}
	switch version {
	case Serial:
		return &RunInfo{Kernels: []string{"spmv_serial"}},
			launch(q, prog, "spmv_serial", 1, []int{1}, []int{1}, args...)
	case OpenMP:
		return &RunInfo{Kernels: []string{"spmv_chunk"}},
			launch(q, prog, "spmv_chunk", 1, []int{ompChunks}, []int{1}, args...)
	case OpenCL:
		return &RunInfo{Kernels: []string{"spmv_cl"}},
			launch(q, prog, "spmv_cl", 1, []int{s.rows}, nil, args...)
	default:
		return &RunInfo{Kernels: []string{"spmv_opt"}},
			launch(q, prog, "spmv_opt", 1, []int{s.rows}, []int{64}, args...)
	}
}

func (s *spmv) Verify(prec Precision) error {
	got, err := readReals(s.bufY, prec, s.rows)
	if err != nil {
		return err
	}
	want := make([]float64, s.rows)
	for r := 0; r < s.rows; r++ {
		var acc float64
		for j := s.rowPtr[r]; j < s.rowPtr[r+1]; j++ {
			acc += s.vals[j] * s.x[s.colIdx[j]]
		}
		want[r] = acc
	}
	return checkClose(got, want, tolerance(prec), "spmv y")
}

func (s *spmv) Supported(prec Precision, v Version) (bool, string) { return true, "" }
