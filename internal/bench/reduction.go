package bench

import (
	"maligo/internal/cl"
	"maligo/internal/device"
)

// reduction is the Reduction benchmark (§IV-A): summing a vector to a
// scalar. The GPU versions use the classic two-stage scheme the paper
// describes — work-groups tree-reduce in local memory behind barriers
// to per-group partials, then a single work-group reduces the
// partials. The optimized version adds vectorized loads and a tuned
// work-group size, which the paper identifies as the main difference
// between OpenCL and OpenCL Opt for this benchmark.
type reduction struct {
	prec Precision
	n    int
	in   []float64

	bufIn   *cl.Buffer
	bufPart *cl.Buffer
	bufOut  *cl.Buffer
	groups  int
	maxPart int // partial-buffer capacity fixed at Setup
}

// NewReduction creates the red benchmark.
func NewReduction() Benchmark { return &reduction{} }

func (rd *reduction) Name() string { return "red" }

func (rd *reduction) Description() string {
	return "sum reduction; massively parallel stage funnelling to near-sequential"
}

func (rd *reduction) Source() string {
	return `
// maligo:allow vectorize,race single work-item launch: out[0] is exclusive and the scalar loop is the Serial baseline
__kernel void red_serial(__global const REAL* in,
                         __global REAL* out,
                         const uint n) {
    REAL acc = (REAL)0;
    for (uint i = 0; i < n; i++) {
        acc += in[i];
    }
    out[0] = acc;
}

// maligo:allow vectorize scalar chunked kernel modelling the OpenMP CPU version
__kernel void red_chunk(__global const REAL* in,
                        __global REAL* part,
                        const uint n) {
    size_t t  = get_global_id(0);
    size_t nt = get_global_size(0);
    uint chunk = (uint)((n + nt - 1) / nt);
    uint lo = (uint)t * chunk;
    uint hi = min(lo + chunk, n);
    REAL acc = (REAL)0;
    for (uint i = lo; i < hi; i++) {
        acc += in[i];
    }
    part[t] = acc;
}

// maligo:allow vectorize,race single work-item launch: out[0] is exclusive and m is tiny
__kernel void red_combine(__global const REAL* part,
                          __global REAL* out,
                          const uint m) {
    REAL acc = (REAL)0;
    for (uint i = 0; i < m; i++) {
        acc += part[i];
    }
    out[0] = acc;
}

// Stage 1, straightforward port: the classic GPU reduction as first
// written — one work-item per few elements (a huge NDRange), scalar
// loads, then a tree reduction in local memory behind barriers.
// maligo:allow vectorize straightforward port kept scalar on purpose; red_opt uses vload4 (paper SV-B)
__kernel void red_cl(__global const REAL* in,
                     __global REAL* part,
                     __local REAL* scratch,
                     const uint n) {
    size_t gid = get_global_id(0);
    size_t lid = get_local_id(0);
    size_t ls  = get_local_size(0);
    uint lo = (uint)gid * 16u;
    uint hi = min(lo + 16u, n);
    REAL acc = (REAL)0;
    for (uint i = lo; i < hi; i++) {
        acc += in[i];
    }
    scratch[lid] = acc;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (size_t s = ls / 2; s > 0; s = s / 2) {
        if (lid < s) {
            scratch[lid] = scratch[lid] + scratch[lid + s];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0) {
        part[get_group_id(0)] = scratch[0];
    }
}

// Stage 1, optimized: contiguous vload4 accumulation per work-item
// and a tuned work-group size.
__kernel void red_opt(__global const REAL* restrict in,
                      __global REAL* restrict part,
                      __local REAL* scratch,
                      const uint n4) {
    size_t gid = get_global_id(0);
    size_t lid = get_local_id(0);
    size_t ls  = get_local_size(0);
    size_t nwi = get_global_size(0);
    uint chunk = (uint)((n4 + nwi - 1) / nwi);
    uint lo = (uint)gid * chunk;
    uint hi = min(lo + chunk, n4);
    REAL4 acc4 = (REAL4)((REAL)0);
    for (uint i = lo; i < hi; i++) {
        acc4 += vload4(i, in);
    }
    scratch[lid] = acc4.x + acc4.y + acc4.z + acc4.w;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (size_t s = ls / 2; s > 0; s = s / 2) {
        if (lid < s) {
            scratch[lid] = scratch[lid] + scratch[lid + s];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0) {
        part[get_group_id(0)] = scratch[0];
    }
}
`
}

func (rd *reduction) Setup(ctx *cl.Context, prec Precision, scale float64) error {
	rd.prec = prec
	rd.n = scaled(redN, scale, 8192, tunedWGRed*8)
	r := newRng(5)
	rd.in = make([]float64, rd.n)
	for i := range rd.in {
		rd.in[i] = r.float() - 0.5
	}
	rd.groups = 32
	// The naive port's stage 1 produces one partial per work-group of
	// its huge NDRange; size the partial buffer for that worst case.
	rd.maxPart = rd.n / 16 / 64
	if rd.maxPart < rd.groups {
		rd.maxPart = rd.groups
	}
	maxPart := rd.maxPart
	var err error
	if rd.bufIn, err = ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, int64(rd.n*prec.Size()), nil); err != nil {
		return err
	}
	if rd.bufPart, err = ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, int64(maxPart*prec.Size()), nil); err != nil {
		return err
	}
	if rd.bufOut, err = ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, int64(prec.Size()), nil); err != nil {
		return err
	}
	return writeReals(rd.bufIn, prec, rd.in)
}

func (rd *reduction) Run(q *cl.CommandQueue, prog *cl.Program, version Version) (*RunInfo, error) {
	switch version {
	case Serial:
		return &RunInfo{Kernels: []string{"red_serial"}},
			launch(q, prog, "red_serial", 1, []int{1}, []int{1}, rd.bufIn, rd.bufOut, rd.n)
	case OpenMP:
		if err := launch(q, prog, "red_chunk", 1, []int{ompChunks}, []int{1}, rd.bufIn, rd.bufPart, rd.n); err != nil {
			return nil, err
		}
		return &RunInfo{Kernels: []string{"red_chunk", "red_combine"}},
			launch(q, prog, "red_combine", 1, []int{1}, []int{1}, rd.bufPart, rd.bufOut, ompChunks)
	case OpenCL:
		// One work-item per sixteen elements. Stage 2 reduces one
		// partial per stage-1 work-group, so the host must know the
		// group size the driver would pick for a NULL-local launch —
		// it mirrors the documented heuristic (including any tuned
		// hint) and passes the result explicitly, doubling it while
		// the partial count would overflow the buffer sized at Setup.
		nwi := rd.n / 16
		ls := q.Device().DefaultLocalSize(&device.NDRange{WorkDim: 1, Global: [3]int{nwi, 1, 1}})[0]
		for nwi/ls > rd.maxPart {
			ls *= 2
		}
		groups := nwi / ls
		if err := launch(q, prog, "red_cl", 1, []int{nwi}, []int{ls},
			rd.bufIn, rd.bufPart, localArg(ls*rd.prec.Size()), rd.n); err != nil {
			return nil, err
		}
		return &RunInfo{Kernels: []string{"red_cl", "red_combine"}},
			launch(q, prog, "red_combine", 1, []int{1}, []int{1}, rd.bufPart, rd.bufOut, groups)
	default:
		if err := launch(q, prog, "red_opt", 1, []int{rd.groups * tunedWGRed}, []int{tunedWGRed},
			rd.bufIn, rd.bufPart, localArg(tunedWGRed*rd.prec.Size()), rd.n/4); err != nil {
			return nil, err
		}
		return &RunInfo{Kernels: []string{"red_opt", "red_combine"}},
			launch(q, prog, "red_combine", 1, []int{1}, []int{1}, rd.bufPart, rd.bufOut, rd.groups)
	}
}

func (rd *reduction) Verify(prec Precision) error {
	got, err := readReals(rd.bufOut, prec, 1)
	if err != nil {
		return err
	}
	var want float64
	for _, v := range rd.in {
		want += v
	}
	tol := tolerance(prec)
	if prec == F32 {
		tol = 0.02 // different summation orders over 2M values
	}
	if relErr(got[0], want) > tol {
		return errf("red: sum = %g, want %g", got[0], want)
	}
	return nil
}

func (rd *reduction) Supported(prec Precision, v Version) (bool, string) { return true, "" }
