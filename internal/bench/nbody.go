package bench

import (
	"errors"
	"math"

	"maligo/internal/cl"
	"maligo/internal/device"
)

// nbody is the N-Body benchmark (§IV-A): all-pairs gravitational
// interaction updating body positions and velocities over one time
// step. Bodies are stored AoS as (x, y, z, mass) records; the paper's
// OpenCL version keeps that layout, so the optimized kernel can only
// turn each record access into a single vload4 and tune the work-group
// size — which is why the paper sees "no significant improvements over
// the non-optimized version" (17.2x -> 20x in single precision).
type nbody struct {
	prec Precision
	n    int
	body []float64 // 4*n: x,y,z,m
	vel  []float64 // 3*n

	bufBody   *cl.Buffer
	bufVel    *cl.Buffer
	bufPosOut *cl.Buffer
	bufVelOut *cl.Buffer
}

// NewNBody creates the nbody benchmark.
func NewNBody() Benchmark { return &nbody{} }

func (nb *nbody) Name() string { return "nbody" }

func (nb *nbody) Description() string {
	return "all-pairs gravitational step; compute-bound with rsqrt"
}

func (nb *nbody) Source() string {
	return `
#define EPS ((REAL)0.0001)
#define DT  ((REAL)0.01)

// One body's acceleration against every other body; AoS layout with
// scalar loads (the plain ports).
void body_step(__global const REAL* body,
               __global const REAL* vel,
               __global REAL* posOut,
               __global REAL* velOut,
               const int n,
               int i) {
    REAL xi = body[4 * i];
    REAL yi = body[4 * i + 1];
    REAL zi = body[4 * i + 2];
    REAL ax = (REAL)0;
    REAL ay = (REAL)0;
    REAL az = (REAL)0;
    for (int j = 0; j < n; j++) {
        REAL dx = body[4 * j] - xi;
        REAL dy = body[4 * j + 1] - yi;
        REAL dz = body[4 * j + 2] - zi;
        REAL m  = body[4 * j + 3];
        REAL r2 = dx * dx + dy * dy + dz * dz + EPS;
        REAL inv = rsqrt(r2);
        REAL f = m * inv * inv * inv;
        ax += f * dx;
        ay += f * dy;
        az += f * dz;
    }
    REAL vx = vel[3 * i] + ax * DT;
    REAL vy = vel[3 * i + 1] + ay * DT;
    REAL vz = vel[3 * i + 2] + az * DT;
    velOut[3 * i] = vx;
    velOut[3 * i + 1] = vy;
    velOut[3 * i + 2] = vz;
    posOut[4 * i] = xi + vx * DT;
    posOut[4 * i + 1] = yi + vy * DT;
    posOut[4 * i + 2] = zi + vz * DT;
    posOut[4 * i + 3] = body[4 * i + 3];
}

__kernel void nbody_serial(__global const REAL* body,
                           __global const REAL* vel,
                           __global REAL* posOut,
                           __global REAL* velOut,
                           const int n) {
    for (int i = 0; i < n; i++) {
        body_step(body, vel, posOut, velOut, n, i);
    }
}

__kernel void nbody_chunk(__global const REAL* body,
                          __global const REAL* vel,
                          __global REAL* posOut,
                          __global REAL* velOut,
                          const int n) {
    size_t t  = get_global_id(0);
    size_t nt = get_global_size(0);
    int chunk = (int)(((size_t)n + nt - 1) / nt);
    int lo = (int)t * chunk;
    int hi = min(lo + chunk, n);
    for (int i = lo; i < hi; i++) {
        body_step(body, vel, posOut, velOut, n, i);
    }
}

__kernel void nbody_cl(__global const REAL* body,
                       __global const REAL* vel,
                       __global REAL* posOut,
                       __global REAL* velOut,
                       const int n) {
    int i = (int)get_global_id(0);
    if (i < n) {
        body_step(body, vel, posOut, velOut, n, i);
    }
}

// Optimized: the AoS record (x,y,z,m) is fetched with one vload4, the
// interaction loop is unrolled by two with both bodies' records live
// in vector registers, and the arithmetic uses mad. The data layout
// still prevents processing multiple bodies per instruction, so the
// win over the plain port is modest (exactly the paper's
// observation) — and the doubled register working set is what pushes
// the double-precision build over the Mali register budget.
// maligo:allow soa interleaved xyz layout is the benchmark's defined input format; splitting it would change the workload
__kernel void nbody_opt(__global const REAL* restrict body,
                        __global const REAL* restrict vel,
                        __global REAL* restrict posOut,
                        __global REAL* restrict velOut,
                        const int n) {
    int i = (int)get_global_id(0);
    if (i >= n) {
        return;
    }
    REAL4 bi = vload4(i, body);
    REAL ax = (REAL)0;
    REAL ay = (REAL)0;
    REAL az = (REAL)0;
    for (int j = 0; j < n; j += 2) {
        REAL4 bj0 = vload4(j, body);
        REAL4 bj1 = vload4(j + 1, body);
        REAL4 d0 = bj0 - bi;
        REAL4 d1 = bj1 - bi;
        REAL r20 = d0.x * d0.x + d0.y * d0.y + d0.z * d0.z + EPS;
        REAL r21 = d1.x * d1.x + d1.y * d1.y + d1.z * d1.z + EPS;
        REAL inv0 = rsqrt(r20);
        REAL inv1 = rsqrt(r21);
        REAL f0 = bj0.w * inv0 * inv0 * inv0;
        REAL f1 = bj1.w * inv1 * inv1 * inv1;
        ax = mad(f0, d0.x, ax);
        ay = mad(f0, d0.y, ay);
        az = mad(f0, d0.z, az);
        ax = mad(f1, d1.x, ax);
        ay = mad(f1, d1.y, ay);
        az = mad(f1, d1.z, az);
    }
    REAL vx = vel[3 * i] + ax * DT;
    REAL vy = vel[3 * i + 1] + ay * DT;
    REAL vz = vel[3 * i + 2] + az * DT;
    velOut[3 * i] = vx;
    velOut[3 * i + 1] = vy;
    velOut[3 * i + 2] = vz;
    REAL4 po = (REAL4)(bi.x + vx * DT, bi.y + vy * DT, bi.z + vz * DT, bi.w);
    vstore4(po, i, posOut);
}
`
}

func (nb *nbody) Setup(ctx *cl.Context, prec Precision, scale float64) error {
	nb.prec = prec
	nb.n = scaled(nbodyN, scale, 128, 128)
	r := newRng(7)
	nb.body = make([]float64, 4*nb.n)
	nb.vel = make([]float64, 3*nb.n)
	for i := 0; i < nb.n; i++ {
		nb.body[4*i] = r.float()*2 - 1
		nb.body[4*i+1] = r.float()*2 - 1
		nb.body[4*i+2] = r.float()*2 - 1
		nb.body[4*i+3] = r.float() + 0.1
		nb.vel[3*i] = (r.float() - 0.5) * 0.1
		nb.vel[3*i+1] = (r.float() - 0.5) * 0.1
		nb.vel[3*i+2] = (r.float() - 0.5) * 0.1
	}
	es := prec.Size()
	var err error
	if nb.bufBody, err = ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, int64(4*nb.n*es), nil); err != nil {
		return err
	}
	if nb.bufVel, err = ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, int64(3*nb.n*es), nil); err != nil {
		return err
	}
	if nb.bufPosOut, err = ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, int64(4*nb.n*es), nil); err != nil {
		return err
	}
	if nb.bufVelOut, err = ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, int64(3*nb.n*es), nil); err != nil {
		return err
	}
	if err := writeReals(nb.bufBody, prec, nb.body); err != nil {
		return err
	}
	return writeReals(nb.bufVel, prec, nb.vel)
}

func (nb *nbody) Run(q *cl.CommandQueue, prog *cl.Program, version Version) (*RunInfo, error) {
	args := []any{nb.bufBody, nb.bufVel, nb.bufPosOut, nb.bufVelOut, nb.n}
	switch version {
	case Serial:
		return &RunInfo{Kernels: []string{"nbody_serial"}},
			launch(q, prog, "nbody_serial", 1, []int{1}, []int{1}, args...)
	case OpenMP:
		return &RunInfo{Kernels: []string{"nbody_chunk"}},
			launch(q, prog, "nbody_chunk", 1, []int{ompChunks}, []int{1}, args...)
	case OpenCL:
		return &RunInfo{Kernels: []string{"nbody_cl"}},
			launch(q, prog, "nbody_cl", 1, []int{nb.n}, nil, args...)
	default:
		err := launch(q, prog, "nbody_opt", 1, []int{nb.n}, []int{tunedWG1D}, args...)
		if errors.Is(err, device.ErrOutOfResources) {
			// The paper's CL_OUT_OF_RESOURCES artifact (§V-A,
			// double precision): fall back to the plain kernel with a
			// tuned work-group size.
			err = launch(q, prog, "nbody_cl", 1, []int{nb.n}, []int{tunedWG1D}, args...)
			return &RunInfo{FellBack: true, Kernels: []string{"nbody_cl"}}, err
		}
		return &RunInfo{Kernels: []string{"nbody_opt"}}, err
	}
}

func (nb *nbody) Verify(prec Precision) error {
	got, err := readReals(nb.bufPosOut, prec, 4*nb.n)
	if err != nil {
		return err
	}
	const eps, dt = 0.0001, 0.01
	want := make([]float64, 4*nb.n)
	for i := 0; i < nb.n; i++ {
		xi, yi, zi := nb.body[4*i], nb.body[4*i+1], nb.body[4*i+2]
		var ax, ay, az float64
		for j := 0; j < nb.n; j++ {
			dx := nb.body[4*j] - xi
			dy := nb.body[4*j+1] - yi
			dz := nb.body[4*j+2] - zi
			r2 := dx*dx + dy*dy + dz*dz + eps
			inv := 1 / math.Sqrt(r2)
			f := nb.body[4*j+3] * inv * inv * inv
			ax += f * dx
			ay += f * dy
			az += f * dz
		}
		vx := nb.vel[3*i] + ax*dt
		vy := nb.vel[3*i+1] + ay*dt
		vz := nb.vel[3*i+2] + az*dt
		want[4*i] = xi + vx*dt
		want[4*i+1] = yi + vy*dt
		want[4*i+2] = zi + vz*dt
		want[4*i+3] = nb.body[4*i+3]
	}
	tol := tolerance(prec)
	if prec == F32 {
		tol = 0.01 // rsqrt + long accumulations in float
	}
	return checkClose(got, want, tol, "nbody posOut")
}

func (nb *nbody) Supported(prec Precision, v Version) (bool, string) { return true, "" }
