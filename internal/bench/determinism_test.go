package bench_test

import (
	"bytes"
	"testing"

	"maligo/internal/bench"
	"maligo/internal/cl"
	"maligo/internal/cpu"
	"maligo/internal/mali"
)

// benchState runs one benchmark's GPU versions in a context with the
// given engine worker count and returns the final arena image plus the
// NDRange event reports, in order.
func benchState(t *testing.T, name string, workers int) ([]byte, []cl.Event) {
	t.Helper()
	b := bench.ByName(name)
	if b == nil {
		t.Fatalf("unknown benchmark %q", name)
	}
	gpu := mali.New()
	ctx := cl.NewContextWith(
		cl.WithDevices(cpu.New(1), cpu.New(2), gpu),
		cl.WithWorkers(workers),
	)
	defer ctx.Close()
	prog := ctx.CreateProgramWithSource(b.Source())
	if err := prog.Build(bench.F32.BuildOptions()); err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := b.Setup(ctx, bench.F32, testScale); err != nil {
		t.Fatalf("setup: %v", err)
	}
	q := ctx.CreateCommandQueue(gpu)
	var events []cl.Event
	for _, v := range []bench.Version{bench.OpenCL, bench.OpenCLOpt} {
		if ok, _ := b.Supported(bench.F32, v); !ok {
			continue
		}
		if _, err := b.Run(q, prog, v); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if err := b.Verify(bench.F32); err != nil {
			t.Fatalf("%s verification: %v", v, err)
		}
	}
	for _, ev := range q.Events() {
		events = append(events, *ev)
	}
	return ctx.Arena().Snapshot(), events
}

// TestArenaStateDeterminism runs GPU benchmark versions under the
// serial and sharded engines and compares the entire unified-memory
// arena byte for byte, plus every queue event's timing and report.
// hist covers cross-group global atomics, 2dcon covers local-memory
// tiling with barriers, red covers multi-pass reductions.
func TestArenaStateDeterminism(t *testing.T) {
	for _, name := range []string{"hist", "2dcon", "red"} {
		name := name
		t.Run(name, func(t *testing.T) {
			serialMem, serialEvents := benchState(t, name, 1)
			shardedMem, shardedEvents := benchState(t, name, 4)

			if !bytes.Equal(serialMem, shardedMem) {
				diff := -1
				for i := range serialMem {
					if serialMem[i] != shardedMem[i] {
						diff = i
						break
					}
				}
				t.Fatalf("arena contents differ (first at byte %d of %d)", diff, len(serialMem))
			}
			if len(serialEvents) != len(shardedEvents) {
				t.Fatalf("event count differs: %d vs %d", len(serialEvents), len(shardedEvents))
			}
			for i := range serialEvents {
				se, pe := serialEvents[i], shardedEvents[i]
				if se.Kind != pe.Kind || se.Seconds != pe.Seconds || se.Bytes != pe.Bytes {
					t.Errorf("event %d differs: %+v vs %+v", i, se, pe)
				}
				switch {
				case se.Report == nil && pe.Report == nil:
				case se.Report == nil || pe.Report == nil:
					t.Errorf("event %d: report presence differs", i)
				case *se.Report != *pe.Report:
					t.Errorf("event %d reports differ:\n serial:  %+v\n sharded: %+v", i, *se.Report, *pe.Report)
				}
			}
		})
	}
}
