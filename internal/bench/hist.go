package bench

import (
	"fmt"

	"maligo/internal/cl"
)

// hist is the Histogram benchmark (§IV-A): counting value occurrences
// into a configurable number of buckets. The straightforward OpenCL
// port hammers global atomics, which serialize in the Mali snoop
// control unit and make the GPU slower than the serial CPU code — the
// behaviour the paper reports. The optimized version privatizes the
// histogram per work-group in local memory (hardware local atomics)
// and merges once per group, "a reduction stage which can become a
// bottleneck on highly parallel architectures".
type hist struct {
	prec Precision
	n    int
	data []int32

	bufData *cl.Buffer
	bufBins *cl.Buffer
}

// NewHist creates the hist benchmark.
func NewHist() Benchmark { return &hist{} }

func (h *hist) Name() string { return "hist" }

func (h *hist) Description() string {
	return "histogram with atomic updates; privatization + reduction on the GPU"
}

func (h *hist) Source() string {
	return `
#define NBINS 256

// maligo:allow vectorize scalar reference kernel; bin updates are data-dependent
__kernel void hist_serial(__global const int* data,
                          __global int* bins,
                          const uint n) {
    int priv[NBINS];
    for (int b = 0; b < NBINS; b++) {
        priv[b] = 0;
    }
    for (uint i = 0; i < n; i++) {
        priv[data[i]]++;
    }
    for (int b = 0; b < NBINS; b++) {
        bins[b] = priv[b];
    }
}

// maligo:allow vectorize scalar chunked kernel modelling the OpenMP CPU version
__kernel void hist_chunk(__global const int* data,
                         __global int* bins,
                         const uint n) {
    size_t t  = get_global_id(0);
    size_t nt = get_global_size(0);
    uint chunk = (uint)((n + nt - 1) / nt);
    uint lo = (uint)t * chunk;
    uint hi = min(lo + chunk, n);
    int priv[NBINS];
    for (int b = 0; b < NBINS; b++) {
        priv[b] = 0;
    }
    for (uint i = lo; i < hi; i++) {
        priv[data[i]]++;
    }
    for (int b = 0; b < NBINS; b++) {
        atomic_add(&bins[b], priv[b]);
    }
}

__kernel void hist_cl(__global const int* data,
                      __global int* bins,
                      const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        atomic_add(&bins[data[i]], 1);
    }
}

// Optimized: per-work-group privatized histogram in __local memory
// updated with hardware local atomics; each work-item walks a
// contiguous chunk (Midgard-friendly), and each group merges once
// into the global bins.
// maligo:allow vectorize data loads stay scalar: the kernel is bound by bin atomics, not load bandwidth
__kernel void hist_opt(__global const int* restrict data,
                       __global int* restrict bins,
                       __local int* priv,
                       const uint n) {
    size_t lid = get_local_id(0);
    size_t ls  = get_local_size(0);
    for (uint b = (uint)lid; b < NBINS; b += (uint)ls) {
        priv[b] = 0;
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    size_t gid = get_global_id(0);
    size_t nwi = get_global_size(0);
    uint chunk = (uint)((n + nwi - 1) / nwi);
    uint lo = (uint)gid * chunk;
    uint hi = min(lo + chunk, n);
    for (uint i = lo; i < hi; i++) {
        atomic_add(&priv[data[i]], 1);
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    for (uint b = (uint)lid; b < NBINS; b += (uint)ls) {
        atomic_add(&bins[b], priv[b]);
    }
}

__kernel void hist_clear(__global int* bins) {
    bins[get_global_id(0)] = 0;
}
`
}

func (h *hist) Setup(ctx *cl.Context, prec Precision, scale float64) error {
	h.prec = prec
	h.n = scaled(histN, scale, 4096, tunedWGHist*8)
	r := newRng(3)
	h.data = make([]int32, h.n)
	for i := range h.data {
		// Zipf-ish skew so some bins are hot (atomic contention).
		v := r.intn(histBins)
		if r.intn(8) == 0 {
			v = r.intn(8)
		}
		h.data[i] = int32(v)
	}
	var err error
	if h.bufData, err = ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, int64(h.n*4), nil); err != nil {
		return err
	}
	if h.bufBins, err = ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, histBins*4, nil); err != nil {
		return err
	}
	return writeInts(h.bufData, h.data)
}

// clearBins zeroes the bins buffer host-side (setup work outside the
// measured region, like the paper's excluded initialization phase).
func (h *hist) clearBins() error {
	raw, err := h.bufBins.Bytes(0, histBins*4)
	if err != nil {
		return err
	}
	for i := range raw {
		raw[i] = 0
	}
	return nil
}

func (h *hist) Run(q *cl.CommandQueue, prog *cl.Program, version Version) (*RunInfo, error) {
	if err := h.clearBins(); err != nil {
		return nil, err
	}
	args := []any{h.bufData, h.bufBins, h.n}
	switch version {
	case Serial:
		return &RunInfo{Kernels: []string{"hist_serial"}},
			launch(q, prog, "hist_serial", 1, []int{1}, []int{1}, args...)
	case OpenMP:
		return &RunInfo{Kernels: []string{"hist_chunk"}},
			launch(q, prog, "hist_chunk", 1, []int{ompChunks}, []int{1}, args...)
	case OpenCL:
		return &RunInfo{Kernels: []string{"hist_cl"}},
			launch(q, prog, "hist_cl", 1, []int{h.n}, nil, args...)
	default:
		// 32 groups of tunedWGHist work-items, grid-stride loop.
		groups := 32
		global := groups * tunedWGHist
		if global > h.n {
			global = h.n
		}
		return &RunInfo{Kernels: []string{"hist_opt"}},
			launch(q, prog, "hist_opt", 1, []int{global}, []int{tunedWGHist},
				h.bufData, h.bufBins, localArg(histBins*4), h.n)
	}
}

func (h *hist) Verify(prec Precision) error {
	got, err := readInts(h.bufBins, histBins)
	if err != nil {
		return err
	}
	want := make([]int32, histBins)
	for _, v := range h.data {
		want[v]++
	}
	for b := range want {
		if got[b] != want[b] {
			return fmt.Errorf("hist bin %d = %d, want %d", b, got[b], want[b])
		}
	}
	return nil
}

func (h *hist) Supported(prec Precision, v Version) (bool, string) { return true, "" }
