package bench

import (
	"fmt"

	"maligo/internal/cl"
)

// vecop is the Vector Operation benchmark (§IV-A): element-wise
// addition of two vectors. Memory-bound; it stresses the platform's
// achievable bandwidth. The Opt version applies vectorized loads and
// stores (vload4/vstore4) and a hand-tuned work-group size, cutting
// both load/store-pipe slots and the number of work-items.
type vecop struct {
	prec Precision
	n    int
	a, b []float64
	bufA *cl.Buffer
	bufB *cl.Buffer
	bufC *cl.Buffer
}

// NewVecop creates the vecop benchmark.
func NewVecop() Benchmark { return &vecop{} }

func (v *vecop) Name() string { return "vecop" }

func (v *vecop) Description() string {
	return "element-wise vector addition; stresses memory bandwidth"
}

func (v *vecop) Source() string {
	return `
// Vector Operation: c = a + b.

// maligo:allow vectorize scalar reference kernel; vecop_opt is the vectorized version (paper SV-B)
__kernel void vecop_serial(__global const REAL* a,
                           __global const REAL* b,
                           __global REAL* c,
                           const uint n) {
    for (uint i = 0; i < n; i++) {
        c[i] = a[i] + b[i];
    }
}

// maligo:allow vectorize scalar chunked kernel modelling the OpenMP CPU version
__kernel void vecop_chunk(__global const REAL* a,
                          __global const REAL* b,
                          __global REAL* c,
                          const uint n) {
    size_t t  = get_global_id(0);
    size_t nt = get_global_size(0);
    uint chunk = (uint)((n + nt - 1) / nt);
    uint lo = (uint)t * chunk;
    uint hi = min(lo + chunk, n);
    for (uint i = lo; i < hi; i++) {
        c[i] = a[i] + b[i];
    }
}

__kernel void vecop_cl(__global const REAL* a,
                       __global const REAL* b,
                       __global REAL* c,
                       const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}

__kernel void vecop_opt(__global const REAL* restrict a,
                        __global const REAL* restrict b,
                        __global REAL* restrict c) {
    size_t i = get_global_id(0);
    REAL4 va = vload4(i, a);
    REAL4 vb = vload4(i, b);
    vstore4(va + vb, i, c);
}
`
}

func (v *vecop) Setup(ctx *cl.Context, prec Precision, scale float64) error {
	v.prec = prec
	v.n = scaled(vecopN, scale, 1024, tunedWG1D*4)
	r := newRng(1)
	v.a = make([]float64, v.n)
	v.b = make([]float64, v.n)
	for i := 0; i < v.n; i++ {
		v.a[i] = r.float()
		v.b[i] = r.float()
	}
	size := int64(v.n * prec.Size())
	var err error
	if v.bufA, err = ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, size, nil); err != nil {
		return err
	}
	if v.bufB, err = ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, size, nil); err != nil {
		return err
	}
	if v.bufC, err = ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, size, nil); err != nil {
		return err
	}
	if err := writeReals(v.bufA, prec, v.a); err != nil {
		return err
	}
	return writeReals(v.bufB, prec, v.b)
}

func (v *vecop) Run(q *cl.CommandQueue, prog *cl.Program, version Version) (*RunInfo, error) {
	switch version {
	case Serial:
		k, err := prog.CreateKernel("vecop_serial")
		if err != nil {
			return nil, err
		}
		if err := setArgs(k, v.bufA, v.bufB, v.bufC, int64(v.n)); err != nil {
			return nil, err
		}
		if _, err := q.EnqueueNDRangeKernel(k, 1, []int{1}, []int{1}); err != nil {
			return nil, err
		}
		return &RunInfo{Kernels: []string{"vecop_serial"}}, nil
	case OpenMP:
		k, err := prog.CreateKernel("vecop_chunk")
		if err != nil {
			return nil, err
		}
		if err := setArgs(k, v.bufA, v.bufB, v.bufC, int64(v.n)); err != nil {
			return nil, err
		}
		if _, err := q.EnqueueNDRangeKernel(k, 1, []int{ompChunks}, []int{1}); err != nil {
			return nil, err
		}
		return &RunInfo{Kernels: []string{"vecop_chunk"}}, nil
	case OpenCL:
		k, err := prog.CreateKernel("vecop_cl")
		if err != nil {
			return nil, err
		}
		if err := setArgs(k, v.bufA, v.bufB, v.bufC, int64(v.n)); err != nil {
			return nil, err
		}
		if _, err := q.EnqueueNDRangeKernel(k, 1, []int{v.n}, nil); err != nil {
			return nil, err
		}
		return &RunInfo{Kernels: []string{"vecop_cl"}}, nil
	default:
		k, err := prog.CreateKernel("vecop_opt")
		if err != nil {
			return nil, err
		}
		if err := setArgs(k, v.bufA, v.bufB, v.bufC); err != nil {
			return nil, err
		}
		if _, err := q.EnqueueNDRangeKernel(k, 1, []int{v.n / 4}, []int{tunedWG1D}); err != nil {
			return nil, err
		}
		return &RunInfo{Kernels: []string{"vecop_opt"}}, nil
	}
}

func (v *vecop) Verify(prec Precision) error {
	got, err := readReals(v.bufC, prec, v.n)
	if err != nil {
		return err
	}
	want := make([]float64, v.n)
	for i := range want {
		want[i] = v.a[i] + v.b[i]
	}
	return checkClose(got, want, tolerance(prec), "vecop c")
}

func (v *vecop) Supported(prec Precision, ver Version) (bool, string) { return true, "" }

// setArgs binds positional arguments: *cl.Buffer, int64 (integer
// scalars), float64 (float scalars) or localArg.
func setArgs(k *cl.Kernel, args ...any) error {
	for i, a := range args {
		var err error
		switch a := a.(type) {
		case *cl.Buffer:
			err = k.SetArgBuffer(i, a)
		case int64:
			err = k.SetArgInt(i, a)
		case int:
			err = k.SetArgInt(i, int64(a))
		case float64:
			err = k.SetArgFloat(i, a)
		case localArg:
			err = k.SetArgLocal(i, int(a))
		default:
			err = fmt.Errorf("setArgs: unsupported argument type %T at %d", a, i)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// localArg marks a __local pointer argument size in bytes.
type localArg int
