package bench_test

import (
	"bytes"
	"reflect"
	"testing"

	"maligo/internal/bench"
	"maligo/internal/platform"
	"maligo/internal/vm"
)

// compareRuns requires two runs' observables to be bit-identical:
// unified-memory image, event timestamps and device reports, and the
// exported timeline. Metrics snapshots are compared only when
// withMetrics is set — the worker-pool gauges legitimately reflect
// the worker count, so cross-worker comparisons exclude them.
func compareRuns(t *testing.T, label string, ref, got engineRun, withMetrics bool) {
	t.Helper()
	if !bytes.Equal(ref.arena, got.arena) {
		diff := -1
		for i := range ref.arena {
			if ref.arena[i] != got.arena[i] {
				diff = i
				break
			}
		}
		t.Errorf("%s: arena contents differ (first at byte %d of %d)", label, diff, len(ref.arena))
	}
	if len(ref.events) != len(got.events) {
		t.Fatalf("%s: event count differs: %d vs %d", label, len(ref.events), len(got.events))
	}
	for i := range ref.events {
		if !reflect.DeepEqual(ref.events[i], got.events[i]) {
			t.Errorf("%s: event %d differs:\n ref: %+v\n got: %+v", label, i, ref.events[i], got.events[i])
		}
	}
	if withMetrics && !reflect.DeepEqual(ref.metrics, got.metrics) {
		t.Errorf("%s: metrics snapshots differ:\n ref: %+v\n got: %+v", label, ref.metrics, got.metrics)
	}
	if !reflect.DeepEqual(ref.timeline, got.timeline) {
		t.Errorf("%s: timeline spans differ:\n ref: %+v\n got: %+v", label, ref.timeline, got.timeline)
	}
}

// TestFleetDifferential extends the engine differential into the
// device dimension: every registered board model runs every benchmark
// under all three engines, and on a given device every observable
// must be bit-identical across engines (the interpreter is the
// oracle) and across host worker counts on the fast path. A model
// whose numbers leak host state or engine choice into simulated
// observables fails here for every kernel at once.
func TestFleetDifferential(t *testing.T) {
	names := bench.Names()
	if testing.Short() {
		// The cross-section with atomics (hist), barriers/local memory
		// (2dcon) and multi-pass reductions (red).
		names = []string{"hist", "2dcon", "red"}
	}
	for _, dev := range platform.Names() {
		soc, err := platform.Lookup(dev)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			t.Run(dev+"/"+name, func(t *testing.T) {
				ref := runUnderEngineOn(t, soc, 1, name, bench.F32, vm.EngineInterp)
				for _, eng := range []vm.Engine{vm.EngineCompiled, vm.EngineLanes} {
					got := runUnderEngineOn(t, soc, 1, name, bench.F32, eng)
					compareRuns(t, eng.String(), ref, got, true)
				}
				// Worker-count invariance: sharding the NDRange across 4
				// host workers must not move a single simulated bit.
				w4 := runUnderEngineOn(t, soc, 4, name, bench.F32, vm.EngineCompiled)
				w1 := runUnderEngineOn(t, soc, 1, name, bench.F32, vm.EngineCompiled)
				compareRuns(t, "workers=4 vs 1", w1, w4, false)
			})
		}
	}
}
