package bench

import (
	"maligo/internal/cl"
)

// stencil3d is the 3D Stencil benchmark (§IV-A): each interior point
// of the output volume is a linear combination of the corresponding
// input point and its six axis neighbours — regular strided memory
// accesses. Per the paper, this benchmark "does not take advantage of
// vector instructions and limits the optimizations to work-group size
// tuning and data reuse": the optimized kernel walks four consecutive
// x-positions per work-item, reusing the overlapping loads in
// registers, under a hand-tuned work-group shape.
type stencil3d struct {
	prec Precision
	d    int // interior dimension; volume is (d+2)^3
	in   []float64

	bufIn  *cl.Buffer
	bufOut *cl.Buffer
}

// NewStencil3D creates the 3dstc benchmark.
func NewStencil3D() Benchmark { return &stencil3d{} }

func (s *stencil3d) Name() string { return "3dstc" }

func (s *stencil3d) Description() string {
	return "7-point 3D stencil; regular strided accesses, work-group tuning"
}

func (s *stencil3d) Source() string {
	return `
#define C0 ((REAL)0.4)
#define C1 ((REAL)0.1)

// One 7-point stencil evaluation, accumulated in short statements to
// keep the live-register window small.
REAL stencil_at(__global const REAL* in, int idx, int s) {
    REAL acc = C0 * in[idx];
    acc += C1 * (in[idx - 1] + in[idx + 1]);
    acc += C1 * (in[idx - s] + in[idx + s]);
    acc += C1 * (in[idx - s * s] + in[idx + s * s]);
    return acc;
}

// side = interior + 2 (halo).
__kernel void stencil_serial(__global const REAL* in,
                             __global REAL* out,
                             const int d) {
    int s = d + 2;
    for (int z = 1; z <= d; z++) {
        for (int y = 1; y <= d; y++) {
            for (int x = 1; x <= d; x++) {
                int idx = (z * s + y) * s + x;
                out[idx] = stencil_at(in, idx, s);
            }
        }
    }
}

__kernel void stencil_chunk(__global const REAL* in,
                            __global REAL* out,
                            const int d) {
    int s = d + 2;
    size_t t  = get_global_id(0);
    size_t nt = get_global_size(0);
    int chunk = (int)((d + (int)nt - 1) / (int)nt);
    int zlo = 1 + (int)t * chunk;
    int zhi = min(zlo + chunk, d + 1);
    for (int z = zlo; z < zhi; z++) {
        for (int y = 1; y <= d; y++) {
            for (int x = 1; x <= d; x++) {
                int idx = (z * s + y) * s + x;
                out[idx] = stencil_at(in, idx, s);
            }
        }
    }
}

__kernel void stencil_cl(__global const REAL* in,
                         __global REAL* out,
                         const int d) {
    int s = d + 2;
    int x = (int)get_global_id(0) + 1;
    int y = (int)get_global_id(1) + 1;
    int z = (int)get_global_id(2) + 1;
    int idx = (z * s + y) * s + x;
    out[idx] = stencil_at(in, idx, s);
}

// Optimized: 4 consecutive x-points per work-item with register reuse
// of the overlapping x-direction loads, tuned work-group shape.
__kernel void stencil_opt(__global const REAL* restrict in,
                          __global REAL* restrict out,
                          const int d) {
    int s = d + 2;
    int x0 = (int)get_global_id(0) * 4 + 1;
    int y = (int)get_global_id(1) + 1;
    int z = (int)get_global_id(2) + 1;
    int idx = (z * s + y) * s + x0;
    REAL left = in[idx - 1];
    REAL cur = in[idx];
    for (int k = 0; k < 4; k++) {
        REAL right = in[idx + 1];
        REAL acc = C0 * cur + C1 * (left + right);
        acc += C1 * (in[idx - s] + in[idx + s]);
        acc += C1 * (in[idx - s * s] + in[idx + s * s]);
        out[idx] = acc;
        left = cur;
        cur = right;
        idx++;
    }
}
`
}

func (s *stencil3d) Setup(ctx *cl.Context, prec Precision, scale float64) error {
	s.prec = prec
	s.d = scaled(stencilDim, scale, 32, 32)
	side := s.d + 2
	vol := side * side * side
	r := newRng(4)
	s.in = make([]float64, vol)
	for i := range s.in {
		s.in[i] = r.float()
	}
	var err error
	if s.bufIn, err = ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, int64(vol*prec.Size()), nil); err != nil {
		return err
	}
	if s.bufOut, err = ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, int64(vol*prec.Size()), nil); err != nil {
		return err
	}
	return writeReals(s.bufIn, prec, s.in)
}

func (s *stencil3d) Run(q *cl.CommandQueue, prog *cl.Program, version Version) (*RunInfo, error) {
	args := []any{s.bufIn, s.bufOut, s.d}
	switch version {
	case Serial:
		return &RunInfo{Kernels: []string{"stencil_serial"}},
			launch(q, prog, "stencil_serial", 1, []int{1}, []int{1}, args...)
	case OpenMP:
		return &RunInfo{Kernels: []string{"stencil_chunk"}},
			launch(q, prog, "stencil_chunk", 1, []int{ompChunks}, []int{1}, args...)
	case OpenCL:
		return &RunInfo{Kernels: []string{"stencil_cl"}},
			launch(q, prog, "stencil_cl", 3, []int{s.d, s.d, s.d}, nil, args...)
	default:
		return &RunInfo{Kernels: []string{"stencil_opt"}},
			launch(q, prog, "stencil_opt", 3, []int{s.d / 4, s.d, s.d}, []int{8, 8, 1}, args...)
	}
}

func (s *stencil3d) Verify(prec Precision) error {
	side := s.d + 2
	vol := side * side * side
	got, err := readReals(s.bufOut, prec, vol)
	if err != nil {
		return err
	}
	f32 := prec == F32
	c0, c1 := real32(0.4, f32), real32(0.1, f32)
	var worstErr float64
	for z := 1; z <= s.d; z++ {
		for y := 1; y <= s.d; y++ {
			for x := 1; x <= s.d; x++ {
				idx := (z*side+y)*side + x
				want := c0*s.in[idx] + c1*(s.in[idx-1]+s.in[idx+1]+
					s.in[idx-side]+s.in[idx+side]+
					s.in[idx-side*side]+s.in[idx+side*side])
				if e := relErr(got[idx], want); e > worstErr {
					worstErr = e
				}
			}
		}
	}
	if worstErr > tolerance(prec) {
		return errf("3dstc: worst relative error %g exceeds %g", worstErr, tolerance(prec))
	}
	return nil
}

func (s *stencil3d) Supported(prec Precision, v Version) (bool, string) { return true, "" }

// real32 optionally rounds a coefficient to float32 for reference
// computation.
func real32(v float64, f32 bool) float64 {
	if f32 {
		return float64(float32(v))
	}
	return v
}
