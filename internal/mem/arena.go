package mem

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrOutOfMemory is returned when an allocation exceeds the arena
// capacity (the board has 2 GB; the simulator defaults lower).
var ErrOutOfMemory = errors.New("mem: arena exhausted")

// Arena is the flat simulated physical memory backing the unified
// global address space of the Exynos 5250 (CPU and GPU share it, as
// the paper's zero-copy optimization exploits).
type Arena struct {
	data     []byte
	capacity int64
	next     int64
	count    int64
	allocs   map[int64]int64 // base -> size, live allocations
}

// NewArena creates an arena with the given capacity in bytes.
func NewArena(capacity int64) *Arena {
	return &Arena{capacity: capacity, allocs: make(map[int64]int64)}
}

// Alloc reserves size bytes with the given alignment and returns the
// base offset.
func (a *Arena) Alloc(size int64, align int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("mem: invalid allocation size %d", size)
	}
	if align <= 0 {
		align = 16
	}
	base := (a.next + align - 1) / align * align
	// Page-coloring jitter: physical allocators hand out pages whose
	// cache-set mappings are decorrelated; without this, large buffers
	// allocated back-to-back land exactly one power-of-two apart and
	// alias pathologically in the low-associativity L1 model.
	base += (a.count % 29) * 1216
	a.count++
	// Overflow-safe form of base+size > capacity: a near-MaxInt64 size
	// must fail cleanly instead of wrapping negative and "fitting".
	if base < 0 || size > a.capacity-base {
		return 0, ErrOutOfMemory
	}
	a.next = base + size
	if need := int(a.next); need > len(a.data) {
		grown := make([]byte, need)
		copy(grown, a.data)
		a.data = grown
	}
	a.allocs[base] = size
	return base, nil
}

// Free releases an allocation. The arena is a bump allocator; freeing
// the most recent allocation reclaims space, otherwise the range is
// just dropped from the live set (matching the short-lived-context
// usage pattern of the benchmarks).
func (a *Arena) Free(base int64) {
	size, ok := a.allocs[base]
	if !ok {
		return
	}
	delete(a.allocs, base)
	if base+size == a.next {
		a.next = base
	}
}

// Reset rewinds the arena to its freshly created state — bump offset,
// page-coloring counter and touched contents — so a pooled context
// hands every job the exact same deterministic address layout as a
// brand-new one. It refuses (returning false) while any allocation is
// still live.
func (a *Arena) Reset() bool {
	if len(a.allocs) != 0 {
		return false
	}
	for i := range a.data {
		a.data[i] = 0
	}
	a.next, a.count = 0, 0
	return true
}

// Capacity returns the arena's total capacity in bytes.
func (a *Arena) Capacity() int64 { return a.capacity }

// Snapshot returns a copy of the arena's touched memory, for
// comparing the full device-visible state of two runs byte by byte.
func (a *Arena) Snapshot() []byte {
	out := make([]byte, len(a.data))
	copy(out, a.data)
	return out
}

// InUse returns the bytes currently allocated.
func (a *Arena) InUse() int64 {
	var n int64
	for _, size := range a.allocs { // maligo:allow maporder sum commutes
		n += size
	}
	return n
}

// Bytes returns the backing storage for the range [off, off+n). The
// checks are written overflow-safe: a negative length or an offset
// that would wrap int64 must error, never slice out of bounds.
func (a *Arena) Bytes(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off > int64(len(a.data)) || n > int64(len(a.data))-off {
		return nil, fmt.Errorf("mem: range [%d,+%d) outside arena of %d bytes", off, n, len(a.data))
	}
	return a.data[off : off+n], nil
}

// LoadBits reads a little-endian value of size bytes at off.
func (a *Arena) LoadBits(off int64, size int) (uint64, error) {
	if off < 0 || size < 0 || off > int64(len(a.data))-int64(size) {
		return 0, fmt.Errorf("mem: out-of-bounds load at %d (size %d)", off, size)
	}
	// Single loads for the common element sizes; the generic byte loop
	// only serves odd sizes.
	switch size {
	case 4:
		return uint64(binary.LittleEndian.Uint32(a.data[off:])), nil
	case 8:
		return binary.LittleEndian.Uint64(a.data[off:]), nil
	case 1:
		return uint64(a.data[off]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(a.data[off:])), nil
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(a.data[off+int64(i)])
	}
	return v, nil
}

// StoreBits writes a little-endian value of size bytes at off.
func (a *Arena) StoreBits(off int64, size int, bits uint64) error {
	if off < 0 || size < 0 || off > int64(len(a.data))-int64(size) {
		return fmt.Errorf("mem: out-of-bounds store at %d (size %d)", off, size)
	}
	switch size {
	case 4:
		binary.LittleEndian.PutUint32(a.data[off:], uint32(bits))
		return nil
	case 8:
		binary.LittleEndian.PutUint64(a.data[off:], bits)
		return nil
	case 1:
		a.data[off] = byte(bits)
		return nil
	case 2:
		binary.LittleEndian.PutUint16(a.data[off:], uint16(bits))
		return nil
	}
	for i := 0; i < size; i++ {
		a.data[off+int64(i)] = byte(bits >> (8 * uint(i)))
	}
	return nil
}
