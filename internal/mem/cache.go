// Package mem provides the simulated memory system shared by the
// device models: a flat global arena with buffer allocation, a
// set-associative write-back cache model, and a DRAM channel model for
// the board's DDR3L-1600 memory.
package mem

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int
	LineBytes int
	Ways      int
}

// CacheStats accumulates cache behaviour.
type CacheStats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns the fraction of accesses that missed.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

// Cache is a set-associative write-back, write-allocate cache with LRU
// replacement. It models hit/miss behaviour only; data lives in the
// backing arena.
type Cache struct {
	cfg   CacheConfig
	sets  [][]line
	nsets uint64
	tick  uint64
	stats CacheStats
}

// NewCache builds a cache from cfg. Sizes must be powers of two.
func NewCache(cfg CacheConfig) *Cache {
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if nsets < 1 {
		nsets = 1
	}
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{cfg: cfg, sets: sets, nsets: uint64(nsets)}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Stats returns the accumulated statistics.
func (c *Cache) Stats() CacheStats { return c.stats }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
	c.stats = CacheStats{}
	c.tick = 0
}

// Access touches the byte range [addr, addr+size). It returns the
// number of line misses the access caused (each implying a fill from
// the next level) and the number of dirty writebacks.
func (c *Cache) Access(addr uint64, size int, write bool) (misses, writebacks int) {
	if size <= 0 {
		size = 1
	}
	lb := uint64(c.cfg.LineBytes)
	first := addr / lb
	last := (addr + uint64(size) - 1) / lb
	for ln := first; ln <= last; ln++ {
		if c.accessLine(ln, write) {
			continue
		}
		misses++
		if c.fillLine(ln, write) {
			writebacks++
		}
	}
	return misses, writebacks
}

// accessLine probes for one line; returns true on hit.
func (c *Cache) accessLine(lineAddr uint64, write bool) bool {
	c.tick++
	c.stats.Accesses++
	set := c.sets[lineAddr%c.nsets]
	tag := lineAddr / c.nsets
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.tick
			if write {
				set[i].dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// fillLine allocates a line (after a miss), returning true if a dirty
// victim was evicted.
func (c *Cache) fillLine(lineAddr uint64, write bool) bool {
	set := c.sets[lineAddr%c.nsets]
	tag := lineAddr / c.nsets
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	wb := set[victim].valid && set[victim].dirty
	if wb {
		c.stats.Writebacks++
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, lru: c.tick}
	return wb
}
