// Package mem provides the simulated memory system shared by the
// device models: a flat global arena with buffer allocation, a
// set-associative write-back cache model, and a DRAM channel model for
// the board's DDR3L-1600 memory.
package mem

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int
	LineBytes int
	Ways      int
}

// CacheStats accumulates cache behaviour.
type CacheStats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns the fraction of accesses that missed.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// line is one cache line: the tag packed with the valid and dirty
// flags in tv (so a probe is a single masked compare and a line is 16
// bytes), plus the LRU tick.
type line struct {
	tv  uint64
	lru uint64
}

const (
	lineValid = uint64(1) << 63
	lineDirty = uint64(1) << 62
)

// Cache is a set-associative write-back, write-allocate cache with LRU
// replacement. It models hit/miss behaviour only; data lives in the
// backing arena.
//
// The line/set arithmetic sits on the simulator's per-access hot path,
// so the geometry divisions are strength-reduced to shifts and masks
// when line size and set count are powers of two (they always are for
// the modelled hardware; NewCache requires it) — lines is one flat
// ways-major array to spare a level of slice indirection.
type Cache struct {
	cfg       CacheConfig
	lines     []line
	ways      int
	nsets     uint64
	pow2      bool
	lineShift uint
	setMask   uint64
	setShift  uint
	tick      uint64
	stats     CacheStats
}

// NewCache builds a cache from cfg. Sizes must be powers of two.
func NewCache(cfg CacheConfig) *Cache {
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if nsets < 1 {
		nsets = 1
	}
	c := &Cache{
		cfg:   cfg,
		lines: make([]line, nsets*cfg.Ways),
		ways:  cfg.Ways,
		nsets: uint64(nsets),
	}
	lb := uint64(cfg.LineBytes)
	if lb > 0 && lb&(lb-1) == 0 && c.nsets&(c.nsets-1) == 0 {
		c.pow2 = true
		c.lineShift = uint(trailingZeros(lb))
		c.setMask = c.nsets - 1
		c.setShift = uint(trailingZeros(c.nsets))
	}
	return c
}

// trailingZeros returns the number of trailing zero bits of v (v > 0).
func trailingZeros(v uint64) int {
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Stats returns the accumulated statistics.
func (c *Cache) Stats() CacheStats { return c.stats }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.stats = CacheStats{}
	c.tick = 0
}

// Access touches the byte range [addr, addr+size). It returns the
// number of line misses the access caused (each implying a fill from
// the next level) and the number of dirty writebacks.
func (c *Cache) Access(addr uint64, size int, write bool) (misses, writebacks int) {
	if size <= 0 {
		size = 1
	}
	var first, last uint64
	if c.pow2 {
		first = addr >> c.lineShift
		last = (addr + uint64(size) - 1) >> c.lineShift
	} else {
		lb := uint64(c.cfg.LineBytes)
		first = addr / lb
		last = (addr + uint64(size) - 1) / lb
	}
	// Probe and fill are fused into one pass so the set/tag arithmetic
	// and the ways subslice are computed once per line touched.
	for ln := first; ln <= last; ln++ {
		c.tick++
		c.stats.Accesses++
		var si, tag uint64
		if c.pow2 {
			si = ln & c.setMask
			tag = ln >> c.setShift
		} else {
			si = ln % c.nsets
			tag = ln / c.nsets
		}
		base := int(si) * c.ways
		set := c.lines[base : base+c.ways]
		want := tag | lineValid
		hit := false
		for i := range set {
			if set[i].tv&^lineDirty == want {
				set[i].lru = c.tick
				if write {
					set[i].tv |= lineDirty
				}
				hit = true
				break
			}
		}
		if hit {
			c.stats.Hits++
			continue
		}
		c.stats.Misses++
		misses++
		victim := 0
		for i := range set {
			if set[i].tv&lineValid == 0 {
				victim = i
				break
			}
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
		if set[victim].tv&(lineValid|lineDirty) == lineValid|lineDirty {
			c.stats.Writebacks++
			writebacks++
		}
		tv := want
		if write {
			tv |= lineDirty
		}
		set[victim] = line{tv: tv, lru: c.tick}
	}
	return misses, writebacks
}
