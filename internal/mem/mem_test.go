package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	if m, _ := c.Access(0, 4, false); m != 1 {
		t.Fatalf("first access misses = %d, want 1", m)
	}
	if m, _ := c.Access(0, 4, false); m != 0 {
		t.Fatalf("second access misses = %d, want 0", m)
	}
	if m, _ := c.Access(60, 4, false); m != 0 {
		t.Fatalf("same-line access misses = %d, want 0", m)
	}
}

func TestCacheLineSpanning(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	// A 16-byte access straddling a line boundary touches two lines.
	if m, _ := c.Access(56, 16, false); m != 2 {
		t.Fatalf("straddling access misses = %d, want 2", m)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// One set: 2 ways, 2 sets total (256B / 64B / 2).
	c := NewCache(CacheConfig{SizeBytes: 256, LineBytes: 64, Ways: 2})
	// Lines 0, 2, 4 map to set 0 (even line numbers with 2 sets).
	c.Access(0*64, 4, false)
	c.Access(2*64, 4, false)
	c.Access(0*64, 4, false) // touch 0, making 2 the LRU
	c.Access(4*64, 4, false) // evicts 2
	if m, _ := c.Access(0*64, 4, false); m != 0 {
		t.Fatal("line 0 should have survived (was MRU)")
	}
	if m, _ := c.Access(2*64, 4, false); m != 1 {
		t.Fatal("line 2 should have been evicted (was LRU)")
	}
}

func TestCacheWriteback(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 128, LineBytes: 64, Ways: 1})
	c.Access(0, 4, true) // dirty line 0, set 0
	// Line 2 maps to set 0 too (2 sets? 128/64/1 = 2 sets; line0->set0, line2->set0).
	_, wb := c.Access(2*64, 4, false)
	if wb != 1 {
		t.Fatalf("writebacks = %d, want 1 (dirty eviction)", wb)
	}
	// Clean eviction must not write back.
	_, wb = c.Access(4*64, 4, false)
	if wb != 0 {
		t.Fatalf("writebacks = %d, want 0 (clean eviction)", wb)
	}
}

func TestCacheStatsAndReset(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	c.Access(0, 4, false)
	c.Access(0, 4, false)
	s := c.Stats()
	if s.Accesses != 2 || s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.MissRate(); got != 0.5 {
		t.Fatalf("MissRate = %v", got)
	}
	c.Reset()
	if c.Stats().Accesses != 0 {
		t.Fatal("Reset did not clear stats")
	}
	if m, _ := c.Access(0, 4, false); m != 1 {
		t.Fatal("Reset did not clear contents")
	}
}

// Property: a working set smaller than one way per set never misses
// after the first pass (LRU must retain it).
func TestCacheSmallWorkingSetProperty(t *testing.T) {
	f := func(seed uint8) bool {
		c := NewCache(CacheConfig{SizeBytes: 4096, LineBytes: 64, Ways: 4})
		base := uint64(seed) * 64
		// 16 lines = 1KB working set in a 4KB cache.
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < 16; i++ {
				m, _ := c.Access(base+uint64(i)*64, 4, false)
				if pass > 0 && m != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestArenaAllocAlignmentAndGrowth(t *testing.T) {
	a := NewArena(1 << 20)
	b1, err := a.Alloc(100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if b1%64 != 0 {
		t.Fatalf("allocation not 64-aligned: %d", b1)
	}
	b2, err := a.Alloc(100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if b2 < b1+100 {
		t.Fatalf("allocations overlap: %d then %d", b1, b2)
	}
	if b2%64 != 0 {
		t.Fatalf("second allocation not aligned: %d", b2)
	}
}

func TestArenaExhaustion(t *testing.T) {
	a := NewArena(4096)
	if _, err := a.Alloc(1<<20, 64); err == nil {
		t.Fatal("oversized allocation should fail")
	}
	if _, err := a.Alloc(-1, 64); err == nil {
		t.Fatal("negative allocation should fail")
	}
}

func TestArenaLoadStore(t *testing.T) {
	a := NewArena(1 << 16)
	base, err := a.Alloc(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.StoreBits(base, 4, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := a.LoadBits(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEF {
		t.Fatalf("LoadBits = %#x", v)
	}
	// Little-endian byte order.
	raw, err := a.Bytes(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if raw[0] != 0xEF || raw[3] != 0xDE {
		t.Fatalf("byte order wrong: % x", raw)
	}
	if _, err := a.LoadBits(1<<20, 4); err == nil {
		t.Fatal("out-of-bounds load should fail")
	}
}

// TestArenaOverflowSafe checks near-MaxInt64 sizes and offsets error
// cleanly instead of wrapping negative and "fitting" (or slicing out
// of bounds).
func TestArenaOverflowSafe(t *testing.T) {
	a := NewArena(4096)
	base, err := a.Alloc(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(math.MaxInt64-32, 64); err == nil {
		t.Fatal("near-MaxInt64 allocation should fail, not wrap")
	}
	if _, err := a.Bytes(math.MaxInt64, 16); err == nil {
		t.Fatal("Bytes with MaxInt64 offset should fail")
	}
	if _, err := a.Bytes(base, math.MaxInt64); err == nil {
		t.Fatal("Bytes with MaxInt64 length should fail")
	}
	if _, err := a.Bytes(math.MaxInt64, math.MaxInt64); err == nil {
		t.Fatal("Bytes with wrapping off+n should fail")
	}
	if _, err := a.Bytes(-1, 4); err == nil {
		t.Fatal("Bytes with negative offset should fail")
	}
	if _, err := a.LoadBits(math.MaxInt64-2, 8); err == nil {
		t.Fatal("LoadBits with wrapping off+size should fail")
	}
	if err := a.StoreBits(math.MaxInt64-2, 8, 0); err == nil {
		t.Fatal("StoreBits with wrapping off+size should fail")
	}
	// The valid allocation still works after the rejected ones.
	if err := a.StoreBits(base, 8, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	if v, err := a.LoadBits(base, 8); err != nil || v != 0x1122334455667788 {
		t.Fatalf("round trip after rejections: %#x, %v", v, err)
	}
}

func TestArenaFreeReclaimsTail(t *testing.T) {
	a := NewArena(1 << 16)
	b1, _ := a.Alloc(1024, 64)
	inUse := a.InUse()
	a.Free(b1)
	if a.InUse() != inUse-1024 {
		t.Fatalf("InUse after free = %d", a.InUse())
	}
	b2, _ := a.Alloc(512, 64)
	if b2 > b1+4096 {
		t.Fatalf("tail free did not reclaim space: %d then %d", b1, b2)
	}
}

// Property: LoadBits(StoreBits(x)) == x for all sizes.
func TestArenaRoundTripProperty(t *testing.T) {
	a := NewArena(1 << 16)
	base, _ := a.Alloc(4096, 64)
	f := func(v uint64, off uint16, sizeSel uint8) bool {
		size := []int{1, 2, 4, 8}[sizeSel%4]
		o := base + int64(off%2048)
		masked := v
		if size < 8 {
			masked = v & ((1 << (8 * uint(size))) - 1)
		}
		if err := a.StoreBits(o, size, v); err != nil {
			return false
		}
		got, err := a.LoadBits(o, size)
		return err == nil && got == masked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
