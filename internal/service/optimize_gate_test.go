package service

import (
	"encoding/json"
	"net/http"
	"testing"

	"maligo/internal/job"
	"maligo/internal/service/progcache"
)

// loopKernelSrc is transformable: the inner loop is unit-stride, so
// the vectorize pass rewrites it on an optimizing daemon.
const loopKernelSrc = `__kernel void saxpy(__global float* restrict y,
                    __global const float* restrict x,
                    float a, int n) {
	int g = get_global_id(0);
	int base = g * n;
	for (int i = 0; i < n; i++) {
		y[base + i] = a * x[base + i] + y[base + i];
	}
}
`

// loopJobSpec runs loopKernelSrc over 16 work-items x 32 elements.
func loopJobSpec() *job.Spec {
	n := int64(32)
	buf := make([]byte, 16*n*4)
	for i := range buf {
		buf[i] = byte(i % 61)
	}
	return &job.Spec{
		Source: loopKernelSrc,
		Kernel: "saxpy",
		Device: job.DeviceGPU,
		Global: []int{16},
		Args: []job.Arg{
			{Kind: job.ArgBuffer, Data: buf, Read: true},
			{Kind: job.ArgBuffer, Data: buf},
			{Kind: job.ArgFloat, Float: 1.5},
			{Kind: job.ArgInt, Int: n},
		},
	}
}

// TestOptimizeDaemonResultContract is the service-level statement of
// the transform correctness contract: an optimizing daemon serves the
// same buffer bytes as a plain daemon for the same job, reports the
// applied passes in X-Malid-Optimize, and the simulated GPU time moves
// in the paper's direction (the optimized kernel is not slower).
func TestOptimizeDaemonResultContract(t *testing.T) {
	_, plainTS := newTestServer(t, Config{})
	optS, optTS := newTestServer(t, Config{Optimize: true})

	body, _ := json.Marshal(loopJobSpec())
	plainRes := postJSON(t, plainTS.URL+"/v1/jobs", string(body))
	plainBody := readAll(t, plainRes)
	if plainRes.StatusCode != http.StatusOK {
		t.Fatalf("plain job: status %d: %s", plainRes.StatusCode, plainBody)
	}
	if h := plainRes.Header.Get("X-Malid-Optimize"); h != "" {
		t.Fatalf("plain daemon leaked X-Malid-Optimize %q", h)
	}

	optRes := postJSON(t, optTS.URL+"/v1/jobs", string(body))
	optBody := readAll(t, optRes)
	if optRes.StatusCode != http.StatusOK {
		t.Fatalf("optimized job: status %d: %s", optRes.StatusCode, optBody)
	}
	if h := optRes.Header.Get("X-Malid-Optimize"); h == "" || h == "none" {
		t.Fatalf("X-Malid-Optimize = %q, want applied pass names", h)
	}

	var plain, opt job.Result
	if err := json.Unmarshal(plainBody, &plain); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(optBody, &opt); err != nil {
		t.Fatal(err)
	}
	if len(plain.Buffers) == 0 || len(opt.Buffers) != len(plain.Buffers) {
		t.Fatalf("buffer dumps missing: plain %d, optimized %d", len(plain.Buffers), len(opt.Buffers))
	}
	for i := range plain.Buffers {
		if plain.Buffers[i].Arg != opt.Buffers[i].Arg ||
			string(plain.Buffers[i].Data) != string(opt.Buffers[i].Data) {
			t.Fatalf("buffer %d diverged between plain and optimizing daemons", i)
		}
	}
	if plain.ProgramID != opt.ProgramID {
		t.Fatalf("result program_id diverged: %q vs %q (must stamp the program as written)",
			plain.ProgramID, opt.ProgramID)
	}
	if opt.Seconds > plain.Seconds {
		t.Errorf("optimized kernel simulated slower: %.3g s vs %.3g s", opt.Seconds, plain.Seconds)
	}

	// Both content addresses coexist in the optimizing daemon's cache.
	spec := loopJobSpec()
	plainID := job.ProgramID(spec.Source, spec.Options)
	optID := progcache.OptimizedID(spec.Source, spec.Options)
	if plainID == optID {
		t.Fatal("optimized content address must differ from the plain one")
	}
	if _, ok := optS.cache.Get(plainID); !ok {
		t.Error("plain compile missing from the optimizing daemon's cache")
	}
	if _, ok := optS.cache.Get(optID); !ok {
		t.Error("optimized program missing from the optimizing daemon's cache")
	}
	if n := optS.metrics.Counter("malid.programs.optimized").Value(); n != 1 {
		t.Errorf("programs.optimized counter = %d, want 1", n)
	}
}

// TestOptimizeHeaderNoneWhenRefused: a program the pipeline cannot
// transform still runs, with the disposition header saying so.
func TestOptimizeHeaderNoneWhenRefused(t *testing.T) {
	_, ts := newTestServer(t, Config{Optimize: true})
	// A parameterless straight-line kernel: no loops, no pointer
	// params, nothing for any pass to do.
	spec := &job.Spec{
		Source: "__kernel void nop() { }\n",
		Kernel: "nop",
		Device: job.DeviceGPU,
		Global: []int{1},
	}
	body, _ := json.Marshal(spec)
	res := postJSON(t, ts.URL+"/v1/jobs", string(body))
	rb := readAll(t, res)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, rb)
	}
	if h := res.Header.Get("X-Malid-Optimize"); h != "none" {
		t.Fatalf("X-Malid-Optimize = %q, want none", h)
	}
}

// TestOptimizeProgramsEndpoint: registration on an optimizing daemon
// returns the optimized content address (usable for program_id-only
// jobs), reports the passes in the header, and hits the cache on the
// second upload.
func TestOptimizeProgramsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Optimize: true})
	req, _ := json.Marshal(map[string]string{"source": loopKernelSrc})

	var progID string
	for round, wantCached := range []bool{false, true} {
		res := postJSON(t, ts.URL+"/v1/programs", string(req))
		body := readAll(t, res)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, res.StatusCode, body)
		}
		if h := res.Header.Get("X-Malid-Optimize"); h == "" || h == "none" {
			t.Fatalf("round %d: X-Malid-Optimize = %q, want applied passes", round, h)
		}
		var got struct {
			ProgramID string `json:"program_id"`
			Cached    bool   `json:"cached"`
		}
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("round %d: decode: %v", round, err)
		}
		if want := progcache.OptimizedID(loopKernelSrc, ""); got.ProgramID != want {
			t.Fatalf("round %d: program_id %q, want optimized address %q", round, got.ProgramID, want)
		}
		if got.Cached != wantCached {
			t.Fatalf("round %d: cached %v, want %v", round, got.Cached, wantCached)
		}
		progID = got.ProgramID
	}

	// A program_id-only job against the optimized address runs the
	// transformed program and still reports the passes.
	spec := loopJobSpec()
	spec.ProgramID = progID
	spec.Source = ""
	body, _ := json.Marshal(spec)
	res := postJSON(t, ts.URL+"/v1/jobs", string(body))
	rb := readAll(t, res)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("program_id job: status %d: %s", res.StatusCode, rb)
	}
	if h := res.Header.Get("X-Malid-Optimize"); h == "" || h == "none" {
		t.Fatalf("program_id job: X-Malid-Optimize = %q, want applied passes", h)
	}
}
