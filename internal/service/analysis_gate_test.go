package service

import (
	"encoding/json"
	"net/http"
	"testing"

	"maligo/internal/job"
)

// racyKernelSrc carries a tier-2 race error: tile[lid] is written and
// tile[lid+1] read in the same barrier interval, so neighboring
// work-items touch the same __local bytes.
const racyKernelSrc = `__kernel void racy(__global float *out, __local float *tile) {
    int lid = get_local_id(0);
    tile[lid] = (float)lid;
    out[get_global_id(0)] = tile[lid + 1];
}
`

// racyJobSpec is a runnable job over racyKernelSrc (the race is
// benign at run time without dynamic checking; only the analyzer
// objects).
func racyJobSpec() *job.Spec {
	return &job.Spec{
		Source: racyKernelSrc,
		Kernel: "racy",
		Device: job.DeviceGPU,
		Global: []int{8},
		Local:  []int{8},
		Args: []job.Arg{
			{Kind: job.ArgBuffer, Size: 32, Read: true},
			{Kind: job.ArgLocal, Size: 64},
		},
	}
}

func decodeEnvelope(t *testing.T, body []byte) (msg, code string) {
	t.Helper()
	var we struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(body, &we); err != nil {
		t.Fatalf("decode error envelope: %v (%s)", err, body)
	}
	return we.Error, we.Code
}

// TestAnalysisGateRejects: under the "error" policy a program with an
// error-severity finding is rejected at registration with the stable
// wire code, on every upload — but the compile itself stays cached
// (rejection is a policy decision, not a compile failure).
func TestAnalysisGateRejects(t *testing.T) {
	s, ts := newTestServer(t, Config{Analysis: AnalysisError})
	req, _ := json.Marshal(map[string]string{"source": racyKernelSrc})

	for round := 0; round < 2; round++ {
		res := postJSON(t, ts.URL+"/v1/programs", string(req))
		body := readAll(t, res)
		if res.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("round %d: status %d, want 422: %s", round, res.StatusCode, body)
		}
		msg, code := decodeEnvelope(t, body)
		if code != "analysis_failed" {
			t.Fatalf("round %d: code %q, want analysis_failed", round, code)
		}
		if msg == "" {
			t.Fatalf("round %d: empty error message", round)
		}
	}

	if _, ok := s.cache.Get(job.ProgramID(racyKernelSrc, "")); !ok {
		t.Fatal("rejected program not cached; repeat uploads would recompile")
	}
	if n := s.metrics.Counter("malid.programs.rejected_analysis").Value(); n != 2 {
		t.Fatalf("rejected_analysis counter = %d, want 2", n)
	}
}

// TestAnalysisDiagnosticsCached: under the default "warn" policy the
// program is admitted with its diagnostics in the response, and a
// repeat upload serves the identical diagnostics from the cache.
func TestAnalysisDiagnosticsCached(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, _ := json.Marshal(map[string]string{"source": racyKernelSrc})

	var first json.RawMessage
	for round, wantCached := range []bool{false, true} {
		res := postJSON(t, ts.URL+"/v1/programs", string(req))
		if got := res.Header.Get("X-Malid-Analysis"); got != AnalysisWarn {
			t.Fatalf("round %d: X-Malid-Analysis %q, want %q", round, got, AnalysisWarn)
		}
		if got := res.Header.Get("X-Malid-Severity"); got != "error" {
			t.Fatalf("round %d: X-Malid-Severity %q, want error", round, got)
		}
		body := readAll(t, res)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, res.StatusCode, body)
		}
		var got struct {
			Cached      bool            `json:"cached"`
			Diagnostics json.RawMessage `json:"diagnostics"`
		}
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("round %d: decode: %v", round, err)
		}
		if got.Cached != wantCached {
			t.Fatalf("round %d: cached %v, want %v", round, got.Cached, wantCached)
		}
		if len(got.Diagnostics) == 0 || string(got.Diagnostics) == "null" {
			t.Fatalf("round %d: no diagnostics under warn policy: %s", round, body)
		}
		if round == 0 {
			first = got.Diagnostics
		} else if string(got.Diagnostics) != string(first) {
			t.Fatalf("cached diagnostics diverged:\n%s\n%s", first, got.Diagnostics)
		}
	}
}

// TestAnalysisPolicyOff: the "off" policy neither reports nor gates.
func TestAnalysisPolicyOff(t *testing.T) {
	_, ts := newTestServer(t, Config{Analysis: AnalysisOff})
	req, _ := json.Marshal(map[string]string{"source": racyKernelSrc})

	res := postJSON(t, ts.URL+"/v1/programs", string(req))
	if got := res.Header.Get("X-Malid-Severity"); got != "" {
		t.Fatalf("X-Malid-Severity %q leaked under off policy", got)
	}
	body := readAll(t, res)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	var got map[string]json.RawMessage
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if _, ok := got["diagnostics"]; ok {
		t.Fatalf("diagnostics present under off policy: %s", body)
	}
}

// TestAnalysisTenantOverride: per-tenant policies override the daemon
// default in both directions.
func TestAnalysisTenantOverride(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Analysis:       AnalysisWarn,
		TenantAnalysis: map[string]string{"ci": AnalysisError},
	})

	ciReq, _ := json.Marshal(map[string]string{"source": racyKernelSrc, "tenant": "ci"})
	res := postJSON(t, ts.URL+"/v1/programs", string(ciReq))
	body := readAll(t, res)
	if res.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("ci tenant: status %d, want 422: %s", res.StatusCode, body)
	}
	if _, code := decodeEnvelope(t, body); code != "analysis_failed" {
		t.Fatalf("ci tenant: code %q, want analysis_failed", code)
	}

	defReq, _ := json.Marshal(map[string]string{"source": racyKernelSrc})
	res = postJSON(t, ts.URL+"/v1/programs", string(defReq))
	body = readAll(t, res)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("default tenant: status %d: %s", res.StatusCode, body)
	}
}

// TestAnalysisGateOnJobs: the admission gate also covers /v1/jobs, on
// both the source and the program_id-only submission paths, while a
// clean program is unaffected by the "error" policy.
func TestAnalysisGateOnJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Analysis:       AnalysisError,
		TenantAnalysis: map[string]string{"lax": AnalysisOff},
	})

	// Seed the cache through the lax tenant, which may register the
	// racy program.
	regReq, _ := json.Marshal(map[string]string{"source": racyKernelSrc, "tenant": "lax"})
	res := postJSON(t, ts.URL+"/v1/programs", string(regReq))
	if body := readAll(t, res); res.StatusCode != http.StatusOK {
		t.Fatalf("lax register: status %d: %s", res.StatusCode, body)
	}

	// Source path under the default (error) tenant.
	spec := racyJobSpec()
	body, _ := json.Marshal(spec)
	res = postJSON(t, ts.URL+"/v1/jobs", string(body))
	rb := readAll(t, res)
	if res.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("source job: status %d, want 422: %s", res.StatusCode, rb)
	}
	if _, code := decodeEnvelope(t, rb); code != "analysis_failed" {
		t.Fatalf("source job: code %q, want analysis_failed", code)
	}

	// program_id-only path hits the same gate.
	idSpec := racyJobSpec()
	idSpec.ProgramID = job.ProgramID(idSpec.Source, idSpec.Options)
	idSpec.Source = ""
	body, _ = json.Marshal(idSpec)
	res = postJSON(t, ts.URL+"/v1/jobs", string(body))
	rb = readAll(t, res)
	if res.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("program_id job: status %d, want 422: %s", res.StatusCode, rb)
	}
	if _, code := decodeEnvelope(t, rb); code != "analysis_failed" {
		t.Fatalf("program_id job: code %q, want analysis_failed", code)
	}

	// The lax tenant runs the same spec to completion.
	laxSpec := racyJobSpec()
	laxSpec.Tenant = "lax"
	body, _ = json.Marshal(laxSpec)
	res = postJSON(t, ts.URL+"/v1/jobs", string(body))
	rb = readAll(t, res)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("lax job: status %d: %s", res.StatusCode, rb)
	}

	// A clean program sails through the strict default tenant.
	clean := vecopSpec(t)
	body, _ = json.Marshal(clean)
	res = postJSON(t, ts.URL+"/v1/jobs", string(body))
	rb = readAll(t, res)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("clean job under error policy: status %d: %s", res.StatusCode, rb)
	}
}

// TestAnalysisPolicyValidation: New rejects unknown policy names, for
// the daemon default and per-tenant overrides alike.
func TestAnalysisPolicyValidation(t *testing.T) {
	if _, err := New(Config{Analysis: "strict"}); err == nil {
		t.Fatal("New accepted bogus Analysis policy")
	}
	if _, err := New(Config{TenantAnalysis: map[string]string{"ci": "maybe"}}); err == nil {
		t.Fatal("New accepted bogus tenant policy")
	}
}
