// Package service implements malid, the multi-tenant simulation
// daemon: a stdlib-only net/http server exposing a versioned JSON API
// over the job layer. Each tenant gets its own DAG scheduler as an
// admission queue (jobs admit in submission order, with a quota), all
// tenants share one device worker pool and one content-addressed
// compiled-program cache, and small NDRanges are batched onto a
// single pooled context. Served reports are byte-identical to
// in-process job.Runtime runs — the server adds routing, caching and
// admission control, never timing.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"maligo/internal/clc/analysis"
	"maligo/internal/clc/ir"
	"maligo/internal/job"
	"maligo/internal/obs"
	"maligo/internal/platform"
	"maligo/internal/sched"
	"maligo/internal/service/progcache"
)

// Typed errors of the service layer.
var (
	// ErrTenantQuota rejects a submission when the tenant already has
	// MaxQueued jobs admitted and unfinished (HTTP 429).
	ErrTenantQuota = errors.New("malid: tenant admission quota exceeded")
	// ErrUnknownJob rejects a lookup of a job id that was never
	// assigned or has aged out of the bounded history (HTTP 404).
	ErrUnknownJob = errors.New("malid: unknown job id")
	// ErrAnalysisFailed rejects a program carrying error-severity
	// static-analysis findings under the "error" admission policy
	// (HTTP 422, code "analysis_failed").
	ErrAnalysisFailed = errors.New("malid: program rejected by static analysis")
)

// Analysis admission policies.
const (
	// AnalysisOff disables analysis reporting and gating.
	AnalysisOff = "off"
	// AnalysisWarn (the default) returns diagnostics with program
	// registrations but never rejects.
	AnalysisWarn = "warn"
	// AnalysisError additionally rejects programs with error-severity
	// findings before any job runs.
	AnalysisError = "error"
)

// parsePolicy validates an analysis policy name ("" means default).
func parsePolicy(p string) (string, error) {
	switch p {
	case "":
		return AnalysisWarn, nil
	case AnalysisOff, AnalysisWarn, AnalysisError:
		return p, nil
	}
	return "", fmt.Errorf("malid: unknown analysis policy %q (want off, warn or error)", p)
}

// Config sizes a Server.
type Config struct {
	// Runtime configures the shared execution runtime.
	Runtime job.Config
	// MaxQueued is the per-tenant admission quota: jobs admitted and
	// not yet finished (default 64).
	MaxQueued int
	// MaxConcurrent bounds jobs executing simultaneously across all
	// tenants (default 4) — the simulated board fleet size.
	MaxConcurrent int
	// History bounds retained finished jobs (default 1024).
	History int
	// CacheEntries / CacheDir configure the compiled-program cache.
	CacheEntries int
	CacheDir     string
	// BatchItems: jobs with at most this many global work items are
	// eligible for small-NDRange batching (default 4096; 0 keeps the
	// default, negative disables batching).
	BatchItems int64
	// BatchMax is the largest batch drained onto one context
	// (default 8).
	BatchMax int
	// Analysis is the daemon-wide admission policy for static-analysis
	// findings: AnalysisOff, AnalysisWarn (default) or AnalysisError.
	Analysis string
	// TenantAnalysis overrides the policy per tenant name.
	TenantAnalysis map[string]string
	// Optimize runs the §V transform pipeline (internal/clc/opt) on
	// every admitted program: jobs execute the optimized IR, cached
	// under its own content address beside the plain compile. The
	// analysis gate still judges the program as written.
	Optimize bool
	// Device names the board model the daemon simulates (default the
	// Exynos 5250). An unknown name fails New with an error wrapping
	// platform.ErrUnknownDevice — a misconfigured daemon must not come
	// up silently simulating the wrong board. Ignored when Runtime.SoC
	// is already set.
	Device string
}

// Server is the malid service. Create with New, mount via Handler.
type Server struct {
	cfg     Config
	runtime *job.Runtime
	cache   *progcache.Cache
	metrics *obs.Registry
	slots   chan struct{} // global execution slots

	mu      sync.Mutex
	tenants map[string]*tenant
	jobs    map[string]*jobRec
	done    []string // finished job ids, oldest first (history bound)
	seq     uint64
	closed  bool
}

// tenant is one admission queue: a DAG scheduler whose in-order chain
// preserves submission order, plus the quota gate and the open batch.
type tenant struct {
	name     string
	sched    *sched.Scheduler
	prev     *sched.Event // in-order admission chain
	inFlight int          // admitted, not yet finished
	batch    *batch       // open small-job batch, nil when none
}

// batch accumulates small jobs between submission and execution. Once
// the batch command's body starts, the batch is sealed and later
// small jobs open a new one.
type batch struct {
	mu     sync.Mutex
	sealed bool
	specs  []*job.Spec
	progs  []*ir.Program
	recs   []*jobRec
}

// jobRec is one job's registry entry.
type jobRec struct {
	ID     string      `json:"job_id"`
	Tenant string      `json:"tenant"`
	Status string      `json:"status"` // "queued" | "running" | "done" | "failed"
	Error  string      `json:"error,omitempty"`
	Result *job.Result `json:"result,omitempty"`

	cacheHit  bool
	optPasses []string // transform passes applied (optimizing daemons)
	doneCh    chan struct{}
}

// New assembles a server.
func New(cfg Config) (*Server, error) {
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 64
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.History <= 0 {
		cfg.History = 1024
	}
	if cfg.BatchItems == 0 {
		cfg.BatchItems = 4096
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 8
	}
	var err error
	if cfg.Analysis, err = parsePolicy(cfg.Analysis); err != nil {
		return nil, err
	}
	tenantNames := make([]string, 0, len(cfg.TenantAnalysis))
	for tenant := range cfg.TenantAnalysis { // maligo:allow maporder sorted on the next line
		tenantNames = append(tenantNames, tenant)
	}
	sort.Strings(tenantNames)
	for _, tenant := range tenantNames {
		if _, err := parsePolicy(cfg.TenantAnalysis[tenant]); err != nil {
			return nil, fmt.Errorf("tenant %q: %w", tenant, err)
		}
	}
	if cfg.Runtime.SoC == nil {
		soc, err := platform.Lookup(cfg.Device)
		if err != nil {
			return nil, err
		}
		cfg.Runtime.SoC = soc
	}
	cache, err := progcache.New(cfg.CacheEntries, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		runtime: job.NewRuntime(cfg.Runtime),
		cache:   cache,
		metrics: obs.NewRegistry(),
		slots:   make(chan struct{}, cfg.MaxConcurrent),
		tenants: make(map[string]*tenant),
		jobs:    make(map[string]*jobRec),
	}
	s.metrics.GaugeFunc("malid.cache.entries", func() float64 { return float64(s.cache.Len()) })
	s.metrics.GaugeFunc("malid.cache.hit_rate", func() float64 {
		h, m := s.cache.Stats()
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	})
	return s, nil
}

// Close drains every tenant scheduler and the runtime.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants { // maligo:allow maporder closing distinct schedulers commutes
		tenants = append(tenants, t)
	}
	s.mu.Unlock()
	for _, t := range tenants {
		t.sched.Close()
	}
	s.runtime.Close()
}

// Device returns the board model the daemon simulates (set by the
// Device config name or Runtime.SoC; the default Exynos 5250).
func (s *Server) Device() *platform.SoC { return s.cfg.Runtime.SoC }

// Metrics exposes the service registry (the /metrics endpoint and
// tests read it).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// policyFor resolves the analysis admission policy for a tenant.
func (s *Server) policyFor(tenant string) string {
	if p, ok := s.cfg.TenantAnalysis[tenant]; ok && p != "" {
		return p
	}
	return s.cfg.Analysis
}

// admitProgram applies the analysis gate: under the "error" policy a
// program with error-severity findings is rejected before any job
// runs. The first error finding rides in the message so the client
// sees what was wrong without a second round trip.
func (s *Server) admitProgram(tenant string, e *progcache.Entry) error {
	if s.policyFor(tenant) != AnalysisError || e.MaxSeverity() < analysis.Error {
		return nil
	}
	s.metrics.Counter("malid.programs.rejected_analysis").Inc()
	for _, d := range e.Diags {
		if d.Sev == analysis.Error {
			return fmt.Errorf("%w: %s", ErrAnalysisFailed, d.String())
		}
	}
	return ErrAnalysisFailed
}

// compileProgram resolves (source, options) through the cache under
// the daemon's optimize setting. On an optimizing daemon the entry is
// the transform-pipeline output; its fresh compiles bump the
// programs.optimized counter when any pass applied.
func (s *Server) compileProgram(source, options string) (*progcache.Entry, bool, error) {
	if !s.cfg.Optimize {
		return s.cache.GetOrCompile(source, options)
	}
	e, hit, err := s.cache.GetOrCompileOptimized(source, options)
	if err != nil {
		return nil, false, err
	}
	if !hit && len(e.OptPasses) > 0 {
		s.metrics.Counter("malid.programs.optimized").Inc()
	}
	return e, hit, nil
}

// tenantLocked returns (creating if needed) a tenant. s.mu held.
func (s *Server) tenantLocked(name string) *tenant {
	t, ok := s.tenants[name]
	if !ok {
		t = &tenant{name: name, sched: sched.New()}
		s.tenants[name] = t
	}
	return t
}

// Submit admits one job for a tenant and returns its registry entry
// immediately; wait on rec.doneCh (or use SubmitWait) for the result.
// The compile (or cache lookup) happens synchronously so malformed
// programs fail fast with a build error; execution is scheduled.
func (s *Server) Submit(spec *job.Spec) (*jobRec, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	tenantName := spec.Tenant
	if tenantName == "" {
		tenantName = "default"
	}

	// Resolve the program first: content address when the source is
	// present, cache lookup when only program_id is given.
	var prog *ir.Program
	var hit bool
	var optPasses []string
	if spec.Source != "" {
		e, h, err := s.compileProgram(spec.Source, spec.Options)
		if err != nil {
			return nil, err
		}
		if err := s.admitProgram(tenantName, e); err != nil {
			return nil, err
		}
		prog, hit = e.Prog, h
		optPasses = e.OptPasses
		spec.ProgramID = e.ID
	} else {
		e, ok := s.cache.Get(spec.ProgramID)
		if !ok {
			return nil, fmt.Errorf("%w: program %s not cached and no source given",
				job.ErrInvalidJob, spec.ProgramID)
		}
		if err := s.admitProgram(tenantName, e); err != nil {
			return nil, err
		}
		prog, hit = e.Prog, true
		optPasses = e.OptPasses
		// The runtime stamps results from the source; restore it so a
		// program_id-only submission reports identically.
		spec.Source, spec.Options = e.Source, e.Options
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, sched.ErrClosed
	}
	t := s.tenantLocked(tenantName)
	if t.inFlight >= s.cfg.MaxQueued {
		s.mu.Unlock()
		s.metrics.Counter("malid.jobs.rejected_quota").Inc()
		return nil, fmt.Errorf("tenant %q has %d jobs queued: %w", tenantName, t.inFlight, ErrTenantQuota)
	}
	t.inFlight++
	s.seq++
	rec := &jobRec{
		ID:        fmt.Sprintf("j-%08x", s.seq),
		Tenant:    tenantName,
		Status:    "queued",
		cacheHit:  hit,
		optPasses: optPasses,
		doneCh:    make(chan struct{}),
	}
	s.jobs[rec.ID] = rec

	small := s.cfg.BatchItems > 0 && spec.WorkItems() <= s.cfg.BatchItems
	if small && t.batch != nil && t.batch.join(spec, prog, rec) {
		s.metrics.Counter("malid.jobs.batched").Inc()
		s.mu.Unlock()
		return rec, nil
	}

	if small {
		b := &batch{
			specs: []*job.Spec{spec},
			progs: []*ir.Program{prog},
			recs:  []*jobRec{rec},
		}
		t.batch = b
		s.enqueueLocked(t, "batch", func() { s.runBatch(t, b) }, func(err error) {
			b.mu.Lock()
			b.sealed = true
			recs := b.recs
			b.mu.Unlock()
			for _, r := range recs {
				s.finish(r, nil, err)
			}
		})
	} else {
		s.enqueueLocked(t, spec.Kernel, func() { s.runSingle(rec, spec, prog) }, func(err error) {
			s.finish(rec, nil, err)
		})
	}
	s.mu.Unlock()
	s.metrics.Counter("malid.jobs.submitted").Inc()
	return rec, nil
}

// enqueueLocked chains one command onto the tenant's in-order
// admission queue. s.mu held. abort resolves the job(s) when the
// command never ran (scheduler torn down mid-shutdown) so waiters are
// never stranded on doneCh.
func (s *Server) enqueueLocked(t *tenant, label string, body func(), abort func(error)) {
	ran := false
	cmd := t.sched.NewCommand(label, func() (sched.Outcome, error) {
		ran = true
		s.slots <- struct{}{} // global concurrency gate
		defer func() { <-s.slots }()
		body()
		return sched.Outcome{}, nil
	})
	cmd.OnComplete(func(e *sched.Event) {
		if e.Failed() && !ran {
			go abort(sched.ErrClosed)
		}
	})
	if t.prev != nil {
		cmd.QueuedAfter(t.prev)
	}
	if err := t.sched.Submit(cmd); err != nil {
		// Closed scheduler (shutdown race): resolve the job out of
		// band — never block while holding s.mu.
		go body()
		return
	}
	t.prev = cmd.Event()
}

// join appends a job to an unsealed batch. Returns false once the
// batch's command has started (the submitter then opens a new one).
func (b *batch) join(spec *job.Spec, prog *ir.Program, rec *jobRec) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.sealed {
		return false
	}
	b.specs = append(b.specs, spec)
	b.progs = append(b.progs, prog)
	b.recs = append(b.recs, rec)
	return true
}

// runBatch seals and executes one small-job batch on a single pooled
// context, splitting oversized accumulations into BatchMax chunks.
func (s *Server) runBatch(t *tenant, b *batch) {
	b.mu.Lock()
	b.sealed = true
	specs, progs, recs := b.specs, b.progs, b.recs
	b.mu.Unlock()
	s.mu.Lock()
	if t.batch == b {
		t.batch = nil
	}
	for _, rec := range recs {
		rec.Status = "running"
	}
	s.mu.Unlock()

	for len(specs) > 0 {
		n := len(specs)
		if n > s.cfg.BatchMax {
			n = s.cfg.BatchMax
		}
		results, errs := s.runtime.RunBatch(specs[:n], progs[:n])
		for i := 0; i < n; i++ {
			s.finish(recs[i], results[i], errs[i])
		}
		specs, progs, recs = specs[n:], progs[n:], recs[n:]
	}
}

// runSingle executes one large job.
func (s *Server) runSingle(rec *jobRec, spec *job.Spec, prog *ir.Program) {
	s.mu.Lock()
	rec.Status = "running"
	s.mu.Unlock()
	res, err := s.runtime.RunCompiled(spec, prog)
	s.finish(rec, res, err)
}

// finish resolves one job record and trims history.
func (s *Server) finish(rec *jobRec, res *job.Result, err error) {
	s.mu.Lock()
	t := s.tenants[rec.Tenant]
	if t != nil {
		t.inFlight--
	}
	if err != nil {
		rec.Status = "failed"
		rec.Error = err.Error()
		s.metrics.Counter("malid.jobs.failed").Inc()
	} else {
		rec.Status = "done"
		rec.Result = res
		s.metrics.Counter("malid.jobs.done").Inc()
	}
	s.done = append(s.done, rec.ID)
	for len(s.done) > s.cfg.History {
		delete(s.jobs, s.done[0])
		s.done = s.done[1:]
	}
	s.mu.Unlock()
	close(rec.doneCh)
}

// SubmitWait admits a job and blocks until it resolves.
func (s *Server) SubmitWait(spec *job.Spec) (*jobRec, error) {
	rec, err := s.Submit(spec)
	if err != nil {
		return nil, err
	}
	<-rec.doneCh
	return rec, nil
}

// Lookup returns a job record by id.
func (s *Server) Lookup(id string) (*jobRec, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%q: %w", id, ErrUnknownJob)
	}
	return rec, nil
}

// ---- HTTP layer ----

// Handler returns the versioned API mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/programs", s.handlePrograms)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /trace/{id}", s.handleTrace)
	return mux
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// errCode maps typed errors onto stable wire codes + HTTP statuses.
func errCode(err error) (int, string) {
	switch {
	case errors.Is(err, ErrAnalysisFailed):
		return http.StatusUnprocessableEntity, "analysis_failed"
	case errors.Is(err, ErrTenantQuota):
		return http.StatusTooManyRequests, "tenant_quota"
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound, "unknown_job"
	case errors.Is(err, job.ErrInvalidJob):
		return http.StatusBadRequest, "invalid_job"
	case errors.Is(err, sched.ErrClosed):
		return http.StatusServiceUnavailable, "shutting_down"
	default:
		// Build and argument errors are client mistakes.
		return http.StatusUnprocessableEntity, "job_error"
	}
}

func writeError(w http.ResponseWriter, err error) {
	status, code := errCode(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error(), Code: code})
}

// setOptimizeHeader reports the transform disposition: absent on a
// non-optimizing daemon, "none" when the pipeline refused every pass,
// else the comma-joined applied pass names. Riding a header keeps the
// result body free of daemon-configuration fields: an optimized run
// differs from the plain run only where the simulation says it must
// (timing, power), never in shape.
func setOptimizeHeader(w http.ResponseWriter, enabled bool, passes []string) {
	if !enabled {
		return
	}
	if len(passes) == 0 {
		w.Header().Set("X-Malid-Optimize", "none")
		return
	}
	w.Header().Set("X-Malid-Optimize", strings.Join(passes, ","))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// decodeJSON strictly decodes one JSON document.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: malformed request body: %v", job.ErrInvalidJob, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data after JSON body", job.ErrInvalidJob)
	}
	return nil
}

// programReq / programResp are the /v1/programs wire types.
type programReq struct {
	Source  string `json:"source"`
	Options string `json:"options,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
}

type programResp struct {
	ProgramID   string                `json:"program_id"`
	Cached      bool                  `json:"cached"`
	Kernels     []string              `json:"kernels"`
	Diagnostics []analysis.Diagnostic `json:"diagnostics,omitempty"`
}

// handlePrograms compiles (or looks up) a program and returns its
// content address plus the analyzer's structured diagnostics —
// clients then submit jobs by program_id alone. The response carries
// X-Malid-Analysis (the applied policy) and X-Malid-Severity (the
// highest finding severity); under the "error" policy a program with
// error-severity findings is rejected with code "analysis_failed".
func (s *Server) handlePrograms(w http.ResponseWriter, r *http.Request) {
	var req programReq
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Source == "" {
		writeError(w, fmt.Errorf("%w: source is required", job.ErrInvalidJob))
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	e, hit, err := s.compileProgram(req.Source, req.Options)
	if err != nil {
		writeError(w, err)
		return
	}
	policy := s.policyFor(tenant)
	w.Header().Set("X-Malid-Analysis", policy)
	setOptimizeHeader(w, s.cfg.Optimize, e.OptPasses)
	if policy != AnalysisOff {
		sev := "clean"
		if len(e.Diags) > 0 {
			sev = e.MaxSeverity().String()
		}
		w.Header().Set("X-Malid-Severity", sev)
	}
	if err := s.admitProgram(tenant, e); err != nil {
		writeError(w, err)
		return
	}
	kernels := e.Prog.KernelNames()
	sort.Strings(kernels)
	resp := programResp{ProgramID: e.ID, Cached: hit, Kernels: kernels}
	if policy != AnalysisOff {
		resp.Diagnostics = e.Diags
	}
	writeJSON(w, http.StatusOK, resp)
}

// submitResp is the async submission acknowledgement.
type submitResp struct {
	JobID  string `json:"job_id"`
	Status string `json:"status"`
}

// handleSubmit admits a job. By default it waits and returns the bare
// job.Result (byte-identical to an in-process run); with ?async=1 it
// returns 202 and the job id for polling. The cache disposition rides
// in the X-Malid-Cache header so the body stays bit-comparable.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec job.Spec
	if err := decodeJSON(r, &spec); err != nil {
		writeError(w, err)
		return
	}
	async := r.URL.Query().Get("async") == "1"
	rec, err := s.Submit(&spec)
	if err != nil {
		writeError(w, err)
		return
	}
	if rec.cacheHit {
		w.Header().Set("X-Malid-Cache", "hit")
	} else {
		w.Header().Set("X-Malid-Cache", "miss")
	}
	w.Header().Set("X-Malid-Job", rec.ID)
	setOptimizeHeader(w, s.cfg.Optimize, rec.optPasses)
	if async {
		s.mu.Lock()
		status := rec.Status
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, submitResp{JobID: rec.ID, Status: status})
		return
	}
	<-rec.doneCh
	if rec.Error != "" {
		writeError(w, errors.New(rec.Error))
		return
	}
	writeJSON(w, http.StatusOK, rec.Result)
}

// handleJob returns the full registry record of one job.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rec, err := s.Lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, rec)
}

// handleMetrics serves the registry in the text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.metrics.Snapshot().WriteText(w)
}

// handleTrace serves a finished job's command timeline as a Chrome
// trace (chrome://tracing, ui.perfetto.dev).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	rec, err := s.Lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	s.mu.Lock()
	res := rec.Result
	s.mu.Unlock()
	if res == nil {
		writeError(w, fmt.Errorf("job %s has no result (status %s): %w", rec.ID, rec.Status, ErrUnknownJob))
		return
	}
	spans := make([]obs.Span, 0, len(res.Events))
	track := strings.ToUpper(res.Device)
	for _, ev := range res.Events {
		spans = append(spans, obs.Span{
			Name:  ev.Name,
			Cat:   ev.Kind,
			Track: track,
			Start: ev.Started,
			Dur:   ev.Ended - ev.Started,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteChromeTrace(w, spans)
}
