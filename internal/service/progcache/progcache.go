// Package progcache is the content-addressed compiled-program cache
// of the malid service — the clGetProgramBinaries analogue. Programs
// are keyed by the sha256 of (source, build options); a hit skips the
// whole clc pipeline and shares one *ir.Program across every tenant
// (safe: the IR is immutable after compilation and each kernel
// memoizes its engine-compiled form behind an atomic). Entries are
// LRU-bounded and optionally persisted to disk as gob "binaries", so
// a restarted daemon warms up from its cache directory.
package progcache

import (
	"container/list"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"maligo/internal/cl"
	"maligo/internal/clc/analysis"
	"maligo/internal/clc/ir"
	"maligo/internal/clc/opt"
	"maligo/internal/job"
)

// Entry is one cached compiled program plus its static-analysis
// verdict. Diagnostics are computed once at compile time and ride the
// content address: a cache hit (memory or disk) serves them without
// re-running the analyzer.
type Entry struct {
	ID      string // job.ProgramID content address
	Source  string
	Options string
	Prog    *ir.Program

	// Analyzed marks entries produced by an analyzer-aware daemon;
	// persisted binaries without it predate the tier-2 engine and are
	// recompiled rather than trusted.
	Analyzed bool
	Diags    []analysis.Diagnostic

	// EngineTier records the newest execution tier the compiling
	// daemon knew about. The lane engine (tier 3) leans on IR
	// invariants older lowerings never promised (block boundaries,
	// pre-decoded execution units), so a persisted binary from an
	// older daemon — gob decodes its absent field as 0 — is recompiled
	// on load rather than trusted, exactly like pre-analyzer binaries.
	EngineTier int

	// Optimized marks entries holding transform-pipeline output; their
	// content address is OptimizedID, distinct from the plain compile
	// of the same (source, options), so both programs coexist in one
	// cache and on disk. OptPasses lists the passes that applied.
	Optimized bool
	OptPasses []string
}

// CurrentEngineTier is the engine generation stamped into new cache
// entries: 1 interpreter, 2 compiled closures, 3 lock-step lanes.
// Bump it whenever a new tier changes what the IR contract promises.
const CurrentEngineTier = 3

// MaxSeverity returns the highest diagnostic severity in the entry.
func (e *Entry) MaxSeverity() analysis.Severity { return analysis.MaxSeverity(e.Diags) }

// optMarker versions the optimized content address: it is appended to
// the options inside the hash only, never shown to the compiler, so
// an optimized program can never collide with a plain compile and a
// pipeline change (new pass, new codegen) retires stale binaries by
// changing the marker.
const optMarker = "\x00optimize=v1"

// OptimizedID is the content address of the transform-pipeline output
// for (source, options).
func OptimizedID(source, options string) string {
	return job.ProgramID(source, options+optMarker)
}

// entryID recomputes the content address an entry must carry.
func entryID(e *Entry) string {
	if e.Optimized {
		return OptimizedID(e.Source, e.Options)
	}
	return job.ProgramID(e.Source, e.Options)
}

// Cache is the LRU. The zero value is unusable; call New.
type Cache struct {
	mu      sync.Mutex
	max     int
	dir     string // "" disables persistence
	order   *list.List
	entries map[string]*list.Element

	hits, misses uint64
}

// New creates a cache bounded to max entries (default 128). dir, when
// non-empty, enables disk persistence: every compiled program is
// written there and evicted/missing entries are reloaded on demand.
func New(max int, dir string) (*Cache, error) {
	if max <= 0 {
		max = 128
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("progcache: %w", err)
		}
	}
	return &Cache{
		max:     max,
		dir:     dir,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}, nil
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns cumulative hit/miss counts. A disk reload counts as a
// hit (the compile was skipped — that is what the metric tracks).
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Get returns the entry for a content address, consulting memory and
// then disk. It does not compile and does not touch the hit/miss
// counters (it backs program_id-only job submissions).
func (c *Cache) Get(id string) (*Entry, bool) {
	c.mu.Lock()
	if el, ok := c.entries[id]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*Entry)
		c.mu.Unlock()
		return e, true
	}
	c.mu.Unlock()
	e, err := c.load(id)
	if err != nil {
		return nil, false
	}
	c.insert(e)
	return e, true
}

// GetOrCompile returns the compiled program for (source, options),
// compiling on a cold miss. hit reports whether the compile was
// skipped (memory or disk).
func (c *Cache) GetOrCompile(source, options string) (e *Entry, hit bool, err error) {
	id := job.ProgramID(source, options)
	if e, ok := c.Get(id); ok {
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return e, true, nil
	}
	art, err := job.Compile(source, options)
	if err != nil {
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		return nil, false, fmt.Errorf("%w: %v", cl.ErrBuildFailure, err)
	}
	e = &Entry{
		ID: id, Source: source, Options: options, Prog: art.Prog,
		Analyzed: true, Diags: analysis.Analyze(art),
		EngineTier: CurrentEngineTier,
	}
	c.insert(e)
	c.store(e)
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return e, false, nil
}

// GetOrCompileOptimized returns the transform-pipeline output for
// (source, options), compiling and optimizing on a cold miss. The
// plain compiled program is cached too, under its own content address:
// admission gates still judge the program the tenant wrote, and a
// later non-optimizing daemon hits the plain entry untouched. The
// entry's Diags are the plain program's — the transforms answer those
// diagnostics, they do not re-lint their own output.
func (c *Cache) GetOrCompileOptimized(source, options string) (e *Entry, hit bool, err error) {
	id := OptimizedID(source, options)
	if e, ok := c.Get(id); ok {
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return e, true, nil
	}
	base, _, err := c.GetOrCompile(source, options)
	if err != nil {
		return nil, false, err
	}
	prog, rep := opt.Optimize(base.Prog)
	e = &Entry{
		ID: id, Source: source, Options: options, Prog: prog,
		Analyzed: true, Diags: base.Diags,
		EngineTier: CurrentEngineTier,
		Optimized:  true, OptPasses: rep.AppliedPasses(),
	}
	c.insert(e)
	c.store(e)
	return e, false, nil
}

// insert adds an entry at the LRU front, evicting beyond the bound.
// Evicted entries stay on disk (when persistence is on) and reload
// transparently on the next Get.
func (c *Cache) insert(e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.ID]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[e.ID] = c.order.PushFront(e)
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*Entry).ID)
	}
}

// path maps a content address to its binary file.
func (c *Cache) path(id string) string {
	hex := strings.TrimPrefix(id, "sha256:")
	return filepath.Join(c.dir, hex+".clbin")
}

// store persists one entry (best effort — a read-only cache directory
// degrades to memory-only, it does not fail jobs). The write goes
// through a temp file + rename so a crashed daemon never leaves a
// half-written binary that load would then reject.
func (c *Cache) store(e *Entry) {
	if c.dir == "" {
		return
	}
	tmp, err := os.CreateTemp(c.dir, ".clbin-*")
	if err != nil {
		return
	}
	enc := gob.NewEncoder(tmp)
	if err := enc.Encode(e); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	_ = os.Rename(tmp.Name(), c.path(e.ID))
}

// load reads one persisted entry back and verifies its content
// address, so a corrupted or mismatched binary is recompiled instead
// of executed.
func (c *Cache) load(id string) (*Entry, error) {
	if c.dir == "" {
		return nil, os.ErrNotExist
	}
	f, err := os.Open(c.path(id))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var e Entry
	if err := gob.NewDecoder(f).Decode(&e); err != nil {
		return nil, fmt.Errorf("progcache: corrupt binary for %s: %w", id, err)
	}
	if e.ID != id || entryID(&e) != id || e.Prog == nil || !e.Analyzed {
		return nil, fmt.Errorf("progcache: binary for %s fails verification", id)
	}
	if e.EngineTier != CurrentEngineTier {
		return nil, fmt.Errorf("progcache: binary for %s is engine tier %d, need %d; recompiling", id, e.EngineTier, CurrentEngineTier)
	}
	return &e, nil
}
