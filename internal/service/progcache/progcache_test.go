package progcache

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"maligo/internal/clc/analysis"
	"maligo/internal/job"
)

func TestCompileHitAndLRU(t *testing.T) {
	c, err := New(2, "")
	if err != nil {
		t.Fatal(err)
	}
	specs := job.MixSpecs()
	e1, hit, err := c.GetOrCompile(specs[0].Source, specs[0].Options)
	if err != nil || hit {
		t.Fatalf("first compile: hit=%v err=%v", hit, err)
	}
	if _, hit, _ = c.GetOrCompile(specs[0].Source, specs[0].Options); !hit {
		t.Fatal("repeat compile not a hit")
	}
	if e1.ID != job.ProgramID(specs[0].Source, specs[0].Options) {
		t.Fatal("entry ID mismatch")
	}
	// Fill beyond the bound; entry 0 must be evicted (memory-only).
	if _, _, err := c.GetOrCompile(specs[1].Source, specs[1].Options); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetOrCompile(specs[2].Source, specs[2].Options); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Get(e1.ID); ok {
		t.Fatal("evicted entry still resident with no disk backing")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 3 {
		t.Fatalf("stats = %d/%d, want 1 hit / 3 misses", hits, misses)
	}
}

// TestDiskPersistenceBitIdentical proves the gob "binary" round-trip
// is execution-equivalent: a program reloaded from disk by a second
// cache yields byte-identical job results.
func TestDiskPersistenceBitIdentical(t *testing.T) {
	dir := t.TempDir()
	spec := job.MixSpecs()[1] // vecop

	c1, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	e1, hit, err := c1.GetOrCompile(spec.Source, spec.Options)
	if err != nil || hit {
		t.Fatalf("compile: hit=%v err=%v", hit, err)
	}

	// A fresh cache over the same directory must load without compiling.
	c2, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	e2, hit, err := c2.GetOrCompile(spec.Source, spec.Options)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("disk reload did not count as a hit")
	}

	rt := job.NewRuntime(job.Config{Workers: 2})
	defer rt.Close()
	r1, err := rt.RunCompiled(spec, e1.Prog)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := rt.RunCompiled(spec, e2.Prog)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(r1)
	j2, _ := json.Marshal(r2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("disk-reloaded program diverged:\n%s\n%s", j1, j2)
	}
}

func TestCorruptBinaryRejected(t *testing.T) {
	dir := t.TempDir()
	spec := job.MixSpecs()[0]
	c, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetOrCompile(spec.Source, spec.Options); err != nil {
		t.Fatal(err)
	}
	id := job.ProgramID(spec.Source, spec.Options)

	// Truncate the binary, then force a disk reload via a fresh cache.
	if err := writeFile(c.path(id), []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	c2, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(id); ok {
		t.Fatal("corrupt binary accepted")
	}
	// GetOrCompile must recover by recompiling.
	if _, hit, err := c2.GetOrCompile(spec.Source, spec.Options); err != nil || hit {
		t.Fatalf("recompile after corruption: hit=%v err=%v", hit, err)
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// TestDiagnosticsPersist proves the analyzer's findings ride the gob
// binary: a fresh cache over the same directory serves the identical
// diagnostics without re-running the analyzer, and a stale pre-tier-2
// binary (no analysis baked in) fails verification and recompiles.
func TestDiagnosticsPersist(t *testing.T) {
	const racy = `__kernel void racy(__global float *out, __local float *tile) {
    int lid = get_local_id(0);
    tile[lid] = (float)lid;
    out[get_global_id(0)] = tile[lid + 1];
}
`
	dir := t.TempDir()
	c1, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	e1, hit, err := c1.GetOrCompile(racy, "")
	if err != nil || hit {
		t.Fatalf("compile: hit=%v err=%v", hit, err)
	}
	if !e1.Analyzed || len(e1.Diags) == 0 {
		t.Fatalf("compile did not attach diagnostics: analyzed=%v n=%d", e1.Analyzed, len(e1.Diags))
	}
	if e1.MaxSeverity() != analysis.Error {
		t.Fatalf("MaxSeverity = %v, want Error", e1.MaxSeverity())
	}

	c2, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	e2, hit, err := c2.GetOrCompile(racy, "")
	if err != nil || !hit {
		t.Fatalf("disk reload: hit=%v err=%v", hit, err)
	}
	j1, _ := json.Marshal(e1.Diags)
	j2, _ := json.Marshal(e2.Diags)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("reloaded diagnostics diverged:\n%s\n%s", j1, j2)
	}

	// Simulate a pre-tier-2 binary: same entry, Analyzed stripped.
	id := job.ProgramID(racy, "")
	stale := *e1
	stale.Analyzed = false
	stale.Diags = nil
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&stale); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(c1.path(id), buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	c3, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c3.Get(id); ok {
		t.Fatal("unanalyzed binary accepted")
	}
	e3, hit, err := c3.GetOrCompile(racy, "")
	if err != nil || hit {
		t.Fatalf("recompile of stale binary: hit=%v err=%v", hit, err)
	}
	if !e3.Analyzed || len(e3.Diags) == 0 {
		t.Fatal("recompiled entry missing diagnostics")
	}
}

// TestEngineTierSkewRecompiles proves the engine-generation stamp
// gates disk reloads: a binary persisted by a pre-lanes daemon (its
// gob carries no EngineTier field, decoding as tier 0) fails
// verification and is recompiled, while a freshly stamped binary
// round-trips. This is how a cache directory survives engine upgrades
// without serving programs whose IR predates the current tier's
// contract.
func TestEngineTierSkewRecompiles(t *testing.T) {
	dir := t.TempDir()
	spec := job.MixSpecs()[0]
	c1, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	e1, hit, err := c1.GetOrCompile(spec.Source, spec.Options)
	if err != nil || hit {
		t.Fatalf("compile: hit=%v err=%v", hit, err)
	}
	if e1.EngineTier != CurrentEngineTier {
		t.Fatalf("fresh entry EngineTier = %d, want %d", e1.EngineTier, CurrentEngineTier)
	}

	// A second cache over the same directory serves the stamped binary.
	c2, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, hit, err := c2.GetOrCompile(spec.Source, spec.Options); err != nil || !hit {
		t.Fatalf("disk reload of current-tier binary: hit=%v err=%v", hit, err)
	}

	// Rewrite the binary as an older daemon would have produced it:
	// same program, earlier (or absent) engine tier.
	id := job.ProgramID(spec.Source, spec.Options)
	for _, tier := range []int{0, CurrentEngineTier - 1} {
		stale := *e1
		stale.EngineTier = tier
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&stale); err != nil {
			t.Fatal(err)
		}
		if err := writeFile(c1.path(id), buf.Bytes()); err != nil {
			t.Fatal(err)
		}
		c3, err := New(8, dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := c3.Get(id); ok {
			t.Fatalf("tier-%d binary accepted by tier-%d daemon", tier, CurrentEngineTier)
		}
		e3, hit, err := c3.GetOrCompile(spec.Source, spec.Options)
		if err != nil || hit {
			t.Fatalf("recompile of tier-%d binary: hit=%v err=%v", tier, hit, err)
		}
		if e3.EngineTier != CurrentEngineTier {
			t.Fatalf("recompiled entry EngineTier = %d, want %d", e3.EngineTier, CurrentEngineTier)
		}
	}
}

// loopSrc is transformable (unit-stride inner loop); the optimized
// entry's pass list must be non-empty.
const loopSrc = `__kernel void saxpy(__global float* restrict y,
                    __global const float* restrict x,
                    float a, int n) {
	int g = get_global_id(0);
	int base = g * n;
	for (int i = 0; i < n; i++) {
		y[base + i] = a * x[base + i] + y[base + i];
	}
}
`

// TestOptimizedEntryDistinctAddresses: one GetOrCompileOptimized call
// caches the plain compile and the transform output side by side under
// distinct content addresses, both persist to disk, and a flipped
// Optimized flag fails content-address verification on reload.
func TestOptimizedEntryDistinctAddresses(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	e, hit, err := c1.GetOrCompileOptimized(loopSrc, "")
	if err != nil || hit {
		t.Fatalf("optimized compile: hit=%v err=%v", hit, err)
	}
	optID, plainID := OptimizedID(loopSrc, ""), job.ProgramID(loopSrc, "")
	if optID == plainID {
		t.Fatal("optimized and plain content addresses collide")
	}
	if e.ID != optID || !e.Optimized || len(e.OptPasses) == 0 {
		t.Fatalf("optimized entry malformed: id=%q optimized=%v passes=%v", e.ID, e.Optimized, e.OptPasses)
	}
	plain, ok := c1.Get(plainID)
	if !ok {
		t.Fatal("plain compile not cached beside the optimized entry")
	}
	if plain.Optimized || len(plain.OptPasses) != 0 {
		t.Fatal("plain entry carries transform state")
	}
	// The optimized entry's diagnostics are the plain program's: the
	// admission gate judges the program as written.
	if len(e.Diags) != len(plain.Diags) {
		t.Fatalf("optimized entry diags (%d) diverge from plain (%d)", len(e.Diags), len(plain.Diags))
	}

	// Disk round trip: a fresh cache reloads both without compiling.
	c2, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	e2, hit, err := c2.GetOrCompileOptimized(loopSrc, "")
	if err != nil || !hit {
		t.Fatalf("reload: hit=%v err=%v", hit, err)
	}
	if e2.ID != optID || !e2.Optimized ||
		fmt.Sprint(e2.OptPasses) != fmt.Sprint(e.OptPasses) {
		t.Fatalf("reloaded optimized entry differs: %+v", e2)
	}

	// An entry whose Optimized flag disagrees with its address must
	// fail verification (entryID recomputation), not execute.
	var tampered Entry
	f, err := os.Open(c2.path(optID))
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewDecoder(f).Decode(&tampered); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tampered.Optimized = false
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&tampered); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(c2.path(optID), buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	c3, err := New(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c3.Get(optID); ok {
		t.Fatal("entry with mismatched Optimized flag accepted")
	}
	if _, hit, err := c3.GetOrCompileOptimized(loopSrc, ""); err != nil || hit {
		t.Fatalf("recompile after tamper: hit=%v err=%v", hit, err)
	}
}
