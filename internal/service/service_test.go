package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"maligo/internal/job"
)

// newTestServer stands up a server plus its httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	res, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return res
}

func readAll(t *testing.T, res *http.Response) []byte {
	t.Helper()
	defer res.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return buf.Bytes()
}

// vecopSpec returns the mix's vecop job (c = a + b, n = 1024).
func vecopSpec(t *testing.T) *job.Spec {
	t.Helper()
	for _, s := range job.MixSpecs() {
		if s.Kernel == "vecop_cl" {
			return s
		}
	}
	t.Fatal("vecop_cl not in mix")
	return nil
}

// TestProgramsEndpointGolden checks the /v1/programs round trip
// field by field: content address, cache disposition, kernel list.
func TestProgramsEndpointGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := vecopSpec(t)
	req, _ := json.Marshal(map[string]string{"source": spec.Source, "options": spec.Options})

	for round, wantCached := range []bool{false, true} {
		res := postJSON(t, ts.URL+"/v1/programs", string(req))
		body := readAll(t, res)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, res.StatusCode, body)
		}
		var got struct {
			ProgramID string   `json:"program_id"`
			Cached    bool     `json:"cached"`
			Kernels   []string `json:"kernels"`
		}
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("round %d: decode: %v", round, err)
		}
		if want := job.ProgramID(spec.Source, spec.Options); got.ProgramID != want {
			t.Fatalf("round %d: program_id %q, want %q", round, got.ProgramID, want)
		}
		if got.Cached != wantCached {
			t.Fatalf("round %d: cached %v, want %v", round, got.Cached, wantCached)
		}
		if !sort.StringsAreSorted(got.Kernels) {
			t.Fatalf("round %d: kernels %v not sorted", round, got.Kernels)
		}
		found := false
		for _, k := range got.Kernels {
			found = found || k == "vecop_cl"
		}
		if !found {
			t.Fatalf("round %d: kernels %v missing vecop_cl", round, got.Kernels)
		}
	}
}

// TestSubmitServesInProcessBytes is the core conformance property:
// the synchronous /v1/jobs body is byte-identical to running the same
// spec through an in-process job.Runtime, for every benchmark in the
// mix, and the cache disposition rides only in the header.
func TestSubmitServesInProcessBytes(t *testing.T) {
	rt := job.NewRuntime(job.Config{})
	defer rt.Close()
	_, ts := newTestServer(t, Config{})

	for _, spec := range job.MixSpecs() {
		res, err := rt.Run(spec)
		if err != nil {
			t.Fatalf("%s: in-process: %v", spec.Kernel, err)
		}
		want, _ := json.Marshal(res)
		want = append(want, '\n')

		body, _ := json.Marshal(spec)
		for round := 0; round < 2; round++ {
			hr := postJSON(t, ts.URL+"/v1/jobs", string(body))
			got := readAll(t, hr)
			if hr.StatusCode != http.StatusOK {
				t.Fatalf("%s round %d: status %d: %s", spec.Kernel, round, hr.StatusCode, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s round %d: served body differs from in-process result\nserved: %s\nlocal:  %s",
					spec.Kernel, round, got, want)
			}
			wantCache := "miss"
			if round > 0 {
				wantCache = "hit"
			}
			if c := hr.Header.Get("X-Malid-Cache"); c != wantCache {
				t.Fatalf("%s round %d: X-Malid-Cache %q, want %q", spec.Kernel, round, c, wantCache)
			}
		}
	}
}

// TestConcurrentTenantsBitIdentical fires every mix benchmark from
// several tenants at once, twice over, and requires every served body
// to match the in-process baseline byte for byte — admission order,
// batching and context pooling must never leak into results. It also
// checks the repeat pass hits the program cache >90% of the time.
func TestConcurrentTenantsBitIdentical(t *testing.T) {
	rt := job.NewRuntime(job.Config{})
	specs := job.MixSpecs()
	want := make(map[string][]byte, len(specs))
	for _, s := range specs {
		res, err := rt.Run(s)
		if err != nil {
			t.Fatalf("%s: baseline: %v", s.Kernel, err)
		}
		b, _ := json.Marshal(res)
		want[s.Kernel] = append(b, '\n')
	}
	rt.Close()

	srv, ts := newTestServer(t, Config{MaxQueued: 256, MaxConcurrent: 8})
	const tenants = 3
	const rounds = 2
	var wg sync.WaitGroup
	var warmHits, warmMisses uint64
	errs := make(chan error, tenants*rounds*len(specs))
	for round := 0; round < rounds; round++ {
		if round == 1 {
			warmHits, warmMisses = srv.cache.Stats()
		}
		for tn := 0; tn < tenants; tn++ {
			for _, s := range specs {
				spec := *s
				spec.Tenant = fmt.Sprintf("tenant-%d", tn)
				wg.Add(1)
				go func(round int, spec job.Spec) {
					defer wg.Done()
					body, _ := json.Marshal(&spec)
					res, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					defer res.Body.Close()
					var buf bytes.Buffer
					buf.ReadFrom(res.Body)
					if res.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("%s: status %d: %s", spec.Kernel, res.StatusCode, buf.Bytes())
						return
					}
					if !bytes.Equal(buf.Bytes(), want[spec.Kernel]) {
						errs <- fmt.Errorf("round %d %s tenant %s: served body differs from in-process baseline",
							round, spec.Kernel, spec.Tenant)
					}
				}(round, spec)
			}
		}
		wg.Wait() // barrier so round 2 measures pure repeat traffic
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Round 1 pays one compile per distinct program; the repeat round
	// must be essentially all hits.
	hits, misses := srv.cache.Stats()
	rh, rm := hits-warmHits, misses-warmMisses
	rate := float64(rh) / float64(rh+rm)
	if rate < 0.9 {
		t.Fatalf("repeat-round cache hit rate %.3f (hits=%d misses=%d), want > 0.9", rate, rh, rm)
	}
}

// TestBatchingBitIdentical runs the mix with batching forced on (tiny
// threshold conditions already satisfied — mix jobs are small) and
// with batching disabled, and requires identical bodies from both
// servers.
func TestBatchingBitIdentical(t *testing.T) {
	_, batched := newTestServer(t, Config{BatchItems: 1 << 20, BatchMax: 4})
	_, unbatched := newTestServer(t, Config{BatchItems: -1})
	for _, spec := range job.MixSpecs() {
		body, _ := json.Marshal(spec)
		a := readAll(t, postJSON(t, batched.URL+"/v1/jobs", string(body)))
		b := readAll(t, postJSON(t, unbatched.URL+"/v1/jobs", string(body)))
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: batched body differs from unbatched\nbatched:   %s\nunbatched: %s", spec.Kernel, a, b)
		}
	}
}

// TestAsyncLifecycle follows one job through ?async=1, polling, and
// the trace endpoint.
func TestAsyncLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := vecopSpec(t)
	body, _ := json.Marshal(spec)

	res := postJSON(t, ts.URL+"/v1/jobs?async=1", string(body))
	ack := readAll(t, res)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", res.StatusCode, ack)
	}
	var sub struct {
		JobID  string `json:"job_id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(ack, &sub); err != nil || sub.JobID == "" {
		t.Fatalf("async ack %s: %v", ack, err)
	}

	deadline := time.Now().Add(10 * time.Second)
	var rec struct {
		JobID  string      `json:"job_id"`
		Tenant string      `json:"tenant"`
		Status string      `json:"status"`
		Result *job.Result `json:"result"`
	}
	for {
		res, err := http.Get(ts.URL + "/v1/jobs/" + sub.JobID)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		b := readAll(t, res)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("poll: status %d: %s", res.StatusCode, b)
		}
		if err := json.Unmarshal(b, &rec); err != nil {
			t.Fatalf("poll decode: %v", err)
		}
		if rec.Status == "done" || rec.Status == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in status %q", rec.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rec.Status != "done" || rec.Result == nil {
		t.Fatalf("job finished %q, result %v", rec.Status, rec.Result)
	}
	if rec.Tenant != "default" {
		t.Fatalf("tenant %q, want default (empty tenant maps to default)", rec.Tenant)
	}

	tr, err := http.Get(ts.URL + "/trace/" + sub.JobID)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	tb := readAll(t, tr)
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d: %s", tr.StatusCode, tb)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(tb, &trace); err != nil {
		t.Fatalf("trace decode: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
}

// TestMalformedRequests is the error-envelope conformance table:
// every rejection carries the documented status and stable wire code.
func TestMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := vecopSpec(t)
	okBody, _ := json.Marshal(spec)

	bad := *spec
	bad.Kernel = "no_such_kernel"
	badKernel, _ := json.Marshal(&bad)

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   string
	}{
		{"not json", "POST", "/v1/jobs", "{nope", http.StatusBadRequest, "invalid_job"},
		{"unknown field", "POST", "/v1/jobs", `{"bogus": 1}`, http.StatusBadRequest, "invalid_job"},
		{"trailing data", "POST", "/v1/jobs", string(okBody) + "{}", http.StatusBadRequest, "invalid_job"},
		{"missing kernel", "POST", "/v1/jobs", `{"source": "__kernel void k(){}", "device": "gpu"}`, http.StatusBadRequest, "invalid_job"},
		{"bad device", "POST", "/v1/jobs", `{"source": "__kernel void k(){}", "kernel": "k", "device": "tpu", "global": [1]}`, http.StatusBadRequest, "invalid_job"},
		{"build failure", "POST", "/v1/jobs", `{"source": "__kernel void k(int x{}", "kernel": "k", "device": "gpu", "global": [1]}`, http.StatusUnprocessableEntity, "job_error"},
		{"unknown kernel", "POST", "/v1/jobs", string(badKernel), http.StatusUnprocessableEntity, "job_error"},
		{"uncached program_id", "POST", "/v1/jobs", `{"program_id": "sha256:0000", "kernel": "k", "device": "gpu", "global": [1]}`, http.StatusBadRequest, "invalid_job"},
		{"programs missing source", "POST", "/v1/programs", `{}`, http.StatusBadRequest, "invalid_job"},
		{"unknown job", "GET", "/v1/jobs/j-ffffffff", "", http.StatusNotFound, "unknown_job"},
		{"unknown trace", "GET", "/trace/j-ffffffff", "", http.StatusNotFound, "unknown_job"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var res *http.Response
			var err error
			if tc.method == "GET" {
				res, err = http.Get(ts.URL + tc.path)
			} else {
				res, err = http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			}
			if err != nil {
				t.Fatalf("%v", err)
			}
			body := readAll(t, res)
			if res.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", res.StatusCode, tc.status, body)
			}
			var env struct {
				Error string `json:"error"`
				Code  string `json:"code"`
			}
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("error envelope not JSON: %s", body)
			}
			if env.Code != tc.code {
				t.Fatalf("code %q, want %q (error %q)", env.Code, tc.code, env.Error)
			}
			if env.Error == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

// slowKernel takes long enough that queued jobs stay in flight while
// the quota test submits more.
const slowKernel = `
__kernel void slow(__global float* x, const uint iters) {
    size_t i = get_global_id(0);
    float v = x[i];
    for (uint it = 0u; it < iters; it++) {
        v = v * 1.0000001f + 0.5f;
    }
    x[i] = v;
}
`

// TestTenantQuota fills one tenant's admission queue with slow jobs
// and checks the next submission is rejected 429 while a different
// tenant still admits.
func TestTenantQuota(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxQueued: 2, MaxConcurrent: 1, BatchItems: -1})
	spec := &job.Spec{
		Tenant: "greedy",
		Source: slowKernel,
		Kernel: "slow",
		Device: job.DeviceGPU,
		Global: []int{4096},
		Args: []job.Arg{
			{Kind: job.ArgBuffer, Size: 4 * 4096},
			{Kind: job.ArgInt, Int: 2000},
		},
	}
	body, _ := json.Marshal(spec)

	for i := 0; i < 2; i++ {
		res := postJSON(t, ts.URL+"/v1/jobs?async=1", string(body))
		b := readAll(t, res)
		if res.StatusCode != http.StatusAccepted {
			t.Fatalf("fill %d: status %d: %s", i, res.StatusCode, b)
		}
	}
	res := postJSON(t, ts.URL+"/v1/jobs?async=1", string(body))
	b := readAll(t, res)
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over quota: status %d, want 429: %s", res.StatusCode, b)
	}
	var env struct {
		Code string `json:"code"`
	}
	if json.Unmarshal(b, &env); env.Code != "tenant_quota" {
		t.Fatalf("code %q, want tenant_quota", env.Code)
	}

	other := *spec
	other.Tenant = "patient"
	ob, _ := json.Marshal(&other)
	res = postJSON(t, ts.URL+"/v1/jobs?async=1", string(ob))
	b = readAll(t, res)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant: status %d, want 202: %s", res.StatusCode, b)
	}
}

// TestMetricsEndpoint checks the text exposition carries the service
// counters after traffic.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := vecopSpec(t)
	body, _ := json.Marshal(spec)
	readAll(t, postJSON(t, ts.URL+"/v1/jobs", string(body)))

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	text := string(readAll(t, res))
	for _, want := range []string{"malid.jobs.submitted", "malid.jobs.done", "malid.cache.entries"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestHistoryBound checks finished jobs age out of the registry and
// then 404.
func TestHistoryBound(t *testing.T) {
	s, err := New(Config{History: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	spec := vecopSpec(t)
	var ids []string
	for i := 0; i < 3; i++ {
		sp := *spec
		rec, err := s.SubmitWait(&sp)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if rec.Status != "done" {
			t.Fatalf("job %d: status %s (%s)", i, rec.Status, rec.Error)
		}
		ids = append(ids, rec.ID)
	}
	if _, err := s.Lookup(ids[0]); err == nil {
		t.Fatalf("oldest job %s still in registry, want aged out", ids[0])
	}
	for _, id := range ids[1:] {
		if _, err := s.Lookup(id); err != nil {
			t.Fatalf("job %s: %v, want retained", id, err)
		}
	}
}
