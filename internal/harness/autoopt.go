package harness

import (
	"fmt"
	"strings"

	"maligo/internal/bench"
	"maligo/internal/cl"
	"maligo/internal/clc"
	"maligo/internal/clc/opt"
	"maligo/internal/cpu"
	"maligo/internal/mali"
)

// This file measures how much of the paper's §V hand-optimization win
// the automatic IR-to-IR transform pipeline (internal/clc/opt)
// recovers: each benchmark's *naive* OpenCL version runs as written
// and again through the transform pipeline, next to the paper's
// hand-optimized version. The interesting number is Recovery — the
// fraction of the hand-opt speedup the transforms reproduce without
// touching the source.

// AutoOptBench is the three-way timing of one benchmark's GPU
// versions.
type AutoOptBench struct {
	Name         string
	Passes       []string // transform passes that applied to the naive version
	NaiveSeconds float64  // OpenCL version, as written
	AutoSeconds  float64  // OpenCL version, transform pipeline applied
	HandSeconds  float64  // OpenCL Opt version, hand-optimized source
}

// AutoSpeedup is the transform pipeline's win over the naive version.
func (b AutoOptBench) AutoSpeedup() float64 {
	if b.AutoSeconds == 0 {
		return 0
	}
	return b.NaiveSeconds / b.AutoSeconds
}

// HandSpeedup is the paper's hand-optimization win over the naive
// version.
func (b AutoOptBench) HandSpeedup() float64 {
	if b.HandSeconds == 0 {
		return 0
	}
	return b.NaiveSeconds / b.HandSeconds
}

// Recovery is the fraction of the hand-optimization speedup the
// automatic transforms recover (0 when the pipeline refused, 1 when
// it matches the hand-optimized kernel, >1 when it beats it).
func (b AutoOptBench) Recovery() float64 {
	hand := b.HandSpeedup() - 1
	if hand <= 0 {
		return 0
	}
	return (b.AutoSpeedup() - 1) / hand
}

// AutoOptResult is the full auto-optimization leg.
type AutoOptResult struct {
	Benches []AutoOptBench
}

// gpuVersionSeconds runs one benchmark version on the Mali model and
// returns its simulated queue time, optionally routing the program
// through the transform pipeline first.
func gpuVersionSeconds(name string, v bench.Version, scale float64, optimize bool) (float64, []string, error) {
	b := bench.ByName(name)
	if b == nil {
		return 0, nil, fmt.Errorf("unknown benchmark %q", name)
	}
	irProg, err := clc.Compile("program.cl", b.Source(), bench.F32.BuildOptions())
	if err != nil {
		return 0, nil, err
	}
	var rep *opt.Report
	if optimize {
		irProg, rep = opt.Optimize(irProg)
	}
	gpu := mali.New()
	ctx := cl.NewContextWith(cl.WithDevices(cpu.New(1), cpu.New(2), gpu))
	defer ctx.Close()
	prog := ctx.CreateProgramFromIR(irProg, b.Source())
	if err := b.Setup(ctx, bench.F32, scale); err != nil {
		return 0, nil, err
	}
	q := ctx.CreateCommandQueue(gpu)
	// Warm the L2, then measure the steady-state execution — the same
	// protocol as the figure harness.
	if _, err := b.Run(q, prog, v); err != nil {
		return 0, nil, err
	}
	q.ResetEvents()
	info, err := b.Run(q, prog, v)
	if err != nil {
		return 0, nil, err
	}
	if err := b.Verify(bench.F32); err != nil {
		return 0, nil, err
	}
	// A benchmark source carries every kernel variant; only credit
	// passes that rewrote a kernel this version actually launched.
	var passes []string
	if rep != nil {
		launched := map[string]bool{}
		for _, k := range info.Kernels {
			launched[k] = true
		}
		for _, name := range opt.PassNames() {
			for _, res := range rep.Results {
				if res.Applied && res.Pass == name && launched[res.Kernel] {
					passes = append(passes, name)
					break
				}
			}
		}
	}
	return q.TotalSeconds(), passes, nil
}

// RunAutoOptAblation measures the three-way naive/auto/hand timing for
// every benchmark supporting both GPU versions at F32.
func RunAutoOptAblation(scale float64) (AutoOptResult, error) {
	var res AutoOptResult
	for _, name := range bench.Names() {
		b := bench.ByName(name)
		if ok, _ := b.Supported(bench.F32, bench.OpenCL); !ok {
			continue
		}
		if ok, _ := b.Supported(bench.F32, bench.OpenCLOpt); !ok {
			continue
		}
		naive, _, err := gpuVersionSeconds(name, bench.OpenCL, scale, false)
		if err != nil {
			return res, fmt.Errorf("%s naive: %w", name, err)
		}
		auto, passes, err := gpuVersionSeconds(name, bench.OpenCL, scale, true)
		if err != nil {
			return res, fmt.Errorf("%s auto: %w", name, err)
		}
		hand, _, err := gpuVersionSeconds(name, bench.OpenCLOpt, scale, false)
		if err != nil {
			return res, fmt.Errorf("%s hand: %w", name, err)
		}
		res.Benches = append(res.Benches, AutoOptBench{
			Name: name, Passes: passes,
			NaiveSeconds: naive, AutoSeconds: auto, HandSeconds: hand,
		})
	}
	return res, nil
}

// Render formats the auto-optimization leg as a table.
func (r AutoOptResult) Render() string {
	var b strings.Builder
	b.WriteString("Auto-optimization: §V transforms applied by the compiler\n")
	b.WriteString("========================================================\n")
	b.WriteString("naive OpenCL version, as written vs. through the transform\n")
	b.WriteString("pipeline, against the paper's hand-optimized version\n\n")
	fmt.Fprintf(&b, "%-6s %10s %10s %10s %7s %7s %9s  %s\n",
		"bench", "naive ms", "auto ms", "hand ms", "auto x", "hand x", "recovered", "passes")
	for _, be := range r.Benches {
		passes := "(none)"
		if len(be.Passes) > 0 {
			passes = strings.Join(be.Passes, ",")
		}
		fmt.Fprintf(&b, "%-6s %10.3f %10.3f %10.3f %7.2f %7.2f %8.0f%%  %s\n",
			be.Name, be.NaiveSeconds*1000, be.AutoSeconds*1000, be.HandSeconds*1000,
			be.AutoSpeedup(), be.HandSpeedup(), be.Recovery()*100, passes)
	}
	return b.String()
}
