package harness

import (
	"fmt"

	"maligo/internal/cl"
	"maligo/internal/core"
)

// This file makes two of the paper's optimization arguments directly
// measurable as ablation experiments:
//
//   - §III-A "Memory allocation and mapping": explicit
//     clEnqueueWrite/ReadBuffer copies versus CL_MEM_ALLOC_HOST_PTR +
//     map/unmap on the unified-memory SoC. The paper's benchmarks all
//     use mapping; this experiment shows the copies they avoid.
//   - §III-B "Data Organization": Array-of-Structures versus
//     Structure-of-Arrays for a distance kernel. SoA lets every load
//     be a vector load of four like components, AoS cannot.

// HostMemResult compares the two host-memory strategies for one
// round-trip (upload, kernel, download).
type HostMemResult struct {
	Elements    int
	CopySeconds float64 // USE_HOST_PTR-style explicit copies
	MapSeconds  float64 // ALLOC_HOST_PTR + map/unmap
	CopyEnergyJ float64
	MapEnergyJ  float64
}

// Speedup returns how much faster the mapped path is.
func (r HostMemResult) Speedup() float64 {
	if r.MapSeconds == 0 {
		return 0
	}
	return r.CopySeconds / r.MapSeconds
}

const hostMemKernel = `
__kernel void triple(__global float* x, const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        x[i] = x[i] * 3.0f;
    }
}`

// RunHostMemAblation measures copy-vs-map for an n-element round trip.
func RunHostMemAblation(n int) (HostMemResult, error) {
	res := HostMemResult{Elements: n}
	p := core.NewPlatform()
	ctx := p.Context
	prog := ctx.CreateProgramWithSource(hostMemKernel)
	if err := prog.Build(""); err != nil {
		return res, err
	}
	k, err := prog.CreateKernel("triple")
	if err != nil {
		return res, err
	}
	buf, err := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, int64(n*4), nil)
	if err != nil {
		return res, err
	}
	if err := k.SetArgBuffer(0, buf); err != nil {
		return res, err
	}
	if err := k.SetArgInt(1, int64(n)); err != nil {
		return res, err
	}
	q := ctx.CreateCommandQueue(p.GPU)
	host := make([]byte, n*4)

	// Copy path: write, kernel, read — what a desktop-OpenCL port does.
	q.ResetEvents()
	if _, err := q.EnqueueWriteBuffer(buf, 0, host); err != nil {
		return res, err
	}
	if _, err := q.EnqueueNDRangeKernel(k, 1, []int{n}, []int{128}); err != nil {
		return res, err
	}
	if _, err := q.EnqueueReadBuffer(buf, 0, host); err != nil {
		return res, err
	}
	m, _ := p.Measure(q, core.GPURun)
	res.CopySeconds = q.TotalSeconds()
	res.CopyEnergyJ = m.EnergyJ

	// Map path: map, touch, unmap, kernel, map, unmap — zero copies.
	q.ResetEvents()
	if _, _, err := q.EnqueueMapBuffer(buf, 0, int64(n*4)); err != nil {
		return res, err
	}
	q.EnqueueUnmapMemObject(buf)
	if _, err := q.EnqueueNDRangeKernel(k, 1, []int{n}, []int{128}); err != nil {
		return res, err
	}
	if _, _, err := q.EnqueueMapBuffer(buf, 0, int64(n*4)); err != nil {
		return res, err
	}
	q.EnqueueUnmapMemObject(buf)
	m, _ = p.Measure(q, core.GPURun)
	res.MapSeconds = q.TotalSeconds()
	res.MapEnergyJ = m.EnergyJ
	return res, nil
}

// LayoutResult compares AoS and SoA data layouts for the same
// computation.
type LayoutResult struct {
	Points     int
	AoSSeconds float64
	SoASeconds float64
}

// Speedup returns SoA's advantage.
func (r LayoutResult) Speedup() float64 {
	if r.SoASeconds == 0 {
		return 0
	}
	return r.AoSSeconds / r.SoASeconds
}

const layoutKernels = `
// Distance-from-origin over 3D points.
// AoS: points packed as x,y,z records — vector loads cannot be used
// across points, each component is a scalar (strided) load.
__kernel void dist_aos(__global const float* pts, __global float* out, const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        float x = pts[3 * i];
        float y = pts[3 * i + 1];
        float z = pts[3 * i + 2];
        out[i] = sqrt(x * x + y * y + z * z);
    }
}

// SoA: separate x/y/z arrays — each work-item handles four points with
// three vector loads and one vector store.
__kernel void dist_soa(__global const float* restrict xs,
                       __global const float* restrict ys,
                       __global const float* restrict zs,
                       __global float* restrict out) {
    size_t i = get_global_id(0);
    float4 x = vload4(i, xs);
    float4 y = vload4(i, ys);
    float4 z = vload4(i, zs);
    vstore4(sqrt(x * x + y * y + z * z), i, out);
}`

// RunLayoutAblation measures the AoS-vs-SoA gap for n points.
func RunLayoutAblation(n int) (LayoutResult, error) {
	res := LayoutResult{Points: n}
	p := core.NewPlatform()
	ctx := p.Context
	prog := ctx.CreateProgramWithSource(layoutKernels)
	if err := prog.Build(""); err != nil {
		return res, err
	}
	aosBuf, err := ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, int64(3*n*4), nil)
	if err != nil {
		return res, err
	}
	var soa [3]*cl.Buffer
	for c := range soa {
		if soa[c], err = ctx.CreateBuffer(cl.MemReadOnly|cl.MemAllocHostPtr, int64(n*4), nil); err != nil {
			return res, err
		}
	}
	out, err := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, int64(n*4), nil)
	if err != nil {
		return res, err
	}
	q := ctx.CreateCommandQueue(p.GPU)

	ka, err := prog.CreateKernel("dist_aos")
	if err != nil {
		return res, err
	}
	if err := ka.SetArgBuffer(0, aosBuf); err != nil {
		return res, err
	}
	if err := ka.SetArgBuffer(1, out); err != nil {
		return res, err
	}
	if err := ka.SetArgInt(2, int64(n)); err != nil {
		return res, err
	}
	// Warm-up + measure.
	if _, err := q.EnqueueNDRangeKernel(ka, 1, []int{n}, []int{128}); err != nil {
		return res, err
	}
	q.ResetEvents()
	if _, err := q.EnqueueNDRangeKernel(ka, 1, []int{n}, []int{128}); err != nil {
		return res, err
	}
	res.AoSSeconds = q.TotalSeconds()

	ks, err := prog.CreateKernel("dist_soa")
	if err != nil {
		return res, err
	}
	for c := range soa {
		if err := ks.SetArgBuffer(c, soa[c]); err != nil {
			return res, err
		}
	}
	if err := ks.SetArgBuffer(3, out); err != nil {
		return res, err
	}
	if _, err := q.EnqueueNDRangeKernel(ks, 1, []int{n / 4}, []int{128}); err != nil {
		return res, err
	}
	q.ResetEvents()
	if _, err := q.EnqueueNDRangeKernel(ks, 1, []int{n / 4}, []int{128}); err != nil {
		return res, err
	}
	res.SoASeconds = q.TotalSeconds()
	return res, nil
}

// RenderAblations formats both ablation experiments.
func RenderAblations(hm HostMemResult, lo LayoutResult) string {
	return fmt.Sprintf(`Ablation: host memory strategy (paper §III-A)
=============================================
%d-element round trip (upload + kernel + download)
explicit copies (clEnqueueWrite/ReadBuffer)  %8.3f ms  %.5f J
map/unmap (CL_MEM_ALLOC_HOST_PTR)            %8.3f ms  %.5f J
mapping is %.1fx faster end to end

Ablation: data organization (paper §III-B)
==========================================
distance kernel over %d 3D points
AoS (x,y,z records, scalar loads)            %8.3f ms
SoA (component arrays, vload4)               %8.3f ms
SoA is %.1fx faster
`,
		hm.Elements, hm.CopySeconds*1000, hm.CopyEnergyJ,
		hm.MapSeconds*1000, hm.MapEnergyJ, hm.Speedup(),
		lo.Points, lo.AoSSeconds*1000, lo.SoASeconds*1000, lo.Speedup())
}
