package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"maligo/internal/bench"
	"maligo/internal/stats"
)

// Figure identifies one of the paper's evaluation figures.
type Figure string

// The paper's figures.
const (
	Fig2a Figure = "2a" // FP32 speedup over Serial
	Fig2b Figure = "2b" // FP64 speedup over Serial
	Fig3a Figure = "3a" // FP32 power normalized to Serial
	Fig3b Figure = "3b" // FP64 power normalized to Serial
	Fig4a Figure = "4a" // FP32 energy-to-solution normalized to Serial
	Fig4b Figure = "4b" // FP64 energy-to-solution normalized to Serial
)

// Figures lists all six in paper order.
func Figures() []Figure { return []Figure{Fig2a, Fig2b, Fig3a, Fig3b, Fig4a, Fig4b} }

// Table is one figure's data in tabular form: one row per benchmark,
// one column per version (Serial is the 1.0 baseline column).
type Table struct {
	Figure Figure
	Title  string
	Rows   []string // benchmark names
	Cols   []string // version names
	Values [][]float64
	RefMid [][]float64 // paper reference midpoints (NaN if unknown)
	Notes  []string
}

// precisionOf returns the precision a figure reports.
func (f Figure) precision() bench.Precision {
	if strings.HasSuffix(string(f), "b") {
		return bench.F64
	}
	return bench.F32
}

// metric returns the figure family: 2 speedup, 3 power, 4 energy.
func (f Figure) metric() byte { return f[0] }

// Title returns the paper's caption for the figure.
func (f Figure) Title() string {
	prec := "Single-precision"
	if f.precision() == bench.F64 {
		prec = "Double-precision"
	}
	switch f.metric() {
	case '2':
		return fmt.Sprintf("Figure 2(%c): %s speedup over the Serial version", f[1], prec)
	case '3':
		return fmt.Sprintf("Figure 3(%c): %s power consumption normalized to Serial", f[1], prec)
	default:
		return fmt.Sprintf("Figure 4(%c): %s energy-to-solution normalized to Serial", f[1], prec)
	}
}

// FigureTable builds the data behind one of the paper's figures.
func (r *Results) FigureTable(f Figure) *Table {
	prec := f.precision()
	t := &Table{
		Figure: f,
		Title:  f.Title(),
		Cols:   []string{"Serial", "OpenMP", "OpenCL", "OpenCL Opt"},
	}
	value := func(name string, v bench.Version) float64 {
		switch f.metric() {
		case '2':
			return r.Speedup(name, prec, v)
		case '3':
			return r.NormPower(name, prec, v)
		default:
			return r.NormEnergy(name, prec, v)
		}
	}
	for _, name := range bench.Names() {
		t.Rows = append(t.Rows, name)
		row := make([]float64, 4)
		ref := make([]float64, 4)
		for i, v := range bench.Versions() {
			if v == bench.Serial {
				if c := r.Cell(name, prec, v); c != nil && c.Supported {
					row[i] = 1
				} else {
					row[i] = math.NaN()
				}
				ref[i] = 1
				continue
			}
			row[i] = value(name, v)
			ref[i] = math.NaN()
			if f.metric() == '2' {
				if m, ok := RefSpeedup[prec][name]; ok {
					if rr, ok := m[v]; ok {
						ref[i] = rr.Mid()
					}
				}
			}
		}
		t.Values = append(t.Values, row)
		t.RefMid = append(t.RefMid, ref)
		if c := r.Cell(name, prec, bench.OpenCLOpt); c != nil && c.FellBack {
			t.Notes = append(t.Notes,
				fmt.Sprintf("%s: optimized kernel failed with CL_OUT_OF_RESOURCES; narrower fallback measured (paper artifact)", name))
		}
		if c := r.Cell(name, prec, bench.OpenCL); c != nil && !c.Supported {
			t.Notes = append(t.Notes, fmt.Sprintf("%s: n/a — %s", name, c.Reason))
		}
	}
	return t
}

// Render formats the table with an ASCII bar chart, mirroring the
// paper's figures.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	fmt.Fprintf(&b, "%-7s", "bench")
	for _, c := range t.Cols {
		fmt.Fprintf(&b, " %10s", c)
	}
	b.WriteString("\n")
	for i, name := range t.Rows {
		fmt.Fprintf(&b, "%-7s", name)
		for _, v := range t.Values[i] {
			if math.IsNaN(v) {
				fmt.Fprintf(&b, " %10s", "n/a")
			} else {
				fmt.Fprintf(&b, " %10.2f", v)
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("\n")
	b.WriteString(t.renderBars())
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// renderBars draws horizontal ASCII bars for the non-Serial versions.
func (t *Table) renderBars() string {
	var b strings.Builder
	maxVal := 1.0
	for _, row := range t.Values {
		for _, v := range row {
			if !math.IsNaN(v) && v > maxVal {
				maxVal = v
			}
		}
	}
	const width = 46
	scale := width / maxVal
	for i, name := range t.Rows {
		for j := 1; j < len(t.Cols); j++ {
			v := t.Values[i][j]
			label := fmt.Sprintf("%-7s %-10s", name, t.Cols[j])
			if math.IsNaN(v) {
				fmt.Fprintf(&b, "%s|n/a\n", label)
				continue
			}
			n := int(v * scale)
			if n < 1 {
				n = 1
			}
			fmt.Fprintf(&b, "%s|%s %.2f\n", label, strings.Repeat("#", n), v)
		}
		if i != len(t.Rows)-1 {
			b.WriteString(strings.Repeat(" ", 19) + "|\n")
		}
	}
	b.WriteString("\n")
	return b.String()
}

// Summary carries the §V-D headline averages of a run.
type Summary struct {
	OptSpeedupAll    float64 // avg Opt speedup across precisions (paper: 8.7x)
	OptEnergyFracAll float64 // avg Opt energy vs Serial (paper: 0.32)
	OptSpeedupF32    float64
	OptSpeedupF64    float64
	OptEnergyFracF32 float64 // paper: 0.28
	ClEnergyFracF32  float64 // paper: 0.56
	OptEnergyFracF64 float64 // paper: 0.36
	ClEnergyFracF64  float64 // paper: 0.56
	OMPPowerIncrease float64 // paper: 0.31
	CLPowerIncrease  float64 // paper: 0.07
	OMPSpeedupAvg    float64 // paper: 1.7
	OMPEnergyFracF32 float64 // paper: ~0.80
}

// Summarize computes the run's headline numbers.
func (r *Results) Summarize() Summary {
	collect := func(prec bench.Precision, v bench.Version, fn func(string, bench.Precision, bench.Version) float64) []float64 {
		var out []float64
		for _, name := range bench.Names() {
			if x := fn(name, prec, v); !math.IsNaN(x) {
				out = append(out, x)
			}
		}
		return out
	}
	var s Summary
	spF32 := collect(bench.F32, bench.OpenCLOpt, r.Speedup)
	spF64 := collect(bench.F64, bench.OpenCLOpt, r.Speedup)
	s.OptSpeedupF32 = stats.Mean(spF32)
	s.OptSpeedupF64 = stats.Mean(spF64)
	s.OptSpeedupAll = stats.Mean(append(append([]float64{}, spF32...), spF64...))

	enF32 := collect(bench.F32, bench.OpenCLOpt, r.NormEnergy)
	enF64 := collect(bench.F64, bench.OpenCLOpt, r.NormEnergy)
	s.OptEnergyFracF32 = stats.Mean(enF32)
	s.OptEnergyFracF64 = stats.Mean(enF64)
	s.OptEnergyFracAll = stats.Mean(append(append([]float64{}, enF32...), enF64...))
	s.ClEnergyFracF32 = stats.Mean(collect(bench.F32, bench.OpenCL, r.NormEnergy))
	s.ClEnergyFracF64 = stats.Mean(collect(bench.F64, bench.OpenCL, r.NormEnergy))

	s.OMPPowerIncrease = stats.Mean(collect(bench.F32, bench.OpenMP, r.NormPower)) - 1
	s.CLPowerIncrease = stats.Mean(collect(bench.F32, bench.OpenCL, r.NormPower)) - 1
	s.OMPSpeedupAvg = stats.Mean(collect(bench.F32, bench.OpenMP, r.Speedup))
	s.OMPEnergyFracF32 = stats.Mean(collect(bench.F32, bench.OpenMP, r.NormEnergy))
	return s
}

// Render formats the summary against the paper's claims.
func (s Summary) Render() string {
	var b strings.Builder
	b.WriteString("Summary (paper section V-D)\n===========================\n")
	row := func(what string, got, paper float64, pct bool) {
		if pct {
			fmt.Fprintf(&b, "%-52s measured %6.0f%%   paper %6.0f%%\n", what, got*100, paper*100)
		} else {
			fmt.Fprintf(&b, "%-52s measured %6.2fx   paper %6.2fx\n", what, got, paper)
		}
	}
	row("OpenCL Opt speedup over Serial (single+double avg)", s.OptSpeedupAll, RefSummary.OptSpeedup.Mid(), false)
	row("OpenCL Opt energy vs Serial (single+double avg)", s.OptEnergyFracAll, RefSummary.OptEnergyFrac.Mid(), true)
	row("OpenCL Opt energy vs Serial (single)", s.OptEnergyFracF32, RefSummary.OptEnergyFracF32.Mid(), true)
	row("OpenCL (non-opt) energy vs Serial (single)", s.ClEnergyFracF32, RefSummary.ClEnergyFracF32.Mid(), true)
	row("OpenCL Opt energy vs Serial (double)", s.OptEnergyFracF64, RefSummary.OptEnergyFracF64.Mid(), true)
	row("OpenCL (non-opt) energy vs Serial (double)", s.ClEnergyFracF64, RefSummary.ClEnergyFracF64.Mid(), true)
	row("OpenMP power increase over Serial", s.OMPPowerIncrease, RefSummary.OMPPowerIncrease.Mid(), true)
	row("OpenCL power increase over Serial", s.CLPowerIncrease, RefSummary.CLPowerIncrease.Mid(), true)
	row("OpenMP speedup over Serial (single avg)", s.OMPSpeedupAvg, 1.7, false)
	return b.String()
}

// RenderAll renders every figure plus the summary.
func (r *Results) RenderAll() string {
	var b strings.Builder
	for _, f := range Figures() {
		b.WriteString(r.FigureTable(f).Render())
		b.WriteString("\n")
	}
	b.WriteString(r.Summarize().Render())
	return b.String()
}

// CSV renders every figure's data as comma-separated rows with the
// header figure,bench,version,value — convenient for plotting the
// results with external tools.
func (r *Results) CSV() string {
	var b strings.Builder
	b.WriteString("figure,bench,version,value\n")
	for _, f := range Figures() {
		tab := r.FigureTable(f)
		for i, name := range tab.Rows {
			for j, col := range tab.Cols {
				v := tab.Values[i][j]
				if math.IsNaN(v) {
					fmt.Fprintf(&b, "%s,%s,%s,\n", f, name, col)
					continue
				}
				fmt.Fprintf(&b, "%s,%s,%s,%.4f\n", f, name, col, v)
			}
		}
	}
	return b.String()
}

// CellsSorted returns all cells ordered for deterministic reporting.
func (r *Results) CellsSorted() []*Cell {
	keys := make([]string, 0, len(r.Cells))
	for k := range r.Cells { // maligo:allow maporder sorted on the next line
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Cell, len(keys))
	for i, k := range keys {
		out[i] = r.Cells[k]
	}
	return out
}
