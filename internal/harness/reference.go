package harness

import (
	"math"

	"maligo/internal/bench"
)

// Reference values transcribed from the paper's §V text and Figure 2.
// Values the text states exactly are carried as-is; bars the text only
// bounds ("between 2x and 4x", "below 2x") are carried as ranges; NaN
// marks values the paper does not report (amcd double-precision
// OpenCL, which failed to compile).
//
// These drive EXPERIMENTS.md's paper-vs-measured tables and the
// shape-assertions in the test suite.

// RefRange is a closed interval of plausible values for one bar.
type RefRange struct {
	Lo, Hi float64
}

// Contains reports whether v lies in the range.
func (r RefRange) Contains(v float64) bool { return v >= r.Lo && v <= r.Hi }

// Mid returns the range midpoint.
func (r RefRange) Mid() float64 { return (r.Lo + r.Hi) / 2 }

func exact(v float64) RefRange    { return RefRange{v, v} }
func rng(lo, hi float64) RefRange { return RefRange{lo, hi} }

var nan = math.NaN()

func unknown() RefRange { return RefRange{nan, nan} }

// RefSpeedup holds Figure 2's speedups over Serial.
// Index: [precision][benchmark][version].
var RefSpeedup = map[bench.Precision]map[string]map[bench.Version]RefRange{
	bench.F32: {
		// §V-A: OpenMP ranges 1.2x-1.9x, average 1.7x. Per-benchmark
		// OpenMP bars are not individually quoted; the memory-bound
		// kernels sit at the low end.
		"spmv":  {bench.OpenMP: rng(1.4, 1.9), bench.OpenCL: rng(0.5, 1.0), bench.OpenCLOpt: exact(1.25)},
		"vecop": {bench.OpenMP: rng(1.2, 1.6), bench.OpenCL: rng(0.5, 1.0), bench.OpenCLOpt: rng(2, 4)},
		"hist":  {bench.OpenMP: rng(1.4, 1.9), bench.OpenCL: rng(0.3, 1.0), bench.OpenCLOpt: rng(2, 4)},
		"3dstc": {bench.OpenMP: rng(1.4, 1.9), bench.OpenCL: exact(1.4), bench.OpenCLOpt: rng(2, 4)},
		"red":   {bench.OpenMP: rng(1.4, 1.9), bench.OpenCL: exact(2.1), bench.OpenCLOpt: rng(2, 4)},
		"amcd":  {bench.OpenMP: rng(1.4, 2.0), bench.OpenCL: exact(4.1), bench.OpenCLOpt: exact(4.7)},
		"nbody": {bench.OpenMP: rng(1.4, 2.0), bench.OpenCL: exact(17.2), bench.OpenCLOpt: exact(20)},
		"2dcon": {bench.OpenMP: rng(1.4, 2.0), bench.OpenCL: exact(3.6), bench.OpenCLOpt: exact(24)},
		"dmmm":  {bench.OpenMP: rng(1.4, 2.0), bench.OpenCL: exact(6.2), bench.OpenCLOpt: exact(25.5)},
	},
	bench.F64: {
		"spmv":  {bench.OpenMP: rng(1.4, 2.0), bench.OpenCL: rng(0.5, 1.0), bench.OpenCLOpt: rng(1.0, 2.0)},
		"vecop": {bench.OpenMP: rng(1.2, 1.6), bench.OpenCL: exact(1.5), bench.OpenCLOpt: rng(1.0, 2.0)},
		"hist":  {bench.OpenMP: rng(1.4, 2.0), bench.OpenCL: rng(0.3, 1.0), bench.OpenCLOpt: exact(3.0)},
		"3dstc": {bench.OpenMP: rng(1.2, 1.9), bench.OpenCL: exact(1.6), bench.OpenCLOpt: exact(3.4)},
		"red":   {bench.OpenMP: rng(1.2, 1.9), bench.OpenCL: exact(1.7), bench.OpenCLOpt: rng(1.0, 2.0)},
		"amcd":  {bench.OpenMP: rng(1.4, 2.0), bench.OpenCL: unknown(), bench.OpenCLOpt: unknown()},
		"nbody": {bench.OpenMP: rng(1.4, 2.0), bench.OpenCL: exact(9.3), bench.OpenCLOpt: exact(10)},
		"2dcon": {bench.OpenMP: rng(1.4, 2.0), bench.OpenCL: exact(3.5), bench.OpenCLOpt: exact(9.6)},
		"dmmm":  {bench.OpenMP: rng(1.4, 2.0), bench.OpenCL: exact(8.9), bench.OpenCLOpt: exact(30)},
	},
}

// RefSummary holds the §V-D average claims.
var RefSummary = struct {
	// OptSpeedup is the combined single+double average speedup of
	// OpenCL Opt over Serial.
	OptSpeedup RefRange
	// OptEnergyFrac is the combined average OpenCL Opt
	// energy-to-solution as a fraction of Serial.
	OptEnergyFrac RefRange
	// OptEnergyFracF32 / ClEnergyFracF32 are §V-C's single-precision
	// averages (28% and 56%).
	OptEnergyFracF32 RefRange
	ClEnergyFracF32  RefRange
	// OptEnergyFracF64 / ClEnergyFracF64 are §V-C's double-precision
	// averages (36% and 56%).
	OptEnergyFracF64 RefRange
	ClEnergyFracF64  RefRange
	// OMPPowerIncrease is §V-B's average OpenMP power increase (31%).
	OMPPowerIncrease RefRange
	// CLPowerIncrease is §V-B's average OpenCL power increase (7%).
	CLPowerIncrease RefRange
	// OMPEnergyFrac is §V-C's OpenMP average energy reduction (~20%).
	OMPEnergyFrac RefRange
}{
	OptSpeedup:       exact(8.7),
	OptEnergyFrac:    exact(0.32),
	OptEnergyFracF32: exact(0.28),
	ClEnergyFracF32:  exact(0.56),
	OptEnergyFracF64: exact(0.36),
	ClEnergyFracF64:  exact(0.56),
	OMPPowerIncrease: exact(0.31),
	CLPowerIncrease:  exact(0.07),
	OMPEnergyFrac:    exact(0.80),
}

// ShapeChecks are the qualitative claims of §V that the reproduction
// asserts in its test suite; each maps to a predicate over Results.
// See harness tests for their evaluation.
type ShapeCheck struct {
	Name string
	Desc string
	OK   func(*Results) bool
}

// ShapeChecks returns the qualitative §V assertions evaluated against
// measured results.
func ShapeChecks() []ShapeCheck {
	sp := func(r *Results, n string, p bench.Precision, v bench.Version) float64 {
		return r.Speedup(n, p, v)
	}
	return []ShapeCheck{
		{
			Name: "naive-gpu-not-always-faster",
			Desc: "some OpenCL ports run slower than Serial (paper: spmv, vecop, hist in FP32)",
			OK: func(r *Results) bool {
				slow := 0
				for _, n := range []string{"spmv", "vecop", "hist", "3dstc"} {
					if v := sp(r, n, bench.F32, bench.OpenCL); !math.IsNaN(v) && v < 1.2 {
						slow++
					}
				}
				return slow >= 2
			},
		},
		{
			Name: "opt-always-helps",
			Desc: "OpenCL Opt is at least as fast as OpenCL for every benchmark",
			OK: func(r *Results) bool {
				for _, n := range bench.Names() {
					for _, p := range []bench.Precision{bench.F32, bench.F64} {
						cl, opt := sp(r, n, p, bench.OpenCL), sp(r, n, p, bench.OpenCLOpt)
						if math.IsNaN(cl) || math.IsNaN(opt) {
							continue
						}
						if opt < cl*0.95 {
							return false
						}
					}
				}
				return true
			},
		},
		{
			Name: "dmmm-2dcon-nbody-biggest",
			Desc: "the three compute-rich kernels see the largest Opt speedups (paper: 20x-25.5x)",
			OK: func(r *Results) bool {
				big := map[string]bool{"nbody": true, "2dcon": true, "dmmm": true}
				for _, n := range bench.Names() {
					v := sp(r, n, bench.F32, bench.OpenCLOpt)
					if math.IsNaN(v) {
						continue
					}
					if !big[n] && v > sp(r, "nbody", bench.F32, bench.OpenCLOpt) &&
						v > sp(r, "2dcon", bench.F32, bench.OpenCLOpt) &&
						v > sp(r, "dmmm", bench.F32, bench.OpenCLOpt) {
						return false
					}
				}
				return true
			},
		},
		{
			Name: "spmv-weakest-opt",
			Desc: "spmv is the weakest optimized benchmark (paper: 1.25x)",
			OK: func(r *Results) bool {
				s := sp(r, "spmv", bench.F32, bench.OpenCLOpt)
				for _, n := range bench.Names() {
					if n == "spmv" {
						continue
					}
					if v := sp(r, n, bench.F32, bench.OpenCLOpt); !math.IsNaN(v) && v < s {
						return false
					}
				}
				return true
			},
		},
		{
			Name: "amcd-fp64-unsupported",
			Desc: "amcd double-precision OpenCL configurations are n/a (compiler bug artifact)",
			OK: func(r *Results) bool {
				cl := r.Cell("amcd", bench.F64, bench.OpenCL)
				opt := r.Cell("amcd", bench.F64, bench.OpenCLOpt)
				return cl != nil && opt != nil && !cl.Supported && !opt.Supported
			},
		},
		{
			Name: "fp64-out-of-resources",
			Desc: "double-precision optimized nbody and 2dcon hit CL_OUT_OF_RESOURCES and fall back",
			OK: func(r *Results) bool {
				nb := r.Cell("nbody", bench.F64, bench.OpenCLOpt)
				cv := r.Cell("2dcon", bench.F64, bench.OpenCLOpt)
				return nb != nil && nb.FellBack && cv != nil && cv.FellBack
			},
		},
		{
			Name: "fp32-no-out-of-resources",
			Desc: "no single-precision kernel hits the register budget",
			OK: func(r *Results) bool {
				for _, n := range bench.Names() {
					if c := r.Cell(n, bench.F32, bench.OpenCLOpt); c != nil && c.FellBack {
						return false
					}
				}
				return true
			},
		},
		{
			Name: "omp-power-higher",
			Desc: "OpenMP draws distinctly more power than Serial (paper avg +31%)",
			OK: func(r *Results) bool {
				var sum float64
				n := 0
				for _, name := range bench.Names() {
					if v := r.NormPower(name, bench.F32, bench.OpenMP); !math.IsNaN(v) {
						sum += v
						n++
					}
				}
				return n > 0 && sum/float64(n) > 1.15 && sum/float64(n) < 1.5
			},
		},
		{
			Name: "gpu-power-similar",
			Desc: "OpenCL power is close to Serial (paper avg +7%, within ±25%)",
			OK: func(r *Results) bool {
				var sum float64
				n := 0
				for _, name := range bench.Names() {
					if v := r.NormPower(name, bench.F32, bench.OpenCL); !math.IsNaN(v) {
						if v < 0.75 || v > 1.45 {
							return false
						}
						sum += v
						n++
					}
				}
				return n > 0 && sum/float64(n) > 0.85 && sum/float64(n) < 1.25
			},
		},
		{
			Name: "opt-lowest-energy",
			Desc: "OpenCL Opt has the lowest energy-to-solution for nearly every benchmark",
			OK: func(r *Results) bool {
				bad := 0
				for _, name := range bench.Names() {
					opt := r.NormEnergy(name, bench.F32, bench.OpenCLOpt)
					if math.IsNaN(opt) {
						continue
					}
					for _, v := range []bench.Version{bench.OpenMP, bench.OpenCL} {
						if o := r.NormEnergy(name, bench.F32, v); !math.IsNaN(o) && o < opt*0.98 {
							bad++
						}
					}
				}
				return bad <= 2
			},
		},
	}
}
