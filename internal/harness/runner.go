// Package harness runs the paper's experimental methodology (§IV) on
// the simulated platform and regenerates every figure of the
// evaluation (§V): performance speedups (Figure 2), normalized power
// (Figure 3) and normalized energy-to-solution (Figure 4), in single
// and double precision, plus the §V-D summary averages.
package harness

import (
	"fmt"
	"math"
	"time"

	"maligo/internal/bench"
	"maligo/internal/cl"
	"maligo/internal/cpu"
	"maligo/internal/mali"
	"maligo/internal/obs"
	"maligo/internal/platform"
	"maligo/internal/power"
	"maligo/internal/vm"
)

// Config controls a harness run.
type Config struct {
	// Scale multiplies the paper-scale workload sizes (use <1 for
	// quick runs and tests).
	Scale float64
	// Precisions to run; default both.
	Precisions []bench.Precision
	// Benchmarks to run by name; default all nine.
	Benchmarks []string
	// Verify enables result verification after each version.
	Verify bool
	// MeterSeed seeds the power-meter noise stream.
	MeterSeed uint64
	// Workers is the host worker count of the parallel NDRange engine;
	// 0 selects runtime.NumCPU(), 1 forces the serial engine. The
	// simulated results are bit-identical at every setting — Workers
	// only changes how fast the simulation itself runs (HostSeconds).
	Workers int
	// ProfileLines enables hot-line attribution for the measured run
	// of every version: each cell gets the top source lines by bytes
	// moved. Costs detailed tracing time, so off by default.
	ProfileLines bool
	// Engine selects the VM execution engine (vm.EngineInterp for the
	// reference interpreter, vm.EngineCompiled for the closure-compiled
	// fast path). The default honours MALIGO_ENGINE and otherwise runs
	// the fast path; results are bit-identical either way.
	Engine vm.Engine
	// AsyncQueues routes every benchmark enqueue through the DAG
	// command scheduler instead of the synchronous queue path. Every
	// figure is bit-identical either way — the scheduler's timestamps
	// are a pure function of the dependency graph.
	AsyncQueues bool
	// SoC selects the board model every benchmark runs on; nil is the
	// default Exynos 5250 — the paper's platform, on which every
	// figure band is pinned by TestPaperShape.
	SoC *platform.SoC
}

// DefaultConfig is the paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		Scale:      1.0,
		Precisions: []bench.Precision{bench.F32, bench.F64},
		Benchmarks: bench.Names(),
		Verify:     true,
		MeterSeed:  20140519, // IPDPS 2014 opening day
	}
}

// soc returns the configured board model, defaulting to the Exynos
// 5250.
func (c Config) soc() *platform.SoC {
	if c.SoC != nil {
		return c.SoC
	}
	return platform.Default()
}

// Cell is one measured configuration.
type Cell struct {
	Bench     string
	Precision bench.Precision
	Version   bench.Version

	Supported bool
	Reason    string // why unsupported

	// Seconds is the simulated duration of the measured region.
	Seconds float64
	// HostSeconds is the host wall-clock the simulator itself spent on
	// the measured run — what the parallel engine shrinks.
	HostSeconds float64
	Power       power.Measurement
	FellBack    bool
	Kernels     []string
	Activity    power.Activity
	VerifyError error

	// Timeline is the measured region's command timeline (profiling
	// timestamps), ready for obs.WriteChromeTrace.
	Timeline []obs.Span
	// Metrics is the benchmark context's metrics snapshot taken right
	// after this cell's measured run (counters accumulate across the
	// versions of one benchmark).
	Metrics obs.Snapshot
	// HotLines is the top-10 hot-line profile of the measured run when
	// Config.ProfileLines is set (nil otherwise).
	HotLines []vm.LineStat
}

// Results holds every cell of a harness run.
type Results struct {
	Config Config
	Cells  map[string]*Cell
}

func cellKey(name string, prec bench.Precision, v bench.Version) string {
	return fmt.Sprintf("%s/%s/%s", name, prec, v)
}

// Cell returns the cell for a configuration (nil if absent).
func (r *Results) Cell(name string, prec bench.Precision, v bench.Version) *Cell {
	return r.Cells[cellKey(name, prec, v)]
}

// Speedup returns the speedup of version v over Serial for a
// benchmark, or NaN when either cell is missing/unsupported.
func (r *Results) Speedup(name string, prec bench.Precision, v bench.Version) float64 {
	base := r.Cell(name, prec, bench.Serial)
	c := r.Cell(name, prec, v)
	if base == nil || c == nil || !base.Supported || !c.Supported || c.Seconds == 0 {
		return math.NaN()
	}
	return base.Seconds / c.Seconds
}

// NormPower returns power of version v normalized to Serial.
func (r *Results) NormPower(name string, prec bench.Precision, v bench.Version) float64 {
	base := r.Cell(name, prec, bench.Serial)
	c := r.Cell(name, prec, v)
	if base == nil || c == nil || !base.Supported || !c.Supported || base.Power.MeanPowerW == 0 {
		return math.NaN()
	}
	return c.Power.MeanPowerW / base.Power.MeanPowerW
}

// NormEnergy returns energy-to-solution of version v normalized to
// Serial.
func (r *Results) NormEnergy(name string, prec bench.Precision, v bench.Version) float64 {
	base := r.Cell(name, prec, bench.Serial)
	c := r.Cell(name, prec, v)
	if base == nil || c == nil || !base.Supported || !c.Supported || base.Power.EnergyJ == 0 {
		return math.NaN()
	}
	return c.Power.EnergyJ / base.Power.EnergyJ
}

// Run executes the configured experiments.
func Run(cfg Config) (*Results, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	if len(cfg.Precisions) == 0 {
		cfg.Precisions = []bench.Precision{bench.F32, bench.F64}
	}
	if len(cfg.Benchmarks) == 0 {
		cfg.Benchmarks = bench.Names()
	}
	res := &Results{Config: cfg, Cells: make(map[string]*Cell)}
	meter := power.NewMeterFor(cfg.soc(), cfg.MeterSeed, 0)

	for _, name := range cfg.Benchmarks {
		for _, prec := range cfg.Precisions {
			if err := runBenchmark(cfg, res, meter, name, prec); err != nil {
				return nil, fmt.Errorf("%s (%s): %w", name, prec, err)
			}
		}
	}
	return res, nil
}

// runBenchmark measures all four versions of one benchmark at one
// precision. A fresh context and fresh devices are created per
// benchmark so cache state never leaks between benchmarks; within a
// benchmark, every version gets a warm-up execution before the
// measured one, matching the paper's methodology of timing only the
// steady-state parallel region.
func runBenchmark(cfg Config, res *Results, meter *power.Meter, name string, prec bench.Precision) error {
	b := bench.ByName(name)
	if b == nil {
		return fmt.Errorf("unknown benchmark %q", name)
	}
	soc := cfg.soc()
	cpu1 := cpu.NewOn(soc, 1)
	cpu2 := cpu.NewOn(soc, soc.CPU.Cores)
	gpu := mali.NewOn(soc)
	ctx := cl.NewContextWith(
		cl.WithDevices(cpu1, cpu2, gpu),
		cl.WithWorkers(cfg.Workers),
		cl.WithEngine(cfg.Engine),
		cl.WithAsyncQueues(cfg.AsyncQueues),
	)
	defer ctx.Close()

	prog := ctx.CreateProgramWithSource(b.Source())
	if err := prog.Build(prec.BuildOptions()); err != nil {
		return err
	}
	if err := b.Setup(ctx, prec, cfg.Scale); err != nil {
		return err
	}

	queues := map[bench.Version]*cl.CommandQueue{
		bench.Serial:    ctx.CreateCommandQueue(cpu1),
		bench.OpenMP:    ctx.CreateCommandQueue(cpu2),
		bench.OpenCL:    ctx.CreateCommandQueue(gpu),
		bench.OpenCLOpt: ctx.CreateCommandQueue(gpu),
	}

	for _, v := range bench.Versions() {
		cell := &Cell{Bench: name, Precision: prec, Version: v, Supported: true}
		res.Cells[cellKey(name, prec, v)] = cell

		if ok, reason := b.Supported(prec, v); !ok {
			cell.Supported = false
			cell.Reason = reason
			continue
		}
		q := queues[v]

		// Warm-up execution (caches, like the paper's repeated
		// iterations reaching steady state).
		if _, err := b.Run(q, prog, v); err != nil {
			return fmt.Errorf("%s warm-up: %w", v, err)
		}
		q.ResetEvents() // rewinds the queue clock: measured timeline starts at t=0
		if cfg.ProfileLines {
			q.SetLineProfile(true)
		}

		start := time.Now() // maligo:allow walltime Cell.HostSeconds is documented host wall-clock
		info, err := b.Run(q, prog, v)
		if err != nil {
			return fmt.Errorf("%s: %w", v, err)
		}
		cell.HostSeconds = time.Since(start).Seconds()
		cell.FellBack = info.FellBack
		cell.Kernels = info.Kernels

		act, err := ActivityFromEvents(q, v)
		if err != nil {
			return err
		}
		cell.Seconds = act.Seconds
		cell.Activity = act
		cell.Power = meter.Measure(act)
		cell.Timeline = q.Timeline()
		cell.Metrics = ctx.Metrics().Snapshot()
		if lp := q.LineProfile(); cfg.ProfileLines && lp != nil {
			cell.HotLines = lp.Top(10)
		}

		if cfg.Verify {
			if err := b.Verify(prec); err != nil {
				cell.VerifyError = err
				return fmt.Errorf("%s verification: %w", v, err)
			}
		}
	}
	return nil
}

// ActivityFromEvents folds a measured region's queue events into a
// power-model activity. The cross-device autotuner (internal/tune)
// reuses it so tuner candidates are priced by exactly the figure
// harness's accounting.
func ActivityFromEvents(q *cl.CommandQueue, v bench.Version) (power.Activity, error) {
	var act power.Activity
	for _, ev := range q.Events() {
		act.Seconds += ev.Seconds
		if ev.Report == nil {
			// Host-side copy/map commands burn one CPU core.
			act.CPUBusyCoreSeconds += ev.Seconds
			act.CPUUtil = maxf(act.CPUUtil, 0.4)
			continue
		}
		rep := ev.Report
		act.DRAMBytes += rep.DRAMBytes
		if v.IsGPU() {
			act.GPUBusyCoreSeconds += rep.BusyCoreSeconds
			act.GPUUtil = weightedUtil(act.GPUUtil, act.GPUBusyCoreSeconds-rep.BusyCoreSeconds,
				rep.Utilization, rep.BusyCoreSeconds)
			// The host core spins on clFinish for the duration.
			act.HostSpinSeconds += ev.Seconds
		} else {
			act.CPUBusyCoreSeconds += rep.BusyCoreSeconds
			act.CPUUtil = weightedUtil(act.CPUUtil, act.CPUBusyCoreSeconds-rep.BusyCoreSeconds,
				rep.Utilization, rep.BusyCoreSeconds)
		}
	}
	if act.Seconds <= 0 {
		return act, fmt.Errorf("harness: empty measured region")
	}
	return act, nil
}

func weightedUtil(prevUtil, prevWeight, util, weight float64) float64 {
	total := prevWeight + weight
	if total <= 0 {
		return util
	}
	return (prevUtil*prevWeight + util*weight) / total
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
