package harness

import (
	"strings"
	"testing"
)

func TestHostMemAblation(t *testing.T) {
	res, err := RunHostMemAblation(1 << 18)
	if err != nil {
		t.Fatal(err)
	}
	if res.CopySeconds <= 0 || res.MapSeconds <= 0 {
		t.Fatalf("non-positive times: %+v", res)
	}
	// §III-A: "to eliminate all the computationally expensive copies"
	// — mapping must win clearly on the unified-memory platform.
	if res.Speedup() < 1.3 {
		t.Errorf("mapping only %.2fx faster than copying; expected a clear win", res.Speedup())
	}
	if res.MapEnergyJ >= res.CopyEnergyJ {
		t.Errorf("mapping should also save energy: map %.5f J vs copy %.5f J",
			res.MapEnergyJ, res.CopyEnergyJ)
	}
}

func TestLayoutAblation(t *testing.T) {
	res, err := RunLayoutAblation(1 << 18)
	if err != nil {
		t.Fatal(err)
	}
	if res.AoSSeconds <= 0 || res.SoASeconds <= 0 {
		t.Fatalf("non-positive times: %+v", res)
	}
	// §III-B: SoA "would facilitate the application of vector
	// instructions increasing the code performance".
	if res.Speedup() < 1.5 {
		t.Errorf("SoA only %.2fx faster than AoS; expected a clear win", res.Speedup())
	}
}

func TestRenderAblations(t *testing.T) {
	hm, err := RunHostMemAblation(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := RunLayoutAblation(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderAblations(hm, lo)
	for _, want := range []string{"III-A", "III-B", "map/unmap", "SoA", "faster"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestAutoOptAblationDirection: the transform pipeline must apply to
// at least one naive benchmark kernel and must never make any of them
// slower — the §V speedup-recovery claim in its weakest safe form.
func TestAutoOptAblationDirection(t *testing.T) {
	res, err := RunAutoOptAblation(0.08)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Benches) == 0 {
		t.Fatal("no benchmark supports both GPU versions")
	}
	applied := 0
	for _, b := range res.Benches {
		if b.NaiveSeconds <= 0 || b.AutoSeconds <= 0 || b.HandSeconds <= 0 {
			t.Errorf("%s: non-positive timing %+v", b.Name, b)
		}
		if len(b.Passes) > 0 {
			applied++
			if b.AutoSeconds > b.NaiveSeconds {
				t.Errorf("%s: transformed kernel slower than naive (%.3g s vs %.3g s)",
					b.Name, b.AutoSeconds, b.NaiveSeconds)
			}
		} else if b.AutoSeconds != b.NaiveSeconds {
			t.Errorf("%s: pipeline refused but timing moved (%.3g s vs %.3g s)",
				b.Name, b.AutoSeconds, b.NaiveSeconds)
		}
	}
	if applied == 0 {
		t.Error("transform pipeline applied to no naive benchmark kernel")
	}
	out := res.Render()
	if !strings.Contains(out, "recovered") || !strings.Contains(out, res.Benches[0].Name) {
		t.Errorf("render is missing expected content:\n%s", out)
	}
}
