package harness

import (
	"strings"
	"testing"
)

func TestHostMemAblation(t *testing.T) {
	res, err := RunHostMemAblation(1 << 18)
	if err != nil {
		t.Fatal(err)
	}
	if res.CopySeconds <= 0 || res.MapSeconds <= 0 {
		t.Fatalf("non-positive times: %+v", res)
	}
	// §III-A: "to eliminate all the computationally expensive copies"
	// — mapping must win clearly on the unified-memory platform.
	if res.Speedup() < 1.3 {
		t.Errorf("mapping only %.2fx faster than copying; expected a clear win", res.Speedup())
	}
	if res.MapEnergyJ >= res.CopyEnergyJ {
		t.Errorf("mapping should also save energy: map %.5f J vs copy %.5f J",
			res.MapEnergyJ, res.CopyEnergyJ)
	}
}

func TestLayoutAblation(t *testing.T) {
	res, err := RunLayoutAblation(1 << 18)
	if err != nil {
		t.Fatal(err)
	}
	if res.AoSSeconds <= 0 || res.SoASeconds <= 0 {
		t.Fatalf("non-positive times: %+v", res)
	}
	// §III-B: SoA "would facilitate the application of vector
	// instructions increasing the code performance".
	if res.Speedup() < 1.5 {
		t.Errorf("SoA only %.2fx faster than AoS; expected a clear win", res.Speedup())
	}
}

func TestRenderAblations(t *testing.T) {
	hm, err := RunHostMemAblation(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := RunLayoutAblation(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderAblations(hm, lo)
	for _, want := range []string{"III-A", "III-B", "map/unmap", "SoA", "faster"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
