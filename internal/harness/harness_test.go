package harness

import (
	"math"
	"strings"
	"sync"
	"testing"

	"maligo/internal/bench"
)

// smallRun executes the full matrix at a reduced scale; used by the
// plumbing tests. The scale is large enough that the qualitative
// artifacts (fallbacks, n/a cells) still appear. The run is shared
// across tests — everything below only reads it.
var (
	smallOnce    sync.Once
	smallResults *Results
	smallErr     error
)

func smallRun(t *testing.T) *Results {
	t.Helper()
	smallOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Scale = 0.08
		smallResults, smallErr = Run(cfg)
	})
	if smallErr != nil {
		t.Fatalf("Run: %v", smallErr)
	}
	return smallResults
}

func TestRunProducesAllCells(t *testing.T) {
	res := smallRun(t)
	want := len(bench.Names()) * 2 * 4
	if len(res.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(res.Cells), want)
	}
	for _, c := range res.CellsSorted() {
		if !c.Supported {
			continue
		}
		if c.Seconds <= 0 {
			t.Errorf("%s/%s/%s: non-positive time", c.Bench, c.Precision, c.Version)
		}
		if c.Power.MeanPowerW < 2 || c.Power.MeanPowerW > 8 {
			t.Errorf("%s/%s/%s: implausible board power %.2f W", c.Bench, c.Precision, c.Version, c.Power.MeanPowerW)
		}
		if c.Power.EnergyJ <= 0 {
			t.Errorf("%s/%s/%s: non-positive energy", c.Bench, c.Precision, c.Version)
		}
		if c.VerifyError != nil {
			t.Errorf("%s/%s/%s: verification failed: %v", c.Bench, c.Precision, c.Version, c.VerifyError)
		}
	}
}

func TestUnsupportedCells(t *testing.T) {
	res := smallRun(t)
	for _, v := range []bench.Version{bench.OpenCL, bench.OpenCLOpt} {
		c := res.Cell("amcd", bench.F64, v)
		if c == nil || c.Supported {
			t.Errorf("amcd/double/%s must be n/a", v)
		}
		if c != nil && !strings.Contains(c.Reason, "compiler") {
			t.Errorf("reason = %q", c.Reason)
		}
	}
	if v := res.Speedup("amcd", bench.F64, bench.OpenCL); !math.IsNaN(v) {
		t.Errorf("speedup of unsupported cell = %v, want NaN", v)
	}
}

func TestFallbackArtifactAppears(t *testing.T) {
	res := smallRun(t)
	for _, name := range []string{"nbody", "2dcon"} {
		c := res.Cell(name, bench.F64, bench.OpenCLOpt)
		if c == nil || !c.FellBack {
			t.Errorf("%s/double/Opt must record the CL_OUT_OF_RESOURCES fallback", name)
		}
	}
	for _, name := range bench.Names() {
		if c := res.Cell(name, bench.F32, bench.OpenCLOpt); c != nil && c.FellBack {
			t.Errorf("%s/single/Opt unexpectedly fell back", name)
		}
	}
}

func TestFigureTablesComplete(t *testing.T) {
	res := smallRun(t)
	for _, f := range Figures() {
		tab := res.FigureTable(f)
		if len(tab.Rows) != len(bench.Names()) {
			t.Errorf("figure %s rows = %d", f, len(tab.Rows))
		}
		if len(tab.Cols) != 4 {
			t.Errorf("figure %s cols = %d", f, len(tab.Cols))
		}
		out := tab.Render()
		for _, name := range bench.Names() {
			if !strings.Contains(out, name) {
				t.Errorf("figure %s render missing %s", f, name)
			}
		}
		if !strings.Contains(out, "Figure") {
			t.Errorf("figure %s render missing title", f)
		}
	}
	// amcd FP64 must render as n/a in figure 2b.
	out := res.FigureTable(Fig2b).Render()
	if !strings.Contains(out, "n/a") {
		t.Error("figure 2b should contain n/a entries for amcd")
	}
}

func TestSummaryFieldsPopulated(t *testing.T) {
	res := smallRun(t)
	s := res.Summarize()
	for name, v := range map[string]float64{
		"OptSpeedupAll":    s.OptSpeedupAll,
		"OptEnergyFracAll": s.OptEnergyFracAll,
		"OptEnergyFracF32": s.OptEnergyFracF32,
		"ClEnergyFracF32":  s.ClEnergyFracF32,
		"OMPSpeedupAvg":    s.OMPSpeedupAvg,
	} {
		if math.IsNaN(v) || v <= 0 {
			t.Errorf("summary %s = %v", name, v)
		}
	}
	if !strings.Contains(s.Render(), "paper") {
		t.Error("summary render must compare against the paper")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.08
	cfg.Benchmarks = []string{"vecop"}
	cfg.Precisions = []bench.Precision{bench.F32}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bench.Versions() {
		c1 := r1.Cell("vecop", bench.F32, v)
		c2 := r2.Cell("vecop", bench.F32, v)
		if c1.Seconds != c2.Seconds || c1.Power.MeanPowerW != c2.Power.MeanPowerW {
			t.Fatalf("%s: non-deterministic results: %v/%v vs %v/%v",
				v, c1.Seconds, c1.Power.MeanPowerW, c2.Seconds, c2.Power.MeanPowerW)
		}
	}
}

func TestRefRanges(t *testing.T) {
	r := RefRange{1, 3}
	if !r.Contains(2) || r.Contains(0.5) || r.Contains(3.5) {
		t.Error("RefRange.Contains broken")
	}
	if r.Mid() != 2 {
		t.Error("RefRange.Mid broken")
	}
	// Every benchmark has reference speedups for both precisions.
	for _, prec := range []bench.Precision{bench.F32, bench.F64} {
		for _, name := range bench.Names() {
			m, ok := RefSpeedup[prec][name]
			if !ok {
				t.Errorf("no reference speedups for %s/%s", name, prec)
				continue
			}
			for _, v := range []bench.Version{bench.OpenMP, bench.OpenCL, bench.OpenCLOpt} {
				if _, ok := m[v]; !ok {
					t.Errorf("no reference for %s/%s/%s", name, prec, v)
				}
			}
		}
	}
}

// TestPaperShape runs the full-scale experiment matrix and asserts the
// paper's qualitative claims. This is the repository's headline
// regression test; it takes a couple of minutes and is skipped under
// -short.
func TestPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale simulation skipped in -short mode")
	}
	res, err := Run(DefaultConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, chk := range ShapeChecks() {
		chk := chk
		t.Run(chk.Name, func(t *testing.T) {
			if !chk.OK(res) {
				t.Errorf("shape check failed: %s", chk.Desc)
			}
		})
	}

	// Headline numbers within a factor-of-shape tolerance of §V-D.
	s := res.Summarize()
	if s.OptSpeedupAll < 5 || s.OptSpeedupAll > 14 {
		t.Errorf("average Opt speedup %.2fx too far from the paper's 8.7x", s.OptSpeedupAll)
	}
	if s.OptEnergyFracAll < 0.15 || s.OptEnergyFracAll > 0.55 {
		t.Errorf("average Opt energy fraction %.2f too far from the paper's 0.32", s.OptEnergyFracAll)
	}
	if s.OMPSpeedupAvg < 1.3 || s.OMPSpeedupAvg > 2.05 {
		t.Errorf("average OpenMP speedup %.2f too far from the paper's 1.7", s.OMPSpeedupAvg)
	}
	if s.OMPPowerIncrease < 0.15 || s.OMPPowerIncrease > 0.5 {
		t.Errorf("OpenMP power increase %.2f too far from the paper's 0.31", s.OMPPowerIncrease)
	}
}

func TestCSVOutput(t *testing.T) {
	res := smallRun(t)
	csv := res.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	// Header + 6 figures x 9 benchmarks x 4 versions.
	want := 1 + 6*9*4
	if len(lines) != want {
		t.Fatalf("CSV lines = %d, want %d", len(lines), want)
	}
	if lines[0] != "figure,bench,version,value" {
		t.Errorf("CSV header = %q", lines[0])
	}
	for _, ln := range lines[1:] {
		if strings.Count(ln, ",") != 3 {
			t.Fatalf("malformed CSV row %q", ln)
		}
	}
}
