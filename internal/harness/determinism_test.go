package harness

import (
	"testing"

	"maligo/internal/bench"
)

// TestParallelEngineDeterminism runs the same configurations on the
// serial engine (Workers=1) and a sharded engine (Workers=4) and
// demands bit-identical simulated results: time, the full power
// measurement and all activity counters. Only HostSeconds may differ.
// The subset covers the three interesting execution shapes: 2dcon
// (local tiling + barriers), nbody (arithmetic-bound) and hist
// (cross-group global atomics).
func TestParallelEngineDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation matrix too slow for -short")
	}
	run := func(workers int) *Results {
		cfg := DefaultConfig()
		cfg.Scale = 0.25
		cfg.Benchmarks = []string{"2dcon", "nbody", "hist"}
		cfg.Precisions = []bench.Precision{bench.F32}
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		return res
	}
	serial := run(1)
	sharded := run(4)

	if len(serial.Cells) != len(sharded.Cells) {
		t.Fatalf("cell count differs: %d vs %d", len(serial.Cells), len(sharded.Cells))
	}
	for key, sc := range serial.Cells {
		pc, ok := sharded.Cells[key]
		if !ok {
			t.Errorf("%s: missing in sharded run", key)
			continue
		}
		if sc.Supported != pc.Supported || sc.FellBack != pc.FellBack {
			t.Errorf("%s: support/fallback flags differ", key)
			continue
		}
		if !sc.Supported {
			continue
		}
		if sc.Seconds != pc.Seconds {
			t.Errorf("%s: simulated seconds differ: %.17g vs %.17g", key, sc.Seconds, pc.Seconds)
		}
		if sc.Power != pc.Power {
			t.Errorf("%s: power measurement differs:\n serial:  %+v\n sharded: %+v", key, sc.Power, pc.Power)
		}
		if sc.Activity != pc.Activity {
			t.Errorf("%s: activity differs:\n serial:  %+v\n sharded: %+v", key, sc.Activity, pc.Activity)
		}
		if sc.VerifyError != nil || pc.VerifyError != nil {
			t.Errorf("%s: verification failed: serial=%v sharded=%v", key, sc.VerifyError, pc.VerifyError)
		}
	}
}
