package vm_test

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"maligo/internal/clc/ir"
	"maligo/internal/clc/types"
	"maligo/internal/vm"
)

// streamObserver records the full ordered observer callback stream —
// every OnContext and OnAccess/OnAtomic with all arguments — so tests
// can require the lane engine's replayed stream to be event-for-event
// identical to the serial engines'. This is the sharpest pin on the
// masked-lane side-effect bug class: an inactive lane that writes
// memory, emits a trace record, or faults differently shows up here as
// a stream diff even when the final memory image happens to agree.
type streamObserver struct {
	events []streamEvent
}

type streamEvent struct {
	kind              string // "ctx", "access", "atomic"
	item, phase, line int
	space             int
	addr              int64
	size              int
	write             bool
}

func (o *streamObserver) OnAccess(space int, addr int64, size int, write bool) {
	o.events = append(o.events, streamEvent{kind: "access", space: space, addr: addr, size: size, write: write})
}

func (o *streamObserver) OnAtomic(space int, addr int64, size int) {
	o.events = append(o.events, streamEvent{kind: "atomic", space: space, addr: addr, size: size})
}

func (o *streamObserver) OnContext(item, phase, line int) {
	o.events = append(o.events, streamEvent{kind: "ctx", item: item, phase: phase, line: line})
}

func (o *streamObserver) ContextActive() bool { return true }

// runLanesVsInterp executes the same work-group under the interpreter
// and the lane engine with full stream observation and requires every
// observable to match: memory, profile, error, and the ordered
// callback stream.
func runLanesVsInterp(t *testing.T, src, kernel string, local int, args func(*flatMem) []vm.ArgValue, stepLimit uint64) {
	t.Helper()
	prog := mustCompile(t, src, "")
	run := func(eng vm.Engine) ([]byte, vm.Profile, []streamEvent, error) {
		mem := newFlatMem(4096, nil)
		obs := &streamObserver{}
		cfg := &vm.GroupConfig{
			Kernel:     prog.Kernel(kernel),
			WorkDim:    1,
			LocalSize:  [3]int{local, 1, 1},
			GlobalSize: [3]int{local, 1, 1},
			Args:       args(mem),
			Mem:        mem,
			Observer:   obs,
			StepLimit:  stepLimit,
			Engine:     eng,
		}
		var prof vm.Profile
		err := vm.RunGroup(cfg, &prof)
		return mem.global, prof, obs.events, err
	}
	refMem, refProf, refEvents, refErr := run(vm.EngineInterp)
	gotMem, gotProf, gotEvents, gotErr := run(vm.EngineLanes)

	if (refErr == nil) != (gotErr == nil) || (refErr != nil && refErr.Error() != gotErr.Error()) {
		t.Fatalf("errors differ:\n interp: %v\n lanes:  %v", refErr, gotErr)
	}
	if len(refEvents) != len(gotEvents) {
		t.Fatalf("observer stream length differs: interp %d, lanes %d", len(refEvents), len(gotEvents))
	}
	for i := range refEvents {
		if refEvents[i] != gotEvents[i] {
			t.Fatalf("observer stream diverges at event %d:\n interp: %+v\n lanes:  %+v", i, refEvents[i], gotEvents[i])
		}
	}
	if refErr != nil {
		return // callers discard memory and profile on failure
	}
	if !bytes.Equal(refMem, gotMem) {
		t.Fatalf("memory differs:\n interp: %v\n lanes:  %v", refMem, gotMem)
	}
	if !reflect.DeepEqual(refProf, gotProf) {
		t.Fatalf("profiles differ:\n interp: %+v\n lanes:  %+v", refProf, gotProf)
	}
}

// TestLanesMaskedLaneSideEffects pins the SIMT predication bug class
// on divergent kernels: lanes disabled by a branch must not write
// memory, bump counters or emit trace records. Each kernel makes only
// a data-dependent subset of lanes perform stores; the lane engine's
// replayed stream must be event-for-event the interpreter's.
func TestLanesMaskedLaneSideEffects(t *testing.T) {
	const src = `
__kernel void masked(__global int* out) {
	int gid = get_global_id(0);
	if (gid & 1) {
		out[gid] = gid * 3;
	}
	if (gid == 5) {
		out[0] = -1;
	}
}

__kernel void masked_loop(__global int* out) {
	int gid = get_global_id(0);
	int s = 0;
	for (int i = 0; i < gid; i++) {
		s += i;
		if (i == 2) { out[gid] = s; }
	}
	out[32 + gid] = s;
}
`
	args := func(m *flatMem) []vm.ArgValue {
		return []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}}
	}
	for _, k := range []string{"masked", "masked_loop"} {
		k := k
		t.Run(k, func(t *testing.T) {
			runLanesVsInterp(t, src, k, 16, args, 0)
		})
	}
}

// TestLanesObserverCorpusIdentical replays the race-detector and
// line-profiler corpus kernels (racy local-memory shift, its
// barrier-fixed variant) under the lane engine, requiring the ordered
// observer stream to match the interpreter exactly. The racy kernel is
// the golden for stream-derived observables: races and hot lines are
// computed from this stream, so stream identity pins them.
func TestLanesObserverCorpusIdentical(t *testing.T) {
	const local = 8
	args := func(m *flatMem) []vm.ArgValue {
		return []vm.ArgValue{
			{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
			{LocalSize: (local + 1) * 4},
		}
	}
	for _, k := range []string{"shift", "shift_fixed"} {
		k := k
		t.Run(k, func(t *testing.T) {
			prog := mustCompile(t, raceLocalSrc, "")
			run := func(eng vm.Engine) ([]streamEvent, []byte) {
				mem := newFlatMem(4096, nil)
				obs := &streamObserver{}
				cfg := &vm.GroupConfig{
					Kernel:     prog.Kernel(k),
					WorkDim:    1,
					LocalSize:  [3]int{local, 1, 1},
					GlobalSize: [3]int{local, 1, 1},
					Args:       args(mem),
					Mem:        mem,
					Observer:   obs,
					Engine:     eng,
				}
				var prof vm.Profile
				if err := vm.RunGroup(cfg, &prof); err != nil {
					t.Fatalf("RunGroup(%v): %v", eng, err)
				}
				return obs.events, mem.global
			}
			refEvents, refMem := run(vm.EngineInterp)
			gotEvents, gotMem := run(vm.EngineLanes)
			if !reflect.DeepEqual(refEvents, gotEvents) {
				t.Fatalf("observer streams differ (interp %d events, lanes %d)", len(refEvents), len(gotEvents))
			}
			// Racy memory is undefined — lock-step execution legitimately
			// observes neighbours' same-phase writes the serial engines
			// haven't made yet — so only the race-free variant pins the
			// memory image. The replayed stream above must match for both.
			if k == "shift_fixed" && !bytes.Equal(refMem, gotMem) {
				t.Fatalf("memory differs on %s", k)
			}
		})
	}
}

// TestLanesDivergenceReconverges checks min-pc block scheduling: lanes
// that branch apart re-merge at the post-dominator and finish with the
// serial engines' exact state, including nested and loop divergence.
func TestLanesDivergenceReconverges(t *testing.T) {
	const src = `
__kernel void diverge(__global int* out, const int n) {
	int gid = get_global_id(0);
	int v = 0;
	if (gid < 4) {
		if (gid & 1) { v = gid * 100; } else { v = -gid; }
	} else {
		for (int i = 0; i < gid - 2; i++) { v += i * n; }
	}
	out[gid] = v + 7;
}
`
	runLanesVsInterp(t, src, "diverge", 16, func(m *flatMem) []vm.ArgValue {
		return []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}, {Bits: 3}}
	}, 0)
}

// TestLanesBarrierPhases checks the full-batch barrier sync point
// against the serial phase protocol, including work between barriers
// that depends on what other work-items wrote in the previous phase.
func TestLanesBarrierPhases(t *testing.T) {
	const src = `
__kernel void phases(__global int* out, __local int* tile) {
	int lid = get_local_id(0);
	int n = get_local_size(0);
	tile[lid] = lid + 1;
	barrier(CLK_LOCAL_MEM_FENCE);
	int v = tile[(lid + 1) % n];
	barrier(CLK_LOCAL_MEM_FENCE);
	tile[lid] = v * 2;
	barrier(CLK_LOCAL_MEM_FENCE);
	out[lid] = tile[(lid + n - 1) % n];
}
`
	// 20 work-items: one full batch plus a partial tail batch, so the
	// cross-batch barrier protocol is exercised too.
	runLanesVsInterp(t, src, "phases", 20, func(m *flatMem) []vm.ArgValue {
		return []vm.ArgValue{
			{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
			{LocalSize: 32 * 4},
		}
	}, 0)
}

// TestLanesBarrierDivergence: work-items disagreeing on barrier
// execution must yield ErrBarrierDivergence from every engine.
func TestLanesBarrierDivergence(t *testing.T) {
	const src = `
__kernel void bardiv(__global int* out) {
	int lid = get_local_id(0);
	if (lid < 2) {
		barrier(CLK_LOCAL_MEM_FENCE);
	}
	out[lid] = lid;
}
`
	prog := mustCompile(t, src, "")
	for _, eng := range []vm.Engine{vm.EngineInterp, vm.EngineCompiled, vm.EngineLanes} {
		mem := newFlatMem(4096, nil)
		cfg := &vm.GroupConfig{
			Kernel:     prog.Kernel("bardiv"),
			WorkDim:    1,
			LocalSize:  [3]int{4, 1, 1},
			GlobalSize: [3]int{4, 1, 1},
			Args:       []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}},
			Mem:        mem,
			Engine:     eng,
		}
		var prof vm.Profile
		if err := vm.RunGroup(cfg, &prof); !errors.Is(err, vm.ErrBarrierDivergence) {
			t.Errorf("%v: err = %v, want ErrBarrierDivergence", eng, err)
		}
	}
}

// TestLanesStepLimitBoundary sweeps the step limit across the exact
// serial trip point. The limit is group-cumulative, so under lock-step
// execution the lane engine must reconstruct precisely which work-item
// the interpreter would have tripped on — including the stream
// truncation point — for limits landing before, on and after item
// boundaries.
func TestLanesStepLimitBoundary(t *testing.T) {
	const src = `
__kernel void work(__global int* out) {
	int gid = get_global_id(0);
	int s = 0;
	for (int i = 0; i <= gid; i++) { s += i; }
	out[gid] = s;
}
`
	args := func(m *flatMem) []vm.ArgValue {
		return []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}}
	}
	// Find the exact total step count of the group first.
	prog := mustCompile(t, src, "")
	mem := newFlatMem(4096, nil)
	var prof vm.Profile
	if err := vm.RunGroup(&vm.GroupConfig{
		Kernel: prog.Kernel("work"), WorkDim: 1,
		LocalSize: [3]int{8, 1, 1}, GlobalSize: [3]int{8, 1, 1},
		Args: args(mem), Mem: mem, Engine: vm.EngineInterp,
	}, &prof); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	total := prof.Instrs
	for _, limit := range []uint64{1, 2, 3, total / 4, total / 2, total - 1, total, total + 1} {
		limit := limit
		t.Run("", func(t *testing.T) {
			runLanesVsInterp(t, src, "work", 8, args, limit)
		})
	}
}

// TestLanesFaultIdentity: out-of-bounds accesses must surface the
// byte-identical error from the same work-item, with observer streams
// truncated at the same event — even when the faulting lane is in the
// middle of a batch and other lanes would have kept running.
func TestLanesFaultIdentity(t *testing.T) {
	const src = `
__kernel void oob(__global int* out, const int bad) {
	int gid = get_global_id(0);
	int tmp[4];
	tmp[gid & 3] = gid;
	int idx = (gid == bad) ? 1000 : (gid & 3);
	out[gid] = tmp[idx];
}
`
	for _, bad := range []int64{0, 3, 7, 15} {
		bad := bad
		t.Run("", func(t *testing.T) {
			runLanesVsInterp(t, src, "oob", 16, func(m *flatMem) []vm.ArgValue {
				return []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}, {Bits: bad}}
			}, 0)
		})
	}
}

// TestLanesAtomicsFallback: kernels containing atomics run on the
// compiled engine even under EngineLanes (lock-step atomic
// interleaving cannot match serial execution), so results stay
// bit-identical to the oracle.
func TestLanesAtomicsFallback(t *testing.T) {
	const src = `
__kernel void count(__global int* hist, __global const int* in) {
	int gid = get_global_id(0);
	atomic_add(&hist[in[gid] & 3], 1);
}
`
	prog := mustCompile(t, src, "")
	if lc := vm.CompileLanes(prog.Kernel("count")); !lc.HasAtomics() {
		t.Fatal("lane compiler should flag the atomic kernel")
	}
	runLanesVsInterp(t, src, "count", 16, func(m *flatMem) []vm.ArgValue {
		for i := 0; i < 16; i++ {
			m.putI32(64+4*i, int32(i*7))
		}
		return []vm.ArgValue{
			{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
			{Bits: ir.EncodeAddr(ir.SpaceGlobal, 64)},
		}
	}, 0)
}

// TestLanesPCOutOfRange: a hand-built kernel that jumps past the end
// of its code must fault with the serial engines' exact pc error, not
// crash, and the error must not consume a step.
func TestLanesPCOutOfRange(t *testing.T) {
	k := &ir.Kernel{
		Name: "jmpout",
		Code: []ir.Instr{
			{Op: ir.ImmI, A: 0, Imm: 1, Base: types.Int},
			{Op: ir.Jmp, Imm: 99},
		},
		NumI: 1,
	}
	var want string
	for _, eng := range []vm.Engine{vm.EngineInterp, vm.EngineCompiled, vm.EngineLanes} {
		var prof vm.Profile
		err := vm.RunGroup(&vm.GroupConfig{
			Kernel: k, WorkDim: 1,
			LocalSize: [3]int{4, 1, 1}, GlobalSize: [3]int{4, 1, 1},
			Mem: newFlatMem(64, nil), Engine: eng,
		}, &prof)
		if err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("%v: err = %v, want pc out of range", eng, err)
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Errorf("%v: error %q differs from interp %q", eng, err.Error(), want)
		}
	}
}

// TestLanesVectorKernel exercises the generic (pFn) executors and the
// vector memory path: float4 arithmetic with vector loads and stores.
func TestLanesVectorKernel(t *testing.T) {
	const src = `
__kernel void vec(__global float4* out, __global const float4* in) {
	int gid = get_global_id(0);
	float4 v = in[gid];
	out[gid] = v * v + (float4)(1.0f, 2.0f, 3.0f, 4.0f);
}
`
	runLanesVsInterp(t, src, "vec", 16, func(m *flatMem) []vm.ArgValue {
		for i := 0; i < 64; i++ {
			m.putF32(1024+4*i, float32(i)*0.5)
		}
		return []vm.ArgValue{
			{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
			{Bits: ir.EncodeAddr(ir.SpaceGlobal, 1024)},
		}
	}, 0)
}

// TestLanesBuiltins exercises the gather/scatter builtin path:
// transcendentals whose profile counting and register traffic must
// match the serial engines per lane.
func TestLanesBuiltins(t *testing.T) {
	const src = `
__kernel void transc(__global float* out, __global const float* in) {
	int gid = get_global_id(0);
	float x = in[gid];
	out[gid] = sqrt(x) + exp(x * 0.01f) * sin(x);
}
`
	runLanesVsInterp(t, src, "transc", 16, func(m *flatMem) []vm.ArgValue {
		for i := 0; i < 16; i++ {
			m.putF32(256+4*i, float32(i)+0.25)
		}
		return []vm.ArgValue{
			{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
			{Bits: ir.EncodeAddr(ir.SpaceGlobal, 256)},
		}
	}, 0)
}

// TestLanesPartialTailBatch: group sizes that don't divide LaneWidth
// leave a short tail batch; its lanes must behave exactly like full
// ones.
func TestLanesPartialTailBatch(t *testing.T) {
	const src = `
__kernel void tail(__global int* out) {
	int gid = get_global_id(0);
	out[gid] = gid * gid + 1;
}
`
	for _, local := range []int{1, 3, 15, 16, 17, 33} {
		local := local
		t.Run("", func(t *testing.T) {
			runLanesVsInterp(t, src, "tail", local, func(m *flatMem) []vm.ArgValue {
				return []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}}
			}, 0)
		})
	}
}
