package vm

import (
	"fmt"
	"sync"

	"maligo/internal/clc/ir"
)

// DataRace is one dynamically-observed intra-work-group data race: two
// work-items of the same group touched the same byte in the same
// barrier phase, at least one of them writing, without both accesses
// being atomic. Access A is the one observed first in execution order.
type DataRace struct {
	Kernel string
	Group  [3]int
	Space  int   // ir.Space* of the conflicting location
	Offset int64 // space-relative byte offset of the first shared byte
	Phase  int   // barrier phase the conflict happened in

	ItemA, ItemB     int // flat local work-item indices
	LineA, LineB     int // source lines of the accesses (0 if unknown)
	WriteA, WriteB   bool
	AtomicA, AtomicB bool
}

func spaceName(space int) string {
	switch space {
	case ir.SpaceGlobal:
		return "__global"
	case ir.SpaceLocal:
		return "__local"
	case ir.SpaceConstant:
		return "__constant"
	default:
		return "__private"
	}
}

func accessName(write, atomic bool) string {
	switch {
	case atomic:
		return "atomic"
	case write:
		return "write"
	default:
		return "read"
	}
}

func (r DataRace) String() string {
	return fmt.Sprintf("%s group (%d,%d,%d): %s at line %d by work-item %d races with %s at line %d by work-item %d on %s byte %d (barrier phase %d)",
		r.Kernel, r.Group[0], r.Group[1], r.Group[2],
		accessName(r.WriteA, r.AtomicA), r.LineA, r.ItemA,
		accessName(r.WriteB, r.AtomicB), r.LineB, r.ItemB,
		spaceName(r.Space), r.Offset, r.Phase)
}

// raceKey dedupes races per pair of source locations; one racy line
// pair in a loop would otherwise report once per iteration per byte.
type raceKey struct {
	space        uint8
	lineA, lineB uint16
}

// byteShadow is the per-byte access history within one barrier phase.
type byteShadow struct {
	write     shadowAccess
	hasWrite  bool
	read      shadowAccess
	hasRead   bool
	readOther shadowAccess // first read from a different item than read
	hasOther  bool
}

type shadowAccess struct {
	item   int
	line   uint16
	atomic bool
}

// RaceDetector consumes detailed work-group traces (Trace with
// EnableDetail) and reports intra-work-group races: conflicting
// accesses by two work-items in the same barrier phase. It implements
// the device layer's race-observer hook and is safe for use from the
// ordered fan-in of the parallel engine (calls are serialized there;
// the mutex additionally makes it safe anywhere).
//
// Scope: races *between* work-groups are not detected — groups are
// traced independently — which matches the OpenCL model, where
// cross-group conflicts are only synchronizable across kernel
// launches anyway.
type RaceDetector struct {
	Kernel string
	// Max bounds the number of retained races; 0 means 16.
	Max int

	mu    sync.Mutex
	seen  map[raceKey]bool
	races []DataRace
}

// Races returns the races observed so far, in detection order.
func (d *RaceDetector) Races() []DataRace {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]DataRace, len(d.races))
	copy(out, d.races)
	return out
}

func (d *RaceDetector) max() int {
	if d.Max > 0 {
		return d.Max
	}
	return 16
}

// ObserveGroup scans one work-group's detailed trace for conflicting
// same-phase accesses. Traces recorded without detail mode carry no
// work-item attribution and are ignored.
func (d *RaceDetector) ObserveGroup(group [3]int, tr *Trace) {
	if tr == nil || !tr.detail {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seen == nil {
		d.seen = make(map[raceKey]bool)
	}
	if len(d.races) >= d.max() {
		return
	}

	shadow := make(map[int64]*byteShadow)
	item, phase := -1, 0
	for i := 0; i < len(tr.recs); i++ {
		rec := &tr.recs[i]
		switch rec.kind {
		case recCtx:
			newItem := int(rec.addr >> 32)
			newPhase := int(uint32(rec.addr))
			if newPhase != phase {
				// A barrier orders everything before it with everything
				// after: conflicts cannot span phases.
				shadow = make(map[int64]*byteShadow)
			}
			item, phase = newItem, newPhase
			continue
		case recAtomic:
			// Atomics record as OnAccess(write) + OnAtomic; the write
			// record right before this one already carried the event.
			continue
		}
		// Private memory is per-work-item (identical tagged offsets name
		// distinct storage) and constant memory is read-only: only the
		// shared spaces can race.
		if rec.space != uint8(ir.SpaceGlobal) && rec.space != uint8(ir.SpaceLocal) {
			continue
		}
		atomic := i+1 < len(tr.recs) && tr.recs[i+1].kind == recAtomic && tr.recs[i+1].addr == rec.addr
		cur := shadowAccess{item: item, line: rec.line, atomic: atomic}
		write := rec.kind == recWrite
		for b := int64(0); b < int64(rec.size); b++ {
			addr := rec.addr + b
			sh := shadow[addr]
			if sh == nil {
				sh = &byteShadow{}
				shadow[addr] = sh
			}
			if write {
				if sh.hasWrite && sh.write.item != item && !(sh.write.atomic && atomic) {
					d.report(group, phase, int(rec.space), addr, sh.write, cur, true, true)
				} else if sh.hasRead && sh.read.item != item {
					d.report(group, phase, int(rec.space), addr, sh.read, cur, false, true)
				} else if sh.hasOther && sh.readOther.item != item {
					d.report(group, phase, int(rec.space), addr, sh.readOther, cur, false, true)
				}
				sh.write, sh.hasWrite = cur, true
			} else {
				if sh.hasWrite && sh.write.item != item {
					d.report(group, phase, int(rec.space), addr, sh.write, cur, true, false)
				}
				if !sh.hasRead {
					sh.read, sh.hasRead = cur, true
				} else if !sh.hasOther && sh.read.item != item {
					sh.readOther, sh.hasOther = cur, true
				}
			}
			if len(d.races) >= d.max() {
				return
			}
		}
	}
}

func (d *RaceDetector) report(group [3]int, phase, space int, addr int64, a, b shadowAccess, writeA, writeB bool) {
	key := raceKey{space: uint8(space), lineA: a.line, lineB: b.line}
	if key.lineA > key.lineB {
		key.lineA, key.lineB = key.lineB, key.lineA
	}
	if d.seen[key] {
		return
	}
	d.seen[key] = true
	_, off := ir.DecodeAddr(addr)
	d.races = append(d.races, DataRace{
		Kernel: d.Kernel,
		Group:  group,
		Space:  space,
		Offset: off,
		Phase:  phase,
		ItemA:  a.item, ItemB: b.item,
		LineA: int(a.line), LineB: int(b.line),
		WriteA: writeA, WriteB: writeB,
		AtomicA: a.atomic, AtomicB: b.atomic,
	})
}
