package vm_test

import (
	"math"
	"testing"

	"maligo/internal/clc"
	"maligo/internal/clc/ir"
	"maligo/internal/vm"
)

// flatMem is a trivial GlobalMemory backed by byte slices per space.
type flatMem struct {
	global   []byte
	constant []byte
}

func newFlatMem(globalSize int, constant []byte) *flatMem {
	return &flatMem{global: make([]byte, globalSize), constant: constant}
}

func (m *flatMem) space(s int) []byte {
	if s == ir.SpaceConstant {
		return m.constant
	}
	return m.global
}

func (m *flatMem) LoadBits(space int, off int64, size int) (uint64, error) {
	mem := m.space(space)
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(mem[off+int64(i)])
	}
	return v, nil
}

func (m *flatMem) StoreBits(space int, off int64, size int, bits uint64) error {
	mem := m.space(space)
	for i := 0; i < size; i++ {
		mem[off+int64(i)] = byte(bits >> (8 * uint(i)))
	}
	return nil
}

// RawWindow implements vm.RawMemory so the lane engine's bulk
// unit-stride path is exercised by the engine tests and benchmarks.
func (m *flatMem) RawWindow(space int, off int64, n int, write bool) ([]byte, bool) {
	if write && space != ir.SpaceGlobal {
		return nil, false
	}
	mem := m.space(space)
	if off < 0 || n < 0 || off+int64(n) > int64(len(mem)) {
		return nil, false
	}
	return mem[off : off+int64(n)], true
}

func (m *flatMem) AtomicRMW(space int, off int64, size int, fn func(uint64) uint64) (uint64, error) {
	old, err := m.LoadBits(space, off, size)
	if err != nil {
		return 0, err
	}
	return old, m.StoreBits(space, off, size, fn(old))
}

func (m *flatMem) putF32(off int, v float32) {
	bits := math.Float32bits(v)
	for i := 0; i < 4; i++ {
		m.global[off+i] = byte(bits >> (8 * uint(i)))
	}
}

func (m *flatMem) getF32(off int) float32 {
	var bits uint32
	for i := 3; i >= 0; i-- {
		bits = bits<<8 | uint32(m.global[off+i])
	}
	return math.Float32frombits(bits)
}

func (m *flatMem) putI32(off int, v int32) {
	for i := 0; i < 4; i++ {
		m.global[off+i] = byte(uint32(v) >> (8 * uint(i)))
	}
}

func (m *flatMem) getI32(off int) int32 {
	var bits uint32
	for i := 3; i >= 0; i-- {
		bits = bits<<8 | uint32(m.global[off+i])
	}
	return int32(bits)
}

func mustCompile(t *testing.T, src, options string) *ir.Program {
	t.Helper()
	prog, err := clc.Compile("test.cl", src, options)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// runNDRange1D executes a 1-D NDRange over all work-groups.
func runNDRange1D(t *testing.T, k *ir.Kernel, global, local int, args []vm.ArgValue, mem vm.GlobalMemory) *vm.Profile {
	t.Helper()
	prof := &vm.Profile{}
	for g := 0; g < global/local; g++ {
		cfg := &vm.GroupConfig{
			Kernel:     k,
			WorkDim:    1,
			GroupID:    [3]int{g, 0, 0},
			LocalSize:  [3]int{local, 1, 1},
			GlobalSize: [3]int{global, 1, 1},
			Args:       args,
			Mem:        mem,
		}
		if err := vm.RunGroup(cfg, prof); err != nil {
			t.Fatalf("RunGroup: %v", err)
		}
	}
	return prof
}

const vecaddSrc = `
__kernel void vecadd(__global const float* a,
                     __global const float* b,
                     __global float* c,
                     const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}
`

func TestVecAdd(t *testing.T) {
	prog := mustCompile(t, vecaddSrc, "")
	k := prog.Kernel("vecadd")
	if k == nil {
		t.Fatal("kernel vecadd not found")
	}
	const n = 64
	mem := newFlatMem(3*n*4, nil)
	for i := 0; i < n; i++ {
		mem.putF32(i*4, float32(i))
		mem.putF32(n*4+i*4, float32(2*i))
	}
	args := []vm.ArgValue{
		{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
		{Bits: ir.EncodeAddr(ir.SpaceGlobal, n*4)},
		{Bits: ir.EncodeAddr(ir.SpaceGlobal, 2*n*4)},
		{Bits: n},
	}
	prof := runNDRange1D(t, k, n, 16, args, mem)
	for i := 0; i < n; i++ {
		got := mem.getF32(2*n*4 + i*4)
		want := float32(3 * i)
		if got != want {
			t.Fatalf("c[%d] = %v, want %v", i, got, want)
		}
	}
	if prof.WorkItems != n {
		t.Errorf("WorkItems = %d, want %d", prof.WorkItems, n)
	}
	if prof.F32Instrs == 0 {
		t.Error("expected F32 instruction counts")
	}
}

const vecadd4Src = `
#define REAL float
#define REAL4 float4
__kernel void vecadd4(__global const REAL* restrict a,
                      __global const REAL* restrict b,
                      __global REAL* restrict c) {
    size_t i = get_global_id(0);
    REAL4 va = vload4(i, a);
    REAL4 vb = vload4(i, b);
    vstore4(va + vb, i, c);
}
`

func TestVecAddVectorized(t *testing.T) {
	prog := mustCompile(t, vecadd4Src, "")
	k := prog.Kernel("vecadd4")
	const n = 64
	mem := newFlatMem(3*n*4, nil)
	for i := 0; i < n; i++ {
		mem.putF32(i*4, float32(i))
		mem.putF32(n*4+i*4, float32(i)*0.5)
	}
	args := []vm.ArgValue{
		{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
		{Bits: ir.EncodeAddr(ir.SpaceGlobal, n*4)},
		{Bits: ir.EncodeAddr(ir.SpaceGlobal, 2*n*4)},
	}
	runNDRange1D(t, k, n/4, 4, args, mem)
	for i := 0; i < n; i++ {
		got := mem.getF32(2*n*4 + i*4)
		want := float32(i) + float32(i)*0.5
		if got != want {
			t.Fatalf("c[%d] = %v, want %v", i, got, want)
		}
	}
	if k.MaxVectorWidth < 4 {
		t.Errorf("MaxVectorWidth = %d, want >= 4", k.MaxVectorWidth)
	}
	if k.RestrictParams != 3 {
		t.Errorf("RestrictParams = %d, want 3", k.RestrictParams)
	}
}

const reduceSrc = `
__kernel void reduce(__global const float* in,
                     __global float* out,
                     __local float* scratch,
                     const uint n) {
    size_t gid = get_global_id(0);
    size_t lid = get_local_id(0);
    size_t ls  = get_local_size(0);
    scratch[lid] = (gid < n) ? in[gid] : 0.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (size_t s = ls / 2; s > 0; s = s / 2) {
        if (lid < s) {
            scratch[lid] = scratch[lid] + scratch[lid + s];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0) {
        out[get_group_id(0)] = scratch[0];
    }
}
`

func TestReductionWithBarrier(t *testing.T) {
	prog := mustCompile(t, reduceSrc, "")
	k := prog.Kernel("reduce")
	if !k.UsesBarrier {
		t.Fatal("kernel should be marked as using barriers")
	}
	const n, local = 128, 32
	mem := newFlatMem(n*4+(n/local)*4, nil)
	var want float64
	for i := 0; i < n; i++ {
		mem.putF32(i*4, float32(i))
		want += float64(i)
	}
	args := []vm.ArgValue{
		{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
		{Bits: ir.EncodeAddr(ir.SpaceGlobal, n*4)},
		{LocalSize: local * 4},
		{Bits: n},
	}
	prof := runNDRange1D(t, k, n, local, args, mem)
	var got float64
	for g := 0; g < n/local; g++ {
		got += float64(mem.getF32(n*4 + g*4))
	}
	if got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	if prof.Barriers == 0 {
		t.Error("expected barrier executions in profile")
	}
}

const histSrc = `
__kernel void hist(__global const int* data,
                   __global int* bins,
                   const int nbins,
                   const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        int b = data[i] % nbins;
        atomic_add(&bins[b], 1);
    }
}
`

func TestAtomicHistogram(t *testing.T) {
	prog := mustCompile(t, histSrc, "")
	k := prog.Kernel("hist")
	const n, nbins = 256, 8
	mem := newFlatMem(n*4+nbins*4, nil)
	for i := 0; i < n; i++ {
		mem.putI32(i*4, int32(i*7))
	}
	args := []vm.ArgValue{
		{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
		{Bits: ir.EncodeAddr(ir.SpaceGlobal, n*4)},
		{Bits: nbins},
		{Bits: n},
	}
	prof := runNDRange1D(t, k, n, 32, args, mem)
	var total int32
	for b := 0; b < nbins; b++ {
		total += mem.getI32(n*4 + b*4)
	}
	if total != n {
		t.Fatalf("histogram total = %d, want %d", total, n)
	}
	if prof.Atomics != n {
		t.Errorf("Atomics = %d, want %d", prof.Atomics, n)
	}
}

const doubleSrc = `
#pragma OPENCL EXTENSION cl_khr_fp64 : enable
__kernel void scale(__global double* x, const double k, const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        x[i] = x[i] * k;
    }
}
`

func TestDoublePrecision(t *testing.T) {
	prog := mustCompile(t, doubleSrc, "")
	k := prog.Kernel("scale")
	if !k.UsesDouble {
		t.Fatal("kernel should be marked as using double")
	}
	const n = 16
	mem := newFlatMem(n*8, nil)
	for i := 0; i < n; i++ {
		bits := math.Float64bits(float64(i) + 0.25)
		for b := 0; b < 8; b++ {
			mem.global[i*8+b] = byte(bits >> (8 * uint(b)))
		}
	}
	args := []vm.ArgValue{
		{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
		{F: 3.0},
		{Bits: n},
	}
	runNDRange1D(t, k, n, 4, args, mem)
	for i := 0; i < n; i++ {
		var bits uint64
		for b := 7; b >= 0; b-- {
			bits = bits<<8 | uint64(mem.global[i*8+b])
		}
		got := math.Float64frombits(bits)
		want := (float64(i) + 0.25) * 3.0
		if got != want {
			t.Fatalf("x[%d] = %v, want %v", i, got, want)
		}
	}
}

const helperSrc = `
inline float square(float x) { return x * x; }
float cube(float x) { return x * square(x); }

__kernel void apply(__global float* x, const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        x[i] = cube(x[i]) + square(x[i]);
    }
}
`

func TestHelperInlining(t *testing.T) {
	prog := mustCompile(t, helperSrc, "")
	k := prog.Kernel("apply")
	const n = 8
	mem := newFlatMem(n*4, nil)
	for i := 0; i < n; i++ {
		mem.putF32(i*4, float32(i))
	}
	args := []vm.ArgValue{
		{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
		{Bits: n},
	}
	runNDRange1D(t, k, n, 4, args, mem)
	for i := 0; i < n; i++ {
		x := float32(i)
		want := x*x*x + x*x
		if got := mem.getF32(i * 4); got != want {
			t.Fatalf("x[%d] = %v, want %v", i, got, want)
		}
	}
}

const constantSrc = `
__constant float weights[4] = {0.1f, 0.2f, 0.3f, 0.4f};

__kernel void weighted(__global float* x, const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        x[i] = x[i] * weights[i % 4];
    }
}
`

func TestConstantArray(t *testing.T) {
	prog := mustCompile(t, constantSrc, "")
	if len(prog.ConstantData) != 16 {
		t.Fatalf("constant segment = %d bytes, want 16", len(prog.ConstantData))
	}
	k := prog.Kernel("weighted")
	const n = 8
	mem := newFlatMem(n*4, prog.ConstantData)
	for i := 0; i < n; i++ {
		mem.putF32(i*4, 10)
	}
	args := []vm.ArgValue{
		{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
		{Bits: n},
	}
	runNDRange1D(t, k, n, 4, args, mem)
	weights := []float32{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < n; i++ {
		want := 10 * weights[i%4]
		if got := mem.getF32(i * 4); got != want {
			t.Fatalf("x[%d] = %v, want %v", i, got, want)
		}
	}
}

const privateArraySrc = `
__kernel void sums(__global int* out, const uint n) {
    size_t i = get_global_id(0);
    int acc[4];
    for (int j = 0; j < 4; j++) {
        acc[j] = (int)i + j;
    }
    int total = 0;
    for (int j = 0; j < 4; j++) {
        total += acc[j];
    }
    if (i < n) {
        out[i] = total;
    }
}
`

func TestPrivateArray(t *testing.T) {
	prog := mustCompile(t, privateArraySrc, "")
	k := prog.Kernel("sums")
	if k.PrivateBytes < 16 {
		t.Fatalf("PrivateBytes = %d, want >= 16", k.PrivateBytes)
	}
	const n = 8
	mem := newFlatMem(n*4, nil)
	args := []vm.ArgValue{
		{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
		{Bits: n},
	}
	runNDRange1D(t, k, n, 4, args, mem)
	for i := 0; i < n; i++ {
		want := int32(4*i + 6)
		if got := mem.getI32(i * 4); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

const swizzleSrc = `
__kernel void swiz(__global float* out) {
    float4 v = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
    float2 hi = v.hi;
    v.x = hi.y;
    out[0] = v.x;
    out[1] = dot(v, (float4)(1.0f));
    out[2] = v.s3;
}
`

func TestSwizzleAndDot(t *testing.T) {
	prog := mustCompile(t, swizzleSrc, "")
	k := prog.Kernel("swiz")
	mem := newFlatMem(12, nil)
	args := []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}}
	runNDRange1D(t, k, 1, 1, args, mem)
	if got := mem.getF32(0); got != 4 {
		t.Errorf("out[0] = %v, want 4", got)
	}
	if got := mem.getF32(4); got != 13 {
		t.Errorf("out[1] = %v, want 13 (4+2+3+4)", got)
	}
	if got := mem.getF32(8); got != 4 {
		t.Errorf("out[2] = %v, want 4", got)
	}
}
