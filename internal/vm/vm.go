// Package vm executes lowered kernel IR work-group by work-group. It
// is the functional half of the simulated devices: it produces both
// the architectural effects (memory contents) and an execution profile
// (instruction and memory-traffic counts) that the device timing
// models in internal/mali and internal/cpu convert into cycles and
// joules.
//
// Three engines implement that contract. The reference interpreter
// (exec.go) decodes and dispatches one instruction per step and serves
// as the oracle; the closure-compiled fast path (compile.go)
// pre-decodes each kernel once into flat execution units and is the
// default; the lane engine (lanes.go) executes work-items in lock-step
// SIMT batches of LaneWidth lanes over a block program built from the
// same pre-decode, modelling the warp-style amortization of a Mali
// shader core. All three are observationally identical — results,
// profiles, traces, faults — and selected per run via
// GroupConfig.Engine; the 3-way differential and fuzz tests enforce
// the equivalence.
package vm

import (
	"errors"
	"fmt"

	"maligo/internal/clc/ir"
)

// ErrStepLimit is returned when a work-item exceeds the configured
// dynamic instruction budget (runaway loop protection).
var ErrStepLimit = errors.New("vm: work-item exceeded step limit")

// ErrBarrierDivergence is returned when some work-items of a group hit
// a barrier while others return — undefined behaviour in OpenCL that
// the VM reports instead of hanging.
var ErrBarrierDivergence = errors.New("vm: barrier divergence inside work-group")

// GlobalMemory is the interface to simulated global and constant
// memory, implemented by the OpenCL runtime/device models. Offsets are
// space-relative byte offsets (the VM strips the address-space tag).
type GlobalMemory interface {
	LoadBits(space int, off int64, size int) (uint64, error)
	StoreBits(space int, off int64, size int, bits uint64) error
	// AtomicRMW applies fn to the size-byte word at off atomically and
	// returns the previous value.
	AtomicRMW(space int, off int64, size int, fn func(uint64) uint64) (uint64, error)
}

// AccessObserver receives one callback per executed memory
// instruction; device models feed these into their cache/DRAM models.
// addr is the tagged simulated address of the first byte, size the
// total bytes moved by the instruction (lanes x element size).
type AccessObserver interface {
	OnAccess(space int, addr int64, size int, write bool)
	// OnAtomic is called additionally for atomic read-modify-write
	// operations; device models use it for contention modelling.
	OnAtomic(space int, addr int64, size int)
}

// ContextObserver is an optional extension of AccessObserver. When the
// configured observer implements it and ContextActive returns true,
// the VM calls OnContext immediately before every OnAccess/OnAtomic
// callback with the flat local work-item index, the barrier phase
// (number of barriers the item has passed) and the source line of the
// memory instruction. Trace implements it in detail mode; the dynamic
// race detector relies on it to attribute accesses to work-items.
type ContextObserver interface {
	OnContext(item, phase, line int)
	// ContextActive reports whether context callbacks are wanted; the
	// VM checks it once per group so inactive observers cost nothing.
	ContextActive() bool
}

// Tee fans one access stream out to two observers (e.g. a device cache
// model and a detail trace for race checking). Either may be nil.
// Context callbacks are forwarded to whichever parts implement
// ContextObserver.
func Tee(a, b AccessObserver) AccessObserver {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	t := &tee{a: a, b: b}
	t.ca, _ = a.(ContextObserver)
	t.cb, _ = b.(ContextObserver)
	return t
}

type tee struct {
	a, b   AccessObserver
	ca, cb ContextObserver
}

func (t *tee) OnAccess(space int, addr int64, size int, write bool) {
	t.a.OnAccess(space, addr, size, write)
	t.b.OnAccess(space, addr, size, write)
}

func (t *tee) OnAtomic(space int, addr int64, size int) {
	t.a.OnAtomic(space, addr, size)
	t.b.OnAtomic(space, addr, size)
}

func (t *tee) OnContext(item, phase, line int) {
	if t.ca != nil {
		t.ca.OnContext(item, phase, line)
	}
	if t.cb != nil {
		t.cb.OnContext(item, phase, line)
	}
}

func (t *tee) ContextActive() bool {
	return (t.ca != nil && t.ca.ContextActive()) || (t.cb != nil && t.cb.ContextActive())
}

// Profile accumulates execution statistics for one enqueue (all
// work-groups of one NDRange).
type Profile struct {
	Instrs uint64 // total dynamic instructions

	IntInstrs   uint64 // integer arithmetic instructions
	IntLanes    uint64 // integer lanes (vector instr of width w adds w)
	F32Instrs   uint64
	F32Lanes    uint64
	F64Instrs   uint64
	F64Lanes    uint64
	TranscInstr uint64 // transcendental builtin calls
	TranscLanes uint64

	// ArithSlots128 counts 128-bit SIMD issue slots for arithmetic
	// (a scalar op takes one slot; a double8 op takes four) — the unit
	// of the Mali arithmetic-pipe timing model.
	ArithSlots128 uint64
	// LSSlots128 counts load/store-pipe issue slots (one per memory
	// instruction moving up to 16 bytes).
	LSSlots128 uint64
	// LSLanes counts scalar elements moved (the unit of the scalar CPU
	// load/store timing model).
	LSLanes uint64

	LoadInstrs  uint64
	StoreInstrs uint64
	// Bytes moved per address space (indexed by ir.Space*).
	BytesRead    [4]uint64
	BytesWritten [4]uint64

	// PrivateAccesses counts memory instructions touching __private
	// arrays (spilled to memory on Mali, priced with a penalty there).
	PrivateAccesses uint64

	Atomics    uint64 // atomic operations executed
	Barriers   uint64 // barrier instructions executed (per work-item)
	WorkItems  uint64
	WorkGroups uint64
}

// Add accumulates other into p.
func (p *Profile) Add(o *Profile) {
	p.Instrs += o.Instrs
	p.IntInstrs += o.IntInstrs
	p.IntLanes += o.IntLanes
	p.F32Instrs += o.F32Instrs
	p.F32Lanes += o.F32Lanes
	p.F64Instrs += o.F64Instrs
	p.F64Lanes += o.F64Lanes
	p.TranscInstr += o.TranscInstr
	p.TranscLanes += o.TranscLanes
	p.ArithSlots128 += o.ArithSlots128
	p.LSSlots128 += o.LSSlots128
	p.LSLanes += o.LSLanes
	p.LoadInstrs += o.LoadInstrs
	p.StoreInstrs += o.StoreInstrs
	for i := range p.BytesRead {
		p.BytesRead[i] += o.BytesRead[i]
		p.BytesWritten[i] += o.BytesWritten[i]
	}
	p.PrivateAccesses += o.PrivateAccesses
	p.Atomics += o.Atomics
	p.Barriers += o.Barriers
	p.WorkItems += o.WorkItems
	p.WorkGroups += o.WorkGroups
}

// TotalBytes returns all bytes moved across every space.
func (p *Profile) TotalBytes() uint64 {
	var n uint64
	for i := range p.BytesRead {
		n += p.BytesRead[i] + p.BytesWritten[i]
	}
	return n
}

// GlobalBytes returns bytes moved in the global + constant spaces.
func (p *Profile) GlobalBytes() uint64 {
	return p.BytesRead[ir.SpaceGlobal] + p.BytesWritten[ir.SpaceGlobal] +
		p.BytesRead[ir.SpaceConstant] + p.BytesWritten[ir.SpaceConstant]
}

// ArgValue is one bound kernel argument.
type ArgValue struct {
	// Bits carries scalar integer values or the tagged buffer base
	// address for pointer arguments.
	Bits int64
	// F carries scalar float arguments.
	F float64
	// LocalSize is the host-requested size for __local pointer
	// arguments (clSetKernelArg with a nil pointer).
	LocalSize int
}

// GroupConfig describes one work-group execution.
type GroupConfig struct {
	Kernel       *ir.Kernel
	WorkDim      int
	GroupID      [3]int
	LocalSize    [3]int
	GlobalSize   [3]int
	GlobalOffset [3]int
	Args         []ArgValue
	Mem          GlobalMemory
	Observer     AccessObserver // may be nil
	StepLimit    uint64         // per work-item; 0 = default

	// Engine selects the execution engine: the reference interpreter,
	// the closure-compiled fast path, or the lock-step lane engine.
	// The zero value EngineAuto resolves to the compiled engine; all
	// three are observationally identical (see Engine).
	Engine Engine
}

const defaultStepLimit = 1 << 32

// wiState is the saved execution state of one work-item.
type wiState struct {
	pc    int
	ii    []int64
	ff    []float64
	priv  []byte
	done  bool
	atBar bool
}

// groupRunner executes one work-group.
type groupRunner struct {
	cfg     *GroupConfig
	k       *ir.Kernel
	local   []byte
	prof    *Profile
	localID [3]int // current work-item local coordinates
	cur     *wiState
	steps   uint64
	limit   uint64
	// ctxObs, item and phase feed per-access context callbacks when the
	// observer asks for them (race checking); ctxObs is nil otherwise.
	ctxObs ContextObserver
	item   int
	phase  int
}

// RunGroup executes a single work-group to completion, accumulating
// into prof (which must be non-nil).
func RunGroup(cfg *GroupConfig, prof *Profile) error {
	k := cfg.Kernel
	limit := cfg.StepLimit
	if limit == 0 {
		limit = defaultStepLimit
	}
	localBytes := k.LocalBytes
	for i, p := range k.Params {
		if p.Class == ir.ParamLocalPtr {
			localBytes = alignUp(localBytes, 16)
			localBytes += cfg.Args[i].LocalSize
		}
	}
	r := &groupRunner{
		cfg:   cfg,
		k:     k,
		prof:  prof,
		limit: limit,
	}
	if co, ok := cfg.Observer.(ContextObserver); ok && co.ContextActive() {
		r.ctxObs = co
	}
	nloc := cfg.LocalSize[0] * max(cfg.LocalSize[1], 1) * max(cfg.LocalSize[2], 1)
	if nloc <= 0 {
		return fmt.Errorf("vm: empty work-group")
	}
	prof.WorkGroups++
	prof.WorkItems += uint64(nloc)

	if cfg.Engine == EngineLanes {
		return r.runGroupLanes(localBytes, nloc)
	}
	if cfg.Engine.UseCompiled() {
		return r.runGroupCompiled(localBytes, nloc)
	}
	r.local = make([]byte, localBytes)

	if !k.UsesBarrier {
		// Fast path: run each work-item to completion, reusing one state.
		st := r.newState()
		item := 0
		for lz := 0; lz < max(cfg.LocalSize[2], 1); lz++ {
			for ly := 0; ly < max(cfg.LocalSize[1], 1); ly++ {
				for lx := 0; lx < cfg.LocalSize[0]; lx++ {
					r.resetState(st)
					r.localID = [3]int{lx, ly, lz}
					r.cur = st
					r.item = item
					item++
					if err := r.run(st, false); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}

	// Barrier path: keep every work-item's state resident and advance
	// the group in barrier-delimited phases.
	states := make([]*wiState, nloc)
	coords := make([][3]int, nloc)
	i := 0
	for lz := 0; lz < max(cfg.LocalSize[2], 1); lz++ {
		for ly := 0; ly < max(cfg.LocalSize[1], 1); ly++ {
			for lx := 0; lx < cfg.LocalSize[0]; lx++ {
				states[i] = r.newState()
				coords[i] = [3]int{lx, ly, lz}
				i++
			}
		}
	}
	for phase := 0; ; phase++ {
		anyBar, anyDone, allFinished := false, false, true
		for i, st := range states {
			if st.done {
				anyDone = true
				continue
			}
			r.localID = coords[i]
			r.cur = st
			r.item = i
			r.phase = phase
			if err := r.run(st, true); err != nil {
				return err
			}
			if st.done {
				anyDone = true
			} else {
				st.atBar = false // consumed below
				anyBar = true
				allFinished = false
			}
		}
		if allFinished {
			return nil
		}
		if anyBar && anyDone {
			return ErrBarrierDivergence
		}
	}
}

func (r *groupRunner) newState() *wiState {
	return &wiState{
		ii:   make([]int64, r.k.NumI),
		ff:   make([]float64, r.k.NumF),
		priv: make([]byte, r.k.PrivateBytes),
	}
}

func (r *groupRunner) resetState(st *wiState) {
	st.pc = 0
	st.done = false
	st.atBar = false
	for i := range st.ii {
		st.ii[i] = 0
	}
	for i := range st.ff {
		st.ff[i] = 0
	}
	for i := range st.priv {
		st.priv[i] = 0
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func alignUp(n, a int) int { return (n + a - 1) / a * a }

// bindArgs loads kernel arguments into the state's registers.
func (r *groupRunner) bindArgs(st *wiState) {
	localOff := int64(r.k.LocalBytes)
	for i, p := range r.k.Params {
		arg := r.cfg.Args[i]
		switch p.Class {
		case ir.ParamScalarI:
			st.ii[p.Slot] = arg.Bits
		case ir.ParamScalarF:
			st.ff[p.Slot] = arg.F
		case ir.ParamGlobalPtr:
			st.ii[p.Slot] = arg.Bits
		case ir.ParamLocalPtr:
			localOff = int64(alignUp(int(localOff), 16))
			st.ii[p.Slot] = ir.EncodeAddr(ir.SpaceLocal, localOff)
			localOff += int64(arg.LocalSize)
		}
	}
}
