package vm_test

import (
	"math/rand"
	"reflect"
	"testing"

	"maligo/internal/vm"
)

// recObserver records replayed callbacks verbatim.
type recObserver struct {
	events []traceEvent
}

type traceEvent struct {
	space  int
	addr   int64
	size   int
	write  bool
	atomic bool
}

func (r *recObserver) OnAccess(space int, addr int64, size int, write bool) {
	r.events = append(r.events, traceEvent{space: space, addr: addr, size: size, write: write})
}

func (r *recObserver) OnAtomic(space int, addr int64, size int) {
	r.events = append(r.events, traceEvent{space: space, addr: addr, size: size, atomic: true})
}

// TestTraceReplayPreservesOrder records a mixed access sequence and
// checks the replay delivers the same events in the same order.
func TestTraceReplayPreservesOrder(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	tr := vm.NewTrace()
	defer tr.Release()

	var want []traceEvent
	for i := 0; i < 10000; i++ {
		ev := traceEvent{
			space: rnd.Intn(4),
			addr:  rnd.Int63n(1 << 40),
			size:  1 << rnd.Intn(5),
		}
		switch rnd.Intn(3) {
		case 0:
			tr.OnAccess(ev.space, ev.addr, ev.size, false)
		case 1:
			ev.write = true
			tr.OnAccess(ev.space, ev.addr, ev.size, true)
		case 2:
			ev.atomic = true
			tr.OnAtomic(ev.space, ev.addr, ev.size)
		}
		want = append(want, ev)
	}
	if tr.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(want))
	}

	var got recObserver
	tr.Replay(&got)
	if len(got.events) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(got.events), len(want))
	}
	for i := range want {
		if got.events[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got.events[i], want[i])
		}
	}
}

// TestTraceRecycling checks a released trace comes back empty.
func TestTraceRecycling(t *testing.T) {
	tr := vm.NewTrace()
	tr.OnAccess(0, 64, 4, true)
	tr.Release()
	tr2 := vm.NewTrace()
	defer tr2.Release()
	if tr2.Len() != 0 {
		t.Fatalf("recycled trace has %d records, want 0", tr2.Len())
	}
}

// randomProfile fills every numeric field of a Profile with random
// values via reflection, so the permutation test cannot silently miss
// fields added later.
func randomProfile(rnd *rand.Rand) *vm.Profile {
	p := &vm.Profile{}
	v := reflect.ValueOf(p).Elem()
	fillRandom(v, rnd)
	return p
}

func fillRandom(v reflect.Value, rnd *rand.Rand) {
	switch v.Kind() {
	case reflect.Uint64:
		v.SetUint(uint64(rnd.Intn(1 << 20)))
	case reflect.Array, reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			fillRandom(v.Index(i), rnd)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillRandom(v.Field(i), rnd)
		}
	}
}

// TestProfileAddPermutationInvariant checks that merging per-group
// profiles is order-independent — the property the parallel engine
// relies on to report identical totals for any execution order.
func TestProfileAddPermutationInvariant(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rnd.Intn(32)
		parts := make([]*vm.Profile, n)
		for i := range parts {
			parts[i] = randomProfile(rnd)
		}

		var inOrder vm.Profile
		for _, p := range parts {
			inOrder.Add(p)
		}

		perm := rnd.Perm(n)
		var shuffled vm.Profile
		for _, i := range perm {
			shuffled.Add(parts[i])
		}

		if inOrder != shuffled {
			t.Fatalf("trial %d: merge order changed totals:\n in-order: %+v\n shuffled: %+v",
				trial, inOrder, shuffled)
		}
	}
}

// FuzzProfileAddCommutes fuzzes the two-profile case: a.Add(b) must
// equal b.Add(a).
func FuzzProfileAddCommutes(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(-7), int64(1<<40))
	f.Fuzz(func(t *testing.T, seedA, seedB int64) {
		a1 := randomProfile(rand.New(rand.NewSource(seedA)))
		b1 := randomProfile(rand.New(rand.NewSource(seedB)))
		a2 := *a1
		b2 := *b1
		a1.Add(b1)  // a+b
		b2.Add(&a2) // b+a
		if *a1 != b2 {
			t.Fatalf("Add not commutative:\n a+b: %+v\n b+a: %+v", *a1, b2)
		}
	})
}
