package vm_test

import (
	"testing"

	"maligo/internal/vm"
)

// TestLineProfilerAttributesAccesses builds a detailed trace by hand
// and checks per-line aggregation, ordering and totals.
func TestLineProfilerAttributesAccesses(t *testing.T) {
	tr := vm.NewTrace()
	defer tr.Release()
	tr.EnableDetail()

	// Work-item 0, phase 0: line 10 reads 16 bytes twice, line 12
	// writes 4 bytes; work-item 1: line 10 reads 16 bytes once, line
	// 14 does one atomic (write access + atomic marker).
	tr.OnContext(0, 0, 10)
	tr.OnAccess(0, 0, 16, false)
	tr.OnContext(0, 0, 10)
	tr.OnAccess(0, 64, 16, false)
	tr.OnContext(0, 0, 12)
	tr.OnAccess(0, 128, 4, true)
	tr.OnContext(1, 0, 10)
	tr.OnAccess(0, 256, 16, false)
	tr.OnContext(1, 0, 14)
	tr.OnAccess(0, 512, 4, true)
	tr.OnAtomic(0, 512, 4)

	p := vm.NewLineProfiler()
	p.ObserveGroup([3]int{0, 0, 0}, tr)

	top := p.Top(0)
	if len(top) != 3 {
		t.Fatalf("lines = %+v", top)
	}
	if top[0].Line != 10 || top[0].Bytes != 48 || top[0].Reads != 3 || top[0].Accesses != 3 {
		t.Errorf("hottest line = %+v, want line 10 with 48 bytes / 3 reads", top[0])
	}
	if top[1].Line != 12 || top[1].Writes != 1 || top[1].Bytes != 4 {
		t.Errorf("second line = %+v", top[1])
	}
	if top[2].Line != 14 || top[2].Atomics != 1 || top[2].Writes != 1 {
		t.Errorf("atomic line = %+v", top[2])
	}
	if got := p.TotalBytes(); got != 56 {
		t.Errorf("TotalBytes = %d, want 56", got)
	}
	if got := p.Top(1); len(got) != 1 || got[0].Line != 10 {
		t.Errorf("Top(1) = %+v", got)
	}
}

// TestLineProfilerIgnoresPlainTraces checks traces without detail mode
// contribute nothing (they carry no line attribution).
func TestLineProfilerIgnoresPlainTraces(t *testing.T) {
	tr := vm.NewTrace()
	defer tr.Release()
	tr.OnAccess(0, 0, 16, false)

	p := vm.NewLineProfiler()
	p.ObserveGroup([3]int{0, 0, 0}, tr)
	p.ObserveGroup([3]int{0, 0, 0}, nil)
	if got := p.Top(0); len(got) != 0 {
		t.Errorf("plain trace profiled: %+v", got)
	}
}
