package vm

import (
	"fmt"
	"os"
	"strings"
)

// Engine selects which of the VM's two execution engines runs a
// work-group.
//
// The interpreter (EngineInterp) is the reference engine: a simple
// switch-dispatch loop over the kernel IR, kept deliberately plain so
// its behaviour is auditable. The compiled engine (EngineCompiled)
// translates the IR once per kernel into a flat program of pre-decoded
// Go closures — operands resolved, register slots bound, common
// adjacent pairs fused into superinstructions — and caches the result
// on the kernel object. Both engines produce bit-identical memory
// contents, execution profiles, observer callback streams and faults;
// the differential test suite and FuzzEngineEquivalence enforce that,
// which is what lets the fast path be the default.
type Engine uint8

// Engines.
const (
	// EngineAuto selects the default engine (the compiled fast path).
	EngineAuto Engine = iota
	// EngineInterp forces the reference switch-dispatch interpreter.
	EngineInterp
	// EngineCompiled forces the closure-compiled fast path.
	EngineCompiled
)

func (e Engine) String() string {
	switch e {
	case EngineInterp:
		return "interp"
	case EngineCompiled:
		return "compiled"
	default:
		return "auto"
	}
}

// UseCompiled reports whether this engine choice runs the compiled
// fast path (EngineAuto resolves to the compiled engine).
func (e Engine) UseCompiled() bool { return e != EngineInterp }

// ParseEngine parses an engine name: "auto" (or empty), "interp" /
// "interpreter", "compiled".
func ParseEngine(s string) (Engine, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return EngineAuto, nil
	case "interp", "interpreter":
		return EngineInterp, nil
	case "compiled", "compile", "closure":
		return EngineCompiled, nil
	}
	return EngineAuto, fmt.Errorf("vm: unknown engine %q (auto, interp, compiled)", s)
}

// EngineEnvVar is the environment escape hatch consulted by
// EngineFromEnv: set MALIGO_ENGINE=interp to force the reference
// interpreter process-wide (e.g. to cross-check a result) without
// touching any code or flags.
const EngineEnvVar = "MALIGO_ENGINE"

// EngineFromEnv returns the engine selected by the MALIGO_ENGINE
// environment variable, or EngineAuto when unset or unparsable.
func EngineFromEnv() Engine {
	e, err := ParseEngine(os.Getenv(EngineEnvVar))
	if err != nil {
		return EngineAuto
	}
	return e
}
