package vm

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

// Engine selects which of the VM's three execution engines runs a
// work-group.
//
// The interpreter (EngineInterp) is the reference engine: a simple
// switch-dispatch loop over the kernel IR, kept deliberately plain so
// its behaviour is auditable. The compiled engine (EngineCompiled)
// translates the IR once per kernel into a flat program of pre-decoded
// Go closures — operands resolved, register slots bound, common
// adjacent pairs fused into superinstructions — and caches the result
// on the kernel object. The lane engine (EngineLanes) goes one tier
// further: it executes work-items in lock-step SIMT batches of
// LaneWidth lanes over the same pre-decoded units, amortizing every
// dispatch across the batch the way a Mali shader core amortizes
// instruction issue across a warp. All engines produce bit-identical
// memory contents, execution profiles, observer callback streams and
// faults; the differential test suite and FuzzEngineEquivalence
// enforce that three ways, which is what lets the fast paths be
// selectable without changing any observable.
type Engine uint8

// Engines.
const (
	// EngineAuto selects the default engine (the compiled fast path).
	EngineAuto Engine = iota
	// EngineInterp forces the reference switch-dispatch interpreter.
	EngineInterp
	// EngineCompiled forces the closure-compiled fast path.
	EngineCompiled
	// EngineLanes forces the lock-step lane-batched SIMT executor
	// (tier 3). Kernels using atomics fall back to the compiled engine
	// for the whole group — lock-step atomic interleaving cannot be
	// bit-identical to serial execution — so the observable contract
	// holds unconditionally.
	EngineLanes
)

func (e Engine) String() string {
	switch e {
	case EngineInterp:
		return "interp"
	case EngineCompiled:
		return "compiled"
	case EngineLanes:
		return "lanes"
	default:
		return "auto"
	}
}

// UseCompiled reports whether this engine choice runs pre-decoded
// units rather than the reference interpreter (EngineAuto resolves to
// the compiled engine; EngineLanes executes the lane program built
// from the same pre-decode).
func (e Engine) UseCompiled() bool { return e != EngineInterp }

// ErrUnknownEngine is the typed error ParseEngine wraps for
// unrecognized engine names, so flag and environment plumbing at every
// layer can errors.Is against it instead of matching strings.
var ErrUnknownEngine = errors.New("vm: unknown engine")

// ParseEngine parses an engine name: "auto" (or empty), "interp" /
// "interpreter", "compiled", "lanes" / "simt". Unknown names return an
// error wrapping ErrUnknownEngine.
func ParseEngine(s string) (Engine, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return EngineAuto, nil
	case "interp", "interpreter":
		return EngineInterp, nil
	case "compiled", "compile", "closure":
		return EngineCompiled, nil
	case "lanes", "lane", "simt":
		return EngineLanes, nil
	}
	return EngineAuto, fmt.Errorf("%w %q (auto, interp, compiled, lanes)", ErrUnknownEngine, s)
}

// EngineEnvVar is the environment escape hatch consulted by
// EngineFromEnv: set MALIGO_ENGINE=interp to force the reference
// interpreter process-wide (e.g. to cross-check a result) without
// touching any code or flags.
const EngineEnvVar = "MALIGO_ENGINE"

// EngineFromEnv returns the engine selected by the MALIGO_ENGINE
// environment variable, or EngineAuto when unset or unparsable.
// Entry points that can report errors should prefer
// EngineFromEnvStrict so a typo in the variable fails loudly instead
// of silently running the default engine.
func EngineFromEnv() Engine {
	e, err := ParseEngine(os.Getenv(EngineEnvVar))
	if err != nil {
		return EngineAuto
	}
	return e
}

// EngineFromEnvStrict returns the engine selected by MALIGO_ENGINE,
// or an error wrapping ErrUnknownEngine when the variable is set to an
// unparsable value. An unset (or empty) variable is EngineAuto.
func EngineFromEnvStrict() (Engine, error) {
	return ParseEngine(os.Getenv(EngineEnvVar))
}
