package vm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// LineStat aggregates the memory behaviour attributed to one kernel
// source line: how many memory instructions it executed and how many
// bytes they moved. It is the unit of the pprof-style hot-line report.
type LineStat struct {
	// Line is the 1-based source line (0 collects accesses the
	// compiler could not attribute).
	Line int
	// Accesses counts memory instructions (loads + stores + atomics).
	Accesses uint64
	Reads    uint64
	Writes   uint64
	Atomics  uint64
	// Bytes is the total bytes moved by this line's accesses — the
	// quantity that dominates Mali load/store-pipe occupancy.
	Bytes uint64
}

// LineProfiler consumes detailed work-group traces (Trace with
// EnableDetail) and attributes every memory access to its source line.
// It implements the device layer's trace-observer hook, like
// RaceDetector does, and may share an enqueue with it via
// device.FanObservers. Safe for concurrent use; the engine's ordered
// fan-in serializes calls anyway.
type LineProfiler struct {
	mu    sync.Mutex
	lines map[int]*LineStat
}

// NewLineProfiler creates an empty profiler.
func NewLineProfiler() *LineProfiler {
	return &LineProfiler{lines: make(map[int]*LineStat)}
}

// ObserveGroup folds one work-group's detailed trace into the profile.
// Traces recorded without detail mode carry no line attribution and
// are ignored.
func (p *LineProfiler) ObserveGroup(group [3]int, tr *Trace) {
	if tr == nil || !tr.detail {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range tr.recs {
		rec := &tr.recs[i]
		if rec.kind == recCtx {
			continue
		}
		st := p.lines[int(rec.line)]
		if st == nil {
			st = &LineStat{Line: int(rec.line)}
			p.lines[int(rec.line)] = st
		}
		switch rec.kind {
		case recAtomic:
			// Atomics record as a write access plus an atomic marker;
			// the access itself was already counted.
			st.Atomics++
			continue
		case recWrite:
			st.Writes++
		default:
			st.Reads++
		}
		st.Accesses++
		st.Bytes += uint64(rec.size)
	}
}

// Top returns the n hottest lines by bytes moved (ties broken by line
// number); n <= 0 returns every line.
func (p *LineProfiler) Top(n int) []LineStat {
	p.mu.Lock()
	out := make([]LineStat, 0, len(p.lines))
	for _, st := range p.lines { // maligo:allow maporder sorted below
		out = append(out, *st)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Line < out[j].Line
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TotalBytes returns the bytes moved across every profiled line.
func (p *LineProfiler) TotalBytes() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total uint64
	for _, st := range p.lines { // maligo:allow maporder sum commutes
		total += st.Bytes
	}
	return total
}

// FormatHotLines renders line stats as a pprof-style top report, one
// line per entry, annotated with the kernel source text when source is
// non-empty. The percentage column is each line's share of the total
// bytes moved across stats.
func FormatHotLines(stats []LineStat, source string) string {
	var srcLines []string
	if source != "" {
		srcLines = strings.Split(source, "\n")
	}
	var total uint64
	for _, st := range stats {
		total += st.Bytes
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %7s %10s %10s %8s  %s\n", "bytes", "%", "reads", "writes", "atomics", "line")
	for _, st := range stats {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(st.Bytes) / float64(total)
		}
		fmt.Fprintf(&b, "%10d %6.2f%% %10d %10d %8d  #%d", st.Bytes, pct, st.Reads, st.Writes, st.Atomics, st.Line)
		if st.Line >= 1 && st.Line <= len(srcLines) {
			fmt.Fprintf(&b, ": %s", strings.TrimSpace(srcLines[st.Line-1]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
