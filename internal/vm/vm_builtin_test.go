package vm_test

import (
	"fmt"
	"math"
	"testing"

	"maligo/internal/clc"
	"maligo/internal/clc/ir"
	"maligo/internal/vm"
)

// evalFloatBuiltin compiles `out[0] = <expr>` with float scalars a, b
// and returns the result.
func evalFloatBuiltin(t *testing.T, expr string, a, b float64) float32 {
	t.Helper()
	src := fmt.Sprintf(
		`__kernel void f(__global float* out, const float a, const float b) { out[0] = %s; }`, expr)
	prog, err := clc.Compile("b.cl", src, "")
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	mem := newFlatMem(8, nil)
	cfg := &vm.GroupConfig{
		Kernel:     prog.Kernel("f"),
		WorkDim:    1,
		LocalSize:  [3]int{1, 1, 1},
		GlobalSize: [3]int{1, 1, 1},
		Args: []vm.ArgValue{
			{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}, {F: a}, {F: b},
		},
		Mem: mem,
	}
	if err := vm.RunGroup(cfg, &vm.Profile{}); err != nil {
		t.Fatalf("run %q: %v", expr, err)
	}
	return mem.getF32(0)
}

// TestMathBuiltinConformance exercises every float math builtin
// against its Go reference with float32 rounding.
func TestMathBuiltinConformance(t *testing.T) {
	f32 := func(v float64) float32 { return float32(v) }
	cases := []struct {
		expr string
		ref  func(a, b float64) float64
	}{
		{"sqrt(a)", func(a, b float64) float64 { return math.Sqrt(a) }},
		{"rsqrt(a)", func(a, b float64) float64 { return 1 / math.Sqrt(a) }},
		{"cbrt(a)", func(a, b float64) float64 { return math.Cbrt(a) }},
		{"exp(a)", func(a, b float64) float64 { return math.Exp(a) }},
		{"exp2(a)", func(a, b float64) float64 { return math.Exp2(a) }},
		{"log(a)", func(a, b float64) float64 { return math.Log(a) }},
		{"log2(a)", func(a, b float64) float64 { return math.Log2(a) }},
		{"sin(a)", func(a, b float64) float64 { return math.Sin(a) }},
		{"cos(a)", func(a, b float64) float64 { return math.Cos(a) }},
		{"tan(a)", func(a, b float64) float64 { return math.Tan(a) }},
		{"fabs(-a)", func(a, b float64) float64 { return math.Abs(-a) }},
		{"floor(a)", func(a, b float64) float64 { return math.Floor(a) }},
		{"ceil(a)", func(a, b float64) float64 { return math.Ceil(a) }},
		{"round(a)", func(a, b float64) float64 { return math.Round(a) }},
		{"trunc(a)", func(a, b float64) float64 { return math.Trunc(a) }},
		{"pow(a, b)", math.Pow},
		{"hypot(a, b)", math.Hypot},
		{"fmod(a, b)", math.Mod},
		{"fmin(a, b)", math.Min},
		{"fmax(a, b)", math.Max},
		{"native_sqrt(a)", func(a, b float64) float64 { return math.Sqrt(a) }},
		{"native_rsqrt(a)", func(a, b float64) float64 { return 1 / math.Sqrt(a) }},
		{"native_recip(a)", func(a, b float64) float64 { return 1 / a }},
		{"native_divide(a, b)", func(a, b float64) float64 { return a / b }},
		{"native_sin(a)", func(a, b float64) float64 { return math.Sin(a) }},
		{"native_cos(a)", func(a, b float64) float64 { return math.Cos(a) }},
		{"native_exp(a)", func(a, b float64) float64 { return math.Exp(a) }},
		{"native_log(a)", func(a, b float64) float64 { return math.Log(a) }},
		{"fma(a, b, a)", func(a, b float64) float64 { return a*b + a }},
		{"mad(a, b, b)", func(a, b float64) float64 { return a*b + b }},
		{"mix(a, b, 0.25f)", func(a, b float64) float64 { return a + (b-a)*float64(float32(0.25)) }},
		{"step(a, b)", func(a, b float64) float64 {
			if b < a {
				return 0
			}
			return 1
		}},
		{"clamp(a, 1.0f, 2.0f)", func(a, b float64) float64 { return math.Min(math.Max(a, 1), 2) }},
	}
	inputs := [][2]float64{{0.5, 1.5}, {2.25, 3.0}, {1.0, 0.125}}
	for _, c := range cases {
		for _, in := range inputs {
			got := evalFloatBuiltin(t, c.expr, in[0], in[1])
			want := f32(c.ref(float64(float32(in[0])), float64(float32(in[1]))))
			// Single-step rounding tolerance: the VM rounds the final
			// result to float32 but computes internally in float64.
			if got != want && math.Abs(float64(got-want)) > 1e-6*math.Abs(float64(want)) {
				t.Errorf("%s with %v: VM=%v Go=%v", c.expr, in, got, want)
			}
		}
	}
}

func TestGeometricBuiltins(t *testing.T) {
	src := `
__kernel void g(__global float* out) {
    float4 a = (float4)(1.0f, 2.0f, 3.0f, 4.0f);
    float4 b = (float4)(0.5f, 0.5f, 0.5f, 0.5f);
    out[0] = dot(a, b);
    out[1] = length(b);
    out[2] = distance(a, b);
    float4 n = normalize(a);
    out[3] = dot(n, n); // should be ~1
    float2 c = (float2)(3.0f, 4.0f);
    out[4] = length(c); // 5
}`
	prog, err := clc.Compile("g.cl", src, "")
	if err != nil {
		t.Fatal(err)
	}
	mem := newFlatMem(32, nil)
	cfg := &vm.GroupConfig{
		Kernel:     prog.Kernel("g"),
		WorkDim:    1,
		LocalSize:  [3]int{1, 1, 1},
		GlobalSize: [3]int{1, 1, 1},
		Args:       []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}},
		Mem:        mem,
	}
	if err := vm.RunGroup(cfg, &vm.Profile{}); err != nil {
		t.Fatal(err)
	}
	approx := func(off int, want float64, what string) {
		got := float64(mem.getF32(off * 4))
		if math.Abs(got-want) > 1e-5*math.Max(1, math.Abs(want)) {
			t.Errorf("%s = %v, want %v", what, got, want)
		}
	}
	approx(0, 5, "dot")
	approx(1, 1, "length(b)")
	approx(2, math.Sqrt(0.25+2.25+6.25+12.25), "distance")
	approx(3, 1, "dot(normalize, normalize)")
	approx(4, 5, "length(3,4)")
}

func TestIntegerBuiltins(t *testing.T) {
	src := `
__kernel void ib(__global int* out, const int a, const int b) {
    out[0] = min(a, b);
    out[1] = max(a, b);
    out[2] = abs(a);
    out[3] = clamp(a, -5, 5);
    out[4] = select(a, b, a < b);
    uint ua = (uint)a;
    uint ub = (uint)b;
    out[5] = (int)min(ua, ub); // unsigned comparison
}`
	prog, err := clc.Compile("ib.cl", src, "")
	if err != nil {
		t.Fatal(err)
	}
	run := func(a, b int32) []int32 {
		mem := newFlatMem(64, nil)
		cfg := &vm.GroupConfig{
			Kernel:     prog.Kernel("ib"),
			WorkDim:    1,
			LocalSize:  [3]int{1, 1, 1},
			GlobalSize: [3]int{1, 1, 1},
			Args: []vm.ArgValue{
				{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
				{Bits: int64(a)}, {Bits: int64(b)},
			},
			Mem: mem,
		}
		if err := vm.RunGroup(cfg, &vm.Profile{}); err != nil {
			t.Fatal(err)
		}
		out, _ := readI32s(mem, 6)
		return out
	}
	got := run(-7, 3)
	want := []int32{-7, 3, 7, -5, -7 /* select(a,b,cond): cond true picks b? OpenCL: select(a,b,c)=c?b:a; a<b true -> b=3 */, 3}
	// Recompute element 4 per OpenCL semantics: select(a, b, c) returns
	// b when c is true.
	want[4] = 3
	// Unsigned min of 0xFFFFFFF9 and 3 is 3.
	want[5] = 3
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func readI32s(m *flatMem, n int) ([]int32, error) {
	out := make([]int32, n)
	for i := range out {
		out[i] = m.getI32(i * 4)
	}
	return out, nil
}

func TestAllAtomicOps(t *testing.T) {
	src := `
__kernel void at(__global int* p) {
    atomic_add(&p[0], 5);
    atomic_sub(&p[1], 3);
    atomic_inc(&p[2]);
    atomic_dec(&p[3]);
    int old = atomic_xchg(&p[4], 99);
    p[5] = old;
    atomic_min(&p[6], -10);
    atomic_max(&p[7], 10);
    atomic_and(&p[8], 12);
    atomic_or(&p[9], 12);
    atomic_xor(&p[10], 12);
    atomic_cmpxchg(&p[11], 7, 42);   // matches: becomes 42
    atomic_cmpxchg(&p[12], 99, 42);  // no match: stays
}`
	prog, err := clc.Compile("at.cl", src, "")
	if err != nil {
		t.Fatal(err)
	}
	mem := newFlatMem(64, nil)
	init := []int32{100, 100, 100, 100, 7, 0, 0, 0, 10, 10, 10, 7, 7}
	for i, v := range init {
		mem.putI32(i*4, v)
	}
	cfg := &vm.GroupConfig{
		Kernel:     prog.Kernel("at"),
		WorkDim:    1,
		LocalSize:  [3]int{1, 1, 1},
		GlobalSize: [3]int{1, 1, 1},
		Args:       []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}},
		Mem:        mem,
	}
	if err := vm.RunGroup(cfg, &vm.Profile{}); err != nil {
		t.Fatal(err)
	}
	want := []int32{105, 97, 101, 99, 99, 7, -10, 10, 8, 14, 6, 42, 7}
	for i, w := range want {
		if got := mem.getI32(i * 4); got != w {
			t.Errorf("p[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestConvertAndAsFunctions(t *testing.T) {
	src := `
__kernel void cv(__global float* fo, __global int* io) {
    int4 iv = (int4)(1, 2, 3, 4);
    float4 fv = convert_float4(iv);
    vstore4(fv * (float4)(0.5f), 0, fo);
    float x = -3.7f;
    io[0] = convert_int(x); // truncation toward zero: -3
    uchar c = convert_uchar(300); // wraps to 44
    io[1] = (int)c;
}`
	prog, err := clc.Compile("cv.cl", src, "")
	if err != nil {
		t.Fatal(err)
	}
	mem := newFlatMem(64, nil)
	cfg := &vm.GroupConfig{
		Kernel:     prog.Kernel("cv"),
		WorkDim:    1,
		LocalSize:  [3]int{1, 1, 1},
		GlobalSize: [3]int{1, 1, 1},
		Args: []vm.ArgValue{
			{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
			{Bits: ir.EncodeAddr(ir.SpaceGlobal, 32)},
		},
		Mem: mem,
	}
	if err := vm.RunGroup(cfg, &vm.Profile{}); err != nil {
		t.Fatal(err)
	}
	for i, w := range []float32{0.5, 1, 1.5, 2} {
		if got := mem.getF32(i * 4); got != w {
			t.Errorf("fo[%d] = %v, want %v", i, got, w)
		}
	}
	if got := mem.getI32(32); got != -3 {
		t.Errorf("convert_int(-3.7) = %d, want -3", got)
	}
	if got := mem.getI32(36); got != 44 {
		t.Errorf("convert_uchar(300) = %d, want 44", got)
	}
}
