package vm_test

import (
	"testing"

	"maligo/internal/clc/ir"
	"maligo/internal/vm"
)

// runGroupTraced executes one work-group against a detail trace and
// feeds it to a fresh race detector.
func runGroupTraced(t *testing.T, k *ir.Kernel, local int, args []vm.ArgValue, mem vm.GlobalMemory) []vm.DataRace {
	t.Helper()
	tr := vm.NewTrace()
	defer tr.Release()
	tr.EnableDetail()
	cfg := &vm.GroupConfig{
		Kernel:     k,
		WorkDim:    1,
		LocalSize:  [3]int{local, 1, 1},
		GlobalSize: [3]int{local, 1, 1},
		Args:       args,
		Mem:        mem,
		Observer:   tr,
	}
	prof := &vm.Profile{}
	if err := vm.RunGroup(cfg, prof); err != nil {
		t.Fatalf("RunGroup: %v", err)
	}
	det := &vm.RaceDetector{Kernel: k.Name}
	det.ObserveGroup([3]int{0, 0, 0}, tr)
	return det.Races()
}

const raceLocalSrc = `
__kernel void shift(__global float* out, __local float* tile) {
    int lid = get_local_id(0);
    tile[lid] = (float)lid;
    out[get_global_id(0)] = tile[lid + 1];
}

__kernel void shift_fixed(__global float* out, __local float* tile) {
    int lid = get_local_id(0);
    tile[lid] = (float)lid;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = tile[lid + 1];
}
`

func TestRaceDetectorLocalShift(t *testing.T) {
	prog := mustCompile(t, raceLocalSrc, "")
	const local = 8
	mem := newFlatMem(4096, nil)
	args := []vm.ArgValue{
		{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
		{LocalSize: (local + 1) * 4},
	}

	races := runGroupTraced(t, prog.Kernel("shift"), local, args, mem)
	if len(races) == 0 {
		t.Fatal("unsynchronized neighbour read: no race detected")
	}
	r := races[0]
	if r.Space != ir.SpaceLocal {
		t.Errorf("race space = %d, want local: %v", r.Space, r)
	}
	if r.ItemA == r.ItemB {
		t.Errorf("race between a work-item and itself: %v", r)
	}
	if !r.WriteA && !r.WriteB {
		t.Errorf("read/read pair reported as race: %v", r)
	}
	if r.LineA == 0 || r.LineB == 0 {
		t.Errorf("race lost source positions: %v", r)
	}
	if r.Kernel != "shift" {
		t.Errorf("race kernel = %q, want shift", r.Kernel)
	}

	// The barrier separates the write phase from the read phase: the
	// same access pattern must come back clean.
	races = runGroupTraced(t, prog.Kernel("shift_fixed"), local, args, mem)
	if len(races) != 0 {
		t.Fatalf("barrier-synchronized kernel reported racy: %v", races)
	}
}

const raceGlobalSrc = `
__kernel void clobber(__global int* out) {
    out[0] = (int)get_local_id(0);
}

__kernel void counter(__global int* out) {
    atomic_add(&out[0], 1);
}
`

func TestRaceDetectorGlobalAndAtomics(t *testing.T) {
	prog := mustCompile(t, raceGlobalSrc, "")
	mem := newFlatMem(4096, nil)
	args := []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}}

	races := runGroupTraced(t, prog.Kernel("clobber"), 4, args, mem)
	if len(races) == 0 {
		t.Fatal("conflicting stores to out[0] not detected")
	}
	if r := races[0]; !r.WriteA || !r.WriteB || r.Space != ir.SpaceGlobal {
		t.Errorf("expected global write/write race, got %v", r)
	}

	// Atomic read-modify-writes on the same counter are synchronized by
	// definition and must not be reported.
	races = runGroupTraced(t, prog.Kernel("counter"), 4, args, mem)
	if len(races) != 0 {
		t.Fatalf("atomic counter reported racy: %v", races)
	}
}

// TestRaceDetectorIgnoresPlainTrace checks that a trace recorded
// without detail mode (the normal timing path) yields nothing — the
// detector must not guess attributions.
func TestRaceDetectorIgnoresPlainTrace(t *testing.T) {
	prog := mustCompile(t, raceGlobalSrc, "")
	mem := newFlatMem(4096, nil)
	tr := vm.NewTrace()
	defer tr.Release()
	cfg := &vm.GroupConfig{
		Kernel:     prog.Kernel("clobber"),
		WorkDim:    1,
		LocalSize:  [3]int{4, 1, 1},
		GlobalSize: [3]int{4, 1, 1},
		Args:       []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}},
		Mem:        mem,
		Observer:   tr,
	}
	if err := vm.RunGroup(cfg, &vm.Profile{}); err != nil {
		t.Fatal(err)
	}
	det := &vm.RaceDetector{Kernel: "clobber"}
	det.ObserveGroup([3]int{0, 0, 0}, tr)
	if races := det.Races(); len(races) != 0 {
		t.Fatalf("detail-less trace produced races: %v", races)
	}
}

// TestTeeForwardsContext checks that a Tee of a cache-model-style
// observer and a detail trace still records attributions, and that
// replaying the detailed trace into a plain observer sees the same
// memory events as direct observation.
func TestTeeForwardsContext(t *testing.T) {
	prog := mustCompile(t, raceLocalSrc, "")
	const local = 8
	mem := newFlatMem(4096, nil)
	args := []vm.ArgValue{
		{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
		{LocalSize: (local + 1) * 4},
	}

	plain := vm.NewTrace()
	detail := vm.NewTrace()
	detail.EnableDetail()
	defer plain.Release()
	defer detail.Release()
	cfg := &vm.GroupConfig{
		Kernel:     prog.Kernel("shift"),
		WorkDim:    1,
		LocalSize:  [3]int{local, 1, 1},
		GlobalSize: [3]int{local, 1, 1},
		Args:       args,
		Mem:        mem,
		Observer:   vm.Tee(plain, detail),
	}
	if err := vm.RunGroup(cfg, &vm.Profile{}); err != nil {
		t.Fatal(err)
	}
	det := &vm.RaceDetector{Kernel: "shift"}
	det.ObserveGroup([3]int{0, 0, 0}, detail)
	if len(det.Races()) == 0 {
		t.Fatal("tee dropped context: no race detected from detailed side")
	}

	// Replay of the detailed trace must reproduce exactly the plain
	// trace's event stream (context records are skipped).
	replayed := vm.NewTrace()
	defer replayed.Release()
	detail.Replay(replayed)
	if replayed.Len() != plain.Len() {
		t.Fatalf("replayed detailed trace has %d events, plain observation %d", replayed.Len(), plain.Len())
	}
}
