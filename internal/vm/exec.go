package vm

import (
	"encoding/binary"
	"fmt"
	"math"

	"maligo/internal/clc/builtin"
	"maligo/internal/clc/ir"
	"maligo/internal/clc/types"
)

// run executes the current work-item until it returns or, when
// stopAtBarrier is set, until it executes a barrier. On barrier the
// state's pc points past the barrier so execution resumes correctly.
func (r *groupRunner) run(st *wiState, stopAtBarrier bool) error {
	if st.pc == 0 && !st.atBar {
		r.bindArgs(st)
	}
	code := r.k.Code
	prof := r.prof
	for {
		if st.pc < 0 || st.pc >= len(code) {
			return fmt.Errorf("vm: pc %d out of range in kernel %s", st.pc, r.k.Name)
		}
		in := &code[st.pc]
		st.pc++
		r.steps++
		if r.steps > r.limit {
			return ErrStepLimit
		}
		prof.Instrs++
		w := int(in.Width)
		if w == 0 {
			w = 1
		}
		switch in.Op {
		case ir.Nop:
		case ir.MovI:
			copy(st.ii[in.A:int(in.A)+w], st.ii[in.B:int(in.B)+w])
		case ir.MovF:
			copy(st.ff[in.A:int(in.A)+w], st.ff[in.B:int(in.B)+w])
		case ir.ImmI:
			for l := 0; l < w; l++ {
				st.ii[int(in.A)+l] = in.Imm
			}
		case ir.ImmF:
			for l := 0; l < w; l++ {
				st.ff[int(in.A)+l] = in.FImm
			}
		case ir.BcastI:
			v := st.ii[in.B]
			for l := 0; l < w; l++ {
				st.ii[int(in.A)+l] = v
			}
		case ir.BcastF:
			v := st.ff[in.B]
			for l := 0; l < w; l++ {
				st.ff[int(in.A)+l] = v
			}

		case ir.AddI, ir.SubI, ir.MulI, ir.DivI, ir.RemI,
			ir.AndI, ir.OrI, ir.XorI, ir.ShlI, ir.ShrI:
			countInt(prof, in.Base, w)
			execIntBin(in, st, w)
		case ir.NegI:
			countInt(prof, in.Base, w)
			for l := 0; l < w; l++ {
				st.ii[int(in.A)+l] = wrapInt(in.Base, -st.ii[int(in.B)+l])
			}
		case ir.NotI:
			countInt(prof, in.Base, w)
			for l := 0; l < w; l++ {
				st.ii[int(in.A)+l] = wrapInt(in.Base, ^st.ii[int(in.B)+l])
			}

		case ir.AddF, ir.SubF, ir.MulF, ir.DivF:
			countFloat(prof, in.Base, w)
			execFloatBin(in, st, w)
		case ir.NegF:
			countFloat(prof, in.Base, w)
			for l := 0; l < w; l++ {
				st.ff[int(in.A)+l] = roundBase(in.Base, -st.ff[int(in.B)+l])
			}

		case ir.CmpEqI, ir.CmpNeI, ir.CmpLtI, ir.CmpLeI:
			countInt(prof, in.Base, w)
			execIntCmp(in, st, w)
		case ir.CmpEqF, ir.CmpNeF, ir.CmpLtF, ir.CmpLeF:
			countFloat(prof, in.Base, w)
			execFloatCmp(in, st, w)

		case ir.SelI:
			countInt(prof, in.Base, w)
			for l := 0; l < w; l++ {
				if st.ii[int(in.B)+l] != 0 {
					st.ii[int(in.A)+l] = st.ii[int(in.C)+l]
				} else {
					st.ii[int(in.A)+l] = st.ii[int(in.D)+l]
				}
			}
		case ir.SelF:
			countFloat(prof, in.Base, w)
			for l := 0; l < w; l++ {
				if st.ii[int(in.B)+l] != 0 {
					st.ff[int(in.A)+l] = st.ff[int(in.C)+l]
				} else {
					st.ff[int(in.A)+l] = st.ff[int(in.D)+l]
				}
			}

		case ir.CvtII:
			countInt(prof, in.Base, w)
			for l := 0; l < w; l++ {
				v := st.ii[int(in.B)+l]
				if in.Base == types.Bool {
					if v != 0 {
						v = 1
					}
				} else {
					v = wrapInt(in.Base, v)
				}
				st.ii[int(in.A)+l] = v
			}
		case ir.CvtIF:
			countFloat(prof, in.Base, w)
			for l := 0; l < w; l++ {
				var f float64
				if in.Base2.IsSigned() || in.Base2 == types.Bool {
					f = float64(st.ii[int(in.B)+l])
				} else {
					f = float64(uint64(st.ii[int(in.B)+l]))
				}
				st.ff[int(in.A)+l] = roundBase(in.Base, f)
			}
		case ir.CvtFI:
			countInt(prof, in.Base, w)
			for l := 0; l < w; l++ {
				f := st.ff[int(in.B)+l]
				var v int64
				switch {
				case math.IsNaN(f):
					v = 0
				case f >= math.MaxInt64:
					v = math.MaxInt64
				case f <= math.MinInt64:
					v = math.MinInt64
				default:
					v = int64(f)
				}
				st.ii[int(in.A)+l] = wrapInt(in.Base, v)
			}
		case ir.CvtFF:
			countFloat(prof, in.Base, w)
			for l := 0; l < w; l++ {
				st.ff[int(in.A)+l] = roundBase(in.Base, st.ff[int(in.B)+l])
			}

		case ir.LoadI, ir.LoadF:
			if err := r.execLoad(in, st, w); err != nil {
				return err
			}
		case ir.StoreI, ir.StoreF:
			if err := r.execStore(in, st, w); err != nil {
				return err
			}

		case ir.CallB:
			if err := r.execBuiltin(in, st, w); err != nil {
				return err
			}
		case ir.AtomicOp:
			if err := r.execAtomic(in, st); err != nil {
				return err
			}
		case ir.BarrierOp:
			prof.Barriers++
			if stopAtBarrier {
				st.atBar = true
				return nil
			}
			// Single-item groups (or the fast path, which is only used
			// for barrier-free kernels) treat barrier as a no-op.

		case ir.Jmp:
			st.pc = int(in.Imm)
		case ir.JmpIf:
			if st.ii[in.B] != 0 {
				st.pc = int(in.Imm)
			}
		case ir.JmpIfZ:
			if st.ii[in.B] == 0 {
				st.pc = int(in.Imm)
			}
		case ir.Ret:
			st.done = true
			return nil
		default:
			return fmt.Errorf("vm: unknown opcode %v", in.Op)
		}
	}
}

func countFloat(prof *Profile, base types.Base, w int) {
	if base == types.Double {
		prof.F64Instrs++
		prof.F64Lanes += uint64(w)
	} else {
		prof.F32Instrs++
		prof.F32Lanes += uint64(w)
	}
	prof.ArithSlots128 += slots128(base, w)
}

// countInt accounts one integer arithmetic instruction of width w.
func countInt(prof *Profile, base types.Base, w int) {
	prof.IntInstrs++
	prof.IntLanes += uint64(w)
	prof.ArithSlots128 += slots128(base, w)
}

// slots128 is the number of 128-bit SIMD issue slots an instruction of
// the given element type and lane count occupies.
func slots128(base types.Base, w int) uint64 {
	size := base.Size()
	if size == 0 {
		size = 4
	}
	n := (w*size + 15) / 16
	if n < 1 {
		n = 1
	}
	return uint64(n)
}

// wrapInt reduces v modulo the base's size with the base's signedness.
func wrapInt(base types.Base, v int64) int64 {
	switch base {
	case types.Bool:
		if v != 0 {
			return 1
		}
		return 0
	case types.Char:
		return int64(int8(v))
	case types.UChar:
		return int64(uint8(v))
	case types.Short:
		return int64(int16(v))
	case types.UShort:
		return int64(uint16(v))
	case types.Int:
		return int64(int32(v))
	case types.UInt:
		return int64(uint32(v))
	}
	return v // long/ulong: native width
}

// roundBase applies float32 rounding when base is Float.
func roundBase(base types.Base, f float64) float64 {
	if base == types.Float {
		return float64(float32(f))
	}
	return f
}

func execIntBin(in *ir.Instr, st *wiState, w int) {
	signed := in.Base.IsSigned()
	size := in.Base.Size()
	for l := 0; l < w; l++ {
		a := st.ii[int(in.B)+l]
		b := st.ii[int(in.C)+l]
		var v int64
		switch in.Op {
		case ir.AddI:
			v = a + b
		case ir.SubI:
			v = a - b
		case ir.MulI:
			v = a * b
		case ir.DivI:
			if b == 0 {
				v = 0
			} else if signed {
				v = a / b
			} else {
				v = int64(uint64(a) / uint64(b))
			}
		case ir.RemI:
			if b == 0 {
				v = 0
			} else if signed {
				v = a % b
			} else {
				v = int64(uint64(a) % uint64(b))
			}
		case ir.AndI:
			v = a & b
		case ir.OrI:
			v = a | b
		case ir.XorI:
			v = a ^ b
		case ir.ShlI:
			v = a << (uint64(b) & uint64(size*8-1))
		case ir.ShrI:
			sh := uint64(b) & uint64(size*8-1)
			if signed {
				v = a >> sh
			} else {
				switch size {
				case 1:
					v = int64(uint8(a) >> sh)
				case 2:
					v = int64(uint16(a) >> sh)
				case 4:
					v = int64(uint32(a) >> sh)
				default:
					v = int64(uint64(a) >> sh)
				}
			}
		}
		st.ii[int(in.A)+l] = wrapInt(in.Base, v)
	}
}

func execFloatBin(in *ir.Instr, st *wiState, w int) {
	for l := 0; l < w; l++ {
		a := st.ff[int(in.B)+l]
		b := st.ff[int(in.C)+l]
		var v float64
		switch in.Op {
		case ir.AddF:
			v = a + b
		case ir.SubF:
			v = a - b
		case ir.MulF:
			v = a * b
		case ir.DivF:
			v = a / b
		}
		st.ff[int(in.A)+l] = roundBase(in.Base, v)
	}
}

func execIntCmp(in *ir.Instr, st *wiState, w int) {
	signed := in.Base.IsSigned()
	for l := 0; l < w; l++ {
		a := st.ii[int(in.B)+l]
		b := st.ii[int(in.C)+l]
		var t bool
		switch in.Op {
		case ir.CmpEqI:
			t = a == b
		case ir.CmpNeI:
			t = a != b
		case ir.CmpLtI:
			if signed {
				t = a < b
			} else {
				t = uint64(a) < uint64(b)
			}
		case ir.CmpLeI:
			if signed {
				t = a <= b
			} else {
				t = uint64(a) <= uint64(b)
			}
		}
		if t {
			st.ii[int(in.A)+l] = 1
		} else {
			st.ii[int(in.A)+l] = 0
		}
	}
}

func execFloatCmp(in *ir.Instr, st *wiState, w int) {
	for l := 0; l < w; l++ {
		a := st.ff[int(in.B)+l]
		b := st.ff[int(in.C)+l]
		var t bool
		switch in.Op {
		case ir.CmpEqF:
			t = a == b
		case ir.CmpNeF:
			t = a != b
		case ir.CmpLtF:
			t = a < b
		case ir.CmpLeF:
			t = a <= b
		}
		if t {
			st.ii[int(in.A)+l] = 1
		} else {
			st.ii[int(in.A)+l] = 0
		}
	}
}

// --- memory ------------------------------------------------------------------

// loadBits reads size bytes at a tagged address.
func (r *groupRunner) loadBits(addr int64, size int) (uint64, error) {
	space, off := ir.DecodeAddr(addr)
	switch space {
	case ir.SpaceLocal:
		return sliceLoad(r.local, off, size)
	case ir.SpacePrivate:
		return sliceLoad(r.cur.priv, off, size)
	default:
		return r.cfg.Mem.LoadBits(space, off, size)
	}
}

func (r *groupRunner) storeBits(addr int64, size int, bits uint64) error {
	space, off := ir.DecodeAddr(addr)
	switch space {
	case ir.SpaceLocal:
		return sliceStore(r.local, off, size, bits)
	case ir.SpacePrivate:
		return sliceStore(r.cur.priv, off, size, bits)
	default:
		return r.cfg.Mem.StoreBits(space, off, size, bits)
	}
}

func sliceLoad(mem []byte, off int64, size int) (uint64, error) {
	if off < 0 || off+int64(size) > int64(len(mem)) {
		return 0, fmt.Errorf("vm: out-of-bounds load at offset %d (size %d, arena %d)", off, size, len(mem))
	}
	switch size {
	case 4:
		return uint64(binary.LittleEndian.Uint32(mem[off:])), nil
	case 8:
		return binary.LittleEndian.Uint64(mem[off:]), nil
	case 1:
		return uint64(mem[off]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(mem[off:])), nil
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(mem[off+int64(i)])
	}
	return v, nil
}

func sliceStore(mem []byte, off int64, size int, bits uint64) error {
	if off < 0 || off+int64(size) > int64(len(mem)) {
		return fmt.Errorf("vm: out-of-bounds store at offset %d (size %d, arena %d)", off, size, len(mem))
	}
	switch size {
	case 4:
		binary.LittleEndian.PutUint32(mem[off:], uint32(bits))
		return nil
	case 8:
		binary.LittleEndian.PutUint64(mem[off:], bits)
		return nil
	case 1:
		mem[off] = byte(bits)
		return nil
	case 2:
		binary.LittleEndian.PutUint16(mem[off:], uint16(bits))
		return nil
	}
	for i := 0; i < size; i++ {
		mem[off+int64(i)] = byte(bits >> (8 * uint(i)))
	}
	return nil
}

func (r *groupRunner) execLoad(in *ir.Instr, st *wiState, w int) error {
	size := in.Base.Size()
	addr := st.ii[in.B]
	space, _ := ir.DecodeAddr(addr)
	r.prof.LoadInstrs++
	r.prof.LSSlots128 += slots128(in.Base, w)
	r.prof.LSLanes += uint64(w)
	if space == ir.SpacePrivate {
		r.prof.PrivateAccesses++
	}
	r.prof.BytesRead[space&3] += uint64(size * w)
	if r.cfg.Observer != nil {
		if r.ctxObs != nil {
			r.ctxObs.OnContext(r.item, r.phase, in.Pos.Line)
		}
		r.cfg.Observer.OnAccess(space, addr, size*w, false)
	}
	for l := 0; l < w; l++ {
		bits, err := r.loadBits(addr+int64(l*size), size)
		if err != nil {
			return err
		}
		if in.Op == ir.LoadF {
			st.ff[int(in.A)+l] = bitsToFloat(in.Base, bits)
		} else {
			st.ii[int(in.A)+l] = bitsToInt(in.Base, bits)
		}
	}
	return nil
}

func (r *groupRunner) execStore(in *ir.Instr, st *wiState, w int) error {
	size := in.Base.Size()
	addr := st.ii[in.B]
	space, _ := ir.DecodeAddr(addr)
	r.prof.StoreInstrs++
	r.prof.LSSlots128 += slots128(in.Base, w)
	r.prof.LSLanes += uint64(w)
	if space == ir.SpacePrivate {
		r.prof.PrivateAccesses++
	}
	r.prof.BytesWritten[space&3] += uint64(size * w)
	if r.cfg.Observer != nil {
		if r.ctxObs != nil {
			r.ctxObs.OnContext(r.item, r.phase, in.Pos.Line)
		}
		r.cfg.Observer.OnAccess(space, addr, size*w, true)
	}
	for l := 0; l < w; l++ {
		var bits uint64
		if in.Op == ir.StoreF {
			bits = floatToBits(in.Base, st.ff[int(in.A)+l])
		} else {
			bits = intToBits(in.Base, st.ii[int(in.A)+l])
		}
		if err := r.storeBits(addr+int64(l*size), size, bits); err != nil {
			return err
		}
	}
	return nil
}

func bitsToFloat(base types.Base, bits uint64) float64 {
	if base == types.Float {
		return float64(math.Float32frombits(uint32(bits)))
	}
	return math.Float64frombits(bits)
}

func floatToBits(base types.Base, f float64) uint64 {
	if base == types.Float {
		return uint64(math.Float32bits(float32(f)))
	}
	return math.Float64bits(f)
}

func bitsToInt(base types.Base, bits uint64) int64 {
	switch base.Size() {
	case 1:
		if base.IsSigned() {
			return int64(int8(bits))
		}
		return int64(uint8(bits))
	case 2:
		if base.IsSigned() {
			return int64(int16(bits))
		}
		return int64(uint16(bits))
	case 4:
		if base.IsSigned() {
			return int64(int32(bits))
		}
		return int64(uint32(bits))
	}
	return int64(bits)
}

func intToBits(base types.Base, v int64) uint64 {
	switch base.Size() {
	case 1:
		return uint64(uint8(v))
	case 2:
		return uint64(uint16(v))
	case 4:
		return uint64(uint32(v))
	}
	return uint64(v)
}

// --- atomics -----------------------------------------------------------------

func (r *groupRunner) execAtomic(in *ir.Instr, st *wiState) error {
	id := builtin.ID(in.Imm)
	addr := st.ii[in.B]
	space, off := ir.DecodeAddr(addr)
	size := in.Base.Size()
	operand := st.ii[in.C]
	cmp := st.ii[in.D]
	signed := in.Base.IsSigned()

	r.prof.Atomics++
	r.prof.LoadInstrs++
	r.prof.StoreInstrs++
	r.prof.LSSlots128 += 2
	r.prof.LSLanes += 2
	r.prof.BytesRead[space&3] += uint64(size)
	r.prof.BytesWritten[space&3] += uint64(size)
	if r.cfg.Observer != nil {
		if r.ctxObs != nil {
			r.ctxObs.OnContext(r.item, r.phase, in.Pos.Line)
		}
		r.cfg.Observer.OnAccess(space, addr, size, true)
		r.cfg.Observer.OnAtomic(space, addr, size)
	}

	fn := func(oldBits uint64) uint64 {
		old := bitsToInt(in.Base, oldBits)
		var v int64
		switch id {
		case builtin.AtomicAdd:
			v = old + operand
		case builtin.AtomicSub:
			v = old - operand
		case builtin.AtomicInc:
			v = old + 1
		case builtin.AtomicDec:
			v = old - 1
		case builtin.AtomicXchg:
			v = operand
		case builtin.AtomicMin:
			if (signed && operand < old) || (!signed && uint64(operand) < uint64(old)) {
				v = operand
			} else {
				v = old
			}
		case builtin.AtomicMax:
			if (signed && operand > old) || (!signed && uint64(operand) > uint64(old)) {
				v = operand
			} else {
				v = old
			}
		case builtin.AtomicAnd:
			v = old & operand
		case builtin.AtomicOr:
			v = old | operand
		case builtin.AtomicXor:
			v = old ^ operand
		case builtin.AtomicCmpXchg:
			if old == operand {
				v = cmp
			} else {
				v = old
			}
		default:
			v = old
		}
		return intToBits(in.Base, v)
	}

	var oldBits uint64
	var err error
	switch space {
	case ir.SpaceLocal:
		oldBits, err = sliceLoad(r.local, off, size)
		if err == nil {
			err = sliceStore(r.local, off, size, fn(oldBits))
		}
	case ir.SpacePrivate:
		oldBits, err = sliceLoad(r.cur.priv, off, size)
		if err == nil {
			err = sliceStore(r.cur.priv, off, size, fn(oldBits))
		}
	default:
		oldBits, err = r.cfg.Mem.AtomicRMW(space, off, size, fn)
	}
	if err != nil {
		return err
	}
	st.ii[in.A] = bitsToInt(in.Base, oldBits)
	return nil
}
