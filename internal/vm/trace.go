package vm

import "sync"

// traceRec is one recorded memory event. Records are 16 bytes so a
// work-group's trace stays compact even for memory-heavy kernels.
type traceRec struct {
	addr  int64
	size  uint16
	line  uint16 // source line of the access (detail mode, else 0)
	space uint8
	kind  uint8
}

// Record kinds.
const (
	recRead uint8 = iota
	recWrite
	recAtomic
	// recCtx marks a work-item/phase switch in detail mode; addr packs
	// item<<32 | phase. Replay skips these.
	recCtx
)

// Trace records the exact sequence of memory events (loads, stores and
// atomics) a work-group emits, in program order. It implements
// AccessObserver, so a worker can execute a group against a Trace
// instead of a device's stateful cache model, and the device can later
// Replay the trace into that model on a single goroutine. Because the
// serial engine interleaves nothing — it runs group 0's accesses, then
// group 1's, and so on — replaying per-group traces in dispatch order
// reproduces the serial access stream exactly, which is what keeps the
// parallel engine's timing reports bit-identical to serial execution.
//
// In detail mode (EnableDetail) the trace additionally records which
// work-item and barrier phase produced each access and the source line
// of the access, which is what the dynamic race detector consumes.
type Trace struct {
	recs     []traceRec
	detail   bool
	line     uint16
	curItem  int
	curPhase int
}

// tracePool recycles record slices between work-groups; the parallel
// engine churns through one Trace per group.
var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// NewTrace returns an empty trace (possibly recycled).
func NewTrace() *Trace {
	t := tracePool.Get().(*Trace)
	t.recs = t.recs[:0]
	t.detail = false
	t.line = 0
	return t
}

// Release returns the trace to the recycle pool. The caller must not
// use the trace afterwards.
func (t *Trace) Release() {
	if t != nil {
		tracePool.Put(t)
	}
}

// EnableDetail switches the trace into detail mode: work-item/phase
// context switches are interleaved with the access records and each
// access carries its source line. Must be called before recording.
func (t *Trace) EnableDetail() {
	t.detail = true
	t.curItem = -1
	t.curPhase = -1
}

// Detailed reports whether the trace carries work-item context.
func (t *Trace) Detailed() bool { return t.detail }

// ContextActive implements ContextObserver: the VM only pays for
// per-access context callbacks when detail mode is on.
func (t *Trace) ContextActive() bool { return t.detail }

// OnContext implements ContextObserver. The VM calls it immediately
// before each access's OnAccess/OnAtomic callback.
func (t *Trace) OnContext(item, phase, line int) {
	if !t.detail {
		return
	}
	t.line = uint16(line)
	if item != t.curItem || phase != t.curPhase {
		t.curItem, t.curPhase = item, phase
		t.recs = append(t.recs, traceRec{
			addr: int64(item)<<32 | int64(uint32(phase)),
			kind: recCtx,
		})
	}
}

// OnAccess implements AccessObserver.
func (t *Trace) OnAccess(space int, addr int64, size int, write bool) {
	kind := recRead
	if write {
		kind = recWrite
	}
	t.recs = append(t.recs, traceRec{addr: addr, size: uint16(size), line: t.line, space: uint8(space), kind: kind})
}

// OnAtomic implements AccessObserver.
func (t *Trace) OnAtomic(space int, addr int64, size int) {
	t.recs = append(t.recs, traceRec{addr: addr, size: uint16(size), line: t.line, space: uint8(space), kind: recAtomic})
}

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.recs) }

// Replay feeds the recorded events into o in recording order. Context
// records from detail mode are skipped, so replaying into a cache
// model is unaffected by race checking.
func (t *Trace) Replay(o AccessObserver) {
	for i := range t.recs {
		r := &t.recs[i]
		switch r.kind {
		case recCtx:
			// not a memory event
		case recAtomic:
			o.OnAtomic(int(r.space), r.addr, int(r.size))
		default:
			o.OnAccess(int(r.space), r.addr, int(r.size), r.kind == recWrite)
		}
	}
}
