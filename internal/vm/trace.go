package vm

import "sync"

// traceRec is one recorded memory event. Records are 16 bytes so a
// work-group's trace stays compact even for memory-heavy kernels.
type traceRec struct {
	addr  int64
	size  uint16
	space uint8
	kind  uint8
}

// Record kinds.
const (
	recRead uint8 = iota
	recWrite
	recAtomic
)

// Trace records the exact sequence of memory events (loads, stores and
// atomics) a work-group emits, in program order. It implements
// AccessObserver, so a worker can execute a group against a Trace
// instead of a device's stateful cache model, and the device can later
// Replay the trace into that model on a single goroutine. Because the
// serial engine interleaves nothing — it runs group 0's accesses, then
// group 1's, and so on — replaying per-group traces in dispatch order
// reproduces the serial access stream exactly, which is what keeps the
// parallel engine's timing reports bit-identical to serial execution.
type Trace struct {
	recs []traceRec
}

// tracePool recycles record slices between work-groups; the parallel
// engine churns through one Trace per group.
var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// NewTrace returns an empty trace (possibly recycled).
func NewTrace() *Trace {
	t := tracePool.Get().(*Trace)
	t.recs = t.recs[:0]
	return t
}

// Release returns the trace to the recycle pool. The caller must not
// use the trace afterwards.
func (t *Trace) Release() {
	if t != nil {
		tracePool.Put(t)
	}
}

// OnAccess implements AccessObserver.
func (t *Trace) OnAccess(space int, addr int64, size int, write bool) {
	kind := recRead
	if write {
		kind = recWrite
	}
	t.recs = append(t.recs, traceRec{addr: addr, size: uint16(size), space: uint8(space), kind: kind})
}

// OnAtomic implements AccessObserver.
func (t *Trace) OnAtomic(space int, addr int64, size int) {
	t.recs = append(t.recs, traceRec{addr: addr, size: uint16(size), space: uint8(space), kind: recAtomic})
}

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.recs) }

// Replay feeds the recorded events into o in recording order.
func (t *Trace) Replay(o AccessObserver) {
	for i := range t.recs {
		r := &t.recs[i]
		if r.kind == recAtomic {
			o.OnAtomic(int(r.space), r.addr, int(r.size))
		} else {
			o.OnAccess(int(r.space), r.addr, int(r.size), r.kind == recWrite)
		}
	}
}
