package vm

import (
	"fmt"
	"math"
	"sync"

	"maligo/internal/clc/ir"
	"maligo/internal/clc/types"
)

// This file implements the tier-3 lane engine: work-items execute in
// lock-step SIMT batches of LaneWidth lanes over a block program built
// from the same pre-decode as the compiled engine (genPure). Register
// files are laid out structure-of-arrays — slot s of lane l lives at
// index s*LaneWidth+l — so the per-instruction inner loops run over
// contiguous memory, and each block dispatch, profile delta and
// instruction decode is amortized across the whole batch.
//
// The engine must be observationally identical to the serial engines
// for every race-free kernel: same memory contents, same Profile,
// same observer callback stream (order included — the L2 model is
// stateful and traces are byte-compared), same error at the same
// point. Lock-step execution reorders work between items, so identity
// is recovered by replay: effectful per-lane events (observer records,
// per-lane step counts, faults) are buffered during a segment and
// re-emitted in serial item order afterwards, reconstructing exactly
// what the interpreter would have done — including ErrStepLimit
// truncation against the group-cumulative step budget. Divergent
// control flow runs under an active-lane mask with min-pc block
// scheduling (jump targets are always block starts, so lanes re-merge
// at post-dominator pcs); barriers are full-batch sync points using
// the same phase protocol as the serial engines. Kernels containing
// atomics fall back to the compiled engine for the whole group:
// lock-step atomic interleaving cannot be bit-identical to serial
// execution. Racy kernels are undefined behaviour in OpenCL and may
// observe different (still deterministic) memory values under
// lock-step; their stream-derived observables (races, hot lines)
// are unchanged because the replayed streams are identical.
//
// When touching semantics here, compile.go or exec.go, change all
// three; the 3-way differential suite and FuzzEngineEquivalence hold
// the engines together.

// LaneWidth is the number of work-items executed per lock-step batch,
// mirroring a Mali shader core's warp width. It is a power of two so
// the SoA register index is a shift.
const LaneWidth = 16

const laneShift = 4 // log2(LaneWidth)

// RawMemory is an optional GlobalMemory extension: RawWindow returns a
// directly addressable byte window for n bytes at off in the given
// space, or ok=false when the request cannot be served (wrong space,
// out of bounds, read-only space with write=true, unsupported). The
// lane engine uses it to turn unit-stride batched scalar accesses into
// one bounds check plus LaneWidth raw encode/decodes; callers must
// fall back to LoadBits/StoreBits whenever ok is false so bounds
// faults keep their exact serial-engine errors.
type RawMemory interface {
	RawWindow(space int, off int64, n int, write bool) ([]byte, bool)
}

// --- compiled lane program ----------------------------------------------------

// lIns is one pre-decoded pure instruction of the lane program. kind
// is the compiled engine's specialized pKind where one exists; pFn
// carries the generic pre-resolved form in gen instead (the compiled
// engine's closures are bound to the serial register layout and cannot
// run SoA).
type lIns struct {
	kind       pKind
	a, b, c, d int32
	imm        int64
	fimm       float64
	gen        *laneGen
}

// laneGen is the generic pre-resolved form of a pure instruction the
// specialized switch has no kind for (vector widths, uncommon bases,
// CvtFI). Its executor mirrors the interpreter cases in exec.go.
type laneGen struct {
	op         ir.Op
	a, b, c, d int
	imm        int64
	fimm       float64
	w          int
	isBool     bool
	f32        bool
	srcSigned  bool
	wrap       func(int64) int64
	ifn        func(int64, int64) int64
	ffn        func(float64, float64) float64
	icmp       func(int64, int64) bool
	fcmp       func(float64, float64) bool
}

// laneEff kinds.
const (
	leLoad uint8 = iota
	leStore
	leBuiltin
	leBad
)

// laneEff is one pre-decoded effectful (memory, builtin, or invalid)
// instruction: everything the execution loop needs is resolved at
// compile time.
type laneEff struct {
	kind  uint8
	in    *ir.Instr // builtin only
	a, b  int32
	w     int
	size  int
	szw   int
	slots uint64
	lanes uint64
	bytes uint64
	line  int32
	base  types.Base
	isF   bool
	f32   bool
	op    ir.Op // leBad only
}

// lanePart is one segment of a lane block: a run of pure instructions
// (eff nil) or a single effectful instruction.
type lanePart struct {
	run []lIns
	eff *laneEff
}

// Lane block terminators.
const (
	lctlNone uint8 = iota // fall through to end
	lctlJmp
	lctlJmpIf
	lctlJmpIfZ
	lctlRet
	lctlBar
)

// laneBlock is one basic block of the lane program. delta is the
// summed pure profile contribution of the block, applied once per
// batch entry scaled by the live-lane count.
type laneBlock struct {
	parts []lanePart
	delta pureDelta
	end   int // fallthrough pc (the next block start)
	ctl   uint8
	ctlB  int32
	ctlT  int
}

// LaneCompiled is the lane engine's compiled form of one kernel,
// cached on the ir.Kernel via its LaneForm slot.
type LaneCompiled struct {
	k *ir.Kernel
	// blocks in program order; blockAt maps a block-start pc to its
	// index (-1 elsewhere — lanes can only ever dispatch on block
	// starts: entry, jump targets, fallthrough pcs).
	blocks  []laneBlock
	blockAt []int32
	// hasAtomic marks kernels the lane engine refuses: the whole group
	// falls back to the compiled engine.
	hasAtomic bool
}

// Blocks returns the number of basic blocks in the lane program.
func (c *LaneCompiled) Blocks() int { return len(c.blocks) }

// HasAtomics reports whether the kernel uses atomics and therefore
// executes on the compiled engine even under EngineLanes.
func (c *LaneCompiled) HasAtomics() bool { return c.hasAtomic }

// laneCompiledFor returns the kernel's cached lane program, building
// it on first use. Concurrent first users may build twice; the result
// is a pure function of the kernel, so whichever store wins is
// equivalent.
func laneCompiledFor(k *ir.Kernel) *LaneCompiled {
	if c, ok := k.LaneForm().(*LaneCompiled); ok {
		return c
	}
	c := CompileLanes(k)
	k.SetLaneForm(c)
	return c
}

// CompileLanes translates the kernel IR into its lane block program.
// Exported for the engine benchmarks, backend emission and the
// equivalence tests; normal execution goes through the per-kernel
// cache.
func CompileLanes(k *ir.Kernel) *LaneCompiled {
	code := k.Code
	n := len(code)
	c := &LaneCompiled{k: k}
	for i := range code {
		if code[i].Op == ir.AtomicOp {
			c.hasAtomic = true
			return c
		}
	}

	// Block boundaries: identical to CompileKernel so the two engines
	// agree on what a dispatch point is.
	isStart := make([]bool, n+1)
	isStart[n] = true
	if n > 0 {
		isStart[0] = true
	}
	for i := range code {
		switch code[i].Op {
		case ir.Jmp, ir.JmpIf, ir.JmpIfZ:
			if t := code[i].Imm; t >= 0 && t <= int64(n) {
				isStart[t] = true
			}
			isStart[i+1] = true
		case ir.Ret, ir.BarrierOp:
			isStart[i+1] = true
		}
	}

	c.blockAt = make([]int32, n+1)
	for i := range c.blockAt {
		c.blockAt[i] = -1
	}
	for start := 0; start < n; {
		end := start + 1
		for end < n && !isStart[end] {
			end++
		}
		c.blockAt[start] = int32(len(c.blocks))
		c.blocks = append(c.blocks, buildLaneBlock(code, start, end))
		start = end
	}
	return c
}

// buildLaneBlock pre-decodes code[start:end] into parts plus a
// terminator. Control ops can only be the last instruction of a block
// (block splitting puts a boundary after each one).
func buildLaneBlock(code []ir.Instr, start, end int) laneBlock {
	b := laneBlock{end: end, ctl: lctlNone}
	var run []lIns
	flush := func() {
		if len(run) > 0 {
			b.parts = append(b.parts, lanePart{run: run})
			run = nil
		}
	}
	for i := start; i < end; i++ {
		in := &code[i]
		switch in.Op {
		case ir.Jmp:
			b.ctl, b.ctlT = lctlJmp, int(in.Imm)
		case ir.JmpIf:
			b.ctl, b.ctlB, b.ctlT = lctlJmpIf, in.B, int(in.Imm)
		case ir.JmpIfZ:
			b.ctl, b.ctlB, b.ctlT = lctlJmpIfZ, in.B, int(in.Imm)
		case ir.Ret:
			b.ctl = lctlRet
		case ir.BarrierOp:
			b.ctl = lctlBar
		case ir.LoadI, ir.LoadF, ir.StoreI, ir.StoreF:
			flush()
			b.parts = append(b.parts, lanePart{eff: laneEffMem(in)})
		default:
			if p, d, ok := genPure(in); ok {
				li := lIns{kind: p.kind, a: p.a, b: p.b, c: p.c, d: p.d, imm: p.imm, fimm: p.fimm}
				if p.kind == pFn {
					li.gen = laneGenFor(in)
				}
				run = append(run, li)
				b.delta.accum(&d)
				continue
			}
			flush()
			if in.Op == ir.CallB {
				b.parts = append(b.parts, lanePart{eff: laneEffBuiltin(in)})
			} else {
				b.parts = append(b.parts, lanePart{eff: &laneEff{kind: leBad, op: in.Op}})
			}
		}
	}
	flush()
	return b
}

// laneEffMem pre-decodes a load or store.
func laneEffMem(in *ir.Instr) *laneEff {
	w := int(in.Width)
	if w == 0 {
		w = 1
	}
	size := in.Base.Size()
	e := &laneEff{
		a:     in.A,
		b:     in.B,
		w:     w,
		size:  size,
		szw:   size * w,
		slots: slots128(in.Base, w),
		lanes: uint64(w),
		bytes: uint64(size * w),
		line:  int32(in.Pos.Line),
		base:  in.Base,
	}
	switch in.Op {
	case ir.LoadI:
		e.kind = leLoad
	case ir.LoadF:
		e.kind, e.isF, e.f32 = leLoad, true, in.Base == types.Float
	case ir.StoreI:
		e.kind = leStore
	case ir.StoreF:
		e.kind, e.isF, e.f32 = leStore, true, in.Base == types.Float
	}
	return e
}

// laneEffBuiltin pre-decodes a non-query builtin call; execution
// gathers the lane's registers into a scratch serial state, runs the
// interpreter's execBuiltin, and scatters the result back.
func laneEffBuiltin(in *ir.Instr) *laneEff {
	w := int(in.Width)
	if w == 0 {
		w = 1
	}
	return &laneEff{kind: leBuiltin, in: in, w: w}
}

// laneGenFor pre-resolves the generic executor of one pure
// instruction, mirroring the interpreter's operand handling.
func laneGenFor(in *ir.Instr) *laneGen {
	w := int(in.Width)
	if w == 0 {
		w = 1
	}
	g := &laneGen{
		op: in.Op,
		a:  int(in.A), b: int(in.B), c: int(in.C), d: int(in.D),
		imm: in.Imm, fimm: in.FImm, w: w,
		isBool:    in.Base == types.Bool,
		f32:       in.Base == types.Float,
		srcSigned: in.Base2.IsSigned() || in.Base2 == types.Bool,
	}
	switch in.Op {
	case ir.AddI, ir.SubI, ir.MulI, ir.DivI, ir.RemI,
		ir.AndI, ir.OrI, ir.XorI, ir.ShlI, ir.ShrI:
		g.ifn = intBinFn(in.Op, in.Base)
	case ir.NegI, ir.NotI, ir.CvtII, ir.CvtFI:
		g.wrap = wrapFn(in.Base)
	case ir.AddF, ir.SubF, ir.MulF, ir.DivF:
		g.ffn = fltBinFn(in.Op, in.Base)
	case ir.CmpEqI, ir.CmpNeI, ir.CmpLtI, ir.CmpLeI:
		g.icmp = intCmpFn(in.Op, in.Base)
	case ir.CmpEqF, ir.CmpNeF, ir.CmpLtF, ir.CmpLeF:
		g.fcmp = fltCmpFn(in.Op)
	}
	return g
}

// addN applies the delta scaled by n lanes — the lane engine's bulk
// form of executing the same pure instruction once per work-item.
func (d *pureDelta) addN(p *Profile, n uint64) {
	p.IntInstrs += d.intInstrs * n
	p.IntLanes += d.intLanes * n
	p.F32Instrs += d.f32Instrs * n
	p.F32Lanes += d.f32Lanes * n
	p.F64Instrs += d.f64Instrs * n
	p.F64Lanes += d.f64Lanes * n
	p.ArithSlots128 += d.slots * n
}

// --- runtime state ------------------------------------------------------------

// Lane statuses at the end of (or during) a segment.
const (
	laneLive  uint8 = iota // runnable
	laneDone               // executed Ret
	laneAtBar              // parked at a barrier sync point
	laneFault              // errs[l] after consuming steps[l] steps
	lanePCErr              // errs[l]: invalid pc after steps[l] steps (consumes none)
	laneTrip               // force-tripped at the segment step budget
)

// laneRec is one buffered observer event, replayed in serial item
// order after the segment.
type laneRec struct {
	step  uint64
	addr  int64
	space int32
	size  int32
	line  int32
	write bool
}

// laneBatch is the resident state of up to LaneWidth work-items
// executing in lock-step. Registers are SoA views into the group
// arena; steps, status and recs are per-lane bookkeeping for the
// serial-order replay.
type laneBatch struct {
	base   int // first flat item index
	n      int // live lanes (≤ LaneWidth; tail batch may be short)
	phase  int
	ii     []int64
	ff     []float64
	priv   []byte
	coords [LaneWidth][3]int
	pc     [LaneWidth]int
	status [LaneWidth]uint8
	steps  [LaneWidth]uint64
	errs   [LaneWidth]error
	recs   [LaneWidth][]laneRec
	mask   [LaneWidth]int
}

// laneExec drives one group's lane execution.
type laneExec struct {
	r       *groupRunner
	c       *LaneCompiled
	rec     bool // buffer observer records
	raw     RawMemory
	pb      int // private bytes per lane
	scratch wiState
}

// boundArg is one pre-resolved kernel argument binding, broadcast to
// every lane at batch init (mirrors bindArgs).
type boundArg struct {
	slot int32
	isF  bool
	bits int64
	f    float64
}

// laneArena pools the per-group allocations of the lane engine.
type laneArena struct {
	ii       []int64
	ff       []float64
	priv     []byte
	local    []byte
	coords   [][3]int
	batches  []laneBatch
	args     []boundArg
	scratchI []int64
	scratchF []float64
}

var laneArenas = sync.Pool{New: func() any { return new(laneArena) }}

// runGroupLanes is the lane engine's work-group loop. The phase
// protocol mirrors the serial engines exactly; within a phase each
// batch executes lock-step and then replays its buffered effects in
// serial item order.
func (r *groupRunner) runGroupLanes(localBytes, nloc int) error {
	lc := laneCompiledFor(r.k)
	if lc.hasAtomic {
		return r.runGroupCompiled(localBytes, nloc)
	}
	k := r.k
	cfg := r.cfg
	ar := laneArenas.Get().(*laneArena)
	defer laneArenas.Put(ar)
	ar.local = grown(ar.local, localBytes)
	clear(ar.local)
	r.local = ar.local

	x := &laneExec{r: r, c: lc, rec: cfg.Observer != nil, pb: k.PrivateBytes}
	x.raw, _ = cfg.Mem.(RawMemory)
	ar.scratchI = grown(ar.scratchI, k.NumI)
	ar.scratchF = grown(ar.scratchF, k.NumF)
	x.scratch = wiState{ii: ar.scratchI, ff: ar.scratchF}

	// Pre-resolve argument bindings (mirrors bindArgs).
	ar.args = ar.args[:0]
	localOff := int64(k.LocalBytes)
	for i, p := range k.Params {
		arg := cfg.Args[i]
		switch p.Class {
		case ir.ParamScalarI, ir.ParamGlobalPtr:
			ar.args = append(ar.args, boundArg{slot: int32(p.Slot), bits: arg.Bits})
		case ir.ParamScalarF:
			ar.args = append(ar.args, boundArg{slot: int32(p.Slot), isF: true, f: arg.F})
		case ir.ParamLocalPtr:
			localOff = int64(alignUp(int(localOff), 16))
			ar.args = append(ar.args, boundArg{slot: int32(p.Slot), bits: ir.EncodeAddr(ir.SpaceLocal, localOff)})
			localOff += int64(arg.LocalSize)
		}
	}

	// Work-item coordinates in flat row-major order.
	ar.coords = grown(ar.coords, nloc)
	i := 0
	for lz := 0; lz < max(cfg.LocalSize[2], 1); lz++ {
		for ly := 0; ly < max(cfg.LocalSize[1], 1); ly++ {
			for lx := 0; lx < cfg.LocalSize[0]; lx++ {
				ar.coords[i] = [3]int{lx, ly, lz}
				i++
			}
		}
	}

	nb := (nloc + LaneWidth - 1) / LaneWidth

	if !k.UsesBarrier {
		// Fast path: one batch's registers, reset and reused.
		ar.ii = grown(ar.ii, k.NumI*LaneWidth)
		ar.ff = grown(ar.ff, k.NumF*LaneWidth)
		ar.priv = grown(ar.priv, k.PrivateBytes*LaneWidth)
		ar.batches = grown(ar.batches, 1)
		b := &ar.batches[0]
		b.ii, b.ff, b.priv = ar.ii, ar.ff, ar.priv
		for bi := 0; bi < nb; bi++ {
			x.initBatch(b, bi, nloc, ar.coords, ar.args, true)
			x.runSegment(b)
			if err := x.replay(b); err != nil {
				return err
			}
		}
		return nil
	}

	// Barrier path: every batch resident, advanced in barrier phases.
	ar.ii = grown(ar.ii, k.NumI*LaneWidth*nb)
	clear(ar.ii)
	ar.ff = grown(ar.ff, k.NumF*LaneWidth*nb)
	clear(ar.ff)
	ar.priv = grown(ar.priv, k.PrivateBytes*LaneWidth*nb)
	clear(ar.priv)
	ar.batches = grown(ar.batches, nb)
	ni, nf, np := k.NumI*LaneWidth, k.NumF*LaneWidth, k.PrivateBytes*LaneWidth
	for bi := 0; bi < nb; bi++ {
		b := &ar.batches[bi]
		b.ii = ar.ii[bi*ni : (bi+1)*ni]
		b.ff = ar.ff[bi*nf : (bi+1)*nf]
		b.priv = ar.priv[bi*np : (bi+1)*np]
		x.initBatch(b, bi, nloc, ar.coords, ar.args, false)
	}
	for phase := 0; ; phase++ {
		anyBar, anyDone, allFinished := false, false, true
		for bi := 0; bi < nb; bi++ {
			b := &ar.batches[bi]
			b.phase = phase
			runnable := false
			for l := 0; l < b.n; l++ {
				b.steps[l] = 0
				b.recs[l] = b.recs[l][:0]
				if b.status[l] == laneAtBar {
					b.status[l] = laneLive
				}
				if b.status[l] == laneLive {
					runnable = true
				}
			}
			if runnable {
				x.runSegment(b)
				if err := x.replay(b); err != nil {
					return err
				}
			}
			for l := 0; l < b.n; l++ {
				if b.status[l] == laneDone {
					anyDone = true
				} else {
					anyBar = true
					allFinished = false
				}
			}
		}
		if allFinished {
			return nil
		}
		if anyBar && anyDone {
			return ErrBarrierDivergence
		}
	}
}

// initBatch resets a batch for its work-items: zeroed registers and
// private memory, entry pcs, and argument bindings broadcast to each
// lane. reset clears the register views (the barrier path pre-clears
// its whole arena instead).
func (x *laneExec) initBatch(b *laneBatch, bi, nloc int, coords [][3]int, args []boundArg, reset bool) {
	base := bi * LaneWidth
	n := nloc - base
	if n > LaneWidth {
		n = LaneWidth
	}
	b.base, b.n, b.phase = base, n, 0
	if reset {
		clear(b.ii)
		clear(b.ff)
		clear(b.priv)
	}
	for l := 0; l < n; l++ {
		b.coords[l] = coords[base+l]
		b.pc[l] = 0
		b.status[l] = laneLive
		b.steps[l] = 0
		b.errs[l] = nil
		b.recs[l] = b.recs[l][:0]
		for _, a := range args {
			if a.isF {
				b.ff[(int(a.slot)<<laneShift)+l] = a.f
			} else {
				b.ii[(int(a.slot)<<laneShift)+l] = a.bits
			}
		}
	}
}

// --- lock-step scheduler ------------------------------------------------------

// runSegment advances the batch until no lane is runnable (all lanes
// done, parked at a barrier, faulted, or tripped). Divergent lanes are
// scheduled min-pc-first: jump targets are always block starts and
// structured control flow joins at forward pcs, so lanes re-merge into
// one mask at the post-dominator block.
func (x *laneExec) runSegment(b *laneBatch) {
	// Per-segment step budget: a lane consuming more than this is
	// force-tripped; replay recomputes the exact serial truncation, so
	// the budget only has to bound execution, not match it.
	budget := uint64(math.MaxUint64)
	if x.r.limit >= x.r.steps {
		budget = x.r.limit - x.r.steps
	} else {
		budget = 0
	}
	for {
		minpc := -1
		for l := 0; l < b.n; l++ {
			if b.status[l] == laneLive && (minpc == -1 || b.pc[l] < minpc) {
				minpc = b.pc[l]
			}
		}
		if minpc == -1 {
			return
		}
		x.runBlock(b, minpc, budget)
	}
}

// runBlock executes one basic block for every live lane parked at pc.
func (x *laneExec) runBlock(b *laneBatch, pc int, budget uint64) {
	mask := b.mask[:0]
	for l := 0; l < b.n; l++ {
		if b.status[l] == laneLive && b.pc[l] == pc {
			mask = append(mask, l)
		}
	}
	k := x.c.k
	if pc < 0 || pc >= len(k.Code) {
		// Same fault and message as the serial dispatch loops; the pc
		// check precedes the step increment there, so this consumes no
		// step.
		err := fmt.Errorf("vm: pc %d out of range in kernel %s", pc, k.Name)
		for _, l := range mask {
			b.status[l] = lanePCErr
			b.errs[l] = err
		}
		return
	}
	bi := x.c.blockAt[pc]
	if bi < 0 {
		// Unreachable by construction (lanes only dispatch on block
		// starts); fault rather than crash if it ever regresses.
		err := fmt.Errorf("vm: internal: lane pc %d is not a block start in kernel %s", pc, k.Name)
		for _, l := range mask {
			b.status[l] = laneFault
			b.errs[l] = err
		}
		return
	}
	blk := &x.c.blocks[bi]
	prof := x.r.prof
	blk.delta.addN(prof, uint64(len(mask)))
	for pi := range blk.parts {
		p := &blk.parts[pi]
		if p.eff == nil {
			// Pure run: execute lock-step, then bulk-account. No budget
			// check — a pure op has no observable effect, every loop
			// closes through a checked control op, and replay
			// reconstructs the exact serial ErrStepLimit point from the
			// per-lane step counts.
			x.runPureRun(b, p.run, mask)
			ki := uint64(len(p.run))
			for _, l := range mask {
				b.steps[l] += ki
			}
			prof.Instrs += ki * uint64(len(mask))
			continue
		}
		mask = x.countLanes(b, mask, budget)
		if len(mask) == 0 {
			return
		}
		mask = x.runEff(b, p.eff, mask)
		if len(mask) == 0 {
			return
		}
	}
	switch blk.ctl {
	case lctlNone:
		for _, l := range mask {
			b.pc[l] = blk.end
		}
	case lctlJmp:
		mask = x.countLanes(b, mask, budget)
		for _, l := range mask {
			b.pc[l] = blk.ctlT
		}
	case lctlJmpIf:
		mask = x.countLanes(b, mask, budget)
		cb := int(blk.ctlB) << laneShift
		for _, l := range mask {
			if b.ii[cb+l] != 0 {
				b.pc[l] = blk.ctlT
			} else {
				b.pc[l] = blk.end
			}
		}
	case lctlJmpIfZ:
		mask = x.countLanes(b, mask, budget)
		cb := int(blk.ctlB) << laneShift
		for _, l := range mask {
			if b.ii[cb+l] == 0 {
				b.pc[l] = blk.ctlT
			} else {
				b.pc[l] = blk.end
			}
		}
	case lctlRet:
		mask = x.countLanes(b, mask, budget)
		for _, l := range mask {
			b.status[l] = laneDone
		}
	case lctlBar:
		mask = x.countLanes(b, mask, budget)
		prof.Barriers += uint64(len(mask))
		for _, l := range mask {
			b.pc[l] = blk.end
			if x.c.k.UsesBarrier {
				b.status[l] = laneAtBar
			}
			// Barrier-free path: like the serial engines, barrier is a
			// no-op there (the flag gates which group loop runs).
		}
	}
}

// countLanes performs the per-lane dispatch bookkeeping for one
// checked instruction: step increment, budget check (force-trip), and
// the instruction count for surviving lanes. Mirrors countEff.
func (x *laneExec) countLanes(b *laneBatch, mask []int, budget uint64) []int {
	out := mask[:0]
	for _, l := range mask {
		b.steps[l]++
		if b.steps[l] > budget {
			b.status[l] = laneTrip
			continue
		}
		out = append(out, l)
	}
	x.r.prof.Instrs += uint64(len(out))
	return out
}

// --- effectful execution ------------------------------------------------------

// runEff executes one effectful instruction across the mask, buffering
// observer records per lane. Lanes that fault are removed from the
// mask with their error and exact step count recorded; the replay pass
// decides which fault (if any) the serial engines would have surfaced.
func (x *laneExec) runEff(b *laneBatch, e *laneEff, mask []int) []int {
	switch e.kind {
	case leBad:
		err := fmt.Errorf("vm: unknown opcode %v", e.op)
		for _, l := range mask {
			b.status[l] = laneFault
			b.errs[l] = err
		}
		return mask[:0]
	case leBuiltin:
		return x.runBuiltin(b, e, mask)
	case leStore:
		return x.runMem(b, e, mask, true)
	default:
		return x.runMem(b, e, mask, false)
	}
}

// runMem executes one load or store for every lane in the mask. The
// per-lane bodies mirror the interpreter's execLoad/execStore exactly:
// profile counts and the observer record come before the access that
// may fault. Batched unit-stride scalar global accesses take a raw
// window fast path when the backing memory offers one.
func (x *laneExec) runMem(b *laneBatch, e *laneEff, mask []int, store bool) []int {
	aI := int(e.a) << laneShift
	bI := int(e.b) << laneShift
	prof := x.r.prof

	if e.w == 1 {
		if out, ok := x.runMemRaw(b, e, mask, store, aI, bI); ok {
			return out
		}
		out := mask[:0]
		for _, l := range mask {
			addr := b.ii[bI+l]
			space, off := ir.DecodeAddr(addr)
			if store {
				prof.StoreInstrs++
			} else {
				prof.LoadInstrs++
			}
			prof.LSSlots128 += e.slots
			prof.LSLanes++
			if space == ir.SpacePrivate {
				prof.PrivateAccesses++
			}
			if store {
				prof.BytesWritten[space&3] += e.bytes
			} else {
				prof.BytesRead[space&3] += e.bytes
			}
			if x.rec {
				b.recs[l] = append(b.recs[l], laneRec{
					step: b.steps[l], addr: addr, space: int32(space),
					size: int32(e.szw), line: e.line, write: store,
				})
			}
			var err error
			if store {
				var bits uint64
				switch {
				case !e.isF:
					bits = intToBits(e.base, b.ii[aI+l])
				case e.f32:
					bits = uint64(math.Float32bits(float32(b.ff[aI+l])))
				default:
					bits = math.Float64bits(b.ff[aI+l])
				}
				switch space {
				case ir.SpaceLocal:
					err = sliceStore(x.r.local, off, e.size, bits)
				case ir.SpacePrivate:
					err = sliceStore(b.priv[l*x.pb:(l+1)*x.pb], off, e.size, bits)
				default:
					err = x.r.cfg.Mem.StoreBits(space, off, e.size, bits)
				}
			} else {
				var bits uint64
				switch space {
				case ir.SpaceLocal:
					bits, err = sliceLoad(x.r.local, off, e.size)
				case ir.SpacePrivate:
					bits, err = sliceLoad(b.priv[l*x.pb:(l+1)*x.pb], off, e.size)
				default:
					bits, err = x.r.cfg.Mem.LoadBits(space, off, e.size)
				}
				if err == nil {
					switch {
					case !e.isF:
						b.ii[aI+l] = bitsToInt(e.base, bits)
					case e.f32:
						b.ff[aI+l] = float64(math.Float32frombits(uint32(bits)))
					default:
						b.ff[aI+l] = math.Float64frombits(bits)
					}
				}
			}
			if err != nil {
				b.status[l] = laneFault
				b.errs[l] = err
				continue
			}
			out = append(out, l)
		}
		return out
	}

	// Vector access: one instruction-level record and count per lane,
	// then the per-element loop, exactly like execLoad/execStore.
	out := mask[:0]
	for _, l := range mask {
		addr := b.ii[bI+l]
		space, _ := ir.DecodeAddr(addr)
		if store {
			prof.StoreInstrs++
		} else {
			prof.LoadInstrs++
		}
		prof.LSSlots128 += e.slots
		prof.LSLanes += e.lanes
		if space == ir.SpacePrivate {
			prof.PrivateAccesses++
		}
		if store {
			prof.BytesWritten[space&3] += e.bytes
		} else {
			prof.BytesRead[space&3] += e.bytes
		}
		if x.rec {
			b.recs[l] = append(b.recs[l], laneRec{
				step: b.steps[l], addr: addr, space: int32(space),
				size: int32(e.szw), line: e.line, write: store,
			})
		}
		var err error
		for v := 0; v < e.w && err == nil; v++ {
			ea := addr + int64(v*e.size)
			if store {
				var bits uint64
				switch {
				case !e.isF:
					bits = intToBits(e.base, b.ii[aI+(v<<laneShift)+l])
				case e.f32:
					bits = uint64(math.Float32bits(float32(b.ff[aI+(v<<laneShift)+l])))
				default:
					bits = math.Float64bits(b.ff[aI+(v<<laneShift)+l])
				}
				err = x.storeBitsLane(b, l, ea, e.size, bits)
			} else {
				var bits uint64
				bits, err = x.loadBitsLane(b, l, ea, e.size)
				if err == nil {
					switch {
					case !e.isF:
						b.ii[aI+(v<<laneShift)+l] = bitsToInt(e.base, bits)
					case e.f32:
						b.ff[aI+(v<<laneShift)+l] = float64(math.Float32frombits(uint32(bits)))
					default:
						b.ff[aI+(v<<laneShift)+l] = math.Float64frombits(bits)
					}
				}
			}
		}
		if err != nil {
			b.status[l] = laneFault
			b.errs[l] = err
			continue
		}
		out = append(out, l)
	}
	return out
}

// runMemRaw is the batched unit-stride fast path: when every lane's
// scalar address advances by exactly the element size and the backing
// memory exposes a raw window over the whole span, the per-lane
// interface calls and bounds checks collapse into one window fetch.
// Profile counts and observer records stay per-lane identical. Returns
// ok=false (caller falls back) whenever the pattern or window is
// unavailable — including any access that could fault, so error paths
// keep their exact serial messages.
func (x *laneExec) runMemRaw(b *laneBatch, e *laneEff, mask []int, store bool, aI, bI int) ([]int, bool) {
	if x.raw == nil || len(mask) < 2 || (e.size != 4 && e.size != 8) {
		return nil, false
	}
	addr0 := b.ii[bI+mask[0]]
	space, off0 := ir.DecodeAddr(addr0)
	if space != ir.SpaceGlobal && !(space == ir.SpaceConstant && !store) {
		return nil, false
	}
	for i := 1; i < len(mask); i++ {
		if b.ii[bI+mask[i]] != addr0+int64(i*e.size) {
			return nil, false
		}
	}
	win, ok := x.raw.RawWindow(space, off0, e.size*len(mask), store)
	if !ok {
		return nil, false
	}
	prof := x.r.prof
	n := uint64(len(mask))
	if store {
		prof.StoreInstrs += n
		prof.BytesWritten[space&3] += e.bytes * n
	} else {
		prof.LoadInstrs += n
		prof.BytesRead[space&3] += e.bytes * n
	}
	prof.LSSlots128 += e.slots * n
	prof.LSLanes += n
	if x.rec {
		for i, l := range mask {
			b.recs[l] = append(b.recs[l], laneRec{
				step: b.steps[l], addr: addr0 + int64(i*e.size), space: int32(space),
				size: int32(e.szw), line: e.line, write: store,
			})
		}
	}
	if e.size == 4 {
		for i, l := range mask {
			w := win[i*4 : i*4+4]
			if store {
				var bits uint32
				switch {
				case !e.isF:
					bits = uint32(intToBits(e.base, b.ii[aI+l]))
				default:
					bits = math.Float32bits(float32(b.ff[aI+l]))
				}
				w[0], w[1], w[2], w[3] = byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24)
			} else {
				bits := uint32(w[0]) | uint32(w[1])<<8 | uint32(w[2])<<16 | uint32(w[3])<<24
				switch {
				case !e.isF:
					b.ii[aI+l] = bitsToInt(e.base, uint64(bits))
				default:
					b.ff[aI+l] = float64(math.Float32frombits(bits))
				}
			}
		}
	} else {
		for i, l := range mask {
			w := win[i*8 : i*8+8]
			if store {
				var bits uint64
				switch {
				case !e.isF:
					bits = intToBits(e.base, b.ii[aI+l])
				default:
					bits = math.Float64bits(b.ff[aI+l])
				}
				for k := 0; k < 8; k++ {
					w[k] = byte(bits >> (8 * uint(k)))
				}
			} else {
				var bits uint64
				for k := 7; k >= 0; k-- {
					bits = bits<<8 | uint64(w[k])
				}
				if !e.isF {
					b.ii[aI+l] = bitsToInt(e.base, bits)
				} else {
					b.ff[aI+l] = math.Float64frombits(bits)
				}
			}
		}
	}
	return mask, true
}

// loadBitsLane mirrors groupRunner.loadBits with the lane's private
// slice substituted.
func (x *laneExec) loadBitsLane(b *laneBatch, l int, addr int64, size int) (uint64, error) {
	space, off := ir.DecodeAddr(addr)
	switch space {
	case ir.SpaceLocal:
		return sliceLoad(x.r.local, off, size)
	case ir.SpacePrivate:
		return sliceLoad(b.priv[l*x.pb:(l+1)*x.pb], off, size)
	default:
		return x.r.cfg.Mem.LoadBits(space, off, size)
	}
}

// storeBitsLane mirrors groupRunner.storeBits with the lane's private
// slice substituted.
func (x *laneExec) storeBitsLane(b *laneBatch, l int, addr int64, size int, bits uint64) error {
	space, off := ir.DecodeAddr(addr)
	switch space {
	case ir.SpaceLocal:
		return sliceStore(x.r.local, off, size, bits)
	case ir.SpacePrivate:
		return sliceStore(b.priv[l*x.pb:(l+1)*x.pb], off, size, bits)
	default:
		return x.r.cfg.Mem.StoreBits(space, off, size, bits)
	}
}

// runBuiltin executes a non-query builtin per lane by gathering the
// lane's registers into a scratch serial state, running the
// interpreter's execBuiltin (which only reads/writes the A/B/C/D
// register windows and counts its own profile), and scattering the A
// window back.
func (x *laneExec) runBuiltin(b *laneBatch, e *laneEff, mask []int) []int {
	out := mask[:0]
	in := e.in
	for _, l := range mask {
		x.gather(b, in, e.w, l)
		x.r.localID = b.coords[l]
		if err := x.r.execBuiltin(in, &x.scratch, e.w); err != nil {
			b.status[l] = laneFault
			b.errs[l] = err
			continue
		}
		x.scatter(b, in, e.w, l)
		out = append(out, l)
	}
	return out
}

// gather copies the w-wide A/B/C/D register windows of lane l into the
// scratch state, in both banks (the builtin's base decides which bank
// it reads; copying both keeps scatter an identity on untouched
// slots).
func (x *laneExec) gather(b *laneBatch, in *ir.Instr, w, l int) {
	sc := &x.scratch
	for _, s := range [4]int32{in.A, in.B, in.C, in.D} {
		lo := int(s)
		if lo < 0 {
			continue
		}
		hi := lo + w
		if m := len(sc.ii); hi > m {
			hi = m
		}
		for k := lo; k < hi; k++ {
			sc.ii[k] = b.ii[(k<<laneShift)+l]
		}
		hi = lo + w
		if m := len(sc.ff); hi > m {
			hi = m
		}
		for k := lo; k < hi; k++ {
			sc.ff[k] = b.ff[(k<<laneShift)+l]
		}
	}
}

// scatter copies the w-wide A window back from the scratch state into
// lane l, in both banks.
func (x *laneExec) scatter(b *laneBatch, in *ir.Instr, w, l int) {
	sc := &x.scratch
	lo := int(in.A)
	if lo < 0 {
		return
	}
	hi := lo + w
	if m := len(sc.ii); hi > m {
		hi = m
	}
	for k := lo; k < hi; k++ {
		b.ii[(k<<laneShift)+l] = sc.ii[k]
	}
	hi = lo + w
	if m := len(sc.ff); hi > m {
		hi = m
	}
	for k := lo; k < hi; k++ {
		b.ff[(k<<laneShift)+l] = sc.ff[k]
	}
}

// --- serial-order replay ------------------------------------------------------

// replay re-walks the batch's lanes in serial item order after a
// segment, emitting the buffered observer records and committing the
// group-cumulative step count exactly as the serial engines would
// have: each lane's steps draw down the remaining budget in item
// order, and the first lane whose outcome the serial engines would
// have surfaced (a fault, an invalid pc, or running out of budget)
// ends the group with that error, its observer stream truncated at the
// serial stopping point.
func (x *laneExec) replay(b *laneBatch) error {
	r := x.r
	cum := r.steps
	for l := 0; l < b.n; l++ {
		var avail uint64
		if r.limit > cum {
			avail = r.limit - cum
		}
		s := b.steps[l]
		switch b.status[l] {
		case laneDone, laneAtBar:
			if s > avail {
				// The serial engines would have tripped this item at
				// budget exhaustion, after avail steps.
				x.flush(b, l, avail)
				return ErrStepLimit
			}
			cum += s
			x.flush(b, l, math.MaxUint64)
		case laneTrip:
			// The lane outran the whole segment budget, so the serial
			// engines trip here no matter what (avail ≤ the segment
			// budget in item order).
			x.flush(b, l, avail)
			return ErrStepLimit
		case laneFault:
			// The fault consumed its step; it surfaces only if the
			// budget reaches it.
			if s > avail {
				x.flush(b, l, avail)
				return ErrStepLimit
			}
			x.flush(b, l, math.MaxUint64)
			return b.errs[l]
		case lanePCErr:
			// The pc check precedes the step increment in the serial
			// dispatch loops, so an invalid pc after s steps surfaces
			// even when the budget is exactly s.
			if s > avail {
				x.flush(b, l, avail)
				return ErrStepLimit
			}
			x.flush(b, l, math.MaxUint64)
			return b.errs[l]
		}
	}
	r.steps = cum
	return nil
}

// flush emits lane l's buffered observer records with step ≤ upto, in
// execution order, reconstructing the serial per-item callback stream.
func (x *laneExec) flush(b *laneBatch, l int, upto uint64) {
	if !x.rec {
		return
	}
	r := x.r
	obs := r.cfg.Observer
	item := b.base + l
	recs := b.recs[l]
	for i := range recs {
		rec := &recs[i]
		if rec.step > upto {
			break
		}
		if r.ctxObs != nil {
			r.ctxObs.OnContext(item, b.phase, int(rec.line))
		}
		obs.OnAccess(int(rec.space), rec.addr, int(rec.size), rec.write)
	}
}
