package vm_test

import (
	"errors"
	"strings"
	"testing"

	"maligo/internal/clc"
	"maligo/internal/clc/ir"
	"maligo/internal/vm"
)

func TestStepLimit(t *testing.T) {
	prog := mustCompile(t, `
__kernel void spin(__global int* p) {
    while (p[0] == 0) {
        p[1] = p[1] + 1;
    }
}`, "")
	mem := newFlatMem(16, nil)
	cfg := &vm.GroupConfig{
		Kernel:     prog.Kernel("spin"),
		WorkDim:    1,
		LocalSize:  [3]int{1, 1, 1},
		GlobalSize: [3]int{1, 1, 1},
		Args:       []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}},
		Mem:        mem,
		StepLimit:  10000,
	}
	err := vm.RunGroup(cfg, &vm.Profile{})
	if !errors.Is(err, vm.ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestBarrierDivergenceDetected(t *testing.T) {
	prog := mustCompile(t, `
__kernel void diverge(__global int* p, __local int* s) {
    if (get_local_id(0) == 0u) {
        return; // work-item 0 skips the barrier: undefined behaviour
    }
    s[get_local_id(0)] = 1;
    barrier(1);
    p[get_local_id(0)] = s[get_local_id(0)];
}`, "")
	mem := newFlatMem(64, nil)
	cfg := &vm.GroupConfig{
		Kernel:     prog.Kernel("diverge"),
		WorkDim:    1,
		LocalSize:  [3]int{4, 1, 1},
		GlobalSize: [3]int{4, 1, 1},
		Args:       []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}, {LocalSize: 64}},
		Mem:        mem,
	}
	err := vm.RunGroup(cfg, &vm.Profile{})
	if !errors.Is(err, vm.ErrBarrierDivergence) {
		t.Fatalf("err = %v, want ErrBarrierDivergence", err)
	}
}

func TestOutOfBoundsLocalStore(t *testing.T) {
	prog := mustCompile(t, `
__kernel void oob(__local int* s) {
    s[1000000] = 1;
}`, "")
	cfg := &vm.GroupConfig{
		Kernel:     prog.Kernel("oob"),
		WorkDim:    1,
		LocalSize:  [3]int{1, 1, 1},
		GlobalSize: [3]int{1, 1, 1},
		Args:       []vm.ArgValue{{LocalSize: 64}},
		Mem:        newFlatMem(16, nil),
	}
	err := vm.RunGroup(cfg, &vm.Profile{})
	if err == nil || !strings.Contains(err.Error(), "out-of-bounds") {
		t.Fatalf("err = %v, want out-of-bounds store", err)
	}
}

func TestDivideByZeroIsZero(t *testing.T) {
	prog := mustCompile(t, `
__kernel void div(__global int* p) {
    p[0] = p[1] / p[2];
    p[3] = p[1] % p[2];
}`, "")
	mem := newFlatMem(16, nil)
	mem.putI32(4, 7) // p[1] = 7, p[2] = 0
	cfg := &vm.GroupConfig{
		Kernel:     prog.Kernel("div"),
		WorkDim:    1,
		LocalSize:  [3]int{1, 1, 1},
		GlobalSize: [3]int{1, 1, 1},
		Args:       []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}},
		Mem:        mem,
	}
	if err := vm.RunGroup(cfg, &vm.Profile{}); err != nil {
		t.Fatal(err)
	}
	if got := mem.getI32(0); got != 0 {
		t.Errorf("x/0 = %d, want 0 (documented)", got)
	}
	if got := mem.getI32(12); got != 0 {
		t.Errorf("x%%0 = %d, want 0 (documented)", got)
	}
}

func TestMultiDimensionalIDs(t *testing.T) {
	prog := mustCompile(t, `
__kernel void ids(__global int* p) {
    size_t x = get_global_id(0);
    size_t y = get_global_id(1);
    size_t z = get_global_id(2);
    size_t w = get_global_size(0);
    size_t h = get_global_size(1);
    p[(z * h + y) * w + x] = (int)(get_group_id(1) * 100u + get_local_id(0) * 10u + get_local_id(1));
}`, "")
	const w, h, d = 4, 4, 2
	mem := newFlatMem(w*h*d*4, nil)
	prof := &vm.Profile{}
	for gz := 0; gz < d; gz++ {
		for gy := 0; gy < h/2; gy++ {
			for gx := 0; gx < w/2; gx++ {
				cfg := &vm.GroupConfig{
					Kernel:     prog.Kernel("ids"),
					WorkDim:    3,
					GroupID:    [3]int{gx, gy, gz},
					LocalSize:  [3]int{2, 2, 1},
					GlobalSize: [3]int{w, h, d},
					Args:       []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}},
					Mem:        mem,
				}
				if err := vm.RunGroup(cfg, prof); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Spot-check: element (x=3, y=2, z=1) was computed by group
	// (1,1,1)? No — local 2x2x1: group y = 1, local ids (1, 0).
	idx := (1*h+2)*w + 3
	want := int32(1*100 + 1*10 + 0)
	if got := mem.getI32(idx * 4); got != want {
		t.Errorf("p[%d] = %d, want %d", idx, got, want)
	}
	if prof.WorkGroups != 8 || prof.WorkItems != 32 {
		t.Errorf("profile: %d groups / %d items", prof.WorkGroups, prof.WorkItems)
	}
}

func TestProfileAdd(t *testing.T) {
	a := vm.Profile{Instrs: 10, F32Lanes: 5, Atomics: 1, BytesRead: [4]uint64{100, 0, 0, 0}}
	b := vm.Profile{Instrs: 7, F32Lanes: 2, Barriers: 3, BytesRead: [4]uint64{1, 2, 3, 4}}
	a.Add(&b)
	if a.Instrs != 17 || a.F32Lanes != 7 || a.Atomics != 1 || a.Barriers != 3 {
		t.Errorf("Add result = %+v", a)
	}
	if a.BytesRead[0] != 101 || a.BytesRead[3] != 4 {
		t.Errorf("BytesRead = %v", a.BytesRead)
	}
	if a.TotalBytes() != 110 {
		t.Errorf("TotalBytes = %d", a.TotalBytes())
	}
}

func TestConstantMemoryIsReadOnly(t *testing.T) {
	// A kernel cannot store through a __constant pointer (sema), and
	// the runtime rejects stores into the constant segment: exercise
	// the latter through a cast around sema's check.
	prog := mustCompile(t, `
__kernel void sneaky(__constant float* c, __global float* out) {
    __global float* alias = (__global float*)c;
    out[0] = alias[0];
}`, "")
	// The cast changes the static space, but the tagged address still
	// carries the runtime constant-space tag: the load works, stores
	// would fail. Just check the load path works.
	mem := newFlatMem(16, []byte{0, 0, 128, 63}) // 1.0f constant segment
	cfg := &vm.GroupConfig{
		Kernel:     prog.Kernel("sneaky"),
		WorkDim:    1,
		LocalSize:  [3]int{1, 1, 1},
		GlobalSize: [3]int{1, 1, 1},
		Args: []vm.ArgValue{
			{Bits: ir.EncodeAddr(ir.SpaceConstant, 0)},
			{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
		},
		Mem: mem,
	}
	if err := vm.RunGroup(cfg, &vm.Profile{}); err != nil {
		t.Fatal(err)
	}
	if got := mem.getF32(0); got != 1 {
		t.Errorf("constant load = %v, want 1", got)
	}
}

func TestWhileLoopAndContinueBreak(t *testing.T) {
	prog := mustCompile(t, `
__kernel void loops(__global int* p) {
    int sum = 0;
    int i = 0;
    while (1) {
        i++;
        if (i > 100) {
            break;
        }
        if (i % 2 == 1) {
            continue;
        }
        sum += i;
    }
    p[0] = sum; // 2 + 4 + ... + 100 = 2550
}`, "")
	mem := newFlatMem(4, nil)
	cfg := &vm.GroupConfig{
		Kernel:     prog.Kernel("loops"),
		WorkDim:    1,
		LocalSize:  [3]int{1, 1, 1},
		GlobalSize: [3]int{1, 1, 1},
		Args:       []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}},
		Mem:        mem,
	}
	if err := vm.RunGroup(cfg, &vm.Profile{}); err != nil {
		t.Fatal(err)
	}
	if got := mem.getI32(0); got != 2550 {
		t.Errorf("loop sum = %d, want 2550", got)
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	prog := mustCompile(t, `
int bump(__global int* p) {
    p[1] = p[1] + 1;
    return 1;
}
__kernel void sc(__global int* p) {
    if (p[0] != 0 && bump(p) != 0) {
        p[2] = 1;
    }
    if (p[0] == 0 || bump(p) != 0) {
        p[3] = 1;
    }
}`, "")
	mem := newFlatMem(16, nil) // p[0] = 0
	cfg := &vm.GroupConfig{
		Kernel:     prog.Kernel("sc"),
		WorkDim:    1,
		LocalSize:  [3]int{1, 1, 1},
		GlobalSize: [3]int{1, 1, 1},
		Args:       []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}},
		Mem:        mem,
	}
	if err := vm.RunGroup(cfg, &vm.Profile{}); err != nil {
		t.Fatal(err)
	}
	if got := mem.getI32(4); got != 0 {
		t.Errorf("bump ran %d times; short-circuit must skip both calls", got)
	}
	if mem.getI32(8) != 0 || mem.getI32(12) != 1 {
		t.Errorf("branch outcomes wrong: p[2]=%d p[3]=%d", mem.getI32(8), mem.getI32(12))
	}
}

func TestVload3PackedLayout(t *testing.T) {
	prog := mustCompile(t, `
__kernel void v3(__global const float* in, __global float* out) {
    float3 v = vload3(1, in); // elements 3, 4, 5 (packed stride 3)
    out[0] = v.x + v.y + v.z;
}`, "")
	mem := newFlatMem(64, nil)
	for i := 0; i < 8; i++ {
		mem.putF32(i*4, float32(i))
	}
	cfg := &vm.GroupConfig{
		Kernel:     prog.Kernel("v3"),
		WorkDim:    1,
		LocalSize:  [3]int{1, 1, 1},
		GlobalSize: [3]int{1, 1, 1},
		Args: []vm.ArgValue{
			{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
			{Bits: ir.EncodeAddr(ir.SpaceGlobal, 32)},
		},
		Mem: mem,
	}
	if err := vm.RunGroup(cfg, &vm.Profile{}); err != nil {
		t.Fatal(err)
	}
	if got := mem.getF32(32); got != 3+4+5 {
		t.Errorf("vload3 sum = %v, want 12", got)
	}
}

func TestCompileError(t *testing.T) {
	if _, err := clc.Compile("bad.cl", "__kernel void k(", ""); err == nil {
		t.Fatal("expected compile error")
	}
}
