package vm

import (
	"math"

	"maligo/internal/clc/ir"
)

// This file holds the lane engine's pure-instruction executors. Every
// kind has two bodies with identical semantics (byte-for-byte the
// compiled engine's runPure, itself mirroring the interpreter): a
// full-batch body operating on contiguous LaneWidth-long register
// subslices — the hot path, where Go's compiler can eliminate bounds
// checks and vectorize — and a masked body indexing through the active
// lane list for divergent blocks and short tail batches. runGen is the
// generic fallback mirroring the interpreter for the shapes the
// specialized kinds don't cover (vector widths, uncommon bases,
// CvtFI).

// laneFullMask is the identity mask handed to masked executors by the
// full path for kinds without a full-batch specialization. Read-only.
var laneFullMask = func() []int {
	m := make([]int, LaneWidth)
	for i := range m {
		m[i] = i
	}
	return m
}()

// runPureRun executes one straight-line run of pure instructions in
// lock-step across the mask. Register slot s of lane l is at
// (s<<laneShift)+l.
func (x *laneExec) runPureRun(b *laneBatch, run []lIns, mask []int) {
	if len(mask) == LaneWidth {
		x.runPureFull(b, run)
		return
	}
	for idx := range run {
		x.execPureMasked(b, &run[idx], mask)
	}
}

// runPureFull is the converged-batch fast path: all LaneWidth lanes
// active, every loop a dense pass over one contiguous register row per
// operand.
func (x *laneExec) runPureFull(b *laneBatch, run []lIns) {
	ii, ff := b.ii, b.ff
	for idx := range run {
		in := &run[idx]
		a := int(in.a) << laneShift
		bb := int(in.b) << laneShift
		c := int(in.c) << laneShift
		switch in.kind {
		case pMovI:
			copy(ii[a:a+LaneWidth], ii[bb:bb+LaneWidth])
		case pMovF:
			copy(ff[a:a+LaneWidth], ff[bb:bb+LaneWidth])
		case pImmI:
			dst := ii[a : a+LaneWidth]
			for l := range dst {
				dst[l] = in.imm
			}
		case pImmF:
			dst := ff[a : a+LaneWidth]
			for l := range dst {
				dst[l] = in.fimm
			}

		case pAddI64:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = xs[l] + ys[l]
			}
		case pSubI64:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = xs[l] - ys[l]
			}
		case pMulI64:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = xs[l] * ys[l]
			}
		case pAddI32:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = int64(int32(xs[l] + ys[l]))
			}
		case pSubI32:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = int64(int32(xs[l] - ys[l]))
			}
		case pMulI32:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = int64(int32(xs[l] * ys[l]))
			}
		case pAddU32:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = int64(uint32(xs[l] + ys[l]))
			}
		case pSubU32:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = int64(uint32(xs[l] - ys[l]))
			}
		case pMulU32:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = int64(uint32(xs[l] * ys[l]))
			}
		case pAndI64:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = xs[l] & ys[l]
			}
		case pOrI64:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = xs[l] | ys[l]
			}
		case pXorI64:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = xs[l] ^ ys[l]
			}
		case pShlI64:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = xs[l] << (uint64(ys[l]) & 63)
			}
		case pShlI32:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = int64(int32(xs[l] << (uint64(ys[l]) & 31)))
			}
		case pShrS64:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = xs[l] >> (uint64(ys[l]) & 63)
			}
		case pShrS32:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = int64(int32(xs[l] >> (uint64(ys[l]) & 31)))
			}

		case pAddF32:
			dst, xs, ys := ff[a:a+LaneWidth], ff[bb:bb+LaneWidth], ff[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = float64(float32(xs[l] + ys[l]))
			}
		case pSubF32:
			dst, xs, ys := ff[a:a+LaneWidth], ff[bb:bb+LaneWidth], ff[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = float64(float32(xs[l] - ys[l]))
			}
		case pMulF32:
			dst, xs, ys := ff[a:a+LaneWidth], ff[bb:bb+LaneWidth], ff[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = float64(float32(xs[l] * ys[l]))
			}
		case pDivF32:
			dst, xs, ys := ff[a:a+LaneWidth], ff[bb:bb+LaneWidth], ff[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = float64(float32(xs[l] / ys[l]))
			}
		case pAddF64:
			dst, xs, ys := ff[a:a+LaneWidth], ff[bb:bb+LaneWidth], ff[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = xs[l] + ys[l]
			}
		case pSubF64:
			dst, xs, ys := ff[a:a+LaneWidth], ff[bb:bb+LaneWidth], ff[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = xs[l] - ys[l]
			}
		case pMulF64:
			dst, xs, ys := ff[a:a+LaneWidth], ff[bb:bb+LaneWidth], ff[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = xs[l] * ys[l]
			}
		case pDivF64:
			dst, xs, ys := ff[a:a+LaneWidth], ff[bb:bb+LaneWidth], ff[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = xs[l] / ys[l]
			}
		case pNegF32:
			dst, xs := ff[a:a+LaneWidth], ff[bb:bb+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = float64(float32(-xs[l]))
			}
		case pNegF64:
			dst, xs := ff[a:a+LaneWidth], ff[bb:bb+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = -xs[l]
			}

		case pCmpEqI:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				if xs[l] == ys[l] {
					dst[l] = 1
				} else {
					dst[l] = 0
				}
			}
		case pCmpNeI:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				if xs[l] != ys[l] {
					dst[l] = 1
				} else {
					dst[l] = 0
				}
			}
		case pCmpLtS:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				if xs[l] < ys[l] {
					dst[l] = 1
				} else {
					dst[l] = 0
				}
			}
		case pCmpLtU:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				if uint64(xs[l]) < uint64(ys[l]) {
					dst[l] = 1
				} else {
					dst[l] = 0
				}
			}
		case pCmpLeS:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				if xs[l] <= ys[l] {
					dst[l] = 1
				} else {
					dst[l] = 0
				}
			}
		case pCmpLeU:
			dst, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				if uint64(xs[l]) <= uint64(ys[l]) {
					dst[l] = 1
				} else {
					dst[l] = 0
				}
			}
		case pCmpEqF:
			dst, xs, ys := ii[a:a+LaneWidth], ff[bb:bb+LaneWidth], ff[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				if xs[l] == ys[l] {
					dst[l] = 1
				} else {
					dst[l] = 0
				}
			}
		case pCmpNeF:
			dst, xs, ys := ii[a:a+LaneWidth], ff[bb:bb+LaneWidth], ff[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				if xs[l] != ys[l] {
					dst[l] = 1
				} else {
					dst[l] = 0
				}
			}
		case pCmpLtF:
			dst, xs, ys := ii[a:a+LaneWidth], ff[bb:bb+LaneWidth], ff[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				if xs[l] < ys[l] {
					dst[l] = 1
				} else {
					dst[l] = 0
				}
			}
		case pCmpLeF:
			dst, xs, ys := ii[a:a+LaneWidth], ff[bb:bb+LaneWidth], ff[c:c+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				if xs[l] <= ys[l] {
					dst[l] = 1
				} else {
					dst[l] = 0
				}
			}

		case pSelI:
			d := int(in.d) << laneShift
			dst, cond, xs, ys := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth], ii[c:c+LaneWidth], ii[d:d+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				if cond[l] != 0 {
					dst[l] = xs[l]
				} else {
					dst[l] = ys[l]
				}
			}
		case pSelF:
			d := int(in.d) << laneShift
			dst, cond, xs, ys := ff[a:a+LaneWidth], ii[bb:bb+LaneWidth], ff[c:c+LaneWidth], ff[d:d+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				if cond[l] != 0 {
					dst[l] = xs[l]
				} else {
					dst[l] = ys[l]
				}
			}

		case pCvtII32:
			dst, xs := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = int64(int32(xs[l]))
			}
		case pCvtIIU32:
			dst, xs := ii[a:a+LaneWidth], ii[bb:bb+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = int64(uint32(xs[l]))
			}
		case pCvtSF64:
			dst, xs := ff[a:a+LaneWidth], ii[bb:bb+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = float64(xs[l])
			}
		case pCvtSF32:
			dst, xs := ff[a:a+LaneWidth], ii[bb:bb+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = float64(float32(float64(xs[l])))
			}
		case pCvtUF64:
			dst, xs := ff[a:a+LaneWidth], ii[bb:bb+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = float64(uint64(xs[l]))
			}
		case pCvtUF32:
			dst, xs := ff[a:a+LaneWidth], ii[bb:bb+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = float64(float32(float64(uint64(xs[l]))))
			}
		case pCvtFF32:
			dst, xs := ff[a:a+LaneWidth], ff[bb:bb+LaneWidth]
			for l := 0; l < LaneWidth; l++ {
				dst[l] = float64(float32(xs[l]))
			}

		default:
			// Queries (per-lane coordinates) and pFn share the masked
			// bodies under the identity mask.
			x.execPureMasked(b, in, laneFullMask)
		}
	}
}

// execPureMasked executes one pure instruction for the active lanes
// only — the divergent-path and tail-batch body.
func (x *laneExec) execPureMasked(b *laneBatch, in *lIns, mask []int) {
	ii, ff := b.ii, b.ff
	cfg := x.r.cfg
	a := int(in.a) << laneShift
	bb := int(in.b) << laneShift
	c := int(in.c) << laneShift
	d := int(in.d) << laneShift
	switch in.kind {
	case pFn:
		x.runGen(b, in.gen, mask)

	case pMovI:
		for _, l := range mask {
			ii[a+l] = ii[bb+l]
		}
	case pMovF:
		for _, l := range mask {
			ff[a+l] = ff[bb+l]
		}
	case pImmI:
		for _, l := range mask {
			ii[a+l] = in.imm
		}
	case pImmF:
		for _, l := range mask {
			ff[a+l] = in.fimm
		}

	case pAddI64:
		for _, l := range mask {
			ii[a+l] = ii[bb+l] + ii[c+l]
		}
	case pSubI64:
		for _, l := range mask {
			ii[a+l] = ii[bb+l] - ii[c+l]
		}
	case pMulI64:
		for _, l := range mask {
			ii[a+l] = ii[bb+l] * ii[c+l]
		}
	case pAddI32:
		for _, l := range mask {
			ii[a+l] = int64(int32(ii[bb+l] + ii[c+l]))
		}
	case pSubI32:
		for _, l := range mask {
			ii[a+l] = int64(int32(ii[bb+l] - ii[c+l]))
		}
	case pMulI32:
		for _, l := range mask {
			ii[a+l] = int64(int32(ii[bb+l] * ii[c+l]))
		}
	case pAddU32:
		for _, l := range mask {
			ii[a+l] = int64(uint32(ii[bb+l] + ii[c+l]))
		}
	case pSubU32:
		for _, l := range mask {
			ii[a+l] = int64(uint32(ii[bb+l] - ii[c+l]))
		}
	case pMulU32:
		for _, l := range mask {
			ii[a+l] = int64(uint32(ii[bb+l] * ii[c+l]))
		}
	case pAndI64:
		for _, l := range mask {
			ii[a+l] = ii[bb+l] & ii[c+l]
		}
	case pOrI64:
		for _, l := range mask {
			ii[a+l] = ii[bb+l] | ii[c+l]
		}
	case pXorI64:
		for _, l := range mask {
			ii[a+l] = ii[bb+l] ^ ii[c+l]
		}
	case pShlI64:
		for _, l := range mask {
			ii[a+l] = ii[bb+l] << (uint64(ii[c+l]) & 63)
		}
	case pShlI32:
		for _, l := range mask {
			ii[a+l] = int64(int32(ii[bb+l] << (uint64(ii[c+l]) & 31)))
		}
	case pShrS64:
		for _, l := range mask {
			ii[a+l] = ii[bb+l] >> (uint64(ii[c+l]) & 63)
		}
	case pShrS32:
		for _, l := range mask {
			ii[a+l] = int64(int32(ii[bb+l] >> (uint64(ii[c+l]) & 31)))
		}

	case pAddF32:
		for _, l := range mask {
			ff[a+l] = float64(float32(ff[bb+l] + ff[c+l]))
		}
	case pSubF32:
		for _, l := range mask {
			ff[a+l] = float64(float32(ff[bb+l] - ff[c+l]))
		}
	case pMulF32:
		for _, l := range mask {
			ff[a+l] = float64(float32(ff[bb+l] * ff[c+l]))
		}
	case pDivF32:
		for _, l := range mask {
			ff[a+l] = float64(float32(ff[bb+l] / ff[c+l]))
		}
	case pAddF64:
		for _, l := range mask {
			ff[a+l] = ff[bb+l] + ff[c+l]
		}
	case pSubF64:
		for _, l := range mask {
			ff[a+l] = ff[bb+l] - ff[c+l]
		}
	case pMulF64:
		for _, l := range mask {
			ff[a+l] = ff[bb+l] * ff[c+l]
		}
	case pDivF64:
		for _, l := range mask {
			ff[a+l] = ff[bb+l] / ff[c+l]
		}
	case pNegF32:
		for _, l := range mask {
			ff[a+l] = float64(float32(-ff[bb+l]))
		}
	case pNegF64:
		for _, l := range mask {
			ff[a+l] = -ff[bb+l]
		}

	case pCmpEqI:
		for _, l := range mask {
			if ii[bb+l] == ii[c+l] {
				ii[a+l] = 1
			} else {
				ii[a+l] = 0
			}
		}
	case pCmpNeI:
		for _, l := range mask {
			if ii[bb+l] != ii[c+l] {
				ii[a+l] = 1
			} else {
				ii[a+l] = 0
			}
		}
	case pCmpLtS:
		for _, l := range mask {
			if ii[bb+l] < ii[c+l] {
				ii[a+l] = 1
			} else {
				ii[a+l] = 0
			}
		}
	case pCmpLtU:
		for _, l := range mask {
			if uint64(ii[bb+l]) < uint64(ii[c+l]) {
				ii[a+l] = 1
			} else {
				ii[a+l] = 0
			}
		}
	case pCmpLeS:
		for _, l := range mask {
			if ii[bb+l] <= ii[c+l] {
				ii[a+l] = 1
			} else {
				ii[a+l] = 0
			}
		}
	case pCmpLeU:
		for _, l := range mask {
			if uint64(ii[bb+l]) <= uint64(ii[c+l]) {
				ii[a+l] = 1
			} else {
				ii[a+l] = 0
			}
		}
	case pCmpEqF:
		for _, l := range mask {
			if ff[bb+l] == ff[c+l] {
				ii[a+l] = 1
			} else {
				ii[a+l] = 0
			}
		}
	case pCmpNeF:
		for _, l := range mask {
			if ff[bb+l] != ff[c+l] {
				ii[a+l] = 1
			} else {
				ii[a+l] = 0
			}
		}
	case pCmpLtF:
		for _, l := range mask {
			if ff[bb+l] < ff[c+l] {
				ii[a+l] = 1
			} else {
				ii[a+l] = 0
			}
		}
	case pCmpLeF:
		for _, l := range mask {
			if ff[bb+l] <= ff[c+l] {
				ii[a+l] = 1
			} else {
				ii[a+l] = 0
			}
		}

	case pSelI:
		for _, l := range mask {
			if ii[bb+l] != 0 {
				ii[a+l] = ii[c+l]
			} else {
				ii[a+l] = ii[d+l]
			}
		}
	case pSelF:
		for _, l := range mask {
			if ii[bb+l] != 0 {
				ff[a+l] = ff[c+l]
			} else {
				ff[a+l] = ff[d+l]
			}
		}

	case pCvtII32:
		for _, l := range mask {
			ii[a+l] = int64(int32(ii[bb+l]))
		}
	case pCvtIIU32:
		for _, l := range mask {
			ii[a+l] = int64(uint32(ii[bb+l]))
		}
	case pCvtSF64:
		for _, l := range mask {
			ff[a+l] = float64(ii[bb+l])
		}
	case pCvtSF32:
		for _, l := range mask {
			ff[a+l] = float64(float32(float64(ii[bb+l])))
		}
	case pCvtUF64:
		for _, l := range mask {
			ff[a+l] = float64(uint64(ii[bb+l]))
		}
	case pCvtUF32:
		for _, l := range mask {
			ff[a+l] = float64(float32(float64(uint64(ii[bb+l]))))
		}
	case pCvtFF32:
		for _, l := range mask {
			ff[a+l] = float64(float32(ff[bb+l]))
		}

	case pGlobalID:
		for _, l := range mask {
			dim := int(ii[bb+l])
			if dim < 0 || dim > 2 {
				dim = 0
			}
			ii[a+l] = int64(cfg.GroupID[dim]*dimOr1(cfg.LocalSize, dim) + b.coords[l][dim] + cfg.GlobalOffset[dim])
		}
	case pLocalID:
		for _, l := range mask {
			dim := int(ii[bb+l])
			if dim < 0 || dim > 2 {
				dim = 0
			}
			ii[a+l] = int64(b.coords[l][dim])
		}
	case pGroupID:
		for _, l := range mask {
			dim := int(ii[bb+l])
			if dim < 0 || dim > 2 {
				dim = 0
			}
			ii[a+l] = int64(cfg.GroupID[dim])
		}
	case pGlobalSize:
		for _, l := range mask {
			dim := int(ii[bb+l])
			if dim < 0 || dim > 2 {
				dim = 0
			}
			ii[a+l] = int64(dimOr1(cfg.GlobalSize, dim))
		}
	case pLocalSize:
		for _, l := range mask {
			dim := int(ii[bb+l])
			if dim < 0 || dim > 2 {
				dim = 0
			}
			ii[a+l] = int64(dimOr1(cfg.LocalSize, dim))
		}
	case pNumGroups:
		for _, l := range mask {
			dim := int(ii[bb+l])
			if dim < 0 || dim > 2 {
				dim = 0
			}
			ii[a+l] = int64(dimOr1(cfg.GlobalSize, dim) / dimOr1(cfg.LocalSize, dim))
		}
	case pGlobalOffset:
		for _, l := range mask {
			dim := int(ii[bb+l])
			if dim < 0 || dim > 2 {
				dim = 0
			}
			ii[a+l] = int64(cfg.GlobalOffset[dim])
		}
	case pWorkDim:
		for _, l := range mask {
			ii[a+l] = int64(cfg.WorkDim)
		}
	}
}

// runGen executes one generic pure instruction across the mask,
// mirroring the interpreter's per-op bodies in exec.go with SoA
// element addressing: element v of slot s in lane l lives at
// ((s+v)<<laneShift)+l.
func (x *laneExec) runGen(b *laneBatch, g *laneGen, mask []int) {
	ii, ff := b.ii, b.ff
	w := g.w
	switch g.op {
	case ir.Nop:

	case ir.MovI:
		// The serial engines use copy (memmove semantics): overlapping
		// vector moves read each source element before it is
		// overwritten. Walk elements backward when the destination
		// window starts above the source.
		if g.a <= g.b {
			for v := 0; v < w; v++ {
				av, bv := (g.a+v)<<laneShift, (g.b+v)<<laneShift
				for _, l := range mask {
					ii[av+l] = ii[bv+l]
				}
			}
		} else {
			for v := w - 1; v >= 0; v-- {
				av, bv := (g.a+v)<<laneShift, (g.b+v)<<laneShift
				for _, l := range mask {
					ii[av+l] = ii[bv+l]
				}
			}
		}
	case ir.MovF:
		if g.a <= g.b {
			for v := 0; v < w; v++ {
				av, bv := (g.a+v)<<laneShift, (g.b+v)<<laneShift
				for _, l := range mask {
					ff[av+l] = ff[bv+l]
				}
			}
		} else {
			for v := w - 1; v >= 0; v-- {
				av, bv := (g.a+v)<<laneShift, (g.b+v)<<laneShift
				for _, l := range mask {
					ff[av+l] = ff[bv+l]
				}
			}
		}
	case ir.ImmI:
		for v := 0; v < w; v++ {
			av := (g.a + v) << laneShift
			for _, l := range mask {
				ii[av+l] = g.imm
			}
		}
	case ir.ImmF:
		for v := 0; v < w; v++ {
			av := (g.a + v) << laneShift
			for _, l := range mask {
				ff[av+l] = g.fimm
			}
		}
	case ir.BcastI:
		bv := g.b << laneShift
		for v := 0; v < w; v++ {
			av := (g.a + v) << laneShift
			for _, l := range mask {
				ii[av+l] = ii[bv+l]
			}
		}
	case ir.BcastF:
		bv := g.b << laneShift
		for v := 0; v < w; v++ {
			av := (g.a + v) << laneShift
			for _, l := range mask {
				ff[av+l] = ff[bv+l]
			}
		}

	case ir.AddI, ir.SubI, ir.MulI, ir.DivI, ir.RemI,
		ir.AndI, ir.OrI, ir.XorI, ir.ShlI, ir.ShrI:
		fn := g.ifn
		for v := 0; v < w; v++ {
			av, bv, cv := (g.a+v)<<laneShift, (g.b+v)<<laneShift, (g.c+v)<<laneShift
			for _, l := range mask {
				ii[av+l] = fn(ii[bv+l], ii[cv+l])
			}
		}
	case ir.NegI:
		for v := 0; v < w; v++ {
			av, bv := (g.a+v)<<laneShift, (g.b+v)<<laneShift
			for _, l := range mask {
				ii[av+l] = g.wrap(-ii[bv+l])
			}
		}
	case ir.NotI:
		for v := 0; v < w; v++ {
			av, bv := (g.a+v)<<laneShift, (g.b+v)<<laneShift
			for _, l := range mask {
				ii[av+l] = g.wrap(^ii[bv+l])
			}
		}

	case ir.AddF, ir.SubF, ir.MulF, ir.DivF:
		fn := g.ffn
		for v := 0; v < w; v++ {
			av, bv, cv := (g.a+v)<<laneShift, (g.b+v)<<laneShift, (g.c+v)<<laneShift
			for _, l := range mask {
				ff[av+l] = fn(ff[bv+l], ff[cv+l])
			}
		}
	case ir.NegF:
		if g.f32 {
			for v := 0; v < w; v++ {
				av, bv := (g.a+v)<<laneShift, (g.b+v)<<laneShift
				for _, l := range mask {
					ff[av+l] = float64(float32(-ff[bv+l]))
				}
			}
		} else {
			for v := 0; v < w; v++ {
				av, bv := (g.a+v)<<laneShift, (g.b+v)<<laneShift
				for _, l := range mask {
					ff[av+l] = -ff[bv+l]
				}
			}
		}

	case ir.CmpEqI, ir.CmpNeI, ir.CmpLtI, ir.CmpLeI:
		fn := g.icmp
		for v := 0; v < w; v++ {
			av, bv, cv := (g.a+v)<<laneShift, (g.b+v)<<laneShift, (g.c+v)<<laneShift
			for _, l := range mask {
				if fn(ii[bv+l], ii[cv+l]) {
					ii[av+l] = 1
				} else {
					ii[av+l] = 0
				}
			}
		}
	case ir.CmpEqF, ir.CmpNeF, ir.CmpLtF, ir.CmpLeF:
		fn := g.fcmp
		for v := 0; v < w; v++ {
			av, bv, cv := (g.a+v)<<laneShift, (g.b+v)<<laneShift, (g.c+v)<<laneShift
			for _, l := range mask {
				if fn(ff[bv+l], ff[cv+l]) {
					ii[av+l] = 1
				} else {
					ii[av+l] = 0
				}
			}
		}

	case ir.SelI:
		for v := 0; v < w; v++ {
			av, bv, cv, dv := (g.a+v)<<laneShift, (g.b+v)<<laneShift, (g.c+v)<<laneShift, (g.d+v)<<laneShift
			for _, l := range mask {
				if ii[bv+l] != 0 {
					ii[av+l] = ii[cv+l]
				} else {
					ii[av+l] = ii[dv+l]
				}
			}
		}
	case ir.SelF:
		for v := 0; v < w; v++ {
			av, bv, cv, dv := (g.a+v)<<laneShift, (g.b+v)<<laneShift, (g.c+v)<<laneShift, (g.d+v)<<laneShift
			for _, l := range mask {
				if ii[bv+l] != 0 {
					ff[av+l] = ff[cv+l]
				} else {
					ff[av+l] = ff[dv+l]
				}
			}
		}

	case ir.CvtII:
		for v := 0; v < w; v++ {
			av, bv := (g.a+v)<<laneShift, (g.b+v)<<laneShift
			for _, l := range mask {
				val := ii[bv+l]
				if g.isBool {
					if val != 0 {
						val = 1
					}
				} else {
					val = g.wrap(val)
				}
				ii[av+l] = val
			}
		}
	case ir.CvtIF:
		for v := 0; v < w; v++ {
			av, bv := (g.a+v)<<laneShift, (g.b+v)<<laneShift
			for _, l := range mask {
				var f float64
				if g.srcSigned {
					f = float64(ii[bv+l])
				} else {
					f = float64(uint64(ii[bv+l]))
				}
				if g.f32 {
					f = float64(float32(f))
				}
				ff[av+l] = f
			}
		}
	case ir.CvtFI:
		for v := 0; v < w; v++ {
			av, bv := (g.a+v)<<laneShift, (g.b+v)<<laneShift
			for _, l := range mask {
				f := ff[bv+l]
				var val int64
				switch {
				case math.IsNaN(f):
					val = 0
				case f >= math.MaxInt64:
					val = math.MaxInt64
				case f <= math.MinInt64:
					val = math.MinInt64
				default:
					val = int64(f)
				}
				ii[av+l] = g.wrap(val)
			}
		}
	case ir.CvtFF:
		for v := 0; v < w; v++ {
			av, bv := (g.a+v)<<laneShift, (g.b+v)<<laneShift
			for _, l := range mask {
				f := ff[bv+l]
				if g.f32 {
					f = float64(float32(f))
				}
				ff[av+l] = f
			}
		}
	}
}
