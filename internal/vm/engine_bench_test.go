package vm_test

import (
	"testing"

	"maligo/internal/clc"
	"maligo/internal/clc/ir"
	"maligo/internal/vm"
)

// Engine benchmarks: one full work-group execution per iteration, the
// same kernels under the reference interpreter, the compiled fast path
// and the lock-step lane engine. `make bench` records them in
// BENCH_vm_v2.json; compare against the committed baseline before
// touching any engine's hot path.
//
// The three kernels cover the execution profiles that dominate the
// paper's benchmarks: a multiply-accumulate loop (arithmetic pipe), a
// gather over global memory (load/store pipe) and a local-memory
// reduction with barriers (work-item switching).
var engineBenchKernels = []struct {
	name string
	src  string
}{
	{"arith", `__kernel void k(__global float* out, __global const float* in, const int n) {
		int gid = get_global_id(0);
		float acc = in[gid & 63];
		for (int i = 0; i < n; i++) {
			acc = acc * 1.000001f + 0.5f;
		}
		out[gid & 63] = acc;
	}`},
	{"memory", `__kernel void k(__global float* out, __global const float* in, const int n) {
		int gid = get_global_id(0);
		float acc = 0.0f;
		for (int i = 0; i < n; i++) {
			acc += in[(gid + i) & 63];
		}
		out[gid & 63] = acc;
	}`},
	{"barrier", `__kernel void k(__global float* out, __global const float* in, const int n) {
		__local float tile[64];
		int lid = get_local_id(0);
		float acc = 0.0f;
		for (int i = 0; i < n; i++) {
			tile[lid] = in[(lid + i) & 63];
			barrier(CLK_LOCAL_MEM_FENCE);
			acc += tile[63 - lid];
			barrier(CLK_LOCAL_MEM_FENCE);
		}
		out[lid] = acc;
	}`},
}

func benchmarkEngineKernel(b *testing.B, src string, eng vm.Engine) {
	prog, err := clc.Compile("bench.cl", src, "")
	if err != nil {
		b.Fatalf("compile: %v", err)
	}
	mem := newFlatMem(1024, nil)
	for i := 0; i < 64; i++ {
		mem.putF32(256+4*i, float32(i)*0.25)
	}
	cfg := &vm.GroupConfig{
		Kernel:     prog.Kernel("k"),
		WorkDim:    1,
		LocalSize:  [3]int{64, 1, 1},
		GlobalSize: [3]int{64, 1, 1},
		Args: []vm.ArgValue{
			{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
			{Bits: ir.EncodeAddr(ir.SpaceGlobal, 256)},
			{Bits: 100},
		},
		Mem:    mem,
		Engine: eng,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var prof vm.Profile
		if err := vm.RunGroup(cfg, &prof); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngine(b *testing.B) {
	for _, k := range engineBenchKernels {
		b.Run(k.name+"/interp", func(b *testing.B) {
			benchmarkEngineKernel(b, k.src, vm.EngineInterp)
		})
		b.Run(k.name+"/compiled", func(b *testing.B) {
			benchmarkEngineKernel(b, k.src, vm.EngineCompiled)
		})
		b.Run(k.name+"/lanes", func(b *testing.B) {
			benchmarkEngineKernel(b, k.src, vm.EngineLanes)
		})
	}
}
