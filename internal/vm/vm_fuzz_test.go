package vm_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"maligo/internal/clc"
	"maligo/internal/clc/ir"
	"maligo/internal/vm"
)

// This file implements a differential tester: it generates random
// integer expression trees over three variables, compiles them through
// the full clc pipeline, executes them in the VM, and compares the
// result against a direct Go evaluation with int32 semantics. It
// exercises parser precedence, sema promotion, lowering and the
// interpreter in one shot.

type exprGen struct {
	seed uint64
	sb   strings.Builder
}

func (g *exprGen) next() uint64 {
	g.seed ^= g.seed << 13
	g.seed ^= g.seed >> 7
	g.seed ^= g.seed << 17
	return g.seed
}

func (g *exprGen) intn(n int) int { return int(g.next() % uint64(n)) }

// gen emits a random expression of the given depth and returns a
// closure evaluating it with int32 semantics.
func (g *exprGen) gen(depth int) func(a, b, c int32) int64 {
	if depth == 0 {
		switch g.intn(4) {
		case 0:
			g.sb.WriteString("a")
			return func(a, b, c int32) int64 { return int64(a) }
		case 1:
			g.sb.WriteString("b")
			return func(a, b, c int32) int64 { return int64(b) }
		case 2:
			g.sb.WriteString("c")
			return func(a, b, c int32) int64 { return int64(c) }
		default:
			k := int32(g.intn(201) - 100)
			fmt.Fprintf(&g.sb, "(%d)", k)
			return func(a, b, c int32) int64 { return int64(k) }
		}
	}
	switch g.intn(10) {
	case 0: // unary minus
		g.sb.WriteString("(-")
		x := g.gen(depth - 1)
		g.sb.WriteString(")")
		return func(a, b, c int32) int64 { return int64(-int32(x(a, b, c))) }
	case 1: // bitwise not
		g.sb.WriteString("(~")
		x := g.gen(depth - 1)
		g.sb.WriteString(")")
		return func(a, b, c int32) int64 { return int64(^int32(x(a, b, c))) }
	case 2: // ternary
		g.sb.WriteString("((")
		cond := g.gen(depth - 1)
		g.sb.WriteString(") != 0 ? (")
		tv := g.gen(depth - 1)
		g.sb.WriteString(") : (")
		fv := g.gen(depth - 1)
		g.sb.WriteString("))")
		return func(a, b, c int32) int64 {
			if int32(cond(a, b, c)) != 0 {
				return int64(int32(tv(a, b, c)))
			}
			return int64(int32(fv(a, b, c)))
		}
	case 3: // min/max builtins
		name := "min"
		if g.intn(2) == 0 {
			name = "max"
		}
		fmt.Fprintf(&g.sb, "%s((", name)
		x := g.gen(depth - 1)
		g.sb.WriteString("), (")
		y := g.gen(depth - 1)
		g.sb.WriteString("))")
		isMin := name == "min"
		return func(a, b, c int32) int64 {
			xv, yv := int32(x(a, b, c)), int32(y(a, b, c))
			if (xv < yv) == isMin {
				return int64(xv)
			}
			return int64(yv)
		}
	default: // binary operator
		ops := []struct {
			src string
			fn  func(x, y int32) int32
		}{
			{"+", func(x, y int32) int32 { return x + y }},
			{"-", func(x, y int32) int32 { return x - y }},
			{"*", func(x, y int32) int32 { return x * y }},
			{"&", func(x, y int32) int32 { return x & y }},
			{"|", func(x, y int32) int32 { return x | y }},
			{"^", func(x, y int32) int32 { return x ^ y }},
			{"<", func(x, y int32) int32 {
				if x < y {
					return 1
				}
				return 0
			}},
			{"==", func(x, y int32) int32 {
				if x == y {
					return 1
				}
				return 0
			}},
		}
		op := ops[g.intn(len(ops))]
		g.sb.WriteString("((")
		x := g.gen(depth - 1)
		fmt.Fprintf(&g.sb, ") %s (", op.src)
		y := g.gen(depth - 1)
		g.sb.WriteString("))")
		return func(a, b, c int32) int64 {
			return int64(op.fn(int32(x(a, b, c)), int32(y(a, b, c))))
		}
	}
}

// TestRandomIntExpressionsMatchGo is the differential fuzz test.
func TestRandomIntExpressionsMatchGo(t *testing.T) {
	inputs := [][3]int32{
		{0, 0, 0}, {1, 2, 3}, {-5, 7, 100},
		{math.MaxInt32, 1, -1}, {math.MinInt32, -1, 2},
		{12345, -9876, 42},
	}
	for trial := 0; trial < 60; trial++ {
		g := &exprGen{seed: uint64(trial)*2654435761 + 1}
		ref := g.gen(4)
		expr := g.sb.String()
		src := fmt.Sprintf(
			`__kernel void f(__global int* out, const int a, const int b, const int c) { out[0] = %s; }`,
			expr)
		prog, err := clc.Compile("fuzz.cl", src, "")
		if err != nil {
			t.Fatalf("trial %d: compile %q: %v", trial, expr, err)
		}
		for _, in := range inputs {
			mem := newFlatMem(8, nil)
			cfg := &vm.GroupConfig{
				Kernel:     prog.Kernel("f"),
				WorkDim:    1,
				LocalSize:  [3]int{1, 1, 1},
				GlobalSize: [3]int{1, 1, 1},
				Args: []vm.ArgValue{
					{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
					{Bits: int64(in[0])}, {Bits: int64(in[1])}, {Bits: int64(in[2])},
				},
				Mem: mem,
			}
			if err := vm.RunGroup(cfg, &vm.Profile{}); err != nil {
				t.Fatalf("trial %d run: %v\nexpr: %s", trial, err, expr)
			}
			got := mem.getI32(0)
			want := int32(ref(in[0], in[1], in[2]))
			if got != want {
				t.Fatalf("trial %d inputs %v: VM=%d Go=%d\nexpr: %s", trial, in, got, want, expr)
			}
		}
	}
}

// TestRandomFloatExpressionsMatchGo does the same for float32
// expressions restricted to exact operations (+, -, *) so results are
// bit-comparable.
func TestRandomFloatExpressionsMatchGo(t *testing.T) {
	type fgen struct{ g exprGen }
	var genF func(g *exprGen, depth int) func(a, b float32) float32
	genF = func(g *exprGen, depth int) func(a, b float32) float32 {
		if depth == 0 {
			switch g.intn(3) {
			case 0:
				g.sb.WriteString("a")
				return func(a, b float32) float32 { return a }
			case 1:
				g.sb.WriteString("b")
				return func(a, b float32) float32 { return b }
			default:
				k := float32(g.intn(17)) * 0.25
				fmt.Fprintf(&g.sb, "(%gf)", k)
				return func(a, b float32) float32 { return k }
			}
		}
		ops := []struct {
			src string
			fn  func(x, y float32) float32
		}{
			{"+", func(x, y float32) float32 { return x + y }},
			{"-", func(x, y float32) float32 { return x - y }},
			{"*", func(x, y float32) float32 { return x * y }},
		}
		op := ops[g.intn(len(ops))]
		g.sb.WriteString("((")
		x := genF(g, depth-1)
		fmt.Fprintf(&g.sb, ") %s (", op.src)
		y := genF(g, depth-1)
		g.sb.WriteString("))")
		return func(a, b float32) float32 { return op.fn(x(a, b), y(a, b)) }
	}
	_ = fgen{}

	for trial := 0; trial < 40; trial++ {
		g := &exprGen{seed: uint64(trial)*0x9E3779B9 + 7}
		ref := genF(g, 5)
		expr := g.sb.String()
		src := fmt.Sprintf(
			`__kernel void f(__global float* out, const float a, const float b) { out[0] = %s; }`,
			expr)
		prog, err := clc.Compile("fuzzf.cl", src, "")
		if err != nil {
			t.Fatalf("trial %d: compile: %v\nexpr: %s", trial, err, expr)
		}
		for _, in := range [][2]float32{{0, 0}, {1.5, -2.25}, {3.141592, 2.718281}, {1e10, -1e-10}} {
			mem := newFlatMem(8, nil)
			cfg := &vm.GroupConfig{
				Kernel:     prog.Kernel("f"),
				WorkDim:    1,
				LocalSize:  [3]int{1, 1, 1},
				GlobalSize: [3]int{1, 1, 1},
				Args: []vm.ArgValue{
					{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
					{F: float64(in[0])}, {F: float64(in[1])},
				},
				Mem: mem,
			}
			if err := vm.RunGroup(cfg, &vm.Profile{}); err != nil {
				t.Fatalf("trial %d run: %v", trial, err)
			}
			got := mem.getF32(0)
			want := ref(in[0], in[1])
			if got != want && !(math.IsNaN(float64(got)) && math.IsNaN(float64(want))) {
				t.Fatalf("trial %d inputs %v: VM=%v Go=%v\nexpr: %s", trial, in, got, want, expr)
			}
		}
	}
}
