package vm_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"maligo/internal/clc"
	"maligo/internal/clc/ir"
	"maligo/internal/vm"
)

// fuzzKernelSource builds the generated kernel for one fuzz input. The
// seed's low bits pick one of three templates: the original
// expression-tree shape, a divergent-control shape (data-dependent
// branches so lanes of one batch take different paths and must
// re-merge), and a barrier-in-loop shape (barriers inside a
// data-dependent loop so the lock-step phase protocol is exercised
// against the serial one). Shapes 1 and 2 are the mandatory seeds of
// the SIMT bug-class hunt: masked-lane side effects and barrier
// reconvergence bugs only show up under divergence.
func fuzzKernelSource(seed uint64, expr string) string {
	switch (seed >> 1) % 3 {
	case 1: // divergent control: branches + early loop exit keyed on gid
		return fmt.Sprintf(`__kernel void f(__global int* out, __global const int* in,
		                                 const int a, const int b, const int idx) {
			int gid = get_global_id(0);
			int c = in[(gid + idx) & 3];
			int tmp[4];
			tmp[gid & 3] = c ^ a;
			int s = 0;
			if ((gid ^ idx) & 1) {
				s = a - gid;
				for (int i = 0; i < ((idx & 63) + gid); i++) {
					s += tmp[(i + gid) & 3] ^ i;
					if (s > b) { s -= b; }
				}
			} else {
				for (int i = 0; i < (idx & 255); i++) {
					s += tmp[i & 3] + i;
				}
			}
			out[gid] = (%s) + s + tmp[idx & 7];
		}`, expr)
	case 2: // barrier in data-dependent loop, divergent work between phases
		return fmt.Sprintf(`__kernel void f(__global int* out, __global const int* in,
		                                 const int a, const int b, const int idx) {
			__local int tile[4];
			int gid = get_global_id(0);
			int lid = get_local_id(0);
			int c = in[(gid + idx) & 3];
			int tmp[4];
			tmp[gid & 3] = c ^ a;
			int s = 0;
			for (int i = 0; i < ((idx & 15) + 1); i++) {
				tile[lid] = s + c + i;
				barrier(CLK_LOCAL_MEM_FENCE);
				if ((lid + i) & 1) {
					s += tile[3 - lid] * 3;
				} else {
					s ^= tile[(lid + 1) & 3] + b;
				}
				barrier(CLK_LOCAL_MEM_FENCE);
			}
			out[gid] = (%s) + s + tmp[idx & 7];
		}`, expr)
	}
	return fmt.Sprintf(`__kernel void f(__global int* out, __global const int* in,
	                                 const int a, const int b, const int idx) {
		int gid = get_global_id(0);
		int c = in[(gid + idx) & 3];
		int tmp[4];
		tmp[gid & 3] = c ^ a;
		int s = 0;
		for (int i = 0; i < (idx & 255); i++) {
			s += tmp[i & 3] + i;
		}
		out[gid] = (%s) + s + tmp[idx & 7];
	}`, expr)
}

// FuzzEngineEquivalence is the engine cross-check: it generates a
// random kernel (expression tree over scalars plus global loads, a
// private scratch array, data-dependent control flow and optionally
// barriers in loops), runs the same work-group under the reference
// interpreter, the compiled fast path and the lock-step lane engine,
// and requires all three to agree on every outcome — the final global
// memory image and execution profile on success, the fault on failure.
// The loop bounds and the scratch index derive from fuzz inputs, so
// the corpus naturally explores step-limit exhaustion, divergence
// reconvergence and private out-of-bounds faults as well as clean
// runs.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(uint64(1), int32(0), int32(0), int32(0))
	f.Add(uint64(42), int32(7), int32(-3), int32(5))
	f.Add(uint64(0x9E3779B9), int32(-100), int32(100), int32(63))
	f.Add(uint64(12345), int32(1<<30), int32(-(1 << 30)), int32(1023))
	f.Add(uint64(777), int32(-1), int32(-1), int32(-1))
	// Dependency-chain shapes: these idx values drive the generated
	// kernel's loop-carried accumulation to its extremes — the longest
	// chain (idx&255 == 255), a chain ending in the private
	// out-of-bounds fault (idx&7 > 3), and chains whose loads alias the
	// same in[] slot — the data-flow analogues of deep and diamond
	// command DAGs in the queue scheduler.
	f.Add(uint64(0xDEADBEEF), int32(3), int32(9), int32(255))                     // longest loop chain
	f.Add(uint64(0xCAFEBABE), int32(-7), int32(11), int32(0xFF07))                // long chain into tmp[7] fault
	f.Add(uint64(0x0F0F0F0F), int32(1), int32(1), int32(4))                       // chain ending out of bounds
	f.Add(uint64(0xFFFFFFFFFFFFFFFF), int32(1<<31-1), int32(1<<31-1), int32(128)) // overflow mid-chain
	f.Add(uint64(2), int32(0), int32(-(1 << 31)), int32(131))                     // aliased loads, odd chain length
	f.Add(uint64(0x123456789ABCDEF), int32(85), int32(-86), int32(252))           // near-max chain, sign flips
	// Mandatory SIMT seeds: template 1 (divergent control — per-lane
	// branch and loop trip counts) and template 2 (barrier in a
	// data-dependent loop) at characteristic corners, including
	// step-limit exhaustion inside the divergent region and the
	// private out-of-bounds fault behind a divergent branch.
	f.Add(uint64(3), int32(5), int32(2), int32(63))       // divergent control, both arms taken
	f.Add(uint64(3), int32(-9), int32(0), int32(0xFF05))  // divergent control into tmp[5] fault
	f.Add(uint64(9), int32(1), int32(7), int32(255))      // divergent control, near step limit
	f.Add(uint64(5), int32(11), int32(-4), int32(15))     // barrier-in-loop, max phases
	f.Add(uint64(5), int32(0), int32(0), int32(0))        // barrier-in-loop, single phase
	f.Add(uint64(11), int32(-1), int32(1), int32(0xFF04)) // barrier-in-loop into tmp[4] fault

	f.Fuzz(func(t *testing.T, seed uint64, a, b, idx int32) {
		g := &exprGen{seed: seed | 1}
		g.gen(3)
		expr := g.sb.String()
		src := fuzzKernelSource(seed, expr)
		prog, err := clc.Compile("fuzzeq.cl", src, "")
		if err != nil {
			t.Fatalf("generated kernel failed to compile: %v\nexpr: %s", err, expr)
		}
		run := func(eng vm.Engine) ([]byte, vm.Profile, error) {
			mem := newFlatMem(64, nil)
			for i := 0; i < 4; i++ {
				mem.putI32(16+4*i, int32(seed>>(8*uint(i)))) // in[]
			}
			cfg := &vm.GroupConfig{
				Kernel:     prog.Kernel("f"),
				WorkDim:    1,
				LocalSize:  [3]int{4, 1, 1},
				GlobalSize: [3]int{4, 1, 1},
				Args: []vm.ArgValue{
					{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
					{Bits: ir.EncodeAddr(ir.SpaceGlobal, 16)},
					{Bits: int64(a)}, {Bits: int64(b)}, {Bits: int64(idx)},
				},
				Mem:       mem,
				StepLimit: 4096,
				Engine:    eng,
			}
			var prof vm.Profile
			err := vm.RunGroup(cfg, &prof)
			return mem.global, prof, err
		}

		refMem, refProf, refErr := run(vm.EngineInterp)
		for _, eng := range []vm.Engine{vm.EngineCompiled, vm.EngineLanes} {
			gotMem, gotProf, gotErr := run(eng)
			if (refErr == nil) != (gotErr == nil) {
				t.Fatalf("engines disagree on failure:\n interp: %v\n %v: %v\nexpr: %s", refErr, eng, gotErr, expr)
			}
			if refErr != nil {
				// On failure callers discard memory and profile; the
				// engines must agree on the fault itself.
				if refErr.Error() != gotErr.Error() {
					t.Fatalf("fault differs:\n interp: %v\n %v: %v\nexpr: %s", refErr, eng, gotErr, expr)
				}
				continue
			}
			if !bytes.Equal(refMem, gotMem) {
				t.Fatalf("global memory differs\n interp: %v\n %v: %v\nexpr: %s", refMem, eng, gotMem, expr)
			}
			if !reflect.DeepEqual(refProf, gotProf) {
				t.Fatalf("profiles differ\n interp: %+v\n %v: %+v\nexpr: %s", refProf, eng, gotProf, expr)
			}
		}
	})
}
