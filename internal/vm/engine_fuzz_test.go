package vm_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"maligo/internal/clc"
	"maligo/internal/clc/ir"
	"maligo/internal/vm"
)

// FuzzEngineEquivalence is the engine cross-check: it generates a
// random kernel (expression tree over scalars plus global loads, a
// private scratch array and a data-dependent loop), runs the same
// work-group under the reference interpreter and the compiled fast
// path, and requires the two engines to agree on every outcome — the
// final global memory image and execution profile on success, the
// fault on failure. The loop bound and the scratch index derive from
// fuzz inputs, so the corpus naturally explores step-limit exhaustion
// and private out-of-bounds faults as well as clean runs.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(uint64(1), int32(0), int32(0), int32(0))
	f.Add(uint64(42), int32(7), int32(-3), int32(5))
	f.Add(uint64(0x9E3779B9), int32(-100), int32(100), int32(63))
	f.Add(uint64(12345), int32(1<<30), int32(-(1 << 30)), int32(1023))
	f.Add(uint64(777), int32(-1), int32(-1), int32(-1))
	// Dependency-chain shapes: these idx values drive the generated
	// kernel's loop-carried accumulation to its extremes — the longest
	// chain (idx&255 == 255), a chain ending in the private
	// out-of-bounds fault (idx&7 > 3), and chains whose loads alias the
	// same in[] slot — the data-flow analogues of deep and diamond
	// command DAGs in the queue scheduler.
	f.Add(uint64(0xDEADBEEF), int32(3), int32(9), int32(255))                     // longest loop chain
	f.Add(uint64(0xCAFEBABE), int32(-7), int32(11), int32(0xFF07))                // long chain into tmp[7] fault
	f.Add(uint64(0x0F0F0F0F), int32(1), int32(1), int32(4))                       // chain ending out of bounds
	f.Add(uint64(0xFFFFFFFFFFFFFFFF), int32(1<<31-1), int32(1<<31-1), int32(128)) // overflow mid-chain
	f.Add(uint64(2), int32(0), int32(-(1 << 31)), int32(131))                     // aliased loads, odd chain length
	f.Add(uint64(0x123456789ABCDEF), int32(85), int32(-86), int32(252))           // near-max chain, sign flips

	f.Fuzz(func(t *testing.T, seed uint64, a, b, idx int32) {
		g := &exprGen{seed: seed | 1}
		g.gen(3)
		expr := g.sb.String()
		src := fmt.Sprintf(`__kernel void f(__global int* out, __global const int* in,
		                                 const int a, const int b, const int idx) {
			int gid = get_global_id(0);
			int c = in[(gid + idx) & 3];
			int tmp[4];
			tmp[gid & 3] = c ^ a;
			int s = 0;
			for (int i = 0; i < (idx & 255); i++) {
				s += tmp[i & 3] + i;
			}
			out[gid] = (%s) + s + tmp[idx & 7];
		}`, expr)
		prog, err := clc.Compile("fuzzeq.cl", src, "")
		if err != nil {
			t.Fatalf("generated kernel failed to compile: %v\nexpr: %s", err, expr)
		}
		run := func(eng vm.Engine) ([]byte, vm.Profile, error) {
			mem := newFlatMem(64, nil)
			for i := 0; i < 4; i++ {
				mem.putI32(16+4*i, int32(seed>>(8*uint(i)))) // in[]
			}
			cfg := &vm.GroupConfig{
				Kernel:     prog.Kernel("f"),
				WorkDim:    1,
				LocalSize:  [3]int{4, 1, 1},
				GlobalSize: [3]int{4, 1, 1},
				Args: []vm.ArgValue{
					{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)},
					{Bits: ir.EncodeAddr(ir.SpaceGlobal, 16)},
					{Bits: int64(a)}, {Bits: int64(b)}, {Bits: int64(idx)},
				},
				Mem:       mem,
				StepLimit: 4096,
				Engine:    eng,
			}
			var prof vm.Profile
			err := vm.RunGroup(cfg, &prof)
			return mem.global, prof, err
		}

		refMem, refProf, refErr := run(vm.EngineInterp)
		gotMem, gotProf, gotErr := run(vm.EngineCompiled)

		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("engines disagree on failure:\n interp:   %v\n compiled: %v\nexpr: %s", refErr, gotErr, expr)
		}
		if refErr != nil {
			// On failure callers discard memory and profile; the engines
			// must agree on the fault itself.
			if refErr.Error() != gotErr.Error() {
				t.Fatalf("fault differs:\n interp:   %v\n compiled: %v\nexpr: %s", refErr, gotErr, expr)
			}
			return
		}
		if !bytes.Equal(refMem, gotMem) {
			t.Fatalf("global memory differs\n interp:   %v\n compiled: %v\nexpr: %s", refMem, gotMem, expr)
		}
		if !reflect.DeepEqual(refProf, gotProf) {
			t.Fatalf("profiles differ\n interp:   %+v\n compiled: %+v\nexpr: %s", refProf, gotProf, expr)
		}
	})
}
