package vm_test

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"maligo/internal/clc"
	"maligo/internal/clc/ir"
	"maligo/internal/vm"
)

// runScalarKernel compiles a kernel of the form
//
//	__kernel void f(__global T* out, const T a, const T b) { out[0] = <expr>; }
//
// and executes it for one work-item, returning out[0]'s bits.
func runScalarKernel(t *testing.T, typ, expr string, argA, argB vm.ArgValue, size int) uint64 {
	t.Helper()
	src := fmt.Sprintf(`__kernel void f(__global %s* out, const %s a, const %s b) { out[0] = %s; }`,
		typ, typ, typ, expr)
	prog, err := clc.Compile("prop.cl", src, "")
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	mem := newFlatMem(16, nil)
	cfg := &vm.GroupConfig{
		Kernel:     prog.Kernel("f"),
		WorkDim:    1,
		LocalSize:  [3]int{1, 1, 1},
		GlobalSize: [3]int{1, 1, 1},
		Args:       []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}, argA, argB},
		Mem:        mem,
	}
	if err := vm.RunGroup(cfg, &vm.Profile{}); err != nil {
		t.Fatalf("run %q: %v", expr, err)
	}
	bits, err := mem.LoadBits(ir.SpaceGlobal, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	return bits
}

// Property: compiled 32-bit integer arithmetic matches Go's int32
// semantics, including wrapping.
func TestIntArithMatchesGoProperty(t *testing.T) {
	ops := []struct {
		src string
		ref func(a, b int32) int32
	}{
		{"a + b", func(a, b int32) int32 { return a + b }},
		{"a - b", func(a, b int32) int32 { return a - b }},
		{"a * b", func(a, b int32) int32 { return a * b }},
		{"a & b", func(a, b int32) int32 { return a & b }},
		{"a | b", func(a, b int32) int32 { return a | b }},
		{"a ^ b", func(a, b int32) int32 { return a ^ b }},
		{"max(a, b)", func(a, b int32) int32 {
			if a > b {
				return a
			}
			return b
		}},
		{"min(a, b)", func(a, b int32) int32 {
			if a < b {
				return a
			}
			return b
		}},
	}
	for _, op := range ops {
		op := op
		f := func(a, b int32) bool {
			got := runScalarKernel(t, "int", op.src,
				vm.ArgValue{Bits: int64(a)}, vm.ArgValue{Bits: int64(b)}, 4)
			return int32(uint32(got)) == op.ref(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%s: %v", op.src, err)
		}
	}
}

// Property: division and remainder match Go, with the VM's documented
// divide-by-zero result of 0.
func TestIntDivRemProperty(t *testing.T) {
	f := func(a, b int32) bool {
		gotQ := int32(uint32(runScalarKernel(t, "int", "a / b",
			vm.ArgValue{Bits: int64(a)}, vm.ArgValue{Bits: int64(b)}, 4)))
		gotR := int32(uint32(runScalarKernel(t, "int", "a % b",
			vm.ArgValue{Bits: int64(a)}, vm.ArgValue{Bits: int64(b)}, 4)))
		if b == 0 {
			return gotQ == 0 && gotR == 0
		}
		if a == math.MinInt32 && b == -1 {
			// Overflow case: the VM wraps like the hardware does.
			return true
		}
		return gotQ == a/b && gotR == a%b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: float arithmetic matches float32 semantics exactly
// (including rounding of every intermediate).
func TestFloatArithMatchesGoProperty(t *testing.T) {
	ops := []struct {
		src string
		ref func(a, b float32) float32
	}{
		{"a + b", func(a, b float32) float32 { return a + b }},
		{"a - b", func(a, b float32) float32 { return a - b }},
		{"a * b", func(a, b float32) float32 { return a * b }},
		{"a / b", func(a, b float32) float32 { return a / b }},
		{"fmin(a, b)", func(a, b float32) float32 { return float32(math.Min(float64(a), float64(b))) }},
		{"fmax(a, b)", func(a, b float32) float32 { return float32(math.Max(float64(a), float64(b))) }},
		{"a * a + b", func(a, b float32) float32 { return a*a + b }},
	}
	for _, op := range ops {
		op := op
		f := func(ab, bb uint32) bool {
			a := math.Float32frombits(ab)
			b := math.Float32frombits(bb)
			if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
				return true
			}
			got := math.Float32frombits(uint32(runScalarKernel(t, "float", op.src,
				vm.ArgValue{F: float64(a)}, vm.ArgValue{F: float64(b)}, 4)))
			want := op.ref(a, b)
			if math.IsNaN(float64(want)) {
				return math.IsNaN(float64(got))
			}
			return got == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%s: %v", op.src, err)
		}
	}
}

// Property: double arithmetic is bit-exact float64.
func TestDoubleArithMatchesGoProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		got := math.Float64frombits(runScalarKernel(t, "double", "a * b + a",
			vm.ArgValue{F: a}, vm.ArgValue{F: b}, 8))
		want := a*b + a
		if math.IsNaN(want) {
			return math.IsNaN(got)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: comparisons and the ternary operator agree with Go.
func TestCompareSelectProperty(t *testing.T) {
	f := func(a, b int32) bool {
		got := int32(uint32(runScalarKernel(t, "int", "a < b ? a : b",
			vm.ArgValue{Bits: int64(a)}, vm.ArgValue{Bits: int64(b)}, 4)))
		want := b
		if a < b {
			want = a
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: shifts use the masked shift count of 32-bit hardware.
func TestShiftProperty(t *testing.T) {
	f := func(a int32, s uint8) bool {
		sh := int64(s)
		got := int32(uint32(runScalarKernel(t, "int", "a << b",
			vm.ArgValue{Bits: int64(a)}, vm.ArgValue{Bits: sh}, 4)))
		want := a << (uint(sh) & 31)
		gotR := int32(uint32(runScalarKernel(t, "int", "a >> b",
			vm.ArgValue{Bits: int64(a)}, vm.ArgValue{Bits: sh}, 4)))
		wantR := a >> (uint(sh) & 31)
		return got == want && gotR == wantR
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: unsigned comparison differs from signed where it should.
func TestUnsignedCompareProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		got := runScalarKernel(t, "uint", "a < b ? (uint)1 : (uint)0",
			vm.ArgValue{Bits: int64(a)}, vm.ArgValue{Bits: int64(b)}, 4)
		want := uint64(0)
		if a < b {
			want = 1
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: vector lane independence — a float4 op equals four scalar ops.
func TestVectorLaneProperty(t *testing.T) {
	f := func(a0, a1, a2, a3, s uint16) bool {
		av := [4]float32{float32(a0), float32(a1), float32(a2), float32(a3)}
		scale := float32(s)
		src := `
__kernel void f(__global float* out, const float s) {
    float4 v = vload4(0, out);
    vstore4(v * (float4)(s) + (float4)(1.0f), 0, out);
}`
		prog, err := clc.Compile("lane.cl", src, "")
		if err != nil {
			t.Fatal(err)
		}
		mem := newFlatMem(16, nil)
		for i, v := range av {
			mem.putF32(i*4, v)
		}
		cfg := &vm.GroupConfig{
			Kernel:     prog.Kernel("f"),
			WorkDim:    1,
			LocalSize:  [3]int{1, 1, 1},
			GlobalSize: [3]int{1, 1, 1},
			Args:       []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}, {F: float64(scale)}},
			Mem:        mem,
		}
		if err := vm.RunGroup(cfg, &vm.Profile{}); err != nil {
			t.Fatal(err)
		}
		for i, v := range av {
			if got := mem.getF32(i * 4); got != v*scale+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
