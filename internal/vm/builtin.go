package vm

import (
	"fmt"
	"math"

	"maligo/internal/clc/builtin"
	"maligo/internal/clc/ir"
	"maligo/internal/clc/types"
)

// execBuiltin evaluates a CallB instruction.
func (r *groupRunner) execBuiltin(in *ir.Instr, st *wiState, w int) error {
	id := builtin.ID(in.Imm)

	// Work-item queries.
	if id.IsWorkItemQuery() || id == builtin.GetWorkDim {
		r.prof.IntInstrs++
		r.prof.IntLanes++
		var v int64
		if id == builtin.GetWorkDim {
			v = int64(r.cfg.WorkDim)
		} else {
			dim := int(st.ii[in.B])
			if dim < 0 || dim > 2 {
				// Per the OpenCL spec the result is undefined; return 0/1
				// like real drivers do.
				dim = 0
			}
			switch id {
			case builtin.GetGlobalID:
				v = int64(r.cfg.GroupID[dim]*dimOr1(r.cfg.LocalSize, dim) + r.localID[dim] + r.cfg.GlobalOffset[dim])
			case builtin.GetLocalID:
				v = int64(r.localID[dim])
			case builtin.GetGroupID:
				v = int64(r.cfg.GroupID[dim])
			case builtin.GetGlobalSize:
				v = int64(dimOr1(r.cfg.GlobalSize, dim))
			case builtin.GetLocalSize:
				v = int64(dimOr1(r.cfg.LocalSize, dim))
			case builtin.GetNumGroups:
				v = int64(dimOr1(r.cfg.GlobalSize, dim) / dimOr1(r.cfg.LocalSize, dim))
			case builtin.GetGlobalOffset:
				v = int64(r.cfg.GlobalOffset[dim])
			}
		}
		st.ii[in.A] = v
		return nil
	}

	if id.IsTranscendental() {
		r.prof.TranscInstr++
		r.prof.TranscLanes += uint64(w)
	} else {
		countFloatOrInt(r.prof, in.Base, w)
	}

	switch id {
	// Unary float.
	case builtin.Sqrt, builtin.NativeSqrt:
		return r.mapUnary(in, st, w, math.Sqrt)
	case builtin.Rsqrt, builtin.NativeRsqrt:
		return r.mapUnary(in, st, w, func(x float64) float64 { return 1 / math.Sqrt(x) })
	case builtin.Cbrt:
		return r.mapUnary(in, st, w, math.Cbrt)
	case builtin.Exp, builtin.NativeExp:
		return r.mapUnary(in, st, w, math.Exp)
	case builtin.Exp2:
		return r.mapUnary(in, st, w, math.Exp2)
	case builtin.Log, builtin.NativeLog:
		return r.mapUnary(in, st, w, math.Log)
	case builtin.Log2:
		return r.mapUnary(in, st, w, math.Log2)
	case builtin.Sin, builtin.NativeSin:
		return r.mapUnary(in, st, w, math.Sin)
	case builtin.Cos, builtin.NativeCos:
		return r.mapUnary(in, st, w, math.Cos)
	case builtin.Tan:
		return r.mapUnary(in, st, w, math.Tan)
	case builtin.Fabs:
		return r.mapUnary(in, st, w, math.Abs)
	case builtin.Floor:
		return r.mapUnary(in, st, w, math.Floor)
	case builtin.Ceil:
		return r.mapUnary(in, st, w, math.Ceil)
	case builtin.Round:
		return r.mapUnary(in, st, w, math.Round)
	case builtin.Trunc:
		return r.mapUnary(in, st, w, math.Trunc)
	case builtin.NativeRecip:
		return r.mapUnary(in, st, w, func(x float64) float64 { return 1 / x })

	// Binary float.
	case builtin.Pow:
		return r.mapBinary(in, st, w, math.Pow)
	case builtin.Hypot:
		return r.mapBinary(in, st, w, math.Hypot)
	case builtin.Fmin:
		return r.mapBinary(in, st, w, math.Min)
	case builtin.Fmax:
		return r.mapBinary(in, st, w, math.Max)
	case builtin.Fmod:
		return r.mapBinary(in, st, w, math.Mod)
	case builtin.NativeDivide:
		return r.mapBinary(in, st, w, func(a, b float64) float64 { return a / b })
	case builtin.Step:
		return r.mapBinary(in, st, w, func(edge, x float64) float64 {
			if x < edge {
				return 0
			}
			return 1
		})

	// Ternary float.
	case builtin.Fma, builtin.Mad:
		for l := 0; l < w; l++ {
			a := st.ff[int(in.B)+l]
			b := st.ff[int(in.C)+l]
			c := st.ff[int(in.D)+l]
			st.ff[int(in.A)+l] = roundBase(in.Base, a*b+c)
		}
		return nil
	case builtin.Mix:
		for l := 0; l < w; l++ {
			a := st.ff[int(in.B)+l]
			b := st.ff[int(in.C)+l]
			t := st.ff[int(in.D)+l]
			st.ff[int(in.A)+l] = roundBase(in.Base, a+(b-a)*t)
		}
		return nil

	// min/max/abs/clamp on either bank.
	case builtin.Min, builtin.Max:
		if in.Base.IsFloat() {
			fn := math.Min
			if id == builtin.Max {
				fn = math.Max
			}
			return r.mapBinary(in, st, w, fn)
		}
		signed := in.Base.IsSigned()
		for l := 0; l < w; l++ {
			a := st.ii[int(in.B)+l]
			b := st.ii[int(in.C)+l]
			less := (signed && a < b) || (!signed && uint64(a) < uint64(b))
			if (id == builtin.Min) == less {
				st.ii[int(in.A)+l] = a
			} else {
				st.ii[int(in.A)+l] = b
			}
		}
		return nil
	case builtin.Abs:
		for l := 0; l < w; l++ {
			v := st.ii[int(in.B)+l]
			if in.Base.IsSigned() && v < 0 {
				v = -v
			}
			st.ii[int(in.A)+l] = wrapInt(in.Base, v)
		}
		return nil
	case builtin.Clamp:
		if in.Base.IsFloat() {
			for l := 0; l < w; l++ {
				x := st.ff[int(in.B)+l]
				lo := st.ff[int(in.C)+l]
				hi := st.ff[int(in.D)+l]
				st.ff[int(in.A)+l] = roundBase(in.Base, math.Min(math.Max(x, lo), hi))
			}
			return nil
		}
		signed := in.Base.IsSigned()
		for l := 0; l < w; l++ {
			x := st.ii[int(in.B)+l]
			lo := st.ii[int(in.C)+l]
			hi := st.ii[int(in.D)+l]
			if signed {
				if x < lo {
					x = lo
				}
				if x > hi {
					x = hi
				}
			} else {
				if uint64(x) < uint64(lo) {
					x = lo
				}
				if uint64(x) > uint64(hi) {
					x = hi
				}
			}
			st.ii[int(in.A)+l] = x
		}
		return nil
	case builtin.Select:
		if in.Base.IsFloat() {
			for l := 0; l < w; l++ {
				if st.ii[int(in.D)+l] != 0 {
					st.ff[int(in.A)+l] = st.ff[int(in.C)+l]
				} else {
					st.ff[int(in.A)+l] = st.ff[int(in.B)+l]
				}
			}
			return nil
		}
		for l := 0; l < w; l++ {
			if st.ii[int(in.D)+l] != 0 {
				st.ii[int(in.A)+l] = st.ii[int(in.C)+l]
			} else {
				st.ii[int(in.A)+l] = st.ii[int(in.B)+l]
			}
		}
		return nil

	// Geometric: operands are w-wide, result scalar (except normalize).
	case builtin.Dot:
		var sum float64
		for l := 0; l < w; l++ {
			sum += st.ff[int(in.B)+l] * st.ff[int(in.C)+l]
		}
		st.ff[in.A] = roundBase(in.Base, sum)
		return nil
	case builtin.Length:
		var sum float64
		for l := 0; l < w; l++ {
			v := st.ff[int(in.B)+l]
			sum += v * v
		}
		st.ff[in.A] = roundBase(in.Base, math.Sqrt(sum))
		return nil
	case builtin.Distance:
		var sum float64
		for l := 0; l < w; l++ {
			d := st.ff[int(in.B)+l] - st.ff[int(in.C)+l]
			sum += d * d
		}
		st.ff[in.A] = roundBase(in.Base, math.Sqrt(sum))
		return nil
	case builtin.Normalize:
		var sum float64
		for l := 0; l < w; l++ {
			v := st.ff[int(in.B)+l]
			sum += v * v
		}
		n := math.Sqrt(sum)
		for l := 0; l < w; l++ {
			st.ff[int(in.A)+l] = roundBase(in.Base, st.ff[int(in.B)+l]/n)
		}
		return nil
	}
	return fmt.Errorf("vm: unimplemented builtin %v", id)
}

func countFloatOrInt(prof *Profile, base types.Base, w int) {
	if base.IsFloat() {
		countFloat(prof, base, w)
	} else {
		prof.IntInstrs++
		prof.IntLanes += uint64(w)
	}
}

func (r *groupRunner) mapUnary(in *ir.Instr, st *wiState, w int, fn func(float64) float64) error {
	for l := 0; l < w; l++ {
		st.ff[int(in.A)+l] = roundBase(in.Base, fn(st.ff[int(in.B)+l]))
	}
	return nil
}

func (r *groupRunner) mapBinary(in *ir.Instr, st *wiState, w int, fn func(a, b float64) float64) error {
	for l := 0; l < w; l++ {
		st.ff[int(in.A)+l] = roundBase(in.Base, fn(st.ff[int(in.B)+l], st.ff[int(in.C)+l]))
	}
	return nil
}

func dimOr1(dims [3]int, d int) int {
	if dims[d] <= 0 {
		return 1
	}
	return dims[d]
}
