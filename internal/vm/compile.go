package vm

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"maligo/internal/clc/builtin"
	"maligo/internal/clc/ir"
	"maligo/internal/clc/types"
)

// This file implements the closure-compiled fast path: the kernel IR
// is translated once into a flat program of pre-decoded execution
// units and the result is cached on the kernel object. Basic blocks
// become superinstructions — one closure runs the whole block under a
// single dispatch. Inside a block, runs of pure register-to-register
// instructions execute back to back out of a pre-decoded instruction
// array (a tight switch, no per-instruction dispatch or call), with
// their profile contribution folded into one precomputed delta;
// effectful instructions (memory, builtins, atomics, control flow)
// keep exact per-instruction bookkeeping. The compiled engine must be
// observationally identical to the interpreter in exec.go — same
// memory effects, same Profile counts, same observer callback order,
// same errors at the same points — so every execution body mirrors
// the corresponding interpreter case exactly, and the differential
// tests plus FuzzEngineEquivalence hold the two engines together.
// When touching either engine, change both.

// cop is one compiled dispatch unit: a single instruction or a whole
// basic block. It runs against the shared group runner and the current
// work-item state. The dispatch loop accounts the first instruction
// (pc advance, step limit, instruction count) exactly like the
// interpreter loop does; block closures take over that bookkeeping for
// the instructions after the first.
type cop func(r *groupRunner, st *wiState) error

// pureOp is the fallback body of a pure instruction the pre-decoded
// switch has no specialized kind for (vector widths, uncommon bases).
type pureOp func(r *groupRunner, st *wiState)

// pureDelta is the static profile contribution of one pure
// instruction (or the sum over a run of them), applied in one shot
// where the interpreter would count op by op. Only the counters a pure
// op can move are represented.
type pureDelta struct {
	intInstrs, intLanes uint64
	f32Instrs, f32Lanes uint64
	f64Instrs, f64Lanes uint64
	slots               uint64
}

// add applies the delta to a profile.
func (d *pureDelta) add(p *Profile) {
	p.IntInstrs += d.intInstrs
	p.IntLanes += d.intLanes
	p.F32Instrs += d.f32Instrs
	p.F32Lanes += d.f32Lanes
	p.F64Instrs += d.f64Instrs
	p.F64Lanes += d.f64Lanes
	p.ArithSlots128 += d.slots
}

// accum folds another delta into d.
func (d *pureDelta) accum(o *pureDelta) {
	d.intInstrs += o.intInstrs
	d.intLanes += o.intLanes
	d.f32Instrs += o.f32Instrs
	d.f32Lanes += o.f32Lanes
	d.f64Instrs += o.f64Instrs
	d.f64Lanes += o.f64Lanes
	d.slots += o.slots
}

// pKind enumerates the pre-decoded pure instruction forms runPure
// executes directly. pFn runs the fallback closure.
type pKind uint8

const (
	pFn pKind = iota

	pMovI // also CvtII with identity wrapping
	pMovF // also CvtFF double→double
	pImmI
	pImmF

	pAddI64
	pSubI64
	pMulI64
	pAddI32
	pSubI32
	pMulI32
	pAddU32
	pSubU32
	pMulU32
	pAndI64
	pOrI64
	pXorI64
	pShlI64
	pShlI32
	pShrS64
	pShrS32

	pAddF32
	pSubF32
	pMulF32
	pDivF32
	pAddF64
	pSubF64
	pMulF64
	pDivF64
	pNegF32
	pNegF64

	// Fused multiply-add pairs (fuseRun): the product lands in a, the
	// sum of the product and register imm lands in d. The F kinds keep
	// the add's operand order (L: product left, R: product right).
	pMaddI64
	pMaddI32
	pMaddF32L
	pMaddF32R
	pMaddF64L
	pMaddF64R

	pCmpEqI
	pCmpNeI
	pCmpLtS
	pCmpLtU
	pCmpLeS
	pCmpLeU
	pCmpEqF
	pCmpNeF
	pCmpLtF
	pCmpLeF

	pSelI
	pSelF

	pCvtII32  // sign-extending int conversion
	pCvtIIU32 // zero-extending uint conversion
	pCvtSF64  // signed int → double
	pCvtSF32  // signed int → float (double rounding, like the interpreter)
	pCvtUF64
	pCvtUF32
	pCvtFF32 // double → float round

	pGlobalID
	pLocalID
	pGroupID
	pGlobalSize
	pLocalSize
	pNumGroups
	pGlobalOffset
	pWorkDim

	// Scalar memory accesses, inlined into the block program so a
	// straight-line body runs under one switch loop. These are
	// effectful: each syncs the deferred step/pc bookkeeping (pre) and
	// can fault. a = value register, b = address register, size is the
	// element size, d the source line for observers.
	pLoadF32
	pLoadF64
	pLoadInt
	pStoreF32
	pStoreF64
	pStoreInt
)

// pIns is one pre-decoded block-program instruction: the specialized
// kind plus its resolved register slots and immediates. Unspecialized
// pure forms carry their body in fn; inline memory kinds carry the
// element base/size and their bookkeeping sync count (pre).
type pIns struct {
	kind       pKind
	base       uint8
	size       uint16
	pre        uint16
	a, b, c, d int32
	imm        int64
	fimm       float64
	fn         pureOp
}

// fnIns wraps a fallback closure as a pre-decoded instruction.
func fnIns(f pureOp) pIns { return pIns{kind: pFn, fn: f} }

// errYield is the internal signal a Ret or BarrierOp closure returns
// to hand control back to the dispatch loop; st.done distinguishes the
// two. It never escapes the VM.
var errYield = errors.New("vm: yield")

// Compiled is the closure-compiled form of one kernel, cached on the
// ir.Kernel via its CompiledForm slot.
type Compiled struct {
	k      *ir.Kernel
	ops    []cop
	blocks int
	fused  int
}

// NumOps returns the compiled program length (one slot per IR
// instruction; instructions inside a block keep their own slot so jump
// targets stay addressable).
func (c *Compiled) NumOps() int { return len(c.ops) }

// Blocks returns the number of basic blocks the program was split
// into (each one closure, each one dispatch per execution).
func (c *Compiled) Blocks() int { return c.blocks }

// Fused returns the number of instructions folded into a preceding
// block closure — the dispatches saved per straight-line pass over the
// program relative to instruction-at-a-time execution.
func (c *Compiled) Fused() int { return c.fused }

// compiledFor returns the kernel's cached compiled program, compiling
// on first use. Concurrent first users may compile twice; the result
// is a pure function of the kernel, so whichever store wins is
// equivalent.
func compiledFor(k *ir.Kernel) *Compiled {
	if c, ok := k.CompiledForm().(*Compiled); ok {
		return c
	}
	c := CompileKernel(k)
	k.SetCompiledForm(c)
	return c
}

// CompileKernel translates the kernel IR into its closure program:
// per-instruction units first, then one superinstruction closure per
// multi-instruction basic block. Exported for the engine benchmarks
// and equivalence tests; normal execution goes through the per-kernel
// cache.
func CompileKernel(k *ir.Kernel) *Compiled {
	code := k.Code
	n := len(code)
	ops := make([]cop, n)
	pures := make([]pIns, n)
	deltas := make([]pureDelta, n)
	isPure := make([]bool, n)
	isInline := make([]bool, n)
	for i := range code {
		if p, d, ok := genPure(&code[i]); ok {
			pures[i], deltas[i], isPure[i] = p, d, true
			ops[i] = standaloneOp(p, d)
			continue
		}
		ops[i] = genOp(&code[i])
		if p, ok := genInline(&code[i]); ok {
			pures[i], isInline[i] = p, true
		}
	}

	// Block boundaries: the function entry, every jump target, and the
	// instruction after every control-flow op. Dispatch can only ever
	// land on one of these (entry pc 0, a taken jump, fallthrough past
	// a block, or resume after a barrier), so executing whole blocks
	// under one dispatch preserves the instruction-at-a-time
	// observables; the non-start slots keep their standalone closures
	// anyway.
	isStart := make([]bool, n+1)
	isStart[n] = true
	if n > 0 {
		isStart[0] = true
	}
	for i := range code {
		switch code[i].Op {
		case ir.Jmp, ir.JmpIf, ir.JmpIfZ:
			if t := code[i].Imm; t >= 0 && t <= int64(n) {
				isStart[t] = true
			}
			isStart[i+1] = true
		case ir.Ret, ir.BarrierOp:
			isStart[i+1] = true
		}
	}

	blocks, fused := 0, 0
	for start := 0; start < n; {
		end := start + 1
		for end < n && !isStart[end] {
			end++
		}
		blocks++
		if end-start > 1 {
			fused += end - start - 1
			ops[start] = compileBlock(pures, deltas, isPure, isInline, ops, start, end)
		}
		start = end
	}
	return &Compiled{k: k, ops: ops, blocks: blocks, fused: fused}
}

// Block bookkeeping. The dispatch loop has already accounted the
// block's first instruction (pc advance, steps, limit check, Instrs)
// before the closure runs, exactly as the interpreter does per
// instruction. Inside the block:
//
//   - each effectful instruction after the first replicates the
//     dispatch bookkeeping exactly (countEff) — pc advance, step
//     increment, limit check before the instruction runs, then the
//     instruction count — so faults, observer callbacks and
//     ErrStepLimit gate at the same points as in the interpreter;
//   - a run of pure instructions executes back to back and bulk-adds
//     its length to steps and Instrs without a limit check. A pure op
//     has no observable effect (no memory, no observer callback), so
//     an overrun inside the run is harmless as long as it is caught
//     before the next observable instruction — and it always is:
//     every effectful op checks before running, every block ends in a
//     checked control op or falls through to the dispatch loop's
//     check, and a loop can only close through a (checked) jump. On
//     that deferred error path steps, Instrs, the pure-op profile
//     counters and register contents may differ from the point where
//     the interpreter stopped, but every caller discards the profile
//     and all VM state when RunGroup fails, so the two engines remain
//     observationally identical;
//   - the summed profile delta of all the block's pure instructions is
//     applied once per execution, up front — on success every pure op
//     ran (control ops only end blocks), and on failure the profile is
//     discarded.

// countEff performs the in-block dispatch bookkeeping for one
// effectful instruction. It reports false when the step limit tripped,
// in which case the instruction must not run.
func (r *groupRunner) countEff(st *wiState) bool {
	st.pc++
	r.steps++
	if r.steps > r.limit {
		return false
	}
	r.prof.Instrs++
	return true
}

// bpart is one segment of a compiled block: either a run of
// pre-decoded pure instructions (eff nil) with its pc/step bump, or
// one effectful instruction with its in-block bookkeeping flag.
type bpart struct {
	run     []pIns
	ki      int
	eff     cop
	counted bool
}

// compileBlock builds the superinstruction closure for the block
// code[start:end]: pure runs (multiply-add pairs fused) and inline
// scalar memory accesses merge into contiguous pIns segments, the
// remaining effectful instructions stay closure parts, and all the
// step/pc bookkeeping is resolved at compile time.
//
// acc tracks how many of the block's instructions are already
// accounted at each point: the dispatch loop pre-counts the first
// (acc starts at 1), every inline memory access syncs its own pre
// count, each segment flushes its unaccounted tail through ki, and
// closure parts count themselves through the counted flag.
func compileBlock(pures []pIns, deltas []pureDelta, isPure, isInline []bool, ops []cop, start, end int) cop {
	var parts []bpart
	var total pureDelta
	acc := 1 // instructions accounted so far (dispatch counts the first)
	idx := 0 // instruction index within the block
	for i := start; i < end; {
		if isPure[i] || isInline[i] {
			var ps []pIns
			for i < end && (isPure[i] || isInline[i]) {
				in := pures[i]
				if isPure[i] {
					total.accum(&deltas[i])
				} else {
					in.pre = uint16(idx + 1 - acc)
					acc = idx + 1
				}
				ps = append(ps, in)
				idx++
				i++
			}
			parts = append(parts, bpart{run: fuseRun(ps), ki: idx - acc})
			acc = idx
			continue
		}
		parts = append(parts, bpart{eff: ops[i], counted: acc != idx+1})
		acc = idx + 1
		idx++
		i++
	}
	return blockOp(parts, total)
}

// blockOp drives the block's parts under one closure, applying the
// block's aggregate pure-instruction profile delta once. The dominant
// shape — one pure run feeding one effectful/control instruction — is
// specialized.
func blockOp(parts []bpart, total pureDelta) cop {
	if len(parts) == 2 && parts[0].eff == nil && parts[1].eff != nil {
		run, ki := parts[0].run, parts[0].ki
		k := uint64(ki)
		eff := parts[1].eff
		return func(r *groupRunner, st *wiState) error {
			total.add(r.prof)
			if err := runPure(r, st, run); err != nil {
				return err
			}
			st.pc += ki
			r.steps += k
			r.prof.Instrs += k
			if !r.countEff(st) {
				return ErrStepLimit
			}
			return eff(r, st)
		}
	}
	return func(r *groupRunner, st *wiState) error {
		total.add(r.prof)
		for i := range parts {
			p := &parts[i]
			if p.eff == nil {
				if err := runPure(r, st, p.run); err != nil {
					return err
				}
				st.pc += p.ki
				r.steps += uint64(p.ki)
				r.prof.Instrs += uint64(p.ki)
				continue
			}
			if p.counted {
				if !r.countEff(st) {
					return ErrStepLimit
				}
			}
			if err := p.eff(r, st); err != nil {
				return err
			}
		}
		return nil
	}
}

// fuseRun peepholes a pure run: a multiply directly followed by an add
// that consumes its result becomes one multiply-add superinstruction
// (both destinations still written, so later readers of the product
// are unaffected). The run's instruction and profile accounting uses
// the pre-fusion length — fusion only removes dispatch iterations.
func fuseRun(ps []pIns) []pIns {
	out := make([]pIns, 0, len(ps))
	for i := 0; i < len(ps); i++ {
		if i+1 < len(ps) {
			if f, ok := fusePair(&ps[i], &ps[i+1]); ok {
				out = append(out, f)
				i++
				continue
			}
		}
		out = append(out, ps[i])
	}
	return out
}

// fusePair fuses mul+add when the add reads the product. Integer
// addition commutes exactly, so one kind covers both operand orders;
// float kinds preserve the operand order to keep NaN propagation
// bit-identical to the interpreter. The second add operand's register
// travels in imm.
func fusePair(m, a *pIns) (pIns, bool) {
	switch m.kind {
	case pMulI64:
		if a.kind != pAddI64 {
			return pIns{}, false
		}
	case pMulI32:
		if a.kind != pAddI32 {
			return pIns{}, false
		}
	case pMulF32:
		if a.kind != pAddF32 {
			return pIns{}, false
		}
	case pMulF64:
		if a.kind != pAddF64 {
			return pIns{}, false
		}
	default:
		return pIns{}, false
	}
	var other int32
	left := false
	switch m.a {
	case a.b:
		other, left = a.c, true
	case a.c:
		other = a.b
	default:
		return pIns{}, false
	}
	f := pIns{a: m.a, b: m.b, c: m.c, d: a.a, imm: int64(other)}
	switch m.kind {
	case pMulI64:
		f.kind = pMaddI64
	case pMulI32:
		f.kind = pMaddI32
	case pMulF32:
		f.kind = pMaddF32R
		if left {
			f.kind = pMaddF32L
		}
	default:
		f.kind = pMaddF64R
		if left {
			f.kind = pMaddF64L
		}
	}
	return f, true
}

// standaloneOp wraps a pure instruction for slots dispatched on their
// own (single-instruction blocks, and the landing-pad slots inside
// blocks): it applies the instruction's profile delta and runs the
// body; the dispatch loop supplies the step and instruction-count
// bookkeeping.
func standaloneOp(p pIns, d pureDelta) cop {
	ps := []pIns{p}
	return func(r *groupRunner, st *wiState) error {
		d.add(r.prof)
		return runPure(r, st, ps)
	}
}

// syncEff settles the deferred in-block bookkeeping before an inline
// effectful instruction runs: pre covers the pure instructions since
// the last sync point plus the instruction itself. Reports false when
// the step limit tripped, in which case the instruction must not run.
func (r *groupRunner) syncEff(st *wiState, pre uint16) bool {
	st.pc += int(pre)
	r.steps += uint64(pre)
	if r.steps > r.limit {
		return false
	}
	r.prof.Instrs += uint64(pre)
	return true
}

// runPure executes one pre-decoded block-program segment: pure
// instructions plus inline scalar memory accesses. The switch bodies
// mirror the interpreter cases in exec.go exactly (wrapping, float32
// rounding, dimension clamping, access order); pure profile counting
// is the caller's aggregated delta, memory kinds count themselves like
// the interpreter does.
func runPure(r *groupRunner, st *wiState, ins []pIns) error {
	ii, ff := st.ii, st.ff
	for idx := range ins {
		in := &ins[idx]
		switch in.kind {
		case pFn:
			in.fn(r, st)

		case pLoadF32, pLoadF64, pLoadInt:
			if !r.syncEff(st, in.pre) {
				return ErrStepLimit
			}
			addr := ii[in.b]
			space, off := ir.DecodeAddr(addr)
			size := int(in.size)
			p := r.prof
			p.LoadInstrs++
			p.LSSlots128++
			p.LSLanes++
			if space == ir.SpacePrivate {
				p.PrivateAccesses++
			}
			p.BytesRead[space&3] += uint64(size)
			if r.cfg.Observer != nil {
				if r.ctxObs != nil {
					r.ctxObs.OnContext(r.item, r.phase, int(in.d))
				}
				r.cfg.Observer.OnAccess(space, addr, size, false)
			}
			var bits uint64
			var err error
			switch space {
			case ir.SpaceLocal:
				bits, err = sliceLoad(r.local, off, size)
			case ir.SpacePrivate:
				bits, err = sliceLoad(st.priv, off, size)
			default:
				bits, err = r.cfg.Mem.LoadBits(space, off, size)
			}
			if err != nil {
				return err
			}
			switch in.kind {
			case pLoadF32:
				ff[in.a] = float64(math.Float32frombits(uint32(bits)))
			case pLoadF64:
				ff[in.a] = math.Float64frombits(bits)
			default:
				ii[in.a] = bitsToInt(types.Base(in.base), bits)
			}

		case pStoreF32, pStoreF64, pStoreInt:
			if !r.syncEff(st, in.pre) {
				return ErrStepLimit
			}
			addr := ii[in.b]
			space, off := ir.DecodeAddr(addr)
			size := int(in.size)
			p := r.prof
			p.StoreInstrs++
			p.LSSlots128++
			p.LSLanes++
			if space == ir.SpacePrivate {
				p.PrivateAccesses++
			}
			p.BytesWritten[space&3] += uint64(size)
			if r.cfg.Observer != nil {
				if r.ctxObs != nil {
					r.ctxObs.OnContext(r.item, r.phase, int(in.d))
				}
				r.cfg.Observer.OnAccess(space, addr, size, true)
			}
			var bits uint64
			switch in.kind {
			case pStoreF32:
				bits = uint64(math.Float32bits(float32(ff[in.a])))
			case pStoreF64:
				bits = math.Float64bits(ff[in.a])
			default:
				bits = intToBits(types.Base(in.base), ii[in.a])
			}
			var err error
			switch space {
			case ir.SpaceLocal:
				err = sliceStore(r.local, off, size, bits)
			case ir.SpacePrivate:
				err = sliceStore(st.priv, off, size, bits)
			default:
				err = r.cfg.Mem.StoreBits(space, off, size, bits)
			}
			if err != nil {
				return err
			}

		case pMovI:
			ii[in.a] = ii[in.b]
		case pMovF:
			ff[in.a] = ff[in.b]
		case pImmI:
			ii[in.a] = in.imm
		case pImmF:
			ff[in.a] = in.fimm

		case pAddI64:
			ii[in.a] = ii[in.b] + ii[in.c]
		case pSubI64:
			ii[in.a] = ii[in.b] - ii[in.c]
		case pMulI64:
			ii[in.a] = ii[in.b] * ii[in.c]
		case pAddI32:
			ii[in.a] = int64(int32(ii[in.b] + ii[in.c]))
		case pSubI32:
			ii[in.a] = int64(int32(ii[in.b] - ii[in.c]))
		case pMulI32:
			ii[in.a] = int64(int32(ii[in.b] * ii[in.c]))
		case pAddU32:
			ii[in.a] = int64(uint32(ii[in.b] + ii[in.c]))
		case pSubU32:
			ii[in.a] = int64(uint32(ii[in.b] - ii[in.c]))
		case pMulU32:
			ii[in.a] = int64(uint32(ii[in.b] * ii[in.c]))
		case pAndI64:
			ii[in.a] = ii[in.b] & ii[in.c]
		case pOrI64:
			ii[in.a] = ii[in.b] | ii[in.c]
		case pXorI64:
			ii[in.a] = ii[in.b] ^ ii[in.c]
		case pShlI64:
			ii[in.a] = ii[in.b] << (uint64(ii[in.c]) & 63)
		case pShlI32:
			ii[in.a] = int64(int32(ii[in.b] << (uint64(ii[in.c]) & 31)))
		case pShrS64:
			ii[in.a] = ii[in.b] >> (uint64(ii[in.c]) & 63)
		case pShrS32:
			ii[in.a] = int64(int32(ii[in.b] >> (uint64(ii[in.c]) & 31)))

		case pAddF32:
			ff[in.a] = float64(float32(ff[in.b] + ff[in.c]))
		case pSubF32:
			ff[in.a] = float64(float32(ff[in.b] - ff[in.c]))
		case pMulF32:
			ff[in.a] = float64(float32(ff[in.b] * ff[in.c]))
		case pDivF32:
			ff[in.a] = float64(float32(ff[in.b] / ff[in.c]))
		case pAddF64:
			ff[in.a] = ff[in.b] + ff[in.c]
		case pSubF64:
			ff[in.a] = ff[in.b] - ff[in.c]
		case pMulF64:
			ff[in.a] = ff[in.b] * ff[in.c]
		case pDivF64:
			ff[in.a] = ff[in.b] / ff[in.c]
		case pNegF32:
			ff[in.a] = float64(float32(-ff[in.b]))
		case pNegF64:
			ff[in.a] = -ff[in.b]

		case pMaddI64:
			t := ii[in.b] * ii[in.c]
			ii[in.a] = t
			ii[in.d] = t + ii[in.imm]
		case pMaddI32:
			t := int64(int32(ii[in.b] * ii[in.c]))
			ii[in.a] = t
			ii[in.d] = int64(int32(t + ii[in.imm]))
		case pMaddF32L:
			t := float64(float32(ff[in.b] * ff[in.c]))
			ff[in.a] = t
			ff[in.d] = float64(float32(t + ff[in.imm]))
		case pMaddF32R:
			t := float64(float32(ff[in.b] * ff[in.c]))
			ff[in.a] = t
			ff[in.d] = float64(float32(ff[in.imm] + t))
		case pMaddF64L:
			t := ff[in.b] * ff[in.c]
			ff[in.a] = t
			ff[in.d] = t + ff[in.imm]
		case pMaddF64R:
			t := ff[in.b] * ff[in.c]
			ff[in.a] = t
			ff[in.d] = ff[in.imm] + t

		case pCmpEqI:
			if ii[in.b] == ii[in.c] {
				ii[in.a] = 1
			} else {
				ii[in.a] = 0
			}
		case pCmpNeI:
			if ii[in.b] != ii[in.c] {
				ii[in.a] = 1
			} else {
				ii[in.a] = 0
			}
		case pCmpLtS:
			if ii[in.b] < ii[in.c] {
				ii[in.a] = 1
			} else {
				ii[in.a] = 0
			}
		case pCmpLtU:
			if uint64(ii[in.b]) < uint64(ii[in.c]) {
				ii[in.a] = 1
			} else {
				ii[in.a] = 0
			}
		case pCmpLeS:
			if ii[in.b] <= ii[in.c] {
				ii[in.a] = 1
			} else {
				ii[in.a] = 0
			}
		case pCmpLeU:
			if uint64(ii[in.b]) <= uint64(ii[in.c]) {
				ii[in.a] = 1
			} else {
				ii[in.a] = 0
			}
		case pCmpEqF:
			if ff[in.b] == ff[in.c] {
				ii[in.a] = 1
			} else {
				ii[in.a] = 0
			}
		case pCmpNeF:
			if ff[in.b] != ff[in.c] {
				ii[in.a] = 1
			} else {
				ii[in.a] = 0
			}
		case pCmpLtF:
			if ff[in.b] < ff[in.c] {
				ii[in.a] = 1
			} else {
				ii[in.a] = 0
			}
		case pCmpLeF:
			if ff[in.b] <= ff[in.c] {
				ii[in.a] = 1
			} else {
				ii[in.a] = 0
			}

		case pSelI:
			if ii[in.b] != 0 {
				ii[in.a] = ii[in.c]
			} else {
				ii[in.a] = ii[in.d]
			}
		case pSelF:
			if ii[in.b] != 0 {
				ff[in.a] = ff[in.c]
			} else {
				ff[in.a] = ff[in.d]
			}

		case pCvtII32:
			ii[in.a] = int64(int32(ii[in.b]))
		case pCvtIIU32:
			ii[in.a] = int64(uint32(ii[in.b]))
		case pCvtSF64:
			ff[in.a] = float64(ii[in.b])
		case pCvtSF32:
			ff[in.a] = float64(float32(float64(ii[in.b])))
		case pCvtUF64:
			ff[in.a] = float64(uint64(ii[in.b]))
		case pCvtUF32:
			ff[in.a] = float64(float32(float64(uint64(ii[in.b]))))
		case pCvtFF32:
			ff[in.a] = float64(float32(ff[in.b]))

		case pGlobalID:
			dim := int(ii[in.b])
			if dim < 0 || dim > 2 {
				dim = 0
			}
			ii[in.a] = int64(r.cfg.GroupID[dim]*dimOr1(r.cfg.LocalSize, dim) + r.localID[dim] + r.cfg.GlobalOffset[dim])
		case pLocalID:
			dim := int(ii[in.b])
			if dim < 0 || dim > 2 {
				dim = 0
			}
			ii[in.a] = int64(r.localID[dim])
		case pGroupID:
			dim := int(ii[in.b])
			if dim < 0 || dim > 2 {
				dim = 0
			}
			ii[in.a] = int64(r.cfg.GroupID[dim])
		case pGlobalSize:
			dim := int(ii[in.b])
			if dim < 0 || dim > 2 {
				dim = 0
			}
			ii[in.a] = int64(dimOr1(r.cfg.GlobalSize, dim))
		case pLocalSize:
			dim := int(ii[in.b])
			if dim < 0 || dim > 2 {
				dim = 0
			}
			ii[in.a] = int64(dimOr1(r.cfg.LocalSize, dim))
		case pNumGroups:
			dim := int(ii[in.b])
			if dim < 0 || dim > 2 {
				dim = 0
			}
			ii[in.a] = int64(dimOr1(r.cfg.GlobalSize, dim) / dimOr1(r.cfg.LocalSize, dim))
		case pGlobalOffset:
			dim := int(ii[in.b])
			if dim < 0 || dim > 2 {
				dim = 0
			}
			ii[in.a] = int64(r.cfg.GlobalOffset[dim])
		case pWorkDim:
			ii[in.a] = int64(r.cfg.WorkDim)
		}
	}
	return nil
}

// genInline pre-decodes a scalar load or store into its inline block
// program form (the pre sync count is filled in by compileBlock).
// Vector accesses keep their genLoad/genStore closures.
func genInline(in *ir.Instr) (pIns, bool) {
	w := int(in.Width)
	if w == 0 {
		w = 1
	}
	if w != 1 {
		return pIns{}, false
	}
	p := pIns{
		a:    in.A,
		b:    in.B,
		d:    int32(in.Pos.Line),
		base: uint8(in.Base),
		size: uint16(in.Base.Size()),
	}
	switch in.Op {
	case ir.LoadF:
		p.kind = pLoadF64
		if in.Base == types.Float {
			p.kind = pLoadF32
		}
	case ir.LoadI:
		p.kind = pLoadInt
	case ir.StoreF:
		p.kind = pStoreF64
		if in.Base == types.Float {
			p.kind = pStoreF32
		}
	case ir.StoreI:
		p.kind = pStoreInt
	default:
		return pIns{}, false
	}
	return p, true
}

// runCompiled executes the current work-item on the compiled program
// until it returns or, when stopAtBarrier is set, until it executes a
// barrier. The loop bookkeeping is a line-for-line mirror of the
// interpreter's run(); each dispatch covers one basic block.
func (r *groupRunner) runCompiled(c *Compiled, st *wiState, stopAtBarrier bool) error {
	if st.pc == 0 && !st.atBar {
		r.bindArgs(st)
	}
	ops := c.ops
	for {
		pc := st.pc
		if pc < 0 || pc >= len(ops) {
			return fmt.Errorf("vm: pc %d out of range in kernel %s", pc, r.k.Name)
		}
		st.pc = pc + 1
		r.steps++
		if r.steps > r.limit {
			return ErrStepLimit
		}
		r.prof.Instrs++
		if err := ops[pc](r, st); err != nil {
			if err == errYield {
				if st.done {
					return nil
				}
				if stopAtBarrier {
					st.atBar = true
					return nil
				}
				// Barrier outside the resident-group path (single-item
				// groups / barrier-free fast path): no-op, like the
				// interpreter.
				continue
			}
			return err
		}
	}
}

// groupArena pools the per-group allocations of the compiled engine:
// the __local arena, the register files (reused across work-items in
// place of per-item allocation) and the resident work-item states of
// the barrier path.
type groupArena struct {
	ii     []int64
	ff     []float64
	priv   []byte
	local  []byte
	states []wiState
	coords [][3]int
}

var groupArenas = sync.Pool{New: func() any { return new(groupArena) }}

// grown returns s resized to n elements, reallocating only when the
// capacity is insufficient. Contents are unspecified; callers zero
// what they need.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// runGroupCompiled is the compiled engine's work-group loop,
// structurally identical to the interpreter paths in RunGroup but
// dispatching on the closure program and drawing its state from the
// pooled group arena.
func (r *groupRunner) runGroupCompiled(localBytes, nloc int) error {
	c := compiledFor(r.k)
	ar := groupArenas.Get().(*groupArena)
	defer groupArenas.Put(ar)
	ar.local = grown(ar.local, localBytes)
	clear(ar.local)
	r.local = ar.local
	cfg := r.cfg
	k := r.k

	if !k.UsesBarrier {
		// Fast path: one register file, reset and reused per work-item.
		ar.ii = grown(ar.ii, k.NumI)
		ar.ff = grown(ar.ff, k.NumF)
		ar.priv = grown(ar.priv, k.PrivateBytes)
		st := wiState{ii: ar.ii, ff: ar.ff, priv: ar.priv}
		item := 0
		for lz := 0; lz < max(cfg.LocalSize[2], 1); lz++ {
			for ly := 0; ly < max(cfg.LocalSize[1], 1); ly++ {
				for lx := 0; lx < cfg.LocalSize[0]; lx++ {
					r.resetState(&st)
					r.localID = [3]int{lx, ly, lz}
					r.cur = &st
					r.item = item
					item++
					if err := r.runCompiled(c, &st, false); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}

	// Barrier path: every work-item's registers live in one flat
	// per-group arena, sliced per item, instead of nloc separate
	// allocations.
	ar.ii = grown(ar.ii, k.NumI*nloc)
	clear(ar.ii)
	ar.ff = grown(ar.ff, k.NumF*nloc)
	clear(ar.ff)
	ar.priv = grown(ar.priv, k.PrivateBytes*nloc)
	clear(ar.priv)
	ar.states = grown(ar.states, nloc)
	ar.coords = grown(ar.coords, nloc)
	states, coords := ar.states, ar.coords
	i := 0
	for lz := 0; lz < max(cfg.LocalSize[2], 1); lz++ {
		for ly := 0; ly < max(cfg.LocalSize[1], 1); ly++ {
			for lx := 0; lx < cfg.LocalSize[0]; lx++ {
				states[i] = wiState{
					ii:   ar.ii[i*k.NumI : (i+1)*k.NumI],
					ff:   ar.ff[i*k.NumF : (i+1)*k.NumF],
					priv: ar.priv[i*k.PrivateBytes : (i+1)*k.PrivateBytes],
				}
				coords[i] = [3]int{lx, ly, lz}
				i++
			}
		}
	}
	for phase := 0; ; phase++ {
		anyBar, anyDone, allFinished := false, false, true
		for i := range states {
			st := &states[i]
			if st.done {
				anyDone = true
				continue
			}
			r.localID = coords[i]
			r.cur = st
			r.item = i
			r.phase = phase
			if err := r.runCompiled(c, st, true); err != nil {
				return err
			}
			if st.done {
				anyDone = true
			} else {
				st.atBar = false // consumed below
				anyBar = true
				allFinished = false
			}
		}
		if allFinished {
			return nil
		}
		if anyBar && anyDone {
			return ErrBarrierDivergence
		}
	}
}

// --- pure instruction pre-decoding -------------------------------------------

// genPure pre-decodes one pure IR instruction: the specialized kind
// (or a fallback closure) plus its static profile delta. Operand
// slots, widths, wrap/round behaviour and counts are resolved here, at
// compile time. The third result is false for anything that can fault,
// touch memory or call an observer — those stay with genOp.
func genPure(in *ir.Instr) (pIns, pureDelta, bool) {
	w := int(in.Width)
	if w == 0 {
		w = 1
	}
	a, b, c, d := int(in.A), int(in.B), int(in.C), int(in.D)
	base := in.Base
	none := pureDelta{}
	reg := pIns{a: in.A, b: in.B, c: in.C, d: in.D}
	intDelta := func() pureDelta {
		return pureDelta{intInstrs: 1, intLanes: uint64(w), slots: slots128(base, w)}
	}
	fltDelta := func() pureDelta {
		if base == types.Double {
			return pureDelta{f64Instrs: 1, f64Lanes: uint64(w), slots: slots128(base, w)}
		}
		return pureDelta{f32Instrs: 1, f32Lanes: uint64(w), slots: slots128(base, w)}
	}
	kind := func(k pKind) pIns { r := reg; r.kind = k; return r }

	switch in.Op {
	case ir.Nop:
		return fnIns(func(r *groupRunner, st *wiState) {}), none, true

	case ir.MovI:
		if w == 1 {
			return kind(pMovI), none, true
		}
		return fnIns(func(r *groupRunner, st *wiState) { copy(st.ii[a:a+w], st.ii[b:b+w]) }), none, true
	case ir.MovF:
		if w == 1 {
			return kind(pMovF), none, true
		}
		return fnIns(func(r *groupRunner, st *wiState) { copy(st.ff[a:a+w], st.ff[b:b+w]) }), none, true
	case ir.ImmI:
		imm := in.Imm
		if w == 1 {
			r := kind(pImmI)
			r.imm = imm
			return r, none, true
		}
		return fnIns(func(r *groupRunner, st *wiState) {
			for l := 0; l < w; l++ {
				st.ii[a+l] = imm
			}
		}), none, true
	case ir.ImmF:
		imm := in.FImm
		if w == 1 {
			r := kind(pImmF)
			r.fimm = imm
			return r, none, true
		}
		return fnIns(func(r *groupRunner, st *wiState) {
			for l := 0; l < w; l++ {
				st.ff[a+l] = imm
			}
		}), none, true
	case ir.BcastI:
		return fnIns(func(r *groupRunner, st *wiState) {
			v := st.ii[b]
			for l := 0; l < w; l++ {
				st.ii[a+l] = v
			}
		}), none, true
	case ir.BcastF:
		return fnIns(func(r *groupRunner, st *wiState) {
			v := st.ff[b]
			for l := 0; l < w; l++ {
				st.ff[a+l] = v
			}
		}), none, true

	case ir.AddI, ir.SubI, ir.MulI, ir.DivI, ir.RemI,
		ir.AndI, ir.OrI, ir.XorI, ir.ShlI, ir.ShrI:
		dl := intDelta()
		if w == 1 {
			if k, ok := intKind1(in.Op, base); ok {
				return kind(k), dl, true
			}
			fn := intBinFn(in.Op, base)
			return fnIns(func(r *groupRunner, st *wiState) { st.ii[a] = fn(st.ii[b], st.ii[c]) }), dl, true
		}
		fn := intBinFn(in.Op, base)
		return fnIns(func(r *groupRunner, st *wiState) {
			for l := 0; l < w; l++ {
				st.ii[a+l] = fn(st.ii[b+l], st.ii[c+l])
			}
		}), dl, true
	case ir.NegI:
		dl := intDelta()
		wrap := wrapFn(base)
		if w == 1 {
			return fnIns(func(r *groupRunner, st *wiState) { st.ii[a] = wrap(-st.ii[b]) }), dl, true
		}
		return fnIns(func(r *groupRunner, st *wiState) {
			for l := 0; l < w; l++ {
				st.ii[a+l] = wrap(-st.ii[b+l])
			}
		}), dl, true
	case ir.NotI:
		dl := intDelta()
		wrap := wrapFn(base)
		if w == 1 {
			return fnIns(func(r *groupRunner, st *wiState) { st.ii[a] = wrap(^st.ii[b]) }), dl, true
		}
		return fnIns(func(r *groupRunner, st *wiState) {
			for l := 0; l < w; l++ {
				st.ii[a+l] = wrap(^st.ii[b+l])
			}
		}), dl, true

	case ir.AddF, ir.SubF, ir.MulF, ir.DivF:
		dl := fltDelta()
		if w == 1 {
			return kind(fltKind1(in.Op, base)), dl, true
		}
		fn := fltBinFn(in.Op, base)
		return fnIns(func(r *groupRunner, st *wiState) {
			for l := 0; l < w; l++ {
				st.ff[a+l] = fn(st.ff[b+l], st.ff[c+l])
			}
		}), dl, true
	case ir.NegF:
		dl := fltDelta()
		f32 := base == types.Float
		if w == 1 {
			if f32 {
				return kind(pNegF32), dl, true
			}
			return kind(pNegF64), dl, true
		}
		return fnIns(func(r *groupRunner, st *wiState) {
			for l := 0; l < w; l++ {
				v := -st.ff[b+l]
				if f32 {
					v = float64(float32(v))
				}
				st.ff[a+l] = v
			}
		}), dl, true

	case ir.CmpEqI, ir.CmpNeI, ir.CmpLtI, ir.CmpLeI:
		dl := intDelta()
		if w == 1 {
			signed := base.IsSigned()
			switch in.Op {
			case ir.CmpEqI:
				return kind(pCmpEqI), dl, true
			case ir.CmpNeI:
				return kind(pCmpNeI), dl, true
			case ir.CmpLtI:
				if signed {
					return kind(pCmpLtS), dl, true
				}
				return kind(pCmpLtU), dl, true
			default:
				if signed {
					return kind(pCmpLeS), dl, true
				}
				return kind(pCmpLeU), dl, true
			}
		}
		fn := intCmpFn(in.Op, base)
		return fnIns(func(r *groupRunner, st *wiState) {
			for l := 0; l < w; l++ {
				if fn(st.ii[b+l], st.ii[c+l]) {
					st.ii[a+l] = 1
				} else {
					st.ii[a+l] = 0
				}
			}
		}), dl, true
	case ir.CmpEqF, ir.CmpNeF, ir.CmpLtF, ir.CmpLeF:
		dl := fltDelta()
		if w == 1 {
			switch in.Op {
			case ir.CmpEqF:
				return kind(pCmpEqF), dl, true
			case ir.CmpNeF:
				return kind(pCmpNeF), dl, true
			case ir.CmpLtF:
				return kind(pCmpLtF), dl, true
			default:
				return kind(pCmpLeF), dl, true
			}
		}
		fn := fltCmpFn(in.Op)
		return fnIns(func(r *groupRunner, st *wiState) {
			for l := 0; l < w; l++ {
				if fn(st.ff[b+l], st.ff[c+l]) {
					st.ii[a+l] = 1
				} else {
					st.ii[a+l] = 0
				}
			}
		}), dl, true

	case ir.SelI:
		dl := intDelta()
		if w == 1 {
			return kind(pSelI), dl, true
		}
		return fnIns(func(r *groupRunner, st *wiState) {
			for l := 0; l < w; l++ {
				if st.ii[b+l] != 0 {
					st.ii[a+l] = st.ii[c+l]
				} else {
					st.ii[a+l] = st.ii[d+l]
				}
			}
		}), dl, true
	case ir.SelF:
		dl := fltDelta()
		if w == 1 {
			return kind(pSelF), dl, true
		}
		return fnIns(func(r *groupRunner, st *wiState) {
			for l := 0; l < w; l++ {
				if st.ii[b+l] != 0 {
					st.ff[a+l] = st.ff[c+l]
				} else {
					st.ff[a+l] = st.ff[d+l]
				}
			}
		}), dl, true

	case ir.CvtII:
		dl := intDelta()
		if w == 1 {
			switch base {
			case types.Long, types.ULong:
				return kind(pMovI), dl, true
			case types.Int:
				return kind(pCvtII32), dl, true
			case types.UInt:
				return kind(pCvtIIU32), dl, true
			}
		}
		isBool := base == types.Bool
		wrap := wrapFn(base)
		return fnIns(func(r *groupRunner, st *wiState) {
			for l := 0; l < w; l++ {
				v := st.ii[b+l]
				if isBool {
					if v != 0 {
						v = 1
					}
				} else {
					v = wrap(v)
				}
				st.ii[a+l] = v
			}
		}), dl, true
	case ir.CvtIF:
		dl := fltDelta()
		f32 := base == types.Float
		srcSigned := in.Base2.IsSigned() || in.Base2 == types.Bool
		if w == 1 {
			switch {
			case srcSigned && f32:
				return kind(pCvtSF32), dl, true
			case srcSigned:
				return kind(pCvtSF64), dl, true
			case f32:
				return kind(pCvtUF32), dl, true
			default:
				return kind(pCvtUF64), dl, true
			}
		}
		return fnIns(func(r *groupRunner, st *wiState) {
			for l := 0; l < w; l++ {
				var f float64
				if srcSigned {
					f = float64(st.ii[b+l])
				} else {
					f = float64(uint64(st.ii[b+l]))
				}
				if f32 {
					f = float64(float32(f))
				}
				st.ff[a+l] = f
			}
		}), dl, true
	case ir.CvtFI:
		dl := intDelta()
		wrap := wrapFn(base)
		return fnIns(func(r *groupRunner, st *wiState) {
			for l := 0; l < w; l++ {
				f := st.ff[b+l]
				var v int64
				switch {
				case math.IsNaN(f):
					v = 0
				case f >= math.MaxInt64:
					v = math.MaxInt64
				case f <= math.MinInt64:
					v = math.MinInt64
				default:
					v = int64(f)
				}
				st.ii[a+l] = wrap(v)
			}
		}), dl, true
	case ir.CvtFF:
		dl := fltDelta()
		f32 := base == types.Float
		if w == 1 {
			if f32 {
				return kind(pCvtFF32), dl, true
			}
			return kind(pMovF), dl, true
		}
		return fnIns(func(r *groupRunner, st *wiState) {
			for l := 0; l < w; l++ {
				v := st.ff[b+l]
				if f32 {
					v = float64(float32(v))
				}
				st.ff[a+l] = v
			}
		}), dl, true

	case ir.CallB:
		// Work-item queries — by far the hottest builtins, every
		// kernel's prologue calls them — are pure; everything else goes
		// through the interpreter's execBuiltin.
		id := builtin.ID(in.Imm)
		dl := pureDelta{intInstrs: 1, intLanes: 1}
		switch id {
		case builtin.GetWorkDim:
			return kind(pWorkDim), dl, true
		case builtin.GetGlobalID:
			return kind(pGlobalID), dl, true
		case builtin.GetLocalID:
			return kind(pLocalID), dl, true
		case builtin.GetGroupID:
			return kind(pGroupID), dl, true
		case builtin.GetGlobalSize:
			return kind(pGlobalSize), dl, true
		case builtin.GetLocalSize:
			return kind(pLocalSize), dl, true
		case builtin.GetNumGroups:
			return kind(pNumGroups), dl, true
		case builtin.GetGlobalOffset:
			return kind(pGlobalOffset), dl, true
		}
		return pIns{}, none, false
	}
	return pIns{}, none, false
}

// intKind1 maps a scalar integer binary op to its pre-decoded kind.
// Bases whose wrapping the switch does not model (char/short/bool, the
// rarer shifts and divisions) fall back to a closure.
func intKind1(op ir.Op, base types.Base) (pKind, bool) {
	switch base {
	case types.Long, types.ULong: // wrapping is the identity
		switch op {
		case ir.AddI:
			return pAddI64, true
		case ir.SubI:
			return pSubI64, true
		case ir.MulI:
			return pMulI64, true
		case ir.AndI:
			return pAndI64, true
		case ir.OrI:
			return pOrI64, true
		case ir.XorI:
			return pXorI64, true
		case ir.ShlI:
			return pShlI64, true
		case ir.ShrI:
			if base == types.Long {
				return pShrS64, true
			}
		}
	case types.Int:
		switch op {
		case ir.AddI:
			return pAddI32, true
		case ir.SubI:
			return pSubI32, true
		case ir.MulI:
			return pMulI32, true
		case ir.ShlI:
			return pShlI32, true
		case ir.ShrI:
			return pShrS32, true
		}
	case types.UInt:
		switch op {
		case ir.AddI:
			return pAddU32, true
		case ir.SubI:
			return pSubU32, true
		case ir.MulI:
			return pMulU32, true
		}
	}
	return pFn, false
}

// fltKind1 maps a scalar float binary op to its pre-decoded kind, with
// the float32 rounding folded into the kind.
func fltKind1(op ir.Op, base types.Base) pKind {
	if base == types.Float {
		switch op {
		case ir.AddF:
			return pAddF32
		case ir.SubF:
			return pSubF32
		case ir.MulF:
			return pMulF32
		default:
			return pDivF32
		}
	}
	switch op {
	case ir.AddF:
		return pAddF64
	case ir.SubF:
		return pSubF64
	case ir.MulF:
		return pMulF64
	default:
		return pDivF64
	}
}

// --- effectful and control instruction compilation ---------------------------

// genOp compiles one effectful or control IR instruction into its
// closure. Operand slots, widths and profile increments are resolved
// here, at compile time; the closure bodies mirror the interpreter
// cases in exec.go instruction for instruction. Pure instructions
// never reach genOp — genPure handles them. The closures carry no
// dispatch bookkeeping of their own: the dispatch loop supplies it for
// slot dispatches and blockOp for in-block positions.
func genOp(in *ir.Instr) cop {
	w := int(in.Width)
	if w == 0 {
		w = 1
	}
	b := int(in.B)

	switch in.Op {
	case ir.LoadI, ir.LoadF:
		return genLoad(in, w)
	case ir.StoreI, ir.StoreF:
		return genStore(in, w)

	case ir.CallB:
		inp := in
		return func(r *groupRunner, st *wiState) error { return r.execBuiltin(inp, st, w) }
	case ir.AtomicOp:
		inp := in
		return func(r *groupRunner, st *wiState) error { return r.execAtomic(inp, st) }
	case ir.BarrierOp:
		return func(r *groupRunner, st *wiState) error {
			r.prof.Barriers++
			return errYield
		}

	case ir.Jmp:
		t := int(in.Imm)
		return func(r *groupRunner, st *wiState) error { st.pc = t; return nil }
	case ir.JmpIf:
		t := int(in.Imm)
		return func(r *groupRunner, st *wiState) error {
			if st.ii[b] != 0 {
				st.pc = t
			}
			return nil
		}
	case ir.JmpIfZ:
		t := int(in.Imm)
		return func(r *groupRunner, st *wiState) error {
			if st.ii[b] == 0 {
				st.pc = t
			}
			return nil
		}
	case ir.Ret:
		return func(r *groupRunner, st *wiState) error {
			st.done = true
			return errYield
		}
	default:
		op := in.Op
		return func(r *groupRunner, st *wiState) error {
			return fmt.Errorf("vm: unknown opcode %v", op)
		}
	}
}

// genLoad compiles LoadI/LoadF with the element size, issue slots,
// traffic accounting and the source line pre-resolved. The bodies
// mirror execLoad; scalar loads decode the address space once and go
// straight to the backing memory.
func genLoad(in *ir.Instr, w int) cop {
	size := in.Base.Size()
	slots := slots128(in.Base, w)
	lanes := uint64(w)
	szw := size * w
	bytes := uint64(szw)
	line := in.Pos.Line
	a, b := int(in.A), int(in.B)
	base := in.Base

	if w == 1 {
		isF := in.Op == ir.LoadF
		f32 := base == types.Float
		return func(r *groupRunner, st *wiState) error {
			addr := st.ii[b]
			space, off := ir.DecodeAddr(addr)
			p := r.prof
			p.LoadInstrs++
			p.LSSlots128 += slots
			p.LSLanes++
			if space == ir.SpacePrivate {
				p.PrivateAccesses++
			}
			p.BytesRead[space&3] += bytes
			if r.cfg.Observer != nil {
				if r.ctxObs != nil {
					r.ctxObs.OnContext(r.item, r.phase, line)
				}
				r.cfg.Observer.OnAccess(space, addr, szw, false)
			}
			var bits uint64
			var err error
			switch space {
			case ir.SpaceLocal:
				bits, err = sliceLoad(r.local, off, size)
			case ir.SpacePrivate:
				bits, err = sliceLoad(st.priv, off, size)
			default:
				bits, err = r.cfg.Mem.LoadBits(space, off, size)
			}
			if err != nil {
				return err
			}
			switch {
			case !isF:
				st.ii[a] = bitsToInt(base, bits)
			case f32:
				st.ff[a] = float64(math.Float32frombits(uint32(bits)))
			default:
				st.ff[a] = math.Float64frombits(bits)
			}
			return nil
		}
	}

	if in.Op == ir.LoadF {
		f32 := base == types.Float
		return func(r *groupRunner, st *wiState) error {
			addr := st.ii[b]
			space, _ := ir.DecodeAddr(addr)
			p := r.prof
			p.LoadInstrs++
			p.LSSlots128 += slots
			p.LSLanes += lanes
			if space == ir.SpacePrivate {
				p.PrivateAccesses++
			}
			p.BytesRead[space&3] += bytes
			if r.cfg.Observer != nil {
				if r.ctxObs != nil {
					r.ctxObs.OnContext(r.item, r.phase, line)
				}
				r.cfg.Observer.OnAccess(space, addr, szw, false)
			}
			for l := 0; l < w; l++ {
				bits, err := r.loadBits(addr+int64(l*size), size)
				if err != nil {
					return err
				}
				if f32 {
					st.ff[a+l] = float64(math.Float32frombits(uint32(bits)))
				} else {
					st.ff[a+l] = math.Float64frombits(bits)
				}
			}
			return nil
		}
	}
	return func(r *groupRunner, st *wiState) error {
		addr := st.ii[b]
		space, _ := ir.DecodeAddr(addr)
		p := r.prof
		p.LoadInstrs++
		p.LSSlots128 += slots
		p.LSLanes += lanes
		if space == ir.SpacePrivate {
			p.PrivateAccesses++
		}
		p.BytesRead[space&3] += bytes
		if r.cfg.Observer != nil {
			if r.ctxObs != nil {
				r.ctxObs.OnContext(r.item, r.phase, line)
			}
			r.cfg.Observer.OnAccess(space, addr, szw, false)
		}
		for l := 0; l < w; l++ {
			bits, err := r.loadBits(addr+int64(l*size), size)
			if err != nil {
				return err
			}
			st.ii[a+l] = bitsToInt(base, bits)
		}
		return nil
	}
}

// genStore compiles StoreI/StoreF; the bodies mirror execStore, with
// the scalar form decoding the address space once.
func genStore(in *ir.Instr, w int) cop {
	size := in.Base.Size()
	slots := slots128(in.Base, w)
	lanes := uint64(w)
	szw := size * w
	bytes := uint64(szw)
	line := in.Pos.Line
	a, b := int(in.A), int(in.B)
	base := in.Base

	if w == 1 {
		isF := in.Op == ir.StoreF
		f32 := base == types.Float
		return func(r *groupRunner, st *wiState) error {
			addr := st.ii[b]
			space, off := ir.DecodeAddr(addr)
			p := r.prof
			p.StoreInstrs++
			p.LSSlots128 += slots
			p.LSLanes++
			if space == ir.SpacePrivate {
				p.PrivateAccesses++
			}
			p.BytesWritten[space&3] += bytes
			if r.cfg.Observer != nil {
				if r.ctxObs != nil {
					r.ctxObs.OnContext(r.item, r.phase, line)
				}
				r.cfg.Observer.OnAccess(space, addr, szw, true)
			}
			var bits uint64
			switch {
			case !isF:
				bits = intToBits(base, st.ii[a])
			case f32:
				bits = uint64(math.Float32bits(float32(st.ff[a])))
			default:
				bits = math.Float64bits(st.ff[a])
			}
			switch space {
			case ir.SpaceLocal:
				return sliceStore(r.local, off, size, bits)
			case ir.SpacePrivate:
				return sliceStore(st.priv, off, size, bits)
			default:
				return r.cfg.Mem.StoreBits(space, off, size, bits)
			}
		}
	}

	if in.Op == ir.StoreF {
		f32 := base == types.Float
		return func(r *groupRunner, st *wiState) error {
			addr := st.ii[b]
			space, _ := ir.DecodeAddr(addr)
			p := r.prof
			p.StoreInstrs++
			p.LSSlots128 += slots
			p.LSLanes += lanes
			if space == ir.SpacePrivate {
				p.PrivateAccesses++
			}
			p.BytesWritten[space&3] += bytes
			if r.cfg.Observer != nil {
				if r.ctxObs != nil {
					r.ctxObs.OnContext(r.item, r.phase, line)
				}
				r.cfg.Observer.OnAccess(space, addr, szw, true)
			}
			for l := 0; l < w; l++ {
				var bits uint64
				if f32 {
					bits = uint64(math.Float32bits(float32(st.ff[a+l])))
				} else {
					bits = math.Float64bits(st.ff[a+l])
				}
				if err := r.storeBits(addr+int64(l*size), size, bits); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return func(r *groupRunner, st *wiState) error {
		addr := st.ii[b]
		space, _ := ir.DecodeAddr(addr)
		p := r.prof
		p.StoreInstrs++
		p.LSSlots128 += slots
		p.LSLanes += lanes
		if space == ir.SpacePrivate {
			p.PrivateAccesses++
		}
		p.BytesWritten[space&3] += bytes
		if r.cfg.Observer != nil {
			if r.ctxObs != nil {
				r.ctxObs.OnContext(r.item, r.phase, line)
			}
			r.cfg.Observer.OnAccess(space, addr, szw, true)
		}
		for l := 0; l < w; l++ {
			if err := r.storeBits(addr+int64(l*size), size, intToBits(base, st.ii[a+l])); err != nil {
				return err
			}
		}
		return nil
	}
}

// --- pre-resolved scalar operation builders ----------------------------------

// wrapFn returns the modular-reduction function for the base,
// mirroring wrapInt.
func wrapFn(base types.Base) func(int64) int64 {
	switch base {
	case types.Bool:
		return func(v int64) int64 {
			if v != 0 {
				return 1
			}
			return 0
		}
	case types.Char:
		return func(v int64) int64 { return int64(int8(v)) }
	case types.UChar:
		return func(v int64) int64 { return int64(uint8(v)) }
	case types.Short:
		return func(v int64) int64 { return int64(int16(v)) }
	case types.UShort:
		return func(v int64) int64 { return int64(uint16(v)) }
	case types.Int:
		return func(v int64) int64 { return int64(int32(v)) }
	case types.UInt:
		return func(v int64) int64 { return int64(uint32(v)) }
	}
	return func(v int64) int64 { return v }
}

// intBinFn builds the scalar function of one integer binary op with
// the base's signedness, shift masking and wrapping pre-resolved,
// mirroring execIntBin.
func intBinFn(op ir.Op, base types.Base) func(int64, int64) int64 {
	signed := base.IsSigned()
	size := base.Size()
	wrap := wrapFn(base)
	mask := uint64(size*8 - 1)
	switch op {
	case ir.AddI:
		return func(x, y int64) int64 { return wrap(x + y) }
	case ir.SubI:
		return func(x, y int64) int64 { return wrap(x - y) }
	case ir.MulI:
		return func(x, y int64) int64 { return wrap(x * y) }
	case ir.DivI:
		if signed {
			return func(x, y int64) int64 {
				if y == 0 {
					return 0
				}
				return wrap(x / y)
			}
		}
		return func(x, y int64) int64 {
			if y == 0 {
				return 0
			}
			return wrap(int64(uint64(x) / uint64(y)))
		}
	case ir.RemI:
		if signed {
			return func(x, y int64) int64 {
				if y == 0 {
					return 0
				}
				return wrap(x % y)
			}
		}
		return func(x, y int64) int64 {
			if y == 0 {
				return 0
			}
			return wrap(int64(uint64(x) % uint64(y)))
		}
	case ir.AndI:
		return func(x, y int64) int64 { return wrap(x & y) }
	case ir.OrI:
		return func(x, y int64) int64 { return wrap(x | y) }
	case ir.XorI:
		return func(x, y int64) int64 { return wrap(x ^ y) }
	case ir.ShlI:
		return func(x, y int64) int64 { return wrap(x << (uint64(y) & mask)) }
	case ir.ShrI:
		if signed {
			return func(x, y int64) int64 { return wrap(x >> (uint64(y) & mask)) }
		}
		switch size {
		case 1:
			return func(x, y int64) int64 { return wrap(int64(uint8(x) >> (uint64(y) & mask))) }
		case 2:
			return func(x, y int64) int64 { return wrap(int64(uint16(x) >> (uint64(y) & mask))) }
		case 4:
			return func(x, y int64) int64 { return wrap(int64(uint32(x) >> (uint64(y) & mask))) }
		default:
			return func(x, y int64) int64 { return wrap(int64(uint64(x) >> (uint64(y) & mask))) }
		}
	}
	return func(x, y int64) int64 { return x }
}

// fltBinFn builds the scalar function of one float binary op with
// float32 rounding folded in, mirroring execFloatBin + roundBase.
func fltBinFn(op ir.Op, base types.Base) func(float64, float64) float64 {
	f32 := base == types.Float
	switch op {
	case ir.AddF:
		if f32 {
			return func(x, y float64) float64 { return float64(float32(x + y)) }
		}
		return func(x, y float64) float64 { return x + y }
	case ir.SubF:
		if f32 {
			return func(x, y float64) float64 { return float64(float32(x - y)) }
		}
		return func(x, y float64) float64 { return x - y }
	case ir.MulF:
		if f32 {
			return func(x, y float64) float64 { return float64(float32(x * y)) }
		}
		return func(x, y float64) float64 { return x * y }
	case ir.DivF:
		if f32 {
			return func(x, y float64) float64 { return float64(float32(x / y)) }
		}
		return func(x, y float64) float64 { return x / y }
	}
	return func(x, y float64) float64 { return x }
}

// intCmpFn mirrors execIntCmp's per-op comparison.
func intCmpFn(op ir.Op, base types.Base) func(int64, int64) bool {
	signed := base.IsSigned()
	switch op {
	case ir.CmpEqI:
		return func(x, y int64) bool { return x == y }
	case ir.CmpNeI:
		return func(x, y int64) bool { return x != y }
	case ir.CmpLtI:
		if signed {
			return func(x, y int64) bool { return x < y }
		}
		return func(x, y int64) bool { return uint64(x) < uint64(y) }
	case ir.CmpLeI:
		if signed {
			return func(x, y int64) bool { return x <= y }
		}
		return func(x, y int64) bool { return uint64(x) <= uint64(y) }
	}
	return func(x, y int64) bool { return false }
}

// fltCmpFn mirrors execFloatCmp's per-op comparison.
func fltCmpFn(op ir.Op) func(float64, float64) bool {
	switch op {
	case ir.CmpEqF:
		return func(x, y float64) bool { return x == y }
	case ir.CmpNeF:
		return func(x, y float64) bool { return x != y }
	case ir.CmpLtF:
		return func(x, y float64) bool { return x < y }
	case ir.CmpLeF:
		return func(x, y float64) bool { return x <= y }
	}
	return func(x, y float64) bool { return false }
}
