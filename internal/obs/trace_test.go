package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// chromeTrace mirrors the subset of the Chrome tracing JSON schema the
// writer emits, for parse-back validation.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func sampleSpans() []Span {
	return []Span{
		{Name: "write", Cat: "write", Track: "queue0 Mali-T604", TrackID: 1, Start: 0, Dur: 1e-5, Args: map[string]any{"bytes": 4096}},
		{Name: "vecadd", Cat: "ndrange", Track: "queue0 Mali-T604", TrackID: 1, Start: 1e-5, Dur: 3e-4,
			Args: map[string]any{"work_items": 1024, "dram_bytes": 8192}},
		{Name: "read", Cat: "read", Track: "queue1 Cortex-A15", TrackID: 2, Start: 3.1e-4, Dur: 1e-5},
	}
}

func TestWriteChromeTraceParses(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace does not parse: %v\n%s", err, buf.String())
	}
	// 2 thread_name metadata events + 3 slices.
	if len(tr.TraceEvents) != 5 {
		t.Fatalf("events = %d, want 5", len(tr.TraceEvents))
	}
	meta, slices := 0, 0
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			slices++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("negative ts/dur: %+v", ev)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 || slices != 3 {
		t.Errorf("meta/slices = %d/%d", meta, slices)
	}
	// Microsecond conversion: 3e-4 s = 300 µs.
	if tr.TraceEvents[3].Dur != 300 {
		t.Errorf("ndrange dur = %g µs, want 300", tr.TraceEvents[3].Dur)
	}
	if tr.TraceEvents[3].Args["work_items"].(float64) != 1024 {
		t.Errorf("args = %v", tr.TraceEvents[3].Args)
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("trace output not deterministic")
	}
	if !strings.Contains(a.String(), `"thread_name"`) {
		t.Error("missing track metadata")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("empty trace does not parse: %v", err)
	}
	if len(tr.TraceEvents) != 0 {
		t.Errorf("events = %d", len(tr.TraceEvents))
	}
}
