package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.total").Add(3)
	r.Counter("a.total").Inc()
	r.Gauge("b.level").Set(2.5)
	r.GaugeFunc("c.live", func() float64 { return 7 })

	s := r.Snapshot()
	if got := s.Counter("a.total"); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if got := s.Gauge("b.level"); got != 2.5 {
		t.Errorf("gauge = %g, want 2.5", got)
	}
	if got := s.Gauge("c.live"); got != 7 {
		t.Errorf("gauge func = %g, want 7", got)
	}
	if got := s.Counter("missing"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10})
	for _, v := range []float64{0.5, 0.7, 5, 100} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 0.5 || s.Max != 100 {
		t.Errorf("min/max = %g/%g", s.Min, s.Max)
	}
	if s.Sum != 106.2 {
		t.Errorf("sum = %g", s.Sum)
	}
	if len(s.Buckets) != 3 {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	if s.Buckets[0].Count != 2 || s.Buckets[1].Count != 1 || s.Buckets[2].Count != 1 {
		t.Errorf("bucket counts = %+v", s.Buckets)
	}
	if !math.IsInf(s.Buckets[2].LE, 1) {
		t.Errorf("overflow bucket LE = %g", s.Buckets[2].LE)
	}
	if got := s.Mean(); math.Abs(got-26.55) > 1e-12 {
		t.Errorf("mean = %g", got)
	}
}

func TestSnapshotTextAndJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Inc()
	r.Counter("a.first").Add(2)
	r.Gauge("m.mid").Set(1)
	r.Histogram("h.seconds", nil).Observe(3e-4)

	var text bytes.Buffer
	if err := r.Snapshot().WriteText(&text); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(text.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %q", lines)
	}
	if !strings.HasPrefix(lines[0], "a.first") || !strings.HasPrefix(lines[3], "z.last") {
		t.Errorf("not sorted: %q", lines)
	}

	var j1, j2 bytes.Buffer
	if err := r.Snapshot().WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if j1.String() != j2.String() {
		t.Error("JSON snapshot not deterministic")
	}
	var parsed Snapshot
	if err := json.Unmarshal(j1.Bytes(), &parsed); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if parsed.Counters["a.first"] != 2 {
		t.Errorf("roundtrip counter = %d", parsed.Counters["a.first"])
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
				r.Gauge("g").Set(float64(j))
				r.Histogram("h", nil).Observe(float64(j) * 1e-6)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counter("n") != 8000 {
		t.Errorf("counter = %d, want 8000", s.Counter("n"))
	}
	if s.Histograms["h"].Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", s.Histograms["h"].Count)
	}
}
