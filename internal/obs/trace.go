package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Span is one complete slice on a timeline track — typically one
// command on a command queue, with simulated start time and duration.
// Spans are the exporter-neutral form of a queue's event history.
type Span struct {
	// Name is the display label (kernel name or command kind).
	Name string
	// Cat is the event category ("ndrange", "write", "read", ...).
	Cat string
	// Track is the display name of the track (queue/device label).
	Track string
	// TrackID distinguishes tracks that share a display name.
	TrackID int
	// Start is the simulated start time in seconds since queue
	// creation; Dur the simulated duration in seconds.
	Start, Dur float64
	// Args are extra key/values shown when the slice is selected.
	// Written in sorted key order, so output stays deterministic.
	Args map[string]any
}

// WriteChromeTrace writes spans in the Chrome tracing JSON array
// format, loadable by chrome://tracing and https://ui.perfetto.dev.
// Simulated seconds map to trace microseconds. Output is byte-for-byte
// deterministic for a given span slice.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	// Name each track once via metadata events, in TrackID order.
	trackNames := map[int]string{}
	ids := []int{}
	for _, s := range spans {
		if _, ok := trackNames[s.TrackID]; !ok {
			trackNames[s.TrackID] = s.Track
			ids = append(ids, s.TrackID)
		}
	}
	sort.Ints(ids)
	first := true
	emit := func(line string) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := io.WriteString(w, line)
		return err
	}
	for _, id := range ids {
		name, err := json.Marshal(trackNames[id])
		if err != nil {
			return err
		}
		if err := emit(fmt.Sprintf(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":%s}}`, id, name)); err != nil {
			return err
		}
	}
	for _, s := range spans {
		line, err := chromeEvent(s)
		if err != nil {
			return err
		}
		if err := emit(line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// chromeEvent renders one span as a complete ("X") trace event with
// deterministic field and argument order.
func chromeEvent(s Span) (string, error) {
	name, err := json.Marshal(s.Name)
	if err != nil {
		return "", err
	}
	cat, err := json.Marshal(s.Cat)
	if err != nil {
		return "", err
	}
	out := fmt.Sprintf(`{"ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s,"name":%s,"cat":%s`,
		s.TrackID, micros(s.Start), micros(s.Dur), name, cat)
	if len(s.Args) > 0 {
		keys := make([]string, 0, len(s.Args))
		for k := range s.Args { // maligo:allow maporder sorted on the next line
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out += `,"args":{`
		for i, k := range keys {
			kj, err := json.Marshal(k)
			if err != nil {
				return "", err
			}
			vj, err := json.Marshal(s.Args[k])
			if err != nil {
				return "", err
			}
			if i > 0 {
				out += ","
			}
			out += string(kj) + ":" + string(vj)
		}
		out += "}"
	}
	return out + "}", nil
}

// micros renders seconds as microseconds with nanosecond resolution,
// in a fixed format so traces diff cleanly.
func micros(seconds float64) string {
	return strconv.FormatFloat(seconds*1e6, 'f', 3, 64)
}
