// Package obs is the observability layer of the simulated platform:
// a lightweight metrics registry (counters, gauges, histograms) the
// runtime feeds from vm.Profile / device.Report data, plus exporters —
// a deterministic text/JSON metrics dump and a Chrome-tracing /
// Perfetto JSON writer for command-queue timelines.
//
// The package deliberately has no dependency on the rest of the
// simulator: the cl runtime pushes values in, and tools (malisim, the
// harness) pull snapshots out. All snapshot output is deterministic —
// names are emitted in sorted order — so traces and metric dumps can
// be locked down with golden files.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric, safe for
// concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric holding the most recent value, safe for
// concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the most recently stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultSecondsBuckets are the histogram bucket upper bounds used for
// duration metrics: decades from 100 ns to 10 s, the range simulated
// commands actually span.
var DefaultSecondsBuckets = []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Histogram accumulates a distribution over fixed bucket bounds.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	// Overflow bucket (> last bound).
	h.counts[len(h.bounds)]++
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, b := range h.bounds {
		if h.counts[i] > 0 {
			s.Buckets = append(s.Buckets, Bucket{LE: b, Count: h.counts[i]})
		}
	}
	if over := h.counts[len(h.bounds)]; over > 0 {
		s.Buckets = append(s.Buckets, Bucket{LE: math.Inf(1), Count: over})
	}
	return s
}

// Bucket is one non-empty histogram bucket: samples <= LE (and greater
// than the previous bound).
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// MarshalJSON renders +Inf as the string "inf" (JSON has no infinity).
func (b Bucket) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.LE, 1) {
		return []byte(fmt.Sprintf(`{"le":"inf","count":%d}`, b.Count)), nil
	}
	return []byte(fmt.Sprintf(`{"le":%g,"count":%d}`, b.LE, b.Count)), nil
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Registry is a named collection of metrics. The zero value is not
// usable; create one with NewRegistry. Metric accessors get-or-create,
// so instrumentation sites don't need registration ceremony.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	gaugeFuncs map[string]func() float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		gaugeFuncs: make(map[string]func() float64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (nil bounds selects
// DefaultSecondsBuckets). Bounds are fixed at creation.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		if bounds == nil {
			bounds = DefaultSecondsBuckets
		}
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers a callback gauge: fn is evaluated at every
// Snapshot. Re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Snapshot is a frozen, serializable view of a registry's metrics.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current state. Callback gauges are
// evaluated outside the registry lock, so they may themselves read
// instrumented structures.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.gaugeFuncs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters { // maligo:allow maporder distinct keys fill the snapshot map
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges { // maligo:allow maporder distinct keys fill the snapshot map
		s.Gauges[name] = g.Value()
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists { // maligo:allow maporder distinct keys fill the snapshot map
		hists[name] = h
	}
	funcs := make(map[string]func() float64, len(r.gaugeFuncs))
	for name, fn := range r.gaugeFuncs { // maligo:allow maporder distinct keys fill the snapshot map
		funcs[name] = fn
	}
	r.mu.Unlock()

	for name, h := range hists { // maligo:allow maporder distinct keys fill the snapshot map
		s.Histograms[name] = h.snapshot()
	}
	for name, fn := range funcs { // maligo:allow maporder distinct keys fill the snapshot map
		s.Gauges[name] = fn()
	}
	return s
}

// Counter returns a counter value from the snapshot (0 if absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns a gauge value from the snapshot (0 if absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// Names returns every metric name in the snapshot, sorted.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters { // maligo:allow maporder sorted below
		names = append(names, n)
	}
	for n := range s.Gauges { // maligo:allow maporder sorted below
		names = append(names, n)
	}
	for n := range s.Histograms { // maligo:allow maporder sorted below
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteText renders the snapshot as a sorted, human-readable metrics
// dump (one metric per line).
func (s Snapshot) WriteText(w io.Writer) error {
	for _, name := range s.Names() {
		var err error
		switch {
		case hasKeyU(s.Counters, name):
			_, err = fmt.Fprintf(w, "%-40s %d\n", name, s.Counters[name])
		case hasKeyF(s.Gauges, name):
			_, err = fmt.Fprintf(w, "%-40s %g\n", name, s.Gauges[name])
		default:
			h := s.Histograms[name]
			_, err = fmt.Fprintf(w, "%-40s count=%d sum=%g min=%g max=%g mean=%g\n",
				name, h.Count, h.Sum, h.Min, h.Max, h.Mean())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the snapshot as JSON. Map keys are sorted by the
// encoder, so the output is deterministic.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func hasKeyU(m map[string]uint64, k string) bool { _, ok := m[k]; return ok }

func hasKeyF(m map[string]float64, k string) bool { _, ok := m[k]; return ok }
