package platform

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Dump renders the SoC in its canonical text form: one "key = value"
// line per calibration number in fixed schema order, floats formatted
// with strconv's shortest exact round-trip representation. The golden
// files under testdata/platform pin this form for every registered
// SoC, so any calibration-constant drift — intended or not — shows up
// as an explicit diff in review rather than as silently moved figures.
func (s *SoC) Dump() string {
	var b strings.Builder
	w := func(key string, v any) {
		var val string
		switch x := v.(type) {
		case float64:
			val = strconv.FormatFloat(x, 'g', -1, 64)
		case int:
			val = strconv.Itoa(x)
		case bool:
			val = strconv.FormatBool(x)
		default:
			val = fmt.Sprintf("%v", x)
		}
		fmt.Fprintf(&b, "%s = %s\n", key, val)
	}
	points := func(prefix string, pts []OperatingPoint) {
		for i, op := range pts {
			w(fmt.Sprintf("%s.dvfs.%d.name", prefix, i), op.Name)
			w(fmt.Sprintf("%s.dvfs.%d.freq_hz", prefix, i), op.FreqHz)
			w(fmt.Sprintf("%s.dvfs.%d.voltage", prefix, i), op.Voltage)
		}
	}

	w("soc.name", s.Name)
	w("soc.description", s.Description)

	c := s.CPU
	w("cpu.name", c.Name)
	w("cpu.freq_hz", c.FreqHz)
	w("cpu.cores", c.Cores)
	w("cpu.issue_width", c.IssueWidth)
	w("cpu.instr_factor", c.InstrFactor)
	w("cpu.int_alus", c.IntALUs)
	w("cpu.f64_factor", c.F64Factor)
	w("cpu.transc_cycles", c.TranscCycles)
	w("cpu.l2_hit_latency", c.L2HitLatency)
	w("cpu.dram_latency", c.DRAMLatency)
	w("cpu.l2_hide_factor", c.L2HideFactor)
	w("cpu.dram_hide_factor", c.DRAMHideFactor)
	w("cpu.prefetch_hide_factor", c.PrefetchHideFactor)
	w("cpu.per_core_bandwidth", c.PerCoreBandwidth)
	w("cpu.cluster_bandwidth", c.ClusterBandwidth)
	w("cpu.omp_overhead_sec", c.OMPOverheadSec)
	w("cpu.l1_size", c.L1Size)
	w("cpu.l1_line", c.L1Line)
	w("cpu.l1_ways", c.L1Ways)
	w("cpu.l2_size", c.L2Size)
	w("cpu.l2_line", c.L2Line)
	w("cpu.l2_ways", c.L2Ways)
	points("cpu", c.DVFS)

	g := s.GPU
	w("gpu.name", g.Name)
	w("gpu.freq_hz", g.FreqHz)
	w("gpu.cores", g.Cores)
	w("gpu.arith_pipes", g.ArithPipes)
	w("gpu.pack_eff", g.PackEff)
	w("gpu.int_cost_factor", g.IntCostFactor)
	w("gpu.transc_slot_cost", g.TranscSlotCost)
	w("gpu.private_ls_penalty", g.PrivateLSPenalty)
	w("gpu.work_item_overhead", g.WorkItemOverhead)
	w("gpu.work_group_overhead", g.WorkGroupOverhead)
	w("gpu.enqueue_overhead_sec", g.EnqueueOverheadSec)
	w("gpu.barrier_wi_cycles", g.BarrierWICycles)
	w("gpu.barrier_wg_cycles", g.BarrierWGCycles)
	w("gpu.seq_miss_ls_occupancy", g.SeqMissLSOccupancy)
	w("gpu.rand_miss_ls_occupancy", g.RandMissLSOccupancy)
	w("gpu.restrict_ls_factor", g.RestrictLSFactor)
	w("gpu.const_ls_factor", g.ConstLSFactor)
	w("gpu.l2_hit_latency", g.L2HitLatency)
	w("gpu.dram_latency", g.DRAMLatency)
	w("gpu.threads_for_hiding", g.ThreadsForHiding)
	w("gpu.reg_file_bytes", g.RegFileBytes)
	w("gpu.reg_footprint_scale", g.RegFootprintScale)
	w("gpu.max_reg_bytes_per_thread", g.MaxRegBytesPerThread)
	w("gpu.per_core_bandwidth", g.PerCoreBandwidth)
	w("gpu.atomic_scu_cycles", g.AtomicSCUCycles)
	w("gpu.local_atomic_ls_slots", g.LocalAtomicLSSlots)
	w("gpu.max_work_group_size", g.MaxWorkGroupSize)
	w("gpu.fp64", g.FP64)
	w("gpu.l2_size", g.L2Size)
	w("gpu.l2_line", g.L2Line)
	w("gpu.l2_ways", g.L2Ways)
	points("gpu", g.DVFS)

	w("dram.name", s.DRAM.Name)
	w("dram.peak_bandwidth", s.DRAM.PeakBandwidth)
	w("dram.efficiency", s.DRAM.Efficiency)
	w("dram.bandwidth", s.DRAM.Bandwidth)

	w("power.board_static", s.Power.BoardStatic)
	w("power.cpu_core_base", s.Power.CPUCoreBase)
	w("power.cpu_core_dynamic", s.Power.CPUCoreDynamic)
	w("power.cpu_idle_host", s.Power.CPUIdleHost)
	w("power.gpu_base", s.Power.GPUBase)
	w("power.gpu_dynamic", s.Power.GPUDynamic)
	w("power.dram_per_gbs", s.Power.DRAMPerGBs)

	w("meter.sample_hz", s.Meter.SampleHz)
	w("meter.accuracy", s.Meter.Accuracy)
	w("meter.repetitions", s.Meter.Repetitions)
	return b.String()
}

// JSON renders the SoC as indented canonical JSON (struct field
// order, exact float round-trip) — the machine-readable twin of Dump.
func (s *SoC) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
