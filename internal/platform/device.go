// Device-model schema: every number the timing, cache, DRAM and power
// models consume, packaged as data instead of package-level constants
// so the simulator can host a heterogeneous fleet of SoCs. The Exynos
// 5250 constants in exynos5250.go remain the calibration reference —
// the registered "exynos5250" SoC is built verbatim from them, so the
// refactor is bit-identical to the original single-platform build —
// and additional boards (exynos5422.go) are pure data.
//
// DVFS: every CPU and GPU model carries a ladder of operating points
// (frequency/voltage pairs); the first entry is the nominal point the
// calibration numbers were taken at. AtPoint derives a scaled model:
//
//   - the clock changes, so cycle counts translate to different
//     seconds;
//   - latencies that are fixed in *time* on the far side of the clock
//     domain (DRAM load-to-use) are rescaled into the new clock's
//     cycles;
//   - bandwidths (DRAM-side) do not change.
//
// SoC.At additionally scales the board power model: busy-power terms
// of a scaled unit are multiplied by (f/f0)·(V/V0)² — the classic
// dynamic CMOS power ratio — while board static power and DRAM energy
// per byte stay put. Deriving a model at its nominal point returns
// bit-identical numbers (every scale factor is exactly 1.0).
package platform

import "fmt"

// OperatingPoint is one DVFS state of a clocked unit.
type OperatingPoint struct {
	// Name labels the point in reports ("1700MHz", "nominal"...).
	Name string `json:"name"`
	// FreqHz is the unit clock at this point.
	FreqHz float64 `json:"freq_hz"`
	// Voltage is the supply voltage at this point (volts); it feeds
	// the (f/f0)·(V/V0)² busy-power scaling.
	Voltage float64 `json:"voltage"`
}

// CPUModel carries every number the cpu timing model consumes for one
// CPU cluster. Field names mirror the CPU* calibration constants of
// the Exynos 5250 (exynos5250.go), which document the semantics.
type CPUModel struct {
	// Name is the microarchitecture label ("Cortex-A15").
	Name string `json:"name"`
	// FreqHz is the nominal core clock (equal to DVFS[0].FreqHz).
	FreqHz float64 `json:"freq_hz"`
	// Cores is the cluster's core count.
	Cores int `json:"cores"`

	IssueWidth         float64 `json:"issue_width"`
	InstrFactor        float64 `json:"instr_factor"`
	IntALUs            float64 `json:"int_alus"`
	F64Factor          float64 `json:"f64_factor"`
	TranscCycles       float64 `json:"transc_cycles"`
	L2HitLatency       float64 `json:"l2_hit_latency"`
	DRAMLatency        float64 `json:"dram_latency"`
	L2HideFactor       float64 `json:"l2_hide_factor"`
	DRAMHideFactor     float64 `json:"dram_hide_factor"`
	PrefetchHideFactor float64 `json:"prefetch_hide_factor"`
	PerCoreBandwidth   float64 `json:"per_core_bandwidth"`
	ClusterBandwidth   float64 `json:"cluster_bandwidth"`
	OMPOverheadSec     float64 `json:"omp_overhead_sec"`

	// Cache geometry (sizes in bytes).
	L1Size int `json:"l1_size"`
	L1Line int `json:"l1_line"`
	L1Ways int `json:"l1_ways"`
	L2Size int `json:"l2_size"`
	L2Line int `json:"l2_line"`
	L2Ways int `json:"l2_ways"`

	// DVFS is the operating-point ladder, nominal first.
	DVFS []OperatingPoint `json:"dvfs"`
}

// GPUModel carries every number the mali timing model consumes for
// one GPU. Field names mirror the GPU* calibration constants of the
// Exynos 5250 (exynos5250.go), which document the semantics.
type GPUModel struct {
	// Name is the device label ("Mali-T604").
	Name string `json:"name"`
	// FreqHz is the nominal shader clock (equal to DVFS[0].FreqHz).
	FreqHz float64 `json:"freq_hz"`
	// Cores is the shader-core count.
	Cores int `json:"cores"`

	ArithPipes           float64 `json:"arith_pipes"`
	PackEff              float64 `json:"pack_eff"`
	IntCostFactor        float64 `json:"int_cost_factor"`
	TranscSlotCost       float64 `json:"transc_slot_cost"`
	PrivateLSPenalty     float64 `json:"private_ls_penalty"`
	WorkItemOverhead     float64 `json:"work_item_overhead"`
	WorkGroupOverhead    float64 `json:"work_group_overhead"`
	EnqueueOverheadSec   float64 `json:"enqueue_overhead_sec"`
	BarrierWICycles      float64 `json:"barrier_wi_cycles"`
	BarrierWGCycles      float64 `json:"barrier_wg_cycles"`
	SeqMissLSOccupancy   float64 `json:"seq_miss_ls_occupancy"`
	RandMissLSOccupancy  float64 `json:"rand_miss_ls_occupancy"`
	RestrictLSFactor     float64 `json:"restrict_ls_factor"`
	ConstLSFactor        float64 `json:"const_ls_factor"`
	L2HitLatency         float64 `json:"l2_hit_latency"`
	DRAMLatency          float64 `json:"dram_latency"`
	ThreadsForHiding     float64 `json:"threads_for_hiding"`
	RegFileBytes         float64 `json:"reg_file_bytes"`
	RegFootprintScale    float64 `json:"reg_footprint_scale"`
	MaxRegBytesPerThread float64 `json:"max_reg_bytes_per_thread"`
	PerCoreBandwidth     float64 `json:"per_core_bandwidth"`
	AtomicSCUCycles      float64 `json:"atomic_scu_cycles"`
	LocalAtomicLSSlots   float64 `json:"local_atomic_ls_slots"`
	MaxWorkGroupSize     int     `json:"max_work_group_size"`
	// FP64 reports cl_khr_fp64 (OpenCL Full Profile) support.
	FP64 bool `json:"fp64"`

	// Shared L2 geometry (bytes).
	L2Size int `json:"l2_size"`
	L2Line int `json:"l2_line"`
	L2Ways int `json:"l2_ways"`

	// DVFS is the operating-point ladder, nominal first.
	DVFS []OperatingPoint `json:"dvfs"`
}

// DRAMModel is the memory-channel model of a board.
type DRAMModel struct {
	// Name labels the configuration ("DDR3L-1600 1x32").
	Name string `json:"name"`
	// PeakBandwidth is the theoretical channel peak (bytes/s).
	PeakBandwidth float64 `json:"peak_bandwidth"`
	// Efficiency derates the peak for row misses and refresh.
	Efficiency float64 `json:"efficiency"`
	// Bandwidth is the sustainable channel bandwidth (bytes/s). It is
	// stored, not derived at load time, so the exact float64 the
	// timing model divides by is pinned in the golden files.
	Bandwidth float64 `json:"bandwidth"`
}

// PowerModel is the board-level power model. Total board power is
//
//	P = BoardStatic
//	  + Σ_cores (CPUCoreBase + CPUCoreDynamic·util)·active
//	  + (GPUBase + GPUDynamic·util)·gpuActive
//	  + DRAMPerGBs·(GB/s of DRAM traffic)
type PowerModel struct {
	BoardStatic    float64 `json:"board_static"`
	CPUCoreBase    float64 `json:"cpu_core_base"`
	CPUCoreDynamic float64 `json:"cpu_core_dynamic"`
	CPUIdleHost    float64 `json:"cpu_idle_host"`
	GPUBase        float64 `json:"gpu_base"`
	GPUDynamic     float64 `json:"gpu_dynamic"`
	DRAMPerGBs     float64 `json:"dram_per_gbs"`
}

// MeterModel describes the board's power-measurement instrument.
type MeterModel struct {
	SampleHz    float64 `json:"sample_hz"`
	Accuracy    float64 `json:"accuracy"`
	Repetitions int     `json:"repetitions"`
}

// SoC is one complete registered board model: a CPU cluster, a GPU,
// the shared DRAM channel, the board power model and the measurement
// instrument. Devices constructed from a SoC (cpu.NewOn, mali.NewOn)
// and the power functions taking one (power.MeanPowerOn) consume only
// these numbers — a SoC is the entire calibration surface of a board.
type SoC struct {
	// Name is the registry key ("exynos5250").
	Name string `json:"name"`
	// Description is a one-line board summary for listings.
	Description string `json:"description"`

	CPU   *CPUModel  `json:"cpu"`
	GPU   *GPUModel  `json:"gpu"`
	DRAM  DRAMModel  `json:"dram"`
	Power PowerModel `json:"power"`
	Meter MeterModel `json:"meter"`
}

// Nominal returns the model's nominal operating point (the ladder
// head, which Validate pins to FreqHz).
func (m *CPUModel) Nominal() OperatingPoint { return m.DVFS[0] }

// Nominal returns the model's nominal operating point.
func (m *GPUModel) Nominal() OperatingPoint { return m.DVFS[0] }

// Point finds an operating point by name.
func (m *CPUModel) Point(name string) (OperatingPoint, error) {
	return findPoint(m.DVFS, m.Name, name)
}

// Point finds an operating point by name.
func (m *GPUModel) Point(name string) (OperatingPoint, error) {
	return findPoint(m.DVFS, m.Name, name)
}

func findPoint(pts []OperatingPoint, unit, name string) (OperatingPoint, error) {
	for _, op := range pts {
		if op.Name == name {
			return op, nil
		}
	}
	return OperatingPoint{}, fmt.Errorf("unit %s has no operating point %q", unit, name)
}

// AtPoint derives the model running at the given operating point. The
// core clock changes; the DRAM load-to-use latency — fixed in time on
// the far side of the clock-domain crossing — is rescaled into the
// new clock's cycles; the OpenMP fork/join overhead (CPU work) takes
// proportionally longer in seconds at a lower clock. Deriving at the
// nominal point returns a bit-identical model.
func (m *CPUModel) AtPoint(op OperatingPoint) *CPUModel {
	fr := op.FreqHz / m.FreqHz
	d := *m
	d.FreqHz = op.FreqHz
	d.DRAMLatency = m.DRAMLatency * fr
	d.OMPOverheadSec = m.OMPOverheadSec / fr
	return &d
}

// AtPoint derives the model running at the given operating point (see
// CPUModel.AtPoint; the enqueue overhead is host-side work, so it
// does not scale with the GPU clock).
func (m *GPUModel) AtPoint(op OperatingPoint) *GPUModel {
	fr := op.FreqHz / m.FreqHz
	d := *m
	d.FreqHz = op.FreqHz
	d.DRAMLatency = m.DRAMLatency * fr
	return &d
}

// powerRatio is the busy-power scale factor of a unit moved from its
// nominal point to op: (f/f0)·(V/V0)².
func powerRatio(nom, op OperatingPoint) float64 {
	vr := op.Voltage / nom.Voltage
	return (op.FreqHz / nom.FreqHz) * vr * vr
}

// At derives the SoC with its CPU cluster and GPU each moved to the
// given operating points: the unit models are rescaled via AtPoint
// and their busy-power terms in the board power model are multiplied
// by the (f/f0)·(V/V0)² dynamic-power ratio. Board static power and
// DRAM energy per byte are unchanged — which is exactly why racing to
// idle wins on these boards: finishing later keeps the whole board's
// static draw integrating. At the nominal points the derived SoC is
// bit-identical to the original.
func (s *SoC) At(cpuOP, gpuOP OperatingPoint) *SoC {
	d := *s
	d.CPU = s.CPU.AtPoint(cpuOP)
	d.GPU = s.GPU.AtPoint(gpuOP)
	cr := powerRatio(s.CPU.Nominal(), cpuOP)
	gr := powerRatio(s.GPU.Nominal(), gpuOP)
	d.Power.CPUCoreBase = s.Power.CPUCoreBase * cr
	d.Power.CPUCoreDynamic = s.Power.CPUCoreDynamic * cr
	d.Power.CPUIdleHost = s.Power.CPUIdleHost * cr
	d.Power.GPUBase = s.Power.GPUBase * gr
	d.Power.GPUDynamic = s.Power.GPUDynamic * gr
	return &d
}

// AtNamed is At with operating points selected by name; empty names
// keep the nominal point.
func (s *SoC) AtNamed(cpuPoint, gpuPoint string) (*SoC, error) {
	cpuOP, gpuOP := s.CPU.Nominal(), s.GPU.Nominal()
	var err error
	if cpuPoint != "" {
		if cpuOP, err = s.CPU.Point(cpuPoint); err != nil {
			return nil, fmt.Errorf("soc %s: %w", s.Name, err)
		}
	}
	if gpuPoint != "" {
		if gpuOP, err = s.GPU.Point(gpuPoint); err != nil {
			return nil, fmt.Errorf("soc %s: %w", s.Name, err)
		}
	}
	return s.At(cpuOP, gpuOP), nil
}

// Validate checks the structural invariants every registered SoC must
// hold: named, complete, positive clocks and core counts, and a DVFS
// ladder whose head is the nominal point the calibration numbers were
// taken at.
func (s *SoC) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("soc has no name")
	}
	if s.CPU == nil || s.GPU == nil {
		return fmt.Errorf("soc %s: missing CPU or GPU model", s.Name)
	}
	if s.CPU.Cores < 1 || s.GPU.Cores < 1 {
		return fmt.Errorf("soc %s: non-positive core count", s.Name)
	}
	if s.DRAM.Bandwidth <= 0 {
		return fmt.Errorf("soc %s: non-positive DRAM bandwidth", s.Name)
	}
	if err := validateDVFS(s.CPU.Name, s.CPU.FreqHz, s.CPU.DVFS); err != nil {
		return fmt.Errorf("soc %s: %w", s.Name, err)
	}
	if err := validateDVFS(s.GPU.Name, s.GPU.FreqHz, s.GPU.DVFS); err != nil {
		return fmt.Errorf("soc %s: %w", s.Name, err)
	}
	return nil
}

func validateDVFS(unit string, nominalHz float64, pts []OperatingPoint) error {
	if len(pts) == 0 {
		return fmt.Errorf("unit %s has no operating points", unit)
	}
	if pts[0].FreqHz != nominalHz {
		return fmt.Errorf("unit %s: ladder head %v Hz is not the nominal %v Hz",
			unit, pts[0].FreqHz, nominalHz)
	}
	seen := map[string]bool{}
	for _, op := range pts {
		if op.Name == "" || op.FreqHz <= 0 || op.Voltage <= 0 {
			return fmt.Errorf("unit %s: malformed operating point %+v", unit, op)
		}
		if seen[op.Name] {
			return fmt.Errorf("unit %s: duplicate operating point %q", unit, op.Name)
		}
		seen[op.Name] = true
	}
	return nil
}
