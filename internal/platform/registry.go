package platform

import (
	"errors"
	"fmt"
	"sort"
)

// ErrUnknownDevice reports a device (SoC) name the registry does not
// know — the fleet sibling of vm.ErrUnknownEngine. The malisim/malid
// -device flags, the autotuner and the root façade surface it instead
// of silently falling back to the default board.
var ErrUnknownDevice = errors.New("unknown device")

// DefaultName is the SoC the original single-platform simulator
// modelled; it stays the default everywhere a device is not named.
const DefaultName = "exynos5250"

var registry = map[string]*SoC{}

// Register adds a SoC model to the fleet. It panics on a malformed or
// duplicate model — registration happens in init functions, where a
// bad model is a programming error, not an input error.
func Register(s *SoC) {
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("platform.Register: %v", err))
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("platform.Register: duplicate soc %q", s.Name))
	}
	registry[s.Name] = s
}

// Lookup returns the registered SoC of that name, or an error wrapping
// ErrUnknownDevice naming the known fleet.
func Lookup(name string) (*SoC, error) {
	if name == "" {
		name = DefaultName
	}
	if s, ok := registry[name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("%w %q (registered: %v)", ErrUnknownDevice, name, Names())
}

// Default returns the Exynos 5250 — the paper's board and the model
// every un-deviced code path runs on.
func Default() *SoC {
	s, err := Lookup(DefaultName)
	if err != nil {
		panic(err) // the package registers it in init; unreachable
	}
	return s
}

// Names lists the registered SoC names in sorted order — the
// deterministic fleet-enumeration order of the autotuner and the
// differential suite.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry { // maligo:allow maporder sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns the registered SoCs in Names order.
func All() []*SoC {
	names := Names()
	socs := make([]*SoC, len(names))
	for i, name := range names {
		socs[i] = registry[name]
	}
	return socs
}
