// Package platform holds the calibration constants of the simulated
// Samsung Exynos 5250 ("Arndale") platform: clock frequencies,
// microarchitectural cost factors, cache geometries, DRAM parameters
// and the board power model. Every number the timing and power models
// use lives here so the calibration procedure documented in
// EXPERIMENTS.md touches exactly one file.
package platform

// CPU (ARM Cortex-A15) parameters.
const (
	// CPUFreqHz is the A15 clock of the Exynos 5250.
	CPUFreqHz = 1.7e9
	// CPUCores is the number of A15 cores on the SoC.
	CPUCores = 2
	// CPUIssueWidth bounds instructions decoded per cycle.
	CPUIssueWidth = 3.0
	// CPUInstrFactor converts simulator IR instruction counts into
	// equivalent ARM instruction counts: the IR is unoptimized
	// three-address code (explicit address arithmetic, no addressing
	// modes, no fused compare-and-branch), so GCC -O3 output is
	// roughly half as many instructions.
	CPUInstrFactor = 0.45
	// CPUIntALUs is the number of integer ALUs.
	CPUIntALUs = 2.0
	// CPUF64Factor is the relative cost of a double versus a float
	// operation on the scalar VFP pipeline.
	CPUF64Factor = 1.3
	// CPUTranscCycles is the cost of one transcendental operation
	// (sqrt, exp, ...) through VFP + libm-style sequences.
	CPUTranscCycles = 45.0
	// CPUL1HitExtra and miss latencies (cycles), after out-of-order
	// overlap has been accounted for by the hide factors.
	CPUL2HitLatency   = 12.0
	CPUDRAMLatency    = 170.0
	CPUL2HideFactor   = 0.55 // fraction of L2-hit latency exposed
	CPUDRAMHideFactor = 0.65 // fraction of DRAM latency exposed on random misses
	// CPUPrefetchHideFactor is the fraction of DRAM latency exposed on
	// sequential (prefetchable) misses: the A15's L2 prefetchers hide
	// almost all of a detected stream's latency.
	CPUPrefetchHideFactor = 0.10
	// CPUPerCoreBandwidth caps a single core's achievable DRAM
	// streaming bandwidth (bytes/s); the A15 LSU and fill buffers on
	// the Exynos 5250 saturate far below the channel peak (the SoC's
	// CPU-side memory path was famously weak).
	CPUPerCoreBandwidth = 2.8e9
	// CPUClusterBandwidth caps both cores together — adding the second
	// core buys little extra streaming bandwidth, which is why the
	// paper's memory-bound OpenMP speedups are closer to 1.2x than 2x.
	CPUClusterBandwidth = 3.6e9
	// OMPRegionOverheadSec is the fork/join cost of one OpenMP
	// parallel region (thread wake-up + barrier).
	OMPRegionOverheadSec = 18e-6
)

// CPU cache geometry.
// The hierarchy is scaled ~4-8x below the physical chip (32 KB L1,
// 1 MB L2, 256 KB GPU L2) together with the workload sizes, so the
// instruction-level simulator reproduces paper-scale miss behaviour at
// tractable problem sizes; see EXPERIMENTS.md ("Simulation scaling").
const (
	CPUL1Size = 8 << 10
	CPUL1Line = 64
	CPUL1Ways = 2
	CPUL2Size = 192 << 10
	CPUL2Line = 64
	CPUL2Ways = 8
)

// GPU (ARM Mali-T604) parameters.
const (
	// GPUFreqHz is the Mali-T604 shader clock in the Exynos 5250.
	GPUFreqHz = 533e6
	// GPUCores is the number of shader cores.
	GPUCores = 4
	// GPUArithPipes is the number of 128-bit arithmetic pipelines per
	// shader core.
	GPUArithPipes = 2.0
	// GPUPackEff models how well the ARM kernel compiler packs
	// arithmetic lanes into the 128-bit VLIW lanes of the pipes: 1.0
	// would be perfect packing, real schedules reach ~70%.
	GPUPackEff = 0.7
	// GPUIntCostFactor discounts integer (mostly addressing)
	// arithmetic: Midgard folds address computation into load/store
	// descriptors and scalar VLIW slots.
	GPUIntCostFactor = 0.5
	// GPUTranscSlotCost is the number of 128-bit arithmetic slots one
	// transcendental lane occupies (the special-function unit is
	// pipelined but narrower than the main lanes).
	GPUTranscSlotCost = 2.0
	// GPUPrivateLSPenalty is the extra load/store slots each access to
	// spilled __private arrays costs: private memory is emulated in
	// main memory on Midgard with per-thread address swizzling.
	GPUPrivateLSPenalty = 4.8
	// GPUWorkItemOverhead is the per-work-item thread create/retire
	// cost in cycles — the term that punishes huge scalar NDRanges and
	// rewards vectorized kernels with fewer work-items (§III-B,
	// Vectorization).
	GPUWorkItemOverhead = 8.0
	// GPUWorkGroupOverhead is the job-manager dispatch cost per
	// work-group in cycles.
	GPUWorkGroupOverhead = 280.0
	// GPUEnqueueOverheadSec is the host-side cost of one
	// clEnqueueNDRangeKernel round trip (driver + job chain setup).
	GPUEnqueueOverheadSec = 60e-6
	// GPUBarrierWICycles is the per-work-item cost of one barrier.
	GPUBarrierWICycles = 2.0
	// GPUBarrierWGCycles is the fixed re-convergence cost per barrier
	// per work-group.
	GPUBarrierWGCycles = 40.0
	// GPUSeqMissLSOccupancy and GPURandMissLSOccupancy are the extra
	// load/store-pipe occupancy (cycles) of loads that miss the GPU
	// L2. Sequential fills stream efficiently; random fills
	// (uncoalesced gathers such as spmv's x[colidx[j]]) hold the
	// pipe's L2 interface for the whole fill, which is what makes
	// gather-heavy kernels slow on Mali.
	GPUSeqMissLSOccupancy  = 1.0
	GPURandMissLSOccupancy = 28.0
	// GPURestrictLSFactor and GPUConstLSFactor are the per-qualified-
	// parameter load/store-pipe occupancy discounts of the paper's §V-D
	// qualifiers. restrict removes aliasing hazards, so the compiler
	// schedules loads ahead of dependent stores; const routes read-only
	// data through the read path without coherence stalls. Both are
	// small: §V-D reports the qualifiers alone buy percent-level wins,
	// not the vectorization-class ones.
	GPURestrictLSFactor = 0.025
	GPUConstLSFactor    = 0.015
	// GPUL2HitLatency and GPUDRAMLatency are load-to-use latencies in
	// GPU cycles.
	GPUL2HitLatency = 16.0
	GPUDRAMLatency  = 110.0
	// GPUThreadsForHiding is the thread-level parallelism per core the
	// latency-hiding model assumes when register pressure is low.
	GPUThreadsForHiding = 64.0
	// GPURegFileBytes is the per-core register file capacity; dividing
	// by a kernel's register footprint bounds resident threads.
	GPURegFileBytes = 32 << 10
	// GPURegFootprintScale converts the lowering's (non-reusing)
	// virtual register footprint into an estimate of the real
	// allocator's demand.
	GPURegFootprintScale = 0.22
	// GPUMaxRegBytesPerThread is the hard per-thread register budget;
	// kernels whose scaled footprint exceeds it fail to launch with
	// CL_OUT_OF_RESOURCES. With the benchmark kernels in this
	// repository, exactly the double-precision optimized nbody and
	// 2dcon kernels exceed it — reproducing the paper's §V-A failures.
	GPUMaxRegBytesPerThread = 103.0
	// GPUPerCoreBandwidth caps one shader core's L2/DRAM streaming
	// rate (bytes/s).
	GPUPerCoreBandwidth = 4.5e9
	// GPUAtomicSCUCycles is the snoop-control-unit serialization cost
	// of one global atomic to a contended cache line.
	GPUAtomicSCUCycles = 10.0
	// GPULocalAtomicLSSlots is the extra load/store-pipe slots a local
	// (intra-core) atomic costs relative to a plain access; Mali
	// implements these in the core's L1 path, so they are cheap.
	GPULocalAtomicLSSlots = 1.0
	// GPUMaxWorkGroupSize per the Mali-T604 OpenCL driver.
	GPUMaxWorkGroupSize = 256
)

// GPU cache geometry (shared L2; the small per-core L1s are folded
// into the L2 hit latency).
const (
	GPUL2Size = 48 << 10
	GPUL2Line = 64
	GPUL2Ways = 8
)

// DRAM (DDR3L-1600, single 32-bit channel as on the Arndale board).
const (
	// DRAMPeakBandwidth is the theoretical channel peak (bytes/s).
	DRAMPeakBandwidth = 12.8e9
	// DRAMEfficiency derates the peak for row misses and refresh.
	DRAMEfficiency = 0.72
)

// DRAMBandwidth is the sustainable channel bandwidth (bytes/s).
const DRAMBandwidth = DRAMPeakBandwidth * DRAMEfficiency

// Board power model. Total board power is
//
//	P = PBoardStatic
//	  + Σ_cores (PCPUCoreBase + PCPUCoreDynamic·util)·active
//	  + (PGPUBase + PGPUDynamic·util)·gpuActive
//	  + PDRAMPerGBs·(GB/s of DRAM traffic)
//
// calibrated against the paper's §V-B observations: OpenMP draws ~31%
// more than Serial on average, OpenCL within ±20% of Serial (avg +7%),
// and power varies little between OpenCL and OpenCL Opt.
const (
	// PBoardStatic covers the always-on board: regulators, memory
	// standby, peripherals (watts).
	PBoardStatic = 2.10
	// PCPUCoreBase is the power of a clocked, active A15 core
	// independent of instruction mix.
	PCPUCoreBase = 0.55
	// PCPUCoreDynamic scales with pipeline utilization.
	PCPUCoreDynamic = 0.95
	// PCPUIdleHost is the host core's draw while it spins waiting on
	// the GPU (clFinish polling).
	PCPUIdleHost = 0.28
	// PGPUBase is the clocked Mali power independent of load.
	PGPUBase = 0.62
	// PGPUDynamic scales with shader-core utilization.
	PGPUDynamic = 1.05
	// PDRAMPerGBs is DRAM dynamic power per GB/s of traffic.
	PDRAMPerGBs = 0.065
)

// Power meter (Yokogawa WT230) model.
const (
	// MeterSampleHz is the meter's sampling rate.
	MeterSampleHz = 10.0
	// MeterAccuracy is the relative measurement error (0.1%).
	MeterAccuracy = 0.001
	// MeterRepetitions matches the paper's methodology (each
	// experiment repeated 20 times).
	MeterRepetitions = 20
)

// The registered Exynos 5250 SoC model is assembled verbatim from the
// constants above: every struct field is initialized from the
// constant of the same name, so the data-driven fleet path computes
// with exactly the float64 values the original constant-based build
// did — results are bit-identical, which the golden files under the
// root testdata/platform pin. The DVFS ladders extend the calibration
// with the board's lower operating points (cpufreq/devfreq tables of
// the Arndale's mainline device tree, voltages rounded to the PMIC
// step); the nominal head of each ladder is the frequency all
// calibration constants were measured at.
func newExynos5250() *SoC {
	return &SoC{
		Name:        "exynos5250",
		Description: "Samsung Exynos 5250 (Arndale): 2x Cortex-A15 + Mali-T604 MP4, DDR3L-1600 1x32",
		CPU: &CPUModel{
			Name:               "Cortex-A15",
			FreqHz:             CPUFreqHz,
			Cores:              CPUCores,
			IssueWidth:         CPUIssueWidth,
			InstrFactor:        CPUInstrFactor,
			IntALUs:            CPUIntALUs,
			F64Factor:          CPUF64Factor,
			TranscCycles:       CPUTranscCycles,
			L2HitLatency:       CPUL2HitLatency,
			DRAMLatency:        CPUDRAMLatency,
			L2HideFactor:       CPUL2HideFactor,
			DRAMHideFactor:     CPUDRAMHideFactor,
			PrefetchHideFactor: CPUPrefetchHideFactor,
			PerCoreBandwidth:   CPUPerCoreBandwidth,
			ClusterBandwidth:   CPUClusterBandwidth,
			OMPOverheadSec:     OMPRegionOverheadSec,
			L1Size:             CPUL1Size,
			L1Line:             CPUL1Line,
			L1Ways:             CPUL1Ways,
			L2Size:             CPUL2Size,
			L2Line:             CPUL2Line,
			L2Ways:             CPUL2Ways,
			// Rung voltages are bounded from below by the energy-
			// monotonicity invariant (TestDVFSMonotonicity): with the
			// board's static draw, slowing a compute-bound kernel down
			// must never save energy, which requires
			// V2² ≥ V1² − Ps·V0²·f0·(f1−f2)/(Pb·f1·f2) per rung.
			DVFS: []OperatingPoint{
				{Name: "1700MHz", FreqHz: CPUFreqHz, Voltage: 1.2375},
				{Name: "1400MHz", FreqHz: 1.4e9, Voltage: 1.15},
				{Name: "1000MHz", FreqHz: 1.0e9, Voltage: 1.0},
				{Name: "800MHz", FreqHz: 800e6, Voltage: 0.925},
			},
		},
		GPU: &GPUModel{
			Name:                 "Mali-T604",
			FreqHz:               GPUFreqHz,
			Cores:                GPUCores,
			ArithPipes:           GPUArithPipes,
			PackEff:              GPUPackEff,
			IntCostFactor:        GPUIntCostFactor,
			TranscSlotCost:       GPUTranscSlotCost,
			PrivateLSPenalty:     GPUPrivateLSPenalty,
			WorkItemOverhead:     GPUWorkItemOverhead,
			WorkGroupOverhead:    GPUWorkGroupOverhead,
			EnqueueOverheadSec:   GPUEnqueueOverheadSec,
			BarrierWICycles:      GPUBarrierWICycles,
			BarrierWGCycles:      GPUBarrierWGCycles,
			SeqMissLSOccupancy:   GPUSeqMissLSOccupancy,
			RandMissLSOccupancy:  GPURandMissLSOccupancy,
			RestrictLSFactor:     GPURestrictLSFactor,
			ConstLSFactor:        GPUConstLSFactor,
			L2HitLatency:         GPUL2HitLatency,
			DRAMLatency:          GPUDRAMLatency,
			ThreadsForHiding:     GPUThreadsForHiding,
			RegFileBytes:         GPURegFileBytes,
			RegFootprintScale:    GPURegFootprintScale,
			MaxRegBytesPerThread: GPUMaxRegBytesPerThread,
			PerCoreBandwidth:     GPUPerCoreBandwidth,
			AtomicSCUCycles:      GPUAtomicSCUCycles,
			LocalAtomicLSSlots:   GPULocalAtomicLSSlots,
			MaxWorkGroupSize:     GPUMaxWorkGroupSize,
			FP64:                 true,
			L2Size:               GPUL2Size,
			L2Line:               GPUL2Line,
			L2Ways:               GPUL2Ways,
			DVFS: []OperatingPoint{
				{Name: "533MHz", FreqHz: GPUFreqHz, Voltage: 1.05},
				{Name: "450MHz", FreqHz: 450e6, Voltage: 1.0},
				{Name: "266MHz", FreqHz: 266e6, Voltage: 0.925},
			},
		},
		DRAM: DRAMModel{
			Name:          "DDR3L-1600 1x32",
			PeakBandwidth: DRAMPeakBandwidth,
			Efficiency:    DRAMEfficiency,
			Bandwidth:     DRAMBandwidth,
		},
		Power: PowerModel{
			BoardStatic:    PBoardStatic,
			CPUCoreBase:    PCPUCoreBase,
			CPUCoreDynamic: PCPUCoreDynamic,
			CPUIdleHost:    PCPUIdleHost,
			GPUBase:        PGPUBase,
			GPUDynamic:     PGPUDynamic,
			DRAMPerGBs:     PDRAMPerGBs,
		},
		Meter: MeterModel{
			SampleHz:    MeterSampleHz,
			Accuracy:    MeterAccuracy,
			Repetitions: MeterRepetitions,
		},
	}
}

func init() { Register(newExynos5250()) }
