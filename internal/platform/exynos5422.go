// The Samsung Exynos 5422 (Odroid-XU3), the fleet's second board:
// a big.LITTLE SoC pairing a quad Cortex-A7 LITTLE cluster and a quad
// Cortex-A15 big cluster with a six-core Mali-T628 GPU over dual-
// channel LPDDR3. The scheduler-visible halves are registered as two
// SoC views sharing the GPU and memory system:
//
//   - "exynos5422"      — the LITTLE view (4x A7 + T628 MP6): the
//     energy-efficiency end of the fleet;
//   - "exynos5422-big"  — the big view (4x A15 @ 2.0 GHz + T628 MP6):
//     the speed end.
//
// The numbers follow the same calibration conventions as the Exynos
// 5250 reference (exynos5250.go documents each field's semantics):
// cache hierarchies are scaled ~4-8x below the physical chip together
// with the workload sizes, voltages are the device-tree operating
// points rounded to the PMIC step, and the power model is calibrated
// against published Odroid-XU3 per-rail measurements (the board that
// made big.LITTLE power studies a cottage industry). Unlike the 5250
// these models are data only — nothing in the simulator names them.
package platform

// The A7 is an in-order, partial-dual-issue core: it hides far less
// memory latency than the out-of-order A15 (higher exposed-latency
// factors), streams less bandwidth per core, and pays more cycles
// per transcendental — but the whole quad cluster draws less than
// one busy A15 core, which is the entire point of the LITTLE view.
func newExynos5422LittleCPU() *CPUModel {
	return &CPUModel{
		Name:               "Cortex-A7",
		FreqHz:             1.4e9,
		Cores:              4,
		IssueWidth:         2.0,
		InstrFactor:        0.5,
		IntALUs:            1.5,
		F64Factor:          2.0,
		TranscCycles:       70.0,
		L2HitLatency:       10.0,
		DRAMLatency:        130.0,
		L2HideFactor:       0.85,
		DRAMHideFactor:     0.9,
		PrefetchHideFactor: 0.35,
		PerCoreBandwidth:   1.2e9,
		ClusterBandwidth:   3.2e9,
		OMPOverheadSec:     24e-6,
		L1Size:             8 << 10,
		L1Line:             64,
		L1Ways:             4,
		L2Size:             128 << 10,
		L2Line:             64,
		L2Ways:             8,
		DVFS: []OperatingPoint{
			{Name: "1400MHz", FreqHz: 1.4e9, Voltage: 1.1375},
			{Name: "1000MHz", FreqHz: 1.0e9, Voltage: 1.0},
			{Name: "600MHz", FreqHz: 600e6, Voltage: 0.9125},
		},
	}
}

// The 5422's big cluster is the 5250's A15 two generations of
// process and integration later: twice the cores, a higher clock,
// and a memory subsystem that no longer starves the CPU side.
func newExynos5422BigCPU() *CPUModel {
	return &CPUModel{
		Name:               "Cortex-A15",
		FreqHz:             2.0e9,
		Cores:              4,
		IssueWidth:         CPUIssueWidth,
		InstrFactor:        CPUInstrFactor,
		IntALUs:            CPUIntALUs,
		F64Factor:          CPUF64Factor,
		TranscCycles:       CPUTranscCycles,
		L2HitLatency:       CPUL2HitLatency,
		DRAMLatency:        200.0,
		L2HideFactor:       CPUL2HideFactor,
		DRAMHideFactor:     CPUDRAMHideFactor,
		PrefetchHideFactor: CPUPrefetchHideFactor,
		PerCoreBandwidth:   3.5e9,
		ClusterBandwidth:   7.5e9,
		OMPOverheadSec:     15e-6,
		L1Size:             8 << 10,
		L1Line:             64,
		L1Ways:             2,
		L2Size:             256 << 10,
		L2Line:             64,
		L2Ways:             8,
		DVFS: []OperatingPoint{
			{Name: "2000MHz", FreqHz: 2.0e9, Voltage: 1.25},
			{Name: "1400MHz", FreqHz: 1.4e9, Voltage: 1.1875},
			{Name: "900MHz", FreqHz: 900e6, Voltage: 1.05},
		},
	}
}

// The T628 MP6 is the same Midgard microarchitecture as the T604
// (two 128-bit arithmetic pipes and one LS pipe per core, unified
// memory, Full Profile FP64), so the per-core cost factors carry
// over; what changes is the shape — six cores, a higher shader
// clock, a bigger shared L2 — and a per-core L2/AXI interface that
// streams slightly better than the 5250's.
func newMaliT628MP6() *GPUModel {
	return &GPUModel{
		Name:                 "Mali-T628 MP6",
		FreqHz:               600e6,
		Cores:                6,
		ArithPipes:           GPUArithPipes,
		PackEff:              GPUPackEff,
		IntCostFactor:        GPUIntCostFactor,
		TranscSlotCost:       GPUTranscSlotCost,
		PrivateLSPenalty:     GPUPrivateLSPenalty,
		WorkItemOverhead:     GPUWorkItemOverhead,
		WorkGroupOverhead:    GPUWorkGroupOverhead,
		EnqueueOverheadSec:   55e-6,
		BarrierWICycles:      GPUBarrierWICycles,
		BarrierWGCycles:      GPUBarrierWGCycles,
		SeqMissLSOccupancy:   GPUSeqMissLSOccupancy,
		RandMissLSOccupancy:  26.0,
		RestrictLSFactor:     GPURestrictLSFactor,
		ConstLSFactor:        GPUConstLSFactor,
		L2HitLatency:         GPUL2HitLatency,
		DRAMLatency:          120.0,
		ThreadsForHiding:     GPUThreadsForHiding,
		RegFileBytes:         GPURegFileBytes,
		RegFootprintScale:    GPURegFootprintScale,
		MaxRegBytesPerThread: GPUMaxRegBytesPerThread,
		PerCoreBandwidth:     5.0e9,
		AtomicSCUCycles:      GPUAtomicSCUCycles,
		LocalAtomicLSSlots:   GPULocalAtomicLSSlots,
		MaxWorkGroupSize:     256,
		FP64:                 true,
		L2Size:               64 << 10,
		L2Line:               64,
		L2Ways:               8,
		DVFS: []OperatingPoint{
			{Name: "600MHz", FreqHz: 600e6, Voltage: 1.025},
			{Name: "480MHz", FreqHz: 480e6, Voltage: 0.95},
			{Name: "266MHz", FreqHz: 266e6, Voltage: 0.875},
		},
	}
}

// newExynos5422DRAM: LPDDR3-1866 over two 32-bit channels — about
// 14.9 GB/s peak; the sustainable fraction is a touch lower than the
// Arndale's single channel because two clusters and the GPU share it.
func newExynos5422DRAM() DRAMModel {
	return DRAMModel{
		Name:          "LPDDR3-1866 2x32",
		PeakBandwidth: 14.9e9,
		Efficiency:    0.70,
		Bandwidth:     10.43e9,
	}
}

func init() {
	dram := newExynos5422DRAM()
	meter := MeterModel{
		SampleHz:    MeterSampleHz,
		Accuracy:    MeterAccuracy,
		Repetitions: MeterRepetitions,
	}
	Register(&SoC{
		Name:        "exynos5422",
		Description: "Samsung Exynos 5422 (Odroid-XU3) LITTLE view: 4x Cortex-A7 + Mali-T628 MP6, LPDDR3-1866 2x32",
		CPU:         newExynos5422LittleCPU(),
		GPU:         newMaliT628MP6(),
		DRAM:        dram,
		Power: PowerModel{
			BoardStatic:    1.85,
			CPUCoreBase:    0.10,
			CPUCoreDynamic: 0.17,
			CPUIdleHost:    0.06,
			GPUBase:        0.75,
			GPUDynamic:     1.35,
			DRAMPerGBs:     0.055,
		},
		Meter: meter,
	})
	Register(&SoC{
		Name:        "exynos5422-big",
		Description: "Samsung Exynos 5422 (Odroid-XU3) big view: 4x Cortex-A15 @ 2.0 GHz + Mali-T628 MP6, LPDDR3-1866 2x32",
		CPU:         newExynos5422BigCPU(),
		GPU:         newMaliT628MP6(),
		DRAM:        dram,
		Power: PowerModel{
			BoardStatic:    1.85,
			CPUCoreBase:    0.65,
			CPUCoreDynamic: 1.15,
			CPUIdleHost:    0.30,
			GPUBase:        0.75,
			GPUDynamic:     1.35,
			DRAMPerGBs:     0.055,
		},
		Meter: meter,
	})
}
