// Package tune is the cross-device autotuner: it enumerates kernel
// placements over the registered device fleet — target unit (serial
// CPU, the OpenMP cluster, or the Mali GPU), DVFS operating point,
// GPU work-group size, and §V transform pass set — runs every
// candidate through the simulator, and reports the energy-optimal and
// time-optimal placements.
//
// The search is exhaustive and deterministic: candidates are
// enumerated in a fixed order (device × target × operating point ×
// local size × pass set), every candidate's time and energy are pure
// functions of the simulated activity (power.EnergyOn — the meter's
// noise model is never consulted), and the optimum is the argmin with
// first-in-enumeration-order tie-breaking. Two runs of the same Space
// render byte-identical reports at any host worker count.
//
// When the Space names more than one VM engine, every candidate is
// additionally executed under each extra engine and the simulated
// observables (time, energy, DRAM traffic) must match the first
// engine bit-for-bit — the fleet differential check built into the
// search itself.
package tune

import (
	"fmt"
	"sort"
	"strings"

	"maligo/internal/bench"
	"maligo/internal/cl"
	"maligo/internal/clc"
	"maligo/internal/clc/opt"
	"maligo/internal/cpu"
	"maligo/internal/harness"
	"maligo/internal/mali"
	"maligo/internal/platform"
	"maligo/internal/power"
	"maligo/internal/vm"
)

// Target is a schedulable unit of a SoC.
const (
	// TargetCPU runs the serial version on one CPU core.
	TargetCPU = "cpu"
	// TargetCPUCluster runs the OpenMP version on the full cluster.
	TargetCPUCluster = "cpu2"
	// TargetGPU runs the naive OpenCL version on the Mali — the
	// version the work-group-size and pass-set dimensions act on.
	TargetGPU = "gpu"
)

// PassSetAll selects the full §V transform pipeline; the empty string
// runs the kernel as written.
const PassSetAll = "all"

// Space is the candidate grid of one autotuner search. The zero value
// of every field selects a sensible default, so Space{Bench: "dmmm"}
// sweeps the whole fleet.
type Space struct {
	// Bench is the benchmark kernel to place (required).
	Bench string
	// Precision is the arithmetic precision (default F32).
	Precision bench.Precision
	// Scale multiplies the paper workload sizes (default 0.25 — the
	// placement ranking is scale-stable far below figure scale).
	Scale float64
	// Devices are registry names to sweep; empty = the whole fleet in
	// platform.Names order. Unknown names fail Run with an error
	// wrapping platform.ErrUnknownDevice.
	Devices []string
	// Targets are the units to try on each device (TargetCPU,
	// TargetCPUCluster, TargetGPU); empty = all three.
	Targets []string
	// DVFS sweeps every operating point of the active unit's ladder;
	// false pins the nominal point. Default true (zero value is
	// inverted by the NoDVFS name so the zero Space sweeps).
	NoDVFS bool
	// LocalSizes are GPU work-group-size hints to try (0 = the
	// device's own heuristic); empty = {0}. Hints the device would
	// reject (not dividing the global size, or above the device
	// maximum) fall back to the heuristic, exactly like the driver.
	LocalSizes []int
	// PassSets are §V transform selections for the GPU target: "" runs
	// the kernel as written, PassSetAll the full pipeline, and a
	// comma-separated pass list (see opt.PassNames) a subset. Empty =
	// {"", "all"}.
	PassSets []string
	// Engines are the VM engines to run each candidate under. The
	// first engine's numbers score the search; every further engine
	// must reproduce them bit-for-bit or Run fails. Empty =
	// {vm.EngineAuto}.
	Engines []vm.Engine
	// Workers is the host worker count of the NDRange engine (0 =
	// all host CPUs). Reports are bit-identical at every setting.
	Workers int
}

// Candidate is one placement the autotuner evaluated.
type Candidate struct {
	// Device is the SoC registry name.
	Device string `json:"device"`
	// Target is the unit the kernel ran on (cpu, cpu2, gpu).
	Target string `json:"target"`
	// Point is the DVFS operating point of the active unit.
	Point string `json:"point"`
	// FreqHz is that point's clock, for the report.
	FreqHz float64 `json:"freq_hz"`
	// LocalSize is the GPU work-group-size hint (0 = heuristic);
	// always 0 on CPU targets.
	LocalSize int `json:"local_size,omitempty"`
	// Passes is the transform pass set ("" = as written).
	Passes string `json:"passes,omitempty"`
}

// Outcome is one evaluated candidate.
type Outcome struct {
	Candidate
	// Supported reports whether the device/version combination can
	// run this benchmark at this precision; Reason says why not.
	Supported bool   `json:"supported"`
	Reason    string `json:"reason,omitempty"`
	// Seconds is the simulated time of the measured region.
	Seconds float64 `json:"seconds"`
	// EnergyJ is the deterministic board energy-to-solution
	// (power.EnergyOn on the DVFS-derived SoC — no meter noise).
	EnergyJ float64 `json:"energy_j"`
	// MeanPowerW is the average board power over the region.
	MeanPowerW float64 `json:"mean_power_w"`
	// DRAMBytes is the region's DRAM traffic.
	DRAMBytes uint64 `json:"dram_bytes"`
}

// Report is the full deterministic search report.
type Report struct {
	// Bench, Precision, Scale echo the search parameters.
	Bench     string  `json:"bench"`
	Precision string  `json:"precision"`
	Scale     float64 `json:"scale"`
	// Engines names the engine set; Engines[0] scored the search and
	// the rest reproduced it bit-for-bit.
	Engines []string `json:"engines"`
	// Outcomes holds every candidate in enumeration order.
	Outcomes []Outcome `json:"outcomes"`
	// BestEnergy / BestTime index into Outcomes (-1 when no candidate
	// was supported): the argmin by EnergyJ / Seconds with
	// first-in-enumeration-order tie-breaking.
	BestEnergy int `json:"best_energy"`
	BestTime   int `json:"best_time"`
}

// EnergyOptimal returns the energy-optimal outcome (nil when no
// candidate was supported).
func (r *Report) EnergyOptimal() *Outcome {
	if r.BestEnergy < 0 {
		return nil
	}
	return &r.Outcomes[r.BestEnergy]
}

// TimeOptimal returns the time-optimal outcome (nil when no candidate
// was supported).
func (r *Report) TimeOptimal() *Outcome {
	if r.BestTime < 0 {
		return nil
	}
	return &r.Outcomes[r.BestTime]
}

// version maps a target to the benchmark version that runs on it.
func version(target string) (bench.Version, error) {
	switch target {
	case TargetCPU:
		return bench.Serial, nil
	case TargetCPUCluster:
		return bench.OpenMP, nil
	case TargetGPU:
		return bench.OpenCL, nil
	}
	return 0, fmt.Errorf("tune: unknown target %q (want %s, %s or %s)",
		target, TargetCPU, TargetCPUCluster, TargetGPU)
}

// parsePassSet resolves a pass-set string to the OptimizeWith
// selector: nil means "do not run the pipeline at all".
func parsePassSet(set string) (run bool, only []string, err error) {
	switch set {
	case "":
		return false, nil, nil
	case PassSetAll:
		return true, nil, nil
	}
	names := strings.Split(set, ",")
	known := map[string]bool{}
	for _, n := range opt.PassNames() {
		known[n] = true
	}
	for _, n := range names {
		if !known[strings.TrimSpace(n)] {
			return false, nil, fmt.Errorf("tune: unknown pass %q in set %q (have %s)",
				n, set, strings.Join(opt.PassNames(), ", "))
		}
	}
	return true, names, nil
}

// normalize fills the Space defaults and validates every dimension,
// returning the resolved device list.
func (s *Space) normalize() ([]*platform.SoC, error) {
	if s.Bench == "" {
		return nil, fmt.Errorf("tune: no benchmark named")
	}
	if bench.ByName(s.Bench) == nil {
		return nil, fmt.Errorf("tune: unknown benchmark %q (have %s)",
			s.Bench, strings.Join(bench.Names(), ", "))
	}
	if s.Scale == 0 {
		s.Scale = 0.25
	}
	if len(s.Devices) == 0 {
		s.Devices = platform.Names()
	}
	socs := make([]*platform.SoC, len(s.Devices))
	for i, name := range s.Devices {
		soc, err := platform.Lookup(name)
		if err != nil {
			return nil, err
		}
		socs[i] = soc
	}
	if len(s.Targets) == 0 {
		s.Targets = []string{TargetCPU, TargetCPUCluster, TargetGPU}
	}
	for _, t := range s.Targets {
		if _, err := version(t); err != nil {
			return nil, err
		}
	}
	if len(s.LocalSizes) == 0 {
		s.LocalSizes = []int{0}
	}
	for _, n := range s.LocalSizes {
		if n < 0 {
			return nil, fmt.Errorf("tune: negative local size %d", n)
		}
	}
	if len(s.PassSets) == 0 {
		s.PassSets = []string{"", PassSetAll}
	}
	for _, set := range s.PassSets {
		if _, _, err := parsePassSet(set); err != nil {
			return nil, err
		}
	}
	if len(s.Engines) == 0 {
		s.Engines = []vm.Engine{vm.EngineAuto}
	}
	return socs, nil
}

// enumerate lists the candidate grid in the fixed search order:
// device × target × operating point × (GPU only: local size × pass
// set). CPU targets sweep the CPU ladder with the GPU nominal and
// vice versa — DVFS on the inactive unit only moves its idle power,
// which the board model books as static draw.
func (s *Space) enumerate(socs []*platform.SoC) []Candidate {
	var out []Candidate
	for i, soc := range socs {
		name := s.Devices[i]
		for _, target := range s.Targets {
			ladder := soc.CPU.DVFS
			if target == TargetGPU {
				ladder = soc.GPU.DVFS
			}
			if s.NoDVFS {
				ladder = ladder[:1]
			}
			for _, op := range ladder {
				if target != TargetGPU {
					out = append(out, Candidate{
						Device: name, Target: target,
						Point: op.Name, FreqHz: op.FreqHz,
					})
					continue
				}
				for _, local := range s.LocalSizes {
					for _, set := range s.PassSets {
						out = append(out, Candidate{
							Device: name, Target: target,
							Point: op.Name, FreqHz: op.FreqHz,
							LocalSize: local, Passes: set,
						})
					}
				}
			}
		}
	}
	return out
}

// Run executes the search: every candidate in the grid, in order,
// under every engine of the Space.
func Run(space Space) (*Report, error) {
	socs, err := space.normalize()
	if err != nil {
		return nil, err
	}
	engines := make([]string, len(space.Engines))
	for i, e := range space.Engines {
		engines[i] = e.String()
	}
	rep := &Report{
		Bench:      space.Bench,
		Precision:  space.Precision.String(),
		Scale:      space.Scale,
		Engines:    engines,
		BestEnergy: -1,
		BestTime:   -1,
	}
	socByName := map[string]*platform.SoC{}
	for i, soc := range socs {
		socByName[space.Devices[i]] = soc
	}
	for _, cand := range space.enumerate(socs) {
		out, err := evaluate(space, socByName[cand.Device], cand)
		if err != nil {
			return nil, fmt.Errorf("tune: %s on %s/%s@%s: %w",
				space.Bench, cand.Device, cand.Target, cand.Point, err)
		}
		rep.Outcomes = append(rep.Outcomes, *out)
	}
	for i, o := range rep.Outcomes {
		if !o.Supported {
			continue
		}
		if rep.BestEnergy < 0 || o.EnergyJ < rep.Outcomes[rep.BestEnergy].EnergyJ {
			rep.BestEnergy = i
		}
		if rep.BestTime < 0 || o.Seconds < rep.Outcomes[rep.BestTime].Seconds {
			rep.BestTime = i
		}
	}
	return rep, nil
}

// evaluate runs one candidate under every engine of the space and
// cross-checks the simulated observables bit-for-bit.
func evaluate(space Space, soc *platform.SoC, cand Candidate) (*Outcome, error) {
	out := &Outcome{Candidate: cand}
	b := bench.ByName(space.Bench)
	v, err := version(cand.Target)
	if err != nil {
		return nil, err
	}
	if ok, reason := b.Supported(space.Precision, v); !ok {
		out.Reason = reason
		return out, nil
	}
	if v.IsGPU() && space.Precision == bench.F64 && !soc.GPU.FP64 {
		out.Reason = fmt.Sprintf("%s has no cl_khr_fp64", soc.GPU.Name)
		return out, nil
	}
	derived, err := derive(soc, cand)
	if err != nil {
		return nil, err
	}
	for i, eng := range space.Engines {
		run, err := measure(space, derived, cand, b, v, eng)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			out.Supported = true
			out.Seconds = run.Seconds
			out.EnergyJ = run.EnergyJ
			out.MeanPowerW = run.MeanPowerW
			out.DRAMBytes = run.DRAMBytes
			continue
		}
		if run.Seconds != out.Seconds || run.EnergyJ != out.EnergyJ || run.DRAMBytes != out.DRAMBytes {
			return nil, fmt.Errorf("engine differential: %s disagrees with %s (time %v vs %v, energy %v vs %v, dram %d vs %d)",
				eng, space.Engines[0], run.Seconds, out.Seconds,
				run.EnergyJ, out.EnergyJ, run.DRAMBytes, out.DRAMBytes)
		}
	}
	return out, nil
}

// derive moves the SoC to the candidate's operating point: the active
// unit to the named point, the inactive unit pinned nominal.
func derive(soc *platform.SoC, cand Candidate) (*platform.SoC, error) {
	if cand.Target == TargetGPU {
		return soc.AtNamed("", cand.Point)
	}
	return soc.AtNamed(cand.Point, "")
}

// measured is one engine's simulated observables for a candidate.
type measured struct {
	Seconds    float64
	EnergyJ    float64
	MeanPowerW float64
	DRAMBytes  uint64
}

// measure runs the candidate once under one engine: compile (routing
// GPU candidates through the selected transform passes), warm up,
// measure the steady-state region, verify, and price the activity on
// the DVFS-derived SoC.
func measure(space Space, soc *platform.SoC, cand Candidate, b bench.Benchmark, v bench.Version, eng vm.Engine) (*measured, error) {
	irProg, err := clc.Compile(space.Bench+".cl", b.Source(), space.Precision.BuildOptions())
	if err != nil {
		return nil, err
	}
	if run, only, err := parsePassSet(cand.Passes); err != nil {
		return nil, err
	} else if run && v.IsGPU() {
		irProg, _, err = opt.OptimizeWith(irProg, only)
		if err != nil {
			return nil, err
		}
	}

	cpu1 := cpu.NewOn(soc, 1)
	cluster := cpu.NewOn(soc, soc.CPU.Cores)
	gpu := mali.NewOn(soc)
	if cand.LocalSize > 0 {
		gpu.SetLocalSizeHint(cand.LocalSize)
	}
	ctx := cl.NewContextWith(
		cl.WithDevices(cpu1, cluster, gpu),
		cl.WithWorkers(space.Workers),
		cl.WithEngine(eng),
	)
	defer ctx.Close()

	prog := ctx.CreateProgramFromIR(irProg, b.Source())
	if err := b.Setup(ctx, space.Precision, space.Scale); err != nil {
		return nil, err
	}
	var q *cl.CommandQueue
	switch v {
	case bench.Serial:
		q = ctx.CreateCommandQueue(cpu1)
	case bench.OpenMP:
		q = ctx.CreateCommandQueue(cluster)
	default:
		q = ctx.CreateCommandQueue(gpu)
	}

	// Warm-up then measured run — the figure harness's protocol.
	if _, err := b.Run(q, prog, v); err != nil {
		return nil, fmt.Errorf("warm-up: %w", err)
	}
	q.ResetEvents()
	if _, err := b.Run(q, prog, v); err != nil {
		return nil, err
	}
	if err := b.Verify(space.Precision); err != nil {
		return nil, fmt.Errorf("verification: %w", err)
	}
	act, err := harness.ActivityFromEvents(q, v)
	if err != nil {
		return nil, err
	}
	return &measured{
		Seconds:    act.Seconds,
		EnergyJ:    power.EnergyOn(soc, act),
		MeanPowerW: power.MeanPowerOn(soc, act),
		DRAMBytes:  act.DRAMBytes,
	}, nil
}

// Targets returns the valid target names in enumeration order.
func Targets() []string { return []string{TargetCPU, TargetCPUCluster, TargetGPU} }

// sortedOutcomes returns outcome indices ordered by energy (ascending,
// unsupported last, enumeration order breaking ties) — the report's
// ranking view.
func sortedOutcomes(outs []Outcome) []int {
	idx := make([]int, len(outs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, bi int) bool {
		oa, ob := outs[idx[a]], outs[idx[bi]]
		if oa.Supported != ob.Supported {
			return oa.Supported
		}
		if !oa.Supported {
			return false
		}
		return oa.EnergyJ < ob.EnergyJ
	})
	return idx
}
