package tune

import (
	"encoding/json"
	"fmt"
	"strings"
)

// label renders a candidate's placement as the report's fixed-width
// key, e.g. "exynos5422/gpu@480MHz local=64 passes=all".
func (c Candidate) label() string {
	s := fmt.Sprintf("%s/%s@%s", c.Device, c.Target, c.Point)
	if c.Target == TargetGPU {
		local := "auto"
		if c.LocalSize > 0 {
			local = fmt.Sprintf("%d", c.LocalSize)
		}
		passes := c.Passes
		if passes == "" {
			passes = "none"
		}
		s += fmt.Sprintf(" local=%s passes=%s", local, passes)
	}
	return s
}

// Render formats the report as a deterministic text table: the search
// header, every candidate ranked by energy (unsupported candidates
// last), and the two optima. Byte-identical across runs and host
// worker counts.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Autotune %s (%s, scale %g)\n", r.Bench, r.Precision, r.Scale)
	fmt.Fprintf(&b, "engines: %s; %d candidates\n\n", strings.Join(r.Engines, "="), len(r.Outcomes))
	fmt.Fprintf(&b, "%-52s %12s %12s %10s %10s\n",
		"placement", "time ms", "energy J", "power W", "DRAM MB")
	for _, i := range sortedOutcomes(r.Outcomes) {
		o := r.Outcomes[i]
		if !o.Supported {
			fmt.Fprintf(&b, "%-52s %12s  n/a — %s\n", o.label(), "-", o.Reason)
			continue
		}
		mark := " "
		switch {
		case i == r.BestEnergy && i == r.BestTime:
			mark = "*" // both optima
		case i == r.BestEnergy:
			mark = "E"
		case i == r.BestTime:
			mark = "T"
		}
		fmt.Fprintf(&b, "%-52s %12.4f %12.6f %10.4f %10.2f %s\n",
			o.label(), o.Seconds*1000, o.EnergyJ, o.MeanPowerW,
			float64(o.DRAMBytes)/1e6, mark)
	}
	b.WriteString("\n")
	if e := r.EnergyOptimal(); e != nil {
		fmt.Fprintf(&b, "energy-optimal  %s  (%.6f J, %.4f ms)\n",
			e.label(), e.EnergyJ, e.Seconds*1000)
	} else {
		b.WriteString("energy-optimal  (no supported candidate)\n")
	}
	if t := r.TimeOptimal(); t != nil {
		fmt.Fprintf(&b, "time-optimal    %s  (%.4f ms, %.6f J)\n",
			t.label(), t.Seconds*1000, t.EnergyJ)
	} else {
		b.WriteString("time-optimal    (no supported candidate)\n")
	}
	return b.String()
}

// JSON renders the report as indented JSON (the malitune -json mode).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
