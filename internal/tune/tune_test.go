package tune

import (
	"bytes"
	"errors"
	"testing"

	"maligo/internal/bench"
	"maligo/internal/platform"
	"maligo/internal/vm"
)

// smallSpace is a cheap two-device space used by most properties.
func smallSpace() Space {
	return Space{
		Bench:   "vecop",
		Scale:   0.05,
		Devices: []string{"exynos5250", "exynos5422"},
	}
}

// TestAutotuneDeterministic runs the same search twice and at two
// host worker counts and requires the rendered report and the JSON
// form to be byte-for-byte identical — the autotuner's core contract.
func TestAutotuneDeterministic(t *testing.T) {
	ref, err := Run(smallSpace())
	if err != nil {
		t.Fatal(err)
	}
	refText, refJSON := ref.Render(), mustJSON(t, ref)
	for name, space := range map[string]Space{
		"again":     smallSpace(),
		"workers=1": withWorkers(smallSpace(), 1),
		"workers=3": withWorkers(smallSpace(), 3),
	} {
		got, err := Run(space)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Render() != refText {
			t.Errorf("%s: rendered report differs:\n--- ref\n%s\n--- got\n%s", name, refText, got.Render())
		}
		if !bytes.Equal(mustJSON(t, got), refJSON) {
			t.Errorf("%s: JSON report differs", name)
		}
	}
}

func withWorkers(s Space, n int) Space { s.Workers = n; return s }

func mustJSON(t *testing.T, r *Report) []byte {
	t.Helper()
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestAutotuneArgmin checks the returned optima against a direct scan
// of the outcome table: BestEnergy/BestTime must be the argmin over
// the supported candidates with first-in-enumeration-order ties.
func TestAutotuneArgmin(t *testing.T) {
	rep, err := Run(smallSpace())
	if err != nil {
		t.Fatal(err)
	}
	checkArgmin(t, rep)
}

// checkArgmin asserts the report's optima are true argmins (shared
// with the fuzz target).
func checkArgmin(t *testing.T, rep *Report) {
	t.Helper()
	bestE, bestT := -1, -1
	for i, o := range rep.Outcomes {
		if !o.Supported {
			continue
		}
		if bestE < 0 || o.EnergyJ < rep.Outcomes[bestE].EnergyJ {
			bestE = i
		}
		if bestT < 0 || o.Seconds < rep.Outcomes[bestT].Seconds {
			bestT = i
		}
	}
	if rep.BestEnergy != bestE {
		t.Errorf("BestEnergy = %d, argmin scan says %d", rep.BestEnergy, bestE)
	}
	if rep.BestTime != bestT {
		t.Errorf("BestTime = %d, argmin scan says %d", rep.BestTime, bestT)
	}
	if bestE >= 0 {
		e := rep.EnergyOptimal()
		for _, o := range rep.Outcomes {
			if o.Supported && o.EnergyJ < e.EnergyJ {
				t.Errorf("outcome %+v beats the energy optimum %+v", o.Candidate, e.Candidate)
			}
		}
	}
}

// TestDVFSMonotonicity pins the race-to-idle sanity property: on a
// compute-bound kernel (nbody — arithmetic-dominated on every unit),
// running slower never saves energy, because the board's static draw
// keeps integrating while the V² dynamic savings are bounded by the
// ladder's voltage floor. Every device, every target, full ladders.
func TestDVFSMonotonicity(t *testing.T) {
	rep, err := Run(Space{Bench: "nbody", Scale: 0.05, PassSets: []string{""}})
	if err != nil {
		t.Fatal(err)
	}
	type group struct {
		device, target string
		local          int
		passes         string
	}
	lastE := map[group]float64{}
	lastF := map[group]float64{}
	lastP := map[group]string{}
	for _, o := range rep.Outcomes {
		if !o.Supported {
			continue
		}
		g := group{o.Device, o.Target, o.LocalSize, o.Passes}
		if f, seen := lastF[g]; seen {
			if o.FreqHz >= f {
				t.Fatalf("%s/%s: ladder not enumerated nominal-first (%v after %v Hz)",
					o.Device, o.Target, o.FreqHz, f)
			}
			if o.EnergyJ < lastE[g] {
				t.Errorf("%s/%s: %s (%.6g J) beats %s (%.6g J) — slowing down saved energy on a compute-bound kernel",
					o.Device, o.Target, o.Point, o.EnergyJ, lastP[g], lastE[g])
			}
		}
		lastE[g], lastF[g], lastP[g] = o.EnergyJ, o.FreqHz, o.Point
	}
	if len(lastE) == 0 {
		t.Fatal("no supported outcomes")
	}
}

// TestAutotuneEngineDifferential turns the built-in cross-engine
// check on: every candidate runs under the interpreter oracle and
// both fast engines, and Run fails unless all three agree bit-for-bit
// on every simulated observable the search scores.
func TestAutotuneEngineDifferential(t *testing.T) {
	space := smallSpace()
	space.Engines = []vm.Engine{vm.EngineInterp, vm.EngineCompiled, vm.EngineLanes}
	rep, err := Run(space)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Engines) != 3 {
		t.Fatalf("engines = %v", rep.Engines)
	}
}

// TestLocalSizeDimension checks the work-group-size dimension reaches
// the device: on dmmm (2D matrix multiply) a forced tiny local size
// must change the GPU timing versus the device heuristic.
func TestLocalSizeDimension(t *testing.T) {
	rep, err := Run(Space{
		Bench:      "dmmm",
		Scale:      0.05,
		Devices:    []string{"exynos5250"},
		Targets:    []string{TargetGPU},
		NoDVFS:     true,
		LocalSizes: []int{0, 4},
		PassSets:   []string{""},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != 2 {
		t.Fatalf("want 2 outcomes, got %d", len(rep.Outcomes))
	}
	auto, forced := rep.Outcomes[0], rep.Outcomes[1]
	if !auto.Supported || !forced.Supported {
		t.Fatalf("unsupported outcomes: %+v %+v", auto, forced)
	}
	if auto.Seconds == forced.Seconds {
		t.Errorf("local size hint had no effect: both %.9g s", auto.Seconds)
	}
}

// TestSpaceErrors pins the typed search-space errors.
func TestSpaceErrors(t *testing.T) {
	if _, err := Run(Space{Bench: "vecop", Devices: []string{"pi-zero"}}); !errors.Is(err, platform.ErrUnknownDevice) {
		t.Errorf("unknown device: got %v, want ErrUnknownDevice", err)
	}
	if _, err := Run(Space{Bench: "no-such-kernel"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Run(Space{Bench: "vecop", Targets: []string{"npu"}}); err == nil {
		t.Error("unknown target accepted")
	}
	if _, err := Run(Space{Bench: "vecop", PassSets: []string{"no-such-pass"}}); err == nil {
		t.Error("unknown pass set accepted")
	}
	if _, err := Run(Space{}); err == nil {
		t.Error("empty bench accepted")
	}
}

// TestUnsupportedCandidatesReported checks n/a candidates stay in the
// report (with a reason) rather than vanishing: amcd reproduces the
// paper's double-precision driver-bug artifact, so every GPU
// candidate at F64 must be present and unsupported.
func TestUnsupportedCandidatesReported(t *testing.T) {
	rep, err := Run(Space{
		Bench:     "amcd",
		Precision: bench.F64,
		Scale:     0.05,
		Devices:   []string{"exynos5250"},
		Targets:   []string{TargetGPU},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) == 0 {
		t.Fatal("no outcomes")
	}
	for _, o := range rep.Outcomes {
		if o.Supported || o.Reason == "" {
			t.Errorf("F64 amcd GPU candidate should be unsupported with a reason: %+v", o)
		}
	}
	if rep.BestEnergy != -1 || rep.BestTime != -1 {
		t.Errorf("optima over an all-unsupported table: E=%d T=%d", rep.BestEnergy, rep.BestTime)
	}
	if rep.EnergyOptimal() != nil || rep.TimeOptimal() != nil {
		t.Error("optimal accessors should be nil")
	}
}

// FuzzAutotune drives randomized small search spaces through the
// tuner and checks the invariants that must hold for every input:
// the search either fails cleanly or returns a report whose optima
// are true argmins and whose rendering is deterministic across a
// re-run at a different worker count.
func FuzzAutotune(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(2), false)
	f.Add(uint8(1), uint8(5), uint8(64), true)
	f.Add(uint8(2), uint8(3), uint8(16), false)
	f.Fuzz(func(t *testing.T, devSel, benchSel, local uint8, noDVFS bool) {
		devices := platform.Names()
		benches := []string{"vecop", "red", "hist"}
		space := Space{
			Bench:      benches[int(benchSel)%len(benches)],
			Scale:      0.05,
			Devices:    []string{devices[int(devSel)%len(devices)]},
			LocalSizes: []int{int(local)},
			PassSets:   []string{""},
			NoDVFS:     noDVFS,
			Workers:    1,
		}
		rep, err := Run(space)
		if err != nil {
			t.Fatalf("a well-formed space must not fail: %v", err)
		}
		checkArgmin(t, rep)
		space.Workers = 2
		rep2, err := Run(space)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Render() != rep2.Render() {
			t.Errorf("report differs across worker counts:\n--- w1\n%s\n--- w2\n%s", rep.Render(), rep2.Render())
		}
	})
}

// TestEnumerationOrder pins the candidate order the report contract
// depends on: device × target × ladder point (× local × pass set).
func TestEnumerationOrder(t *testing.T) {
	s := Space{
		Bench:      "vecop",
		Devices:    []string{"exynos5250"},
		Targets:    []string{TargetCPU, TargetGPU},
		LocalSizes: []int{0, 32},
		PassSets:   []string{"", PassSetAll},
	}
	socs, err := s.normalize()
	if err != nil {
		t.Fatal(err)
	}
	cands := s.enumerate(socs)
	soc := socs[0]
	want := len(soc.CPU.DVFS) + len(soc.GPU.DVFS)*2*2
	if len(cands) != want {
		t.Fatalf("got %d candidates, want %d", len(cands), want)
	}
	// CPU candidates come first, ladder in declaration order.
	for i, op := range soc.CPU.DVFS {
		c := cands[i]
		if c.Target != TargetCPU || c.Point != op.Name {
			t.Errorf("candidate %d = %+v, want cpu@%s", i, c, op.Name)
		}
	}
	// Then GPU: point-major, local, pass set innermost.
	c := cands[len(soc.CPU.DVFS)]
	if c.Target != TargetGPU || c.Point != soc.GPU.DVFS[0].Name || c.LocalSize != 0 || c.Passes != "" {
		t.Errorf("first GPU candidate = %+v", c)
	}
}

// TestBenchmarkNamesValid guards the fuzz corpus benchmarks.
func TestBenchmarkNamesValid(t *testing.T) {
	for _, name := range []string{"vecop", "red", "hist", "nbody", "dmmm", "amcd"} {
		if bench.ByName(name) == nil {
			t.Errorf("benchmark %q no longer registered", name)
		}
	}
}
