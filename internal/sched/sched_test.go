package sched_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"maligo/internal/sched"
)

// cmd builds a command with a fixed simulated duration that appends
// its label to ran (executor runs one body at a time, so no locking).
func cmd(s *sched.Scheduler, label string, seconds float64, ran *[]string) *sched.Command {
	return s.NewCommand(label, func() (sched.Outcome, error) {
		if ran != nil {
			*ran = append(*ran, label)
		}
		return sched.Outcome{Seconds: seconds}, nil
	})
}

// TestInOrderChainStamps checks a QueuedAfter chain reproduces the
// synchronous queue's tiling: QUEUED == SUBMIT == previous END.
func TestInOrderChainStamps(t *testing.T) {
	s := sched.New()
	defer s.Close()
	var ran []string
	a := cmd(s, "a", 1, &ran)
	b := cmd(s, "b", 2, &ran).QueuedAfter(a.Event()).After(a.Event())
	c := cmd(s, "c", 3, &ran).QueuedAfter(b.Event()).After(b.Event())
	if err := s.Submit(a, b, c); err != nil {
		t.Fatal(err)
	}
	if err := c.Event().Wait(); err != nil {
		t.Fatal(err)
	}
	wantQ := []float64{0, 1, 3}
	wantE := []float64{1, 3, 6}
	for i, ev := range []*sched.Event{a.Event(), b.Event(), c.Event()} {
		q, sub, st, end := ev.Stamps()
		if q != wantQ[i] || sub != q || st != q || end != wantE[i] {
			t.Errorf("%s: stamps %g/%g/%g/%g, want queued %g end %g",
				ev.Label(), q, sub, st, end, wantQ[i], wantE[i])
		}
	}
	if fmt.Sprint(ran) != "[a b c]" {
		t.Errorf("execution order %v", ran)
	}
}

// TestOutOfOrderOverlap checks independent commands overlap in
// simulated time: both submit at t=0 regardless of execution order.
func TestOutOfOrderOverlap(t *testing.T) {
	s := sched.New()
	defer s.Close()
	a := cmd(s, "a", 5, nil)
	b := cmd(s, "b", 3, nil)
	join := s.NewCommand("join", nil).After(a.Event(), b.Event())
	if err := s.Submit(a, b, join); err != nil {
		t.Fatal(err)
	}
	if err := join.Event().Wait(); err != nil {
		t.Fatal(err)
	}
	for _, ev := range []*sched.Event{a.Event(), b.Event()} {
		if _, sub, _, _ := ev.Stamps(); sub != 0 {
			t.Errorf("%s submitted at %g, want 0 (overlap window)", ev.Label(), sub)
		}
	}
	// The join waits for the slower branch: 0-duration marker at t=5.
	if _, sub, _, end := join.Event().Stamps(); sub != 5 || end != 5 {
		t.Errorf("join stamps submit %g end %g, want 5/5", sub, end)
	}
}

// TestDispatchClamp checks the SUBMIT→START window is clamped into
// [0, Seconds] exactly like the synchronous queue's record().
func TestDispatchClamp(t *testing.T) {
	s := sched.New()
	defer s.Close()
	c := s.NewCommand("c", func() (sched.Outcome, error) {
		return sched.Outcome{Seconds: 2, Dispatch: 5}, nil
	})
	if err := s.Submit(c); err != nil {
		t.Fatal(err)
	}
	if err := c.Event().Wait(); err != nil {
		t.Fatal(err)
	}
	if _, sub, st, end := c.Event().Stamps(); st != sub+2 || end != sub+2 {
		t.Errorf("clamped stamps submit %g start %g end %g", sub, st, end)
	}
}

// TestTypedErrors locks down the queue-contract error taxonomy.
func TestTypedErrors(t *testing.T) {
	s := sched.New()
	defer s.Close()
	other := sched.New()
	defer other.Close()

	t.Run("cycle", func(t *testing.T) {
		a := cmd(s, "a", 1, nil)
		b := cmd(s, "b", 1, nil)
		a.After(b.Event())
		b.After(a.Event())
		if err := s.Submit(a, b); !errors.Is(err, sched.ErrCycle) {
			t.Fatalf("Submit = %v, want ErrCycle", err)
		}
	})
	t.Run("self-cycle", func(t *testing.T) {
		a := cmd(s, "a", 1, nil)
		a.After(a.Event())
		if err := s.Submit(a); !errors.Is(err, sched.ErrCycle) {
			t.Fatalf("Submit = %v, want ErrCycle", err)
		}
	})
	t.Run("double-wait", func(t *testing.T) {
		a := cmd(s, "a", 1, nil)
		if err := s.Submit(a); err != nil {
			t.Fatal(err)
		}
		b := cmd(s, "b", 1, nil).After(a.Event(), a.Event())
		if err := s.Submit(b); !errors.Is(err, sched.ErrDoubleWait) {
			t.Fatalf("Submit = %v, want ErrDoubleWait", err)
		}
	})
	t.Run("orphan", func(t *testing.T) {
		never := cmd(s, "never-submitted", 1, nil)
		b := cmd(s, "b", 1, nil).After(never.Event())
		if err := s.Submit(b); !errors.Is(err, sched.ErrOrphanEvent) {
			t.Fatalf("Submit = %v, want ErrOrphanEvent", err)
		}
	})
	t.Run("foreign", func(t *testing.T) {
		fa := cmd(other, "fa", 1, nil)
		if err := other.Submit(fa); err != nil {
			t.Fatal(err)
		}
		b := cmd(s, "b", 1, nil).After(fa.Event())
		if err := s.Submit(b); !errors.Is(err, sched.ErrForeignEvent) {
			t.Fatalf("Submit = %v, want ErrForeignEvent", err)
		}
	})
	t.Run("not-user-event", func(t *testing.T) {
		a := cmd(s, "a", 1, nil)
		if err := s.Submit(a); err != nil {
			t.Fatal(err)
		}
		if err := a.Event().SetComplete(); !errors.Is(err, sched.ErrNotUserEvent) {
			t.Fatalf("SetComplete = %v, want ErrNotUserEvent", err)
		}
	})
	t.Run("closed", func(t *testing.T) {
		dead := sched.New()
		dead.Close()
		if err := dead.Submit(cmd(dead, "late", 1, nil)); !errors.Is(err, sched.ErrClosed) {
			t.Fatalf("Submit = %v, want ErrClosed", err)
		}
	})
}

// TestUserEventGate checks user events gate execution, complete at
// simulated time zero, and reject double signalling.
func TestUserEventGate(t *testing.T) {
	s := sched.New()
	defer s.Close()
	u := s.NewUserEvent("gate")
	var ran atomic.Bool
	c := s.NewCommand("gated", func() (sched.Outcome, error) {
		ran.Store(true)
		return sched.Outcome{Seconds: 1}, nil
	}).After(u)
	if err := s.Submit(c); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if ran.Load() {
		t.Fatal("gated command ran before the user event was signalled")
	}
	if got := c.Event().Status(); got != sched.StatusQueued {
		t.Fatalf("gated status = %v, want QUEUED", got)
	}
	if err := u.SetComplete(); err != nil {
		t.Fatal(err)
	}
	if err := c.Event().Wait(); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("gated command never ran after signal")
	}
	// User events complete at simulated time zero: the gated command's
	// stamps are independent of when the host called SetComplete.
	if q, sub, _, end := c.Event().Stamps(); q != 0 || sub != 0 || end != 1 {
		t.Errorf("gated stamps queued %g submit %g end %g, want 0/0/1", q, sub, end)
	}
	if err := u.SetComplete(); !errors.Is(err, sched.ErrAlreadyComplete) {
		t.Fatalf("second SetComplete = %v, want ErrAlreadyComplete", err)
	}

	// SetError cascades like a failed command.
	bad := s.NewUserEvent("bad-gate")
	dep := cmd(s, "dep", 1, nil).After(bad)
	if err := s.Submit(dep); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("host aborted")
	if err := bad.SetError(boom); err != nil {
		t.Fatal(err)
	}
	err := dep.Event().Wait()
	if !errors.Is(err, sched.ErrDepFailed) || !errors.Is(err, boom) {
		t.Fatalf("dep err = %v, want ErrDepFailed wrapping host error", err)
	}
}

// TestStallSurfacesOrphanError checks WaitEvent refuses to deadlock on
// an unsignalled user event.
func TestStallSurfacesOrphanError(t *testing.T) {
	s := sched.New()
	defer s.Close()
	u := s.NewUserEvent("never")
	c := cmd(s, "blocked", 1, nil).After(u)
	if err := s.Submit(c); err != nil {
		t.Fatal(err)
	}
	err := s.WaitEvent(context.Background(), c.Event())
	if !errors.Is(err, sched.ErrOrphanEvent) {
		t.Fatalf("WaitEvent = %v, want ErrOrphanEvent", err)
	}
	// The command is still pending: signalling the gate rescues it.
	if err := u.SetComplete(); err != nil {
		t.Fatal(err)
	}
	if err := s.WaitEvent(context.Background(), c.Event()); err != nil {
		t.Fatalf("WaitEvent after signal = %v", err)
	}
}

// TestWaitEventCtxCancel checks context cancellation unblocks waits.
func TestWaitEventCtxCancel(t *testing.T) {
	s := sched.New()
	defer s.Close()
	slow := s.NewCommand("slow", func() (sched.Outcome, error) {
		time.Sleep(50 * time.Millisecond)
		return sched.Outcome{Seconds: 1}, nil
	})
	c := cmd(s, "later", 1, nil).After(slow.Event())
	if err := s.Submit(slow, c); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.WaitEvent(ctx, c.Event()); !errors.Is(err, context.Canceled) {
		t.Fatalf("WaitEvent = %v, want context.Canceled", err)
	}
	if err := s.WaitEvent(context.Background(), c.Event()); err != nil {
		t.Fatal(err)
	}
}

// TestFailureCascade checks a body error fails the event and cascades
// to dependents as ErrDepFailed while preserving the root cause.
func TestFailureCascade(t *testing.T) {
	s := sched.New()
	defer s.Close()
	boom := errors.New("CL_OUT_OF_RESOURCES")
	bad := s.NewCommand("bad", func() (sched.Outcome, error) { return sched.Outcome{}, boom })
	var ran atomic.Bool
	dep := s.NewCommand("dep", func() (sched.Outcome, error) {
		ran.Store(true)
		return sched.Outcome{Seconds: 1}, nil
	}).After(bad.Event())
	if err := s.Submit(bad, dep); err != nil {
		t.Fatal(err)
	}
	if err := bad.Event().Wait(); !errors.Is(err, boom) {
		t.Fatalf("bad err = %v", err)
	}
	err := dep.Event().Wait()
	if !errors.Is(err, sched.ErrDepFailed) || !errors.Is(err, boom) {
		t.Fatalf("dep err = %v, want ErrDepFailed wrapping root cause", err)
	}
	if ran.Load() {
		t.Error("dependent body ran despite failed dependency")
	}
	if dep.Event().Status() != sched.StatusFailed {
		t.Errorf("dep status = %v", dep.Event().Status())
	}
}

// TestCloseFailsPending checks Close unblocks commands stuck on
// unsignalled user events with ErrClosed, and is idempotent.
func TestCloseFailsPending(t *testing.T) {
	s := sched.New()
	u := s.NewUserEvent("never")
	c := cmd(s, "stuck", 1, nil).After(u)
	if err := s.Submit(c); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
	if err := c.Event().Wait(); !errors.Is(err, sched.ErrClosed) {
		t.Fatalf("stuck err = %v, want ErrClosed", err)
	}
	if err := u.SetComplete(); err != nil {
		t.Fatalf("signalling a user event after Close must stay safe: %v", err)
	}
}

// dagSpec is the shared random-DAG model of the property test and the
// fuzzer: command i owns 8 bytes of memory at i*8, reads the regions
// of its dependencies and writes a digest of them plus its own seed.
type dagSpec struct {
	n       int
	deps    [][]int // wait-list edges, all pointing at earlier commands
	queue   []int   // queue id; -1 = out-of-order (no QueuedAfter)
	seconds []float64
	disp    []float64
	seed    []byte
	gated   []bool // also wait on a shared user event (signalled post-submit)
	fail    []bool
}

// oracle executes the spec serially in submit order — a valid
// topological order — and returns memory plus per-command stamps.
// Failed commands (and their transitive dependents) neither run nor
// carry stamps; ok marks the commands that completed.
func (d *dagSpec) oracle() (mem []byte, stamps [][4]float64, ok []bool) {
	mem = make([]byte, d.n*8)
	stamps = make([][4]float64, d.n)
	ok = make([]bool, d.n)
	lastInQueue := make(map[int]int)
	prevOf := make([]int, d.n)
	for i := range prevOf {
		prevOf[i] = -1
	}
	for i := 0; i < d.n; i++ {
		if q := d.queue[i]; q >= 0 {
			if p, seen := lastInQueue[q]; seen {
				prevOf[i] = p
			}
			lastInQueue[q] = i
		}
	}
	for i := 0; i < d.n; i++ {
		good := !d.fail[i]
		for _, dep := range d.deps[i] {
			if !ok[dep] {
				good = false
			}
		}
		if p := prevOf[i]; p >= 0 && !ok[p] {
			good = false
		}
		if !good {
			continue
		}
		ok[i] = true
		queued := 0.0
		if p := prevOf[i]; p >= 0 {
			queued = stamps[p][3]
		}
		submitted := queued
		for _, dep := range d.deps[i] {
			if e := stamps[dep][3]; e > submitted {
				submitted = e
			}
		}
		if p := prevOf[i]; p >= 0 {
			if e := stamps[p][3]; e > submitted {
				submitted = e
			}
		}
		disp := d.disp[i]
		if disp < 0 {
			disp = 0
		}
		if disp > d.seconds[i] {
			disp = d.seconds[i]
		}
		stamps[i] = [4]float64{queued, submitted, submitted + disp, submitted + d.seconds[i]}
		d.writeRegion(mem, i)
	}
	return mem, stamps, ok
}

// writeRegion computes command i's digest over its deps' regions.
func (d *dagSpec) writeRegion(mem []byte, i int) {
	var acc byte = d.seed[i]
	for _, dep := range d.deps[i] {
		for b := 0; b < 8; b++ {
			acc ^= mem[dep*8+b] + byte(b)
		}
	}
	for b := 0; b < 8; b++ {
		mem[i*8+b] = acc + byte(b)
	}
}

// run executes the spec on a real scheduler with the given chooser and
// returns memory, stamps and completion flags.
func (d *dagSpec) run(t testing.TB, chooser func([]int64) int) (mem []byte, stamps [][4]float64, ok []bool) {
	var opts []sched.Option
	if chooser != nil {
		opts = append(opts, sched.WithChooser(chooser))
	}
	s := sched.New(opts...)
	defer s.Close()
	mem = make([]byte, d.n*8)
	cmds := make([]*sched.Command, d.n)
	prevInQueue := make(map[int]*sched.Event)
	var gate *sched.Event
	for _, g := range d.gated {
		if g {
			gate = s.NewUserEvent("gate")
			break
		}
	}
	for i := 0; i < d.n; i++ {
		i := i
		var run func() (sched.Outcome, error)
		if d.fail[i] {
			run = func() (sched.Outcome, error) {
				return sched.Outcome{}, fmt.Errorf("injected failure in %d", i)
			}
		} else {
			run = func() (sched.Outcome, error) {
				d.writeRegion(mem, i)
				return sched.Outcome{Seconds: d.seconds[i], Dispatch: d.disp[i]}, nil
			}
		}
		c := s.NewCommand(fmt.Sprintf("cmd-%d", i), run)
		for _, dep := range d.deps[i] {
			c.After(cmds[dep].Event())
		}
		if d.gated[i] {
			c.After(gate)
		}
		if q := d.queue[i]; q >= 0 {
			// QueuedAfter is an implicit dependency; no After needed
			// (and a random wait-list edge may already name prev).
			if prev := prevInQueue[q]; prev != nil {
				c.QueuedAfter(prev)
			}
			prevInQueue[q] = c.Event()
		}
		cmds[i] = c
	}
	if err := s.Submit(cmds...); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if gate != nil {
		if err := gate.SetComplete(); err != nil {
			t.Fatalf("SetComplete: %v", err)
		}
	}
	stamps = make([][4]float64, d.n)
	ok = make([]bool, d.n)
	for i, c := range cmds {
		err := c.Event().Wait()
		ok[i] = err == nil
		if err == nil {
			q, sub, st, end := c.Event().Stamps()
			stamps[i] = [4]float64{q, sub, st, end}
		}
	}
	return mem, stamps, ok
}

// runFuzz runs the spec with a scheduling policy derived from a fuzz
// byte: 0 keeps the default lowest-sequence chooser, anything else
// installs a deterministic rotating adversary.
func (d *dagSpec) runFuzz(t testing.TB, policy int) (mem []byte, stamps [][4]float64, ok []bool) {
	if policy%5 == 0 {
		return d.run(t, nil)
	}
	i := policy
	return d.run(t, func(seqs []int64) int {
		i += policy + 1
		return ((i % len(seqs)) + len(seqs)) % len(seqs)
	})
}

// genSpec derives a random DAG from an rng.
func genSpec(rng *rand.Rand, n int) *dagSpec {
	d := &dagSpec{n: n}
	d.deps = make([][]int, n)
	d.queue = make([]int, n)
	d.seconds = make([]float64, n)
	d.disp = make([]float64, n)
	d.seed = make([]byte, n)
	d.gated = make([]bool, n)
	d.fail = make([]bool, n)
	for i := 0; i < n; i++ {
		d.queue[i] = rng.Intn(4) - 1 // -1..2: one OOO pool, three in-order queues
		d.seconds[i] = float64(rng.Intn(32)) / 8
		d.disp[i] = float64(rng.Intn(16)) / 16
		d.seed[i] = byte(rng.Intn(256))
		d.gated[i] = rng.Intn(5) == 0
		d.fail[i] = rng.Intn(12) == 0
		for dep := 0; dep < i; dep++ {
			if rng.Intn(4) == 0 {
				d.deps[i] = append(d.deps[i], dep)
			}
		}
	}
	return d
}

// TestTopologicalOrderInvariance is the property test of the queue
// contract: for random DAGs, every topological execution order — the
// default lowest-sequence policy and a range of adversarial choosers —
// produces byte-identical memory and bit-identical event stamps,
// matching the serial oracle.
func TestTopologicalOrderInvariance(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		d := genSpec(rng, 3+rng.Intn(14))
		wantMem, wantStamps, wantOK := d.oracle()

		choosers := []struct {
			name string
			pick func([]int64) int
		}{
			{"lowest-seq", nil},
			{"highest-seq", func(seqs []int64) int { return len(seqs) - 1 }},
			{"middle", func(seqs []int64) int { return len(seqs) / 2 }},
			{"rotating", func() func([]int64) int {
				i := 0
				return func(seqs []int64) int { i++; return i % len(seqs) }
			}()},
		}
		for _, ch := range choosers {
			mem, stamps, ok := d.run(t, ch.pick)
			for i := 0; i < d.n; i++ {
				if ok[i] != wantOK[i] {
					t.Fatalf("trial %d chooser %s: cmd %d ok=%v, oracle %v",
						trial, ch.name, i, ok[i], wantOK[i])
				}
				if ok[i] && stamps[i] != wantStamps[i] {
					t.Fatalf("trial %d chooser %s: cmd %d stamps %v, oracle %v",
						trial, ch.name, i, stamps[i], wantStamps[i])
				}
			}
			for b := range mem {
				if mem[b] != wantMem[b] {
					t.Fatalf("trial %d chooser %s: memory[%d] = %d, oracle %d",
						trial, ch.name, b, mem[b], wantMem[b])
				}
			}
		}
	}
}
