// Package sched implements the per-context DAG scheduler behind the
// asynchronous command queues: commands are submitted with wait-lists
// of events, dispatch topologically as their dependencies complete,
// and carry simulated profiling timestamps derived purely from the
// dependency graph and the timing model — never from host goroutine
// interleaving.
//
// # Determinism contract
//
// The scheduler executes at most one command body at a time, always
// picking the lowest-sequence ready command (unless a test installs a
// different chooser via WithChooser — any choice is a valid
// topological order). Command bodies may themselves shard work-groups
// across the device worker pool, so host parallelism is preserved;
// what the serial executor buys is that stateful device models (the
// shared L2, the miss classifier) see command streams in a
// deterministic order, keeping reports bit-identical run to run.
//
// Simulated timestamps are a pure function of the DAG:
//
//	QUEUED  = Ended of the QueuedAfter event (the in-order
//	          predecessor), or 0 — an out-of-order enqueue is
//	          instantaneous at simulated time zero
//	SUBMIT  = max(QUEUED, Ended of every wait-list event)
//	START   = SUBMIT + dispatch overhead (clamped into [0, Seconds])
//	END     = SUBMIT + Seconds
//
// For a lone in-order queue this reproduces the synchronous queue's
// stamps bit-for-bit (QUEUED == SUBMIT, commands tile the timeline);
// across queues it yields deterministic overlap windows. User events
// complete at simulated time zero regardless of when the host signals
// them, so stamps never depend on host timing.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Typed errors of the queue contract. Everything the scheduler rejects
// or detects is wrapped around one of these, so callers can errors.Is.
var (
	// ErrClosed reports a submission to (or a wait on) a scheduler
	// that was shut down.
	ErrClosed = errors.New("sched: scheduler closed")
	// ErrCycle reports a wait-list cycle inside a submitted batch.
	ErrCycle = errors.New("sched: wait-list cycle")
	// ErrDoubleWait reports the same event appearing twice in one
	// command's wait list.
	ErrDoubleWait = errors.New("sched: duplicate event in wait list")
	// ErrOrphanEvent reports a dependency that can never complete: a
	// command event whose command was never submitted, or — at
	// Finish/WaitEvent time — a queue stalled on a user event nobody
	// has signalled.
	ErrOrphanEvent = errors.New("sched: wait on event that can never complete")
	// ErrForeignEvent reports a wait-list event owned by a different
	// scheduler (OpenCL: events are context-scoped).
	ErrForeignEvent = errors.New("sched: event belongs to a different scheduler")
	// ErrNotUserEvent reports SetComplete/SetError on a non-user event.
	ErrNotUserEvent = errors.New("sched: not a user event")
	// ErrAlreadyComplete reports a second SetComplete/SetError on a
	// user event.
	ErrAlreadyComplete = errors.New("sched: user event already complete")
	// ErrDepFailed wraps the error of a failed dependency when the
	// failure cascades to dependent commands.
	ErrDepFailed = errors.New("sched: dependency failed")
)

// Status is an event's lifecycle state, mirroring the OpenCL execution
// statuses CL_QUEUED/CL_SUBMITTED/CL_RUNNING/CL_COMPLETE (with Failed
// standing in for a negative status).
type Status int32

// Event statuses.
const (
	StatusQueued   Status = iota // waiting on dependencies
	StatusReady                  // dependencies satisfied, awaiting the executor
	StatusRunning                // command body executing
	StatusComplete               // finished successfully
	StatusFailed                 // finished with an error
)

// String names the status like the OpenCL constants do.
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "QUEUED"
	case StatusReady:
		return "SUBMITTED"
	case StatusRunning:
		return "RUNNING"
	case StatusComplete:
		return "COMPLETE"
	case StatusFailed:
		return "FAILED"
	}
	return fmt.Sprintf("Status(%d)", int32(s))
}

// Outcome is what a command body reports back: its simulated duration
// and the dispatch (SUBMIT→START) window, both in seconds.
type Outcome struct {
	Seconds  float64
	Dispatch float64
}

// Event is the completion handle of one command (or a user event). All
// mutable state is guarded by the scheduler mutex until the done
// channel closes; after that the stamps and error are immutable and
// may be read freely.
type Event struct {
	s     *Scheduler
	id    int64
	user  bool
	label string
	cmd   *Command // producing command; nil for user events

	done chan struct{}

	// Guarded by s.mu until done closes.
	status                            Status
	err                               error
	queued, submitted, started, ended float64
	waiters                           []*Command
}

// Label returns the event's display label.
func (e *Event) Label() string { return e.label }

// IsUserEvent reports whether this is a host-signalled user event.
func (e *Event) IsUserEvent() bool { return e.user }

// Done returns a channel closed when the event completes or fails.
func (e *Event) Done() <-chan struct{} { return e.done }

// Failed reports whether the event finished with an error. Unlike Err
// it is already meaningful inside OnComplete callbacks, which run just
// before the done channel closes.
func (e *Event) Failed() bool {
	return e.Status() == StatusFailed
}

// Complete reports whether the event has finished (either way).
func (e *Event) Complete() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// Status returns the event's current lifecycle state.
func (e *Event) Status() Status {
	e.s.mu.Lock()
	defer e.s.mu.Unlock()
	return e.status
}

// Err returns the event's error; nil while pending or on success.
func (e *Event) Err() error {
	if !e.Complete() {
		return nil
	}
	return e.err
}

// Stamps returns the simulated QUEUED/SUBMIT/START/END timestamps.
// Meaningful only after the event completes successfully.
func (e *Event) Stamps() (queued, submitted, started, ended float64) {
	e.s.mu.Lock()
	defer e.s.mu.Unlock()
	return e.queued, e.submitted, e.started, e.ended
}

// Wait blocks until the event completes and returns its error. It does
// not detect stalls; prefer Scheduler.WaitEvent when the waiting
// goroutine is also the one that would signal user events.
func (e *Event) Wait() error {
	<-e.done
	return e.err
}

// SetComplete transitions a user event to StatusComplete, releasing
// every command waiting on it. User events complete at simulated time
// zero so downstream stamps stay independent of host timing.
func (e *Event) SetComplete() error { return e.setUser(nil) }

// SetError transitions a user event to StatusFailed with err (which
// must be non-nil), cascading the failure to dependent commands.
func (e *Event) SetError(err error) error {
	if err == nil {
		err = errors.New("sched: user event failed")
	}
	return e.setUser(err)
}

func (e *Event) setUser(err error) error {
	s := e.s
	if !e.user {
		return fmt.Errorf("%s: %w", e.label, ErrNotUserEvent)
	}
	s.mu.Lock()
	if e.status >= StatusComplete {
		s.mu.Unlock()
		return fmt.Errorf("%s: %w", e.label, ErrAlreadyComplete)
	}
	var fired []*Event
	s.finishLocked(e, Outcome{}, err, &fired)
	s.bumpLocked()
	s.mu.Unlock()
	s.fire(fired)
	return nil
}

// Command is one schedulable unit of work: a body to execute plus the
// events it waits on. Build it with Scheduler.NewCommand, chain
// configuration, then Submit.
type Command struct {
	s     *Scheduler
	label string
	lane  int
	run   func() (Outcome, error)

	deps        []*Event
	queuedAfter *Event
	minQueued   float64
	onComplete  func(*Event)

	ev        *Event
	seq       int64
	ndeps     int
	submitted bool
}

// NewCommand creates an unsubmitted command. run executes the body and
// reports the simulated outcome; a nil run is a zero-duration command
// (markers, barriers).
func (s *Scheduler) NewCommand(label string, run func() (Outcome, error)) *Command {
	c := &Command{s: s, label: label, run: run}
	c.ev = &Event{s: s, label: label, cmd: c, done: make(chan struct{})}
	return c
}

// Event returns the command's completion event (valid before Submit,
// so batches can wire cross-dependencies).
func (c *Command) Event() *Event { return c.ev }

// After appends events to the command's wait list.
func (c *Command) After(evs ...*Event) *Command {
	for _, e := range evs {
		if e != nil {
			c.deps = append(c.deps, e)
		}
	}
	return c
}

// QueuedAfter sets the event whose END defines this command's QUEUED
// stamp — the in-order predecessor on the same queue. The event is
// also an implicit dependency. Nil (the default) queues at simulated
// time zero, the out-of-order behaviour.
func (c *Command) QueuedAfter(e *Event) *Command {
	c.queuedAfter = e
	return c
}

// MinQueued sets a floor on the command's QUEUED stamp. The cl runtime
// uses it when a scheduled command follows legacy synchronous history
// on the same in-order queue: the synchronous clock is where the chain
// left off, even though no scheduler event carries that time.
func (c *Command) MinQueued(t float64) *Command {
	if t > c.minQueued {
		c.minQueued = t
	}
	return c
}

// OnComplete registers fn to run (on the completing goroutine, without
// scheduler locks held) right after the command's event is stamped.
func (c *Command) OnComplete(fn func(*Event)) *Command {
	c.onComplete = fn
	return c
}

// Lane tags the command with a queue/lane id for diagnostics.
func (c *Command) Lane(id int) *Command {
	c.lane = id
	return c
}

// allDeps invokes fn for every dependency, including the implicit
// QueuedAfter edge.
func (c *Command) allDeps(fn func(*Event)) {
	if c.queuedAfter != nil {
		fn(c.queuedAfter)
	}
	for _, d := range c.deps {
		fn(d)
	}
}

// Scheduler dispatches submitted commands in topological order on a
// single executor goroutine. Create one per context with New; Close it
// when the context closes.
type Scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond

	exec    func(func())           // runs command bodies (e.g. on the device pool)
	chooser func(seqs []int64) int // picks among ready commands; tests only
	genCh   chan struct{}          // closed+replaced on every state change
	ready   []*Command             // sorted by seq
	pending map[*Command]struct{}  // submitted, not yet finished
	running *Command
	nextSeq int64
	nextID  int64
	closed  bool
	wg      sync.WaitGroup
}

// Option configures New.
type Option func(*Scheduler)

// WithExec installs the executor hook the scheduler runs command
// bodies through — the cl runtime passes one that dispatches onto the
// context's device worker pool. The default runs bodies inline on the
// executor goroutine.
func WithExec(exec func(func())) Option {
	return func(s *Scheduler) { s.exec = exec }
}

// WithChooser installs a scheduling-policy hook: given the sequence
// numbers of every ready command, pick returns the index to run next.
// Any choice yields a valid topological order; the conformance suite
// uses this to prove order-independence. The default picks the lowest
// sequence number, which is what keeps stateful device models
// bit-identical to the synchronous queue.
func WithChooser(pick func(seqs []int64) int) Option {
	return func(s *Scheduler) { s.chooser = pick }
}

// New creates a scheduler and starts its executor goroutine.
func New(opts ...Option) *Scheduler {
	s := &Scheduler{genCh: make(chan struct{}), pending: make(map[*Command]struct{})}
	s.cond = sync.NewCond(&s.mu)
	for _, o := range opts {
		o(s)
	}
	if s.exec == nil {
		s.exec = func(f func()) { f() }
	}
	s.wg.Add(1)
	go s.loop()
	return s
}

// NewUserEvent creates a host-signalled event in StatusQueued.
// Complete it with SetComplete or SetError.
func (s *Scheduler) NewUserEvent(label string) *Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	if label == "" {
		label = fmt.Sprintf("user-event-%d", s.nextID)
	}
	return &Event{s: s, label: label, user: true, done: make(chan struct{})}
}

// Submit validates a batch of commands and enqueues them atomically:
// either every command is accepted or none is. Wait-list edges may
// point at events of commands inside the same batch (that is how the
// conformance fuzzer builds arbitrary DAGs); cycles, duplicate waits,
// foreign events and orphan dependencies are rejected with typed
// errors.
func (s *Scheduler) Submit(cmds ...*Command) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	inBatch := make(map[*Command]bool, len(cmds))
	for _, c := range cmds {
		if c.s != s {
			s.mu.Unlock()
			return fmt.Errorf("command %q: %w", c.label, ErrForeignEvent)
		}
		if c.submitted || inBatch[c] {
			s.mu.Unlock()
			return fmt.Errorf("command %q submitted twice: %w", c.label, ErrDoubleWait)
		}
		inBatch[c] = true
	}
	for _, c := range cmds {
		seen := make(map[*Event]bool, len(c.deps))
		for _, d := range c.deps {
			if seen[d] {
				s.mu.Unlock()
				return fmt.Errorf("command %q waits twice on %q: %w", c.label, d.label, ErrDoubleWait)
			}
			seen[d] = true
		}
		var depErr error
		c.allDeps(func(d *Event) {
			if depErr != nil {
				return
			}
			switch {
			case d.s != s:
				depErr = fmt.Errorf("command %q waits on %q: %w", c.label, d.label, ErrForeignEvent)
			case !d.user && !d.cmd.submitted && !inBatch[d.cmd]:
				depErr = fmt.Errorf("command %q waits on unsubmitted %q: %w", c.label, d.label, ErrOrphanEvent)
			}
		})
		if depErr != nil {
			s.mu.Unlock()
			return depErr
		}
	}
	if err := checkCycle(cmds, inBatch); err != nil {
		s.mu.Unlock()
		return err
	}

	// Accepted: assign sequence numbers in argument order and wire the
	// dependency counts under the same critical section, so no event
	// can complete between validation and registration.
	var fired []*Event
	for _, c := range cmds {
		c.seq = s.nextSeq
		s.nextSeq++
		c.submitted = true
		s.pending[c] = struct{}{}
		failed := error(nil)
		c.allDeps(func(d *Event) {
			switch d.status {
			case StatusComplete:
			case StatusFailed:
				if failed == nil {
					failed = fmt.Errorf("%q waits on failed %q: %w", c.label, d.label, errors.Join(ErrDepFailed, d.err))
				}
			default:
				c.ndeps++
				d.waiters = append(d.waiters, c)
			}
		})
		switch {
		case failed != nil:
			s.finishLocked(c.ev, Outcome{}, failed, &fired)
		case c.ndeps == 0:
			s.pushReadyLocked(c)
		}
	}
	s.bumpLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.fire(fired)
	return nil
}

// checkCycle runs Kahn's algorithm over the batch-internal dependency
// edges and reports ErrCycle when some commands can never start.
func checkCycle(cmds []*Command, inBatch map[*Command]bool) error {
	indeg := make(map[*Command]int, len(cmds))
	dependents := make(map[*Command][]*Command, len(cmds))
	for _, c := range cmds {
		c.allDeps(func(d *Event) {
			if d.cmd != nil && inBatch[d.cmd] && !d.cmd.submitted {
				indeg[c]++
				dependents[d.cmd] = append(dependents[d.cmd], c)
			}
		})
	}
	queue := make([]*Command, 0, len(cmds))
	for _, c := range cmds {
		if indeg[c] == 0 {
			queue = append(queue, c)
		}
	}
	done := 0
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		done++
		for _, w := range dependents[c] {
			if indeg[w]--; indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if done != len(cmds) {
		var stuck []string
		for _, c := range cmds {
			if indeg[c] > 0 {
				stuck = append(stuck, c.label)
			}
		}
		return fmt.Errorf("commands %v: %w", stuck, ErrCycle)
	}
	return nil
}

// pushReadyLocked inserts c into the ready list, kept sorted by seq.
func (s *Scheduler) pushReadyLocked(c *Command) {
	c.ev.status = StatusReady
	i := sort.Search(len(s.ready), func(i int) bool { return s.ready[i].seq > c.seq })
	s.ready = append(s.ready, nil)
	copy(s.ready[i+1:], s.ready[i:])
	s.ready[i] = c
}

// bumpLocked signals every state-change watcher: WaitEvent loops (via
// the generation channel) and the executor's cond.Wait — SetComplete
// on a user event may have just made a command ready.
func (s *Scheduler) bumpLocked() {
	close(s.genCh)
	s.genCh = make(chan struct{})
	s.cond.Broadcast()
}

// fire closes done channels and runs OnComplete callbacks outside the
// scheduler lock, in completion order.
func (s *Scheduler) fire(evs []*Event) {
	for _, e := range evs {
		if e.cmd != nil && e.cmd.onComplete != nil {
			e.cmd.onComplete(e)
		}
		close(e.done)
	}
}

// finishLocked stamps and completes an event, cascading failures to
// its waiters. Completed events are appended to fired for the caller
// to fire outside the lock (in dependency order).
func (s *Scheduler) finishLocked(e *Event, out Outcome, err error, fired *[]*Event) {
	if e.status >= StatusComplete {
		return
	}
	if c := e.cmd; c != nil {
		e.queued = c.minQueued
		if c.queuedAfter != nil && c.queuedAfter.ended > e.queued {
			e.queued = c.queuedAfter.ended
		}
		e.submitted = e.queued
		c.allDeps(func(d *Event) {
			if d.ended > e.submitted {
				e.submitted = d.ended
			}
		})
		dispatch := out.Dispatch
		if dispatch < 0 {
			dispatch = 0
		}
		if dispatch > out.Seconds {
			dispatch = out.Seconds
		}
		e.started = e.submitted + dispatch
		e.ended = e.submitted + out.Seconds
		delete(s.pending, c)
	}
	if err != nil {
		e.status = StatusFailed
		e.err = err
		e.queued, e.submitted, e.started, e.ended = 0, 0, 0, 0
	} else {
		e.status = StatusComplete
	}
	*fired = append(*fired, e)
	waiters := e.waiters
	e.waiters = nil
	for _, w := range waiters {
		if w.ev.status >= StatusComplete {
			continue
		}
		if err != nil {
			s.finishLocked(w.ev, Outcome{},
				fmt.Errorf("%q: %w", w.label, errors.Join(ErrDepFailed, err)), fired)
			continue
		}
		if w.ndeps--; w.ndeps == 0 {
			s.pushReadyLocked(w)
		}
	}
}

// loop is the executor: it picks one ready command at a time (lowest
// sequence, unless a chooser says otherwise), runs its body through
// the exec hook, and completes its event.
func (s *Scheduler) loop() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.ready) == 0 && !s.closed {
			s.bumpLocked() // lets WaitEvent observe stalls
			s.cond.Wait()
		}
		if s.closed {
			// Fail whatever is still queued so waiters unblock.
			var fired []*Event
			for _, c := range s.ready {
				s.finishLocked(c.ev, Outcome{}, fmt.Errorf("%q: %w", c.label, ErrClosed), &fired)
			}
			s.ready = nil
			s.bumpLocked()
			s.mu.Unlock()
			s.fire(fired)
			return
		}
		i := 0
		if s.chooser != nil && len(s.ready) > 1 {
			seqs := make([]int64, len(s.ready))
			for j, c := range s.ready {
				seqs[j] = c.seq
			}
			if k := s.chooser(seqs); k >= 0 && k < len(s.ready) {
				i = k
			}
		}
		c := s.ready[i]
		s.ready = append(s.ready[:i], s.ready[i+1:]...)
		c.ev.status = StatusRunning
		s.running = c
		s.bumpLocked()
		s.mu.Unlock()

		var out Outcome
		var err error
		if c.run != nil {
			s.exec(func() { out, err = c.run() })
		}

		s.mu.Lock()
		s.running = nil
		var fired []*Event
		s.finishLocked(c.ev, out, err, &fired)
		s.bumpLocked()
		s.mu.Unlock()
		s.fire(fired)
	}
}

// stalledLocked reports a scheduler that can make no progress on its
// own: commands are pending but none is ready or running — every one
// of them is (transitively) blocked on user events nobody signalled.
func (s *Scheduler) stalledLocked() bool {
	return len(s.pending) > 0 && len(s.ready) == 0 && s.running == nil
}

// Pending returns the number of submitted, unfinished commands.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// WaitEvent blocks until e completes, returning its error. It fails
// fast instead of deadlocking: ctx cancellation returns ctx.Err(), and
// a scheduler stalled on unsignalled user events returns
// ErrOrphanEvent — the simulator's answer to a clFinish that would
// hang forever. Hosts that signal user events from another goroutine
// should use Event.Wait instead.
func (s *Scheduler) WaitEvent(ctx context.Context, e *Event) error {
	if e.s != s {
		return fmt.Errorf("%q: %w", e.label, ErrForeignEvent)
	}
	for {
		select {
		case <-e.done:
			return e.err
		default:
		}
		s.mu.Lock()
		ch := s.genCh
		stalled := s.stalledLocked()
		s.mu.Unlock()
		if stalled && !e.Complete() {
			return fmt.Errorf("%q blocked on unsignalled user event: %w", e.label, ErrOrphanEvent)
		}
		select {
		case <-e.done:
			return e.err
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// Close shuts the scheduler down: the running command (if any)
// completes first, every other pending command fails with ErrClosed,
// and the executor goroutine exits before Close returns. Idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.bumpLocked()
	s.mu.Unlock()
	// The executor completes its running command, fails the ready
	// ones, then exits.
	s.wg.Wait()

	// Sweep commands that were still blocked on dependencies (user
	// events nobody signalled, or deps the executor just failed).
	s.mu.Lock()
	var fired []*Event
	for len(s.pending) > 0 {
		var c *Command
		for cand := range s.pending { // maligo:allow maporder min-seq selection commutes
			if c == nil || cand.seq < c.seq {
				c = cand
			}
		}
		s.finishLocked(c.ev, Outcome{}, fmt.Errorf("%q: %w", c.label, ErrClosed), &fired)
	}
	s.bumpLocked()
	s.mu.Unlock()
	s.fire(fired)
}
