package sched_test

import (
	"testing"
)

// FuzzCommandDAG decodes arbitrary bytes into a random DAG of commands
// (kernel-like bodies writing memory regions, in-order chains across
// three queues, user-event gates, injected failures) plus an
// adversarial scheduling policy, runs it on the real scheduler, and
// cross-checks memory bytes, event stamps and completion flags against
// the serial oracle. This is the executable form of the queue
// contract: no topological execution order, however hostile, may
// change observable results.
func FuzzCommandDAG(f *testing.F) {
	f.Add([]byte{3, 0x11, 0x22, 0x33})
	f.Add([]byte{8, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	// Diamond: 0 -> {1,2} -> 3 with differing durations.
	f.Add([]byte{4, 0x00, 0x81, 0x41, 0xC3, 0x10, 0x20, 0x30, 0x40})
	// Dense deps + failure-prone bytes.
	f.Add([]byte{12, 0xFF, 0xFE, 0xFD, 0xFC, 0xFB, 0xFA, 0xF9, 0xF8,
		0xF7, 0xF6, 0xF5, 0xF4, 0xF3, 0xF2, 0xF1, 0xF0})
	// User-event gates on every command.
	f.Add([]byte{6, 0x60, 0x61, 0x62, 0x63, 0x64, 0x65, 0x00, 0xAA})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		d, policy := decodeSpec(data)
		if d.n == 0 {
			return
		}
		wantMem, wantStamps, wantOK := d.oracle()
		mem, stamps, ok := d.runFuzz(t, policy)
		for i := 0; i < d.n; i++ {
			if ok[i] != wantOK[i] {
				t.Fatalf("cmd %d ok=%v, oracle %v", i, ok[i], wantOK[i])
			}
			if ok[i] && stamps[i] != wantStamps[i] {
				t.Fatalf("cmd %d stamps %v, oracle %v", i, stamps[i], wantStamps[i])
			}
		}
		for b := range mem {
			if mem[b] != wantMem[b] {
				t.Fatalf("memory[%d] = %d, oracle %d", b, mem[b], wantMem[b])
			}
		}
	})
}

// decodeSpec interprets fuzz bytes as a DAG description. Byte 0 caps
// the command count; each command consumes one descriptor byte:
//
//	bit 0-1: queue assignment (0 = out-of-order, 1-3 = in-order queue)
//	bit 2:   gate this command on a shared user event
//	bit 3:   inject a body failure
//	bit 4-7: simulated duration nibble
//
// Remaining bytes feed the dependency mask (one byte per command, each
// bit j set = wait on command i-1-j) and the scheduling policy.
func decodeSpec(data []byte) (*dagSpec, int) {
	n := int(data[0]) % 17
	if n > len(data)-1 {
		n = len(data) - 1
	}
	d := &dagSpec{n: n}
	d.deps = make([][]int, n)
	d.queue = make([]int, n)
	d.seconds = make([]float64, n)
	d.disp = make([]float64, n)
	d.seed = make([]byte, n)
	d.gated = make([]bool, n)
	d.fail = make([]bool, n)
	rest := data[1+n:]
	for i := 0; i < n; i++ {
		b := data[1+i]
		d.queue[i] = int(b&3) - 1
		d.gated[i] = b&4 != 0
		d.fail[i] = b&8 != 0
		d.seconds[i] = float64(b>>4) / 4
		d.disp[i] = float64((b>>4)&3) / 8
		d.seed[i] = b * 37
		var mask byte
		if i < len(rest) {
			mask = rest[i]
		}
		for j := 0; j < 8 && j < i; j++ {
			if mask&(1<<j) != 0 {
				d.deps[i] = append(d.deps[i], i-1-j)
			}
		}
	}
	policy := 0
	if len(rest) > n {
		policy = int(rest[n])
	}
	return d, policy
}
