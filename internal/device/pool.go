package device

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"maligo/internal/vm"
)

// Pool is a host-side worker pool that executes work-groups
// concurrently. Workers are persistent goroutines so repeated enqueues
// (the harness runs thousands of groups) don't pay goroutine startup.
type Pool struct {
	jobs    chan func()
	workers int
	wg      sync.WaitGroup
	once    sync.Once

	busy atomic.Int64  // workers currently executing a job
	done atomic.Uint64 // jobs completed since creation
}

// NewPool creates a pool with the given number of workers; workers <= 0
// selects runtime.NumCPU().
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	p := &Pool{jobs: make(chan func()), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				p.busy.Add(1)
				job()
				p.busy.Add(-1)
				p.done.Add(1)
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Run executes f on a pool worker and waits for it to return. The
// async command scheduler dispatches command bodies through this, so
// a body's own RunGroups fan-out shares the remaining workers; that
// nesting is deadlock-free because pools only exist with two or more
// workers and at most one command body runs at a time. Must not race
// with Close.
func (p *Pool) Run(f func()) {
	done := make(chan struct{})
	p.jobs <- func() {
		defer close(done)
		f()
	}
	<-done
}

// Stats reports pool occupancy: jobs completed since creation and the
// number of workers executing right now. Both are instantaneous
// observations, meant for metrics gauges.
func (p *Pool) Stats() (jobsDone uint64, busyWorkers int) {
	return p.done.Load(), int(p.busy.Load())
}

// Close stops the workers. Safe to call more than once; must not race
// with submit.
func (p *Pool) Close() {
	p.once.Do(func() {
		close(p.jobs)
		p.wg.Wait()
	})
}

// RaceObserver receives each work-group's detailed memory trace for
// dynamic race analysis (vm.RaceDetector implements it, as does
// vm.LineProfiler for hot-line attribution). Called in dispatch order
// on the consuming goroutine.
type RaceObserver interface {
	ObserveGroup(group [3]int, tr *vm.Trace)
}

// FanObservers combines trace observers so one enqueue can feed both
// the race detector and the line profiler from a single detailed
// trace. Nil entries are dropped; nil is returned when none remain.
func FanObservers(obs ...RaceObserver) RaceObserver {
	var live []RaceObserver
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return observerFan(live)
}

type observerFan []RaceObserver

func (f observerFan) ObserveGroup(group [3]int, tr *vm.Trace) {
	for _, o := range f {
		o.ObserveGroup(group, tr)
	}
}

// RunConfig carries the execution context of one enqueue: an optional
// cancellation context, an optional worker pool and an optional race
// observer. The zero value means "serial, non-cancellable, unchecked"
// — exactly the legacy Run behaviour.
type RunConfig struct {
	Ctx  context.Context
	Pool *Pool
	// Race, when non-nil, makes the engine record detailed (work-item
	// attributed) traces and hand each group's trace to the observer
	// before cost accounting.
	Race RaceObserver
	// Engine selects the VM execution engine (reference interpreter or
	// the closure-compiled fast path); the zero value resolves to the
	// fast path. Both engines are observationally identical.
	Engine vm.Engine
}

// Parallel reports whether this config asks for concurrent execution.
func (rc RunConfig) Parallel() bool { return rc.Pool != nil && rc.Pool.workers > 1 }

// Context returns rc.Ctx or context.Background().
func (rc RunConfig) Context() context.Context {
	if rc.Ctx != nil {
		return rc.Ctx
	}
	return context.Background()
}

// ContextRunner is implemented by devices that support cancellable
// and/or pool-parallel execution. Devices that only implement Run keep
// working: the runtime falls back to serial execution for them.
type ContextRunner interface {
	RunWith(rc RunConfig, ndr *NDRange, mem vm.GlobalMemory) (*Report, error)
}

// GroupWork is one functionally-executed work-group: its profile and
// its recorded memory trace, ready for cost accounting.
type GroupWork struct {
	// Index is the dispatch index (row-major group order).
	Index int
	// Group is the 3-D work-group ID.
	Group [3]int
	// Profile holds the group's instruction counts.
	Profile vm.Profile
	// Trace is the group's memory-event stream in program order. The
	// consumer should Release it after replaying.
	Trace *vm.Trace
}

// groupResult pairs a GroupWork with its execution error for the
// ordered fan-in.
type groupResult struct {
	index int
	gw    *GroupWork
	err   error
}

// RunGroups executes every work-group of the NDRange on the pool,
// recording each group's memory trace, and invokes consume for each
// group strictly in dispatch (row-major) order. Consume runs on the
// calling goroutine, so a stateful cost model (shared cache, miss
// classifier) sees the exact access stream serial execution would have
// produced — that is what keeps parallel reports bit-identical.
//
// Functional memory effects (stores, atomics) hit mem during the
// concurrent phase in nondeterministic group order; this is sound for
// data-parallel kernels, whose groups write disjoint ranges or combine
// via commutative atomics. The first error, in dispatch order, is
// returned — matching the serial engine's "stop at first failing
// group" semantics.
func RunGroups(rc RunConfig, ndr *NDRange, gmem vm.GlobalMemory, consume func(*GroupWork) error) error {
	ctx, cancel := context.WithCancel(rc.Context())
	defer cancel()
	pool := rc.Pool

	// Bound the number of in-flight groups (dispatched but not yet
	// consumed) so trace memory stays proportional to the pool size
	// even when one slow group stalls the ordered consumer.
	window := 2 * pool.Workers()
	sem := make(chan struct{}, window)
	results := make(chan groupResult, window)

	// Dispatcher: enumerate groups in row-major order, submitting each
	// to the pool. Reports how many it dispatched so the fan-in knows
	// when to stop, including after cancellation.
	dispatchedCh := make(chan int, 1)
	go func() {
		dispatched := 0
		_ = ForEachGroup(ndr, func(group [3]int) error {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				return ctx.Err()
			}
			idx := dispatched
			g := group
			pool.jobs <- func() {
				res := groupResult{index: idx}
				if err := ctx.Err(); err != nil {
					res.err = err
				} else {
					tr := vm.NewTrace()
					if rc.Race != nil {
						tr.EnableDetail()
					}
					gw := &GroupWork{Index: idx, Group: g, Trace: tr}
					cfg := &vm.GroupConfig{
						Kernel:       ndr.Kernel,
						WorkDim:      ndr.WorkDim,
						GroupID:      g,
						LocalSize:    ndr.Local,
						GlobalSize:   ndr.Global,
						GlobalOffset: ndr.Offset,
						Args:         ndr.Args,
						Mem:          gmem,
						Observer:     tr,
						Engine:       rc.Engine,
					}
					res.gw = gw
					res.err = vm.RunGroup(cfg, &gw.Profile)
				}
				results <- res
			}
			dispatched++
			return nil
		})
		dispatchedCh <- dispatched
	}()

	// Ordered fan-in: consume results in dispatch-index order using a
	// reorder buffer. firstErr keeps the lowest-index error, which is
	// the one serial execution would have hit first.
	pending := make(map[int]groupResult)
	next, received := 0, 0
	dispatchedTotal, haveTotal := 0, false
	var firstErr error
	errIndex := -1

	fail := func(idx int, err error) {
		if firstErr == nil || idx < errIndex {
			firstErr, errIndex = err, idx
		}
		cancel()
	}

	for {
		if haveTotal && received == dispatchedTotal {
			break
		}
		select {
		case n := <-dispatchedCh:
			dispatchedTotal, haveTotal = n, true
		case res := <-results:
			received++
			<-sem
			if res.err != nil {
				if res.gw != nil {
					res.gw.Trace.Release()
				}
				// A Canceled error caused by our own internal cancel
				// (after an earlier failure) is fallout, not a finding
				// — it must not displace the real first error.
				if !(errors.Is(res.err, context.Canceled) && rc.Context().Err() == nil) {
					fail(res.index, res.err)
				}
				continue
			}
			if firstErr != nil {
				res.gw.Trace.Release()
				continue
			}
			pending[res.index] = res
			for {
				r, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				if rc.Race != nil {
					rc.Race.ObserveGroup(r.gw.Group, r.gw.Trace)
				}
				if err := consume(r.gw); err != nil {
					fail(r.index, err)
					break
				}
				next++
			}
		}
	}
	for _, r := range pending { // maligo:allow maporder releasing distinct traces commutes
		r.gw.Trace.Release()
	}
	if firstErr != nil {
		return firstErr
	}
	return rc.Context().Err()
}

// SerialGroups executes the NDRange's work-groups one at a time on the
// calling goroutine, checking rc's context between groups. run is
// invoked in dispatch order with the group's index and ID.
func SerialGroups(rc RunConfig, ndr *NDRange, run func(index int, group [3]int) error) error {
	ctx := rc.Ctx
	idx := 0
	return ForEachGroup(ndr, func(group [3]int) error {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		err := run(idx, group)
		idx++
		return err
	})
}
