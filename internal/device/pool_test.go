package device_test

import (
	"context"
	"errors"
	"testing"

	"maligo/internal/clc"
	"maligo/internal/clc/ir"
	"maligo/internal/device"
	"maligo/internal/vm"
)

// poolMem is a minimal GlobalMemory over one flat byte slice;
// concurrent work-groups touch disjoint ranges so plain stores are
// safe.
type poolMem struct {
	data []byte
}

func (m *poolMem) LoadBits(space int, off int64, size int) (uint64, error) {
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(m.data[off+int64(i)])
	}
	return v, nil
}

func (m *poolMem) StoreBits(space int, off int64, size int, bits uint64) error {
	for i := 0; i < size; i++ {
		m.data[off+int64(i)] = byte(bits >> (8 * uint(i)))
	}
	return nil
}

func (m *poolMem) AtomicRMW(space int, off int64, size int, fn func(uint64) uint64) (uint64, error) {
	old, err := m.LoadBits(space, off, size)
	if err != nil {
		return 0, err
	}
	return old, m.StoreBits(space, off, size, fn(old))
}

const idKernel = `
__kernel void ids(__global int* out) {
    size_t i = get_global_id(0);
    out[i] = (int)i;
}
`

func compileKernel(t *testing.T, src, name string) *ir.Kernel {
	t.Helper()
	prog, err := clc.Compile("pool_test.cl", src, "")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	k := prog.Kernel(name)
	if k == nil {
		t.Fatalf("kernel %s not found", name)
	}
	return k
}

func idNDRange(t *testing.T, n, local int) *device.NDRange {
	t.Helper()
	k := compileKernel(t, idKernel, "ids")
	return &device.NDRange{
		Kernel:  k,
		WorkDim: 1,
		Global:  [3]int{n, 1, 1},
		Local:   [3]int{local, 1, 1},
		Args:    []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}},
	}
}

// TestRunGroupsOrdering checks that consume sees every group exactly
// once, in dispatch order, regardless of the concurrent execution
// order, and that the functional result lands in memory.
func TestRunGroupsOrdering(t *testing.T) {
	const n, local = 1024, 16
	ndr := idNDRange(t, n, local)
	mem := &poolMem{data: make([]byte, n*4)}

	pool := device.NewPool(4)
	defer pool.Close()

	var order []int
	var workItems uint64
	err := device.RunGroups(device.RunConfig{Pool: pool}, ndr, mem, func(gw *device.GroupWork) error {
		order = append(order, gw.Index)
		workItems += gw.Profile.WorkItems
		if gw.Trace.Len() == 0 {
			t.Errorf("group %d: empty trace", gw.Index)
		}
		gw.Trace.Release()
		return nil
	})
	if err != nil {
		t.Fatalf("RunGroups: %v", err)
	}
	if len(order) != n/local {
		t.Fatalf("consumed %d groups, want %d", len(order), n/local)
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("consume order[%d] = %d, want %d", i, idx, i)
		}
	}
	if workItems != n {
		t.Fatalf("profile work-items = %d, want %d", workItems, n)
	}
	for i := 0; i < n; i++ {
		v, _ := mem.LoadBits(ir.SpaceGlobal, int64(i*4), 4)
		if int(int32(v)) != i {
			t.Fatalf("out[%d] = %d, want %d", i, int32(v), i)
		}
	}
}

// TestRunGroupsConsumeError checks that an error returned by consume
// aborts the run and is reported.
func TestRunGroupsConsumeError(t *testing.T) {
	ndr := idNDRange(t, 256, 16)
	mem := &poolMem{data: make([]byte, 256*4)}
	pool := device.NewPool(4)
	defer pool.Close()

	boom := errors.New("boom")
	calls := 0
	err := device.RunGroups(device.RunConfig{Pool: pool}, ndr, mem, func(gw *device.GroupWork) error {
		calls++
		gw.Trace.Release()
		if gw.Index == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls < 4 {
		t.Fatalf("consume ran %d times, want at least 4 (groups 0..3)", calls)
	}
}

// TestRunGroupsCancel checks that a cancelled context aborts the run
// with the context's error.
func TestRunGroupsCancel(t *testing.T) {
	ndr := idNDRange(t, 1024, 16)
	mem := &poolMem{data: make([]byte, 1024*4)}
	pool := device.NewPool(2)
	defer pool.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := device.RunGroups(device.RunConfig{Ctx: ctx, Pool: pool}, ndr, mem, func(gw *device.GroupWork) error {
		gw.Trace.Release()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSerialGroupsOrderAndCancel checks the serial fallback's dispatch
// order and its between-group cancellation point.
func TestSerialGroupsOrderAndCancel(t *testing.T) {
	ndr := idNDRange(t, 64, 16)
	var order []int
	err := device.SerialGroups(device.RunConfig{}, ndr, func(idx int, group [3]int) error {
		order = append(order, idx)
		if group[0] != idx {
			t.Errorf("group[0] = %d at index %d", group[0], idx)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("SerialGroups: %v", err)
	}
	if len(order) != 4 {
		t.Fatalf("ran %d groups, want 4", len(order))
	}

	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err = device.SerialGroups(device.RunConfig{Ctx: ctx}, ndr, func(idx int, group [3]int) error {
		ran++
		if ran == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 2 {
		t.Fatalf("ran %d groups after cancel, want 2", ran)
	}
}

// TestPoolCloseIdempotent checks Close can be called repeatedly.
func TestPoolCloseIdempotent(t *testing.T) {
	p := device.NewPool(3)
	if p.Workers() != 3 {
		t.Fatalf("Workers = %d, want 3", p.Workers())
	}
	p.Close()
	p.Close()
}
