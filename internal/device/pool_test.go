package device_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"maligo/internal/clc"
	"maligo/internal/clc/ir"
	"maligo/internal/device"
	"maligo/internal/vm"
)

// poolMem is a minimal GlobalMemory over one flat byte slice;
// concurrent work-groups touch disjoint ranges so plain stores are
// safe.
type poolMem struct {
	data []byte
}

func (m *poolMem) LoadBits(space int, off int64, size int) (uint64, error) {
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(m.data[off+int64(i)])
	}
	return v, nil
}

func (m *poolMem) StoreBits(space int, off int64, size int, bits uint64) error {
	for i := 0; i < size; i++ {
		m.data[off+int64(i)] = byte(bits >> (8 * uint(i)))
	}
	return nil
}

func (m *poolMem) AtomicRMW(space int, off int64, size int, fn func(uint64) uint64) (uint64, error) {
	old, err := m.LoadBits(space, off, size)
	if err != nil {
		return 0, err
	}
	return old, m.StoreBits(space, off, size, fn(old))
}

const idKernel = `
__kernel void ids(__global int* out) {
    size_t i = get_global_id(0);
    out[i] = (int)i;
}
`

func compileKernel(t *testing.T, src, name string) *ir.Kernel {
	t.Helper()
	prog, err := clc.Compile("pool_test.cl", src, "")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	k := prog.Kernel(name)
	if k == nil {
		t.Fatalf("kernel %s not found", name)
	}
	return k
}

func idNDRange(t *testing.T, n, local int) *device.NDRange {
	t.Helper()
	k := compileKernel(t, idKernel, "ids")
	return &device.NDRange{
		Kernel:  k,
		WorkDim: 1,
		Global:  [3]int{n, 1, 1},
		Local:   [3]int{local, 1, 1},
		Args:    []vm.ArgValue{{Bits: ir.EncodeAddr(ir.SpaceGlobal, 0)}},
	}
}

// TestRunGroupsOrdering checks that consume sees every group exactly
// once, in dispatch order, regardless of the concurrent execution
// order, and that the functional result lands in memory.
func TestRunGroupsOrdering(t *testing.T) {
	const n, local = 1024, 16
	ndr := idNDRange(t, n, local)
	mem := &poolMem{data: make([]byte, n*4)}

	pool := device.NewPool(4)
	defer pool.Close()

	var order []int
	var workItems uint64
	err := device.RunGroups(device.RunConfig{Pool: pool}, ndr, mem, func(gw *device.GroupWork) error {
		order = append(order, gw.Index)
		workItems += gw.Profile.WorkItems
		if gw.Trace.Len() == 0 {
			t.Errorf("group %d: empty trace", gw.Index)
		}
		gw.Trace.Release()
		return nil
	})
	if err != nil {
		t.Fatalf("RunGroups: %v", err)
	}
	if len(order) != n/local {
		t.Fatalf("consumed %d groups, want %d", len(order), n/local)
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("consume order[%d] = %d, want %d", i, idx, i)
		}
	}
	if workItems != n {
		t.Fatalf("profile work-items = %d, want %d", workItems, n)
	}
	for i := 0; i < n; i++ {
		v, _ := mem.LoadBits(ir.SpaceGlobal, int64(i*4), 4)
		if int(int32(v)) != i {
			t.Fatalf("out[%d] = %d, want %d", i, int32(v), i)
		}
	}
}

// TestRunGroupsConsumeError checks that an error returned by consume
// aborts the run and is reported.
func TestRunGroupsConsumeError(t *testing.T) {
	ndr := idNDRange(t, 256, 16)
	mem := &poolMem{data: make([]byte, 256*4)}
	pool := device.NewPool(4)
	defer pool.Close()

	boom := errors.New("boom")
	calls := 0
	err := device.RunGroups(device.RunConfig{Pool: pool}, ndr, mem, func(gw *device.GroupWork) error {
		calls++
		gw.Trace.Release()
		if gw.Index == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls < 4 {
		t.Fatalf("consume ran %d times, want at least 4 (groups 0..3)", calls)
	}
}

// TestRunGroupsCancel checks that a cancelled context aborts the run
// with the context's error.
func TestRunGroupsCancel(t *testing.T) {
	ndr := idNDRange(t, 1024, 16)
	mem := &poolMem{data: make([]byte, 1024*4)}
	pool := device.NewPool(2)
	defer pool.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := device.RunGroups(device.RunConfig{Ctx: ctx, Pool: pool}, ndr, mem, func(gw *device.GroupWork) error {
		gw.Trace.Release()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSerialGroupsOrderAndCancel checks the serial fallback's dispatch
// order and its between-group cancellation point.
func TestSerialGroupsOrderAndCancel(t *testing.T) {
	ndr := idNDRange(t, 64, 16)
	var order []int
	err := device.SerialGroups(device.RunConfig{}, ndr, func(idx int, group [3]int) error {
		order = append(order, idx)
		if group[0] != idx {
			t.Errorf("group[0] = %d at index %d", group[0], idx)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("SerialGroups: %v", err)
	}
	if len(order) != 4 {
		t.Fatalf("ran %d groups, want 4", len(order))
	}

	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err = device.SerialGroups(device.RunConfig{Ctx: ctx}, ndr, func(idx int, group [3]int) error {
		ran++
		if ran == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 2 {
		t.Fatalf("ran %d groups after cancel, want 2", ran)
	}
}

// slowObserver stalls on every group trace, widening the window in
// which cancellation catches a run mid-flight — the regression shape
// for the ordered fan-in stalling behind a slow consumer.
type slowObserver struct{ delay time.Duration }

func (o slowObserver) ObserveGroup(group [3]int, tr *vm.Trace) { time.Sleep(o.delay) }

// waitGoroutines polls until the goroutine count returns to the
// baseline (stdlib-only leak check; the runtime may lag a little
// after channel teardown).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
}

// TestRunGroupsSlowObserverCancelNoLeak cancels a run whose ordered
// fan-in is stalled behind a slow observer and checks the whole
// machinery — dispatcher, window semaphore, reorder buffer, pool
// workers — unwinds without leaking goroutines.
func TestRunGroupsSlowObserverCancelNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	ndr := idNDRange(t, 4096, 16)
	mem := &poolMem{data: make([]byte, 4096*4)}
	pool := device.NewPool(4)

	ctx, cancel := context.WithCancel(context.Background())
	consumed := 0
	err := device.RunGroups(device.RunConfig{
		Ctx:  ctx,
		Pool: pool,
		Race: slowObserver{delay: time.Millisecond},
	}, ndr, mem, func(gw *device.GroupWork) error {
		consumed++
		gw.Trace.Release()
		if consumed == 2 {
			cancel() // cancel mid-run, with groups still in flight
		}
		return nil
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if consumed >= 4096/16 {
		t.Fatal("cancellation did not stop the run early")
	}
	pool.Close()
	waitGoroutines(t, base)
}

// TestRunGroupsConsumeErrorNoLeak checks the error-abort path also
// unwinds cleanly when in-flight groups are still being dispatched.
func TestRunGroupsConsumeErrorNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	ndr := idNDRange(t, 4096, 16)
	mem := &poolMem{data: make([]byte, 4096*4)}
	pool := device.NewPool(4)

	boom := errors.New("boom")
	err := device.RunGroups(device.RunConfig{Pool: pool}, ndr, mem, func(gw *device.GroupWork) error {
		gw.Trace.Release()
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	pool.Close()
	waitGoroutines(t, base)
}

// TestPoolRunNested checks Pool.Run — the scheduler's command-body
// entry point — both alone and with a nested RunGroups fan-out
// sharing the remaining workers, the exact shape async NDRange
// commands produce.
func TestPoolRunNested(t *testing.T) {
	pool := device.NewPool(2)
	defer pool.Close()

	ran := false
	pool.Run(func() { ran = true })
	if !ran {
		t.Fatal("Run did not execute the function")
	}

	ndr := idNDRange(t, 256, 16)
	mem := &poolMem{data: make([]byte, 256*4)}
	var groups int
	pool.Run(func() {
		err := device.RunGroups(device.RunConfig{Pool: pool}, ndr, mem, func(gw *device.GroupWork) error {
			groups++
			gw.Trace.Release()
			return nil
		})
		if err != nil {
			t.Errorf("nested RunGroups: %v", err)
		}
	})
	if groups != 256/16 {
		t.Fatalf("nested run consumed %d groups, want %d", groups, 256/16)
	}
}

// TestPoolCloseIdempotent checks Close can be called repeatedly.
func TestPoolCloseIdempotent(t *testing.T) {
	p := device.NewPool(3)
	if p.Workers() != 3 {
		t.Fatalf("Workers = %d, want 3", p.Workers())
	}
	p.Close()
	p.Close()
}
