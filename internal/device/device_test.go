package device_test

import (
	"errors"
	"math"
	"testing"

	"maligo/internal/device"
	"maligo/internal/vm"
)

// stub is a minimal Device for validation tests.
type stub struct{ maxWG int }

func (s *stub) Name() string { return "stub" }
func (s *stub) Run(ndr *device.NDRange, mem vm.GlobalMemory) (*device.Report, error) {
	return &device.Report{Seconds: 1}, nil
}
func (s *stub) DefaultLocalSize(ndr *device.NDRange) [3]int { return [3]int{1, 1, 1} }
func (s *stub) MaxWorkGroupSize() int                       { return s.maxWG }

func TestValidateNDRange(t *testing.T) {
	d := &stub{maxWG: 256}
	ok := &device.NDRange{WorkDim: 1, Global: [3]int{128, 1, 1}, Local: [3]int{32, 1, 1}}
	device.NormalizeLocal(d, ok)
	if err := device.ValidateNDRange(d, ok); err != nil {
		t.Fatalf("valid range rejected: %v", err)
	}

	bad := []*device.NDRange{
		{WorkDim: 0, Global: [3]int{128, 1, 1}, Local: [3]int{32, 1, 1}},
		{WorkDim: 4, Global: [3]int{128, 1, 1}, Local: [3]int{32, 1, 1}},
		{WorkDim: 1, Global: [3]int{100, 1, 1}, Local: [3]int{32, 1, 1}},  // indivisible
		{WorkDim: 1, Global: [3]int{0, 1, 1}, Local: [3]int{32, 1, 1}},    // empty global
		{WorkDim: 2, Global: [3]int{32, 32, 1}, Local: [3]int{32, 32, 1}}, // 1024 > 256
	}
	for i, ndr := range bad {
		if err := device.ValidateNDRange(d, ndr); !errors.Is(err, device.ErrInvalidWorkGroupSize) {
			t.Errorf("case %d: err = %v, want ErrInvalidWorkGroupSize", i, err)
		}
	}
}

func TestNormalizeLocalAppliesDefault(t *testing.T) {
	d := &stub{maxWG: 256}
	ndr := &device.NDRange{WorkDim: 2, Global: [3]int{64, 8, 0}}
	device.NormalizeLocal(d, ndr)
	if ndr.Local != [3]int{1, 1, 1} {
		t.Errorf("Local = %v", ndr.Local)
	}
	if ndr.Global[2] != 1 {
		t.Errorf("unset global dims must become 1, got %v", ndr.Global)
	}
}

func TestForEachGroupOrder(t *testing.T) {
	ndr := &device.NDRange{WorkDim: 2, Global: [3]int{4, 2, 1}, Local: [3]int{2, 1, 1}}
	var got [][3]int
	err := device.ForEachGroup(ndr, func(g [3]int) error {
		got = append(got, g)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][3]int{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0}}
	if len(got) != len(want) {
		t.Fatalf("groups = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("group order = %v, want %v", got, want)
		}
	}
}

func TestTotalWorkItems(t *testing.T) {
	ndr := &device.NDRange{WorkDim: 3, Global: [3]int{4, 5, 6}}
	if got := ndr.TotalWorkItems(); got != 120 {
		t.Errorf("TotalWorkItems = %d", got)
	}
	ndr2 := &device.NDRange{WorkDim: 1, Global: [3]int{7, 99, 99}}
	if got := ndr2.TotalWorkItems(); got != 7 {
		t.Errorf("TotalWorkItems (1D) = %d", got)
	}
}

// TestTotalWorkItemsSaturates checks a product that exceeds the host
// int range saturates at math.MaxInt instead of wrapping negative
// (1<<40+1 squared wraps to 2^41+1 with plain multiplication).
func TestTotalWorkItemsSaturates(t *testing.T) {
	huge := 1<<40 + 1
	ndr := &device.NDRange{WorkDim: 2, Global: [3]int{huge, huge}}
	if got := ndr.TotalWorkItems(); got != math.MaxInt {
		t.Errorf("TotalWorkItems = %d, want math.MaxInt", got)
	}
	if got := ndr.TotalWorkItems(); got < 0 {
		t.Errorf("TotalWorkItems wrapped negative: %d", got)
	}
}

// TestValidateNDRangeOverflow checks ranges whose work-item total,
// group size or group count overflows int are rejected with
// ErrInvalidWorkGroupSize rather than wrapping.
func TestValidateNDRangeOverflow(t *testing.T) {
	d := &stub{maxWG: 1 << 62}
	huge := 1<<40 + 2
	bad := []*device.NDRange{
		// total work-items overflows
		{WorkDim: 2, Global: [3]int{huge, huge, 1}, Local: [3]int{2, 2, 1}},
		// work-group size overflows
		{WorkDim: 2, Global: [3]int{huge, huge, 1}, Local: [3]int{huge, huge, 1}},
		// work-group count overflows (local 1 keeps wgSize small)
		{WorkDim: 3, Global: [3]int{huge, huge, huge}, Local: [3]int{1, 1, 1}},
	}
	for i, ndr := range bad {
		if err := device.ValidateNDRange(d, ndr); !errors.Is(err, device.ErrInvalidWorkGroupSize) {
			t.Errorf("case %d: err = %v, want ErrInvalidWorkGroupSize", i, err)
		}
	}
}
