// Package device defines the abstraction the OpenCL runtime uses to
// execute NDRanges: a Device combines functional execution (via the
// VM) with a timing and activity model, producing a Report the power
// model converts into energy.
package device

import (
	"errors"
	"fmt"
	"math"

	"maligo/internal/clc/ir"
	"maligo/internal/vm"
)

// ErrOutOfResources mirrors CL_OUT_OF_RESOURCES: the kernel cannot be
// mapped onto the device (typically register-file exhaustion).
var ErrOutOfResources = errors.New("CL_OUT_OF_RESOURCES")

// ErrInvalidWorkGroupSize mirrors CL_INVALID_WORK_GROUP_SIZE.
var ErrInvalidWorkGroupSize = errors.New("CL_INVALID_WORK_GROUP_SIZE")

// NDRange is one kernel enqueue.
type NDRange struct {
	Kernel  *ir.Kernel
	WorkDim int
	Global  [3]int
	Local   [3]int // zeros: driver picks (clEnqueueNDRangeKernel with NULL local)
	Offset  [3]int
	Args    []vm.ArgValue
}

// TotalWorkItems returns the NDRange size. Products that exceed the
// host int range saturate at math.MaxInt instead of wrapping negative;
// ValidateNDRange rejects such ranges before any device runs them.
func (n *NDRange) TotalWorkItems() int {
	total := 1
	for d := 0; d < n.WorkDim; d++ {
		g := n.Global[d]
		if g > 0 && total > math.MaxInt/g {
			return math.MaxInt
		}
		total *= g
	}
	return total
}

// Report is the timing/activity outcome of one enqueue.
type Report struct {
	// Seconds is the wall-clock duration of the enqueue on the device,
	// including dispatch overheads.
	Seconds float64
	// DispatchSeconds is the portion of Seconds spent before the first
	// instruction executes (driver enqueue overhead, OpenMP fork).
	// Event profiling uses it as the SUBMIT→START window.
	DispatchSeconds float64
	// BusyCoreSeconds is Σ over cores of seconds spent executing.
	BusyCoreSeconds float64
	// ActiveCores is the number of cores that executed any work.
	ActiveCores int
	// Utilization is the average busy-core pipeline utilization in
	// [0,1]; it drives the dynamic power term.
	Utilization float64
	// ArithUtil and LSUtil are the per-pipe busy fractions behind
	// Utilization, where the device model distinguishes pipes (the
	// Mali arithmetic and load/store pipelines); zero elsewhere.
	ArithUtil float64
	LSUtil    float64
	// DRAMBytes is traffic that reached DRAM (post-cache).
	DRAMBytes uint64
	// Profile is the functional execution profile.
	Profile vm.Profile
}

// Device executes NDRanges against a memory target.
type Device interface {
	// Name identifies the device (e.g. "Mali-T604").
	Name() string
	// Run executes the NDRange functionally and returns its report.
	Run(ndr *NDRange, mem vm.GlobalMemory) (*Report, error)
	// DefaultLocalSize is the driver's work-group size heuristic used
	// when the host passes a nil local size.
	DefaultLocalSize(ndr *NDRange) [3]int
	// MaxWorkGroupSize is the device limit on work-group size.
	MaxWorkGroupSize() int
}

// ValidateNDRange applies the OpenCL launch rules common to devices.
// Besides the per-dimension rules, it rejects ranges whose work-item
// total, work-group size or work-group count overflows the host int —
// huge globals must fail with ErrInvalidWorkGroupSize, not wrap to a
// negative count and misbehave downstream.
func ValidateNDRange(d Device, ndr *NDRange) error {
	if ndr.WorkDim < 1 || ndr.WorkDim > 3 {
		return fmt.Errorf("work_dim %d: %w", ndr.WorkDim, ErrInvalidWorkGroupSize)
	}
	wgSize, totalWI, totalGroups := 1, 1, 1
	for dim := 0; dim < ndr.WorkDim; dim++ {
		g, l := ndr.Global[dim], ndr.Local[dim]
		if g <= 0 {
			return fmt.Errorf("global size %d in dim %d: %w", g, dim, ErrInvalidWorkGroupSize)
		}
		if l <= 0 {
			return fmt.Errorf("local size %d in dim %d: %w", l, dim, ErrInvalidWorkGroupSize)
		}
		if g%l != 0 {
			return fmt.Errorf("global size %d not divisible by local size %d in dim %d: %w",
				g, l, dim, ErrInvalidWorkGroupSize)
		}
		if wgSize > math.MaxInt/l {
			return fmt.Errorf("work-group size overflows in dim %d: %w", dim, ErrInvalidWorkGroupSize)
		}
		wgSize *= l
		if totalWI > math.MaxInt/g {
			return fmt.Errorf("total work-items overflow in dim %d (global %v): %w",
				dim, ndr.Global, ErrInvalidWorkGroupSize)
		}
		totalWI *= g
		ng := g / l
		if ng > 0 && totalGroups > math.MaxInt/ng {
			return fmt.Errorf("work-group count overflows in dim %d: %w", dim, ErrInvalidWorkGroupSize)
		}
		totalGroups *= ng
	}
	if wgSize > d.MaxWorkGroupSize() {
		return fmt.Errorf("work-group size %d exceeds device maximum %d: %w",
			wgSize, d.MaxWorkGroupSize(), ErrInvalidWorkGroupSize)
	}
	return nil
}

// ForEachGroup enumerates work-group IDs of the NDRange in row-major
// order and invokes fn for each.
func ForEachGroup(ndr *NDRange, fn func(group [3]int) error) error {
	ng := [3]int{1, 1, 1}
	for d := 0; d < ndr.WorkDim; d++ {
		ng[d] = ndr.Global[d] / ndr.Local[d]
	}
	for gz := 0; gz < ng[2]; gz++ {
		for gy := 0; gy < ng[1]; gy++ {
			for gx := 0; gx < ng[0]; gx++ {
				if err := fn([3]int{gx, gy, gz}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// NormalizeLocal fills unset local dimensions with 1 and applies the
// device default when the entire local size is unset.
func NormalizeLocal(d Device, ndr *NDRange) {
	allZero := true
	for dim := 0; dim < ndr.WorkDim; dim++ {
		if ndr.Local[dim] != 0 {
			allZero = false
		}
	}
	if allZero {
		ndr.Local = d.DefaultLocalSize(ndr)
	}
	for dim := 0; dim < 3; dim++ {
		if ndr.Local[dim] == 0 {
			ndr.Local[dim] = 1
		}
		if ndr.Global[dim] == 0 {
			ndr.Global[dim] = 1
		}
	}
}
