package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2, 2}); got != 0 {
		t.Errorf("StdDev of constants = %v", got)
	}
	got := StdDev([]float64{1, 3})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("StdDev([1,3]) = %v, want 1", got)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev of singleton = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean([1,4]) = %v, want 2", got)
	}
	// Non-positive values are skipped.
	got = GeoMean([]float64{0, -3, 4, 4})
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean with non-positives = %v, want 4", got)
	}
	if got := GeoMean([]float64{0}); got != 0 {
		t.Errorf("GeoMean of zeros = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max should be 0")
	}
}

// Property: Min <= Mean <= Max and StdDev >= 0.
func TestStatsOrderingProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		m := Mean(xs)
		return Min(xs) <= m+1e-9 && m <= Max(xs)+1e-9 && StdDev(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: GeoMean <= Mean for positive inputs (AM-GM inequality).
func TestAMGMProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var xs []float64
		for _, v := range raw {
			xs = append(xs, float64(v)+1)
		}
		if len(xs) == 0 {
			return true
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
