// Package stats provides the small statistical helpers the harness
// uses to aggregate benchmark results.
package stats

import "math"

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// GeoMean returns the geometric mean of xs; non-positive values are
// skipped.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Min returns the smallest element (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
