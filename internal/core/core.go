// Package core is the façade of the maligo library: it assembles the
// simulated Samsung Exynos 5250 platform (Cortex-A15 CPU devices and
// the Mali-T604 GPU device sharing unified memory), exposes the
// OpenCL-style runtime on top of it, and wires in the power model —
// everything a user needs to write and measure OpenCL workloads the
// way the paper does.
//
// Typical use:
//
//	p := core.NewPlatform()
//	prog := p.Context.CreateProgramWithSource(src)
//	if err := prog.Build("-DREAL=float"); err != nil { ... }
//	q := p.Context.CreateCommandQueue(p.GPU)
//	... create buffers, set args, enqueue ...
//	m := p.Measure(q, core.GPURun)
package core

import (
	"maligo/internal/cl"
	"maligo/internal/cpu"
	"maligo/internal/device"
	"maligo/internal/mali"
	"maligo/internal/platform"
	"maligo/internal/power"
	"maligo/internal/vm"
)

// Platform is one simulated board: two CPU device views (one core and
// the full cluster), the GPU, and a context over their shared unified
// memory. The default board is the Arndale's Exynos 5250; Options.SoC
// selects any registered fleet member.
type Platform struct {
	SoC     *platform.SoC
	CPU1    *cpu.CPU  // one CPU core (the paper's Serial target)
	CPU2    *cpu.CPU  // the full CPU cluster (the OpenMP target)
	GPU     *mali.GPU // the SoC's GPU
	Context *cl.Context
	Meter   *power.Meter
}

// Options configures platform assembly. Zero values select the
// defaults: DefaultArenaBytes, runtime.NumCPU() engine workers, meter
// seed 1 at the WT230's 10 Hz.
type Options struct {
	// ArenaBytes is the simulated unified-memory capacity.
	ArenaBytes int64
	// Workers is the host worker count of the parallel NDRange engine;
	// 1 forces the serial engine.
	Workers int
	// MeterSeed seeds the power meter's deterministic noise stream.
	MeterSeed uint64
	// MeterHz is the power meter's sampling rate.
	MeterHz float64
	// Engine selects the VM execution engine (interpreter or the
	// closure-compiled fast path); zero honours MALIGO_ENGINE and
	// otherwise runs the fast path.
	Engine vm.Engine
	// AsyncQueues routes every queue created from the platform context
	// through the DAG command scheduler (event wait-lists, out-of-order
	// queues). Simulated observables are bit-identical either way.
	AsyncQueues bool
	// SoC selects the board model the devices and the power meter are
	// built from; nil selects the default Exynos 5250. Use
	// platform.Lookup (maligo.LookupDevice) to resolve a fleet name.
	SoC *platform.SoC
}

// NewPlatform assembles a fresh board with cold caches and default
// options.
func NewPlatform() *Platform { return NewPlatformWith(Options{}) }

// NewPlatformWith assembles a fresh board from options.
func NewPlatformWith(o Options) *Platform {
	soc := o.SoC
	if soc == nil {
		soc = platform.Default()
	}
	cpu1 := cpu.NewOn(soc, 1)
	cpu2 := cpu.NewOn(soc, soc.CPU.Cores)
	gpu := mali.NewOn(soc)
	seed := o.MeterSeed
	if seed == 0 {
		seed = 1
	}
	return &Platform{
		SoC:  soc,
		CPU1: cpu1,
		CPU2: cpu2,
		GPU:  gpu,
		Context: cl.NewContextWith(
			cl.WithDevices(cpu1, cpu2, gpu),
			cl.WithArenaBytes(o.ArenaBytes),
			cl.WithWorkers(o.Workers),
			cl.WithEngine(o.Engine),
			cl.WithAsyncQueues(o.AsyncQueues),
		),
		Meter: power.NewMeterFor(soc, seed, o.MeterHz),
	}
}

// Close releases platform resources (the engine worker pool).
func (p *Platform) Close() { p.Context.Close() }

// Devices lists the platform's devices like clGetDeviceIDs would.
func (p *Platform) Devices() []device.Device {
	return []device.Device{p.CPU1, p.CPU2, p.GPU}
}

// RunKind tells Measure which units were active during the region.
type RunKind int

// Run kinds for Measure.
const (
	CPURun RunKind = iota // region executed on A15 cores
	GPURun                // region executed on the Mali GPU (host spins)
)

// Measure folds the events recorded on q since the last ResetEvents
// into a board-level power/energy measurement using the simulated
// Yokogawa WT230 protocol (20 repetitions, 10 Hz sampling, 0.1%
// accuracy). It returns the measurement and the region's activity.
func (p *Platform) Measure(q *cl.CommandQueue, kind RunKind) (power.Measurement, power.Activity) {
	var act power.Activity
	for _, ev := range q.Events() {
		act.Seconds += ev.Seconds
		if ev.Report == nil {
			act.CPUBusyCoreSeconds += ev.Seconds
			if act.CPUUtil < 0.4 {
				act.CPUUtil = 0.4
			}
			continue
		}
		rep := ev.Report
		act.DRAMBytes += rep.DRAMBytes
		if kind == GPURun {
			act.GPUBusyCoreSeconds += rep.BusyCoreSeconds
			act.GPUUtil = rep.Utilization
			act.HostSpinSeconds += ev.Seconds
		} else {
			act.CPUBusyCoreSeconds += rep.BusyCoreSeconds
			act.CPUUtil = rep.Utilization
		}
	}
	return p.Meter.Measure(act), act
}
