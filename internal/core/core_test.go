package core_test

import (
	"encoding/binary"
	"math"
	"testing"

	"maligo/internal/cl"
	"maligo/internal/core"
)

func TestPlatformAssembly(t *testing.T) {
	p := core.NewPlatform()
	devs := p.Devices()
	if len(devs) != 3 {
		t.Fatalf("devices = %d", len(devs))
	}
	names := map[string]bool{}
	for _, d := range devs {
		names[d.Name()] = true
	}
	for _, want := range []string{"Cortex-A15 (1 core)", "Cortex-A15 (2 cores)", "Mali-T604"} {
		if !names[want] {
			t.Errorf("missing device %q", want)
		}
	}
}

func TestEndToEndMeasure(t *testing.T) {
	p := core.NewPlatform()
	prog := p.Context.CreateProgramWithSource(`
__kernel void twice(__global float* x, const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        x[i] = x[i] * 2.0f;
    }
}`)
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("twice")
	if err != nil {
		t.Fatal(err)
	}
	const n = 4096
	buf, err := p.Context.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, n*4, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := buf.Bytes(0, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(1))
	}
	if err := k.SetArgBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgInt(1, n); err != nil {
		t.Fatal(err)
	}

	// Same kernel on the GPU and on one CPU core: both must compute
	// the same result; the measurements must be internally consistent.
	for _, tc := range []struct {
		dev  string
		kind core.RunKind
	}{{"gpu", core.GPURun}, {"cpu", core.CPURun}} {
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(1))
		}
		var q *cl.CommandQueue
		if tc.kind == core.GPURun {
			q = p.Context.CreateCommandQueue(p.GPU)
		} else {
			q = p.Context.CreateCommandQueue(p.CPU1)
		}
		if _, err := q.EnqueueNDRangeKernel(k, 1, []int{n}, []int{64}); err != nil {
			t.Fatalf("%s: %v", tc.dev, err)
		}
		m, act := p.Measure(q, tc.kind)
		if m.MeanPowerW <= 2 || m.EnergyJ <= 0 {
			t.Errorf("%s: measurement %+v implausible", tc.dev, m)
		}
		if act.Seconds <= 0 {
			t.Errorf("%s: empty activity", tc.dev)
		}
		if tc.kind == core.GPURun && act.GPUBusyCoreSeconds <= 0 {
			t.Errorf("gpu run with no GPU activity")
		}
		if tc.kind == core.CPURun && act.CPUBusyCoreSeconds <= 0 {
			t.Errorf("cpu run with no CPU activity")
		}
		for i := 0; i < n; i++ {
			got := math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
			if got != 2 {
				t.Fatalf("%s: x[%d] = %v", tc.dev, i, got)
			}
		}
	}
}
