package cl

// Asynchronous command queues: the Enqueue*Async variants accept
// OpenCL-style event wait-lists and return immediately with a pending
// Event; the context's DAG scheduler (internal/sched) dispatches each
// command when its dependencies complete. Timestamps stay a pure
// function of the dependency graph and the timing model, so an async
// run is bit-identical to the synchronous queue for in-order chains
// and deterministic (never host-timing-dependent) for out-of-order
// overlap. See the sched package doc for the exact stamp formulas.

import (
	"context"
	"errors"
	"fmt"

	"maligo/internal/sched"
	"maligo/internal/vm"
)

// CreateUserEvent mirrors clCreateUserEvent: a host-controlled event
// usable in wait-lists. Commands waiting on it stay queued until the
// host calls SetComplete (or SetError, which cascades the failure).
// User events complete at simulated time zero, keeping downstream
// timestamps independent of host timing.
func (c *Context) CreateUserEvent(name string) (*Event, error) {
	sch := c.scheduler()
	if sch == nil {
		return nil, ErrContextClosed
	}
	se := sch.NewUserEvent(name)
	return &Event{Kind: "user", Name: se.Label(), se: se}, nil
}

// WaitForEvents mirrors clWaitForEvents: it blocks until every event
// completes and returns the first execution error in list order.
func WaitForEvents(events ...*Event) error {
	var first error
	for _, ev := range events {
		if ev == nil {
			continue
		}
		if err := ev.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// EnqueueNDRangeKernelAsync launches the kernel after every wait-list
// event completes, returning a pending event immediately. Argument
// errors are reported synchronously; execution errors (including
// CL_OUT_OF_RESOURCES from bad local sizes) surface on the event.
// Kernel arguments are snapshotted at enqueue time like clEnqueue
// does, so the host may rebind them for the next enqueue right away.
func (q *CommandQueue) EnqueueNDRangeKernelAsync(k *Kernel, workDim int, global, local []int, waitList []*Event) (*Event, error) {
	return q.ndrangeAsync(context.Background(), k, workDim, global, local, waitList)
}

func (q *CommandQueue) ndrangeAsync(ctx context.Context, k *Kernel, workDim int, global, local []int, waitList []*Event) (*Event, error) {
	ndr, err := prepareNDRange(k, workDim, global, local)
	if err != nil {
		return nil, err
	}
	// Snapshot the bound arguments: the host may SetArg for the next
	// enqueue while this command is still pending.
	ndr.Args = append([]vm.ArgValue(nil), ndr.Args...)
	ev := &Event{Kind: "ndrange", Name: k.k.Name}
	raceCheck, profileLines, lineProf := q.raceCheck, q.profileLines, q.lineProf
	return q.enqueueAsync(ev, waitList, func(ctx context.Context) (float64, error) {
		if err := q.runNDRangeBody(ctx, k, ndr, ev, raceCheck, profileLines, lineProf); err != nil {
			return 0, err
		}
		return ev.Report.DispatchSeconds, nil
	}, withBodyCtx(ctx))
}

// EnqueueWriteBufferAsync copies host data into the buffer once the
// wait-list completes. The data slice is captured, not copied — the
// host must not mutate it before the event completes.
func (q *CommandQueue) EnqueueWriteBufferAsync(b *Buffer, off int64, data []byte, waitList []*Event) (*Event, error) {
	dst, err := b.Bytes(off, int64(len(data)))
	if err != nil {
		return nil, err
	}
	ev := &Event{Kind: "write", Seconds: float64(len(data)) / hostCopyBandwidth, Bytes: int64(len(data))}
	return q.enqueueAsync(ev, waitList, func(context.Context) (float64, error) {
		copy(dst, data)
		q.ctx.metrics.Counter("cl.copy_bytes").Add(uint64(len(data)))
		q.ctx.metrics.Histogram("cl.copy_seconds", nil).Observe(ev.Seconds)
		return 0, nil
	})
}

// EnqueueReadBufferAsync copies buffer contents into data once the
// wait-list completes.
func (q *CommandQueue) EnqueueReadBufferAsync(b *Buffer, off int64, data []byte, waitList []*Event) (*Event, error) {
	src, err := b.Bytes(off, int64(len(data)))
	if err != nil {
		return nil, err
	}
	ev := &Event{Kind: "read", Seconds: float64(len(data)) / hostCopyBandwidth, Bytes: int64(len(data))}
	return q.enqueueAsync(ev, waitList, func(context.Context) (float64, error) {
		copy(data, src)
		q.ctx.metrics.Counter("cl.copy_bytes").Add(uint64(len(data)))
		q.ctx.metrics.Histogram("cl.copy_seconds", nil).Observe(ev.Seconds)
		return 0, nil
	})
}

// EnqueueMapBufferAsync returns the zero-copy view immediately (the
// arena is unified memory) plus an event that completes when the
// wait-list does — read the view only after the event completes.
func (q *CommandQueue) EnqueueMapBufferAsync(b *Buffer, off, n int64, waitList []*Event) ([]byte, *Event, error) {
	view, err := b.Bytes(off, n)
	if err != nil {
		return nil, nil, err
	}
	ev, err := q.enqueueAsync(&Event{Kind: "map", Seconds: 4e-6}, waitList, nil)
	if err != nil {
		return nil, nil, err
	}
	return view, ev, nil
}

// EnqueueMarkerWithWaitList mirrors clEnqueueMarkerWithWaitList: a
// zero-duration command that completes when the wait-list does — or,
// with an empty wait-list, when everything previously enqueued on this
// queue has completed. It does not block later commands.
func (q *CommandQueue) EnqueueMarkerWithWaitList(waitList []*Event) (*Event, error) {
	return q.enqueueAsync(&Event{Kind: "marker"}, waitList, nil, withImplicitAll())
}

// EnqueueBarrierWithWaitList mirrors clEnqueueBarrierWithWaitList: it
// completes when the wait-list (or, empty, everything previously
// enqueued on this queue) completes, and every command enqueued after
// it waits for it. On an in-order queue the barrier is redundant but
// still recorded.
func (q *CommandQueue) EnqueueBarrierWithWaitList(waitList []*Event) (*Event, error) {
	return q.enqueueAsync(&Event{Kind: "barrier"}, waitList, nil, withImplicitAll(), withBarrier())
}

// enqOpt tweaks one enqueueAsync call.
type enqOpt func(*enqCfg)

type enqCfg struct {
	ctx         context.Context
	implicitAll bool // empty wait-list means "all outstanding" (markers, barriers)
	barrier     bool // gate every later command on this one
}

func withBodyCtx(ctx context.Context) enqOpt { return func(c *enqCfg) { c.ctx = ctx } }
func withImplicitAll() enqOpt                { return func(c *enqCfg) { c.implicitAll = true } }
func withBarrier() enqOpt                    { return func(c *enqCfg) { c.barrier = true } }

// enqueueAsync is the common scheduled-enqueue path: it wires the
// command's dependencies (wait-list, in-order predecessor, barrier),
// submits it to the context scheduler, and registers the completion
// hook that stamps and records the event. body fills ev and returns
// the dispatch window; nil means a fixed-duration command (ev.Seconds
// is already set). On a closed context it degrades to the synchronous
// serial path, mirroring the pool's documented fallback.
func (q *CommandQueue) enqueueAsync(ev *Event, waitList []*Event, body func(context.Context) (float64, error), opts ...enqOpt) (*Event, error) {
	cfg := enqCfg{ctx: context.Background()}
	for _, o := range opts {
		o(&cfg)
	}
	if ev.Name == "" {
		ev.Name = ev.Kind
	}
	for _, w := range waitList {
		if w == nil {
			return nil, fmt.Errorf("nil event in wait list: %w", ErrInvalidArgValue)
		}
	}
	sch := q.ctx.scheduler()
	if sch == nil {
		return q.runInline(cfg.ctx, ev, body)
	}

	run := func() (sched.Outcome, error) {
		var dispatch float64
		if body != nil {
			// The body context is cancelled by Context.Close with cause
			// ErrContextClosed; the device layer returns bare
			// context.Canceled when aborted, so surface the cause.
			bctx, stop := q.ctx.bodyCtx(cfg.ctx)
			d, err := body(bctx)
			stop()
			if err != nil {
				if cause := context.Cause(bctx); errors.Is(err, context.Canceled) && cause != nil && !errors.Is(err, cause) {
					err = fmt.Errorf("async command %q aborted: %w", ev.Name, cause)
				}
				return sched.Outcome{}, err
			}
			dispatch = d
		}
		return sched.Outcome{Seconds: ev.Seconds, Dispatch: dispatch}, nil
	}

	q.enqMu.Lock()
	defer q.enqMu.Unlock()

	c := sch.NewCommand(ev.Name, run).Lane(q.id)
	seen := make(map[*sched.Event]bool)
	addDep := func(se *sched.Event) {
		if se != nil && !seen[se] {
			seen[se] = true
			c.After(se)
		}
	}
	for _, w := range waitList {
		// Events from synchronous enqueues have no scheduler state and
		// are complete by construction — nothing to wait for.
		if w.se != nil && seen[w.se] {
			return nil, fmt.Errorf("event %q listed twice in wait list: %w", w.Name, sched.ErrDoubleWait)
		}
		addDep(w.se)
	}
	if cfg.implicitAll && len(waitList) == 0 {
		for _, se := range q.outstanding {
			addDep(se)
		}
	}
	if q.OutOfOrder() {
		addDep(q.barrier)
	} else if q.prev != nil {
		c.QueuedAfter(q.prev)
	}
	q.mu.Lock()
	gen := q.gen
	if !q.OutOfOrder() {
		// A scheduled command may follow legacy synchronous history on
		// this queue (async enqueues on a default queue); the chain
		// resumes from the synchronous clock.
		c.MinQueued(q.clock)
	}
	q.mu.Unlock()
	ev.se = c.Event()
	c.OnComplete(q.recordAsync(ev, gen))

	if err := sch.Submit(c); err != nil {
		if errors.Is(err, sched.ErrClosed) {
			ev.se = nil
			return q.runInline(cfg.ctx, ev, body)
		}
		ev.se = nil
		return nil, err
	}
	if !q.OutOfOrder() {
		q.prev = c.Event()
	}
	if cfg.barrier {
		q.barrier = c.Event()
	}
	q.outstanding = append(q.outstanding, c.Event())
	return ev, nil
}

// recordAsync returns the completion hook of one scheduled command: it
// copies the DAG-derived stamps into the event and appends it to the
// queue history. Failed commands are not recorded — exactly like the
// synchronous path, which returns an error instead of an event — and
// completions from before a ResetEvents (stale gen) are dropped.
func (q *CommandQueue) recordAsync(ev *Event, gen uint64) func(*sched.Event) {
	return func(se *sched.Event) {
		if se.Failed() {
			return
		}
		queued, submitted, started, ended := se.Stamps()
		q.mu.Lock()
		if gen != q.gen {
			q.mu.Unlock()
			return
		}
		ev.Queued = queued
		ev.Submitted = submitted
		ev.Started = started
		ev.Ended = ended
		ev.Seq = len(q.events)
		q.events = append(q.events, ev)
		if ended > q.clock {
			q.clock = ended
		}
		q.mu.Unlock()
		q.ctx.metrics.Counter("cl.enqueues." + ev.Kind).Inc()
	}
}

// runInline executes a command body synchronously and records it with
// the legacy clock — the deterministic serial fallback for enqueues
// that race context Close.
func (q *CommandQueue) runInline(ctx context.Context, ev *Event, body func(context.Context) (float64, error)) (*Event, error) {
	var dispatch float64
	if body != nil {
		var err error
		if dispatch, err = body(ctx); err != nil {
			return nil, err
		}
	}
	return q.record(ev, dispatch), nil
}

// syncViaAsync adapts an async enqueue to the synchronous contract:
// enqueue, wait, and on failure excise the command from the in-order
// chain so the next enqueue links to the last successful command —
// the behaviour the synchronous queue has always had (a failed
// enqueue leaves no trace in history or timing).
func (q *CommandQueue) syncViaAsync(enqueue func() (*Event, error)) (*Event, error) {
	q.enqMu.Lock()
	prevBefore := q.prev
	q.enqMu.Unlock()
	ev, err := enqueue()
	if err != nil {
		return nil, err
	}
	if werr := ev.Wait(); werr != nil {
		q.enqMu.Lock()
		if q.prev == ev.se {
			q.prev = prevBefore
		}
		for i, se := range q.outstanding {
			if se == ev.se {
				q.outstanding = append(q.outstanding[:i], q.outstanding[i+1:]...)
				break
			}
		}
		q.enqMu.Unlock()
		return nil, werr
	}
	return ev, nil
}
