package cl_test

import (
	"errors"
	"math"
	"sync"
	"testing"

	"maligo/internal/cl"
	"maligo/internal/device"
	"maligo/internal/mali"
)

// TestCreateBufferConflictingFlags checks the mutually exclusive
// cl_mem_flags combinations are rejected with ErrInvalidArgValue
// instead of silently accepted.
func TestCreateBufferConflictingFlags(t *testing.T) {
	ctx, _ := newCtx(t)
	bad := []cl.MemFlags{
		cl.MemReadOnly | cl.MemWriteOnly,
		cl.MemReadWrite | cl.MemReadOnly,
		cl.MemReadWrite | cl.MemWriteOnly,
		cl.MemUseHostPtr | cl.MemAllocHostPtr,
		cl.MemUseHostPtr | cl.MemCopyHostPtr,
	}
	for _, flags := range bad {
		if _, err := ctx.CreateBuffer(flags, 64, nil); !errors.Is(err, cl.ErrInvalidArgValue) {
			t.Errorf("CreateBuffer(%#x) = %v, want ErrInvalidArgValue", uint32(flags), err)
		}
	}
	good := []cl.MemFlags{
		cl.MemReadWrite,
		cl.MemReadOnly | cl.MemCopyHostPtr,
		cl.MemWriteOnly | cl.MemAllocHostPtr,
		cl.MemUseHostPtr,
		cl.MemReadWrite | cl.MemAllocHostPtr | cl.MemCopyHostPtr,
	}
	for _, flags := range good {
		if _, err := ctx.CreateBuffer(flags, 64, nil); err != nil {
			t.Errorf("CreateBuffer(%#x) = %v, want success", uint32(flags), err)
		}
	}
	if _, err := ctx.CreateBuffer(cl.MemReadWrite, -8, nil); !errors.Is(err, cl.ErrInvalidBufferSize) {
		t.Errorf("negative size = %v, want ErrInvalidBufferSize", err)
	}
}

// TestBufferBytesOverflowSafe checks the [off, off+n) bounds check
// survives values that wrap int64: a negative length or a huge offset
// must error, never panic or alias a neighbouring allocation.
func TestBufferBytesOverflowSafe(t *testing.T) {
	ctx, _ := newCtx(t)
	b, err := ctx.CreateBuffer(cl.MemReadWrite, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ off, n int64 }{
		{-1, 16},
		{0, -1},
		{0, 257},
		{math.MaxInt64, 16}, // off+n wraps negative
		{16, math.MaxInt64}, // off+n wraps negative
		{math.MaxInt64, math.MaxInt64},
		{257, 0},
	}
	for _, tc := range cases {
		if _, err := b.Bytes(tc.off, tc.n); !errors.Is(err, cl.ErrMapFailure) {
			t.Errorf("Bytes(%d, %d) = %v, want ErrMapFailure", tc.off, tc.n, err)
		}
	}
	if _, err := b.Bytes(256, 0); err != nil {
		t.Errorf("Bytes(256, 0) = %v, want success (empty tail view)", err)
	}
}

// TestEnqueueCopyBounds checks the read/write/map enqueue paths
// propagate the bounds error instead of corrupting the arena.
func TestEnqueueCopyBounds(t *testing.T) {
	ctx, gpu := newCtx(t)
	b, err := ctx.CreateBuffer(cl.MemReadWrite, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := ctx.CreateCommandQueue(gpu)
	data := make([]byte, 32)
	if _, err := q.EnqueueWriteBuffer(b, -1, data); err == nil {
		t.Error("write at negative offset must fail")
	}
	if _, err := q.EnqueueWriteBuffer(b, 40, data); err == nil {
		t.Error("write past the end must fail")
	}
	if _, err := q.EnqueueReadBuffer(b, math.MaxInt64, data); err == nil {
		t.Error("read at wrapping offset must fail")
	}
	if _, _, err := q.EnqueueMapBuffer(b, 0, -1); err == nil {
		t.Error("map with negative length must fail")
	}
	if _, _, err := q.EnqueueMapBuffer(b, 32, math.MaxInt64); err == nil {
		t.Error("map with wrapping length must fail")
	}
	if len(q.Events()) != 0 {
		t.Errorf("failed enqueues must not record events, got %d", len(q.Events()))
	}
}

// TestNDRangeOverflowRejected checks a global size whose work-item
// total overflows the host int fails with ErrInvalidWorkGroupSize
// instead of wrapping negative and misbehaving downstream.
func TestNDRangeOverflowRejected(t *testing.T) {
	ctx, gpu := newCtx(t)
	prog := buildProgram(t, ctx)
	k, _ := prog.CreateKernel("scale")
	buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 1024, nil)
	k.SetArgBuffer(0, buf)
	k.SetArgFloat(1, 2.0)
	k.SetArgInt(2, 4)
	q := ctx.CreateCommandQueue(gpu)
	huge := 1<<40 + 2
	_, err := q.EnqueueNDRangeKernel(k, 2, []int{huge, huge}, []int{2, 2})
	if !errors.Is(err, device.ErrInvalidWorkGroupSize) {
		t.Errorf("overflowing NDRange = %v, want ErrInvalidWorkGroupSize", err)
	}
}

// TestCloseRacesInFlightEnqueues drives Close concurrently with pool
// enqueues from many goroutines. Close must wait for in-flight
// enqueues instead of closing the pool under them, and later enqueues
// must fall back to the serial engine. Run under -race.
//
// Each goroutine gets its own queue AND its own device instance: the
// stateful device timing models (cache hierarchies) are per-device
// serial state, so concurrent enqueues are only defined across
// devices — the shared state under test is the context's worker pool.
func TestCloseRacesInFlightEnqueues(t *testing.T) {
	const goroutines = 8
	gpus := make([]*mali.GPU, goroutines)
	devs := make([]device.Device, goroutines)
	for g := range gpus {
		gpus[g] = mali.New()
		devs[g] = gpus[g]
	}
	ctx := cl.NewContextWith(cl.WithDevices(devs...), cl.WithWorkers(4))
	prog := ctx.CreateProgramWithSource(testKernel)
	if err := prog.Build(""); err != nil {
		t.Fatalf("Build: %v", err)
	}

	// Context objects (arena, kernels) are not thread-safe, so all
	// setup happens here; only the enqueues race with Close.
	queues := make([]*cl.CommandQueue, goroutines)
	kernels := make([]*cl.Kernel, goroutines)
	for g := 0; g < goroutines; g++ {
		k, err := prog.CreateKernel("scale")
		if err != nil {
			t.Fatal(err)
		}
		buf, err := ctx.CreateBuffer(cl.MemReadWrite, 256*4, nil)
		if err != nil {
			t.Fatal(err)
		}
		k.SetArgBuffer(0, buf)
		k.SetArgFloat(1, 2.0)
		k.SetArgInt(2, 256)
		kernels[g] = k
		queues[g] = ctx.CreateCommandQueue(gpus[g])
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, goroutines*4)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(q *cl.CommandQueue, k *cl.Kernel) {
			defer wg.Done()
			<-start
			for i := 0; i < 4; i++ {
				if _, err := q.EnqueueNDRangeKernel(k, 1, []int{256}, []int{64}); err != nil {
					errs <- err
					return
				}
			}
		}(queues[g], kernels[g])
	}
	close(start)
	ctx.Close() // races the enqueues above
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("enqueue racing Close: %v", err)
	}
}
