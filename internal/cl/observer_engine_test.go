package cl_test

import (
	"reflect"
	"testing"

	"maligo/internal/cl"
	"maligo/internal/cpu"
	"maligo/internal/mali"
	"maligo/internal/vm"
)

// TestObserverHooksEngineIdentical verifies the trace-observer path of
// the fast engines: with race checking and hot-line profiling both
// enabled on the same queue (so the detailed trace fans out through
// device.FanObservers to a vm.RaceDetector and a vm.LineProfiler), the
// compiled and lane engines must report the exact races and the exact
// per-line load/store profile the reference interpreter reports. The
// kernel races deliberately: racy kernels are the hard case for the
// lane engine, whose replayed observer stream must stay identical even
// though lock-step execution reorders the underlying work.
func TestObserverHooksEngineIdentical(t *testing.T) {
	type observed struct {
		dynamic []vm.DataRace
		top     []vm.LineStat
		bytes   uint64
	}
	run := func(eng vm.Engine) observed {
		t.Helper()
		gpu := mali.New()
		ctx := cl.NewContextWith(
			cl.WithDevices(gpu),
			cl.WithWorkers(1),
			cl.WithEngine(eng),
		)
		defer ctx.Close()
		prog := ctx.CreateProgramWithSource(raceCheckKernels)
		if err := prog.Build(""); err != nil {
			t.Fatalf("Build: %v\n%s", err, prog.BuildLog())
		}
		const n, local = 32, 16
		buf, err := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, n*4, nil)
		if err != nil {
			t.Fatal(err)
		}
		k, err := prog.CreateKernel("shift")
		if err != nil {
			t.Fatal(err)
		}
		if err := k.SetArgBuffer(0, buf); err != nil {
			t.Fatal(err)
		}
		if err := k.SetArgLocal(1, (local+1)*4); err != nil {
			t.Fatal(err)
		}
		q := ctx.CreateCommandQueue(gpu)
		q.SetRaceCheck(true)
		q.SetLineProfile(true)
		ev, err := q.EnqueueNDRangeKernel(k, 1, []int{n}, []int{local})
		if err != nil {
			t.Fatal(err)
		}
		if ev.RaceCheck == nil {
			t.Fatal("race check enabled but event has no result")
		}
		return observed{
			dynamic: ev.RaceCheck.Dynamic,
			top:     q.LineProfile().Top(100),
			bytes:   q.LineProfile().TotalBytes(),
		}
	}

	ref := run(vm.EngineInterp)
	if len(ref.dynamic) == 0 {
		t.Fatal("interpreter observed no races; the kernel should race")
	}
	if len(ref.top) == 0 {
		t.Fatal("interpreter line profile is empty")
	}
	for _, eng := range []vm.Engine{vm.EngineCompiled, vm.EngineLanes} {
		got := run(eng)
		if !reflect.DeepEqual(ref.dynamic, got.dynamic) {
			t.Errorf("%v: race detector observations differ:\n interp: %+v\n got:    %+v", eng, ref.dynamic, got.dynamic)
		}
		if !reflect.DeepEqual(ref.top, got.top) {
			t.Errorf("%v: line profiles differ:\n interp: %+v\n got:    %+v", eng, ref.top, got.top)
		}
		if ref.bytes != got.bytes {
			t.Errorf("%v: profiled bytes differ: interp %d, got %d", eng, ref.bytes, got.bytes)
		}
	}
}

// TestObserverHooksEngineIdenticalCPU repeats the cross-check on the
// CPU device model, whose serial-groups path drives observers directly
// instead of through trace record/replay.
func TestObserverHooksEngineIdenticalCPU(t *testing.T) {
	run := func(eng vm.Engine) []vm.LineStat {
		t.Helper()
		dev := cpu.New(2)
		ctx := cl.NewContextWith(
			cl.WithDevices(dev),
			cl.WithWorkers(1),
			cl.WithEngine(eng),
		)
		defer ctx.Close()
		prog := ctx.CreateProgramWithSource(raceCheckKernels)
		if err := prog.Build(""); err != nil {
			t.Fatalf("Build: %v\n%s", err, prog.BuildLog())
		}
		const n, local = 32, 16
		buf, err := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, n*4, nil)
		if err != nil {
			t.Fatal(err)
		}
		k, err := prog.CreateKernel("shift_fixed")
		if err != nil {
			t.Fatal(err)
		}
		if err := k.SetArgBuffer(0, buf); err != nil {
			t.Fatal(err)
		}
		if err := k.SetArgLocal(1, (local+1)*4); err != nil {
			t.Fatal(err)
		}
		q := ctx.CreateCommandQueue(dev)
		q.SetLineProfile(true)
		if _, err := q.EnqueueNDRangeKernel(k, 1, []int{n}, []int{local}); err != nil {
			t.Fatal(err)
		}
		return q.LineProfile().Top(100)
	}

	ref := run(vm.EngineInterp)
	if len(ref) == 0 {
		t.Fatal("interpreter line profile is empty")
	}
	for _, eng := range []vm.Engine{vm.EngineCompiled, vm.EngineLanes} {
		got := run(eng)
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("%v: line profiles differ:\n interp: %+v\n got:    %+v", eng, ref, got)
		}
	}
}
