package cl_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"maligo/internal/cl"
	"maligo/internal/mali"
	"maligo/internal/obs"
)

// newAsyncCtx creates a context whose queues route through the DAG
// command scheduler, plus its GPU device.
func newAsyncCtx(t *testing.T) (*cl.Context, *mali.GPU) {
	t.Helper()
	gpu := mali.New()
	ctx := cl.NewContextWith(cl.WithDevices(gpu), cl.WithWorkers(2), cl.WithAsyncQueues(true))
	t.Cleanup(ctx.Close)
	return ctx, gpu
}

// scaleKernel builds the scale kernel over an n-float buffer filled
// with 0..n-1 and binds all three arguments (factor 2).
func scaleKernel(t *testing.T, ctx *cl.Context, n int) (*cl.Kernel, *cl.Buffer) {
	t.Helper()
	prog := ctx.CreateProgramWithSource(testKernel)
	if err := prog.Build(""); err != nil {
		t.Fatalf("Build: %v\n%s", err, prog.BuildLog())
	}
	k, err := prog.CreateKernel("scale")
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.CreateBuffer(cl.MemReadWrite, int64(n*4), nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := buf.Bytes(0, int64(n*4))
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(float32(i)))
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(k.SetArgBuffer(0, buf))
	must(k.SetArgFloat(1, 2))
	must(k.SetArgInt(2, int64(n)))
	return k, buf
}

// TestQueueConformance locks down the OpenCL 1.1 command-queue
// contract of the asynchronous scheduler: in-order chaining,
// out-of-order overlap, wait-lists (within and across queues),
// markers, barriers, user events, per-event failure semantics and the
// typed errors of the wait-list validation. Each scenario is
// independent — a fresh context per row.
func TestQueueConformance(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(t *testing.T)
	}{
		{"InOrderImplicitChain", func(t *testing.T) {
			// In-order queues order commands without wait-lists;
			// consecutive events tile the timeline exactly.
			ctx, gpu := newAsyncCtx(t)
			buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 1<<20, nil)
			q := ctx.CreateCommandQueue(gpu)
			if !q.Scheduled() || q.OutOfOrder() {
				t.Fatalf("want scheduled in-order queue, got scheduled=%v ooo=%v", q.Scheduled(), q.OutOfOrder())
			}
			a, err := q.EnqueueWriteBufferAsync(buf, 0, make([]byte, 1<<20), nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := q.EnqueueWriteBufferAsync(buf, 0, []byte{7, 8, 9}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := q.Finish(); err != nil {
				t.Fatal(err)
			}
			if b.Queued != a.Ended || b.Submitted != b.Queued {
				t.Errorf("in-order chain: b queued/submitted %g/%g, a ended %g",
					b.Queued, b.Submitted, a.Ended)
			}
			raw, _ := buf.Bytes(0, 3)
			if raw[0] != 7 || raw[2] != 9 {
				t.Errorf("second write lost: % x", raw)
			}
			evs := q.Events()
			if len(evs) != 2 || evs[0] != a || evs[1] != b {
				t.Errorf("history = %d events, want [a b]", len(evs))
			}
		}},
		{"OutOfOrderIndependentOverlap", func(t *testing.T) {
			// Independent commands on an out-of-order queue share the
			// same QUEUED/SUBMIT origin: their windows overlap.
			ctx, gpu := newAsyncCtx(t)
			buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 1<<21, nil)
			q := ctx.CreateCommandQueueWith(gpu, cl.QueueOutOfOrderExec)
			if !q.OutOfOrder() || q.Properties() != cl.QueueOutOfOrderExec {
				t.Fatal("queue must report out-of-order properties")
			}
			a, _ := q.EnqueueWriteBufferAsync(buf, 0, make([]byte, 1<<20), nil)
			b, _ := q.EnqueueWriteBufferAsync(buf, 1<<20, make([]byte, 1<<18), nil)
			if err := q.Finish(); err != nil {
				t.Fatal(err)
			}
			if a.Queued != 0 || b.Queued != 0 || a.Submitted != 0 || b.Submitted != 0 {
				t.Errorf("independent commands must share t=0: a %g/%g b %g/%g",
					a.Queued, a.Submitted, b.Queued, b.Submitted)
			}
			if b.Ended >= a.Ended {
				t.Errorf("shorter write must end first: a %g b %g", a.Ended, b.Ended)
			}
			// Completion history is deterministic: dispatch order is
			// lowest-sequence-ready-first, never host interleaving.
			evs := q.Events()
			if len(evs) != 2 || evs[0] != a || evs[1] != b {
				t.Error("out-of-order history must still be deterministic (submit order here)")
			}
		}},
		{"WaitListOrdersWithinQueue", func(t *testing.T) {
			ctx, gpu := newAsyncCtx(t)
			buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 1<<20, nil)
			q := ctx.CreateCommandQueueWith(gpu, cl.QueueOutOfOrderExec)
			a, _ := q.EnqueueWriteBufferAsync(buf, 0, make([]byte, 1<<20), nil)
			b, err := q.EnqueueWriteBufferAsync(buf, 0, []byte{1}, []*cl.Event{a})
			if err != nil {
				t.Fatal(err)
			}
			if err := q.Finish(); err != nil {
				t.Fatal(err)
			}
			if b.Submitted != a.Ended {
				t.Errorf("b SUBMIT %g != a END %g", b.Submitted, a.Ended)
			}
			raw, _ := buf.Bytes(0, 1)
			if raw[0] != 1 {
				t.Error("wait-list ordering violated: dependent write lost")
			}
		}},
		{"WaitListOrdersAcrossQueues", func(t *testing.T) {
			// Wait-lists synchronize queues of one context, like
			// OpenCL events shared across command queues.
			ctx, gpu := newAsyncCtx(t)
			buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 1<<20, nil)
			q1 := ctx.CreateCommandQueueWith(gpu, cl.QueueOutOfOrderExec)
			q2 := ctx.CreateCommandQueueWith(gpu, cl.QueueOutOfOrderExec)
			a, _ := q1.EnqueueWriteBufferAsync(buf, 0, make([]byte, 1<<20), nil)
			b, err := q2.EnqueueWriteBufferAsync(buf, 0, []byte{42}, []*cl.Event{a})
			if err != nil {
				t.Fatal(err)
			}
			if err := cl.WaitForEvents(a, b); err != nil {
				t.Fatal(err)
			}
			if b.Submitted != a.Ended {
				t.Errorf("cross-queue b SUBMIT %g != a END %g", b.Submitted, a.Ended)
			}
			raw, _ := buf.Bytes(0, 1)
			if raw[0] != 42 {
				t.Error("cross-queue ordering violated")
			}
			if err := q1.Finish(); err != nil {
				t.Fatal(err)
			}
			if err := q2.Finish(); err != nil {
				t.Fatal(err)
			}
		}},
		{"KernelWaitListProfiling", func(t *testing.T) {
			// An async NDRange obeys its wait-list and carries the full
			// QUEUED <= SUBMIT <= START <= END profiling ladder, with
			// START trailing SUBMIT by the GPU dispatch overhead.
			ctx, gpu := newAsyncCtx(t)
			k, buf := scaleKernel(t, ctx, 64)
			q := ctx.CreateCommandQueueWith(gpu, cl.QueueOutOfOrderExec)
			w, _ := q.EnqueueWriteBufferAsync(buf, 0, make([]byte, 4), nil)
			ev, err := q.EnqueueNDRangeKernelAsync(k, 1, []int{64}, []int{16}, []*cl.Event{w})
			if err != nil {
				t.Fatal(err)
			}
			if err := ev.Wait(); err != nil {
				t.Fatal(err)
			}
			if ev.Queued > ev.Submitted || ev.Submitted > ev.Started || ev.Started > ev.Ended {
				t.Errorf("non-monotone stamps %g/%g/%g/%g", ev.Queued, ev.Submitted, ev.Started, ev.Ended)
			}
			if ev.Submitted != w.Ended {
				t.Errorf("SUBMIT %g != dep END %g", ev.Submitted, w.Ended)
			}
			if ev.Started == ev.Submitted {
				t.Error("ndrange START must trail SUBMIT by dispatch overhead")
			}
			if ev.Report == nil {
				t.Error("async ndrange event must carry a device report")
			}
			if err := q.Finish(); err != nil {
				t.Fatal(err)
			}
		}},
		{"KernelArgsSnapshotAtEnqueue", func(t *testing.T) {
			// clEnqueueNDRangeKernel captures argument values: a later
			// SetArg must not change a pending command.
			ctx, gpu := newAsyncCtx(t)
			k, buf := scaleKernel(t, ctx, 16)
			q := ctx.CreateCommandQueue(gpu)
			gate, err := ctx.CreateUserEvent("gate")
			if err != nil {
				t.Fatal(err)
			}
			ev, err := q.EnqueueNDRangeKernelAsync(k, 1, []int{16}, []int{16}, []*cl.Event{gate})
			if err != nil {
				t.Fatal(err)
			}
			if err := k.SetArgFloat(1, 100); err != nil { // rebind for a hypothetical next launch
				t.Fatal(err)
			}
			if err := gate.SetComplete(); err != nil {
				t.Fatal(err)
			}
			if err := ev.Wait(); err != nil {
				t.Fatal(err)
			}
			raw, _ := buf.Bytes(0, 4*4)
			got := math.Float32frombits(binary.LittleEndian.Uint32(raw[3*4:]))
			if got != 6 { // 3 * 2, not 3 * 100
				t.Errorf("x[3] = %v, want 6 (enqueue-time factor)", got)
			}
		}},
		{"MarkerWaitsAllOutstanding", func(t *testing.T) {
			// An empty-wait-list marker completes when everything
			// previously enqueued completes, without blocking later
			// commands.
			ctx, gpu := newAsyncCtx(t)
			buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 1<<21, nil)
			q := ctx.CreateCommandQueueWith(gpu, cl.QueueOutOfOrderExec)
			a, _ := q.EnqueueWriteBufferAsync(buf, 0, make([]byte, 1<<20), nil)
			b, _ := q.EnqueueWriteBufferAsync(buf, 1<<20, make([]byte, 1<<18), nil)
			m, err := q.EnqueueMarkerWithWaitList(nil)
			if err != nil {
				t.Fatal(err)
			}
			late, _ := q.EnqueueWriteBufferAsync(buf, 0, make([]byte, 8), nil)
			if err := q.Finish(); err != nil {
				t.Fatal(err)
			}
			end := a.Ended
			if b.Ended > end {
				end = b.Ended
			}
			if m.Ended != end || m.Seconds != 0 {
				t.Errorf("marker END %g (dur %g), want %g (dur 0)", m.Ended, m.Seconds, end)
			}
			if late.Submitted != 0 {
				t.Errorf("marker must not block later commands: SUBMIT %g", late.Submitted)
			}
		}},
		{"MarkerWithExplicitWaitList", func(t *testing.T) {
			ctx, gpu := newAsyncCtx(t)
			buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 1<<21, nil)
			q := ctx.CreateCommandQueueWith(gpu, cl.QueueOutOfOrderExec)
			a, _ := q.EnqueueWriteBufferAsync(buf, 0, make([]byte, 1<<20), nil)
			b, _ := q.EnqueueWriteBufferAsync(buf, 1<<20, make([]byte, 1<<18), nil)
			m, err := q.EnqueueMarkerWithWaitList([]*cl.Event{b})
			if err != nil {
				t.Fatal(err)
			}
			if err := q.Finish(); err != nil {
				t.Fatal(err)
			}
			if m.Ended != b.Ended || m.Ended >= a.Ended {
				t.Errorf("marker END %g, want b's %g (not a's %g)", m.Ended, b.Ended, a.Ended)
			}
		}},
		{"BarrierGatesLaterCommands", func(t *testing.T) {
			ctx, gpu := newAsyncCtx(t)
			buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 1<<21, nil)
			q := ctx.CreateCommandQueueWith(gpu, cl.QueueOutOfOrderExec)
			a, _ := q.EnqueueWriteBufferAsync(buf, 0, make([]byte, 1<<20), nil)
			bar, err := q.EnqueueBarrierWithWaitList(nil)
			if err != nil {
				t.Fatal(err)
			}
			late, _ := q.EnqueueWriteBufferAsync(buf, 1<<20, make([]byte, 8), nil)
			if err := q.Finish(); err != nil {
				t.Fatal(err)
			}
			if bar.Ended != a.Ended {
				t.Errorf("barrier END %g != outstanding END %g", bar.Ended, a.Ended)
			}
			if late.Submitted != bar.Ended {
				t.Errorf("post-barrier SUBMIT %g != barrier END %g", late.Submitted, bar.Ended)
			}
		}},
		{"UserEventGatesAtTimeZero", func(t *testing.T) {
			// Commands gated on a user event stay queued until the host
			// signals; once released, stamps are as if the gate never
			// existed (user events complete at simulated time zero).
			ctx, gpu := newAsyncCtx(t)
			buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 64, nil)
			q := ctx.CreateCommandQueueWith(gpu, cl.QueueOutOfOrderExec)
			gate, err := ctx.CreateUserEvent("gate")
			if err != nil {
				t.Fatal(err)
			}
			if !gate.IsUserEvent() {
				t.Fatal("user event must report IsUserEvent")
			}
			ev, err := q.EnqueueWriteBufferAsync(buf, 0, []byte{5}, []*cl.Event{gate})
			if err != nil {
				t.Fatal(err)
			}
			if ev.Complete() {
				t.Fatal("gated command must stay pending")
			}
			if err := gate.SetComplete(); err != nil {
				t.Fatal(err)
			}
			if err := ev.Wait(); err != nil {
				t.Fatal(err)
			}
			if ev.Queued != 0 || ev.Submitted != 0 {
				t.Errorf("gated stamps %g/%g, want 0/0 (host timing must not leak in)", ev.Queued, ev.Submitted)
			}
			raw, _ := buf.Bytes(0, 1)
			if raw[0] != 5 {
				t.Error("released write did not execute")
			}
		}},
		{"UserEventErrorCascades", func(t *testing.T) {
			// clSetUserEventStatus with a negative status fails every
			// waiting command — but clFinish still succeeds: failures
			// are per-event, not per-queue.
			ctx, gpu := newAsyncCtx(t)
			buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 64, nil)
			q := ctx.CreateCommandQueueWith(gpu, cl.QueueOutOfOrderExec)
			gate, _ := ctx.CreateUserEvent("gate")
			ev, err := q.EnqueueWriteBufferAsync(buf, 0, []byte{1}, []*cl.Event{gate})
			if err != nil {
				t.Fatal(err)
			}
			boom := errors.New("boom")
			if err := gate.SetError(boom); err != nil {
				t.Fatal(err)
			}
			werr := ev.Wait()
			if !errors.Is(werr, cl.ErrEventDepFailed) || !errors.Is(werr, boom) {
				t.Errorf("cascade error = %v, want ErrEventDepFailed wrapping boom", werr)
			}
			if ev.Err() == nil {
				t.Error("failed event must expose its error")
			}
			if err := q.Finish(); err != nil {
				t.Errorf("Finish after per-event failure = %v, want nil", err)
			}
			if got := len(q.Events()); got != 0 {
				t.Errorf("failed command recorded in history (%d events)", got)
			}
			raw, _ := buf.Bytes(0, 1)
			if raw[0] != 0 {
				t.Error("failed command must not execute")
			}
		}},
		{"FinishDetectsOrphanStall", func(t *testing.T) {
			// Finishing a queue stuck behind a never-signalled user
			// event reports the stall instead of hanging.
			ctx, gpu := newAsyncCtx(t)
			buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 64, nil)
			q := ctx.CreateCommandQueue(gpu)
			gate, _ := ctx.CreateUserEvent("gate")
			ev, err := q.EnqueueWriteBufferAsync(buf, 0, []byte{1}, []*cl.Event{gate})
			if err != nil {
				t.Fatal(err)
			}
			if err := q.Finish(); !errors.Is(err, cl.ErrOrphanEvent) {
				t.Fatalf("Finish on stalled queue = %v, want ErrOrphanEvent", err)
			}
			if err := gate.SetComplete(); err != nil {
				t.Fatal(err)
			}
			if err := q.Finish(); err != nil {
				t.Fatalf("Finish after signalling = %v", err)
			}
			if err := ev.Wait(); err != nil {
				t.Fatal(err)
			}
		}},
		{"FinishCtxHonoursCancellation", func(t *testing.T) {
			ctx, gpu := newAsyncCtx(t)
			buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 64, nil)
			q := ctx.CreateCommandQueue(gpu)
			gate, _ := ctx.CreateUserEvent("gate")
			if _, err := q.EnqueueWriteBufferAsync(buf, 0, []byte{1}, []*cl.Event{gate}); err != nil {
				t.Fatal(err)
			}
			cctx, cancel := context.WithCancel(context.Background())
			cancel()
			if err := q.FinishCtx(cctx); !errors.Is(err, context.Canceled) {
				t.Fatalf("FinishCtx(cancelled) = %v", err)
			}
			if err := gate.SetComplete(); err != nil {
				t.Fatal(err)
			}
			if err := q.Finish(); err != nil {
				t.Fatal(err)
			}
		}},
		{"WaitListValidation", func(t *testing.T) {
			ctx, gpu := newAsyncCtx(t)
			buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 64, nil)
			q := ctx.CreateCommandQueue(gpu)
			ev, err := q.EnqueueWriteBufferAsync(buf, 0, []byte{1}, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Duplicate wait-list entries.
			if _, err := q.EnqueueWriteBufferAsync(buf, 0, []byte{2}, []*cl.Event{ev, ev}); !errors.Is(err, cl.ErrDoubleWait) {
				t.Errorf("duplicate wait entry = %v, want ErrDoubleWait", err)
			}
			// Nil wait-list entries.
			if _, err := q.EnqueueWriteBufferAsync(buf, 0, []byte{2}, []*cl.Event{nil}); !errors.Is(err, cl.ErrInvalidArgValue) {
				t.Errorf("nil wait entry = %v, want ErrInvalidArgValue", err)
			}
			// Events from another context.
			ctx2, gpu2 := newAsyncCtx(t)
			buf2, _ := ctx2.CreateBuffer(cl.MemReadWrite, 64, nil)
			q2 := ctx2.CreateCommandQueue(gpu2)
			foreign, err := q2.EnqueueWriteBufferAsync(buf2, 0, []byte{1}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := q.EnqueueWriteBufferAsync(buf, 0, []byte{2}, []*cl.Event{foreign}); !errors.Is(err, cl.ErrForeignEvent) {
				t.Errorf("foreign wait entry = %v, want ErrForeignEvent", err)
			}
			// Signalling non-user events.
			if err := ev.SetComplete(); !errors.Is(err, cl.ErrNotUserEvent) {
				t.Errorf("SetComplete on command event = %v, want ErrNotUserEvent", err)
			}
			// Double-signalling user events.
			u, _ := ctx.CreateUserEvent("u")
			if err := u.SetComplete(); err != nil {
				t.Fatal(err)
			}
			if err := u.SetComplete(); !errors.Is(err, cl.ErrEventComplete) {
				t.Errorf("second SetComplete = %v, want ErrEventComplete", err)
			}
			if err := u.SetError(errors.New("x")); !errors.Is(err, cl.ErrEventComplete) {
				t.Errorf("SetError after complete = %v, want ErrEventComplete", err)
			}
			if err := q.Finish(); err != nil {
				t.Fatal(err)
			}
			if err := q2.Finish(); err != nil {
				t.Fatal(err)
			}
		}},
		{"FlushIsNonBlocking", func(t *testing.T) {
			ctx, gpu := newAsyncCtx(t)
			buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 64, nil)
			q := ctx.CreateCommandQueue(gpu)
			gate, _ := ctx.CreateUserEvent("gate")
			if _, err := q.EnqueueWriteBufferAsync(buf, 0, []byte{1}, []*cl.Event{gate}); err != nil {
				t.Fatal(err)
			}
			// Flush must return without waiting for the gated command.
			if err := q.Flush(); err != nil {
				t.Errorf("Flush = %v", err)
			}
			if err := gate.SetComplete(); err != nil {
				t.Fatal(err)
			}
			if err := q.Finish(); err != nil {
				t.Fatal(err)
			}
		}},
		{"MapBufferAsync", func(t *testing.T) {
			ctx, gpu := newAsyncCtx(t)
			buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 64, nil)
			q := ctx.CreateCommandQueueWith(gpu, cl.QueueOutOfOrderExec)
			w, _ := q.EnqueueWriteBufferAsync(buf, 0, []byte{9, 9}, nil)
			view, m, err := q.EnqueueMapBufferAsync(buf, 0, 2, []*cl.Event{w})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Wait(); err != nil {
				t.Fatal(err)
			}
			if view[0] != 9 || view[1] != 9 {
				t.Errorf("mapped view = % x after dependency completed", view[:2])
			}
			if m.Submitted != w.Ended {
				t.Errorf("map SUBMIT %g != write END %g", m.Submitted, w.Ended)
			}
			if err := q.Finish(); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, tc.run)
	}
}

// runSequence executes the fixed write/ndrange/map/unmap/read command
// sequence of runObserved through the synchronous API on a context
// with or without the async scheduler, returning the queue and the
// final buffer contents.
func runSequence(t *testing.T, async bool) (*cl.CommandQueue, []byte) {
	t.Helper()
	gpu := mali.New()
	ctx := cl.NewContextWith(cl.WithDevices(gpu), cl.WithWorkers(2), cl.WithAsyncQueues(async))
	t.Cleanup(ctx.Close)
	prog := ctx.CreateProgramWithSource(testKernel)
	if err := prog.Build(""); err != nil {
		t.Fatalf("Build: %v", err)
	}
	k, _ := prog.CreateKernel("scale")
	const n = 256
	host := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(host[i*4:], math.Float32bits(float32(i)))
	}
	buf, err := ctx.CreateBuffer(cl.MemReadWrite, n*4, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.SetArgBuffer(0, buf)
	k.SetArgFloat(1, 3.0)
	k.SetArgInt(2, n)
	q := ctx.CreateCommandQueue(gpu)
	if _, err := q.EnqueueWriteBuffer(buf, 0, host); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRangeKernel(k, 1, []int{n}, []int{64}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.EnqueueMapBuffer(buf, 0, n*4); err != nil {
		t.Fatal(err)
	}
	q.EnqueueUnmapMemObject(buf)
	out := make([]byte, n*4)
	if _, err := q.EnqueueReadBuffer(buf, 0, out); err != nil {
		t.Fatal(err)
	}
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	return q, out
}

// TestAsyncMatchesSyncBitIdentical checks the scheduler reproduces the
// legacy synchronous queue exactly: same event history, same profiling
// stamps, same memory bytes. HostSeconds is excluded — it is host
// wall-clock, documented as nondeterministic.
func TestAsyncMatchesSyncBitIdentical(t *testing.T) {
	qs, outS := runSequence(t, false)
	qa, outA := runSequence(t, true)
	se, ae := qs.Events(), qa.Events()
	if len(se) != len(ae) {
		t.Fatalf("event counts differ: sync %d async %d", len(se), len(ae))
	}
	for i := range se {
		s, a := se[i], ae[i]
		if s.Kind != a.Kind || s.Name != a.Name || s.Seq != a.Seq {
			t.Errorf("event %d identity: sync %s/%s/%d async %s/%s/%d",
				i, s.Kind, s.Name, s.Seq, a.Kind, a.Name, a.Seq)
		}
		if s.Queued != a.Queued || s.Submitted != a.Submitted ||
			s.Started != a.Started || s.Ended != a.Ended || s.Seconds != a.Seconds {
			t.Errorf("event %d (%s): sync %g/%g/%g/%g async %g/%g/%g/%g",
				i, s.Kind, s.Queued, s.Submitted, s.Started, s.Ended,
				a.Queued, a.Submitted, a.Started, a.Ended)
		}
		if s.Bytes != a.Bytes {
			t.Errorf("event %d bytes: %d vs %d", i, s.Bytes, a.Bytes)
		}
		if (s.Report == nil) != (a.Report == nil) {
			t.Fatalf("event %d report presence differs", i)
		}
		if s.Report != nil && *s.Report != *a.Report {
			t.Errorf("event %d device report differs:\nsync  %+v\nasync %+v", i, *s.Report, *a.Report)
		}
	}
	if string(outS) != string(outA) {
		t.Error("buffer contents differ between sync and async runs")
	}
}

// TestTraceMultiQueueGolden locks the Chrome-trace export of a fixed
// two-queue overlapped workload down to the byte: two out-of-order
// queues, a cross-queue wait-list, a marker and a barrier. Since the
// schedule is a pure function of the DAG, the export must reproduce
// exactly on every host. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/cl -run TraceMultiQueueGolden.
func TestTraceMultiQueueGolden(t *testing.T) {
	ctx, gpu := newAsyncCtx(t)
	k, buf := scaleKernel(t, ctx, 256)
	aux, err := ctx.CreateBuffer(cl.MemReadWrite, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	q1 := ctx.CreateCommandQueueWith(gpu, cl.QueueOutOfOrderExec)
	q2 := ctx.CreateCommandQueueWith(gpu, cl.QueueOutOfOrderExec)

	// q1: upload then launch; q2: an independent overlapping upload.
	w1, err := q1.EnqueueWriteBufferAsync(buf, 0, make([]byte, 256*4), nil)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := q1.EnqueueNDRangeKernelAsync(k, 1, []int{256}, []int{64}, []*cl.Event{w1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q2.EnqueueWriteBufferAsync(aux, 0, make([]byte, 1<<20), nil); err != nil {
		t.Fatal(err)
	}
	// q2 reads the kernel's output: a cross-queue dependency.
	out := make([]byte, 256*4)
	if _, err := q2.EnqueueReadBufferAsync(buf, 0, out, []*cl.Event{nd}); err != nil {
		t.Fatal(err)
	}
	if _, err := q1.EnqueueMarkerWithWaitList(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q2.EnqueueBarrierWithWaitList(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q2.EnqueueWriteBufferAsync(aux, 0, make([]byte, 64), nil); err != nil {
		t.Fatal(err)
	}
	if err := q1.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := q2.Finish(); err != nil {
		t.Fatal(err)
	}

	spans := append(q1.Timeline(), q2.Timeline()...)
	var trace bytes.Buffer
	if err := obs.WriteChromeTrace(&trace, spans); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace_multiqueue.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, trace.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(trace.Bytes(), want) {
		t.Errorf("multi-queue trace drifted from golden:\ngot:\n%s\nwant:\n%s", trace.Bytes(), want)
	}
}

// TestFinishCtxUnwindsWithoutGoroutineLeaks drives the cancellation
// path end to end: a queue stalled behind a user event, a cancelled
// FinishCtx, then release and teardown — and requires the goroutine
// count to return to baseline (scheduler executor and pool workers
// all gone). Stdlib-only leak check.
func TestFinishCtxUnwindsWithoutGoroutineLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	func() {
		gpu := mali.New()
		ctx := cl.NewContextWith(cl.WithDevices(gpu), cl.WithWorkers(2), cl.WithAsyncQueues(true))
		defer ctx.Close()
		buf, err := ctx.CreateBuffer(cl.MemReadWrite, 1<<16, nil)
		if err != nil {
			t.Fatal(err)
		}
		q := ctx.CreateCommandQueue(gpu)
		gate, _ := ctx.CreateUserEvent("gate")
		var last *cl.Event
		for i := 0; i < 8; i++ {
			ev, err := q.EnqueueWriteBufferAsync(buf, int64(i*16), make([]byte, 16), []*cl.Event{gate})
			if err != nil {
				t.Fatal(err)
			}
			last = ev
		}
		cctx, cancel := context.WithCancel(context.Background())
		cancel()
		if err := q.FinishCtx(cctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("FinishCtx(cancelled) = %v", err)
		}
		if err := gate.SetComplete(); err != nil {
			t.Fatal(err)
		}
		if err := q.Finish(); err != nil {
			t.Fatal(err)
		}
		if err := last.Wait(); err != nil {
			t.Fatal(err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
}

// TestFinishClosedContextError is the regression test for the old
// silent no-op: Finish (and Flush) on a queue whose context has been
// closed must report ErrContextClosed, not pretend success.
func TestFinishClosedContextError(t *testing.T) {
	for _, async := range []bool{false, true} {
		gpu := mali.New()
		ctx := cl.NewContextWith(cl.WithDevices(gpu), cl.WithAsyncQueues(async))
		q := ctx.CreateCommandQueue(gpu)
		buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 64, nil)
		if _, err := q.EnqueueWriteBuffer(buf, 0, []byte{1}); err != nil {
			t.Fatal(err)
		}
		if err := q.Finish(); err != nil {
			t.Fatalf("async=%v: Finish on live context = %v", async, err)
		}
		ctx.Close()
		if err := q.Finish(); !errors.Is(err, cl.ErrContextClosed) {
			t.Errorf("async=%v: Finish on closed context = %v, want ErrContextClosed", async, err)
		}
		if err := q.Flush(); !errors.Is(err, cl.ErrContextClosed) {
			t.Errorf("async=%v: Flush on closed context = %v, want ErrContextClosed", async, err)
		}
	}
}
