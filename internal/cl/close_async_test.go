package cl_test

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"testing"
	"time"

	"maligo/internal/cl"
	"maligo/internal/device"
	"maligo/internal/mali"
)

// burnKernel runs long enough (many groups x a hot inner loop) that
// Close reliably lands while the NDRange body is still executing.
const burnKernel = `
__kernel void burn(__global float* x, const uint iters, const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        float v = x[i];
        for (uint it = 0u; it < iters; it++) {
            v = v * 1.0000001f + 0.5f;
        }
        x[i] = v;
    }
}
`

// TestCloseFailsInFlightAsyncJob is the regression test for the
// Close-vs-in-flight-async stall: Context.Close used to wait for the
// running command body to finish naturally, so a long NDRange stalled
// Close (and with it FinishCtx) for its full duration. Close now
// cancels the body's context with cause ErrContextClosed and the
// device layer aborts between work-groups: the job fails with the
// typed error and Close returns promptly.
func TestCloseFailsInFlightAsyncJob(t *testing.T) {
	gpu := mali.New()
	ctx := cl.NewContextWith(cl.WithDevices(gpu), cl.WithWorkers(2), cl.WithAsyncQueues(true))

	prog := ctx.CreateProgramWithSource(burnKernel)
	if err := prog.Build(""); err != nil {
		t.Fatalf("Build: %v\n%s", err, prog.BuildLog())
	}
	k, err := prog.CreateKernel("burn")
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 18
	buf, err := ctx.CreateBuffer(cl.MemReadWrite, int64(n*4), nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := buf.Bytes(0, int64(n*4))
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(1))
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(k.SetArgBuffer(0, buf))
	must(k.SetArgInt(1, 4096)) // hot inner loop: seconds of work if not cancelled
	must(k.SetArgInt(2, n))

	q := ctx.CreateCommandQueue(gpu)
	ev, err := q.EnqueueNDRangeKernelAsync(k, 1, []int{n}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the body start executing

	done := make(chan struct{})
	start := time.Now()
	go func() {
		ctx.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Context.Close stalled on the in-flight async job")
	}
	t.Logf("Close returned after %v", time.Since(start))

	werr := ev.Wait()
	if werr == nil {
		t.Skip("job completed before Close; cancellation not exercised on this host")
	}
	if !errors.Is(werr, cl.ErrContextClosed) {
		t.Fatalf("in-flight job error = %v, want errors.Is(_, ErrContextClosed)", werr)
	}

	// FinishCtx must not stall either, and reports the closed context.
	fctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := q.FinishCtx(fctx); !errors.Is(err, cl.ErrContextClosed) {
		t.Fatalf("FinishCtx = %v, want ErrContextClosed", err)
	}
}

// TestWithPoolSharedAcrossContexts checks the malid multiplexing
// contract: several contexts share one externally owned worker pool,
// closing any context leaves the pool's workers running for the
// others, and only the owner tears it down.
func TestWithPoolSharedAcrossContexts(t *testing.T) {
	pool := device.NewPool(2)
	defer pool.Close()

	run := func(c *cl.Context, g *mali.GPU) {
		t.Helper()
		k, _ := scaleKernel(t, c, 1024)
		q := c.CreateCommandQueue(g)
		if _, err := q.EnqueueNDRangeKernel(k, 1, []int{1024}, nil); err != nil {
			t.Fatal(err)
		}
		if err := q.Finish(); err != nil {
			t.Fatal(err)
		}
	}

	gpu1, gpu2 := mali.New(), mali.New()
	c1 := cl.NewContextWith(cl.WithDevices(gpu1), cl.WithPool(pool), cl.WithAsyncQueues(true))
	c2 := cl.NewContextWith(cl.WithDevices(gpu2), cl.WithPool(pool), cl.WithAsyncQueues(true))
	if got := c1.Workers(); got != pool.Workers() {
		t.Fatalf("Workers() = %d, want pool's %d", got, pool.Workers())
	}

	run(c1, gpu1)
	c1.Close() // must not stop the shared pool's workers
	run(c2, gpu2)
	c2.Close()

	// The pool itself must still be usable by its owner.
	ran := false
	pool.Run(func() { ran = true })
	if !ran {
		t.Fatal("shared pool no longer runs work after context Close")
	}
}
