// Package cl implements the host-side OpenCL-like runtime of the
// simulated platform: contexts over the unified memory of the Exynos
// 5250, buffer objects with USE_HOST_PTR/ALLOC_HOST_PTR semantics,
// map/unmap zero-copy access, explicit read/write copies (with their
// cost, so the paper's §III-A memory-mapping optimization is
// measurable), program compilation via the clc compiler, kernels with
// positional arguments, and in-order command queues that execute
// NDRanges on a device model and record timing reports.
package cl

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"maligo/internal/clc"
	"maligo/internal/clc/analysis"
	"maligo/internal/clc/ir"
	"maligo/internal/clc/types"
	"maligo/internal/device"
	"maligo/internal/mem"
	"maligo/internal/obs"
	"maligo/internal/platform"
	"maligo/internal/sched"
	"maligo/internal/vm"
)

// Sentinel errors in the spirit of OpenCL status codes.
var (
	ErrInvalidArgIndex   = errors.New("CL_INVALID_ARG_INDEX")
	ErrInvalidArgValue   = errors.New("CL_INVALID_ARG_VALUE")
	ErrInvalidKernelArgs = errors.New("CL_INVALID_KERNEL_ARGS")
	ErrInvalidBufferSize = errors.New("CL_INVALID_BUFFER_SIZE")
	ErrBuildFailure      = errors.New("CL_BUILD_PROGRAM_FAILURE")
	ErrKernelNotFound    = errors.New("CL_INVALID_KERNEL_NAME")
	ErrMapFailure        = errors.New("CL_MAP_FAILURE")
	// ErrContextClosed reports an operation (Finish, user-event
	// creation, ...) against a context that was already closed —
	// OpenCL's CL_INVALID_CONTEXT after clReleaseContext.
	ErrContextClosed = errors.New("CL_INVALID_CONTEXT: context closed")
)

// Typed queue-contract errors re-exported from the scheduler so
// callers can errors.Is against the cl package alone.
var (
	ErrEventCycle     = sched.ErrCycle
	ErrDoubleWait     = sched.ErrDoubleWait
	ErrOrphanEvent    = sched.ErrOrphanEvent
	ErrForeignEvent   = sched.ErrForeignEvent
	ErrNotUserEvent   = sched.ErrNotUserEvent
	ErrEventComplete  = sched.ErrAlreadyComplete
	ErrEventDepFailed = sched.ErrDepFailed
)

// MemFlags mirror cl_mem_flags.
type MemFlags uint32

// Buffer creation flags.
const (
	MemReadWrite MemFlags = 1 << iota
	MemReadOnly
	MemWriteOnly
	// MemUseHostPtr wraps host memory; on this unified-memory platform
	// the runtime still keeps a device allocation and the benchmarks
	// must copy explicitly (the trap §III-A describes).
	MemUseHostPtr
	// MemAllocHostPtr allocates host-visible device memory that can be
	// mapped with zero copies — the recommended Mali pattern.
	MemAllocHostPtr
	MemCopyHostPtr
)

// Context owns the unified memory arena shared by every device, plus
// the host worker pool the execution engine shards work-groups onto
// and the metrics registry every queue reports into.
type Context struct {
	arena   *mem.Arena
	devices []device.Device
	workers int
	engine  vm.Engine
	metrics *obs.Registry

	poolMu   sync.Mutex
	pool     *device.Pool
	external bool             // pool is shared (WithPool); Close must not stop its workers
	sched    *sched.Scheduler // lazy; serves every async queue of the context
	closed   bool
	closeCh  chan struct{}  // closed by Close; cancels in-flight async bodies
	inflight sync.WaitGroup // enqueues currently holding the pool

	asyncQueues bool // CreateCommandQueue returns scheduler-backed queues

	queueSeq atomic.Int64

	// atomicsMu serializes read-modify-write cycles on the arena when
	// work-groups execute concurrently (global atomics are the only
	// cross-group write contention the benchmark kernels have).
	atomicsMu sync.Mutex
}

// DefaultArenaBytes is the default simulated memory capacity (the
// board has 2 GB; the simulator reserves less). Override per context
// with WithArenaBytes.
const DefaultArenaBytes = 512 << 20

// ContextOption configures a context at creation.
type ContextOption func(*contextConfig)

type contextConfig struct {
	devices     []device.Device
	arenaBytes  int64
	workers     int
	engine      vm.Engine
	asyncQueues bool
	pool        *device.Pool
}

// WithDevices sets the context's devices.
func WithDevices(devices ...device.Device) ContextOption {
	return func(cfg *contextConfig) { cfg.devices = devices }
}

// WithArenaBytes sets the simulated unified-memory capacity;
// n <= 0 selects DefaultArenaBytes.
func WithArenaBytes(n int64) ContextOption {
	return func(cfg *contextConfig) { cfg.arenaBytes = n }
}

// WithWorkers sets the host worker count for the parallel NDRange
// engine; n <= 0 selects runtime.NumCPU(), n == 1 forces the serial
// engine. Simulated reports are bit-identical at every worker count —
// only host wall-clock changes.
func WithWorkers(n int) ContextOption {
	return func(cfg *contextConfig) { cfg.workers = n }
}

// WithEngine selects the VM execution engine for every enqueue on the
// context: vm.EngineInterp for the reference interpreter,
// vm.EngineCompiled for the closure-compiled fast path. The default
// (vm.EngineAuto) honours the MALIGO_ENGINE environment variable and
// otherwise runs the fast path. Both engines produce bit-identical
// results, reports and traces — only host wall-clock differs.
func WithEngine(e vm.Engine) ContextOption {
	return func(cfg *contextConfig) { cfg.engine = e }
}

// WithPool shares an externally owned worker pool with the context
// instead of letting it lazily create a private one. Multiple contexts
// may share one pool — the malid service multiplexes every tenant's
// work-group fan-out over a single host pool this way. The context
// never closes a shared pool; the owner must outlive every context
// using it. The context's worker count becomes the pool's.
func WithPool(p *device.Pool) ContextOption {
	return func(cfg *contextConfig) { cfg.pool = p }
}

// WithAsyncQueues makes CreateCommandQueue return scheduler-backed
// in-order queues: enqueues flow through the context's DAG scheduler
// and the synchronous Enqueue* methods become enqueue-then-wait.
// Events, timestamps and results stay bit-identical to the legacy
// synchronous queue; what changes is that the Async enqueue variants
// and wait-lists become available without opting in per queue.
func WithAsyncQueues(on bool) ContextOption {
	return func(cfg *contextConfig) { cfg.asyncQueues = on }
}

// NewContextWith creates a context from functional options.
func NewContextWith(opts ...ContextOption) *Context {
	cfg := contextConfig{arenaBytes: DefaultArenaBytes, workers: runtime.NumCPU()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.arenaBytes <= 0 {
		cfg.arenaBytes = DefaultArenaBytes
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.NumCPU()
	}
	if cfg.engine == vm.EngineAuto {
		cfg.engine = vm.EngineFromEnv()
	}
	c := &Context{
		arena:       mem.NewArena(cfg.arenaBytes),
		devices:     cfg.devices,
		workers:     cfg.workers,
		engine:      cfg.engine,
		metrics:     obs.NewRegistry(),
		asyncQueues: cfg.asyncQueues,
		closeCh:     make(chan struct{}),
	}
	if cfg.pool != nil {
		c.pool = cfg.pool
		c.external = true
		c.workers = cfg.pool.Workers()
	}
	c.registerGauges()
	return c
}

// registerGauges wires the callback gauges that read live runtime
// state at snapshot time: arena occupancy, engine-pool activity and
// per-device L2 hit rates.
func (c *Context) registerGauges() {
	c.metrics.GaugeFunc("arena.in_use_bytes", func() float64 {
		return float64(c.arena.InUse())
	})
	c.metrics.GaugeFunc("arena.capacity_bytes", func() float64 {
		return float64(c.arena.Capacity())
	})
	c.metrics.GaugeFunc("pool.workers", func() float64 {
		c.poolMu.Lock()
		defer c.poolMu.Unlock()
		if c.pool == nil {
			return 0
		}
		return float64(c.pool.Workers())
	})
	c.metrics.GaugeFunc("pool.jobs_done", func() float64 {
		c.poolMu.Lock()
		defer c.poolMu.Unlock()
		if c.pool == nil {
			return 0
		}
		done, _ := c.pool.Stats()
		return float64(done)
	})
	c.metrics.GaugeFunc("pool.busy_workers", func() float64 {
		c.poolMu.Lock()
		defer c.poolMu.Unlock()
		if c.pool == nil {
			return 0
		}
		_, busy := c.pool.Stats()
		return float64(busy)
	})
	for _, dev := range c.devices {
		l2, ok := dev.(interface{ L2Stats() mem.CacheStats })
		if !ok {
			continue
		}
		name := metricName(dev.Name())
		c.metrics.GaugeFunc("device."+name+".l2_hit_rate", func() float64 {
			st := l2.L2Stats()
			if st.Accesses == 0 {
				return 0
			}
			return 1 - st.MissRate()
		})
	}
}

// metricName sanitizes a device display name into a metric-name
// component: lower-case with runs of non-alphanumerics collapsed to
// single underscores ("Mali-T604" -> "mali_t604").
func metricName(s string) string {
	var b strings.Builder
	lastUnder := true
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastUnder = false
		default:
			if !lastUnder {
				b.WriteByte('_')
				lastUnder = true
			}
		}
	}
	return strings.TrimRight(b.String(), "_")
}

// NewContext creates a context over the given devices with default
// arena capacity and runtime.NumCPU() engine workers.
func NewContext(devices ...device.Device) *Context {
	return NewContextWith(WithDevices(devices...))
}

// Devices returns the context's devices.
func (c *Context) Devices() []device.Device { return c.devices }

// Engine returns the VM execution engine this context enqueues with.
func (c *Context) Engine() vm.Engine { return c.engine }

// Arena exposes the unified memory (used by tests and examples to
// inspect results without going through buffer reads).
func (c *Context) Arena() *mem.Arena { return c.arena }

// ArenaBytes returns the context's unified-memory capacity.
func (c *Context) ArenaBytes() int64 { return c.arena.Capacity() }

// Workers returns the engine worker count the context was created
// with.
func (c *Context) Workers() int { return c.workers }

// Metrics returns the context's metrics registry. Queues feed it on
// every enqueue; callers take point-in-time views with Snapshot.
func (c *Context) Metrics() *obs.Registry { return c.metrics }

// acquirePool lazily creates the shared worker pool and registers the
// caller as an in-flight user, keeping Close from tearing the pool
// down underneath a running enqueue. It returns a nil pool (and a
// no-op release) when the context is serial (workers <= 1) or already
// closed. The release function must be called exactly once when the
// enqueue no longer touches the pool.
func (c *Context) acquirePool() (*device.Pool, func()) {
	c.poolMu.Lock()
	defer c.poolMu.Unlock()
	if c.closed || c.workers <= 1 {
		return nil, func() {}
	}
	if c.pool == nil {
		c.pool = device.NewPool(c.workers)
	}
	c.inflight.Add(1)
	var once sync.Once
	return c.pool, func() { once.Do(c.inflight.Done) }
}

// scheduler lazily creates the context's DAG scheduler — one per
// context, shared by every async queue so cross-queue wait-lists work.
// Command bodies are dispatched onto the device worker pool when the
// context has one. Returns nil once the context is closed.
func (c *Context) scheduler() *sched.Scheduler {
	c.poolMu.Lock()
	defer c.poolMu.Unlock()
	if c.closed {
		return nil
	}
	if c.sched == nil {
		c.sched = sched.New(sched.WithExec(c.execBody))
	}
	return c.sched
}

// execBody runs one async command body, on a pool worker when the
// context is parallel. The body itself may shard work-groups across
// the same pool (see device.Pool.Run for why that nesting is safe).
func (c *Context) execBody(f func()) {
	pool, release := c.acquirePool()
	defer release()
	if pool != nil {
		pool.Run(f)
	} else {
		f()
	}
}

// bodyCtx derives the context an async command body runs under: the
// caller's parent cancellation is honoured, and Context.Close cancels
// it with cause ErrContextClosed — the device layer checks the body
// context between work-groups, so an in-flight NDRange fails with a
// typed error instead of stalling Close and FinishCtx. The returned
// stop function must be called when the body finishes.
func (c *Context) bodyCtx(parent context.Context) (context.Context, func()) {
	ctx, cancel := context.WithCancelCause(parent)
	done := make(chan struct{})
	go func() {
		select {
		case <-c.closeCh:
			cancel(ErrContextClosed)
		case <-done:
			cancel(context.Canceled)
		}
	}()
	return ctx, func() { close(done) }
}

// Close shuts down the context's async scheduler (the running command
// completes, every other pending command fails with a typed error) and
// releases the worker pool. It first marks the context closed (so no
// new enqueue can acquire the pool), then waits for in-flight enqueues
// to release it before stopping the workers — Close racing an enqueue
// is deterministic, not a panic. Enqueues after Close fall back to the
// serial engine; Close is idempotent.
func (c *Context) Close() {
	c.poolMu.Lock()
	s := c.sched
	c.sched = nil
	first := !c.closed
	c.closed = true // no new scheduler, no new pool acquisitions
	c.poolMu.Unlock()
	if first {
		// Cancel every in-flight async command body: the device layer
		// checks the body context between work-groups, so a long
		// NDRange aborts within one group instead of stalling the
		// scheduler drain below. The job fails with ErrContextClosed.
		close(c.closeCh)
	}
	if s != nil {
		// Before the pool teardown below: the scheduler's running
		// command may still be sharding work-groups across the pool
		// (it acquired the pool before closed was set and holds an
		// inflight reference until it finishes).
		s.Close()
	}
	c.poolMu.Lock()
	pool := c.pool
	c.pool = nil
	c.poolMu.Unlock()
	if pool != nil {
		c.inflight.Wait()
		if !c.external {
			pool.Close()
		}
	}
}

// Buffer is a cl_mem buffer object.
type Buffer struct {
	ctx   *Context
	base  int64
	size  int64
	flags MemFlags
	freed bool
}

// CreateBuffer allocates a buffer of size bytes. hostData may be nil;
// with MemCopyHostPtr or MemUseHostPtr it initializes the buffer.
// Mutually exclusive flag combinations are rejected with
// ErrInvalidArgValue, zero and negative sizes with
// ErrInvalidBufferSize — matching clCreateBuffer instead of silently
// accepting contradictory requests.
func (c *Context) CreateBuffer(flags MemFlags, size int64, hostData []byte) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("size %d: %w", size, ErrInvalidBufferSize)
	}
	if err := validateMemFlags(flags); err != nil {
		return nil, err
	}
	if hostData != nil && int64(len(hostData)) > size {
		return nil, fmt.Errorf("host data larger than buffer: %w", ErrInvalidBufferSize)
	}
	base, err := c.arena.Alloc(size, 64)
	if err != nil {
		return nil, err
	}
	c.metrics.Counter("cl.buffers_created").Inc()
	b := &Buffer{ctx: c, base: base, size: size, flags: flags}
	if hostData != nil && flags&(MemCopyHostPtr|MemUseHostPtr) != 0 {
		dst, err := c.arena.Bytes(base, int64(len(hostData)))
		if err != nil {
			return nil, err
		}
		copy(dst, hostData)
	}
	return b, nil
}

// validateMemFlags rejects the mutually exclusive cl_mem_flags
// combinations the OpenCL specification forbids.
func validateMemFlags(flags MemFlags) error {
	rw := flags & (MemReadWrite | MemReadOnly | MemWriteOnly)
	if rw&(rw-1) != 0 {
		return fmt.Errorf("flags %#x combine more than one of READ_WRITE/READ_ONLY/WRITE_ONLY: %w",
			uint32(flags), ErrInvalidArgValue)
	}
	if flags&MemUseHostPtr != 0 && flags&(MemAllocHostPtr|MemCopyHostPtr) != 0 {
		return fmt.Errorf("flags %#x combine USE_HOST_PTR with ALLOC/COPY_HOST_PTR: %w",
			uint32(flags), ErrInvalidArgValue)
	}
	return nil
}

// Size returns the buffer size in bytes.
func (b *Buffer) Size() int64 { return b.size }

// Base returns the buffer's offset in the unified arena.
func (b *Buffer) Base() int64 { return b.base }

// DeviceAddr returns the tagged device address of the buffer start.
func (b *Buffer) DeviceAddr() int64 { return ir.EncodeAddr(ir.SpaceGlobal, b.base) }

// Release frees the buffer.
func (b *Buffer) Release() {
	if !b.freed {
		b.ctx.arena.Free(b.base)
		b.freed = true
	}
}

// Bytes returns the live backing slice [off, off+n) of the buffer —
// what clEnqueueMapBuffer returns on a unified-memory system. It is
// valid until Release. The bounds check is overflow-safe: a negative
// length or an offset large enough to wrap off+n must error, never
// panic or alias another buffer's range.
func (b *Buffer) Bytes(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off > b.size || n > b.size-off {
		return nil, fmt.Errorf("map range [%d,+%d) outside buffer of %d bytes: %w", off, n, b.size, ErrMapFailure)
	}
	return b.ctx.arena.Bytes(b.base+off, n)
}

// Program is a compiled OpenCL program.
type Program struct {
	ctx    *Context
	source string
	prog   *ir.Program
	art    *clc.Artifacts
	log    string

	diagsOnce sync.Once
	diags     []analysis.Diagnostic
}

// CreateProgramWithSource mirrors clCreateProgramWithSource.
func (c *Context) CreateProgramWithSource(source string) *Program {
	return &Program{ctx: c, source: source}
}

// CreateProgramFromArtifacts wraps an already-compiled artifact bundle
// in a ready-to-use program — the clCreateProgramWithBinary analogue
// the service layer's compiled-program cache uses to share one compile
// across tenants. No Build call is needed (or allowed to change it).
func (c *Context) CreateProgramFromArtifacts(art *clc.Artifacts) *Program {
	return &Program{ctx: c, source: art.Source, art: art, prog: art.Prog}
}

// CreateProgramFromIR wraps a bare lowered program (e.g. one decoded
// from a persisted binary cache, which carries no analyzer artifacts).
// Diagnostics returns nil for such programs; kernels execute normally.
func (c *Context) CreateProgramFromIR(prog *ir.Program, source string) *Program {
	return &Program{ctx: c, source: source, prog: prog}
}

// Build compiles the program with clBuildProgram-style options
// (e.g. "-DREAL=float -DVEC=4").
func (p *Program) Build(options string) error {
	art, err := clc.CompileArtifacts("program.cl", p.source, options)
	if err != nil {
		p.log = err.Error()
		return fmt.Errorf("%w: %v", ErrBuildFailure, err)
	}
	p.art = art
	p.prog = art.Prog
	return nil
}

// BuildLog returns the compiler diagnostics of the last Build.
func (p *Program) BuildLog() string { return p.log }

// Diagnostics runs the static analyzer over the built program (lazily,
// once) and returns its findings: Mali optimization lints plus barrier
// and race diagnostics. Nil before a successful Build.
func (p *Program) Diagnostics() []analysis.Diagnostic {
	if p.art == nil {
		return nil
	}
	p.diagsOnce.Do(func() { p.diags = analysis.Analyze(p.art) })
	return p.diags
}

// KernelNames lists the kernels the built program defines.
func (p *Program) KernelNames() []string {
	if p.prog == nil {
		return nil
	}
	return p.prog.KernelNames()
}

// Kernel is a kernel object with bound arguments.
type Kernel struct {
	prog *Program
	k    *ir.Kernel
	args []vm.ArgValue
	set  []bool
}

// CreateKernel mirrors clCreateKernel.
func (p *Program) CreateKernel(name string) (*Kernel, error) {
	if p.prog == nil {
		return nil, fmt.Errorf("program not built: %w", ErrBuildFailure)
	}
	k := p.prog.Kernel(name)
	if k == nil {
		return nil, fmt.Errorf("kernel %q: %w", name, ErrKernelNotFound)
	}
	return &Kernel{
		prog: p,
		k:    k,
		args: make([]vm.ArgValue, len(k.Params)),
		set:  make([]bool, len(k.Params)),
	}, nil
}

// IR exposes the lowered kernel (for tools and tests).
func (k *Kernel) IR() *ir.Kernel { return k.k }

// NumArgs returns the kernel's parameter count.
func (k *Kernel) NumArgs() int { return len(k.k.Params) }

func (k *Kernel) checkIndex(i int) error {
	if i < 0 || i >= len(k.k.Params) {
		return fmt.Errorf("arg %d of kernel %s (has %d): %w", i, k.k.Name, len(k.k.Params), ErrInvalidArgIndex)
	}
	return nil
}

// SetArgBuffer binds a buffer to a global/constant pointer parameter.
func (k *Kernel) SetArgBuffer(i int, b *Buffer) error {
	if err := k.checkIndex(i); err != nil {
		return err
	}
	p := k.k.Params[i]
	if p.Class != ir.ParamGlobalPtr {
		return fmt.Errorf("arg %d of %s is %s, not a buffer pointer: %w", i, k.k.Name, p.Type, ErrInvalidArgValue)
	}
	k.args[i] = vm.ArgValue{Bits: b.DeviceAddr()}
	k.set[i] = true
	return nil
}

// SetArgLocal reserves size bytes of __local memory for parameter i
// (clSetKernelArg with a nil pointer).
func (k *Kernel) SetArgLocal(i int, size int) error {
	if err := k.checkIndex(i); err != nil {
		return err
	}
	p := k.k.Params[i]
	if p.Class != ir.ParamLocalPtr {
		return fmt.Errorf("arg %d of %s is %s, not a __local pointer: %w", i, k.k.Name, p.Type, ErrInvalidArgValue)
	}
	if size <= 0 {
		return fmt.Errorf("local size %d: %w", size, ErrInvalidArgValue)
	}
	k.args[i] = vm.ArgValue{LocalSize: size}
	k.set[i] = true
	return nil
}

// SetArgInt binds an integer scalar argument.
func (k *Kernel) SetArgInt(i int, v int64) error {
	if err := k.checkIndex(i); err != nil {
		return err
	}
	p := k.k.Params[i]
	if p.Class != ir.ParamScalarI {
		return fmt.Errorf("arg %d of %s is %s, not an integer scalar: %w", i, k.k.Name, p.Type, ErrInvalidArgValue)
	}
	k.args[i] = vm.ArgValue{Bits: v}
	k.set[i] = true
	return nil
}

// SetArgFloat binds a float/double scalar argument.
func (k *Kernel) SetArgFloat(i int, v float64) error {
	if err := k.checkIndex(i); err != nil {
		return err
	}
	p := k.k.Params[i]
	if p.Class != ir.ParamScalarF {
		return fmt.Errorf("arg %d of %s is %s, not a float scalar: %w", i, k.k.Name, p.Type, ErrInvalidArgValue)
	}
	if p.Type.Base == types.Float {
		v = float64(float32(v))
	}
	k.args[i] = vm.ArgValue{F: v}
	k.set[i] = true
	return nil
}

// Event records the outcome of one enqueued command, including the
// four clGetEventProfilingInfo timestamps. Timestamps are simulated
// seconds on the queue's clock (zero at queue creation and after
// ResetEvents), derived purely from the timing model — they are
// bit-identical whether work-groups executed serially or on the
// worker pool. Host wall-clock cost lives separately in HostSeconds.
type Event struct {
	// Seq is the event's index in the queue history.
	Seq int
	// Kind is "ndrange", "write", "read", "map" or "unmap".
	Kind string
	// Name labels the command (kernel name for ndrange, else Kind).
	Name string
	// Report is the device report for NDRange events (nil otherwise).
	Report *device.Report
	// Seconds is the command duration (copies included).
	Seconds float64
	// Queued/Submitted/Started/Ended mirror the COMMAND_QUEUED,
	// COMMAND_SUBMIT, COMMAND_START and COMMAND_END profiling
	// timestamps. The in-order queue submits immediately, so Submitted
	// equals Queued; Started trails Submitted by the device's dispatch
	// overhead (driver enqueue cost, OpenMP fork) and Ended is
	// Queued + Seconds.
	Queued, Submitted, Started, Ended float64
	// HostSeconds is the host wall-clock time the simulator spent
	// executing the command — a debugging aid, deliberately excluded
	// from profiling info and trace export because it is not
	// deterministic.
	HostSeconds float64
	// Bytes moved for copy commands.
	Bytes int64
	// RaceCheck holds the race-check outcome when the queue has
	// SetRaceCheck(true); nil otherwise.
	RaceCheck *RaceCheckResult

	// se links async events to their scheduler state; nil for events
	// from the legacy synchronous path, which are complete on return.
	// The exported fields above are filled at completion time — read
	// them only after Wait/Complete (the synchronous Enqueue* methods
	// do that for you).
	se *sched.Event
}

// Wait blocks until the event's command completes and returns its
// execution error. Events from synchronous enqueues are already
// complete, so Wait returns nil immediately. If completion requires a
// user event the host signals from this same goroutine, signal first
// or use CommandQueue.FinishCtx, which detects the stall.
func (ev *Event) Wait() error {
	if ev.se == nil {
		return nil
	}
	return ev.se.Wait()
}

// Complete reports whether the event's command has finished (either
// way). Always true for events from synchronous enqueues.
func (ev *Event) Complete() bool {
	return ev.se == nil || ev.se.Complete()
}

// Err returns the command's execution error: nil while pending or on
// success, the body's error (or a wrapped ErrEventDepFailed for
// cascaded failures) otherwise.
func (ev *Event) Err() error {
	if ev.se == nil {
		return nil
	}
	return ev.se.Err()
}

// IsUserEvent reports whether this is a host-signalled user event
// created with Context.CreateUserEvent.
func (ev *Event) IsUserEvent() bool { return ev.se != nil && ev.se.IsUserEvent() }

// SetComplete transitions a user event to complete, releasing every
// command waiting on it. User events complete at simulated time zero,
// so downstream timestamps never depend on when the host signals.
// Returns ErrNotUserEvent for ordinary command events and
// ErrEventComplete on a second signal.
func (ev *Event) SetComplete() error {
	if ev.se == nil {
		return fmt.Errorf("%s: %w", ev.Name, ErrNotUserEvent)
	}
	return ev.se.SetComplete()
}

// SetError fails a user event, cascading ErrEventDepFailed to every
// command waiting on it.
func (ev *Event) SetError(err error) error {
	if ev.se == nil {
		return fmt.Errorf("%s: %w", ev.Name, ErrNotUserEvent)
	}
	return ev.se.SetError(err)
}

// RaceCheckResult cross-checks the two race-analysis tiers for one
// enqueue: the compiler's static race/barrier diagnostics for the
// launched kernel, and the races the VM actually observed in the
// executed work-groups' memory traces.
type RaceCheckResult struct {
	// Static holds the analyzer's race and barrier-divergence
	// diagnostics for the launched kernel (other passes excluded).
	Static []analysis.Diagnostic
	// Dynamic holds the races observed during execution. Empty Dynamic
	// does not prove absence: only the launched input was executed.
	Dynamic []vm.DataRace
}

// Confirmed returns the dynamic races whose source lines appear in a
// static diagnostic — the overlap where both tiers agree.
func (r *RaceCheckResult) Confirmed() []vm.DataRace {
	if r == nil {
		return nil
	}
	lines := make(map[int]bool)
	for _, d := range r.Static {
		if d.Pass == "race" {
			lines[d.Pos.Line] = true
		}
	}
	var out []vm.DataRace
	for _, dr := range r.Dynamic {
		if lines[dr.LineA] || lines[dr.LineB] {
			out = append(out, dr)
		}
	}
	return out
}

// QueueProps mirror cl_command_queue_properties.
type QueueProps uint32

// Queue properties.
const (
	// QueueOutOfOrderExec creates an out-of-order queue: commands have
	// no implicit ordering (QUEUED stamps at simulated time zero) and
	// order only through wait-lists, markers and barriers.
	QueueOutOfOrderExec QueueProps = 1 << iota
)

// CommandQueue is a command queue bound to one device. The default
// queue executes synchronously and in-order, keeping a simulated
// clock (seconds since creation) that orders its events into a
// timeline for profiling and trace export. Queues created with
// CreateCommandQueueWith (or on a WithAsyncQueues context) route
// enqueues through the context's DAG scheduler instead: the Async
// enqueue variants return pending events, wait-lists order commands
// across queues, and the synchronous Enqueue* methods become
// enqueue-then-wait — with timestamps that stay bit-identical to the
// synchronous queue for in-order chains.
type CommandQueue struct {
	ctx          *Context
	dev          device.Device
	id           int
	props        QueueProps
	scheduled    bool // enqueues flow through ctx.scheduler()
	raceCheck    bool
	profileLines bool
	lineProf     *vm.LineProfiler

	// enqMu serializes enqueues and guards the enqueue-side ordering
	// state below. It is held across scheduler Submit calls, so two
	// racing enqueues cannot interleave their dependency wiring.
	enqMu sync.Mutex
	// prev is the in-order predecessor: the event whose END stamps the
	// next command's QUEUED. Nil on out-of-order queues.
	prev *sched.Event
	// outstanding accumulates this queue's scheduled events since the
	// last reset — the implicit wait-list of markers, barriers and
	// Finish.
	outstanding []*sched.Event
	// barrier gates every command enqueued after it (out-of-order
	// queues; in-order queues are gated by prev already).
	barrier *sched.Event

	// mu guards the completion-side state below. The legacy
	// synchronous path is single-goroutine, but async completions land
	// from the scheduler's executor. Lock order: enqMu before mu;
	// never the reverse.
	mu     sync.Mutex
	events []*Event
	clock  float64
	gen    uint64 // bumped by ResetEvents; stale completions don't record
}

// SetRaceCheck switches dynamic race checking on or off for subsequent
// NDRange enqueues. When on, each enqueue records work-item-attributed
// memory traces, runs them through a vm.RaceDetector and attaches a
// RaceCheckResult (static diagnostics + dynamic observations) to the
// event. Tracing costs time and memory, so it is off by default.
func (q *CommandQueue) SetRaceCheck(on bool) { q.raceCheck = on }

// SetLineProfile switches pprof-style hot-line profiling on or off
// for subsequent NDRange enqueues. When on, each enqueue records
// work-item-attributed memory traces and folds every access into a
// per-source-line profile readable with LineProfile. Like the race
// check, tracing costs time and memory, so it is off by default; both
// share one trace when enabled together.
func (q *CommandQueue) SetLineProfile(on bool) {
	q.profileLines = on
	if on && q.lineProf == nil {
		q.lineProf = vm.NewLineProfiler()
	}
}

// LineProfile returns the accumulated hot-line profile, or nil when
// SetLineProfile was never enabled.
func (q *CommandQueue) LineProfile() *vm.LineProfiler { return q.lineProf }

// CreateCommandQueue mirrors clCreateCommandQueue: an in-order queue,
// synchronous unless the context was created WithAsyncQueues.
func (c *Context) CreateCommandQueue(dev device.Device) *CommandQueue {
	q := &CommandQueue{ctx: c, dev: dev, id: int(c.queueSeq.Add(1)) - 1}
	q.scheduled = c.asyncQueues
	return q
}

// CreateCommandQueueWith creates a scheduler-backed queue with the
// given properties — in-order by default, out-of-order with
// QueueOutOfOrderExec. Multiple queues on one context share the
// context scheduler, so wait-lists may cross queues.
func (c *Context) CreateCommandQueueWith(dev device.Device, props QueueProps) *CommandQueue {
	q := c.CreateCommandQueue(dev)
	q.props = props
	q.scheduled = true
	return q
}

// Properties returns the queue's creation properties.
func (q *CommandQueue) Properties() QueueProps { return q.props }

// OutOfOrder reports whether the queue executes out of order.
func (q *CommandQueue) OutOfOrder() bool { return q.props&QueueOutOfOrderExec != 0 }

// Scheduled reports whether enqueues flow through the context's DAG
// scheduler (true for CreateCommandQueueWith queues and every queue
// of a WithAsyncQueues context).
func (q *CommandQueue) Scheduled() bool { return q.scheduled }

// Device returns the queue's device.
func (q *CommandQueue) Device() device.Device { return q.dev }

// Events returns all recorded events in order. On a scheduled queue
// the history holds completed commands only — call Finish first for a
// settled view.
func (q *CommandQueue) Events() []*Event {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.events
}

// ResetEvents clears the recorded history and rewinds the queue clock
// to zero (between measurement regions), so a measured timeline
// always starts at t=0 regardless of warm-up runs. On a scheduled
// queue it first drains outstanding commands (ignoring their errors,
// like the history does). The hot-line profile, if enabled, restarts
// too.
func (q *CommandQueue) ResetEvents() {
	_ = q.drain(context.Background())
	q.enqMu.Lock()
	defer q.enqMu.Unlock()
	q.prev = nil
	q.outstanding = nil
	q.barrier = nil
	q.mu.Lock()
	defer q.mu.Unlock()
	q.events = nil
	q.clock = 0
	q.gen++
	if q.lineProf != nil {
		q.lineProf = vm.NewLineProfiler()
	}
}

// drain waits for every outstanding scheduled command. Command
// execution errors are NOT reported — clFinish succeeds even when
// individual commands failed; failures live on their events. It
// returns an error only when the wait itself cannot finish: ctx
// cancellation, or a queue stalled on an unsignalled user event
// (ErrOrphanEvent instead of a deadlock).
func (q *CommandQueue) drain(ctx context.Context) error {
	q.enqMu.Lock()
	outstanding := append([]*sched.Event(nil), q.outstanding...)
	q.enqMu.Unlock()
	if len(outstanding) == 0 {
		return nil
	}
	sch := q.ctx.scheduler()
	for _, se := range outstanding {
		if sch == nil {
			// Context closed: the scheduler already failed these.
			_ = se.Wait() // failure recorded on the event
			continue
		}
		if err := sch.WaitEvent(ctx, se); err != nil && !se.Complete() {
			return err
		}
	}
	return nil
}

// record stamps the event with the queue's profiling timestamps,
// advances the clock and appends it to the history. dispatch is the
// SUBMIT→START window (clamped into [0, Seconds]).
func (q *CommandQueue) record(ev *Event, dispatch float64) *Event {
	if ev.Name == "" {
		ev.Name = ev.Kind
	}
	if dispatch < 0 {
		dispatch = 0
	}
	if dispatch > ev.Seconds {
		dispatch = ev.Seconds
	}
	q.mu.Lock()
	ev.Seq = len(q.events)
	ev.Queued = q.clock
	ev.Submitted = ev.Queued
	ev.Started = ev.Submitted + dispatch
	ev.Ended = ev.Queued + ev.Seconds
	q.clock = ev.Ended
	q.events = append(q.events, ev)
	q.mu.Unlock()
	q.ctx.metrics.Counter("cl.enqueues." + ev.Kind).Inc()
	return ev
}

// Timeline exports the queue's event history as timeline spans for
// trace writers, one track (lane) per queue. Span times are the
// simulated profiling timestamps, so the export is deterministic.
// Spans start at SUBMIT (equal to QUEUED on in-order queues, so
// legacy traces are unchanged) and are sorted by start time within
// the track — on an out-of-order queue the history is in completion
// order, but trace viewers and tracecheck want monotone lanes.
func (q *CommandQueue) Timeline() []obs.Span {
	q.mu.Lock()
	events := append([]*Event(nil), q.events...)
	q.mu.Unlock()
	track := fmt.Sprintf("queue %d — %s", q.id, q.dev.Name())
	spans := make([]obs.Span, 0, len(events))
	for _, ev := range events {
		sp := obs.Span{
			Name:    ev.Name,
			Cat:     ev.Kind,
			Track:   track,
			TrackID: q.id,
			Start:   ev.Submitted,
			Dur:     ev.Seconds,
		}
		if rep := ev.Report; rep != nil {
			sp.Args = map[string]any{
				"dram_bytes":  rep.DRAMBytes,
				"utilization": rep.Utilization,
			}
			if rep.ArithUtil > 0 || rep.LSUtil > 0 {
				sp.Args["arith_util"] = rep.ArithUtil
				sp.Args["ls_util"] = rep.LSUtil
			}
		} else if ev.Bytes > 0 {
			sp.Args = map[string]any{"bytes": ev.Bytes}
		}
		spans = append(spans, sp)
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	return spans
}

// memTarget adapts the context arena + a program's constant segment to
// the VM's memory interface. Plain loads and stores go straight to the
// arena — concurrent work-groups touch disjoint ranges — while atomics
// serialize on the context mutex so read-modify-write cycles stay
// atomic when groups execute in parallel.
type memTarget struct {
	arena    *mem.Arena
	constant []byte
	mu       *sync.Mutex
}

func (t *memTarget) LoadBits(space int, off int64, size int) (uint64, error) {
	if space == ir.SpaceConstant {
		var v uint64
		if off < 0 || off+int64(size) > int64(len(t.constant)) {
			return 0, fmt.Errorf("constant segment: out-of-bounds load at %d", off)
		}
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(t.constant[off+int64(i)])
		}
		return v, nil
	}
	return t.arena.LoadBits(off, size)
}

func (t *memTarget) StoreBits(space int, off int64, size int, bits uint64) error {
	if space == ir.SpaceConstant {
		return fmt.Errorf("store to __constant memory at %d", off)
	}
	return t.arena.StoreBits(off, size, bits)
}

// RawWindow implements vm.RawMemory: the lane engine asks for a
// directly addressable window to batch unit-stride scalar accesses.
// Any request that could fault returns ok=false so the per-access
// fallback path reproduces the exact arena/constant-segment errors.
func (t *memTarget) RawWindow(space int, off int64, n int, write bool) ([]byte, bool) {
	if space == ir.SpaceConstant {
		if write || off < 0 || n < 0 || off+int64(n) > int64(len(t.constant)) {
			return nil, false
		}
		return t.constant[off : off+int64(n)], true
	}
	if space != ir.SpaceGlobal {
		return nil, false
	}
	win, err := t.arena.Bytes(off, int64(n))
	if err != nil {
		return nil, false
	}
	return win, true
}

func (t *memTarget) AtomicRMW(space int, off int64, size int, fn func(uint64) uint64) (uint64, error) {
	if t.mu != nil {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	old, err := t.LoadBits(space, off, size)
	if err != nil {
		return 0, err
	}
	return old, t.StoreBits(space, off, size, fn(old))
}

// EnqueueNDRangeKernel launches the kernel. local may be nil to let
// the driver pick (the paper's §III-A warns this is often slow on the
// Mali driver). Execution is synchronous in the simulator; the
// returned event carries the timing report.
func (q *CommandQueue) EnqueueNDRangeKernel(k *Kernel, workDim int, global, local []int) (*Event, error) {
	return q.EnqueueNDRangeKernelCtx(context.Background(), k, workDim, global, local)
}

// EnqueueNDRangeKernelCtx is EnqueueNDRangeKernel with cancellation:
// ctx aborts a long simulation between work-groups. Work-groups are
// sharded across the context's worker pool when it has more than one
// worker; the simulated report is bit-identical to serial execution
// either way. On a scheduled queue this is enqueue-then-wait through
// the DAG scheduler — still bit-identical.
func (q *CommandQueue) EnqueueNDRangeKernelCtx(ctx context.Context, k *Kernel, workDim int, global, local []int) (*Event, error) {
	if q.scheduled {
		return q.syncViaAsync(func() (*Event, error) {
			return q.ndrangeAsync(ctx, k, workDim, global, local, nil)
		})
	}
	ndr, err := prepareNDRange(k, workDim, global, local)
	if err != nil {
		return nil, err
	}
	ev := &Event{Kind: "ndrange", Name: k.k.Name}
	if err := q.runNDRangeBody(ctx, k, ndr, ev, q.raceCheck, q.profileLines, q.lineProf); err != nil {
		return nil, err
	}
	return q.record(ev, ev.Report.DispatchSeconds), nil
}

// prepareNDRange validates the kernel's bound arguments and builds the
// NDRange — the synchronous part of an NDRange enqueue, shared by the
// immediate and scheduled paths so both reject bad launches at enqueue
// time with the same errors.
func prepareNDRange(k *Kernel, workDim int, global, local []int) (*device.NDRange, error) {
	for i, ok := range k.set {
		if !ok {
			return nil, fmt.Errorf("arg %d of kernel %s not set: %w", i, k.k.Name, ErrInvalidKernelArgs)
		}
	}
	ndr := &device.NDRange{Kernel: k.k, WorkDim: workDim, Args: k.args}
	for d := 0; d < workDim && d < 3; d++ {
		if d < len(global) {
			ndr.Global[d] = global[d]
		}
		if local != nil && d < len(local) {
			ndr.Local[d] = local[d]
		}
	}
	return ndr, nil
}

// runNDRangeBody executes the prepared NDRange and fills ev with the
// report, duration and race-check results. It does not stamp or record
// the event — the immediate path calls record, the scheduled path lets
// the DAG scheduler derive the stamps. The race/profiling flags are
// passed in (captured at enqueue time) so an async body never races
// with the host toggling the queue's settings.
func (q *CommandQueue) runNDRangeBody(ctx context.Context, k *Kernel, ndr *device.NDRange, ev *Event, raceCheck, profileLines bool, lineProf *vm.LineProfiler) error {
	target := &memTarget{arena: q.ctx.arena, constant: k.prog.prog.ConstantData, mu: &q.ctx.atomicsMu}
	pool, release := q.ctx.acquirePool()
	defer release()
	rc := device.RunConfig{Ctx: ctx, Pool: pool, Engine: q.ctx.engine}
	var detector *vm.RaceDetector
	var observers []device.RaceObserver
	if raceCheck {
		detector = &vm.RaceDetector{Kernel: k.k.Name, Max: 32}
		observers = append(observers, detector)
	}
	if profileLines {
		observers = append(observers, lineProf)
	}
	rc.Race = device.FanObservers(observers...)
	var rep *device.Report
	var err error
	hostStart := time.Now() // maligo:allow walltime HostSeconds is documented host-side profiling, never simulated state
	if cr, ok := q.dev.(device.ContextRunner); ok {
		rep, err = cr.RunWith(rc, ndr, target)
	} else {
		// Legacy devices without RunWith cannot trace; the race check
		// degrades to the static tier only.
		rep, err = q.dev.Run(ndr, target)
	}
	if err != nil {
		return err
	}
	ev.Report = rep
	ev.Seconds = rep.Seconds
	ev.HostSeconds = time.Since(hostStart).Seconds()
	if raceCheck {
		res := &RaceCheckResult{}
		for _, d := range k.prog.Diagnostics() {
			if d.Kernel == k.k.Name && (d.Pass == "race" || d.Pass == "barrierdiv") {
				res.Static = append(res.Static, d)
			}
		}
		if detector != nil {
			res.Dynamic = detector.Races()
		}
		ev.RaceCheck = res
	}
	m := q.ctx.metrics
	m.Counter("cl.work_items").Add(uint64(ndr.TotalWorkItems()))
	m.Counter("cl.dram_bytes").Add(rep.DRAMBytes)
	m.Histogram("cl.ndrange_seconds", nil).Observe(rep.Seconds)
	return nil
}

// hostCopyBandwidth is the achievable memcpy bandwidth of one A15 core
// (bytes/s) — the cost the paper's memory-mapping optimization avoids.
const hostCopyBandwidth = 2.6e9

// EnqueueWriteBuffer copies host data into a buffer, charging the copy
// to the host CPU like clEnqueueWriteBuffer does.
func (q *CommandQueue) EnqueueWriteBuffer(b *Buffer, off int64, data []byte) (*Event, error) {
	if q.scheduled {
		return q.syncViaAsync(func() (*Event, error) {
			return q.EnqueueWriteBufferAsync(b, off, data, nil)
		})
	}
	dst, err := b.Bytes(off, int64(len(data)))
	if err != nil {
		return nil, err
	}
	copy(dst, data)
	ev := &Event{Kind: "write", Seconds: float64(len(data)) / hostCopyBandwidth, Bytes: int64(len(data))}
	q.ctx.metrics.Counter("cl.copy_bytes").Add(uint64(len(data)))
	q.ctx.metrics.Histogram("cl.copy_seconds", nil).Observe(ev.Seconds)
	return q.record(ev, 0), nil
}

// EnqueueReadBuffer copies buffer contents back to host memory.
func (q *CommandQueue) EnqueueReadBuffer(b *Buffer, off int64, data []byte) (*Event, error) {
	if q.scheduled {
		return q.syncViaAsync(func() (*Event, error) {
			return q.EnqueueReadBufferAsync(b, off, data, nil)
		})
	}
	src, err := b.Bytes(off, int64(len(data)))
	if err != nil {
		return nil, err
	}
	copy(data, src)
	ev := &Event{Kind: "read", Seconds: float64(len(data)) / hostCopyBandwidth, Bytes: int64(len(data))}
	q.ctx.metrics.Counter("cl.copy_bytes").Add(uint64(len(data)))
	q.ctx.metrics.Histogram("cl.copy_seconds", nil).Observe(ev.Seconds)
	return q.record(ev, 0), nil
}

// EnqueueMapBuffer returns a zero-copy view of the buffer — free on
// this unified-memory platform apart from a fixed driver cost.
func (q *CommandQueue) EnqueueMapBuffer(b *Buffer, off, n int64) ([]byte, *Event, error) {
	if q.scheduled {
		var view []byte
		ev, err := q.syncViaAsync(func() (*Event, error) {
			var e *Event
			var err error
			view, e, err = q.EnqueueMapBufferAsync(b, off, n, nil)
			return e, err
		})
		return view, ev, err
	}
	view, err := b.Bytes(off, n)
	if err != nil {
		return nil, nil, err
	}
	ev := &Event{Kind: "map", Seconds: 4e-6}
	return view, q.record(ev, 0), nil
}

// EnqueueUnmapMemObject releases a mapping (fixed driver cost).
func (q *CommandQueue) EnqueueUnmapMemObject(b *Buffer) *Event {
	if q.scheduled {
		ev, _ := q.syncViaAsync(func() (*Event, error) {
			return q.enqueueAsync(&Event{Kind: "unmap", Seconds: 4e-6}, nil, nil)
		})
		return ev
	}
	return q.record(&Event{Kind: "unmap", Seconds: 4e-6}, 0)
}

// Finish drains the queue, blocking until every enqueued command has
// completed. Like clFinish it succeeds even when individual commands
// failed (failures live on their events); it returns ErrContextClosed
// when the owning context was closed — it used to succeed vacuously,
// hiding exactly the misuse it now reports — and ErrOrphanEvent when
// the queue can never drain because a user event was never signalled.
func (q *CommandQueue) Finish() error {
	return q.FinishCtx(context.Background())
}

// FinishCtx is Finish with cancellation: ctx aborts the wait (the
// commands keep executing; only the wait stops).
func (q *CommandQueue) FinishCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := q.drain(ctx); err != nil {
		return err
	}
	q.ctx.poolMu.Lock()
	closed := q.ctx.closed
	q.ctx.poolMu.Unlock()
	if closed {
		return ErrContextClosed
	}
	return ctx.Err()
}

// Flush mirrors clFlush. Scheduled commands are submitted to the
// context scheduler eagerly at enqueue time, so there is nothing to
// push; it reports ErrContextClosed on a closed context like Finish.
func (q *CommandQueue) Flush() error {
	q.ctx.poolMu.Lock()
	closed := q.ctx.closed
	q.ctx.poolMu.Unlock()
	if closed {
		return ErrContextClosed
	}
	return nil
}

// TotalSeconds sums the duration of all recorded events.
func (q *CommandQueue) TotalSeconds() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	var t float64
	for _, ev := range q.events {
		t += ev.Seconds
	}
	return t
}

// GPUEnqueueOverhead re-exports the per-enqueue host overhead so the
// harness can account host-spin power during GPU runs.
const GPUEnqueueOverhead = platform.GPUEnqueueOverheadSec
