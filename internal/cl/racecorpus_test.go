package cl_test

import (
	"os"
	"path/filepath"
	"testing"

	"maligo/internal/cl"
	"maligo/internal/clc"
	"maligo/internal/clc/ir"
)

// TestRaceCrossCheckCorpus cross-checks the tier-2 static race
// analysis against the VM's dynamic race detector over the whole
// analyzer golden corpus: every kernel that executes under generic
// argument bindings runs with SetRaceCheck(true), and the tiers must
// agree — each dynamically observed race must overlap a static race
// diagnostic (no static false negatives on the corpus), and a kernel
// the analyzer calls race-free must execute without observed races.
// Kernels that cannot execute under the generic bindings (the bounds
// corpus faults on purpose) are skipped, not failed.
func TestRaceCrossCheckCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "analysis", "*.cl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("golden corpus not found: %v", err)
	}

	const global, local = 32, 16
	executed, skipped, confirmed := 0, 0, 0
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		name := filepath.Base(path)
		irProg, err := clc.Compile(name, string(src), "")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		ctx, gpu := newCtx(t)
		prog := ctx.CreateProgramWithSource(string(src))
		if err := prog.Build(""); err != nil {
			t.Fatalf("%s: Build: %v\n%s", name, err, prog.BuildLog())
		}
		q := ctx.CreateCommandQueue(gpu)
		q.SetRaceCheck(true)

		staticRaceLines := map[string]map[int]bool{}
		for _, d := range prog.Diagnostics() {
			if d.Pass != "race" {
				continue
			}
			if staticRaceLines[d.Kernel] == nil {
				staticRaceLines[d.Kernel] = map[int]bool{}
			}
			staticRaceLines[d.Kernel][d.Pos.Line] = true
		}

		for _, kname := range prog.KernelNames() {
			k, err := prog.CreateKernel(kname)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, kname, err)
			}
			if err := bindGeneric(k, irProg.Kernels[kname], ctx); err != nil {
				t.Fatalf("%s/%s: bind: %v", name, kname, err)
			}
			ev, err := q.EnqueueNDRangeKernel(k, 1, []int{global}, []int{local})
			if err != nil {
				// The bounds/ranges corpus faults by design under any
				// binding; execution is out of scope for those.
				t.Logf("%s/%s: skipped (does not execute: %v)", name, kname, err)
				skipped++
				continue
			}
			executed++
			rc := ev.RaceCheck
			if rc == nil {
				t.Fatalf("%s/%s: no race-check result", name, kname)
			}
			lines := staticRaceLines[kname]
			for _, dr := range rc.Dynamic {
				if !lines[dr.LineA] && !lines[dr.LineB] {
					t.Errorf("%s/%s: dynamic race at lines %d/%d (items %d/%d) has no static diagnostic",
						name, kname, dr.LineA, dr.LineB, dr.ItemA, dr.ItemB)
				}
			}
			if len(lines) == 0 && len(rc.Dynamic) > 0 {
				t.Errorf("%s/%s: statically clean but %d dynamic race(s) observed",
					name, kname, len(rc.Dynamic))
			}
			if len(lines) > 0 && len(rc.Dynamic) > 0 && len(rc.Confirmed()) == 0 {
				t.Errorf("%s/%s: tiers disagree: static %v, dynamic %v", name, kname, lines, rc.Dynamic)
			}
			confirmed += len(rc.Confirmed())
		}
		ctx.Close()
	}
	if executed == 0 {
		t.Fatal("no corpus kernel executed; cross-check checked nothing")
	}
	if confirmed == 0 {
		t.Fatal("no dynamic race was confirmed statically; the positive half of the cross-check ran empty")
	}
	t.Logf("cross-checked %d kernels (%d skipped as non-executable, %d races confirmed by both tiers)",
		executed, skipped, confirmed)
}

// bindGeneric binds plausible arguments for a corpus kernel: 8 KiB
// buffers for pointers, small constants for scalars.
func bindGeneric(k *cl.Kernel, irk *ir.Kernel, ctx *cl.Context) error {
	const bytes = 8 << 10
	for i, p := range irk.Params {
		var err error
		switch p.Class {
		case ir.ParamGlobalPtr:
			var buf *cl.Buffer
			buf, err = ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, bytes, nil)
			if err == nil {
				err = k.SetArgBuffer(i, buf)
			}
		case ir.ParamLocalPtr:
			err = k.SetArgLocal(i, bytes)
		case ir.ParamScalarF:
			err = k.SetArgFloat(i, 1.0)
		default:
			err = k.SetArgInt(i, 4)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
