package cl_test

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"maligo/internal/cl"
	"maligo/internal/cpu"
	"maligo/internal/mali"
)

// atomicKernel exercises the cross-group global-atomic path, the one
// part of the parallel engine that must serialize on the context
// mutex.
const atomicKernel = `
__kernel void count(__global int* sum) {
    atomic_add(&sum[0], 1);
}
`

func TestContextOptions(t *testing.T) {
	gpu := mali.New()
	ctx := cl.NewContextWith(
		cl.WithDevices(gpu),
		cl.WithArenaBytes(1<<20),
		cl.WithWorkers(3),
	)
	defer ctx.Close()
	if ctx.ArenaBytes() != 1<<20 {
		t.Errorf("ArenaBytes = %d, want %d", ctx.ArenaBytes(), 1<<20)
	}
	if ctx.Workers() != 3 {
		t.Errorf("Workers = %d, want 3", ctx.Workers())
	}
	info := ctx.DeviceInfo(gpu)
	if info.GlobalMemBytes != 1<<20 || info.MaxAllocBytes != 1<<18 {
		t.Errorf("DeviceInfo mem = %d/%d, want arena capacity and capacity/4", info.GlobalMemBytes, info.MaxAllocBytes)
	}
	if _, err := ctx.CreateBuffer(cl.MemReadWrite, 1<<21, nil); err == nil {
		t.Error("allocation beyond the shrunken arena should fail")
	}
}

func TestDefaultContextDefaults(t *testing.T) {
	ctx := cl.NewContext(cpu.New(1))
	defer ctx.Close()
	if ctx.ArenaBytes() != cl.DefaultArenaBytes {
		t.Errorf("ArenaBytes = %d, want DefaultArenaBytes", ctx.ArenaBytes())
	}
	if ctx.Workers() < 1 {
		t.Errorf("Workers = %d, want >= 1", ctx.Workers())
	}
}

// runScale runs the scale kernel over n floats in a context with the
// given worker count and returns the result buffer plus the device
// report of the NDRange event.
func runScale(t *testing.T, workers, n int) ([]byte, *cl.Event) {
	t.Helper()
	gpu := mali.New()
	ctx := cl.NewContextWith(cl.WithDevices(gpu), cl.WithWorkers(workers))
	defer ctx.Close()
	prog := ctx.CreateProgramWithSource(testKernel)
	if err := prog.Build(""); err != nil {
		t.Fatalf("Build: %v", err)
	}
	k, _ := prog.CreateKernel("scale")

	host := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(host[i*4:], math.Float32bits(float32(i)))
	}
	buf, err := ctx.CreateBuffer(cl.MemReadWrite|cl.MemCopyHostPtr, int64(n*4), host)
	if err != nil {
		t.Fatal(err)
	}
	k.SetArgBuffer(0, buf)
	k.SetArgFloat(1, 2.0)
	k.SetArgInt(2, int64(n))

	q := ctx.CreateCommandQueue(gpu)
	ev, err := q.EnqueueNDRangeKernel(k, 1, []int{n}, []int{64})
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	q.Finish()
	out := make([]byte, n*4)
	if _, err := q.EnqueueReadBuffer(buf, 0, out); err != nil {
		t.Fatal(err)
	}
	return out, ev
}

// TestParallelEnqueueMatchesSerial checks a sharded enqueue produces
// the same memory contents and the same device report as the serial
// engine, down to the last bit.
func TestParallelEnqueueMatchesSerial(t *testing.T) {
	const n = 4096
	serialOut, serialEv := runScale(t, 1, n)
	parallelOut, parallelEv := runScale(t, 4, n)

	for i := 0; i < n; i++ {
		s := binary.LittleEndian.Uint32(serialOut[i*4:])
		p := binary.LittleEndian.Uint32(parallelOut[i*4:])
		if s != p {
			t.Fatalf("element %d: serial %08x vs parallel %08x", i, s, p)
		}
		want := math.Float32bits(float32(i) * 2)
		if s != want {
			t.Fatalf("element %d: got %08x, want %08x", i, s, want)
		}
	}
	if *serialEv.Report != *parallelEv.Report {
		t.Errorf("device reports differ:\n serial:   %+v\n parallel: %+v", *serialEv.Report, *parallelEv.Report)
	}
	if serialEv.Seconds != parallelEv.Seconds {
		t.Errorf("event seconds differ: %.17g vs %.17g", serialEv.Seconds, parallelEv.Seconds)
	}
}

// TestParallelGlobalAtomics checks that cross-group atomic_add under
// the sharded engine still sums exactly.
func TestParallelGlobalAtomics(t *testing.T) {
	const n = 8192
	gpu := mali.New()
	ctx := cl.NewContextWith(cl.WithDevices(gpu), cl.WithWorkers(4))
	defer ctx.Close()
	prog := ctx.CreateProgramWithSource(atomicKernel)
	if err := prog.Build(""); err != nil {
		t.Fatalf("Build: %v", err)
	}
	k, _ := prog.CreateKernel("count")
	buf, err := ctx.CreateBuffer(cl.MemReadWrite, 4, make([]byte, 4))
	if err != nil {
		t.Fatal(err)
	}
	k.SetArgBuffer(0, buf)
	q := ctx.CreateCommandQueue(gpu)
	if _, err := q.EnqueueNDRangeKernel(k, 1, []int{n}, []int{64}); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	out := make([]byte, 4)
	if _, err := q.EnqueueReadBuffer(buf, 0, out); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(out); got != n {
		t.Fatalf("atomic sum = %d, want %d", got, n)
	}
}

// TestEnqueueCtxCancellation checks the context-aware enqueue and
// finish paths surface cancellation.
func TestEnqueueCtxCancellation(t *testing.T) {
	gpu := mali.New()
	clctx := cl.NewContextWith(cl.WithDevices(gpu), cl.WithWorkers(4))
	defer clctx.Close()
	prog := clctx.CreateProgramWithSource(testKernel)
	if err := prog.Build(""); err != nil {
		t.Fatalf("Build: %v", err)
	}
	k, _ := prog.CreateKernel("scale")
	buf, _ := clctx.CreateBuffer(cl.MemReadWrite, 1<<20, nil)
	k.SetArgBuffer(0, buf)
	k.SetArgFloat(1, 2.0)
	k.SetArgInt(2, 1<<18)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := clctx.CreateCommandQueue(gpu)
	if _, err := q.EnqueueNDRangeKernelCtx(ctx, k, 1, []int{1 << 18}, []int{64}); !errors.Is(err, context.Canceled) {
		t.Fatalf("enqueue with cancelled ctx = %v, want context.Canceled", err)
	}
	if err := q.FinishCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("FinishCtx = %v, want context.Canceled", err)
	}
	if err := q.FinishCtx(context.Background()); err != nil {
		t.Fatalf("FinishCtx(background) = %v", err)
	}
}

// TestContextCloseIdempotent checks Close is safe to repeat and that
// enqueues after Close fall back to the serial engine rather than
// panicking on a closed pool.
func TestContextCloseIdempotent(t *testing.T) {
	gpu := mali.New()
	ctx := cl.NewContextWith(cl.WithDevices(gpu), cl.WithWorkers(4))
	prog := ctx.CreateProgramWithSource(testKernel)
	if err := prog.Build(""); err != nil {
		t.Fatalf("Build: %v", err)
	}
	k, _ := prog.CreateKernel("scale")
	buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 256*4, nil)
	k.SetArgBuffer(0, buf)
	k.SetArgFloat(1, 1.5)
	k.SetArgInt(2, 256)
	q := ctx.CreateCommandQueue(gpu)
	if _, err := q.EnqueueNDRangeKernel(k, 1, []int{256}, []int{64}); err != nil {
		t.Fatalf("enqueue before close: %v", err)
	}

	ctx.Close()
	ctx.Close()
	if _, err := q.EnqueueNDRangeKernel(k, 1, []int{256}, []int{64}); err != nil {
		t.Fatalf("enqueue after close: %v", err)
	}
}
