package cl

import (
	"fmt"

	"maligo/internal/cpu"
	"maligo/internal/device"
	"maligo/internal/mali"
)

// DeviceInfo mirrors the subset of clGetDeviceInfo the benchmarks and
// examples need; values come from the device's registered SoC model
// (the simulated Exynos 5250 by default).
type DeviceInfo struct {
	Name                  string
	Vendor                string
	Type                  string // "gpu" or "cpu"
	ComputeUnits          int
	ClockHz               float64
	MaxWorkGroupSize      int
	GlobalMemBytes        int64
	LocalMemBytes         int
	FP64                  bool
	UnifiedMemory         bool
	MaxAllocBytes         int64
	ProfileFullOrEmbedded string
}

// GetDeviceInfo returns the device descriptor for any of the
// platform's devices.
func GetDeviceInfo(d device.Device) DeviceInfo {
	info := DeviceInfo{
		Name:             d.Name(),
		Vendor:           "maligo simulated ARM",
		MaxWorkGroupSize: d.MaxWorkGroupSize(),
		GlobalMemBytes:   DefaultArenaBytes,
		MaxAllocBytes:    DefaultArenaBytes / 4,
		FP64:             true,
		UnifiedMemory:    true,
		// The paper's whole premise: Mali-T604 is the first embedded
		// GPU with OpenCL *Full* Profile (FP64 + IEEE-754-2008).
		ProfileFullOrEmbedded: "FULL_PROFILE",
	}
	switch dev := d.(type) {
	case *mali.GPU:
		info.Type = "gpu"
		info.ComputeUnits = dev.Model().Cores
		info.ClockHz = dev.Model().FreqHz
		info.LocalMemBytes = 32 << 10
		if !dev.FP64() {
			info.FP64 = false
			info.ProfileFullOrEmbedded = "EMBEDDED_PROFILE"
		}
	case *cpu.CPU:
		info.Type = "cpu"
		info.ComputeUnits = dev.Cores()
		info.ClockHz = dev.Model().FreqHz
		info.LocalMemBytes = 32 << 10
	default:
		info.Type = "custom"
	}
	return info
}

// DeviceInfo returns the descriptor for d sized to this context's
// arena; the free function GetDeviceInfo reports the default capacity.
func (c *Context) DeviceInfo(d device.Device) DeviceInfo {
	info := GetDeviceInfo(d)
	info.GlobalMemBytes = c.arena.Capacity()
	info.MaxAllocBytes = c.arena.Capacity() / 4
	return info
}

// KernelWorkGroupInfo mirrors clGetKernelWorkGroupInfo: per-kernel,
// per-device launch guidance.
type KernelWorkGroupInfo struct {
	// WorkGroupSize is the maximum work-group size this kernel can
	// launch with on the device.
	WorkGroupSize int
	// PreferredWorkGroupSizeMultiple is the scheduling granularity the
	// device favours.
	PreferredWorkGroupSizeMultiple int
	// LocalMemBytes is the kernel's static __local usage.
	LocalMemBytes int
	// PrivateMemBytes is the kernel's per-work-item private array
	// usage.
	PrivateMemBytes int
	// RegisterBytes is the estimated per-thread register demand — the
	// quantity the Mali register budget checks (non-standard, exposed
	// because the paper's CL_OUT_OF_RESOURCES story hinges on it).
	RegisterBytes float64
}

// WorkGroupInfo reports launch guidance for the kernel on a device.
func (k *Kernel) WorkGroupInfo(d device.Device) KernelWorkGroupInfo {
	info := KernelWorkGroupInfo{
		WorkGroupSize:                  d.MaxWorkGroupSize(),
		PreferredWorkGroupSizeMultiple: 4,
		LocalMemBytes:                  k.k.LocalBytes,
		PrivateMemBytes:                k.k.PrivateBytes,
	}
	if g, ok := d.(*mali.GPU); ok {
		info.RegisterBytes = mali.RegisterDemandOn(g.Model(), k.k)
		// The Mali driver suggests multiples of four work-items
		// (quad-scheduling granularity).
		info.PreferredWorkGroupSizeMultiple = 4
	} else {
		info.PreferredWorkGroupSizeMultiple = 1
	}
	return info
}

// ProfilingInfo carries the clGetEventProfilingInfo-style timestamps
// of an event, in simulated nanoseconds since queue creation (or the
// last ResetEvents). The in-order queue submits immediately, so
// SubmitNs == QueuedNs; StartNs trails SubmitNs by the device's
// dispatch overhead and EndNs - QueuedNs is the command duration.
type ProfilingInfo struct {
	QueuedNs int64
	SubmitNs int64
	StartNs  int64
	EndNs    int64
}

// Profiling returns the event's simulated timeline, read from the
// timestamps the queue stamped at enqueue time.
func (q *CommandQueue) Profiling(ev *Event) (ProfilingInfo, error) {
	for _, e := range q.events {
		if e == ev {
			return ProfilingInfo{
				QueuedNs: int64(e.Queued * 1e9),
				SubmitNs: int64(e.Submitted * 1e9),
				StartNs:  int64(e.Started * 1e9),
				EndNs:    int64(e.Ended * 1e9),
			}, nil
		}
	}
	return ProfilingInfo{}, fmt.Errorf("cl: event not found on this queue")
}
