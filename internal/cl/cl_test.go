package cl_test

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"maligo/internal/cl"
	"maligo/internal/cpu"
	"maligo/internal/mali"
)

const testKernel = `
__kernel void scale(__global float* x, const float k, const uint n) {
    size_t i = get_global_id(0);
    if (i < n) {
        x[i] = x[i] * k;
    }
}
__kernel void withLocal(__global float* x, __local float* s) {
    s[get_local_id(0)] = x[get_global_id(0)];
    barrier(1);
    x[get_global_id(0)] = s[get_local_id(0)] + 1.0f;
}
`

func newCtx(t *testing.T) (*cl.Context, *mali.GPU) {
	t.Helper()
	gpu := mali.New()
	return cl.NewContext(cpu.New(1), gpu), gpu
}

func buildProgram(t *testing.T, ctx *cl.Context) *cl.Program {
	t.Helper()
	prog := ctx.CreateProgramWithSource(testKernel)
	if err := prog.Build(""); err != nil {
		t.Fatalf("Build: %v\n%s", err, prog.BuildLog())
	}
	return prog
}

func TestBufferLifecycle(t *testing.T) {
	ctx, _ := newCtx(t)
	b, err := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 256 {
		t.Errorf("Size = %d", b.Size())
	}
	raw, err := b.Bytes(0, 256)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] = 42
	again, _ := b.Bytes(0, 1)
	if again[0] != 42 {
		t.Error("Bytes must return a live view")
	}
	if _, err := b.Bytes(250, 16); err == nil {
		t.Error("out-of-range Bytes should fail")
	}
	b.Release()
}

func TestBufferErrors(t *testing.T) {
	ctx, _ := newCtx(t)
	if _, err := ctx.CreateBuffer(cl.MemReadWrite, 0, nil); !errors.Is(err, cl.ErrInvalidBufferSize) {
		t.Errorf("zero-size error = %v", err)
	}
	if _, err := ctx.CreateBuffer(cl.MemReadWrite, 4, make([]byte, 8)); !errors.Is(err, cl.ErrInvalidBufferSize) {
		t.Errorf("oversize host data error = %v", err)
	}
}

func TestCopyHostPtr(t *testing.T) {
	ctx, _ := newCtx(t)
	data := []byte{1, 2, 3, 4}
	b, err := ctx.CreateBuffer(cl.MemReadOnly|cl.MemCopyHostPtr, 4, data)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := b.Bytes(0, 4)
	for i := range data {
		if raw[i] != data[i] {
			t.Fatalf("copy-host-ptr contents = %v", raw)
		}
	}
}

func TestBuildFailure(t *testing.T) {
	ctx, _ := newCtx(t)
	prog := ctx.CreateProgramWithSource("__kernel void broken( {")
	err := prog.Build("")
	if !errors.Is(err, cl.ErrBuildFailure) {
		t.Fatalf("Build error = %v", err)
	}
	if prog.BuildLog() == "" {
		t.Error("build log should carry diagnostics")
	}
	if _, err := prog.CreateKernel("broken"); err == nil {
		t.Error("CreateKernel on unbuilt program should fail")
	}
}

func TestBuildOptionsSelectTypes(t *testing.T) {
	ctx, _ := newCtx(t)
	prog := ctx.CreateProgramWithSource(`__kernel void k(__global REAL* p) { p[0] = (REAL)1; }`)
	if err := prog.Build("-DREAL=double"); err != nil {
		t.Fatalf("Build with -D: %v", err)
	}
	k, err := prog.CreateKernel("k")
	if err != nil {
		t.Fatal(err)
	}
	if !k.IR().UsesDouble {
		t.Error("-DREAL=double should produce a double kernel")
	}
}

func TestKernelNotFound(t *testing.T) {
	ctx, _ := newCtx(t)
	prog := buildProgram(t, ctx)
	if _, err := prog.CreateKernel("nope"); !errors.Is(err, cl.ErrKernelNotFound) {
		t.Fatalf("error = %v", err)
	}
}

func TestArgTypeChecking(t *testing.T) {
	ctx, _ := newCtx(t)
	prog := buildProgram(t, ctx)
	k, _ := prog.CreateKernel("scale")
	buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 64, nil)

	if err := k.SetArgInt(0, 1); !errors.Is(err, cl.ErrInvalidArgValue) {
		t.Errorf("int into buffer slot = %v", err)
	}
	if err := k.SetArgBuffer(1, buf); !errors.Is(err, cl.ErrInvalidArgValue) {
		t.Errorf("buffer into float slot = %v", err)
	}
	if err := k.SetArgFloat(2, 1); !errors.Is(err, cl.ErrInvalidArgValue) {
		t.Errorf("float into uint slot = %v", err)
	}
	if err := k.SetArgBuffer(9, buf); !errors.Is(err, cl.ErrInvalidArgIndex) {
		t.Errorf("index out of range = %v", err)
	}
	if err := k.SetArgLocal(0, 64); !errors.Is(err, cl.ErrInvalidArgValue) {
		t.Errorf("local into buffer slot = %v", err)
	}
}

func TestUnsetArgsRejected(t *testing.T) {
	ctx, gpu := newCtx(t)
	prog := buildProgram(t, ctx)
	k, _ := prog.CreateKernel("scale")
	q := ctx.CreateCommandQueue(gpu)
	if _, err := q.EnqueueNDRangeKernel(k, 1, []int{16}, []int{16}); !errors.Is(err, cl.ErrInvalidKernelArgs) {
		t.Fatalf("enqueue with unset args = %v", err)
	}
}

func TestEndToEndScale(t *testing.T) {
	ctx, gpu := newCtx(t)
	prog := buildProgram(t, ctx)
	k, _ := prog.CreateKernel("scale")
	const n = 64
	buf, _ := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, n*4, nil)
	raw, _ := buf.Bytes(0, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(float32(i)))
	}
	if err := k.SetArgBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgFloat(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgInt(2, n); err != nil {
		t.Fatal(err)
	}
	q := ctx.CreateCommandQueue(gpu)
	ev, err := q.EnqueueNDRangeKernel(k, 1, []int{n}, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Report == nil || ev.Seconds <= 0 {
		t.Fatal("event must carry a timing report")
	}
	for i := 0; i < n; i++ {
		got := math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
		if got != float32(2*i) {
			t.Fatalf("x[%d] = %v", i, got)
		}
	}
}

func TestLocalArgAndBarrierKernel(t *testing.T) {
	ctx, gpu := newCtx(t)
	prog := buildProgram(t, ctx)
	k, _ := prog.CreateKernel("withLocal")
	const n = 32
	buf, _ := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, n*4, nil)
	raw, _ := buf.Bytes(0, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(float32(i)))
	}
	if err := k.SetArgBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgLocal(1, 16*4); err != nil {
		t.Fatal(err)
	}
	q := ctx.CreateCommandQueue(gpu)
	if _, err := q.EnqueueNDRangeKernel(k, 1, []int{n}, []int{16}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
		if got != float32(i)+1 {
			t.Fatalf("x[%d] = %v", i, got)
		}
	}
}

func TestWriteReadBufferEventsCost(t *testing.T) {
	ctx, gpu := newCtx(t)
	buf, _ := ctx.CreateBuffer(cl.MemReadWrite, 1<<20, nil)
	q := ctx.CreateCommandQueue(gpu)
	data := make([]byte, 1<<20)
	data[7] = 99
	ev, err := q.EnqueueWriteBuffer(buf, 0, data)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Seconds <= 0 {
		t.Error("explicit copies must cost time (the paper's §III-A point)")
	}
	out := make([]byte, 1<<20)
	if _, err := q.EnqueueReadBuffer(buf, 0, out); err != nil {
		t.Fatal(err)
	}
	if out[7] != 99 {
		t.Error("read back wrong data")
	}
	// Map/unmap is the cheap path.
	view, mapEv, err := q.EnqueueMapBuffer(buf, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if view[7] != 99 {
		t.Error("mapped view wrong")
	}
	if mapEv.Seconds >= ev.Seconds {
		t.Error("mapping must be much cheaper than copying")
	}
	q.EnqueueUnmapMemObject(buf)
	if got := len(q.Events()); got != 4 {
		t.Errorf("events recorded = %d, want 4", got)
	}
	q.ResetEvents()
	if len(q.Events()) != 0 {
		t.Error("ResetEvents failed")
	}
}

func TestDriverDefaultLocalSize(t *testing.T) {
	ctx, gpu := newCtx(t)
	prog := buildProgram(t, ctx)
	k, _ := prog.CreateKernel("scale")
	buf, _ := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, 128*4, nil)
	if err := k.SetArgBuffer(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgFloat(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := k.SetArgInt(2, 128); err != nil {
		t.Fatal(err)
	}
	q := ctx.CreateCommandQueue(gpu)
	// nil local size: the driver heuristic must pick something valid.
	if _, err := q.EnqueueNDRangeKernel(k, 1, []int{128}, nil); err != nil {
		t.Fatalf("driver-default local size failed: %v", err)
	}
}

func TestInvalidWorkGroupSize(t *testing.T) {
	ctx, gpu := newCtx(t)
	prog := buildProgram(t, ctx)
	k, _ := prog.CreateKernel("scale")
	buf, _ := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, 64, nil)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(k.SetArgBuffer(0, buf))
	must(k.SetArgFloat(1, 1))
	must(k.SetArgInt(2, 16))
	q := ctx.CreateCommandQueue(gpu)
	// 100 not divisible by 32.
	if _, err := q.EnqueueNDRangeKernel(k, 1, []int{100}, []int{32}); err == nil {
		t.Fatal("indivisible local size must be rejected")
	}
	// Work-group larger than device max (256 on Mali-T604).
	if _, err := q.EnqueueNDRangeKernel(k, 1, []int{512}, []int{512}); err == nil {
		t.Fatal("oversized work-group must be rejected")
	}
}
