package cl_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"maligo/internal/cl"
	"maligo/internal/mali"
	"maligo/internal/obs"
)

// runObserved executes a fixed command sequence (write, ndrange, map,
// unmap, read) on a fresh context with the given worker count and
// returns the queue.
func runObserved(t *testing.T, workers int) (*cl.Context, *cl.CommandQueue) {
	t.Helper()
	gpu := mali.New()
	ctx := cl.NewContextWith(cl.WithDevices(gpu), cl.WithWorkers(workers))
	t.Cleanup(ctx.Close)
	prog := ctx.CreateProgramWithSource(testKernel)
	if err := prog.Build(""); err != nil {
		t.Fatalf("Build: %v", err)
	}
	k, _ := prog.CreateKernel("scale")
	const n = 256
	host := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(host[i*4:], math.Float32bits(float32(i)))
	}
	buf, err := ctx.CreateBuffer(cl.MemReadWrite, n*4, nil)
	if err != nil {
		t.Fatal(err)
	}
	k.SetArgBuffer(0, buf)
	k.SetArgFloat(1, 3.0)
	k.SetArgInt(2, n)

	q := ctx.CreateCommandQueue(gpu)
	if _, err := q.EnqueueWriteBuffer(buf, 0, host); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRangeKernel(k, 1, []int{n}, []int{64}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := q.EnqueueMapBuffer(buf, 0, n*4); err != nil {
		t.Fatal(err)
	}
	q.EnqueueUnmapMemObject(buf)
	out := make([]byte, n*4)
	if _, err := q.EnqueueReadBuffer(buf, 0, out); err != nil {
		t.Fatal(err)
	}
	return ctx, q
}

// TestEventTimestampsMonotone checks the OpenCL profiling invariant
// QUEUED <= SUBMIT <= START <= END for every command kind, and that
// consecutive events tile the in-order queue's timeline exactly.
func TestEventTimestampsMonotone(t *testing.T) {
	_, q := runObserved(t, 1)
	events := q.Events()
	if len(events) != 5 {
		t.Fatalf("recorded %d events, want 5", len(events))
	}
	prevEnd := 0.0
	for i, ev := range events {
		if ev.Seq != i {
			t.Errorf("event %d: Seq = %d", i, ev.Seq)
		}
		if ev.Queued != prevEnd {
			t.Errorf("event %d (%s): queued %g != previous end %g", i, ev.Kind, ev.Queued, prevEnd)
		}
		if ev.Submitted < ev.Queued || ev.Started < ev.Submitted || ev.Ended < ev.Started {
			t.Errorf("event %d (%s): non-monotone timestamps %g/%g/%g/%g",
				i, ev.Kind, ev.Queued, ev.Submitted, ev.Started, ev.Ended)
		}
		if ev.Ended != ev.Queued+ev.Seconds {
			t.Errorf("event %d (%s): end %g != queued %g + seconds %g", i, ev.Kind, ev.Ended, ev.Queued, ev.Seconds)
		}
		prevEnd = ev.Ended
	}
	ndr := events[1]
	if ndr.Kind != "ndrange" || ndr.Name != "scale" {
		t.Errorf("event 1 = %s/%s, want ndrange/scale", ndr.Kind, ndr.Name)
	}
	if ndr.Started == ndr.Submitted {
		t.Error("ndrange START must trail SUBMIT by the GPU dispatch overhead")
	}
	if ndr.HostSeconds <= 0 {
		t.Error("ndrange must record host wall-clock cost")
	}
}

// TestTimestampsDeterministicSerialVsPool checks the profiling
// timeline is bit-identical whether work-groups ran serially or on
// the worker pool.
func TestTimestampsDeterministicSerialVsPool(t *testing.T) {
	_, qs := runObserved(t, 1)
	_, qp := runObserved(t, 4)
	se, pe := qs.Events(), qp.Events()
	if len(se) != len(pe) {
		t.Fatalf("event counts differ: %d vs %d", len(se), len(pe))
	}
	for i := range se {
		s, p := se[i], pe[i]
		if s.Queued != p.Queued || s.Submitted != p.Submitted ||
			s.Started != p.Started || s.Ended != p.Ended {
			t.Errorf("event %d (%s): serial %g/%g/%g/%g vs pool %g/%g/%g/%g",
				i, s.Kind, s.Queued, s.Submitted, s.Started, s.Ended,
				p.Queued, p.Submitted, p.Started, p.Ended)
		}
	}
}

// TestResetEventsRewindsClock checks a measured timeline starts at
// t=0 after ResetEvents, as the harness's warm-up pattern requires.
func TestResetEventsRewindsClock(t *testing.T) {
	_, q := runObserved(t, 1)
	q.ResetEvents()
	buf, err := q.Events(), error(nil)
	_ = err
	if len(buf) != 0 {
		t.Fatalf("events after reset: %d", len(buf))
	}
	ctx2, q2 := runObserved(t, 1)
	_ = ctx2
	q2.ResetEvents()
	b, err := ctx2.CreateBuffer(cl.MemReadWrite, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := q2.EnqueueWriteBuffer(b, 0, make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Queued != 0 {
		t.Errorf("first event after reset queued at %g, want 0", ev.Queued)
	}
}

// TestTraceExportGolden locks the Chrome-trace export of a fixed
// command sequence down to the byte. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/cl -run TraceExportGolden.
func TestTraceExportGolden(t *testing.T) {
	_, q := runObserved(t, 1)
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, q.Timeline()); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 6 { // 1 thread_name + 5 commands
		t.Errorf("trace has %d events, want 6", len(parsed.TraceEvents))
	}

	golden := filepath.Join("testdata", "trace_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace export drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestContextMetrics checks the registry accumulates enqueue counters
// and that callback gauges see live runtime state.
func TestContextMetrics(t *testing.T) {
	ctx, _ := runObserved(t, 2)
	snap := ctx.Metrics().Snapshot()
	if got := snap.Counter("cl.enqueues.ndrange"); got != 1 {
		t.Errorf("cl.enqueues.ndrange = %d", got)
	}
	if got := snap.Counter("cl.enqueues.write"); got != 1 {
		t.Errorf("cl.enqueues.write = %d", got)
	}
	if got := snap.Counter("cl.work_items"); got != 256 {
		t.Errorf("cl.work_items = %d", got)
	}
	if got := snap.Counter("cl.copy_bytes"); got != 2*256*4 {
		t.Errorf("cl.copy_bytes = %d", got)
	}
	if snap.Counter("cl.dram_bytes") == 0 {
		t.Error("cl.dram_bytes must be non-zero after an ndrange")
	}
	if snap.Gauge("arena.in_use_bytes") <= 0 {
		t.Error("arena.in_use_bytes gauge must see the live buffer")
	}
	if snap.Gauge("pool.workers") != 2 {
		t.Errorf("pool.workers = %g, want 2", snap.Gauge("pool.workers"))
	}
	if snap.Gauge("pool.jobs_done") <= 0 {
		t.Error("pool.jobs_done must count executed work-groups")
	}
	hr := snap.Gauge("device.mali_t604.l2_hit_rate")
	if hr <= 0 || hr > 1 {
		t.Errorf("device.mali_t604.l2_hit_rate = %g, want (0,1]", hr)
	}
	h, ok := snap.Histograms["cl.ndrange_seconds"]
	if !ok || h.Count != 1 {
		t.Errorf("cl.ndrange_seconds histogram = %+v", h)
	}
}

// TestQueueLineProfile checks hot-line attribution: the scale
// kernel's load/store line must dominate bytes moved.
func TestQueueLineProfile(t *testing.T) {
	gpu := mali.New()
	ctx := cl.NewContextWith(cl.WithDevices(gpu), cl.WithWorkers(2))
	defer ctx.Close()
	prog := ctx.CreateProgramWithSource(testKernel)
	if err := prog.Build(""); err != nil {
		t.Fatalf("Build: %v", err)
	}
	k, _ := prog.CreateKernel("scale")
	const n = 512
	buf, _ := ctx.CreateBuffer(cl.MemReadWrite, n*4, nil)
	k.SetArgBuffer(0, buf)
	k.SetArgFloat(1, 2.0)
	k.SetArgInt(2, n)
	q := ctx.CreateCommandQueue(gpu)
	if q.LineProfile() != nil {
		t.Error("line profile must be nil before SetLineProfile")
	}
	q.SetLineProfile(true)
	if _, err := q.EnqueueNDRangeKernel(k, 1, []int{n}, []int{64}); err != nil {
		t.Fatal(err)
	}
	top := q.LineProfile().Top(3)
	if len(top) == 0 {
		t.Fatal("line profile is empty")
	}
	// Line 5 of testKernel is "x[i] = x[i] * k": one 4-byte load and
	// one 4-byte store per work-item.
	if top[0].Line != 5 {
		t.Errorf("hottest line = %d, want 5 (the x[i] load/store)", top[0].Line)
	}
	if top[0].Bytes < n*8 {
		t.Errorf("hottest line moved %d bytes, want >= %d", top[0].Bytes, n*8)
	}
	if top[0].Reads == 0 || top[0].Writes == 0 {
		t.Errorf("hottest line stats = %+v, want reads and writes", top[0])
	}
}
