package cl_test

import (
	"testing"

	"maligo/internal/cl"
	"maligo/internal/cpu"
	"maligo/internal/mali"
	"maligo/internal/platform"
)

func TestGetDeviceInfo(t *testing.T) {
	gpu := mali.New()
	info := cl.GetDeviceInfo(gpu)
	if info.Type != "gpu" || info.ComputeUnits != platform.GPUCores {
		t.Errorf("GPU info = %+v", info)
	}
	if !info.FP64 || !info.UnifiedMemory || info.ProfileFullOrEmbedded != "FULL_PROFILE" {
		t.Error("Mali-T604 must report OpenCL Full Profile with FP64 and unified memory (the paper's premise)")
	}
	if info.MaxWorkGroupSize != platform.GPUMaxWorkGroupSize {
		t.Errorf("MaxWorkGroupSize = %d", info.MaxWorkGroupSize)
	}

	c := cl.GetDeviceInfo(cpu.New(2))
	if c.Type != "cpu" || c.ComputeUnits != 2 || c.ClockHz != platform.CPUFreqHz {
		t.Errorf("CPU info = %+v", c)
	}
}

func TestKernelWorkGroupInfo(t *testing.T) {
	gpu := mali.New()
	ctx := cl.NewContext(gpu)
	prog := ctx.CreateProgramWithSource(`
__kernel void k(__global float* p, __local float* s) {
    float priv[4];
    priv[0] = p[0];
    s[get_local_id(0)] = priv[0];
    barrier(1);
    __local float fixed[16];
    fixed[0] = s[0];
    p[0] = fixed[0];
}`)
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	k, err := prog.CreateKernel("k")
	if err != nil {
		t.Fatal(err)
	}
	info := k.WorkGroupInfo(gpu)
	if info.LocalMemBytes != 16*4 {
		t.Errorf("LocalMemBytes = %d, want 64 (static __local only)", info.LocalMemBytes)
	}
	if info.PrivateMemBytes != 4*4 {
		t.Errorf("PrivateMemBytes = %d, want 16", info.PrivateMemBytes)
	}
	if info.RegisterBytes <= 0 {
		t.Error("RegisterBytes must be positive on the GPU")
	}
	if info.PreferredWorkGroupSizeMultiple != 4 {
		t.Errorf("preferred multiple = %d", info.PreferredWorkGroupSizeMultiple)
	}
}

func TestEventProfiling(t *testing.T) {
	ctx, gpu := newCtx(t)
	prog := buildProgram(t, ctx)
	k, _ := prog.CreateKernel("scale")
	buf, _ := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, 1024*4, nil)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(k.SetArgBuffer(0, buf))
	must(k.SetArgFloat(1, 2))
	must(k.SetArgInt(2, 1024))
	q := ctx.CreateCommandQueue(gpu)
	ev1, err := q.EnqueueNDRangeKernel(k, 1, []int{1024}, []int{64})
	must(err)
	ev2, err := q.EnqueueNDRangeKernel(k, 1, []int{1024}, []int{64})
	must(err)

	p1, err := q.Profiling(ev1)
	must(err)
	p2, err := q.Profiling(ev2)
	must(err)
	if p1.QueuedNs != 0 {
		t.Errorf("first event queued at %d", p1.QueuedNs)
	}
	if p1.SubmitNs != p1.QueuedNs {
		t.Errorf("in-order queue submits immediately: submit %d != queued %d", p1.SubmitNs, p1.QueuedNs)
	}
	if p1.StartNs <= p1.SubmitNs {
		t.Error("GPU dispatch overhead must separate SUBMIT from START")
	}
	if p1.EndNs <= p1.StartNs {
		t.Error("event must have positive execution duration")
	}
	if p2.QueuedNs != p1.EndNs {
		t.Errorf("in-order queue: second queued %d != first end %d", p2.QueuedNs, p1.EndNs)
	}
	if _, err := q.Profiling(&cl.Event{}); err == nil {
		t.Error("unknown event must error")
	}
}

func TestEmbeddedProfileDeviceInfo(t *testing.T) {
	info := cl.GetDeviceInfo(mali.NewEmbeddedProfile())
	if info.FP64 || info.ProfileFullOrEmbedded != "EMBEDDED_PROFILE" {
		t.Errorf("embedded profile info = %+v", info)
	}
}
