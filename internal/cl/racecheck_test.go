package cl_test

import (
	"testing"

	"maligo/internal/cl"
)

const raceCheckKernels = `
__kernel void shift(__global float* out, __local float* tile) {
    int lid = get_local_id(0);
    tile[lid] = (float)lid;
    out[get_global_id(0)] = tile[lid + 1];
}

__kernel void shift_fixed(__global float* out, __local float* tile) {
    int lid = get_local_id(0);
    tile[lid] = (float)lid;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = tile[lid + 1];
}
`

// TestEnqueueRaceCheck drives the full two-tier race check through the
// runtime: the static analyzer flags the unsynchronized neighbour
// read at build analysis time, the VM observes it dynamically during
// the enqueue, and the event reports the cross-checked result.
func TestEnqueueRaceCheck(t *testing.T) {
	ctx, gpu := newCtx(t)
	prog := ctx.CreateProgramWithSource(raceCheckKernels)
	if err := prog.Build(""); err != nil {
		t.Fatalf("Build: %v\n%s", err, prog.BuildLog())
	}

	const n, local = 32, 16
	buf, _ := ctx.CreateBuffer(cl.MemReadWrite|cl.MemAllocHostPtr, n*4, nil)
	setup := func(name string) *cl.Kernel {
		k, err := prog.CreateKernel(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.SetArgBuffer(0, buf); err != nil {
			t.Fatal(err)
		}
		if err := k.SetArgLocal(1, (local+1)*4); err != nil {
			t.Fatal(err)
		}
		return k
	}

	q := ctx.CreateCommandQueue(gpu)

	// Off by default: no result attached.
	ev, err := q.EnqueueNDRangeKernel(setup("shift"), 1, []int{n}, []int{local})
	if err != nil {
		t.Fatal(err)
	}
	if ev.RaceCheck != nil {
		t.Fatal("race check ran without SetRaceCheck(true)")
	}

	q.SetRaceCheck(true)
	ev, err = q.EnqueueNDRangeKernel(setup("shift"), 1, []int{n}, []int{local})
	if err != nil {
		t.Fatal(err)
	}
	rc := ev.RaceCheck
	if rc == nil {
		t.Fatal("race check enabled but event has no result")
	}
	if len(rc.Static) == 0 {
		t.Error("static tier missed the unsynchronized neighbour read")
	}
	if len(rc.Dynamic) == 0 {
		t.Error("dynamic tier missed the race during execution")
	}
	if len(rc.Confirmed()) == 0 {
		t.Errorf("tiers did not agree on any race: static %v, dynamic %v", rc.Static, rc.Dynamic)
	}
	for _, d := range rc.Static {
		if d.Kernel != "shift" {
			t.Errorf("static diagnostic for wrong kernel: %v", d)
		}
	}

	// The barrier-fixed variant must come back clean on both tiers.
	ev, err = q.EnqueueNDRangeKernel(setup("shift_fixed"), 1, []int{n}, []int{local})
	if err != nil {
		t.Fatal(err)
	}
	rc = ev.RaceCheck
	if rc == nil {
		t.Fatal("race check enabled but event has no result")
	}
	if len(rc.Static) != 0 || len(rc.Dynamic) != 0 {
		t.Errorf("barrier-synchronized kernel flagged: static %v, dynamic %v", rc.Static, rc.Dynamic)
	}
}

// TestProgramDiagnostics checks the lazily-computed per-program lint
// report is available through the runtime and memoized.
func TestProgramDiagnostics(t *testing.T) {
	ctx, _ := newCtx(t)
	prog := ctx.CreateProgramWithSource(raceCheckKernels)
	if prog.Diagnostics() != nil {
		t.Fatal("diagnostics before Build must be nil")
	}
	if err := prog.Build(""); err != nil {
		t.Fatal(err)
	}
	d1 := prog.Diagnostics()
	found := false
	for _, d := range d1 {
		if d.Pass == "race" && d.Kernel == "shift" {
			found = true
		}
	}
	if !found {
		t.Errorf("race diagnostic missing from program diagnostics: %v", d1)
	}
	d2 := prog.Diagnostics()
	if len(d1) != len(d2) {
		t.Error("diagnostics not memoized")
	}
}
