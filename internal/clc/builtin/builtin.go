// Package builtin enumerates the OpenCL C built-in functions known to
// the clc compiler and the VM. The set covers work-item queries,
// synchronization, math, common integer/geometric functions, vector
// load/store, and atomics — everything used by the benchmark kernels
// plus room for user kernels.
package builtin

import "sort"

// ID identifies a built-in function.
type ID int

// Built-in function IDs.
const (
	Invalid ID = iota

	// Work-item functions.
	GetWorkDim
	GetGlobalID
	GetLocalID
	GetGroupID
	GetGlobalSize
	GetLocalSize
	GetNumGroups
	GetGlobalOffset

	// Synchronization.
	Barrier
	MemFence

	// Math (element-wise on scalars and vectors).
	Sqrt
	Rsqrt
	Cbrt
	Exp
	Exp2
	Log
	Log2
	Sin
	Cos
	Tan
	Fabs
	Floor
	Ceil
	Round
	Trunc
	Pow
	Hypot
	Fmin
	Fmax
	Fmod
	Fma
	Mad
	NativeSin
	NativeCos
	NativeExp
	NativeLog
	NativeSqrt
	NativeRsqrt
	NativeRecip
	NativeDivide

	// Common/integer functions.
	MinF // fmin-like via min() on floats
	Min
	Max
	Abs
	Clamp
	Mix
	Step
	Select

	// Geometric.
	Dot
	Length
	Distance
	Normalize

	// Vector data (handled specially by the code generator; listed so
	// sema can recognize the names).
	Vload2
	Vload3
	Vload4
	Vload8
	Vload16
	Vstore2
	Vstore3
	Vstore4
	Vstore8
	Vstore16

	// Atomics (global and local int/uint, per OpenCL 1.1 + Mali HW).
	AtomicAdd
	AtomicSub
	AtomicInc
	AtomicDec
	AtomicXchg
	AtomicMin
	AtomicMax
	AtomicAnd
	AtomicOr
	AtomicXor
	AtomicCmpXchg

	numIDs
)

// names maps source spellings to IDs. Conversions (convert_<type>) and
// as_<type> reinterpret casts are recognized by prefix in sema, not
// listed here.
var names = map[string]ID{
	"get_work_dim":      GetWorkDim,
	"get_global_id":     GetGlobalID,
	"get_local_id":      GetLocalID,
	"get_group_id":      GetGroupID,
	"get_global_size":   GetGlobalSize,
	"get_local_size":    GetLocalSize,
	"get_num_groups":    GetNumGroups,
	"get_global_offset": GetGlobalOffset,

	"barrier":   Barrier,
	"mem_fence": MemFence,

	"sqrt": Sqrt, "rsqrt": Rsqrt, "cbrt": Cbrt,
	"exp": Exp, "exp2": Exp2, "log": Log, "log2": Log2,
	"sin": Sin, "cos": Cos, "tan": Tan,
	"fabs": Fabs, "floor": Floor, "ceil": Ceil, "round": Round, "trunc": Trunc,
	"pow": Pow, "hypot": Hypot,
	"fmin": Fmin, "fmax": Fmax, "fmod": Fmod,
	"fma": Fma, "mad": Mad,
	"native_sin": NativeSin, "native_cos": NativeCos,
	"native_exp": NativeExp, "native_log": NativeLog,
	"native_sqrt": NativeSqrt, "native_rsqrt": NativeRsqrt,
	"native_recip": NativeRecip, "native_divide": NativeDivide,

	"min": Min, "max": Max, "abs": Abs,
	"clamp": Clamp, "mix": Mix, "step": Step, "select": Select,

	"dot": Dot, "length": Length, "distance": Distance, "normalize": Normalize,

	"vload2": Vload2, "vload3": Vload3, "vload4": Vload4, "vload8": Vload8, "vload16": Vload16,
	"vstore2": Vstore2, "vstore3": Vstore3, "vstore4": Vstore4, "vstore8": Vstore8, "vstore16": Vstore16,

	"atomic_add": AtomicAdd, "atom_add": AtomicAdd,
	"atomic_sub": AtomicSub, "atom_sub": AtomicSub,
	"atomic_inc": AtomicInc, "atom_inc": AtomicInc,
	"atomic_dec": AtomicDec, "atom_dec": AtomicDec,
	"atomic_xchg": AtomicXchg, "atom_xchg": AtomicXchg,
	"atomic_min": AtomicMin, "atom_min": AtomicMin,
	"atomic_max": AtomicMax, "atom_max": AtomicMax,
	"atomic_and": AtomicAnd, "atom_and": AtomicAnd,
	"atomic_or": AtomicOr, "atom_or": AtomicOr,
	"atomic_xor": AtomicXor, "atom_xor": AtomicXor,
	"atomic_cmpxchg": AtomicCmpXchg, "atom_cmpxchg": AtomicCmpXchg,
}

var idNames = func() map[ID]string {
	// Sorted so aliases resolve the same way every process (atom_or
	// and atomic_or both name AtomicOr; the first in sorted order wins).
	sorted := make([]string, 0, len(names))
	for n := range names { // maligo:allow maporder sorted on the next line
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	m := make(map[ID]string, numIDs)
	for _, n := range sorted {
		if _, ok := m[names[n]]; !ok {
			m[names[n]] = n
		}
	}
	return m
}()

// Lookup resolves a function name to a builtin ID; Invalid if unknown.
func Lookup(name string) ID { return names[name] }

// String returns the canonical source spelling of the builtin.
func (id ID) String() string {
	if n, ok := idNames[id]; ok {
		return n
	}
	return "builtin(?)"
}

// IsWorkItemQuery reports whether the builtin reads the work-item
// coordinate state (and therefore takes a dimension argument).
func (id ID) IsWorkItemQuery() bool {
	switch id {
	case GetGlobalID, GetLocalID, GetGroupID, GetGlobalSize, GetLocalSize, GetNumGroups, GetGlobalOffset:
		return true
	}
	return false
}

// IsAtomic reports whether the builtin is an atomic memory operation.
func (id ID) IsAtomic() bool { return id >= AtomicAdd && id <= AtomicCmpXchg }

// IsVload reports whether the builtin is a vector load, returning its
// width.
func (id ID) IsVload() (int, bool) {
	switch id {
	case Vload2:
		return 2, true
	case Vload3:
		return 3, true
	case Vload4:
		return 4, true
	case Vload8:
		return 8, true
	case Vload16:
		return 16, true
	}
	return 0, false
}

// IsVstore reports whether the builtin is a vector store, returning
// its width.
func (id ID) IsVstore() (int, bool) {
	switch id {
	case Vstore2:
		return 2, true
	case Vstore3:
		return 3, true
	case Vstore4:
		return 4, true
	case Vstore8:
		return 8, true
	case Vstore16:
		return 16, true
	}
	return 0, false
}

// IsTranscendental reports whether the builtin maps to the long-latency
// transcendental unit in the device timing models.
func (id ID) IsTranscendental() bool {
	switch id {
	case Sqrt, Rsqrt, Cbrt, Exp, Exp2, Log, Log2, Sin, Cos, Tan, Pow, Hypot,
		NativeSin, NativeCos, NativeExp, NativeLog, NativeSqrt, NativeRsqrt,
		NativeRecip, NativeDivide, Length, Distance, Normalize:
		return true
	}
	return false
}
