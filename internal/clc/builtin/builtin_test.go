package builtin

import "testing"

func TestLookup(t *testing.T) {
	cases := map[string]ID{
		"get_global_id": GetGlobalID,
		"barrier":       Barrier,
		"sqrt":          Sqrt,
		"rsqrt":         Rsqrt,
		"mad":           Mad,
		"vload4":        Vload4,
		"vstore16":      Vstore16,
		"atomic_add":    AtomicAdd,
		"atom_add":      AtomicAdd, // 1.0 spelling
		"dot":           Dot,
		"nonsense":      Invalid,
		"convert_float": Invalid, // conversions resolved by prefix in sema
	}
	for name, want := range cases {
		if got := Lookup(name); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestClassifiers(t *testing.T) {
	for _, id := range []ID{GetGlobalID, GetLocalID, GetGroupID, GetGlobalSize, GetLocalSize, GetNumGroups} {
		if !id.IsWorkItemQuery() {
			t.Errorf("%v should be a work-item query", id)
		}
	}
	if Barrier.IsWorkItemQuery() || Sqrt.IsWorkItemQuery() {
		t.Error("misclassified work-item query")
	}
	for _, id := range []ID{AtomicAdd, AtomicSub, AtomicInc, AtomicDec, AtomicXchg, AtomicMin, AtomicMax, AtomicAnd, AtomicOr, AtomicXor, AtomicCmpXchg} {
		if !id.IsAtomic() {
			t.Errorf("%v should be atomic", id)
		}
	}
	if Mad.IsAtomic() {
		t.Error("mad is not atomic")
	}
	for _, id := range []ID{Sqrt, Rsqrt, Exp, Log, Sin, Cos, Pow, NativeSqrt, Length, Normalize} {
		if !id.IsTranscendental() {
			t.Errorf("%v should be transcendental", id)
		}
	}
	if Fabs.IsTranscendental() || Mad.IsTranscendental() {
		t.Error("cheap ops misclassified as transcendental")
	}
}

func TestVloadVstoreWidths(t *testing.T) {
	vl := map[ID]int{Vload2: 2, Vload3: 3, Vload4: 4, Vload8: 8, Vload16: 16}
	for id, want := range vl {
		if w, ok := id.IsVload(); !ok || w != want {
			t.Errorf("%v IsVload = %d,%v", id, w, ok)
		}
		if _, ok := id.IsVstore(); ok {
			t.Errorf("%v should not be a vstore", id)
		}
	}
	vs := map[ID]int{Vstore2: 2, Vstore3: 3, Vstore4: 4, Vstore8: 8, Vstore16: 16}
	for id, want := range vs {
		if w, ok := id.IsVstore(); !ok || w != want {
			t.Errorf("%v IsVstore = %d,%v", id, w, ok)
		}
	}
	if _, ok := Sqrt.IsVload(); ok {
		t.Error("sqrt is not a vload")
	}
}

func TestString(t *testing.T) {
	if GetGlobalID.String() != "get_global_id" {
		t.Errorf("String() = %q", GetGlobalID.String())
	}
	if ID(9999).String() != "builtin(?)" {
		t.Errorf("unknown id String() = %q", ID(9999).String())
	}
}
