package types

import (
	"testing"
	"testing/quick"

	"maligo/internal/clc/ast"
)

func TestScalarSizes(t *testing.T) {
	cases := map[Base]int{
		Bool: 1, Char: 1, UChar: 1, Short: 2, UShort: 2,
		Int: 4, UInt: 4, Float: 4, Long: 8, ULong: 8, Double: 8,
	}
	for b, want := range cases {
		if got := b.Size(); got != want {
			t.Errorf("%v.Size() = %d, want %d", b, got, want)
		}
	}
}

func TestVectorSizesAndVec3Padding(t *testing.T) {
	if got := Vector(Float, 4).Size(); got != 16 {
		t.Errorf("float4 size = %d", got)
	}
	if got := Vector(Float, 3).Size(); got != 16 {
		t.Errorf("float3 must occupy float4 storage, size = %d", got)
	}
	if got := Vector(Double, 8).Size(); got != 64 {
		t.Errorf("double8 size = %d", got)
	}
	if got := Vector(Float, 1); !got.IsScalar() {
		t.Error("width-1 vector should collapse to scalar")
	}
}

func TestByName(t *testing.T) {
	cases := map[string]string{
		"float":    "float",
		"float4":   "float4",
		"double2":  "double2",
		"uint16":   "uint16",
		"size_t":   "ulong",
		"intptr_t": "long",
		"void":     "void",
	}
	for name, want := range cases {
		ty := ByName(name)
		if ty == nil {
			t.Errorf("ByName(%q) = nil", name)
			continue
		}
		if ty.String() != want {
			t.Errorf("ByName(%q) = %s, want %s", name, ty, want)
		}
	}
	for _, bad := range []string{"float5", "bool4", "size_t2", "quux", "17"} {
		if ty := ByName(bad); ty != nil {
			t.Errorf("ByName(%q) = %s, want nil", bad, ty)
		}
	}
}

func TestPromote(t *testing.T) {
	cases := []struct {
		a, b, want string
	}{
		{"int", "int", "int"},
		{"int", "float", "float"},
		{"float", "double", "double"},
		{"int", "uint", "uint"},
		{"char", "char", "int"}, // integer promotion
		{"short", "ushort", "int"},
		{"long", "int", "long"},
		{"float4", "float", "float4"},
		{"float", "float4", "float4"},
		{"int4", "float4", "float4"},
		{"double4", "float4", "double4"},
	}
	for _, c := range cases {
		got, err := Promote(ByName(c.a), ByName(c.b))
		if err != nil {
			t.Errorf("Promote(%s, %s): %v", c.a, c.b, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("Promote(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
	if _, err := Promote(ByName("float4"), ByName("float2")); err == nil {
		t.Error("mixed vector widths must not promote")
	}
	if _, err := Promote(Pointer(FloatType, ast.GlobalSpace, false, false), IntType); err == nil {
		t.Error("pointers must not promote")
	}
}

func TestEqual(t *testing.T) {
	if !Vector(Float, 4).Equal(Vector(Float, 4)) {
		t.Error("identical vectors must be equal")
	}
	if Vector(Float, 4).Equal(Vector(Float, 2)) {
		t.Error("different widths must differ")
	}
	p1 := Pointer(FloatType, ast.GlobalSpace, true, false)
	p2 := Pointer(FloatType, ast.GlobalSpace, false, true)
	if !p1.Equal(p2) {
		t.Error("pointer equality must ignore const/restrict")
	}
	p3 := Pointer(FloatType, ast.LocalSpace, false, false)
	if p1.Equal(p3) {
		t.Error("pointer equality must respect address space")
	}
}

func TestString(t *testing.T) {
	cases := map[string]*Type{
		"float":              FloatType,
		"double4":            Vector(Double, 4),
		"__global float*":    Pointer(FloatType, ast.GlobalSpace, false, false),
		"__local const int*": Pointer(IntType, ast.LocalSpace, true, false),
		"void":               VoidType,
	}
	for want, ty := range cases {
		if got := ty.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !FloatType.IsFloatArith() || FloatType.IsIntegerArith() {
		t.Error("float predicates wrong")
	}
	if !IntType.IsIntegerArith() || IntType.IsFloatArith() {
		t.Error("int predicates wrong")
	}
	ptr := Pointer(FloatType, ast.GlobalSpace, false, false)
	if ptr.IsArith() || !ptr.IsPointer() {
		t.Error("pointer predicates wrong")
	}
	if !VoidType.IsVoid() {
		t.Error("void predicate wrong")
	}
}

// Property: Promote is commutative in its result type.
func TestPromoteCommutativeProperty(t *testing.T) {
	bases := []Base{Bool, Char, UChar, Short, UShort, Int, UInt, Long, ULong, Float, Double}
	widths := []int{1, 2, 4, 8}
	f := func(ai, aw, bi, bw uint8) bool {
		a := Vector(bases[int(ai)%len(bases)], widths[int(aw)%len(widths)])
		b := Vector(bases[int(bi)%len(bases)], widths[int(bw)%len(widths)])
		r1, err1 := Promote(a, b)
		r2, err2 := Promote(b, a)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return r1.Equal(r2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the promoted type's rank is at least each operand's rank
// and its width the max of the operand widths (when widths agree or
// one side is scalar).
func TestPromoteMonotoneProperty(t *testing.T) {
	bases := []Base{Bool, Char, UChar, Short, UShort, Int, UInt, Long, ULong, Float, Double}
	widths := []int{1, 2, 4, 8, 16}
	f := func(ai, bi, wi uint8, scalarLeft bool) bool {
		w := widths[int(wi)%len(widths)]
		a := Vector(bases[int(ai)%len(bases)], w)
		b := Vector(bases[int(bi)%len(bases)], w)
		if scalarLeft {
			a = Scalar(a.Base)
		}
		r, err := Promote(a, b)
		if err != nil {
			return false
		}
		if r.Base.Rank() < a.Base.Rank() || r.Base.Rank() < b.Base.Rank() {
			return false
		}
		return widthOf(r) == w || (scalarLeft && widthOf(r) == widthOf(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func widthOf(t *Type) int {
	if t.IsVector() {
		return t.Width
	}
	return 1
}
