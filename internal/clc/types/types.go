// Package types defines the semantic type system of the clc dialect:
// OpenCL C scalar types, vector types of width 2/3/4/8/16, and
// address-space-qualified pointers.
package types

import (
	"fmt"

	"maligo/internal/clc/ast"
)

// Base identifies a scalar element type.
type Base int

// Scalar base types. Size-related semantics follow OpenCL C 1.1
// (char 1, short 2, int/float 4, long/ulong/double/size_t 8 bytes).
const (
	Invalid Base = iota
	Void
	Bool
	Char
	UChar
	Short
	UShort
	Int
	UInt
	Long
	ULong
	Float
	Double
)

var baseNames = [...]string{
	Invalid: "invalid", Void: "void", Bool: "bool",
	Char: "char", UChar: "uchar", Short: "short", UShort: "ushort",
	Int: "int", UInt: "uint", Long: "long", ULong: "ulong",
	Float: "float", Double: "double",
}

func (b Base) String() string {
	if int(b) < len(baseNames) {
		return baseNames[b]
	}
	return fmt.Sprintf("Base(%d)", int(b))
}

// IsInteger reports whether b is an integer type (bool counts as an
// integer of size 1 for arithmetic purposes, as in C).
func (b Base) IsInteger() bool { return b >= Bool && b <= ULong }

// IsFloat reports whether b is float or double.
func (b Base) IsFloat() bool { return b == Float || b == Double }

// IsSigned reports whether b is a signed integer type.
func (b Base) IsSigned() bool {
	switch b {
	case Char, Short, Int, Long:
		return true
	}
	return false
}

// Size returns the size in bytes of the scalar type.
func (b Base) Size() int {
	switch b {
	case Bool, Char, UChar:
		return 1
	case Short, UShort:
		return 2
	case Int, UInt, Float:
		return 4
	case Long, ULong, Double:
		return 8
	}
	return 0
}

// Rank orders types for usual arithmetic conversions.
func (b Base) Rank() int {
	switch b {
	case Bool:
		return 1
	case Char, UChar:
		return 2
	case Short, UShort:
		return 3
	case Int, UInt:
		return 4
	case Long, ULong:
		return 5
	case Float:
		return 6
	case Double:
		return 7
	}
	return 0
}

// Kind discriminates the structural form of a Type.
type Kind int

// Structural kinds.
const (
	KScalar Kind = iota
	KVector
	KPointer
	KVoid
)

// Type is a semantic type. Types are immutable; use the constructors.
type Type struct {
	Kind     Kind
	Base     Base             // element base for scalars/vectors; pointee base is in Elem
	Width    int              // vector width (1 for scalars)
	Elem     *Type            // pointee type for pointers
	Space    ast.AddressSpace // address space for pointers
	Const    bool             // pointee constness for pointers
	Restrict bool
}

// Prebuilt singletons for common scalar types.
var (
	VoidType   = &Type{Kind: KVoid, Base: Void}
	BoolType   = Scalar(Bool)
	IntType    = Scalar(Int)
	UIntType   = Scalar(UInt)
	LongType   = Scalar(Long)
	ULongType  = Scalar(ULong)
	FloatType  = Scalar(Float)
	DoubleType = Scalar(Double)
)

// Scalar returns the scalar type with base b.
func Scalar(b Base) *Type { return &Type{Kind: KScalar, Base: b, Width: 1} }

// Vector returns the vector type with base b and the given width.
func Vector(b Base, width int) *Type {
	if width == 1 {
		return Scalar(b)
	}
	return &Type{Kind: KVector, Base: b, Width: width}
}

// Pointer returns a pointer type to elem in the given address space.
func Pointer(elem *Type, space ast.AddressSpace, isConst, restrict bool) *Type {
	return &Type{Kind: KPointer, Width: 1, Elem: elem, Space: space, Const: isConst, Restrict: restrict}
}

// IsScalar reports whether t is a scalar arithmetic type.
func (t *Type) IsScalar() bool { return t.Kind == KScalar }

// IsVector reports whether t is a vector type.
func (t *Type) IsVector() bool { return t.Kind == KVector }

// IsPointer reports whether t is a pointer type.
func (t *Type) IsPointer() bool { return t.Kind == KPointer }

// IsVoid reports whether t is void.
func (t *Type) IsVoid() bool { return t.Kind == KVoid }

// IsArith reports whether t is a scalar or vector arithmetic type.
func (t *Type) IsArith() bool { return t.Kind == KScalar || t.Kind == KVector }

// IsIntegerArith reports whether t is an integer scalar or vector.
func (t *Type) IsIntegerArith() bool { return t.IsArith() && t.Base.IsInteger() }

// IsFloatArith reports whether t is a floating scalar or vector.
func (t *Type) IsFloatArith() bool { return t.IsArith() && t.Base.IsFloat() }

// Size returns the size of the type in bytes. Per OpenCL, 3-component
// vectors occupy the storage of 4 components. Pointers are 8 bytes
// (the simulated devices use a 64-bit virtual address encoding).
func (t *Type) Size() int {
	switch t.Kind {
	case KScalar:
		return t.Base.Size()
	case KVector:
		w := t.Width
		if w == 3 {
			w = 4
		}
		return w * t.Base.Size()
	case KPointer:
		return 8
	}
	return 0
}

// Align returns the required alignment of the type in bytes (equal to
// its size for scalars and vectors, as in OpenCL).
func (t *Type) Align() int {
	if t.Kind == KPointer {
		return 8
	}
	a := t.Size()
	if a == 0 {
		a = 1
	}
	return a
}

// WithWidth returns the vector (or scalar) type with the same base and
// the given width.
func (t *Type) WithWidth(width int) *Type { return Vector(t.Base, width) }

// ScalarOf returns the scalar element type of a scalar or vector type.
func (t *Type) ScalarOf() *Type { return Scalar(t.Base) }

// Equal reports structural type equality, ignoring const/restrict
// qualifiers on pointers.
func (t *Type) Equal(o *Type) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KScalar, KVector:
		return t.Base == o.Base && t.Width == o.Width
	case KPointer:
		return t.Space == o.Space && t.Elem.Equal(o.Elem)
	case KVoid:
		return true
	}
	return false
}

// String renders the type in OpenCL C syntax.
func (t *Type) String() string {
	switch t.Kind {
	case KVoid:
		return "void"
	case KScalar:
		return t.Base.String()
	case KVector:
		return fmt.Sprintf("%s%d", t.Base, t.Width)
	case KPointer:
		q := ""
		if t.Space != ast.PrivateSpace {
			q = t.Space.String() + " "
		}
		if t.Const {
			q += "const "
		}
		return fmt.Sprintf("%s%s*", q, t.Elem)
	}
	return "invalid"
}

// baseByName maps OpenCL C scalar type names to bases. size_t and
// friends are 64-bit on the simulated devices.
var baseByName = map[string]Base{
	"void": Void, "bool": Bool,
	"char": Char, "uchar": UChar, "short": Short, "ushort": UShort,
	"int": Int, "uint": UInt, "long": Long, "ulong": ULong,
	"float": Float, "double": Double,
	"size_t": ULong, "ptrdiff_t": Long, "intptr_t": Long, "uintptr_t": ULong,
}

// ByName resolves a builtin scalar or vector type name ("float",
// "double4", ...). It returns nil for unknown names.
func ByName(name string) *Type {
	if b, ok := baseByName[name]; ok {
		if b == Void {
			return VoidType
		}
		return Scalar(b)
	}
	// Vector: trailing digits are the width.
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	if i == 0 || i == len(name) {
		return nil
	}
	base := name[:i]
	switch base {
	case "size_t", "ptrdiff_t", "intptr_t", "uintptr_t":
		return nil // no vector forms of the pointer-sized aliases
	}
	b, ok := baseByName[base]
	if !ok || b == Void || b == Bool {
		return nil
	}
	switch name[i:] {
	case "2":
		return Vector(b, 2)
	case "3":
		return Vector(b, 3)
	case "4":
		return Vector(b, 4)
	case "8":
		return Vector(b, 8)
	case "16":
		return Vector(b, 16)
	}
	return nil
}

// Promote computes the usual arithmetic conversion result of two
// arithmetic types, with OpenCL vector rules: if one operand is a
// vector, the result is that vector type (the scalar is widened);
// mixing two vectors requires equal widths.
func Promote(a, b *Type) (*Type, error) {
	if !a.IsArith() || !b.IsArith() {
		return nil, fmt.Errorf("operands %s and %s are not arithmetic", a, b)
	}
	width := 1
	switch {
	case a.IsVector() && b.IsVector():
		if a.Width != b.Width {
			return nil, fmt.Errorf("vector width mismatch: %s vs %s", a, b)
		}
		width = a.Width
	case a.IsVector():
		width = a.Width
	case b.IsVector():
		width = b.Width
	}
	base := a.Base
	if b.Base.Rank() > base.Rank() {
		base = b.Base
	} else if b.Base.Rank() == base.Rank() && !b.Base.IsSigned() {
		base = b.Base // unsigned wins at equal rank
	}
	// Integer types below int promote to int.
	if base.IsInteger() && base.Rank() < Int.Rank() {
		base = Int
	}
	return Vector(base, width), nil
}
