// Package token defines the lexical tokens of the OpenCL C dialect
// accepted by the clc compiler. The dialect covers the subset of
// OpenCL C 1.1 used by compute kernels: scalar and vector arithmetic
// types, address-space qualifiers, control flow, and the kernel/helper
// function declarations needed by the benchmarks in this repository.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// The list of token kinds.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT     // xyz
	INTLIT    // 123, 0x1F, 42u
	FLOATLIT  // 1.5f, 2.0, 1e-3
	CHARLIT   // 'a'
	STRINGLIT // "abc" (only in pragmas/attributes; not a kernel value type)

	// Operators and delimiters.
	ADD // +
	SUB // -
	MUL // *
	QUO // /
	REM // %

	AND // &
	OR  // |
	XOR // ^
	SHL // <<
	SHR // >>
	NOT // ~

	LAND // &&
	LOR  // ||
	LNOT // !

	EQL // ==
	NEQ // !=
	LSS // <
	GTR // >
	LEQ // <=
	GEQ // >=

	ASSIGN     // =
	ADD_ASSIGN // +=
	SUB_ASSIGN // -=
	MUL_ASSIGN // *=
	QUO_ASSIGN // /=
	REM_ASSIGN // %=
	AND_ASSIGN // &=
	OR_ASSIGN  // |=
	XOR_ASSIGN // ^=
	SHL_ASSIGN // <<=
	SHR_ASSIGN // >>=

	INC // ++
	DEC // --

	QUESTION  // ?
	COLON     // :
	SEMICOLON // ;
	COMMA     // ,
	PERIOD    // .
	ARROW     // ->

	LPAREN // (
	RPAREN // )
	LBRACK // [
	RBRACK // ]
	LBRACE // {
	RBRACE // }

	// Keywords.
	KwKernel   // __kernel / kernel
	KwGlobal   // __global / global
	KwLocal    // __local / local
	KwConstant // __constant / constant
	KwPrivate  // __private / private
	KwConst    // const
	KwRestrict // restrict / __restrict
	KwVolatile // volatile
	KwInline   // inline / __inline
	KwStatic   // static
	KwUnsigned // unsigned
	KwSigned   // signed
	KwStruct   // struct
	KwTypedef  // typedef
	KwVoid     // void
	KwIf       // if
	KwElse     // else
	KwFor      // for
	KwWhile    // while
	KwDo       // do
	KwReturn   // return
	KwBreak    // break
	KwContinue // continue
	KwSwitch   // switch
	KwCase     // case
	KwDefault  // default
	KwSizeof   // sizeof
	KwGoto     // goto (recognized, rejected in sema)
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF",
	IDENT: "IDENT", INTLIT: "INTLIT", FLOATLIT: "FLOATLIT", CHARLIT: "CHARLIT", STRINGLIT: "STRINGLIT",
	ADD: "+", SUB: "-", MUL: "*", QUO: "/", REM: "%",
	AND: "&", OR: "|", XOR: "^", SHL: "<<", SHR: ">>", NOT: "~",
	LAND: "&&", LOR: "||", LNOT: "!",
	EQL: "==", NEQ: "!=", LSS: "<", GTR: ">", LEQ: "<=", GEQ: ">=",
	ASSIGN: "=", ADD_ASSIGN: "+=", SUB_ASSIGN: "-=", MUL_ASSIGN: "*=", QUO_ASSIGN: "/=",
	REM_ASSIGN: "%=", AND_ASSIGN: "&=", OR_ASSIGN: "|=", XOR_ASSIGN: "^=", SHL_ASSIGN: "<<=", SHR_ASSIGN: ">>=",
	INC: "++", DEC: "--",
	QUESTION: "?", COLON: ":", SEMICOLON: ";", COMMA: ",", PERIOD: ".", ARROW: "->",
	LPAREN: "(", RPAREN: ")", LBRACK: "[", RBRACK: "]", LBRACE: "{", RBRACE: "}",
	KwKernel: "__kernel", KwGlobal: "__global", KwLocal: "__local", KwConstant: "__constant",
	KwPrivate: "__private", KwConst: "const", KwRestrict: "restrict", KwVolatile: "volatile",
	KwInline: "inline", KwStatic: "static", KwUnsigned: "unsigned", KwSigned: "signed",
	KwStruct: "struct", KwTypedef: "typedef", KwVoid: "void",
	KwIf: "if", KwElse: "else", KwFor: "for", KwWhile: "while", KwDo: "do",
	KwReturn: "return", KwBreak: "break", KwContinue: "continue",
	KwSwitch: "switch", KwCase: "case", KwDefault: "default",
	KwSizeof: "sizeof", KwGoto: "goto",
}

// String returns a printable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// keywords maps source spellings to keyword kinds. OpenCL C allows both
// the double-underscore and plain spellings of the address-space and
// function qualifiers.
var keywords = map[string]Kind{
	"__kernel": KwKernel, "kernel": KwKernel,
	"__global": KwGlobal, "global": KwGlobal,
	"__local": KwLocal, "local": KwLocal,
	"__constant": KwConstant, "constant": KwConstant,
	"__private": KwPrivate, "private": KwPrivate,
	"const": KwConst, "restrict": KwRestrict, "__restrict": KwRestrict,
	"volatile": KwVolatile,
	"inline":   KwInline, "__inline": KwInline,
	"static": KwStatic, "unsigned": KwUnsigned, "signed": KwSigned,
	"struct": KwStruct, "typedef": KwTypedef, "void": KwVoid,
	"if": KwIf, "else": KwElse, "for": KwFor, "while": KwWhile, "do": KwDo,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue,
	"switch": KwSwitch, "case": KwCase, "default": KwDefault,
	"sizeof": KwSizeof, "goto": KwGoto,
}

// Lookup maps an identifier to its keyword kind, or IDENT if it is not
// a keyword.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// IsAssignOp reports whether k is an assignment operator (including
// compound assignments).
func (k Kind) IsAssignOp() bool {
	return k >= ASSIGN && k <= SHR_ASSIGN
}

// BaseOf returns the arithmetic operator underlying a compound
// assignment (ADD for ADD_ASSIGN, and so on). It returns ILLEGAL for
// plain ASSIGN and for non-assignment kinds.
func (k Kind) BaseOf() Kind {
	switch k {
	case ADD_ASSIGN:
		return ADD
	case SUB_ASSIGN:
		return SUB
	case MUL_ASSIGN:
		return MUL
	case QUO_ASSIGN:
		return QUO
	case REM_ASSIGN:
		return REM
	case AND_ASSIGN:
		return AND
	case OR_ASSIGN:
		return OR
	case XOR_ASSIGN:
		return XOR
	case SHL_ASSIGN:
		return SHL
	case SHR_ASSIGN:
		return SHR
	}
	return ILLEGAL
}

// Pos is a source position: 1-based line and column within a named
// compilation unit (the file name is carried by the Program).
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token with its source position and literal
// text (for identifiers and literals).
type Token struct {
	Kind Kind
	Lit  string
	Pos  Pos
}

// String formats the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, FLOATLIT, CHARLIT, STRINGLIT:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}

// Precedence returns the binary operator precedence for expression
// parsing; higher binds tighter. Non-binary operators return 0.
func (k Kind) Precedence() int {
	switch k {
	case LOR:
		return 1
	case LAND:
		return 2
	case OR:
		return 3
	case XOR:
		return 4
	case AND:
		return 5
	case EQL, NEQ:
		return 6
	case LSS, GTR, LEQ, GEQ:
		return 7
	case SHL, SHR:
		return 8
	case ADD, SUB:
		return 9
	case MUL, QUO, REM:
		return 10
	}
	return 0
}
