package token

import "testing"

func TestLookupKeywords(t *testing.T) {
	cases := map[string]Kind{
		"__kernel": KwKernel, "kernel": KwKernel,
		"__global": KwGlobal, "global": KwGlobal,
		"__local": KwLocal, "constant": KwConstant,
		"const": KwConst, "restrict": KwRestrict, "__restrict": KwRestrict,
		"if": KwIf, "else": KwElse, "for": KwFor, "while": KwWhile,
		"return": KwReturn, "break": KwBreak, "continue": KwContinue,
		"void": KwVoid, "unsigned": KwUnsigned, "sizeof": KwSizeof,
		"typedef": KwTypedef, "inline": KwInline,
		"banana": IDENT, "float": IDENT, "float4": IDENT, "get_global_id": IDENT,
	}
	for lit, want := range cases {
		if got := Lookup(lit); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", lit, got, want)
		}
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// Multiplicative > additive > shift > relational > equality >
	// bitwise > logical.
	ordered := []Kind{LOR, LAND, OR, XOR, AND, EQL, LSS, SHL, ADD, MUL}
	for i := 1; i < len(ordered); i++ {
		lo, hi := ordered[i-1], ordered[i]
		if lo.Precedence() >= hi.Precedence() {
			t.Errorf("%v precedence %d should be < %v precedence %d",
				lo, lo.Precedence(), hi, hi.Precedence())
		}
	}
	if QUESTION.Precedence() != 0 {
		t.Errorf("non-binary token should have zero precedence")
	}
}

func TestAssignOps(t *testing.T) {
	for _, k := range []Kind{ASSIGN, ADD_ASSIGN, SUB_ASSIGN, MUL_ASSIGN, QUO_ASSIGN,
		REM_ASSIGN, AND_ASSIGN, OR_ASSIGN, XOR_ASSIGN, SHL_ASSIGN, SHR_ASSIGN} {
		if !k.IsAssignOp() {
			t.Errorf("%v should be an assignment operator", k)
		}
	}
	for _, k := range []Kind{ADD, EQL, IDENT, LBRACE} {
		if k.IsAssignOp() {
			t.Errorf("%v should not be an assignment operator", k)
		}
	}
}

func TestBaseOf(t *testing.T) {
	cases := map[Kind]Kind{
		ADD_ASSIGN: ADD, SUB_ASSIGN: SUB, MUL_ASSIGN: MUL, QUO_ASSIGN: QUO,
		REM_ASSIGN: REM, AND_ASSIGN: AND, OR_ASSIGN: OR, XOR_ASSIGN: XOR,
		SHL_ASSIGN: SHL, SHR_ASSIGN: SHR, ASSIGN: ILLEGAL, ADD: ILLEGAL,
	}
	for in, want := range cases {
		if got := in.BaseOf(); got != want {
			t.Errorf("%v.BaseOf() = %v, want %v", in, got, want)
		}
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: IDENT, Lit: "foo", Pos: Pos{Line: 3, Col: 7}}
	if got := tok.String(); got != `IDENT("foo")` {
		t.Errorf("Token.String() = %q", got)
	}
	if got := (Token{Kind: ADD}).String(); got != "+" {
		t.Errorf("operator token String() = %q", got)
	}
	if got := (Pos{Line: 3, Col: 7}).String(); got != "3:7" {
		t.Errorf("Pos.String() = %q", got)
	}
	if (Pos{}).IsValid() {
		t.Error("zero Pos should be invalid")
	}
}
